package corpussearch

import (
	"fmt"
	"sort"

	"lpath/internal/tree"
)

// cnode is the engine's view of a node; words are leaf nodes labeled by the
// word, as in CorpusSearch's view of Penn Treebank files.
type cnode struct {
	label    string
	parent   *cnode
	children []*cnode
	first    int32 // leftmost covered terminal (1-based)
	last     int32 // rightmost covered terminal
	order    int32
	elem     *tree.Node
}

type ctree struct {
	id    int
	root  *cnode
	nodes []*cnode
}

// Corpus holds the searchable trees. There is deliberately no index: every
// search is a full corpus scan.
type Corpus struct {
	trees []*ctree
}

// BuildCorpus converts a tree corpus.
func BuildCorpus(c *tree.Corpus) *Corpus {
	cc := &Corpus{}
	for _, t := range c.Trees {
		ct := &ctree{id: t.ID}
		var leaf int32
		var rec func(n *tree.Node, parent *cnode) *cnode
		rec = func(n *tree.Node, parent *cnode) *cnode {
			cn := &cnode{label: n.Tag, parent: parent, order: int32(len(ct.nodes)), elem: n}
			ct.nodes = append(ct.nodes, cn)
			if len(n.Children) == 0 {
				leaf++
				cn.first, cn.last = leaf, leaf
				if n.Word != "" {
					w := &cnode{label: n.Word, parent: cn, order: int32(len(ct.nodes)), first: leaf, last: leaf}
					ct.nodes = append(ct.nodes, w)
					cn.children = []*cnode{w}
				}
				return cn
			}
			for _, ch := range n.Children {
				cn.children = append(cn.children, rec(ch, cn))
			}
			cn.first = cn.children[0].first
			cn.last = cn.children[len(cn.children)-1].last
			return cn
		}
		if t.Root != nil {
			ct.root = rec(t.Root, nil)
		}
		cc.trees = append(cc.trees, ct)
	}
	return cc
}

// Match is one reported binding of the print variable.
type Match struct {
	TreeID int
	Node   *tree.Node
	Word   string // set when the print variable bound a word node
}

// Search evaluates the query over the corpus and returns the distinct
// bindings of the print variable, in corpus order.
func (c *Corpus) Search(q *Query) ([]Match, error) {
	vars := positiveVars(q)
	printIdx := -1
	for i, v := range vars {
		if v == q.Print {
			printIdx = i
		}
	}
	boundaryIsPrint := q.Print == q.Boundary
	if printIdx < 0 && !boundaryIsPrint {
		return nil, fmt.Errorf("corpussearch: print variable %s does not occur in the query", q.Print)
	}
	var out []Match
	for _, ct := range c.trees {
		seen := map[*cnode]bool{}
		for _, boundary := range c.boundaries(ct, q.Boundary) {
			env := map[Term]*cnode{q.Boundary: boundary}
			printed := func(n *cnode) {
				if !seen[n] {
					seen[n] = true
					m := Match{TreeID: ct.id}
					if n.elem != nil {
						m.Node = n.elem
					} else {
						m.Word = n.label
					}
					out = append(out, m)
				}
			}
			if boundaryIsPrint {
				if c.satisfiable(ct, boundary, q, vars, 0, env) {
					printed(boundary)
				}
				continue
			}
			// Enumerate assignments, collecting print bindings.
			c.enumerate(ct, boundary, q, vars, 0, env, func(e map[Term]*cnode) {
				printed(e[q.Print])
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TreeID < out[j].TreeID })
	return out, nil
}

// Count returns the number of distinct print-variable bindings.
func (c *Corpus) Count(q *Query) (int, error) {
	ms, err := c.Search(q)
	return len(ms), err
}

// boundaries returns the boundary nodes of a tree: the root for $ROOT, else
// every node matching the pattern.
func (c *Corpus) boundaries(ct *ctree, b Term) []*cnode {
	if b.Pattern == RootBoundary {
		if ct.root == nil {
			return nil
		}
		return []*cnode{ct.root}
	}
	var out []*cnode
	for _, n := range ct.nodes {
		if b.MatchesLabel(n.label) {
			out = append(out, n)
		}
	}
	return out
}

// positiveVars returns the distinct variables occurring outside any
// negation, in first-appearance order, excluding the boundary variable.
func positiveVars(q *Query) []Term {
	var out []Term
	seen := map[Term]bool{q.Boundary: true}
	var rec func(e Expr, neg bool)
	add := func(t Term) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	rec = func(e Expr, neg bool) {
		switch x := e.(type) {
		case *AndE:
			rec(x.L, neg)
			rec(x.R, neg)
		case *OrE:
			rec(x.L, neg)
			rec(x.R, neg)
		case *NotE:
			rec(x.X, true)
		case *Call:
			if !neg {
				add(x.A)
				add(x.B)
			}
		case *ExistsE:
			if !neg {
				add(x.A)
			}
		}
	}
	rec(q.Expr, false)
	return out
}

// satisfiable backtracks over variable assignments until one satisfies the
// query.
func (c *Corpus) satisfiable(ct *ctree, boundary *cnode, q *Query, vars []Term, i int, env map[Term]*cnode) bool {
	found := false
	c.enumerateStop(ct, boundary, q, vars, i, env, func(map[Term]*cnode) bool {
		found = true
		return false
	})
	return found
}

// enumerate visits every satisfying assignment.
func (c *Corpus) enumerate(ct *ctree, boundary *cnode, q *Query, vars []Term, i int, env map[Term]*cnode, visit func(map[Term]*cnode)) {
	c.enumerateStop(ct, boundary, q, vars, i, env, func(e map[Term]*cnode) bool {
		visit(e)
		return true
	})
}

// enumerateStop backtracks over assignments of vars[i:]; visit returns false
// to stop the search.
func (c *Corpus) enumerateStop(ct *ctree, boundary *cnode, q *Query, vars []Term, i int, env map[Term]*cnode, visit func(map[Term]*cnode) bool) bool {
	if i == len(vars) {
		if evalExpr(ct, boundary, q.Expr, env) {
			return visit(env)
		}
		return true
	}
	v := vars[i]
	cands, constrained := candidates(ct, boundary, q.Expr, v, env)
	if len(cands) == 0 {
		if constrained {
			// A mandatory conjunct relates v to a bound node and nothing
			// satisfies it: no assignment can succeed — prune.
			return true
		}
		// An unconstrained variable with no matching node (e.g. one that
		// occurs only in an unsatisfied or-branch) binds to nothing; calls
		// involving it evaluate false rather than aborting the search.
		env[v] = nil
		ok := c.enumerateStop(ct, boundary, q, vars, i+1, env, visit)
		delete(env, v)
		return ok
	}
	for _, cand := range cands {
		env[v] = cand
		if !c.enumerateStop(ct, boundary, q, vars, i+1, env, visit) {
			delete(env, v)
			return false
		}
		delete(env, v)
	}
	return true
}

// candidates returns possible bindings for v. If some mandatory (top-level
// conjunct) call relates v to an already-bound variable, only the
// structurally related nodes are enumerated (forward checking) and
// constrained is true — an empty result then proves unsatisfiability.
// Otherwise every matching node within the boundary subtree is returned.
func candidates(ct *ctree, boundary *cnode, e Expr, v Term, env map[Term]*cnode) (nodes []*cnode, constrained bool) {
	if related, ok := relatedCandidates(e, v, env); ok {
		out := related[:0:0]
		for _, n := range related {
			if v.MatchesLabel(n.label) && within(n, boundary) {
				out = append(out, n)
			}
		}
		return out, true
	}
	var out []*cnode
	var rec func(n *cnode)
	rec = func(n *cnode) {
		if v.MatchesLabel(n.label) {
			out = append(out, n)
		}
		for _, ch := range n.children {
			rec(ch)
		}
	}
	rec(boundary)
	return out, false
}

// relatedCandidates finds a mandatory call connecting v to a bound,
// non-nil variable and enumerates the related nodes; ok is false when no
// such call exists.
func relatedCandidates(e Expr, v Term, env map[Term]*cnode) ([]*cnode, bool) {
	switch x := e.(type) {
	case *AndE:
		if n, ok := relatedCandidates(x.L, v, env); ok {
			return n, true
		}
		return relatedCandidates(x.R, v, env)
	case *Call:
		if x.B == v {
			if a, ok := env[x.A]; ok && a != nil {
				return forwardNodes(x.Fn, a), true
			}
		}
		if x.A == v {
			if b, ok := env[x.B]; ok && b != nil {
				return backwardNodes(x.Fn, b), true
			}
		}
	}
	return nil, false
}

// forwardNodes enumerates the nodes y with fn(a, y).
func forwardNodes(fn Fn, a *cnode) []*cnode {
	switch fn {
	case FnIDoms:
		return a.children
	case FnIDomsFirst:
		if len(a.children) > 0 {
			return a.children[:1]
		}
		return []*cnode{}
	case FnIDomsLast:
		if len(a.children) > 0 {
			return a.children[len(a.children)-1:]
		}
		return []*cnode{}
	case FnDoms, FnDomsLeftmost, FnDomsRightmost:
		var out []*cnode
		var rec func(n *cnode)
		rec = func(n *cnode) {
			for _, ch := range n.children {
				switch fn {
				case FnDoms:
					out = append(out, ch)
				case FnDomsLeftmost:
					if ch.first == a.first {
						out = append(out, ch)
					}
				case FnDomsRightmost:
					if ch.last == a.last {
						out = append(out, ch)
					}
				}
				rec(ch)
			}
		}
		rec(a)
		return out
	case FnIPrecedes, FnPrecedes:
		var out []*cnode
		root := a
		for root.parent != nil {
			root = root.parent
		}
		var rec func(n *cnode)
		rec = func(n *cnode) {
			if fn == FnIPrecedes && n.first == a.last+1 {
				out = append(out, n)
			}
			if fn == FnPrecedes && n.first > a.last {
				out = append(out, n)
			}
			for _, ch := range n.children {
				rec(ch)
			}
		}
		rec(root)
		return out
	case FnSisterPrecedes, FnISisterPrecedes, FnHasSister:
		if a.parent == nil {
			return []*cnode{}
		}
		var out []*cnode
		for _, s := range a.parent.children {
			if s == a {
				continue
			}
			switch fn {
			case FnSisterPrecedes:
				if s.first > a.last {
					out = append(out, s)
				}
			case FnISisterPrecedes:
				if s.first == a.last+1 {
					out = append(out, s)
				}
			case FnHasSister:
				out = append(out, s)
			}
		}
		return out
	}
	return []*cnode{}
}

// backwardNodes enumerates the nodes x with fn(x, b).
func backwardNodes(fn Fn, b *cnode) []*cnode {
	switch fn {
	case FnIDoms:
		if b.parent != nil {
			return []*cnode{b.parent}
		}
	case FnIDomsFirst:
		if b.parent != nil && b.parent.children[0] == b {
			return []*cnode{b.parent}
		}
	case FnIDomsLast:
		if b.parent != nil && b.parent.children[len(b.parent.children)-1] == b {
			return []*cnode{b.parent}
		}
	case FnDoms:
		var out []*cnode
		for p := b.parent; p != nil; p = p.parent {
			out = append(out, p)
		}
		return out
	case FnDomsLeftmost:
		var out []*cnode
		for p := b.parent; p != nil; p = p.parent {
			if p.first == b.first {
				out = append(out, p)
			}
		}
		return out
	case FnDomsRightmost:
		var out []*cnode
		for p := b.parent; p != nil; p = p.parent {
			if p.last == b.last {
				out = append(out, p)
			}
		}
		return out
	case FnIPrecedes, FnPrecedes:
		var out []*cnode
		root := b
		for root.parent != nil {
			root = root.parent
		}
		var rec func(n *cnode)
		rec = func(n *cnode) {
			if fn == FnIPrecedes && n.last+1 == b.first {
				out = append(out, n)
			}
			if fn == FnPrecedes && n.last < b.first {
				out = append(out, n)
			}
			for _, ch := range n.children {
				rec(ch)
			}
		}
		rec(root)
		return out
	case FnSisterPrecedes, FnISisterPrecedes, FnHasSister:
		if b.parent == nil {
			return []*cnode{}
		}
		var out []*cnode
		for _, s := range b.parent.children {
			if s == b {
				continue
			}
			switch fn {
			case FnSisterPrecedes:
				if s.last < b.first {
					out = append(out, s)
				}
			case FnISisterPrecedes:
				if s.last+1 == b.first {
					out = append(out, s)
				}
			case FnHasSister:
				out = append(out, s)
			}
		}
		return out
	}
	return []*cnode{}
}

func within(n, boundary *cnode) bool {
	for m := n; m != nil; m = m.parent {
		if m == boundary {
			return true
		}
	}
	return false
}

// evalExpr evaluates the query expression under a complete assignment of the
// positive variables. Variables local to negations are existentially
// quantified inside the negation.
func evalExpr(ct *ctree, boundary *cnode, e Expr, env map[Term]*cnode) bool {
	switch x := e.(type) {
	case *AndE:
		return evalExpr(ct, boundary, x.L, env) && evalExpr(ct, boundary, x.R, env)
	case *OrE:
		return evalExpr(ct, boundary, x.L, env) || evalExpr(ct, boundary, x.R, env)
	case *NotE:
		return !existsInner(ct, boundary, x.X, env)
	case *Call:
		a, aok := env[x.A]
		b, bok := env[x.B]
		if !aok || !bok || a == nil || b == nil {
			return false
		}
		return holds(x.Fn, a, b)
	case *ExistsE:
		n, ok := env[x.A]
		return ok && n != nil
	}
	return false
}

// existsInner evaluates an expression under a negation: unbound variables
// are existentially quantified over the boundary subtree.
func existsInner(ct *ctree, boundary *cnode, e Expr, env map[Term]*cnode) bool {
	var free []Term
	seen := map[Term]bool{}
	var collect func(e Expr)
	collect = func(e Expr) {
		switch x := e.(type) {
		case *AndE:
			collect(x.L)
			collect(x.R)
		case *OrE:
			collect(x.L)
			collect(x.R)
		case *NotE:
			// Variables under a deeper negation are quantified when that
			// negation is evaluated, not here.
		case *Call:
			for _, t := range []Term{x.A, x.B} {
				if _, bound := env[t]; !bound && !seen[t] {
					seen[t] = true
					free = append(free, t)
				}
			}
		case *ExistsE:
			if _, bound := env[x.A]; !bound && !seen[x.A] {
				seen[x.A] = true
				free = append(free, x.A)
			}
		}
	}
	collect(e)
	var try func(i int) bool
	try = func(i int) bool {
		if i == len(free) {
			return evalExprInner(ct, boundary, e, env)
		}
		cands, constrained := candidates(ct, boundary, e, free[i], env)
		if len(cands) == 0 {
			if constrained {
				return false
			}
			env[free[i]] = nil
			ok := try(i + 1)
			delete(env, free[i])
			return ok
		}
		for _, cand := range cands {
			env[free[i]] = cand
			if try(i + 1) {
				delete(env, free[i])
				return true
			}
			delete(env, free[i])
		}
		return false
	}
	return try(0)
}

// evalExprInner is evalExpr but treats ExistsE over a bound variable as
// true (used inside negations where the variable was just quantified).
func evalExprInner(ct *ctree, boundary *cnode, e Expr, env map[Term]*cnode) bool {
	return evalExpr(ct, boundary, e, env)
}

// holds checks a binary search function between two bound nodes.
func holds(fn Fn, a, b *cnode) bool {
	switch fn {
	case FnIDoms:
		return b.parent == a
	case FnDoms:
		for p := b.parent; p != nil; p = p.parent {
			if p == a {
				return true
			}
		}
		return false
	case FnIPrecedes:
		return b.first == a.last+1
	case FnPrecedes:
		return b.first > a.last
	case FnIDomsFirst:
		return b.parent == a && a.children[0] == b
	case FnIDomsLast:
		return b.parent == a && a.children[len(a.children)-1] == b
	case FnDomsLeftmost:
		return holds(FnDoms, a, b) && a.first == b.first
	case FnDomsRightmost:
		return holds(FnDoms, a, b) && a.last == b.last
	case FnSisterPrecedes:
		return a.parent != nil && a.parent == b.parent && a != b && b.first > a.last
	case FnISisterPrecedes:
		return a.parent != nil && a.parent == b.parent && a != b && b.first == a.last+1
	case FnHasSister:
		return a.parent != nil && a.parent == b.parent && a != b
	}
	return false
}
