package corpussearch

import (
	"strings"
	"testing"

	"lpath/internal/tree"
)

func figureCorpus() *Corpus {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	return BuildCorpus(c)
}

func count(t *testing.T, c *Corpus, src string) int {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	n, err := c.Count(q)
	if err != nil {
		t.Fatalf("Count(%q): %v", src, err)
	}
	return n
}

func TestParseDirectives(t *testing.T) {
	q := MustParse("node: VP\nquery: (VP iDoms VB)\nprint: VB")
	if q.Boundary.Pattern != "VP" || q.Print.Pattern != "VB" {
		t.Errorf("q = %+v", q)
	}
	call, ok := q.Expr.(*Call)
	if !ok || call.Fn != FnIDoms {
		t.Errorf("expr = %#v", q.Expr)
	}
	// Semicolon separators and default print.
	q = MustParse(`node: S; query: (S Doms saw)`)
	if q.Print != q.Boundary {
		t.Errorf("default print = %v", q.Print)
	}
}

func TestParseIndexesAndBooleans(t *testing.T) {
	q := MustParse(`node: $ROOT; query: (NP[1] iDoms NP[2]) and not (NP[2] iDoms JJ) or (NP[1] Exists); print: NP[2]`)
	or, ok := q.Expr.(*OrE)
	if !ok {
		t.Fatalf("expr = %#v", q.Expr)
	}
	and, ok := or.L.(*AndE)
	if !ok {
		t.Fatalf("left = %#v", or.L)
	}
	if _, ok := and.R.(*NotE); !ok {
		t.Fatalf("right of and = %#v", and.R)
	}
	call := and.L.(*Call)
	if call.A != (Term{"NP", 1}) || call.B != (Term{"NP", 2}) {
		t.Errorf("call = %+v", call)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`query: (A iDoms B)`,                      // missing node
		`node: S`,                                 // missing query
		`node: S; query: (A frobs B)`,             // unknown function
		`node: S; query: A iDoms B`,               // missing parens
		`node: S; query: (A iDoms )`,              // missing term
		`node: S; query: (A iDoms B`,              // unterminated
		`node: S; query: (A iDoms B); print: C[`,  // bad index
		`node: S; quux: x; query: (A Exists)`,     // unknown directive
		`node: S; query: (A iDoms B); print: ZZZ`, // print not in query (checked at search)
	} {
		q, err := Parse(src)
		if err != nil {
			continue
		}
		// The last case parses but must fail at search time.
		if _, serr := figureCorpus().Search(q); serr == nil {
			t.Errorf("Parse/Search(%q): expected error", src)
		}
	}
}

func TestGlobMatching(t *testing.T) {
	cases := []struct {
		pat, label string
		want       bool
	}{
		{"NP", "NP", true},
		{"NP", "NP-SBJ", false},
		{"NP*", "NP-SBJ", true},
		{"NP*", "N", false},
		{"*SBJ", "NP-SBJ", true},
		{"NP*SBJ*", "NP-SBJ-1", true},
		{"NP|VP", "VP", true},
		{"NP|VP", "PP", false},
		{"*", "anything", true},
	}
	for _, tc := range cases {
		if got := (Term{Pattern: tc.pat}).MatchesLabel(tc.label); got != tc.want {
			t.Errorf("match(%q, %q) = %v, want %v", tc.pat, tc.label, got, tc.want)
		}
	}
}

func TestSearchFigure1(t *testing.T) {
	c := figureCorpus()
	cases := []struct {
		src  string
		want int
	}{
		{`node: S; query: (S Doms saw)`, 1},
		{`node: S; query: (S Doms missing)`, 0},
		{`node: $ROOT; query: (V iPrecedes NP); print: NP`, 2},
		{`node: $ROOT; query: (VP iDoms V) and (V Precedes N); print: N`, 3},
		{`node: VP; query: (VP iDoms V) and (V Precedes N); print: N`, 2},
		{`node: VP; query: (VP iDomsLast NP); print: NP`, 1},
		{`node: VP; query: (VP DomsRightmost NP); print: NP`, 2},
		{`node: VP; query: (VP DomsLeftmost V) and (V iPrecedes NP) and (NP iPrecedes PP) and (VP DomsRightmost PP); print: VP`, 1},
		{`node: S; query: (S Doms NP) and (NP iDoms Adj); print: S`, 1},
		{`node: NP; query: not (NP Doms Adj); print: NP`, 2},
		{`node: NP; query: (NP Doms Adj); print: NP`, 2},
		{`node: $ROOT; query: (NP[1] iDoms NP[2]); print: NP[2]`, 1},
		{`node: $ROOT; query: (NP[1] iDoms NP[2]) and (NP[2] iDoms NP[3]); print: NP[3]`, 0},
		{`node: $ROOT; query: (V iSisterPrecedes NP); print: NP`, 1},
		{`node: $ROOT; query: (NP iSisterPrecedes PP); print: PP`, 1},
		{`node: $ROOT; query: (NP HasSister VP); print: NP`, 1},
		{`node: $ROOT; query: (Det iDoms the); print: Det`, 1},
		{`node: $ROOT; query: (Prep iPrecedes Det); print: Det`, 1},
		{`node: $ROOT; query: (N* Exists); print: N*`, 7}, // 4 NP + 3 N
		{`node: $ROOT; query: (NP iDoms Det|Adj); print: NP`, 2},
		{`node: S; query: (the iPrecedes old)`, 1},
		{`node: $ROOT; query: (VP iDomsFirst V); print: V`, 1},
	}
	for _, tc := range cases {
		if got := count(t, c, tc.src); got != tc.want {
			q := MustParse(tc.src)
			ms, _ := c.Search(q)
			var sigs []string
			for _, m := range ms {
				if m.Node != nil {
					sigs = append(sigs, m.Node.Tag+"["+strings.Join(m.Node.Words(), " ")+"]")
				} else {
					sigs = append(sigs, "w:"+m.Word)
				}
			}
			t.Errorf("%s: count = %d, want %d (matches %v)", tc.src, got, tc.want, sigs)
		}
	}
}

func TestBoundaryScoping(t *testing.T) {
	c := figureCorpus()
	// Within NP boundaries, Det precedes N twice (the..man, a..dog); the
	// today-N is never inside an NP with a Det.
	if got := count(t, c, `node: NP; query: (Det Precedes N); print: N`); got != 2 {
		t.Errorf("scoped count = %d, want 2", got)
	}
	// Unscoped, Det(the) also precedes dog and today.
	if got := count(t, c, `node: $ROOT; query: (Det Precedes N); print: N`); got != 3 {
		t.Errorf("unscoped count = %d, want 3", got)
	}
}

func TestMultipleTrees(t *testing.T) {
	tc := tree.NewCorpus()
	tc.Add(tree.Figure1())
	tc.Add(tree.MustParseTree(`(S (NP you) (VP (V saw) (NP (Det a) (N cat))))`))
	c := BuildCorpus(tc)
	q := MustParse(`node: S; query: (S Doms saw)`)
	ms, err := c.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].TreeID != 1 || ms[1].TreeID != 2 {
		t.Errorf("matches = %+v", ms)
	}
}

func TestPrintWordVariable(t *testing.T) {
	c := figureCorpus()
	q := MustParse(`node: $ROOT; query: (saw Exists); print: saw`)
	ms, err := c.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Word != "saw" {
		t.Errorf("matches = %+v", ms)
	}
}

func TestEvalQueriesParse(t *testing.T) {
	if len(EvalQueries) != 23 {
		t.Fatalf("EvalQueries has %d entries", len(EvalQueries))
	}
	for id, src := range EvalQueries {
		if _, err := Parse(src); err != nil {
			t.Errorf("Q%d: %v", id, err)
		}
	}
}

func TestDistinctPrintBindings(t *testing.T) {
	c := figureCorpus()
	// Multiple assignments can share a print binding; results must be
	// distinct nodes. Det(the) and Det(a) both precede N(dog)? No — but
	// each Det precedes at least one N, and N(dog) follows both Dets:
	// print N must dedup.
	got := count(t, c, `node: $ROOT; query: (Det Precedes N); print: N`)
	if got != 3 { // man, dog, today (each follows some Det)
		t.Errorf("distinct print bindings = %d, want 3", got)
	}
}
