// Package corpussearch implements a CorpusSearch-dialect query engine, the
// second baseline system of the paper's evaluation (Section 5.1.1, [24]).
//
// A query names a boundary node and a boolean combination of search-function
// calls evaluated within the boundary's subtree:
//
//	node: VP
//	query: (VP iDoms VB) and (VB Precedes NN)
//	print: NN
//
// As in CorpusSearch, the same label text denotes the same node everywhere
// in the query; distinct instances of one label are written with an index
// (NP[1], NP[2]). Patterns support '*' globs and '|' alternation; words are
// leaf nodes (so "(IN iDoms of)" tests the word under an IN tag); the
// special boundary $ROOT searches whole trees. The print: directive selects
// which variable's bindings are reported (default: the boundary).
//
// The engine deliberately has no corpus-level index: every query scans every
// tree and runs a backtracking search inside each boundary — the algorithmic
// profile the paper measures for CorpusSearch.
package corpussearch

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Term is a node variable: a label pattern plus an instance index
// (NP[2] → Pattern "NP", Index 2; plain NP → Index 0).
type Term struct {
	Pattern string
	Index   int
}

// String renders the term.
func (t Term) String() string {
	if t.Index == 0 {
		return t.Pattern
	}
	return fmt.Sprintf("%s[%d]", t.Pattern, t.Index)
}

// MatchesLabel reports whether the term's pattern matches a node label.
// Patterns are '|'-alternations of glob atoms where '*' matches any run.
func (t Term) MatchesLabel(label string) bool {
	for _, alt := range strings.Split(t.Pattern, "|") {
		if globMatch(alt, label) {
			return true
		}
	}
	return false
}

func globMatch(pat, s string) bool {
	// Simple glob: split on '*', require ordered substring matches with
	// anchored first/last pieces.
	parts := strings.Split(pat, "*")
	if len(parts) == 1 {
		return pat == s
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	for i := 1; i < len(parts)-1; i++ {
		idx := strings.Index(s, parts[i])
		if idx < 0 {
			return false
		}
		s = s[idx+len(parts[i]):]
	}
	return strings.HasSuffix(s, parts[len(parts)-1])
}

// Fn enumerates the search functions.
type Fn int

const (
	FnIDoms Fn = iota // A immediately dominates B
	FnDoms            // A dominates B
	FnIPrecedes
	FnPrecedes
	FnIDomsFirst    // B is A's first child
	FnIDomsLast     // B is A's last child
	FnDomsLeftmost  // B is a left-edge-aligned descendant of A (dialect extension)
	FnDomsRightmost // B is a right-edge-aligned descendant of A (dialect extension)
	FnSisterPrecedes
	FnISisterPrecedes
	FnHasSister
	FnExists // unary
)

var fnNames = map[string]Fn{
	"idoms": FnIDoms, "doms": FnDoms,
	"iprecedes": FnIPrecedes, "precedes": FnPrecedes,
	"idomsfirst": FnIDomsFirst, "idomslast": FnIDomsLast,
	"domsleftmost": FnDomsLeftmost, "domsrightmost": FnDomsRightmost,
	"sisterprecedes": FnSisterPrecedes, "isisterprecedes": FnISisterPrecedes,
	"hassister": FnHasSister, "exists": FnExists,
}

var fnStrings = map[Fn]string{
	FnIDoms: "iDoms", FnDoms: "Doms", FnIPrecedes: "iPrecedes", FnPrecedes: "Precedes",
	FnIDomsFirst: "iDomsFirst", FnIDomsLast: "iDomsLast",
	FnDomsLeftmost: "DomsLeftmost", FnDomsRightmost: "DomsRightmost",
	FnSisterPrecedes: "SisterPrecedes", FnISisterPrecedes: "iSisterPrecedes",
	FnHasSister: "HasSister", FnExists: "Exists",
}

func (f Fn) String() string { return fnStrings[f] }

// Expr is a boolean query expression.
type Expr interface{ exprNode() }

// AndE is conjunction; OrE disjunction; NotE negation; Call a binary search
// function; ExistsE the unary existence test.
type (
	AndE struct{ L, R Expr }
	OrE  struct{ L, R Expr }
	NotE struct{ X Expr }
	Call struct {
		A, B Term
		Fn   Fn
	}
	ExistsE struct{ A Term }
)

func (*AndE) exprNode()    {}
func (*OrE) exprNode()     {}
func (*NotE) exprNode()    {}
func (*Call) exprNode()    {}
func (*ExistsE) exprNode() {}

// Query is a parsed CorpusSearch query.
type Query struct {
	Boundary Term // $ROOT or a label pattern
	Print    Term // variable to report; default: the boundary
	Expr     Expr
}

// RootBoundary is the node: pattern selecting whole trees.
const RootBoundary = "$ROOT"

// Parse parses a query consisting of "node:", "query:" and optional
// "print:" directives separated by newlines or semicolons.
func Parse(src string) (*Query, error) {
	q := &Query{}
	sawNode, sawQuery := false, false
	for _, line := range splitDirectives(src) {
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("corpussearch: missing ':' in directive %q", line)
		}
		key := strings.ToLower(strings.TrimSpace(line[:colon]))
		val := strings.TrimSpace(line[colon+1:])
		switch key {
		case "node":
			t, rest, err := parseTerm(val)
			if err != nil || strings.TrimSpace(rest) != "" {
				return nil, fmt.Errorf("corpussearch: bad node directive %q", val)
			}
			q.Boundary = t
			sawNode = true
		case "print":
			t, rest, err := parseTerm(val)
			if err != nil || strings.TrimSpace(rest) != "" {
				return nil, fmt.Errorf("corpussearch: bad print directive %q", val)
			}
			q.Print = t
		case "query":
			p := &qparser{src: val}
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			p.ws()
			if p.pos < len(p.src) {
				return nil, p.errf("trailing input")
			}
			q.Expr = e
			sawQuery = true
		default:
			return nil, fmt.Errorf("corpussearch: unknown directive %q", key)
		}
	}
	if !sawNode {
		return nil, fmt.Errorf("corpussearch: missing node: directive")
	}
	if !sawQuery {
		return nil, fmt.Errorf("corpussearch: missing query: directive")
	}
	if q.Print.Pattern == "" {
		q.Print = q.Boundary
	}
	return q, nil
}

// MustParse is Parse panicking on error.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

func splitDirectives(src string) []string {
	var out []string
	for _, chunk := range strings.FieldsFunc(src, func(r rune) bool { return r == '\n' || r == ';' }) {
		if s := strings.TrimSpace(chunk); s != "" {
			out = append(out, s)
		}
	}
	return out
}

type qparser struct {
	src string
	pos int
}

func (p *qparser) errf(format string, args ...any) error {
	return fmt.Errorf("corpussearch: %s at offset %d in %q", fmt.Sprintf(format, args...), p.pos, p.src)
}

func (p *qparser) ws() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\r' {
			p.pos++
			continue
		}
		return
	}
}

func (p *qparser) keyword(kw string) bool {
	p.ws()
	if len(p.src)-p.pos < len(kw) {
		return false
	}
	if !strings.EqualFold(p.src[p.pos:p.pos+len(kw)], kw) {
		return false
	}
	rest := p.src[p.pos+len(kw):]
	if rest != "" {
		r, _ := utf8.DecodeRuneInString(rest)
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			return false
		}
	}
	p.pos += len(kw)
	return true
}

func (p *qparser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &OrE{L: l, R: r}
	}
	return l, nil
}

func (p *qparser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &AndE{L: l, R: r}
	}
	return l, nil
}

func (p *qparser) parseUnary() (Expr, error) {
	p.ws()
	if p.keyword("not") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotE{X: inner}, nil
	}
	if p.pos < len(p.src) && p.src[p.pos] == '!' {
		p.pos++
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotE{X: inner}, nil
	}
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return nil, p.errf("expected '('")
	}
	p.pos++
	// Either a grouped expression or a function call; distinguish by
	// attempting a call first.
	save := p.pos
	if call, err := p.parseCall(); err == nil {
		return call, nil
	}
	p.pos = save
	inner, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos >= len(p.src) || p.src[p.pos] != ')' {
		return nil, p.errf("expected ')'")
	}
	p.pos++
	return inner, nil
}

// parseCall parses "A fn B)" or "A Exists)" with the opening paren already
// consumed.
func (p *qparser) parseCall() (Expr, error) {
	p.ws()
	a, rest, err := parseTerm(p.src[p.pos:])
	if err != nil {
		return nil, p.errf("expected term")
	}
	p.pos = len(p.src) - len(rest)
	p.ws()
	start := p.pos
	for p.pos < len(p.src) {
		r, sz := utf8.DecodeRuneInString(p.src[p.pos:])
		if !unicode.IsLetter(r) {
			break
		}
		p.pos += sz
	}
	fnName := strings.ToLower(p.src[start:p.pos])
	fn, ok := fnNames[fnName]
	if !ok {
		return nil, p.errf("unknown search function %q", p.src[start:p.pos])
	}
	if fn == FnExists {
		p.ws()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, p.errf("expected ')'")
		}
		p.pos++
		return &ExistsE{A: a}, nil
	}
	p.ws()
	b, rest, err := parseTerm(p.src[p.pos:])
	if err != nil {
		return nil, p.errf("expected second term")
	}
	p.pos = len(p.src) - len(rest)
	p.ws()
	if p.pos >= len(p.src) || p.src[p.pos] != ')' {
		return nil, p.errf("expected ')'")
	}
	p.pos++
	return &Call{A: a, B: b, Fn: fn}, nil
}

// parseTerm parses a label pattern with optional [index] suffix from the
// front of s, returning the remainder.
func parseTerm(s string) (Term, string, error) {
	i := 0
	for i < len(s) {
		r, sz := utf8.DecodeRuneInString(s[i:])
		if unicode.IsLetter(r) || unicode.IsDigit(r) ||
			r == '-' || r == '_' || r == '*' || r == '|' || r == '$' ||
			r == '.' || r == '\'' || r == '+' {
			i += sz
			continue
		}
		break
	}
	if i == 0 {
		return Term{}, s, fmt.Errorf("empty term")
	}
	t := Term{Pattern: s[:i]}
	s = s[i:]
	if strings.HasPrefix(s, "[") {
		end := strings.IndexByte(s, ']')
		if end < 0 {
			return Term{}, s, fmt.Errorf("unterminated index")
		}
		n := 0
		for _, c := range s[1:end] {
			if c < '0' || c > '9' {
				return Term{}, s, fmt.Errorf("bad index")
			}
			n = n*10 + int(c-'0')
		}
		t.Index = n
		s = s[end+1:]
	}
	return t, s, nil
}
