package corpussearch

import (
	"testing"

	"lpath/internal/tree"
)

// TestBackwardGeneration exercises queries whose later variables are
// related as the A-side of a call to an already-bound B — the
// backwardNodes candidate generator.
func TestBackwardGeneration(t *testing.T) {
	c := figureCorpus()
	cases := []struct {
		src  string
		want int
	}{
		// V bound first, then X generated backwards from each function.
		{`node: $ROOT; query: (V Exists) and (VP iDoms V) and (S iDoms VP); print: S`, 1},
		{`node: $ROOT; query: (N Exists) and (NP Doms N); print: NP`, 3},
		{`node: $ROOT; query: (N Exists) and (Det iPrecedes N); print: Det`, 1},
		{`node: $ROOT; query: (N Exists) and (Det Precedes N); print: Det`, 2},
		{`node: $ROOT; query: (N Exists) and (NP iDomsFirst N); print: NP`, 0},
		{`node: $ROOT; query: (N Exists) and (NP iDomsLast N); print: NP`, 2},
		{`node: $ROOT; query: (N Exists) and (NP DomsLeftmost N); print: NP`, 0},
		{`node: $ROOT; query: (dog Exists) and (NP DomsRightmost dog); print: NP`, 2},
		{`node: $ROOT; query: (NP Exists) and (V SisterPrecedes NP); print: V`, 1},
		{`node: $ROOT; query: (NP Exists) and (V iSisterPrecedes NP); print: V`, 1},
		{`node: $ROOT; query: (PP Exists) and (NP HasSister PP); print: NP`, 1},
	}
	for _, tc := range cases {
		if got := count(t, c, tc.src); got != tc.want {
			t.Errorf("%s: count = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestHoldsAllFunctions(t *testing.T) {
	c := figureCorpus()
	// Force holds() checks (no generator applies: both vars bound via
	// Exists-like full scans, relation only verified at eval).
	cases := []struct {
		src  string
		want int
	}{
		{`node: $ROOT; query: (Det iPrecedes Adj) or (Det iPrecedes N); print: Det`, 2},
		{`node: $ROOT; query: (NP iDoms Det) or (NP iDoms PP); print: NP`, 3},
		{`node: $ROOT; query: (V HasSister NP) and (V iSisterPrecedes NP); print: NP`, 1},
	}
	for _, tc := range cases {
		if got := count(t, c, tc.src); got != tc.want {
			t.Errorf("%s: count = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestNestedNegation(t *testing.T) {
	c := figureCorpus()
	// Negation containing a negation: NPs where it is NOT the case that
	// (there is a Det below with no following Adj below the NP).
	got := count(t, c, `node: NP; query: not ((NP Doms Det) and not (Det Precedes Adj)); print: NP`)
	// NP[I]: no Det → inner false → not → match.
	// NP[the old man]: Det(the) precedes Adj(old): inner (Doms && not true)=false → match.
	// NP[the old man with a dog]: Dets: the precedes old ✓ → for the inner
	// conjunction to hold we need a Det with NO following Adj: Det(a) has
	// none → inner true → no match.
	// NP[a dog]: Det(a), no Adj → inner true → no match.
	if got != 2 {
		t.Errorf("nested negation count = %d, want 2", got)
	}
}

func TestQueryStrings(t *testing.T) {
	if (Term{Pattern: "NP", Index: 2}).String() != "NP[2]" {
		t.Error("Term.String with index")
	}
	if (Term{Pattern: "NP"}).String() != "NP" {
		t.Error("Term.String without index")
	}
	for fn, want := range map[Fn]string{
		FnIDoms: "iDoms", FnDomsRightmost: "DomsRightmost", FnExists: "Exists",
	} {
		if fn.String() != want {
			t.Errorf("Fn(%d).String() = %q, want %q", fn, fn.String(), want)
		}
	}
}

func TestBoundaryWordMatch(t *testing.T) {
	// A word can be the boundary pattern itself.
	c := BuildCorpus(func() *tree.Corpus {
		tc := tree.NewCorpus()
		tc.Add(tree.Figure1())
		return tc
	}())
	if got := count(t, c, `node: saw; query: (saw Exists)`); got != 1 {
		t.Errorf("word boundary = %d", got)
	}
}

func TestParseGroupedExpression(t *testing.T) {
	q := MustParse(`node: S; query: ((S Doms saw) or (S Doms ran)) and (S iDoms VP)`)
	and, ok := q.Expr.(*AndE)
	if !ok {
		t.Fatalf("expr = %#v", q.Expr)
	}
	if _, ok := and.L.(*OrE); !ok {
		t.Fatalf("left = %#v", and.L)
	}
	c := figureCorpus()
	n, err := c.Count(q)
	if err != nil || n != 1 {
		t.Errorf("count = %d, %v", n, err)
	}
}
