package corpussearch

// EvalQueries maps the 23 evaluation queries of Figure 6(c) (by Q-number) to
// nearest-equivalent CorpusSearch queries used in the Figures 7–9
// comparison. Subtree-scoped LPath queries translate naturally to boundary
// (node:) restrictions; edge alignment uses the DomsLeftmost/DomsRightmost
// dialect extensions.
var EvalQueries = map[int]string{
	1:  `node: S; query: (S Doms saw); print: S`,
	2:  `node: $ROOT; query: (VB iPrecedes NP); print: NP`,
	3:  `node: $ROOT; query: (VP iDoms VB) and (VB Precedes NN); print: NN`,
	4:  `node: VP; query: (VP iDoms VB) and (VB Precedes NN); print: NN`,
	5:  `node: VP; query: (VP iDomsLast NP); print: NP`,
	6:  `node: VP; query: (VP DomsRightmost NP); print: NP`,
	7:  `node: VP; query: (VP DomsLeftmost VB) and (VB iPrecedes NP) and (NP iPrecedes PP) and (VP DomsRightmost PP); print: VP`,
	8:  `node: S; query: (S Doms NP) and (NP iDoms ADJP); print: S`,
	9:  `node: NP; query: not (NP Doms JJ); print: NP`,
	10: `node: $ROOT; query: (NP iPrecedes PP) and (PP Doms IN) and (IN iDoms of) and (PP iSisterPrecedes VP); print: NP`,
	11: `node: S; query: (what iPrecedes building); print: S`,
	12: `node: $ROOT; query: (rapprochement Exists); print: rapprochement`,
	13: `node: $ROOT; query: (1929 Exists); print: 1929`,
	14: `node: $ROOT; query: (ADVP-LOC-CLR Exists); print: ADVP-LOC-CLR`,
	15: `node: $ROOT; query: (WHPP Exists); print: WHPP`,
	16: `node: $ROOT; query: (RRC iDoms PP-TMP); print: PP-TMP`,
	17: `node: $ROOT; query: (UCP-PRD iDoms ADJP-PRD); print: ADJP-PRD`,
	18: `node: $ROOT; query: (NP[1] iDoms NP[2]) and (NP[2] iDoms NP[3]) and (NP[3] iDoms NP[4]) and (NP[4] iDoms NP[5]); print: NP[5]`,
	19: `node: $ROOT; query: (VP[1] iDoms VP[2]) and (VP[2] iDoms VP[3]); print: VP[3]`,
	20: `node: $ROOT; query: (PP iSisterPrecedes SBAR); print: SBAR`,
	21: `node: $ROOT; query: (ADVP iSisterPrecedes ADJP); print: ADJP`,
	22: `node: $ROOT; query: (NP[1] iSisterPrecedes NP[2]) and (NP[2] iSisterPrecedes NP[3]); print: NP[3]`,
	23: `node: $ROOT; query: (VP[1] iSisterPrecedes VP[2]); print: VP[2]`,
}
