package tgrep

import (
	"strings"
	"testing"

	"lpath/internal/tree"
)

func figureCorpus() *Corpus {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	return BuildCorpus(c)
}

func count(t *testing.T, c *Corpus, pattern string) int {
	t.Helper()
	p, err := Compile(pattern)
	if err != nil {
		t.Fatalf("Compile(%q): %v", pattern, err)
	}
	return c.Count(p)
}

func sigs(ms []Match) []string {
	out := make([]string, 0, len(ms))
	for _, m := range ms {
		if m.Node != nil {
			out = append(out, m.Node.Tag+"["+strings.Join(m.Node.Words(), " ")+"]")
		} else {
			out = append(out, "word:"+m.Word)
		}
	}
	return out
}

func TestCompileBasics(t *testing.T) {
	p := MustCompile(`S << saw`)
	if len(p.Head.Labels) != 1 || p.Head.Labels[0] != "S" {
		t.Errorf("head = %+v", p.Head)
	}
	if len(p.Rels) != 1 || p.Rels[0].Op != OpDom {
		t.Errorf("rels = %+v", p.Rels)
	}
	if arg := p.Rels[0].Arg; arg.Head.Labels[0] != "saw" {
		t.Errorf("arg = %+v", arg.Head)
	}
}

func TestCompileOperators(t *testing.T) {
	cases := map[string]RelOp{
		`A < B`: OpChild, `A > B`: OpParent, `A << B`: OpDom, `A >> B`: OpDomBy,
		`A <, B`: OpFirstChild, `A <' B`: OpLastChild, `A <- B`: OpLastChild,
		`A >, B`: OpIsFirstChild, `A >' B`: OpIsLastChild, `A >- B`: OpIsLastChild,
		`A <<, B`: OpLeftmostDesc, `A <<' B`: OpRightmostDesc,
		`A >>, B`: OpIsLeftmost, `A >>' B`: OpIsRightmost,
		`A . B`: OpImmPrecedes, `A , B`: OpImmFollows,
		`A .. B`: OpPrecedes, `A ,, B`: OpFollows,
		`A $ B`: OpSister, `A $. B`: OpSisterImmPre, `A $, B`: OpSisterImmFol,
		`A $.. B`: OpSisterPre, `A $,, B`: OpSisterFol,
	}
	for src, op := range cases {
		p, err := Compile(src)
		if err != nil {
			t.Errorf("Compile(%q): %v", src, err)
			continue
		}
		if len(p.Rels) != 1 || p.Rels[0].Op != op {
			t.Errorf("Compile(%q) op = %v, want %v", src, p.Rels[0].Op, op)
		}
	}
}

func TestCompileNesting(t *testing.T) {
	p := MustCompile(`S << (NP < ADJP)`)
	arg := p.Rels[0].Arg
	if arg.Head.Labels[0] != "NP" || len(arg.Rels) != 1 || arg.Rels[0].Op != OpChild {
		t.Errorf("nested arg = %+v", arg)
	}
	p = MustCompile(`NP > (NP > (NP > NP))`)
	depth := 0
	for q := p; len(q.Rels) > 0; q = q.Rels[0].Arg {
		depth++
	}
	if depth != 3 {
		t.Errorf("nesting depth = %d", depth)
	}
}

func TestCompileNegationAndAlternation(t *testing.T) {
	p := MustCompile(`NP !<< JJ`)
	if !p.Rels[0].Negated {
		t.Error("negation lost")
	}
	p = MustCompile(`NP|VP << NN`)
	if len(p.Head.Labels) != 2 {
		t.Errorf("alternation = %+v", p.Head)
	}
	p = MustCompile(`__ < NN`)
	if !p.Head.wildcard {
		t.Error("wildcard lost")
	}
}

func TestCompileBindings(t *testing.T) {
	p := MustCompile(`NN >> VP=p ,, (VB > =p)`)
	if p.Rels[0].Arg.Head.Bind != "p" {
		t.Errorf("binding = %+v", p.Rels[0].Arg.Head)
	}
	if p.Rels[1].Arg.Rels[0].Arg.Head.Backref != "p" {
		t.Errorf("backref = %+v", p.Rels[1].Arg.Rels[0].Arg.Head)
	}
	if _, err := Compile(`NN ,, (VB > =p)`); err == nil {
		t.Error("unbound backref should fail")
	}
}

func TestCompileErrors(t *testing.T) {
	for _, src := range []string{
		``, `<< NP`, `S <<`, `S << (NP`, `S ! NP`, `S |`, `__|NP << X`, `S << ()`,
	} {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

func TestPatternString(t *testing.T) {
	for _, src := range []string{
		`S << saw`, `NP !<< JJ`, `NN >> VP=p ,, (VB > =p)`,
		`S << (NP < ADJP)`, `NP|VP < NN`,
	} {
		p := MustCompile(src)
		printed := p.String()
		p2, err := Compile(printed)
		if err != nil {
			t.Errorf("reprint %q → %q: %v", src, printed, err)
			continue
		}
		if p2.String() != printed {
			t.Errorf("unstable print: %q vs %q", p2.String(), printed)
		}
	}
}

func TestSearchFigure1(t *testing.T) {
	c := figureCorpus()
	cases := []struct {
		pattern string
		want    int
	}{
		{`S << saw`, 1},              // Q1-style word dominance
		{`NP , V`, 2},                // immediate-follows: NP(3,9), NP(3,6)
		{`N ,, (V > VP)`, 3},         // man, dog, today follow the verb
		{`N >> VP=p ,, (V > =p)`, 2}, // scoped: today excluded
		{`NP >' VP`, 1},              // rightmost child of VP
		{`NP >>' VP`, 2},             // rightmost descendants of VP
		{`S << (NP < Adj)`, 1},
		{`NP !<< Adj`, 2}, // NP[I], NP[a dog]
		{`saw`, 1},        // bare word lookup
		{`rapprochement`, 0},
		{`NP < Det`, 2},
		{`NP <, Det`, 2},
		{`NP <' N`, 2},
		{`Det >, NP`, 2},
		{`N >' NP`, 2},
		{`VP <<, V`, 1},
		{`VP <<' N`, 1}, // N(dog) is the rightmost descendant chain
		{`NP $, V`, 1},  // sister immediately following V
		{`NP $.. V`, 0}, // no sister strictly preceding V... (V is first)
		{`V $.. NP`, 1},
		{`NP $ PP`, 1},
		{`Det .. N`, 2}, // each Det precedes some N
		{`__ < saw`, 1}, // wildcard head
		{`NP > (NP > NP)`, 0},
		{`N , Prep`, 0},   // "a" follows "with"; no N starts at terminal 7
		{`Det , Prep`, 1}, // Det(a) immediately follows Prep(with)
	}
	for _, tc := range cases {
		if got := count(t, c, tc.pattern); got != tc.want {
			p := MustCompile(tc.pattern)
			t.Errorf("%s: count = %d, want %d (matches %v)",
				tc.pattern, got, tc.want, sigs(c.Search(p)))
		}
	}
}

// TestSearchAgainstLPathSemantics pins a few adjacency cases that must agree
// with the LPath immediate-following examples from the paper.
func TestSearchAgainstLPathSemantics(t *testing.T) {
	c := figureCorpus()
	// Section 1: nodes immediately following V are NP, NP and Det (plus the
	// word "the" at the terminal level in the TGrep2 view).
	p := MustCompile(`__ , V`)
	ms := c.Search(p)
	var tags []string
	for _, m := range ms {
		if m.Node != nil {
			tags = append(tags, m.Node.Tag)
		} else {
			tags = append(tags, "w:"+m.Word)
		}
	}
	wantTags := map[string]bool{"NP": true, "Det": true, "w:the": true}
	if len(ms) != 4 {
		t.Fatalf("__ , V matched %v", tags)
	}
	for _, tag := range tags {
		if !wantTags[tag] {
			t.Errorf("unexpected match %s", tag)
		}
	}
}

func TestIndexPruning(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	c.Add(tree.MustParseTree(`(S (NP you) (VP (V ran)))`))
	tc := BuildCorpus(c)
	// "saw" appears only in tree 1; the index must prune tree 2.
	p := MustCompile(`S << saw`)
	if got := tc.candidateTrees(p); len(got) != 1 || got[0] != 0 {
		t.Errorf("candidateTrees = %v", got)
	}
	// Wildcard-only patterns scan everything.
	p = MustCompile(`__ < __`)
	if got := tc.candidateTrees(p); len(got) != 2 {
		t.Errorf("candidateTrees(wildcard) = %v", got)
	}
	// Negated labels must not prune.
	p = MustCompile(`S !<< saw`)
	if got := tc.candidateTrees(p); len(got) != 2 {
		t.Errorf("candidateTrees(negated) = %v", got)
	}
	if got := tc.Count(p); got != 1 {
		t.Errorf("S !<< saw count = %d, want 1", got)
	}
}

func TestEvalQueriesCompile(t *testing.T) {
	if len(EvalQueries) != 23 {
		t.Fatalf("EvalQueries has %d entries", len(EvalQueries))
	}
	for id, q := range EvalQueries {
		if _, err := Compile(q); err != nil {
			t.Errorf("Q%d %q: %v", id, q, err)
		}
	}
}

func TestWordsWithDots(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.MustParseTree(`(S (NNP U.S.) (VBD fell))`))
	tc := BuildCorpus(c)
	if got := count(t, tc, `S << "U.S."`); got != 1 {
		t.Errorf("U.S. lookup = %d", got)
	}
	if got := count(t, tc, `S << U.S`); got != 0 {
		t.Errorf("unquoted partial lookup = %d, want 0", got)
	}
	if got := count(t, tc, `NNP . VBD`); got != 1 {
		t.Errorf("NNP . VBD = %d", got)
	}
}
