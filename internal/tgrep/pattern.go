// Package tgrep implements a TGrep2-dialect tree pattern matcher, the first
// baseline system of the paper's evaluation (Section 5.1.1, [25]).
//
// TGrep2 queries are nested expressions relating a head node to argument
// nodes: `S << saw` finds S nodes dominating the word "saw". As in TGrep2,
// words are leaf nodes whose label is the word itself, all relations in a
// chain apply to the head node, parenthesized arguments carry their own
// relations, `=name` suffixes bind nodes and bare `=name` arguments refer
// back to them, and `!` negates a relation.
//
// The matcher reproduces TGrep2's algorithmic shape: a corpus-wide inverted
// index from labels to trees prunes the search when the pattern contains
// literal labels, and matching inside each candidate tree is backtracking
// search — there is no positional labeling scheme, which is exactly what the
// paper compares against.
package tgrep

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// RelOp enumerates the supported TGrep2 relations.
type RelOp int

const (
	OpChild         RelOp = iota // A < B : A immediately dominates B
	OpParent                     // A > B : A is immediately dominated by B
	OpDom                        // A << B : A dominates B
	OpDomBy                      // A >> B : A is dominated by B
	OpFirstChild                 // A <, B : B is the first child of A
	OpLastChild                  // A <' B (or <-) : B is the last child of A
	OpIsFirstChild               // A >, B : A is the first child of B
	OpIsLastChild                // A >' B (or >-) : A is the last child of B
	OpLeftmostDesc               // A <<, B : B is the leftmost descendant of A
	OpRightmostDesc              // A <<' B : B is the rightmost descendant of A
	OpIsLeftmost                 // A >>, B : A is the leftmost descendant of B
	OpIsRightmost                // A >>' B : A is the rightmost descendant of B
	OpImmPrecedes                // A . B : A immediately precedes B
	OpImmFollows                 // A , B : A immediately follows B
	OpPrecedes                   // A .. B : A precedes B
	OpFollows                    // A ,, B : A follows B
	OpSister                     // A $ B : A and B are sisters
	OpSisterImmPre               // A $. B : sister of and immediately precedes
	OpSisterImmFol               // A $, B : sister of and immediately follows
	OpSisterPre                  // A $.. B : sister of and precedes
	OpSisterFol                  // A $,, B : sister of and follows
)

var relNames = map[RelOp]string{
	OpChild: "<", OpParent: ">", OpDom: "<<", OpDomBy: ">>",
	OpFirstChild: "<,", OpLastChild: "<'", OpIsFirstChild: ">,", OpIsLastChild: ">'",
	OpLeftmostDesc: "<<,", OpRightmostDesc: "<<'", OpIsLeftmost: ">>,", OpIsRightmost: ">>'",
	OpImmPrecedes: ".", OpImmFollows: ",", OpPrecedes: "..", OpFollows: ",,",
	OpSister: "$", OpSisterImmPre: "$.", OpSisterImmFol: "$,",
	OpSisterPre: "$..", OpSisterFol: "$,,",
}

func (op RelOp) String() string { return relNames[op] }

// NodeSpec matches a node label: one or more alternated literals, or the
// wildcard (__ or *). An optional binding name captures the matched node.
type NodeSpec struct {
	Labels   []string // empty = wildcard
	Bind     string   // "=name" binding, "" if none
	Backref  string   // non-empty when the spec is a bare =name backref
	wildcard bool
}

// Matches reports whether the spec matches a label.
func (ns *NodeSpec) Matches(label string) bool {
	if ns.wildcard {
		return true
	}
	for _, l := range ns.Labels {
		if l == label {
			return true
		}
	}
	return false
}

// Rel is one relation of a pattern: operator, negation flag and argument.
type Rel struct {
	Op      RelOp
	Negated bool
	Arg     *Pattern
}

// Pattern is a head node spec plus its chained relations.
type Pattern struct {
	Head NodeSpec
	Rels []Rel
}

// RequiredLabels returns the literal labels that any match must contain:
// the head's single-alternative labels and those of non-negated arguments,
// recursively. Used for index pruning.
func (p *Pattern) RequiredLabels() []string {
	var out []string
	var rec func(q *Pattern)
	rec = func(q *Pattern) {
		if !q.Head.wildcard && len(q.Head.Labels) == 1 && q.Head.Backref == "" {
			out = append(out, q.Head.Labels[0])
		}
		for _, r := range q.Rels {
			if !r.Negated {
				rec(r.Arg)
			}
		}
	}
	rec(p)
	return out
}

// String renders the pattern in TGrep2 syntax.
func (p *Pattern) String() string {
	var b strings.Builder
	writePattern(&b, p, false)
	return b.String()
}

func writePattern(b *strings.Builder, p *Pattern, parens bool) {
	if parens {
		b.WriteByte('(')
	}
	switch {
	case p.Head.Backref != "":
		b.WriteString("=" + p.Head.Backref)
	case p.Head.wildcard:
		b.WriteString("__")
	default:
		for i, l := range p.Head.Labels {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(quoteLabel(l))
		}
	}
	if p.Head.Bind != "" {
		b.WriteString("=" + p.Head.Bind)
	}
	for _, r := range p.Rels {
		b.WriteByte(' ')
		if r.Negated {
			b.WriteByte('!')
		}
		b.WriteString(r.Op.String())
		b.WriteByte(' ')
		writePattern(b, r.Arg, len(r.Arg.Rels) > 0)
	}
	if parens {
		b.WriteByte(')')
	}
}

// quoteLabel quotes a label that would not re-lex as a bare literal.
func quoteLabel(l string) string {
	needsQuote := l == "" || l == "__" || l == "*" ||
		strings.HasPrefix(l, ".") || strings.HasSuffix(l, ".") ||
		strings.HasPrefix(l, "'") || strings.ContainsAny(l, " \t()|=!<>,$\"")
	if needsQuote {
		return `"` + l + `"`
	}
	return l
}

// Compile parses a TGrep2 pattern.
func Compile(src string) (*Pattern, error) {
	p := &tparser{src: src}
	pat, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos < len(p.src) {
		return nil, p.errf("trailing input")
	}
	if err := checkBindings(pat); err != nil {
		return nil, err
	}
	return pat, nil
}

// MustCompile is Compile panicking on error.
func MustCompile(src string) *Pattern {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// checkBindings verifies that every backref is bound earlier in a
// left-to-right traversal.
func checkBindings(p *Pattern) error {
	bound := map[string]bool{}
	var rec func(q *Pattern) error
	rec = func(q *Pattern) error {
		if q.Head.Backref != "" && !bound[q.Head.Backref] {
			return fmt.Errorf("tgrep: backreference =%s used before binding", q.Head.Backref)
		}
		if q.Head.Bind != "" {
			bound[q.Head.Bind] = true
		}
		for _, r := range q.Rels {
			if err := rec(r.Arg); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(p)
}

type tparser struct {
	src string
	pos int
}

func (p *tparser) errf(format string, args ...any) error {
	return fmt.Errorf("tgrep: %s at offset %d in %q", fmt.Sprintf(format, args...), p.pos, p.src)
}

func (p *tparser) ws() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// relation operators, longest first for maximal munch.
var relTokens = []struct {
	tok string
	op  RelOp
}{
	{"<<,", OpLeftmostDesc}, {"<<'", OpRightmostDesc}, {">>,", OpIsLeftmost}, {">>'", OpIsRightmost},
	{"$..", OpSisterPre}, {"$,,", OpSisterFol},
	{"<<", OpDom}, {">>", OpDomBy},
	{"<,", OpFirstChild}, {"<'", OpLastChild}, {"<-", OpLastChild},
	{">,", OpIsFirstChild}, {">'", OpIsLastChild}, {">-", OpIsLastChild},
	{"$.", OpSisterImmPre}, {"$,", OpSisterImmFol},
	{"..", OpPrecedes}, {",,", OpFollows},
	{"<", OpChild}, {">", OpParent},
	{".", OpImmPrecedes}, {",", OpImmFollows}, {"$", OpSister},
}

func (p *tparser) relOp() (RelOp, bool) {
	for _, rt := range relTokens {
		if strings.HasPrefix(p.src[p.pos:], rt.tok) {
			p.pos += len(rt.tok)
			return rt.op, true
		}
	}
	return 0, false
}

func isLabelRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) ||
		r == '-' || r == '_' || r == '*' || r == '+' || r == '\'' || r == '.'
}

// label scans a label literal. A '.' is accepted inside a label only when
// surrounded by label runes ("U.S") — a trailing or leading dot is the
// precedes operator; labels with trailing dots can be written quoted, as in
// TGrep2 ("U.S."). A bare "*" or "__" is the wildcard.
func (p *tparser) label() (string, bool) {
	if p.pos < len(p.src) && p.src[p.pos] == '"' {
		end := strings.IndexByte(p.src[p.pos+1:], '"')
		if end < 0 {
			return "", false
		}
		lbl := p.src[p.pos+1 : p.pos+1+end]
		p.pos += end + 2
		return lbl, lbl != ""
	}
	start := p.pos
	for p.pos < len(p.src) {
		r, sz := utf8.DecodeRuneInString(p.src[p.pos:])
		if r == '.' {
			nr, _ := utf8.DecodeRuneInString(p.src[p.pos+sz:])
			if p.pos == start || !isLabelRune(nr) || nr == '.' {
				break
			}
			p.pos += sz
			continue
		}
		if r == '\'' && p.pos == start {
			break
		}
		if !isLabelRune(r) {
			break
		}
		p.pos += sz
	}
	if p.pos == start {
		return "", false
	}
	return p.src[start:p.pos], true
}

func (p *tparser) parsePattern() (*Pattern, error) {
	p.ws()
	spec, err := p.parseNodeSpec()
	if err != nil {
		return nil, err
	}
	pat := &Pattern{Head: *spec}
	for {
		p.ws()
		if p.pos >= len(p.src) || p.src[p.pos] == ')' {
			return pat, nil
		}
		neg := false
		if p.src[p.pos] == '!' {
			neg = true
			p.pos++
			p.ws()
		}
		op, ok := p.relOp()
		if !ok {
			if neg {
				return nil, p.errf("expected relation after '!'")
			}
			return pat, nil
		}
		p.ws()
		var arg *Pattern
		if p.pos < len(p.src) && p.src[p.pos] == '(' {
			p.pos++
			arg, err = p.parsePattern()
			if err != nil {
				return nil, err
			}
			p.ws()
			if p.pos >= len(p.src) || p.src[p.pos] != ')' {
				return nil, p.errf("expected ')'")
			}
			p.pos++
		} else {
			spec, err := p.parseNodeSpec()
			if err != nil {
				return nil, err
			}
			arg = &Pattern{Head: *spec}
		}
		pat.Rels = append(pat.Rels, Rel{Op: op, Negated: neg, Arg: arg})
	}
}

func (p *tparser) parseNodeSpec() (*NodeSpec, error) {
	p.ws()
	if p.pos < len(p.src) && p.src[p.pos] == '=' {
		p.pos++
		name, ok := p.label()
		if !ok {
			return nil, p.errf("expected name after '='")
		}
		return &NodeSpec{Backref: name}, nil
	}
	first, ok := p.label()
	if !ok {
		return nil, p.errf("expected node label")
	}
	spec := &NodeSpec{}
	if first == "__" || first == "*" {
		spec.wildcard = true
	} else {
		spec.Labels = []string{first}
	}
	for p.pos < len(p.src) && p.src[p.pos] == '|' {
		p.pos++
		alt, ok := p.label()
		if !ok {
			return nil, p.errf("expected label after '|'")
		}
		if spec.wildcard {
			return nil, p.errf("wildcard cannot alternate")
		}
		spec.Labels = append(spec.Labels, alt)
	}
	if p.pos < len(p.src) && p.src[p.pos] == '=' {
		p.pos++
		name, ok := p.label()
		if !ok {
			return nil, p.errf("expected binding name after '='")
		}
		spec.Bind = name
	}
	return spec, nil
}
