package tgrep

// EvalQueries maps the 23 evaluation queries of Figure 6(c) (by Q-number) to
// the nearest-equivalent TGrep2 patterns used in the Figures 7–9
// comparison. Where LPath's subtree scoping or edge alignment has no TGrep2
// primitive, the pattern uses node naming and the leftmost/rightmost
// descendant relations, as a TGrep2 user would.
var EvalQueries = map[int]string{
	1:  `S << saw`,
	2:  `NP , VB`,
	3:  `NN ,, (VB > VP)`,
	4:  `NN >> VP=p ,, (VB > =p)`,
	5:  `NP >' VP`,
	6:  `NP >>' VP`,
	7:  `VP=p <<, VB=v << (NP=n , =v) << (PP , =n >>' =p)`,
	8:  `S << (NP < ADJP)`,
	9:  `NP !<< JJ`,
	10: `NP . (PP << (IN < of) $. VP)`,
	11: `S << (what . building)`,
	12: `rapprochement`,
	13: `1929`,
	14: `ADVP-LOC-CLR`,
	15: `WHPP`,
	16: `PP-TMP > RRC`,
	17: `ADJP-PRD > UCP-PRD`,
	18: `NP > (NP > (NP > (NP > NP)))`,
	19: `VP > (VP > VP)`,
	20: `SBAR $, PP`,
	21: `ADJP $, ADVP`,
	22: `NP $, (NP $, NP)`,
	23: `VP $, VP`,
}
