package tgrep

import (
	"sort"

	"lpath/internal/tree"
)

// tnode is the matcher's view of a tree node. Words appear as extra leaf
// nodes labeled with the word itself, as in TGrep2's corpus format.
type tnode struct {
	label    string
	parent   *tnode
	children []*tnode
	first    int32 // 1-based position of the leftmost covered terminal
	last     int32 // position of the rightmost covered terminal
	order    int32 // preorder index within the tree
	elem     *tree.Node
}

type ttree struct {
	id    int
	root  *tnode
	nodes []*tnode // preorder
}

// Corpus is a TGrep2-style searchable corpus: trees plus an inverted index
// from labels (tags and words) to the trees containing them.
type Corpus struct {
	trees []*ttree
	index map[string][]int32 // label → indexes into trees, ascending
}

// BuildCorpus converts a tree corpus into matcher form and builds the label
// index.
func BuildCorpus(c *tree.Corpus) *Corpus {
	tc := &Corpus{index: make(map[string][]int32)}
	for _, t := range c.Trees {
		tt := buildTree(t)
		treeIdx := int32(len(tc.trees))
		tc.trees = append(tc.trees, tt)
		seen := map[string]bool{}
		for _, n := range tt.nodes {
			if !seen[n.label] {
				seen[n.label] = true
				tc.index[n.label] = append(tc.index[n.label], treeIdx)
			}
		}
	}
	return tc
}

func buildTree(t *tree.Tree) *ttree {
	tt := &ttree{id: t.ID}
	var leaf int32
	var rec func(n *tree.Node, parent *tnode) *tnode
	rec = func(n *tree.Node, parent *tnode) *tnode {
		tn := &tnode{label: n.Tag, parent: parent, order: int32(len(tt.nodes)), elem: n}
		tt.nodes = append(tt.nodes, tn)
		if len(n.Children) == 0 {
			// The preterminal covers one terminal; the word is a child node.
			leaf++
			tn.first, tn.last = leaf, leaf
			if n.Word != "" {
				w := &tnode{label: n.Word, parent: tn, order: int32(len(tt.nodes)),
					first: leaf, last: leaf}
				tt.nodes = append(tt.nodes, w)
				tn.children = []*tnode{w}
			}
			return tn
		}
		for _, c := range n.Children {
			tn.children = append(tn.children, rec(c, tn))
		}
		tn.first = tn.children[0].first
		tn.last = tn.children[len(tn.children)-1].last
		return tn
	}
	if t.Root != nil {
		tt.root = rec(t.Root, nil)
	}
	return tt
}

// Match is one result: the tree and the head node's underlying element (nil
// when the head matched a word node).
type Match struct {
	TreeID int
	Node   *tree.Node
	Word   string // set when the head matched a word node
}

// Search returns the matches of the pattern: one per distinct head-node
// binding, in corpus order.
func (c *Corpus) Search(p *Pattern) []Match {
	var out []Match
	for _, ti := range c.candidateTrees(p) {
		tt := c.trees[ti]
		for _, n := range tt.nodes {
			if !p.Head.Matches(n.label) {
				continue
			}
			// Fresh environment per head candidate: bindings must not leak
			// between independent matches.
			env := map[string]*tnode{}
			if matchRels(tt, n, p, env) {
				m := Match{TreeID: tt.id}
				if n.elem != nil {
					m.Node = n.elem
				} else {
					m.Word = n.label
				}
				out = append(out, m)
			}
		}
	}
	return out
}

// Count returns the number of matches.
func (c *Corpus) Count(p *Pattern) int { return len(c.Search(p)) }

// candidateTrees intersects the posting lists of the pattern's required
// labels; with no usable literal it scans every tree.
func (c *Corpus) candidateTrees(p *Pattern) []int32 {
	labels := p.RequiredLabels()
	var lists [][]int32
	for _, l := range labels {
		lists = append(lists, c.index[l])
	}
	if len(lists) == 0 {
		all := make([]int32, len(c.trees))
		for i := range all {
			all[i] = int32(i)
		}
		return all
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	out := lists[0]
	for _, l := range lists[1:] {
		out = intersect(out, l)
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

func intersect(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// matchRels checks whether the head node satisfies the pattern's relation
// chain, with backtracking over argument bindings. The head's own binding is
// installed first.
func matchRels(tt *ttree, head *tnode, p *Pattern, env map[string]*tnode) bool {
	if p.Head.Bind != "" {
		prev, had := env[p.Head.Bind]
		env[p.Head.Bind] = head
		ok := matchRelList(tt, head, p.Rels, env)
		if had {
			env[p.Head.Bind] = prev
		} else if !ok {
			delete(env, p.Head.Bind)
		}
		return ok
	}
	return matchRelList(tt, head, p.Rels, env)
}

func matchRelList(tt *ttree, head *tnode, rels []Rel, env map[string]*tnode) bool {
	if len(rels) == 0 {
		return true
	}
	r := rels[0]
	if r.Negated {
		// Negation: no argument node may satisfy the relation + pattern.
		found := false
		forEachRelated(tt, head, r.Op, func(b *tnode) bool {
			if argMatches(tt, b, r.Arg, env) {
				found = true
				return false
			}
			return true
		})
		if found {
			return false
		}
		return matchRelList(tt, head, rels[1:], env)
	}
	ok := false
	forEachRelated(tt, head, r.Op, func(b *tnode) bool {
		if !argMatches(tt, b, r.Arg, env) {
			return true
		}
		// Bind and recurse into the argument's own relations, then the
		// remaining relations of the head.
		saved, had := map[string]*tnode{}, map[string]bool{}
		if r.Arg.Head.Bind != "" {
			saved[r.Arg.Head.Bind], had[r.Arg.Head.Bind] = env[r.Arg.Head.Bind], envHas(env, r.Arg.Head.Bind)
			env[r.Arg.Head.Bind] = b
		}
		if matchRelList(tt, b, r.Arg.Rels, env) && matchRelList(tt, head, rels[1:], env) {
			ok = true
			return false
		}
		for k, v := range saved {
			if had[k] {
				env[k] = v
			} else {
				delete(env, k)
			}
		}
		return true
	})
	return ok
}

func envHas(env map[string]*tnode, k string) bool {
	_, ok := env[k]
	return ok
}

// argMatches checks the argument's node spec (label alternation, wildcard,
// or backref identity).
func argMatches(tt *ttree, b *tnode, arg *Pattern, env map[string]*tnode) bool {
	if arg.Head.Backref != "" {
		return env[arg.Head.Backref] == b
	}
	_ = tt
	return arg.Head.Matches(b.label)
}

// forEachRelated enumerates the nodes related to head by op, calling f until
// it returns false.
func forEachRelated(tt *ttree, a *tnode, op RelOp, f func(*tnode) bool) {
	switch op {
	case OpChild:
		for _, b := range a.children {
			if !f(b) {
				return
			}
		}
	case OpParent:
		if a.parent != nil {
			f(a.parent)
		}
	case OpDom:
		var rec func(n *tnode) bool
		rec = func(n *tnode) bool {
			for _, b := range n.children {
				if !f(b) || !rec(b) {
					return false
				}
			}
			return true
		}
		rec(a)
	case OpDomBy:
		for b := a.parent; b != nil; b = b.parent {
			if !f(b) {
				return
			}
		}
	case OpFirstChild:
		if len(a.children) > 0 {
			f(a.children[0])
		}
	case OpLastChild:
		if len(a.children) > 0 {
			f(a.children[len(a.children)-1])
		}
	case OpIsFirstChild:
		if a.parent != nil && a.parent.children[0] == a {
			f(a.parent)
		}
	case OpIsLastChild:
		if a.parent != nil && a.parent.children[len(a.parent.children)-1] == a {
			f(a.parent)
		}
	case OpLeftmostDesc:
		for b := firstChild(a); b != nil; b = firstChild(b) {
			if !f(b) {
				return
			}
		}
	case OpRightmostDesc:
		for b := lastChild(a); b != nil; b = lastChild(b) {
			if !f(b) {
				return
			}
		}
	case OpIsLeftmost:
		for b := a.parent; b != nil; b = b.parent {
			if b.first != a.first {
				return
			}
			if !f(b) {
				return
			}
		}
	case OpIsRightmost:
		for b := a.parent; b != nil; b = b.parent {
			if b.last != a.last {
				return
			}
			if !f(b) {
				return
			}
		}
	case OpImmPrecedes:
		for _, b := range tt.nodes {
			if b.first == a.last+1 && !f(b) {
				return
			}
		}
	case OpImmFollows:
		for _, b := range tt.nodes {
			if b.last+1 == a.first && !f(b) {
				return
			}
		}
	case OpPrecedes:
		for _, b := range tt.nodes {
			if b.first > a.last && !f(b) {
				return
			}
		}
	case OpFollows:
		for _, b := range tt.nodes {
			if b.last < a.first && !f(b) {
				return
			}
		}
	case OpSister, OpSisterImmPre, OpSisterImmFol, OpSisterPre, OpSisterFol:
		if a.parent == nil {
			return
		}
		for _, b := range a.parent.children {
			if b == a {
				continue
			}
			switch op {
			case OpSisterImmPre:
				if b.first != a.last+1 {
					continue
				}
			case OpSisterImmFol:
				if b.last+1 != a.first {
					continue
				}
			case OpSisterPre:
				if b.first <= a.last {
					continue
				}
			case OpSisterFol:
				if b.last >= a.first {
					continue
				}
			}
			if !f(b) {
				return
			}
		}
	}
}

func firstChild(n *tnode) *tnode {
	if len(n.children) == 0 {
		return nil
	}
	return n.children[0]
}

func lastChild(n *tnode) *tnode {
	if len(n.children) == 0 {
		return nil
	}
	return n.children[len(n.children)-1]
}
