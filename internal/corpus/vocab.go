package corpus

import "fmt"

// Vocabulary pools. Each part of speech mixes a hand-written core with
// generated filler forms, giving realistic type/token ratios without
// shipping any external data.

func expandVocab(core []string, prefix string, n int) []string {
	out := make([]string, 0, len(core)+n)
	out = append(out, core...)
	for i := 1; i <= n; i++ {
		out = append(out, fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

var (
	commonNouns = expandVocab([]string{
		"man", "dog", "company", "market", "stock", "price", "share",
		"year", "time", "way", "trade", "group", "plan", "sale", "rate",
		"building", "report", "bank", "unit", "business",
	}, "noun", 600)

	properNouns = expandVocab([]string{
		"Smith", "Johnson", "Washington", "York", "Tokyo", "London",
		"Congress", "Ford", "Exxon", "Boeing",
	}, "Name", 400)

	verbs = expandVocab([]string{
		"said", "made", "bought", "sold", "offered", "reported", "rose",
		"fell", "agreed", "announced", "expected", "took",
	}, "verbed", 200)

	baseVerbs = expandVocab([]string{
		"buy", "sell", "make", "offer", "take", "keep", "raise", "pay",
	}, "verb", 100)

	adjectives = expandVocab([]string{
		"old", "new", "big", "last", "major", "strong", "federal",
		"financial", "corporate", "foreign",
	}, "adj", 150)

	adverbs = expandVocab([]string{
		"today", "still", "sharply", "recently", "only", "early",
	}, "adv", 60)

	prepositions = []string{
		"of", "in", "for", "on", "with", "at", "by", "from", "about",
		"after", "under", "over",
	}

	determiners = []string{"the", "a", "an", "this", "that", "some", "any", "each"}

	pronouns = []string{"it", "he", "she", "they", "we", "you", "I"}

	modals = []string{"will", "would", "could", "may", "might", "should", "can"}

	conjunctions = []string{"and", "or", "but"}

	numbers = expandVocab([]string{"10", "25", "1988", "100", "3.5"}, "", 0)

	interjections = []string{"uh", "um", "well", "yeah", "right", "okay", "huh"}

	// functionTags decorate phrasal categories to approximate the
	// Treebank's wide tag inventory (Figure 6(a): 1,274 unique WSJ tags).
	functionTags = []string{
		"SBJ", "PRD", "TMP", "LOC", "CLR", "MNR", "DIR", "ADV", "TTL",
		"NOM", "LGS", "EXT", "PRP", "DTV", "HLN",
	}
)
