package corpus

import (
	"math/rand"

	"lpath/internal/tree"
)

// Generate produces a deterministic synthetic corpus for the configuration.
// Scale values ≤ 0 default to 0.01 (a smoke-test corpus).
func Generate(cfg Config) *tree.Corpus {
	scale := cfg.Scale
	if scale <= 0 {
		scale = 0.01
	}
	full := wsjFullSentences
	if cfg.Profile == SWB {
		full = swbFullSentences
	}
	n := int(float64(full)*scale + 0.5)
	if n < 1 {
		n = 1
	}
	g := &generator{
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		profile: cfg.Profile,
	}
	c := tree.NewCorpus()
	for i := 0; i < n; i++ {
		c.Add(tree.NewTree(g.sentence()))
	}
	plantAll(c, cfg.Profile, scale, rand.New(rand.NewSource(cfg.Seed+1)))
	return c
}

type generator struct {
	rng     *rand.Rand
	profile Profile
}

func (g *generator) pick(words []string) string {
	// Zipf-flavored pick: favor the head of the list so core words
	// dominate tokens while filler forms stretch the vocabulary.
	n := len(words)
	if n == 1 {
		return words[0]
	}
	r := g.rng.Float64()
	idx := int(r * r * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return words[idx]
}

func (g *generator) chance(p float64) bool { return g.rng.Float64() < p }

func leaf(tag, word string) *tree.Node { return &tree.Node{Tag: tag, Word: word} }

func phrase(tag string, children ...*tree.Node) *tree.Node {
	n := &tree.Node{Tag: tag}
	for _, c := range children {
		n.AddChild(c)
	}
	return n
}

// decorate optionally appends function tags to a phrasal category,
// stretching the tag inventory like the Treebank's (Figure 6(a)).
func (g *generator) decorate(base string) string {
	if !g.chance(0.06) {
		return base
	}
	tag := base + "-" + functionTags[g.rng.Intn(len(functionTags))]
	if g.chance(0.15) {
		tag += "-" + functionTags[g.rng.Intn(len(functionTags))]
	}
	if g.chance(0.12) {
		tag += "-" + string(rune('1'+g.rng.Intn(4)))
	}
	return tag
}

// sentence generates one tree according to the profile.
func (g *generator) sentence() *tree.Node {
	if g.profile == SWB {
		return g.swbUtterance()
	}
	return g.wsjSentence(0)
}

// --- WSJ grammar ---------------------------------------------------------

func (g *generator) wsjSentence(depth int) *tree.Node {
	// Top-level coordination lengthens sentences toward the newswire
	// average (~20 words) and deepens the trees.
	if depth == 0 && g.chance(0.22) {
		s := &tree.Node{Tag: "S"}
		s.AddChild(g.wsjClause(depth + 1))
		s.AddChild(leaf(",", ","))
		s.AddChild(leaf("CC", g.pick(conjunctions)))
		s.AddChild(g.wsjClause(depth + 1))
		s.AddChild(leaf(".", "."))
		return s
	}
	s := g.wsjClause(depth)
	if depth == 0 {
		s.AddChild(leaf(".", "."))
	}
	return s
}

func (g *generator) wsjClause(depth int) *tree.Node {
	s := &tree.Node{Tag: "S"}
	if g.chance(0.08) {
		s.AddChild(g.advp(depth + 1))
		if g.chance(0.5) {
			s.AddChild(leaf(",", ","))
		}
	}
	s.AddChild(g.np(depth+1, "NP-SBJ"))
	s.AddChild(g.vp(depth + 1))
	if g.chance(0.12) {
		s.AddChild(g.np(depth+1, "NP-TMP"))
	}
	return s
}

// np generates a noun phrase; tag overrides the category label ("" = plain,
// possibly decorated, NP).
func (g *generator) np(depth int, tag string) *tree.Node {
	if tag == "" {
		tag = g.decorate("NP")
	}
	n := &tree.Node{Tag: tag}
	if depth > 14 {
		n.AddChild(leaf("NN", g.pick(commonNouns)))
		return n
	}
	switch r := g.rng.Float64(); {
	case r < 0.32: // DT JJ* NN+
		n.AddChild(leaf("DT", g.pick(determiners)))
		if g.chance(0.35) {
			n.AddChild(leaf("JJ", g.pick(adjectives)))
		}
		if g.chance(0.07) {
			n.AddChild(g.adjp(depth + 1))
		}
		n.AddChild(leaf("NN", g.pick(commonNouns)))
		if g.chance(0.12) {
			n.AddChild(leaf("NN", g.pick(commonNouns)))
		}
	case r < 0.50: // NNP+
		n.AddChild(leaf("NNP", g.pick(properNouns)))
		if g.chance(0.3) {
			n.AddChild(leaf("NNP", g.pick(properNouns)))
		}
	case r < 0.60: // PRP
		n.AddChild(leaf("PRP", g.pick(pronouns)))
	case r < 0.68: // CD NN(S)
		n.AddChild(leaf("CD", g.pick(numbers)))
		n.AddChild(leaf("NNS", g.pick(commonNouns)+"s"))
	case r < 0.86: // NP PP recursion
		n.AddChild(g.np(depth+1, ""))
		n.AddChild(g.pp(depth + 1))
	case r < 0.93: // NP SBAR (relative clause with trace)
		n.AddChild(g.np(depth+1, ""))
		n.AddChild(g.sbarRel(depth + 1))
	default: // bare noun(s)
		if g.chance(0.3) {
			n.AddChild(leaf("JJ", g.pick(adjectives)))
		}
		n.AddChild(leaf("NN", g.pick(commonNouns)))
	}
	return n
}

// finiteVerb picks a finite verb preterminal, spreading tokens over the
// Treebank verb tags so no single verb tag crowds the top-10 ranking.
func (g *generator) finiteVerb() *tree.Node {
	switch g.rng.Intn(4) {
	case 0:
		return leaf("VBZ", g.pick(baseVerbs)+"s")
	case 1:
		return leaf("VBP", g.pick(baseVerbs))
	default:
		return leaf("VBD", g.pick(verbs))
	}
}

func (g *generator) vp(depth int) *tree.Node {
	vtag := g.decorate("VP")
	n := &tree.Node{Tag: vtag}
	if depth > 14 {
		n.AddChild(g.finiteVerb())
		return n
	}
	switch r := g.rng.Float64(); {
	case r < 0.17: // modal + VP chain
		n.AddChild(leaf("MD", g.pick(modals)))
		n.AddChild(g.vpBase(depth + 1))
	case r < 0.31: // auxiliary chain
		n.AddChild(leaf("VBZ", "has"))
		n.AddChild(g.vpBase(depth + 1))
	case r < 0.55: // V NP
		n.AddChild(g.finiteVerb())
		n.AddChild(g.np(depth+1, ""))
	case r < 0.72: // V NP PP
		n.AddChild(g.finiteVerb())
		n.AddChild(g.np(depth+1, ""))
		n.AddChild(g.pp(depth + 1))
	case r < 0.81: // V SBAR
		n.AddChild(g.finiteVerb())
		n.AddChild(g.sbar(depth + 1))
	case r < 0.88: // copula + predicate
		n.AddChild(leaf("VBD", "was"))
		n.AddChild(g.adjpPrd(depth + 1))
	case r < 0.94: // V ADVP
		n.AddChild(g.finiteVerb())
		n.AddChild(g.advp(depth + 1))
	default: // intransitive with trailing PP
		n.AddChild(g.finiteVerb())
		n.AddChild(g.pp(depth + 1))
	}
	return n
}

// vpBase generates the non-finite VP under a modal/auxiliary: the source of
// vertical VP/VP chains (Q19).
func (g *generator) vpBase(depth int) *tree.Node {
	n := &tree.Node{Tag: "VP"}
	if depth > 14 {
		n.AddChild(leaf("VB", g.pick(baseVerbs)))
		return n
	}
	switch r := g.rng.Float64(); {
	case r < 0.30: // another auxiliary level
		n.AddChild(leaf("VB", "have"))
		n.AddChild(g.vpBase(depth + 1))
	case r < 0.75: // VB NP (the Q2 pattern: VB immediately followed by NP)
		n.AddChild(leaf("VB", g.pick(baseVerbs)))
		n.AddChild(g.np(depth+1, ""))
	case r < 0.90:
		n.AddChild(leaf("VB", g.pick(baseVerbs)))
		n.AddChild(g.np(depth+1, ""))
		n.AddChild(g.pp(depth + 1))
	default:
		n.AddChild(leaf("VB", g.pick(baseVerbs)))
	}
	return n
}

func (g *generator) pp(depth int) *tree.Node {
	n := &tree.Node{Tag: g.decorate("PP")}
	n.AddChild(leaf("IN", g.pick(prepositions)))
	n.AddChild(g.np(depth+1, ""))
	return n
}

func (g *generator) sbar(depth int) *tree.Node {
	n := &tree.Node{Tag: "SBAR"}
	n.AddChild(leaf("IN", "that"))
	n.AddChild(g.wsjSentence(depth + 1))
	return n
}

// sbarRel generates a relative clause whose subject is a trace, the source
// of -NONE- nodes.
func (g *generator) sbarRel(depth int) *tree.Node {
	n := &tree.Node{Tag: "SBAR"}
	whnp := phrase("WHNP-1", leaf("WDT", "which"))
	s := &tree.Node{Tag: "S"}
	s.AddChild(phrase("NP-SBJ", leaf("-NONE-", "*T*-1")))
	s.AddChild(g.vp(depth + 1))
	n.AddChild(whnp)
	n.AddChild(s)
	return n
}

func (g *generator) adjp(depth int) *tree.Node {
	n := &tree.Node{Tag: "ADJP"}
	if g.chance(0.4) {
		n.AddChild(leaf("RB", g.pick(adverbs)))
	}
	n.AddChild(leaf("JJ", g.pick(adjectives)))
	return n
}

func (g *generator) adjpPrd(depth int) *tree.Node {
	n := g.adjp(depth)
	n.Tag = "ADJP-PRD"
	return n
}

func (g *generator) advp(depth int) *tree.Node {
	n := &tree.Node{Tag: g.decorate("ADVP")}
	n.AddChild(leaf("RB", g.pick(adverbs)))
	return n
}

// --- Switchboard grammar ---------------------------------------------------

func (g *generator) swbUtterance() *tree.Node {
	s := &tree.Node{Tag: "S"}
	// Disfluency markers dominate the SWB tag distribution.
	for g.chance(0.62) {
		s.AddChild(leaf("-DFL-", g.pick([]string{"E_S", "N_S", "\\[", "\\]", "\\+"})))
	}
	if g.chance(0.35) {
		s.AddChild(phrase("INTJ", leaf("UH", g.pick(interjections))))
		if g.chance(0.6) {
			s.AddChild(leaf(",", ","))
		}
	}
	// Conversational restarts: an EDITED constituent the speaker abandons.
	if g.chance(0.22) {
		edited := &tree.Node{Tag: "EDITED"}
		edited.AddChild(leaf("-DFL-", "\\["))
		edited.AddChild(g.swbNP("NP-SBJ"))
		if g.chance(0.5) {
			edited.AddChild(g.swbVP(2))
		}
		edited.AddChild(leaf("-DFL-", "\\+"))
		s.AddChild(edited)
	}
	s.AddChild(g.swbNP("NP-SBJ"))
	s.AddChild(g.swbVP(1))
	if g.chance(0.45) {
		s.AddChild(leaf(",", ","))
		for g.chance(0.4) {
			s.AddChild(leaf("-DFL-", "E_S"))
		}
	}
	s.AddChild(leaf(".", "."))
	return s
}

func (g *generator) swbNP(tag string) *tree.Node {
	if tag == "" {
		tag = g.decorate("NP")
	}
	n := &tree.Node{Tag: tag}
	switch r := g.rng.Float64(); {
	case r < 0.55: // pronouns dominate conversation
		n.AddChild(leaf("PRP", g.pick(pronouns)))
	case r < 0.75:
		n.AddChild(leaf("DT", g.pick(determiners)))
		n.AddChild(leaf("NN", g.pick(commonNouns)))
	case r < 0.85:
		inner := &tree.Node{Tag: "NP"}
		inner.AddChild(leaf("NN", g.pick(commonNouns)))
		n.AddChild(inner)
		pp := &tree.Node{Tag: "PP"}
		pp.AddChild(leaf("IN", g.pick(prepositions)))
		pp.AddChild(g.swbNP(""))
		n.AddChild(pp)
	default:
		n.AddChild(leaf("NN", g.pick(commonNouns)))
	}
	return n
}

func (g *generator) swbVP(depth int) *tree.Node {
	n := &tree.Node{Tag: "VP"}
	if g.chance(0.04) {
		n.Tag = g.decorate("VP")
	}
	if depth > 6 {
		n.AddChild(g.finiteVerb())
		return n
	}
	switch r := g.rng.Float64(); {
	case r < 0.25: // VP chains are common ("you know, I was going to go")
		n.AddChild(leaf("VBD", "was"))
		n.AddChild(g.swbVP(depth + 1))
	case r < 0.60:
		n.AddChild(g.finiteVerb())
		n.AddChild(g.swbNP(""))
	case r < 0.75:
		n.AddChild(leaf("VB", g.pick(baseVerbs)))
		n.AddChild(g.swbNP(""))
	case r < 0.87:
		n.AddChild(g.finiteVerb())
		n.AddChild(leaf("RB", g.pick(adverbs)))
	default:
		n.AddChild(g.finiteVerb())
	}
	return n
}
