package corpus

import (
	"io"

	"lpath/internal/tree"
)

// Stats summarizes a corpus with the measurements of Figure 6(a).
type Stats struct {
	Sentences  int
	Words      int
	TreeNodes  int // element nodes, the paper's "Tree Nodes"
	UniqueTags int
	MaxDepth   int
	FileSize   int64 // bytes of the bracketed ASCII representation
}

// Measure computes corpus statistics.
func Measure(c *tree.Corpus) Stats {
	st := Stats{
		Sentences: c.Len(),
		Words:     c.WordCount(),
		TreeNodes: c.NodeCount(),
		MaxDepth:  c.MaxDepth(),
	}
	st.UniqueTags = len(c.TagFrequencies())
	var cw countingWriter
	_ = tree.WriteAll(&cw, c)
	st.FileSize = cw.n
	return st
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

var _ io.Writer = (*countingWriter)(nil)
