package corpus

import (
	"math/rand"

	"lpath/internal/tree"
)

// plantAll injects the rare phenomena of the plants table into the corpus,
// spreading each feature's occurrences deterministically across sentences so
// the Figure 6(c) high-selectivity queries have paper-like result profiles
// at every scale.
func plantAll(c *tree.Corpus, profile Profile, scale float64, rng *rand.Rand) {
	n := c.Len()
	if n == 0 {
		return
	}
	for fi, p := range plants {
		base := p.base(profile)
		if base == 0 {
			continue
		}
		count := int(float64(base)*scale + 0.5)
		if count < 1 {
			count = 1
		}
		if count > n {
			count = n
		}
		// Spread occurrences with a Weyl sequence offset per feature so
		// features land in different sentences.
		stride := float64(n) * 0.6180339887
		offset := float64(fi) * stride / float64(len(plants))
		for k := 0; k < count; k++ {
			idx := (int(offset+float64(k)*stride) + k) % n
			plantFeature(p.name, c.Trees[idx].Root, rng)
		}
	}
}

// insertBefore inserts children into parent just before its final
// punctuation child (or at the end when there is none).
func insertBefore(parent *tree.Node, nodes ...*tree.Node) {
	pos := len(parent.Children)
	if pos > 0 && parent.Children[pos-1].Tag == "." {
		pos--
	}
	for _, n := range nodes {
		n.Parent = parent
	}
	rest := append([]*tree.Node{}, parent.Children[pos:]...)
	parent.Children = append(parent.Children[:pos], nodes...)
	parent.Children = append(parent.Children, rest...)
}

func plantFeature(name string, root *tree.Node, rng *rand.Rand) {
	switch name {
	case "saw":
		// Rewrite the first finite verb of the sentence to "saw".
		done := false
		root.Walk(func(n *tree.Node) bool {
			if done {
				return false
			}
			if len(n.Tag) >= 2 && n.Tag[:2] == "VB" && n.Word != "" {
				n.Tag = "VBD"
				n.Word = "saw"
				done = true
			}
			return !done
		})
		if !done {
			insertBefore(root, phrase("VP", leaf("VBD", "saw")))
		}
	case "rapprochement":
		insertBefore(root, phrase("NP",
			leaf("DT", "the"), leaf("NN", "rapprochement")))
	case "year1929":
		insertBefore(root, phrase("PP-TMP",
			leaf("IN", "in"),
			phrase("NP", leaf("CD", "1929"))))
	case "advp-loc-clr":
		insertBefore(root, phrase("ADVP-LOC-CLR", leaf("RB", "there")))
	case "whpp":
		insertBefore(root, phrase("WHPP",
			leaf("IN", "about"),
			phrase("WHNP", leaf("WDT", "which"))))
	case "rrc-pp-tmp":
		insertBefore(root, phrase("RRC",
			phrase("PP-TMP",
				leaf("IN", "during"),
				phrase("NP", leaf("DT", "the"), leaf("NN", "year")))))
	case "ucp-prd":
		insertBefore(root, phrase("UCP-PRD",
			phrase("ADJP-PRD", leaf("JJ", "nice")),
			leaf("CC", "and"),
			phrase("NP", leaf("NN", "thing"))))
	case "np5chain":
		insertBefore(root,
			phrase("NP", phrase("NP", phrase("NP", phrase("NP",
				phrase("NP", leaf("NN", "thing")))))))
	case "what-building":
		insertBefore(root, phrase("NP",
			leaf("WP", "what"), leaf("NN", "building")))
	case "pp-sbar":
		insertBefore(root,
			phrase("PP",
				leaf("IN", "in"),
				phrase("NP", leaf("NN", "fact"))),
			phrase("SBAR",
				leaf("IN", "because"),
				phrase("S",
					phrase("NP-SBJ", leaf("PRP", "it")),
					phrase("VP", leaf("VBD", "happened")))))
	case "advp-adjp":
		insertBefore(root,
			phrase("ADVP", leaf("RB", "very")),
			phrase("ADJP", leaf("JJ", "nice")))
	case "np3sisters":
		insertBefore(root, phrase("NP",
			phrase("NP", leaf("NN", "owner")),
			phrase("NP", leaf("NN", "operator")),
			phrase("NP", leaf("NN", "builder"))))
	case "vp-vp-sisters":
		insertBefore(root, phrase("VP",
			phrase("VP", leaf("VB", "come")),
			phrase("VP", leaf("VB", "go"))))
	case "of-np-pp-vp":
		insertBefore(root,
			phrase("NP", leaf("NN", "deal")),
			phrase("PP",
				leaf("IN", "of"),
				phrase("NP", leaf("NN", "note"))),
			phrase("VP", leaf("VB", "stand")))
	case "deep-nesting":
		// A chain of clausal complements ("it said that it said that ...")
		// reaching the Treebank's observed maximum depths.
		levels := 7 + rng.Intn(2)
		inner := phrase("VP", leaf("VBD", "happened"))
		node := phrase("S", phrase("NP-SBJ", leaf("PRP", "it")), inner)
		for i := 0; i < levels; i++ {
			node = phrase("S",
				phrase("NP-SBJ", leaf("PRP", "it")),
				phrase("VP",
					leaf("VBD", "said"),
					phrase("SBAR", leaf("IN", "that"), node)))
		}
		insertBefore(root, node)
	}
}
