package corpus

import (
	"testing"

	"lpath/internal/engine"
	"lpath/internal/lpath"
	"lpath/internal/relstore"
	"lpath/internal/tree"
)

const testScale = 0.02

func genWSJ(t *testing.T) *tree.Corpus {
	t.Helper()
	return Generate(Config{Profile: WSJ, Scale: testScale, Seed: 7})
}

func genSWB(t *testing.T) *tree.Corpus {
	t.Helper()
	return Generate(Config{Profile: SWB, Scale: testScale, Seed: 7})
}

func TestParseProfile(t *testing.T) {
	if p, err := ParseProfile("WSJ"); err != nil || p != WSJ {
		t.Errorf("ParseProfile(WSJ) = %v, %v", p, err)
	}
	if p, err := ParseProfile("switchboard"); err != nil || p != SWB {
		t.Errorf("ParseProfile(switchboard) = %v, %v", p, err)
	}
	if _, err := ParseProfile("brown"); err == nil {
		t.Error("ParseProfile(brown) should fail")
	}
	if WSJ.String() != "wsj" || SWB.String() != "swb" {
		t.Errorf("String() = %q, %q", WSJ.String(), SWB.String())
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Profile: WSJ, Scale: 0.002, Seed: 3})
	b := Generate(Config{Profile: WSJ, Scale: 0.002, Seed: 3})
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Trees {
		if a.Trees[i].Root.String() != b.Trees[i].Root.String() {
			t.Fatalf("tree %d differs", i)
		}
	}
	c := Generate(Config{Profile: WSJ, Scale: 0.002, Seed: 4})
	same := true
	for i := range a.Trees {
		if i < len(c.Trees) && a.Trees[i].Root.String() != c.Trees[i].Root.String() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestValidity(t *testing.T) {
	for _, c := range []*tree.Corpus{genWSJ(t), genSWB(t)} {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScaleControlsSize(t *testing.T) {
	small := Generate(Config{Profile: WSJ, Scale: 0.001, Seed: 1})
	large := Generate(Config{Profile: WSJ, Scale: 0.004, Seed: 1})
	if large.Len() < 3*small.Len() {
		t.Errorf("scale not proportional: %d vs %d sentences", small.Len(), large.Len())
	}
	smallScale := 0.001
	if got, want := small.Len(), int(float64(wsjFullSentences)*smallScale+0.5); got != want {
		t.Errorf("sentence count = %d, want %d", got, want)
	}
}

// TestWSJProfile checks the Figure 6(a)/(b)-style statistics of the WSJ
// profile: tag ranking dominated by NP/VP/NN, function-tag diversity, deep
// trees, ~20 words per sentence.
func TestWSJProfile(t *testing.T) {
	c := genWSJ(t)
	st := Measure(c)
	if st.Sentences == 0 || st.TreeNodes == 0 {
		t.Fatal("empty corpus")
	}
	wordsPer := float64(st.Words) / float64(st.Sentences)
	if wordsPer < 8 || wordsPer > 40 {
		t.Errorf("words per sentence = %.1f, want newswire-like (8-40)", wordsPer)
	}
	nodesPer := float64(st.TreeNodes) / float64(st.Sentences)
	if nodesPer < 20 || nodesPer > 120 {
		t.Errorf("nodes per sentence = %.1f", nodesPer)
	}
	if st.MaxDepth < 12 {
		t.Errorf("max depth = %d, want deep recursion", st.MaxDepth)
	}
	if st.UniqueTags < 60 {
		t.Errorf("unique tags = %d, want a wide inventory", st.UniqueTags)
	}
	if st.FileSize == 0 {
		t.Error("file size = 0")
	}
	freq := c.TagFrequencies()
	// Ranking constraints from Figure 6(b).
	if !(freq["NP"] > freq["VP"]) {
		t.Errorf("NP (%d) should outnumber VP (%d)", freq["NP"], freq["VP"])
	}
	if !(freq["NN"] > freq["NNP"]) {
		t.Errorf("NN (%d) should outnumber NNP (%d)", freq["NN"], freq["NNP"])
	}
	for _, tag := range []string{"NP", "VP", "NN", "IN", "NNP", "S", "DT", "NP-SBJ", "-NONE-", "JJ"} {
		if freq[tag] == 0 {
			t.Errorf("top-10 tag %q absent", tag)
		}
	}
}

// TestSWBProfile checks the Switchboard profile: -DFL- dominant,
// punctuation and pronouns frequent, WSJ-only rarities absent.
func TestSWBProfile(t *testing.T) {
	c := genSWB(t)
	freq := c.TagFrequencies()
	for _, tag := range []string{"-DFL-", "VP", "NP-SBJ", ".", ",", "S", "NP", "PRP", "NN", "RB"} {
		if freq[tag] == 0 {
			t.Errorf("top-10 tag %q absent", tag)
		}
	}
	if !(freq["-DFL-"] > freq["NP"]) {
		t.Errorf("-DFL- (%d) should outnumber NP (%d)", freq["-DFL-"], freq["NP"])
	}
	if !(freq["PRP"] > freq["NNP"]) {
		t.Errorf("PRP (%d) should outnumber NNP (%d)", freq["PRP"], freq["NNP"])
	}
	// WSJ-only phenomena must not occur (Figure 6(c) zero rows).
	if freq["ADVP-LOC-CLR"] != 0 {
		t.Errorf("ADVP-LOC-CLR must be absent from SWB, found %d", freq["ADVP-LOC-CLR"])
	}
	// RRC/UCP-PRD do occur in SWB, just rarely (Figure 6(c): 3 and 4).
	if freq["RRC"] == 0 || freq["UCP-PRD"] == 0 {
		t.Errorf("RRC (%d) and UCP-PRD (%d) should occur rarely in SWB", freq["RRC"], freq["UCP-PRD"])
	}
}

// TestPlantedSelectivity verifies the planted phenomena through the actual
// LPath engine: high-selectivity queries return scaled paper-like counts and
// the WSJ/SWB asymmetries hold (Figure 6(c)).
func TestPlantedSelectivity(t *testing.T) {
	wsj := genWSJ(t)
	swb := genSWB(t)
	we, err := engine.New(relstore.Build(wsj, relstore.SchemeInterval))
	if err != nil {
		t.Fatal(err)
	}
	se, err := engine.New(relstore.Build(swb, relstore.SchemeInterval))
	if err != nil {
		t.Fatal(err)
	}
	count := func(e *engine.Engine, q string) int {
		t.Helper()
		n, err := e.Count(lpath.MustParse(q))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return n
	}
	// Exact singletons and zeros.
	if got := count(we, `//_[@lex=rapprochement]`); got != 1 {
		t.Errorf("WSJ rapprochement = %d, want 1", got)
	}
	if got := count(se, `//_[@lex=rapprochement]`); got != 0 {
		t.Errorf("SWB rapprochement = %d, want 0", got)
	}
	if got := count(se, `//_[@lex=1929]`); got != 0 {
		t.Errorf("SWB 1929 = %d, want 0", got)
	}
	if got := count(se, `//ADVP-LOC-CLR`); got != 0 {
		t.Errorf("SWB ADVP-LOC-CLR = %d, want 0", got)
	}
	// Scaled positives (tolerate rounding but require the right magnitude).
	type rng struct{ lo, hi int }
	wsjChecks := map[string]rng{
		`//_[@lex=1929]`:     {1, 3},
		`//ADVP-LOC-CLR`:     {1, 5},
		`//WHPP`:             {1, 6},
		`//RRC/PP-TMP`:       {1, 3},
		`//UCP-PRD/ADJP-PRD`: {1, 3},
		`//PP=>SBAR`:         {5, 40},
		`//NP=>NP=>NP`:       {1, 3},
		`//VP=>VP`:           {1, 4},
	}
	for q, r := range wsjChecks {
		if got := count(we, q); got < r.lo || got > r.hi {
			t.Errorf("WSJ %s = %d, want [%d, %d]", q, got, r.lo, r.hi)
		}
	}
	// Common constructions occur in volume (low-selectivity queries).
	if got := count(we, `//VB->NP`); got < 50 {
		t.Errorf("WSJ //VB->NP = %d, want plenty", got)
	}
	if got := count(we, `//VP/VP/VP`); got < 10 {
		t.Errorf("WSJ //VP/VP/VP = %d, want plenty", got)
	}
	if got := count(we, `//NP[not(//JJ)]`); got < 100 {
		t.Errorf("WSJ //NP[not(//JJ)] = %d, want plenty", got)
	}
	if got := count(we, `//S[//_[@lex=saw]]`); got < 2 {
		t.Errorf("WSJ saw sentences = %d", got)
	}
	if got := count(we, `//S[//NP/ADJP]`); got < 10 {
		t.Errorf("WSJ //S[//NP/ADJP] = %d", got)
	}
	if got := count(we, `//NP/NP/NP/NP/NP`); got < 1 {
		t.Errorf("WSJ //NP/NP/NP/NP/NP = %d", got)
	}
	if got := count(we, `//NP[->PP[//IN[@lex=of]]=>VP]`); got < 2 {
		t.Errorf("WSJ Q10 = %d", got)
	}
	if got := count(we, `//S[{//_[@lex=what]->_[@lex=building]}]`); got < 1 {
		t.Errorf("WSJ what-building = %d", got)
	}
	// SWB has the conversational features.
	if got := count(se, `//S[{//_[@lex=what]->_[@lex=building]}]`); got < 1 {
		t.Errorf("SWB what-building = %d", got)
	}
	if got := count(se, `//VP=>VP`); got < 1 {
		t.Errorf("SWB VP=>VP = %d", got)
	}
}

func TestMeasureEmptyAndTiny(t *testing.T) {
	st := Measure(tree.NewCorpus())
	if st.Sentences != 0 || st.TreeNodes != 0 || st.FileSize != 0 {
		t.Errorf("empty stats = %+v", st)
	}
	// Scale <= 0 defaults to a small corpus rather than panicking.
	c := Generate(Config{Profile: WSJ, Scale: 0, Seed: 1})
	if c.Len() == 0 {
		t.Error("zero-scale corpus is empty")
	}
}
