// Package corpus generates synthetic treebank corpora calibrated to the two
// datasets of the paper's evaluation (Figure 6(a)/(b)): the Wall Street
// Journal corpus and the Switchboard corpus of Treebank-3.
//
// Treebank-3 is proprietary LDC data, so this package is the substitution
// documented in DESIGN.md: a seeded, scalable generator whose output
// reproduces the statistics the experiments depend on — the tag-frequency
// ranking (NP > VP > NN > IN > ... for WSJ; -DFL- dominant for SWB), tree
// shapes with unary chains and deep recursion, a long Zipf tail of
// function-tag variants, and planted rare phenomena so each of the 23
// evaluation queries has a WSJ/SWB selectivity profile like the paper's
// (e.g. "rapprochement" occurs once in WSJ and never in SWB).
package corpus

import (
	"fmt"
	"strings"
)

// Profile selects which dataset to imitate.
type Profile int

const (
	// WSJ imitates the Wall Street Journal corpus: ~49,200 newswire
	// sentences at scale 1.0, NP/VP/NN-dominated tag distribution, traces
	// (-NONE-) and a wide function-tag inventory.
	WSJ Profile = iota
	// SWB imitates the Switchboard corpus: conversational utterances
	// dominated by disfluencies (-DFL-), punctuation and pronouns.
	SWB
)

func (p Profile) String() string {
	switch p {
	case WSJ:
		return "wsj"
	case SWB:
		return "swb"
	default:
		return fmt.Sprintf("profile(%d)", int(p))
	}
}

// ParseProfile parses "wsj" or "swb" (case-insensitive).
func ParseProfile(s string) (Profile, error) {
	switch strings.ToLower(s) {
	case "wsj":
		return WSJ, nil
	case "swb", "switchboard":
		return SWB, nil
	}
	return 0, fmt.Errorf("corpus: unknown profile %q (want wsj or swb)", s)
}

// Config configures generation.
type Config struct {
	Profile Profile
	// Scale is the fraction of the paper's corpus size; 1.0 generates a
	// full-size corpus (~49k sentences / ~3.5M nodes for WSJ).
	Scale float64
	// Seed makes generation deterministic; the same (Profile, Scale, Seed)
	// always produces the identical corpus.
	Seed int64
}

// sentence counts at scale 1.0, chosen so node totals approximate Figure
// 6(a).
const (
	wsjFullSentences = 49208
	swbFullSentences = 101000
)

// plant describes a rare phenomenon injected deterministically, with target
// occurrence counts at scale 1.0 per profile (0 = never occurs), mirroring
// the Figure 6(c) result sizes for the high-selectivity queries.
type plant struct {
	name     string
	wsj, swb int
}

var plants = []plant{
	{"saw", 153, 339},         // sentences containing the word "saw" (Q1)
	{"rapprochement", 1, 0},   // Q12
	{"year1929", 14, 0},       // Q13
	{"advp-loc-clr", 60, 0},   // Q14
	{"whpp", 87, 20},          // Q15
	{"rrc-pp-tmp", 8, 3},      // Q16
	{"ucp-prd", 17, 4},        // Q17
	{"np5chain", 254, 12},     // Q18
	{"what-building", 2, 5},   // Q11
	{"pp-sbar", 640, 651},     // Q20
	{"advp-adjp", 15, 37},     // Q21
	{"np3sisters", 7, 7},      // Q22
	{"vp-vp-sisters", 20, 72}, // Q23
	{"of-np-pp-vp", 192, 31},  // Q10
	{"deep-nesting", 30, 20},  // drives maximum depth toward Fig. 6(a)'s 36
}

func (p plant) base(profile Profile) int {
	if profile == WSJ {
		return p.wsj
	}
	return p.swb
}
