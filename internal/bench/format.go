package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"lpath/internal/lpath"
	"lpath/internal/tree"
)

func parseLPath(text string) (*lpath.Path, error) { return lpath.Parse(text) }

// ms renders a duration in seconds with paper-style precision.
func secs(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

// WriteFig6a renders the dataset characteristics table.
func WriteFig6a(w io.Writer, rows []DatasetStats) {
	fmt.Fprintf(w, "Figure 6(a): Test Data Sets\n")
	fmt.Fprintf(w, "%-14s", "")
	for _, r := range rows {
		fmt.Fprintf(w, "%12s", r.Name)
	}
	fmt.Fprintln(w)
	line := func(label string, get func(DatasetStats) int64) {
		fmt.Fprintf(w, "%-14s", label)
		for _, r := range rows {
			fmt.Fprintf(w, "%12d", get(r))
		}
		fmt.Fprintln(w)
	}
	line("File Size", func(r DatasetStats) int64 { return r.Stats.FileSize })
	line("Sentences", func(r DatasetStats) int64 { return int64(r.Stats.Sentences) })
	line("Words", func(r DatasetStats) int64 { return int64(r.Stats.Words) })
	line("Tree Nodes", func(r DatasetStats) int64 { return int64(r.Stats.TreeNodes) })
	line("Unique Tags", func(r DatasetStats) int64 { return int64(r.Stats.UniqueTags) })
	line("Maximum Depth", func(r DatasetStats) int64 { return int64(r.Stats.MaxDepth) })
}

// WriteFig6b renders the top-10 tag frequency table.
func WriteFig6b(w io.Writer, wsjTags, swbTags []tree.TagFreq) {
	fmt.Fprintf(w, "Figure 6(b): Top 10 Frequent Tags\n")
	fmt.Fprintf(w, "%4s  %-14s%10s    %-14s%10s\n", "", "WSJ Tag", "Freq", "SWB Tag", "Freq")
	n := len(wsjTags)
	if len(swbTags) > n {
		n = len(swbTags)
	}
	for i := 0; i < n; i++ {
		var wt, st tree.TagFreq
		if i < len(wsjTags) {
			wt = wsjTags[i]
		}
		if i < len(swbTags) {
			st = swbTags[i]
		}
		fmt.Fprintf(w, "%4d  %-14s%10d    %-14s%10d\n", i+1, wt.Tag, wt.Count, st.Tag, st.Count)
	}
}

// WriteFig6c renders the result-size table.
func WriteFig6c(w io.Writer, rows []ResultSize) {
	fmt.Fprintf(w, "Figure 6(c): Test Query Sets (result sizes)\n")
	fmt.Fprintf(w, "%-4s %-44s %10s %10s\n", "Q", "LPath Query", "WSJ", "SWB")
	for _, r := range rows {
		fmt.Fprintf(w, "Q%-3d %-44s %10d %10d\n", r.ID, r.Query, r.WSJ, r.SWB)
	}
}

// WriteFig7or8 renders a query-time table across the three systems.
func WriteFig7or8(w io.Writer, title string, rows []SystemTiming) {
	fmt.Fprintf(w, "%s: query execution time (s)\n", title)
	fmt.Fprintf(w, "%-4s %-44s %10s %10s %10s   %s\n",
		"Q", "Query", "LPath", "TGrep2", "CorpusSrch", "results (LP/TG/CS)")
	for _, r := range rows {
		fmt.Fprintf(w, "Q%-3d %-44s %10s %10s %10s   %d/%d/%d\n",
			r.ID, r.Query, secs(r.LPath), secs(r.TGrep), secs(r.CS),
			r.NLPath, r.NTGrep, r.NCS)
	}
}

// WriteFig9 renders the scalability curves.
func WriteFig9(w io.Writer, curves map[int][]ScalePoint) {
	fmt.Fprintf(w, "Figure 9: query time as WSJ data size increases (s)\n")
	for _, id := range Fig9Queries {
		fmt.Fprintf(w, "  Q%d:\n", id)
		fmt.Fprintf(w, "  %8s %12s %10s %10s %10s\n", "factor", "nodes", "LPath", "TGrep2", "CorpusSrch")
		for _, pt := range curves[id] {
			fmt.Fprintf(w, "  %8.1f %12d %10s %10s %10s\n",
				pt.Factor, pt.Nodes, secs(pt.LPath), secs(pt.TGrep), secs(pt.CS))
		}
	}
}

// WriteFig10 renders the labeling-scheme comparison.
func WriteFig10(w io.Writer, rows []LabelTiming) {
	fmt.Fprintf(w, "Figure 10: LPath vs XPath labeling scheme (s)\n")
	fmt.Fprintf(w, "%-4s %-44s %10s %10s %10s\n", "Q", "Query", "LPath", "XPath", "results")
	for _, r := range rows {
		fmt.Fprintf(w, "Q%-3d %-44s %10s %10s %10d\n",
			r.ID, r.Query, secs(r.LPath), secs(r.XPath), r.NLPath)
	}
}

// WriteAblations renders the design-choice measurements.
func WriteAblations(w io.Writer, rows []AblationRow) {
	fmt.Fprintf(w, "Ablations: design choices (s)\n")
	fmt.Fprintf(w, "%-18s %-56s %10s %10s\n", "choice", "query", "with", "without")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %-56s %10s %10s\n", r.Name, r.Query, secs(r.Baseline), secs(r.Ablated))
	}
}

// WritePlannerImpact renders the planner before/after measurements.
func WritePlannerImpact(w io.Writer, rows []PlannerRow) {
	fmt.Fprintf(w, "Planner impact: cost-based planner on vs off (s)\n")
	fmt.Fprintf(w, "%-4s %-44s %10s %10s %9s %9s\n",
		"Q", "Query", "planned", "unplanned", "speedup", "matches")
	for _, r := range rows {
		fmt.Fprintf(w, "Q%-3d %-44s %10s %10s %8.2fx %9d\n",
			r.ID, r.Query, secs(r.Planned), secs(r.Unplanned), r.Speedup(), r.N)
	}
}

// CSVPlannerImpact renders the planner before/after rows as CSV.
func CSVPlannerImpact(rows []PlannerRow) string {
	var b strings.Builder
	b.WriteString("query,planned_s,unplanned_s,speedup,matches\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "Q%d,%f,%f,%f,%d\n",
			r.ID, r.Planned.Seconds(), r.Unplanned.Seconds(), r.Speedup(), r.N)
	}
	return b.String()
}

// WriteExecutorImpact renders the merge-executor before/after measurements.
func WriteExecutorImpact(w io.Writer, rows []ExecRow) {
	fmt.Fprintf(w, "Executor impact: set-at-a-time merge vs per-binding probe (s)\n")
	fmt.Fprintf(w, "%-4s %-44s %10s %10s %9s %12s %12s %9s   %s\n",
		"Q", "Query", "merge", "probe", "speedup", "allocs(m)", "allocs(p)", "matches", "strategy")
	for _, r := range rows {
		fmt.Fprintf(w, "Q%-3d %-44s %10s %10s %8.2fx %12.0f %12.0f %9d   %s\n",
			r.ID, r.Query, secs(r.Merge), secs(r.Probe), r.Speedup(),
			r.AllocsMerge, r.AllocsProbe, r.N, r.Strategy)
	}
}

// CSVExecutorImpact renders the merge-executor rows as CSV.
func CSVExecutorImpact(rows []ExecRow) string {
	var b strings.Builder
	b.WriteString("query,merge_s,probe_s,speedup,allocs_merge,allocs_probe,matches,strategy\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "Q%d,%f,%f,%f,%.0f,%.0f,%d,%s\n",
			r.ID, r.Merge.Seconds(), r.Probe.Seconds(), r.Speedup(),
			r.AllocsMerge, r.AllocsProbe, r.N, r.Strategy)
	}
	return b.String()
}

// execJSONRow is the machine-readable shape of one ExecRow, mirroring the
// testing-package convention of ns/op and allocs/op.
type execJSONRow struct {
	Query       int     `json:"query"`
	Text        string  `json:"text"`
	NsPerOp     int64   `json:"ns_per_op"`
	NsPerOpOff  int64   `json:"ns_per_op_probe"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	AllocsOff   float64 `json:"allocs_per_op_probe"`
	Speedup     float64 `json:"speedup"`
	Matches     int     `json:"matches"`
	Strategy    string  `json:"strategy"`
}

// JSONExecutorImpact renders the merge-executor rows as indented JSON, the
// payload of the BENCH_executor.json CI artifact.
func JSONExecutorImpact(rows []ExecRow) ([]byte, error) {
	out := make([]execJSONRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, execJSONRow{
			Query:       r.ID,
			Text:        r.Query,
			NsPerOp:     r.Merge.Nanoseconds(),
			NsPerOpOff:  r.Probe.Nanoseconds(),
			AllocsPerOp: r.AllocsMerge,
			AllocsOff:   r.AllocsProbe,
			Speedup:     r.Speedup(),
			Matches:     r.N,
			Strategy:    r.Strategy,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// WriteTwigImpact renders the twig-executor before/after measurements.
func WriteTwigImpact(w io.Writer, rows []TwigRow) {
	fmt.Fprintf(w, "Twig impact: holistic twig sweep vs per-step probe/merge (s)\n")
	fmt.Fprintf(w, "%-4s %-44s %10s %10s %9s %12s %12s %9s   %s\n",
		"Q", "Query", "twig", "no-twig", "speedup", "allocs(t)", "allocs(n)", "matches", "strategy")
	for _, r := range rows {
		fmt.Fprintf(w, "Q%-3d %-44s %10s %10s %8.2fx %12.0f %12.0f %9d   %s\n",
			r.ID, r.Query, secs(r.Twig), secs(r.NoTwig), r.Speedup(),
			r.AllocsTwig, r.AllocsNoTwig, r.N, r.Strategy)
	}
}

// CSVTwigImpact renders the twig-executor rows as CSV.
func CSVTwigImpact(rows []TwigRow) string {
	var b strings.Builder
	b.WriteString("query,twig_s,notwig_s,speedup,allocs_twig,allocs_notwig,matches,strategy\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "Q%d,%f,%f,%f,%.0f,%.0f,%d,%s\n",
			r.ID, r.Twig.Seconds(), r.NoTwig.Seconds(), r.Speedup(),
			r.AllocsTwig, r.AllocsNoTwig, r.N, r.Strategy)
	}
	return b.String()
}

// twigJSONRow is the machine-readable shape of one TwigRow, mirroring the
// testing-package convention of ns/op and allocs/op.
type twigJSONRow struct {
	Query       int     `json:"query"`
	Text        string  `json:"text"`
	NsPerOp     int64   `json:"ns_per_op"`
	NsPerOpOff  int64   `json:"ns_per_op_notwig"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	AllocsOff   float64 `json:"allocs_per_op_notwig"`
	Speedup     float64 `json:"speedup"`
	Matches     int     `json:"matches"`
	Strategy    string  `json:"strategy"`
}

// JSONTwigImpact renders the twig-executor rows as indented JSON, the
// payload of the BENCH_twig.json artifact.
func JSONTwigImpact(rows []TwigRow) ([]byte, error) {
	out := make([]twigJSONRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, twigJSONRow{
			Query:       r.ID,
			Text:        r.Query,
			NsPerOp:     r.Twig.Nanoseconds(),
			NsPerOpOff:  r.NoTwig.Nanoseconds(),
			AllocsPerOp: r.AllocsTwig,
			AllocsOff:   r.AllocsNoTwig,
			Speedup:     r.Speedup(),
			Matches:     r.N,
			Strategy:    r.Strategy,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// WriteBitmapImpact renders the bitmap-kernel before/after measurements.
func WriteBitmapImpact(w io.Writer, rows []BitmapRow) {
	fmt.Fprintf(w, "Bitmap impact: dense-bitset kernels vs per-scope probe expansion (s)\n")
	fmt.Fprintf(w, "%-4s %-44s %10s %10s %9s %12s %12s %9s   %s\n",
		"Q", "Query", "bitmap", "no-bitmap", "speedup", "allocs(b)", "allocs(n)", "matches", "strategy")
	for _, r := range rows {
		fmt.Fprintf(w, "Q%-3d %-44s %10s %10s %8.2fx %12.0f %12.0f %9d   %s\n",
			r.ID, r.Query, secs(r.Bitmap), secs(r.NoBitmap), r.Speedup(),
			r.AllocsBitmap, r.AllocsNoBmp, r.N, r.Strategy)
	}
}

// CSVBitmapImpact renders the bitmap-kernel rows as CSV.
func CSVBitmapImpact(rows []BitmapRow) string {
	var b strings.Builder
	b.WriteString("query,bitmap_s,nobitmap_s,speedup,allocs_bitmap,allocs_nobitmap,matches,strategy\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "Q%d,%f,%f,%f,%.0f,%.0f,%d,%s\n",
			r.ID, r.Bitmap.Seconds(), r.NoBitmap.Seconds(), r.Speedup(),
			r.AllocsBitmap, r.AllocsNoBmp, r.N, r.Strategy)
	}
	return b.String()
}

// bitmapJSONRow is the machine-readable shape of one BitmapRow, mirroring
// the testing-package convention of ns/op and allocs/op.
type bitmapJSONRow struct {
	Query       int     `json:"query"`
	Text        string  `json:"text"`
	NsPerOp     int64   `json:"ns_per_op"`
	NsPerOpOff  int64   `json:"ns_per_op_nobitmap"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	AllocsOff   float64 `json:"allocs_per_op_nobitmap"`
	Speedup     float64 `json:"speedup"`
	Matches     int     `json:"matches"`
	Strategy    string  `json:"strategy"`
}

// JSONBitmapImpact renders the bitmap-kernel rows as indented JSON, the
// payload of the BENCH_bitmap.json artifact.
func JSONBitmapImpact(rows []BitmapRow) ([]byte, error) {
	out := make([]bitmapJSONRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, bitmapJSONRow{
			Query:       r.ID,
			Text:        r.Query,
			NsPerOp:     r.Bitmap.Nanoseconds(),
			NsPerOpOff:  r.NoBitmap.Nanoseconds(),
			AllocsPerOp: r.AllocsBitmap,
			AllocsOff:   r.AllocsNoBmp,
			Speedup:     r.Speedup(),
			Matches:     r.N,
			Strategy:    r.Strategy,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// WriteLimitImpact renders the limit-pushdown measurements; "sp@10" is the
// full/limited speedup at limit 10, the figure's headline number.
func WriteLimitImpact(w io.Writer, rows []LimitRow) {
	fmt.Fprintf(w, "Limit impact: streaming early termination (EvalLimit) vs full evaluation (s)\n")
	fmt.Fprintf(w, "%-4s %-44s %10s", "Q", "Query", "full")
	for _, k := range LimitPoints {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("k=%d", k))
	}
	fmt.Fprintf(w, " %9s %9s\n", "sp@10", "matches")
	for _, r := range rows {
		fmt.Fprintf(w, "Q%-3d %-44s %10s", r.ID, r.Query, secs(r.Full))
		for _, d := range r.Limited {
			fmt.Fprintf(w, " %10s", secs(d))
		}
		fmt.Fprintf(w, " %8.2fx %9d\n", r.Speedup(1), r.N)
	}
}

// CSVLimitImpact renders the limit-pushdown rows as CSV.
func CSVLimitImpact(rows []LimitRow) string {
	var b strings.Builder
	b.WriteString("query,full_s")
	for _, k := range LimitPoints {
		fmt.Fprintf(&b, ",limit%d_s,speedup%d", k, k)
	}
	b.WriteString(",matches\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "Q%d,%f", r.ID, r.Full.Seconds())
		for i := range LimitPoints {
			fmt.Fprintf(&b, ",%f,%f", r.Limited[i].Seconds(), r.Speedup(i))
		}
		fmt.Fprintf(&b, ",%d\n", r.N)
	}
	return b.String()
}

// limitJSONRow is the machine-readable shape of one LimitRow. ns_per_op is
// the limit-10 evaluation, so the benchguard gate watches the
// early-termination path itself rather than the full scan; the other limits
// and the full time ride along for inspection. The fields assume the
// standing LimitPoints of {1, 10, 100}.
type limitJSONRow struct {
	Query       int     `json:"query"`
	Text        string  `json:"text"`
	NsPerOp     int64   `json:"ns_per_op"`
	NsPerOpFull int64   `json:"ns_per_op_full"`
	NsPerOp1    int64   `json:"ns_per_op_limit1"`
	NsPerOp100  int64   `json:"ns_per_op_limit100"`
	Speedup     float64 `json:"speedup"`
	Matches     int     `json:"matches"`
}

// JSONLimitImpact renders the limit-pushdown rows as indented JSON, the
// payload of the BENCH_limit.json artifact.
func JSONLimitImpact(rows []LimitRow) ([]byte, error) {
	out := make([]limitJSONRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, limitJSONRow{
			Query:       r.ID,
			Text:        r.Query,
			NsPerOp:     r.Limited[1].Nanoseconds(),
			NsPerOpFull: r.Full.Nanoseconds(),
			NsPerOp1:    r.Limited[0].Nanoseconds(),
			NsPerOp100:  r.Limited[2].Nanoseconds(),
			Speedup:     r.Speedup(1),
			Matches:     r.N,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// plannerJSONRow is the machine-readable shape of one PlannerRow.
type plannerJSONRow struct {
	Query      int     `json:"query"`
	Text       string  `json:"text"`
	NsPerOp    int64   `json:"ns_per_op"`
	NsPerOpOff int64   `json:"ns_per_op_unplanned"`
	Speedup    float64 `json:"speedup"`
	Matches    int     `json:"matches"`
}

// JSONPlannerImpact renders the planner rows as indented JSON, the payload
// of the BENCH_planner.json artifact.
func JSONPlannerImpact(rows []PlannerRow) ([]byte, error) {
	out := make([]plannerJSONRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, plannerJSONRow{
			Query:      r.ID,
			Text:       r.Query,
			NsPerOp:    r.Planned.Nanoseconds(),
			NsPerOpOff: r.Unplanned.Nanoseconds(),
			Speedup:    r.Speedup(),
			Matches:    r.N,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// parallelJSONRow is the machine-readable shape of one ParallelRow.
type parallelJSONRow struct {
	Query      int     `json:"query"`
	Text       string  `json:"text"`
	Workers    int     `json:"workers"`
	NsPerOp    int64   `json:"ns_per_op"`
	NsPerOpOff int64   `json:"ns_per_op_serial"`
	Speedup    float64 `json:"speedup"`
	Matches    int     `json:"matches"`
}

// JSONParallel renders the parallel-scaling rows as indented JSON, the
// payload of the BENCH_parallel.json artifact.
func JSONParallel(rows []ParallelRow) ([]byte, error) {
	out := make([]parallelJSONRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, parallelJSONRow{
			Query:      r.ID,
			Text:       r.Query,
			Workers:    r.Workers,
			NsPerOp:    r.Parallel.Nanoseconds(),
			NsPerOpOff: r.Serial.Nanoseconds(),
			Speedup:    r.Speedup(),
			Matches:    r.Matches,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// WriteParallel renders the parallel-scaling measurements.
func WriteParallel(w io.Writer, rows []ParallelRow) {
	fmt.Fprintf(w, "Parallel scaling: serial engine vs sharded EvalParallel (s)\n")
	fmt.Fprintf(w, "%-4s %-30s %8s %10s %10s %9s %9s\n",
		"Q", "Query", "workers", "serial", "parallel", "speedup", "matches")
	for _, r := range rows {
		fmt.Fprintf(w, "Q%-3d %-30s %8d %10s %10s %8.2fx %9d\n",
			r.ID, r.Query, r.Workers, secs(r.Serial), secs(r.Parallel), r.Speedup(), r.Matches)
	}
}

// CSVParallel renders the parallel-scaling rows as CSV.
func CSVParallel(rows []ParallelRow) string {
	var b strings.Builder
	b.WriteString("query,workers,serial_s,parallel_s,speedup,matches\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "Q%d,%d,%f,%f,%f,%d\n",
			r.ID, r.Workers, r.Serial.Seconds(), r.Parallel.Seconds(), r.Speedup(), r.Matches)
	}
	return b.String()
}

// CSVFig7or8 renders the timing rows as CSV.
func CSVFig7or8(rows []SystemTiming) string {
	var b strings.Builder
	b.WriteString("query,lpath_s,tgrep_s,corpussearch_s,n_lpath,n_tgrep,n_cs\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "Q%d,%f,%f,%f,%d,%d,%d\n",
			r.ID, r.LPath.Seconds(), r.TGrep.Seconds(), r.CS.Seconds(),
			r.NLPath, r.NTGrep, r.NCS)
	}
	return b.String()
}

// CSVFig9 renders the scalability curves as CSV.
func CSVFig9(curves map[int][]ScalePoint) string {
	var b strings.Builder
	b.WriteString("query,factor,nodes,lpath_s,tgrep_s,corpussearch_s\n")
	for _, id := range Fig9Queries {
		for _, pt := range curves[id] {
			fmt.Fprintf(&b, "Q%d,%.2f,%d,%f,%f,%f\n",
				id, pt.Factor, pt.Nodes, pt.LPath.Seconds(), pt.TGrep.Seconds(), pt.CS.Seconds())
		}
	}
	return b.String()
}

// CSVFig10 renders the labeling comparison as CSV.
func CSVFig10(rows []LabelTiming) string {
	var b strings.Builder
	b.WriteString("query,lpath_s,xpath_s,results\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "Q%d,%f,%f,%d\n", r.ID, r.LPath.Seconds(), r.XPath.Seconds(), r.NLPath)
	}
	return b.String()
}

// WriteBatchImpact renders the batched-evaluation measurements.
func WriteBatchImpact(w io.Writer, rows []BatchRow) {
	fmt.Fprintf(w, "Batch impact: EvalBatch over the %d-query serving mix vs query-by-query (s)\n", BatchWorkloadLen)
	fmt.Fprintf(w, "%-6s %10s %10s %9s %8s %8s %8s\n",
		"batch", "serial", "batched", "speedup", "rows%", "front%", "sat%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %10s %10s %8.2fx %7.1f%% %7.1f%% %7.1f%%\n",
			r.Size, secs(r.Serial), secs(r.Batched), r.Speedup(),
			100*r.RowsHitRate(), 100*r.FrontierHitRate(), 100*r.SatHitRate())
	}
}

// CSVBatchImpact renders the batched-evaluation rows as CSV.
func CSVBatchImpact(rows []BatchRow) string {
	var b strings.Builder
	b.WriteString("batch,serial_s,batched_s,speedup,rows_hit_rate,frontier_hit_rate,sat_hit_rate,matches\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%f,%f,%f,%f,%f,%f,%d\n",
			r.Size, r.Serial.Seconds(), r.Batched.Seconds(), r.Speedup(),
			r.RowsHitRate(), r.FrontierHitRate(), r.SatHitRate(), r.Matches)
	}
	return b.String()
}

// batchJSONRow is the machine-readable shape of one BatchRow. The benchguard
// gate matches rows by the query field, which here carries the batch width;
// ns_per_op is the batched workload total so the gate watches the shared
// evaluation path itself.
type batchJSONRow struct {
	Query           int     `json:"query"` // batch width (benchguard row key)
	Text            string  `json:"text"`
	NsPerOp         int64   `json:"ns_per_op"`
	NsPerOpSerial   int64   `json:"ns_per_op_serial"`
	Speedup         float64 `json:"speedup"`
	RowsHitRate     float64 `json:"rows_hit_rate"`
	FrontierHitRate float64 `json:"frontier_hit_rate"`
	SatHitRate      float64 `json:"sat_hit_rate"`
	Matches         int     `json:"matches"`
}

// JSONBatchImpact renders the batched-evaluation rows as indented JSON, the
// payload of the BENCH_batch.json artifact.
func JSONBatchImpact(rows []BatchRow) ([]byte, error) {
	out := make([]batchJSONRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, batchJSONRow{
			Query:           r.Size,
			Text:            fmt.Sprintf("workload %dq, batch width %d", BatchWorkloadLen, r.Size),
			NsPerOp:         r.Batched.Nanoseconds(),
			NsPerOpSerial:   r.Serial.Nanoseconds(),
			Speedup:         r.Speedup(),
			RowsHitRate:     r.RowsHitRate(),
			FrontierHitRate: r.FrontierHitRate(),
			SatHitRate:      r.SatHitRate(),
			Matches:         r.Matches,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
