package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"lpath/internal/corpus"
)

func testSystems(t *testing.T) (*Systems, *Systems) {
	t.Helper()
	wsj := GenerateTrees(corpus.WSJ, 0.004, 21)
	swb := GenerateTrees(corpus.SWB, 0.004, 21)
	ws, err := BuildSystems(wsj)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := BuildSystems(swb)
	if err != nil {
		t.Fatal(err)
	}
	return ws, ss
}

func TestBuildSystemsCompilesEverything(t *testing.T) {
	ws, _ := testSystems(t)
	if got := len(ws.QueryIDs()); got != 23 {
		t.Fatalf("query ids = %d", got)
	}
	nx := 0
	for _, id := range ws.QueryIDs() {
		if ws.XPathExpressible(id) {
			nx++
		}
		if ws.QueryText(id) == "" {
			t.Errorf("Q%d has no text", id)
		}
	}
	if nx != 11 {
		t.Errorf("XPath-expressible = %d", nx)
	}
	if ws.QueryText(99) != "" {
		t.Error("unknown id should have empty text")
	}
}

// TestAllSystemsRunAllQueries is the integration smoke test: every system
// answers its dialect of every query without error.
func TestAllSystemsRunAllQueries(t *testing.T) {
	ws, ss := testSystems(t)
	for _, s := range []*Systems{ws, ss} {
		for _, id := range s.QueryIDs() {
			if _, err := s.RunLPath(id); err != nil {
				t.Errorf("Q%d lpath: %v", id, err)
			}
			if _, err := s.RunLPathNoValueIndex(id); err != nil {
				t.Errorf("Q%d lpath-noval: %v", id, err)
			}
			_ = s.RunTGrep(id)
			if _, err := s.RunCS(id); err != nil {
				t.Errorf("Q%d corpussearch: %v", id, err)
			}
			if s.XPathExpressible(id) {
				if _, err := s.RunXPath(id); err != nil {
					t.Errorf("Q%d xpath: %v", id, err)
				}
			} else if _, err := s.RunXPath(id); err == nil {
				t.Errorf("Q%d xpath should be inexpressible", id)
			}
		}
	}
}

// TestValueIndexAblationAgrees checks the ablated engine returns identical
// result sizes.
func TestValueIndexAblationAgrees(t *testing.T) {
	ws, _ := testSystems(t)
	for _, id := range ws.QueryIDs() {
		a, err := ws.RunLPath(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ws.RunLPathNoValueIndex(id)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("Q%d: value index changes results: %d vs %d", id, a, b)
		}
	}
}

// TestXPathSchemeAgrees checks the two labeling schemes return the same
// result sizes on the shared 11 queries (the Figure 10 precondition).
func TestXPathSchemeAgrees(t *testing.T) {
	ws, ss := testSystems(t)
	for _, s := range []*Systems{ws, ss} {
		for _, id := range s.QueryIDs() {
			if !s.XPathExpressible(id) {
				continue
			}
			a, err := s.RunLPath(id)
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.RunXPath(id)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("Q%d: labeling schemes disagree: %d vs %d", id, a, b)
			}
		}
	}
}

func TestFig6Tables(t *testing.T) {
	ws, ss := testSystems(t)
	stats := Fig6a(ws.Trees, ss.Trees)
	if len(stats) != 2 || stats[0].Stats.TreeNodes == 0 {
		t.Fatalf("Fig6a = %+v", stats)
	}
	wt, st := Fig6b(ws.Trees, ss.Trees, 10)
	if len(wt) != 10 || len(st) != 10 {
		t.Fatalf("Fig6b lengths = %d, %d", len(wt), len(st))
	}
	if wt[0].Tag != "NP" {
		t.Errorf("WSJ top tag = %s, want NP", wt[0].Tag)
	}
	if st[0].Tag != "-DFL-" {
		t.Errorf("SWB top tag = %s, want -DFL-", st[0].Tag)
	}
	rows, err := Fig6c(ws, ss)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 23 {
		t.Fatalf("Fig6c rows = %d", len(rows))
	}
	byID := map[int]ResultSize{}
	for _, r := range rows {
		byID[r.ID] = r
	}
	// Figure 6(c) asymmetries: rapprochement/1929/ADVP-LOC-CLR hit only WSJ.
	for _, id := range []int{12, 13, 14} {
		if byID[id].SWB != 0 {
			t.Errorf("Q%d SWB = %d, want 0", id, byID[id].SWB)
		}
		if byID[id].WSJ == 0 {
			t.Errorf("Q%d WSJ = 0, want > 0", id)
		}
	}
	var sb strings.Builder
	WriteFig6a(&sb, stats)
	WriteFig6b(&sb, wt, st)
	WriteFig6c(&sb, rows)
	for _, frag := range []string{"Tree Nodes", "Top 10", "Q12"} {
		if !strings.Contains(sb.String(), frag) {
			t.Errorf("table output missing %q", frag)
		}
	}
}

func TestFig7TimingAndFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	ws, _ := testSystems(t)
	rows, err := Fig7or8(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 23 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.LPath <= 0 || r.TGrep <= 0 || r.CS <= 0 {
			t.Errorf("Q%d has zero timing: %+v", r.ID, r)
		}
	}
	var sb strings.Builder
	WriteFig7or8(&sb, "Figure 7 (WSJ)", rows)
	if !strings.Contains(sb.String(), "TGrep2") {
		t.Error("missing header")
	}
	csv := CSVFig7or8(rows)
	if strings.Count(csv, "\n") != 24 {
		t.Errorf("csv lines = %d", strings.Count(csv, "\n"))
	}
}

func TestFig9ReplicationAndFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	base := GenerateTrees(corpus.WSJ, 0.002, 5)
	curves, err := Fig9(base, []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range Fig9Queries {
		pts := curves[id]
		if len(pts) != 2 {
			t.Fatalf("Q%d points = %d", id, len(pts))
		}
		if pts[1].Nodes <= pts[0].Nodes {
			t.Errorf("Q%d: replication did not grow the corpus", id)
		}
	}
	var sb strings.Builder
	WriteFig9(&sb, curves)
	if !strings.Contains(sb.String(), "factor") {
		t.Error("missing header")
	}
	if csv := CSVFig9(curves); strings.Count(csv, "\n") != 1+2*len(Fig9Queries) {
		t.Errorf("csv lines = %d", strings.Count(csv, "\n"))
	}
}

func TestFig10AndAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	ws, _ := testSystems(t)
	rows, err := Fig10(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("Fig10 rows = %d", len(rows))
	}
	var sb strings.Builder
	WriteFig10(&sb, rows)
	if !strings.Contains(sb.String(), "XPath") {
		t.Error("missing header")
	}
	if csv := CSVFig10(rows); strings.Count(csv, "\n") != 12 {
		t.Errorf("csv lines = %d", strings.Count(csv, "\n"))
	}
	ab, err := Ablations(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(ab) != 5 {
		t.Fatalf("ablations = %d", len(ab))
	}
	WriteAblations(&sb, ab)
}

func TestParallelScalingAndFormat(t *testing.T) {
	ws, _ := testSystems(t)
	rows, err := ParallelScaling(ws, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig9Queries)*3 {
		t.Fatalf("rows = %d, want %d", len(rows), len(Fig9Queries)*3)
	}
	for _, r := range rows {
		if r.Serial <= 0 || r.Parallel <= 0 {
			t.Errorf("Q%d workers=%d: non-positive timing %v/%v", r.ID, r.Workers, r.Serial, r.Parallel)
		}
		if r.Speedup() <= 0 {
			t.Errorf("Q%d workers=%d: speedup %f", r.ID, r.Workers, r.Speedup())
		}
		// Each query must report the same match count at every worker count
		// (ParallelScaling itself verifies parallel == serial counts).
		if r.Matches < 0 {
			t.Errorf("Q%d: negative match count", r.ID)
		}
	}
	var sb strings.Builder
	WriteParallel(&sb, rows)
	if !strings.Contains(sb.String(), "Parallel scaling") || !strings.Contains(sb.String(), "workers") {
		t.Errorf("WriteParallel output:\n%s", sb.String())
	}
	csv := CSVParallel(rows)
	if !strings.HasPrefix(csv, "query,workers,serial_s,parallel_s,speedup,matches\n") {
		t.Errorf("CSV header: %q", csv)
	}
	if strings.Count(csv, "\n") != len(rows)+1 {
		t.Errorf("CSV rows = %d, want %d", strings.Count(csv, "\n")-1, len(rows))
	}
}

func TestReplicateFractional(t *testing.T) {
	base := GenerateTrees(corpus.WSJ, 0.001, 5)
	half := Replicate(base, 0.5)
	double := Replicate(base, 2)
	if half.Len() != (base.Len()+1)/2 && half.Len() != base.Len()/2 {
		t.Errorf("half = %d of %d", half.Len(), base.Len())
	}
	if double.Len() != 2*base.Len() {
		t.Errorf("double = %d of %d", double.Len(), base.Len())
	}
	// Tree IDs must be re-assigned densely.
	for i, tr := range double.Trees {
		if tr.ID != i+1 {
			t.Fatalf("tree %d has id %d", i, tr.ID)
		}
	}
}

func TestTimeItTrimmedMean(t *testing.T) {
	n := 0
	d := TimeIt(func() { n++ })
	if n != Reps {
		t.Errorf("f ran %d times, want %d", n, Reps)
	}
	if d < 0 {
		t.Errorf("negative duration %v", d)
	}
}

func TestBatchImpactAndFormat(t *testing.T) {
	ws, _ := testSystems(t)
	work := ws.BatchWorkload()
	if len(work) != BatchWorkloadLen {
		t.Fatalf("workload length = %d, want %d", len(work), BatchWorkloadLen)
	}
	// The serving mix must be duplicate-heavy within a 16-slot window: that
	// skew is what the rows memo amortizes.
	uniq := map[int]bool{}
	for _, id := range work[:16] {
		uniq[id] = true
	}
	if len(uniq) >= 16 {
		t.Fatalf("first 16-slot window has no duplicates: %v", work[:16])
	}

	rows, err := BatchImpact(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(BatchSizes) {
		t.Fatalf("rows = %d, want %d", len(rows), len(BatchSizes))
	}
	for i, r := range rows {
		if r.Size != BatchSizes[i] {
			t.Errorf("row %d size = %d, want %d", i, r.Size, BatchSizes[i])
		}
		if r.Serial <= 0 || r.Batched <= 0 {
			t.Errorf("batch %d: non-positive timing %v/%v", r.Size, r.Serial, r.Batched)
		}
		if r.Matches != rows[0].Matches {
			t.Errorf("batch %d: %d matches, batch %d reported %d",
				r.Size, r.Matches, rows[0].Size, rows[0].Matches)
		}
		if r.Size == 1 && r.Stats.RowsHits != 0 {
			t.Errorf("batch width 1 reported %d rows hits; the memo is per batch", r.Stats.RowsHits)
		}
		if r.Size >= 16 && r.Stats.RowsHits == 0 {
			t.Errorf("batch width %d saw no rows-memo hits over the skewed mix", r.Size)
		}
	}

	var sb strings.Builder
	WriteBatchImpact(&sb, rows)
	if !strings.Contains(sb.String(), "Batch impact") || !strings.Contains(sb.String(), "rows%") {
		t.Errorf("WriteBatchImpact output:\n%s", sb.String())
	}
	csv := CSVBatchImpact(rows)
	if !strings.HasPrefix(csv, "batch,serial_s,batched_s,speedup,rows_hit_rate,frontier_hit_rate,sat_hit_rate,matches\n") {
		t.Errorf("CSV header: %q", csv)
	}
	if strings.Count(csv, "\n") != 1+len(rows) {
		t.Errorf("csv lines = %d", strings.Count(csv, "\n"))
	}
	data, err := JSONBatchImpact(rows)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		Query   int   `json:"query"`
		NsPerOp int64 `json:"ns_per_op"`
		Matches int   `json:"matches"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(rows) || decoded[2].Query != 16 || decoded[2].NsPerOp <= 0 {
		t.Errorf("JSON rows: %+v", decoded)
	}
}
