// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 5). It builds the four competing
// systems over a common corpus — the LPath engine on interval labels, the
// XPath engine on start/end labels, TGrep2 and CorpusSearch — exposes the 23
// evaluation queries in each system's dialect, and provides the timing
// protocol of Section 5.1 (7 repetitions, average excluding min and max).
//
// Both the testing.B benchmarks in the repository root and the lpathbench
// command are thin wrappers over this package.
package bench

import (
	"fmt"

	"lpath/internal/corpus"
	"lpath/internal/corpussearch"
	"lpath/internal/engine"
	"lpath/internal/lpath"
	"lpath/internal/relstore"
	"lpath/internal/tgrep"
	"lpath/internal/tree"
	"lpath/internal/xpath"
)

// Systems bundles every query system built over one corpus.
type Systems struct {
	Trees *tree.Corpus

	LPath        *engine.Engine
	LPathNoVal   *engine.Engine // value-index ablation
	LPathNoPlan  *engine.Engine // cost-based-planner ablation
	LPathNoMerge *engine.Engine // merge-executor ablation (probe-only)
	LPathNoTwig  *engine.Engine // twig-executor ablation (probe/merge only)
	LPathTwig    *engine.Engine // twig forced on every eligible run
	LPathMerge   *engine.Engine // merge forced on every mergeable step
	LPathNoBmp   *engine.Engine // bitmap-kernel ablation (pre-bitmap engine)
	LPathBmp     *engine.Engine // bitmap forced on every eligible scope entry
	XPath        *xpath.Engine
	TGrep        *tgrep.Corpus
	CS           *corpussearch.Corpus

	Store *relstore.Store // the interval-label store behind LPath

	lpathQ  map[int]*lpath.Path
	xpathQ  map[int]*lpath.Path
	tgrepQ  map[int]*tgrep.Pattern
	csQ     map[int]*corpussearch.Query
	queryID []int
}

// BuildSystems constructs all systems and compiles every evaluation query.
func BuildSystems(c *tree.Corpus) (*Systems, error) {
	s := &Systems{
		Trees:  c,
		lpathQ: map[int]*lpath.Path{},
		xpathQ: map[int]*lpath.Path{},
		tgrepQ: map[int]*tgrep.Pattern{},
		csQ:    map[int]*corpussearch.Query{},
	}
	s.Store = relstore.Build(c, relstore.SchemeInterval)
	var err error
	if s.LPath, err = engine.New(s.Store); err != nil {
		return nil, err
	}
	if s.LPathNoVal, err = engine.New(s.Store, engine.WithoutValueIndex()); err != nil {
		return nil, err
	}
	if s.LPathNoPlan, err = engine.New(s.Store, engine.WithoutPlanner()); err != nil {
		return nil, err
	}
	if s.LPathNoMerge, err = engine.New(s.Store, engine.WithoutMerge()); err != nil {
		return nil, err
	}
	if s.LPathNoTwig, err = engine.New(s.Store, engine.WithoutTwig()); err != nil {
		return nil, err
	}
	if s.LPathTwig, err = engine.New(s.Store, engine.WithTwigAlways()); err != nil {
		return nil, err
	}
	if s.LPathMerge, err = engine.New(s.Store, engine.WithMergeAlways()); err != nil {
		return nil, err
	}
	if s.LPathNoBmp, err = engine.New(s.Store, engine.WithoutBitmap()); err != nil {
		return nil, err
	}
	if s.LPathBmp, err = engine.New(s.Store, engine.WithBitmapAlways()); err != nil {
		return nil, err
	}
	if s.XPath, err = xpath.New(relstore.Build(c, relstore.SchemeStartEnd)); err != nil {
		return nil, err
	}
	s.TGrep = tgrep.BuildCorpus(c)
	s.CS = corpussearch.BuildCorpus(c)

	for _, q := range lpath.EvalQueries {
		p, err := lpath.Parse(q.Text)
		if err != nil {
			return nil, fmt.Errorf("Q%d lpath: %w", q.ID, err)
		}
		s.lpathQ[q.ID] = p
		s.queryID = append(s.queryID, q.ID)
	}
	for id, text := range xpath.EvalQueries {
		p, err := xpath.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("Q%d xpath: %w", id, err)
		}
		s.xpathQ[id] = p
	}
	for id, text := range tgrep.EvalQueries {
		p, err := tgrep.Compile(text)
		if err != nil {
			return nil, fmt.Errorf("Q%d tgrep: %w", id, err)
		}
		s.tgrepQ[id] = p
	}
	for id, text := range corpussearch.EvalQueries {
		q, err := corpussearch.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("Q%d corpussearch: %w", id, err)
		}
		s.csQ[id] = q
	}
	return s, nil
}

// QueryIDs returns the evaluation query numbers (1..23) in order.
func (s *Systems) QueryIDs() []int { return s.queryID }

// QueryText returns the LPath text of query id.
func (s *Systems) QueryText(id int) string {
	for _, q := range lpath.EvalQueries {
		if q.ID == id {
			return q.Text
		}
	}
	return ""
}

// XPathExpressible reports whether query id is in the 11-query XPath subset.
func (s *Systems) XPathExpressible(id int) bool {
	_, ok := s.xpathQ[id]
	return ok
}

// RunLPath evaluates query id on the LPath engine and returns its result
// size.
func (s *Systems) RunLPath(id int) (int, error) {
	return s.LPath.Count(s.lpathQ[id])
}

// RunLPathNoValueIndex evaluates query id with the value index disabled.
func (s *Systems) RunLPathNoValueIndex(id int) (int, error) {
	return s.LPathNoVal.Count(s.lpathQ[id])
}

// RunLPathNoPlanner evaluates query id with the cost-based planner disabled.
func (s *Systems) RunLPathNoPlanner(id int) (int, error) {
	return s.LPathNoPlan.Count(s.lpathQ[id])
}

// RunLPathNoMerge evaluates query id with the merge executor disabled
// (every step falls back to per-binding probes).
func (s *Systems) RunLPathNoMerge(id int) (int, error) {
	return s.LPathNoMerge.Count(s.lpathQ[id])
}

// RunLPathNoTwig evaluates query id with the holistic twig executor
// disabled (steps run per-step under probe or merge).
func (s *Systems) RunLPathNoTwig(id int) (int, error) {
	return s.LPathNoTwig.Count(s.lpathQ[id])
}

// RunLPathTwigForced evaluates query id with the twig executor forced onto
// every eligible step run, overriding the planner's cost decision.
func (s *Systems) RunLPathTwigForced(id int) (int, error) {
	return s.LPathTwig.Count(s.lpathQ[id])
}

// RunLPathMergeForced evaluates query id with the merge executor forced
// onto every mergeable step (twig suppressed).
func (s *Systems) RunLPathMergeForced(id int) (int, error) {
	return s.LPathMerge.Count(s.lpathQ[id])
}

// RunLPathNoBitmap evaluates query id with the dense-bitset kernels
// disabled (scoped tails expand per scope, satisfier sets stay maps).
func (s *Systems) RunLPathNoBitmap(id int) (int, error) {
	return s.LPathNoBmp.Count(s.lpathQ[id])
}

// RunLPathBitmapForced evaluates query id with the bitmap kernel forced onto
// every shape-eligible subtree-scope entry, overriding the planner's cost
// decision.
func (s *Systems) RunLPathBitmapForced(id int) (int, error) {
	return s.LPathBmp.Count(s.lpathQ[id])
}

// RunXPath evaluates query id on the XPath (start/end labeling) engine.
func (s *Systems) RunXPath(id int) (int, error) {
	p, ok := s.xpathQ[id]
	if !ok {
		return 0, fmt.Errorf("bench: Q%d is not XPath-expressible", id)
	}
	return s.XPath.Count(p)
}

// RunTGrep evaluates query id on the TGrep2 baseline.
func (s *Systems) RunTGrep(id int) int {
	return s.TGrep.Count(s.tgrepQ[id])
}

// RunCS evaluates query id on the CorpusSearch baseline.
func (s *Systems) RunCS(id int) (int, error) {
	return s.CS.Count(s.csQ[id])
}

// GenerateTrees builds the synthetic corpus for a profile at a scale.
func GenerateTrees(profile corpus.Profile, scale float64, seed int64) *tree.Corpus {
	return corpus.Generate(corpus.Config{Profile: profile, Scale: scale, Seed: seed})
}

// Replicate returns a corpus with the trees repeated by the (possibly
// fractional) factor, re-identified — the Figure 9 scalability workload.
func Replicate(c *tree.Corpus, factor float64) *tree.Corpus {
	out := tree.NewCorpus()
	total := int(float64(c.Len())*factor + 0.5)
	for i := 0; i < total; i++ {
		src := c.Trees[i%c.Len()]
		out.Add(&tree.Tree{Root: src.Root})
	}
	return out
}
