package bench

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"time"

	"lpath/internal/corpus"
	"lpath/internal/engine"
	"lpath/internal/lpath"
	"lpath/internal/planner"
	"lpath/internal/relstore"
	"lpath/internal/tree"
)

// Reps is the measurement protocol of Section 5.1: every timing is repeated
// Reps times and the reported value is the mean after discarding the
// maximum and minimum.
const Reps = 7

// TimeIt measures f under the paper's protocol and returns the trimmed mean.
func TimeIt(f func()) time.Duration {
	times := make([]time.Duration, Reps)
	for i := range times {
		start := time.Now()
		f()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	var total time.Duration
	for _, d := range times[1 : len(times)-1] {
		total += d
	}
	return total / time.Duration(len(times)-2)
}

// DatasetStats is one row of Figure 6(a).
type DatasetStats struct {
	Name  string
	Stats corpus.Stats
}

// Fig6a measures dataset characteristics for both corpora.
func Fig6a(wsj, swb *tree.Corpus) []DatasetStats {
	return []DatasetStats{
		{"WSJ", corpus.Measure(wsj)},
		{"SWB", corpus.Measure(swb)},
	}
}

// Fig6b returns the top-k tag frequencies per corpus (Figure 6(b)).
func Fig6b(wsj, swb *tree.Corpus, k int) (wsjTags, swbTags []tree.TagFreq) {
	return wsj.TopTags(k), swb.TopTags(k)
}

// ResultSize is one row of Figure 6(c): the result size of a query on both
// datasets.
type ResultSize struct {
	ID       int
	Query    string
	WSJ, SWB int
}

// Fig6c evaluates every query on both corpora with the LPath engine.
func Fig6c(wsj, swb *Systems) ([]ResultSize, error) {
	var out []ResultSize
	for _, id := range wsj.QueryIDs() {
		w, err := wsj.RunLPath(id)
		if err != nil {
			return nil, fmt.Errorf("Q%d wsj: %w", id, err)
		}
		s, err := swb.RunLPath(id)
		if err != nil {
			return nil, fmt.Errorf("Q%d swb: %w", id, err)
		}
		out = append(out, ResultSize{ID: id, Query: wsj.QueryText(id), WSJ: w, SWB: s})
	}
	return out, nil
}

// SystemTiming is one query's timings across the three systems (Figures
// 7–8): LPath engine, TGrep2 and CorpusSearch.
type SystemTiming struct {
	ID    int
	Query string
	LPath time.Duration
	TGrep time.Duration
	CS    time.Duration
	// Result sizes, for sanity reporting.
	NLPath, NTGrep, NCS int
}

// Fig7or8 times every query on every system over one corpus (Figure 7 for
// WSJ, Figure 8 for SWB).
func Fig7or8(s *Systems) ([]SystemTiming, error) {
	var out []SystemTiming
	for _, id := range s.QueryIDs() {
		row := SystemTiming{ID: id, Query: s.QueryText(id)}
		var err error
		row.LPath = TimeIt(func() {
			var e error
			row.NLPath, e = s.RunLPath(id)
			if e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, fmt.Errorf("Q%d lpath: %w", id, err)
		}
		row.TGrep = TimeIt(func() { row.NTGrep = s.RunTGrep(id) })
		row.CS = TimeIt(func() {
			var e error
			row.NCS, e = s.RunCS(id)
			if e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, fmt.Errorf("Q%d corpussearch: %w", id, err)
		}
		out = append(out, row)
	}
	return out, nil
}

// ScalePoint is one point of Figure 9: corpus size factor → per-system time
// for one query.
type ScalePoint struct {
	Factor float64
	Nodes  int
	LPath  time.Duration
	TGrep  time.Duration
	CS     time.Duration
}

// Fig9Queries are the representative queries of Figure 9.
var Fig9Queries = []int{3, 6, 11}

// Fig9 sweeps replication factors of the base corpus and times the three
// systems on the representative queries. The returned map is query id →
// curve.
func Fig9(base *tree.Corpus, factors []float64) (map[int][]ScalePoint, error) {
	out := map[int][]ScalePoint{}
	for _, f := range factors {
		rep := Replicate(base, f)
		sys, err := BuildSystems(rep)
		if err != nil {
			return nil, err
		}
		for _, id := range Fig9Queries {
			pt := ScalePoint{Factor: f, Nodes: rep.NodeCount()}
			pt.LPath = TimeIt(func() { _, _ = sys.RunLPath(id) })
			pt.TGrep = TimeIt(func() { _ = sys.RunTGrep(id) })
			pt.CS = TimeIt(func() { _, _ = sys.RunCS(id) })
			out[id] = append(out[id], pt)
		}
	}
	return out, nil
}

// LabelTiming is one row of Figure 10: the same query on the LPath
// (interval) and XPath (start/end) labeling schemes.
type LabelTiming struct {
	ID             int
	Query          string
	LPath, XPath   time.Duration
	NLPath, NXPath int
}

// Fig10 times the 11 XPath-expressible queries on both labeling schemes.
func Fig10(s *Systems) ([]LabelTiming, error) {
	var out []LabelTiming
	for _, id := range s.QueryIDs() {
		if !s.XPathExpressible(id) {
			continue
		}
		row := LabelTiming{ID: id, Query: s.QueryText(id)}
		var err error
		row.LPath = TimeIt(func() {
			var e error
			row.NLPath, e = s.RunLPath(id)
			if e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, err
		}
		row.XPath = TimeIt(func() {
			var e error
			row.NXPath, e = s.RunXPath(id)
			if e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, err
		}
		if row.NLPath != row.NXPath {
			return nil, fmt.Errorf("bench: Q%d result mismatch between labelings: %d vs %d",
				id, row.NLPath, row.NXPath)
		}
		out = append(out, row)
	}
	return out, nil
}

// AblationRow is one design-choice measurement.
type AblationRow struct {
	Name     string
	Query    string
	Baseline time.Duration // with the design choice
	Ablated  time.Duration // without it
}

// Ablations measures the design decisions called out in DESIGN.md §5: the
// value-index access path, scoping as a primitive (scoped vs unscoped query
// pair), and join direction (selectivity-first vs reversed).
func Ablations(s *Systems) ([]AblationRow, error) {
	var out []AblationRow
	// 1. Value index on/off for the high-selectivity word queries.
	for _, id := range []int{1, 11, 12} {
		row := AblationRow{
			Name:  "value-index",
			Query: s.QueryText(id),
		}
		row.Baseline = TimeIt(func() { _, _ = s.RunLPath(id) })
		row.Ablated = TimeIt(func() { _, _ = s.RunLPathNoValueIndex(id) })
		out = append(out, row)
	}
	// 2. Scope as a primitive: Q4 = Q3 + scoping; the scoped form prunes.
	q3 := TimeIt(func() { _, _ = s.RunLPath(3) })
	q4 := TimeIt(func() { _, _ = s.RunLPath(4) })
	out = append(out, AblationRow{
		Name:     "scope-primitive",
		Query:    s.QueryText(4) + " vs " + s.QueryText(3),
		Baseline: q4,
		Ablated:  q3,
	})
	// 3. Join direction: start from the rare tag (RRC) vs the frequent one
	// (PP-TMP reversed via the parent axis).
	fwd, err := compileCount(s, `//RRC/PP-TMP`)
	if err != nil {
		return nil, err
	}
	rev, err := compileCount(s, `//PP-TMP[\RRC]`)
	if err != nil {
		return nil, err
	}
	out = append(out, AblationRow{
		Name:     "join-direction",
		Query:    "//RRC/PP-TMP vs //PP-TMP[\\RRC]",
		Baseline: fwd,
		Ablated:  rev,
	})
	return out, nil
}

// PlannerRow is one query's before/after measurement of the cost-based
// planner: identical results, planned vs unplanned evaluation time.
type PlannerRow struct {
	ID        int
	Query     string
	Planned   time.Duration
	Unplanned time.Duration
	N         int // result size (identical by construction; verified)
}

// Speedup is the unplanned/planned time ratio (>1 = the planner helps).
func (r PlannerRow) Speedup() float64 {
	if r.Planned <= 0 {
		return 0
	}
	return float64(r.Unplanned) / float64(r.Planned)
}

// PlannerImpact measures every evaluation query with the cost-based planner
// on and off over the same store, verifying result identity as it goes —
// the optimizer's before/after benchmark.
func PlannerImpact(s *Systems) ([]PlannerRow, error) {
	var out []PlannerRow
	for _, id := range s.QueryIDs() {
		row := PlannerRow{ID: id, Query: s.QueryText(id)}
		var nPlanned, nUnplanned int
		var err error
		row.Planned = TimeIt(func() {
			var e error
			nPlanned, e = s.RunLPath(id)
			if e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, fmt.Errorf("Q%d planned: %w", id, err)
		}
		row.Unplanned = TimeIt(func() {
			var e error
			nUnplanned, e = s.RunLPathNoPlanner(id)
			if e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, fmt.Errorf("Q%d unplanned: %w", id, err)
		}
		if nPlanned != nUnplanned {
			return nil, fmt.Errorf("Q%d: planner changed the result: %d vs %d", id, nPlanned, nUnplanned)
		}
		row.N = nPlanned
		out = append(out, row)
	}
	return out, nil
}

// ExecRow is one query's measurement of the set-at-a-time merge executor:
// the full engine (the planner picks probe or merge per step) against the
// probe-only ablation, plus the steady-state heap allocations of one warm
// evaluation under each executor.
type ExecRow struct {
	ID          int
	Query       string
	Merge       time.Duration // full engine, merge executor available
	Probe       time.Duration // probe-only ablation
	AllocsMerge float64       // allocations per warm evaluation, full engine
	AllocsProbe float64       // allocations per warm evaluation, probe-only
	N           int           // result size (identical by construction; verified)
	Strategy    string        // per-step strategy counts from the plan
}

// Speedup is the probe/merge time ratio (>1 = the merge executor helps).
func (r ExecRow) Speedup() float64 {
	if r.Merge <= 0 {
		return 0
	}
	return float64(r.Probe) / float64(r.Merge)
}

// allocsPerRun reports the steady-state heap allocations of one call to f,
// averaged over several runs after a warm-up call (which populates the plan
// cache and grows the evaluator's scratch arenas to their working size).
func allocsPerRun(f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm up: compile, cache the plan, size the arenas
	const runs = 10
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs
}

// planStrategies summarizes the executor strategies the planner chose across
// every step of the plan, including scoped closures and nested predicate
// paths.
func planStrategies(pl *planner.Plan) string {
	if pl == nil || pl.Root == nil {
		return "probe:all"
	}
	var twig, merge, probe, bitmap int
	var walk func(pp *planner.PathPlan)
	walk = func(pp *planner.PathPlan) {
		if pp == nil {
			return
		}
		for _, sp := range pp.Steps {
			switch sp.Strategy {
			case planner.StrategyTwig:
				twig++
			case planner.StrategyMerge:
				merge++
			case planner.StrategyBitmap:
				bitmap++
			default:
				probe++
			}
			for _, pred := range sp.Preds {
				for _, sub := range pred.Paths {
					walk(sub)
				}
			}
		}
		walk(pp.Scoped)
	}
	walk(pl.Root)
	return fmt.Sprintf("twig:%d merge:%d probe:%d bitmap:%d", twig, merge, probe, bitmap)
}

// ExecutorImpact measures every evaluation query with the merge executor on
// and off over the same store, verifying result identity as it goes, and
// records steady-state allocations per evaluation under both executors —
// the set-at-a-time executor's before/after benchmark.
func ExecutorImpact(s *Systems) ([]ExecRow, error) {
	var out []ExecRow
	for _, id := range s.QueryIDs() {
		row := ExecRow{ID: id, Query: s.QueryText(id)}
		var nMerge, nProbe int
		var err error
		row.Merge = TimeIt(func() {
			var e error
			nMerge, e = s.RunLPath(id)
			if e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, fmt.Errorf("Q%d merge: %w", id, err)
		}
		row.Probe = TimeIt(func() {
			var e error
			nProbe, e = s.RunLPathNoMerge(id)
			if e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, fmt.Errorf("Q%d probe: %w", id, err)
		}
		if nMerge != nProbe {
			return nil, fmt.Errorf("Q%d: merge executor changed the result: %d vs %d", id, nMerge, nProbe)
		}
		row.N = nMerge
		row.AllocsMerge = allocsPerRun(func() { _, _ = s.RunLPath(id) })
		row.AllocsProbe = allocsPerRun(func() { _, _ = s.RunLPathNoMerge(id) })
		row.Strategy = planStrategies(s.LPath.Plan(s.lpathQ[id]))
		out = append(out, row)
	}
	return out, nil
}

// TwigRow is one query's measurement of the holistic twig executor: the
// full engine (the planner folds eligible runs into one synchronized
// multi-cursor sweep) against the twig-off ablation (the same planner
// restricted to per-step probe/merge execution), plus the steady-state heap
// allocations of one warm evaluation under each.
type TwigRow struct {
	ID           int
	Query        string
	Twig         time.Duration // full engine, twig executor available
	NoTwig       time.Duration // twig-off ablation (probe/merge per step)
	AllocsTwig   float64       // allocations per warm evaluation, full engine
	AllocsNoTwig float64       // allocations per warm evaluation, twig off
	N            int           // result size (identical by construction; verified)
	Strategy     string        // per-step strategy counts from the plan
}

// Speedup is the no-twig/twig time ratio (>1 = the twig executor helps).
func (r TwigRow) Speedup() float64 {
	if r.Twig <= 0 {
		return 0
	}
	return float64(r.NoTwig) / float64(r.Twig)
}

// TwigImpact measures every evaluation query with the holistic twig
// executor on and off over the same store. Result identity is checked four
// ways per query — planner-chosen, twig-off, probe-only, twig-forced and
// merge-forced all have to agree — before the timings are trusted.
func TwigImpact(s *Systems) ([]TwigRow, error) {
	var out []TwigRow
	for _, id := range s.QueryIDs() {
		row := TwigRow{ID: id, Query: s.QueryText(id)}
		var nTwig, nNoTwig int
		var err error
		row.Twig = TimeIt(func() {
			var e error
			nTwig, e = s.RunLPath(id)
			if e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, fmt.Errorf("Q%d twig: %w", id, err)
		}
		row.NoTwig = TimeIt(func() {
			var e error
			nNoTwig, e = s.RunLPathNoTwig(id)
			if e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, fmt.Errorf("Q%d no-twig: %w", id, err)
		}
		if nTwig != nNoTwig {
			return nil, fmt.Errorf("Q%d: twig executor changed the result: %d vs %d", id, nTwig, nNoTwig)
		}
		for name, run := range map[string]func(int) (int, error){
			"probe-only":   s.RunLPathNoMerge,
			"twig-forced":  s.RunLPathTwigForced,
			"merge-forced": s.RunLPathMergeForced,
		} {
			n, e := run(id)
			if e != nil {
				return nil, fmt.Errorf("Q%d %s: %w", id, name, e)
			}
			if n != nTwig {
				return nil, fmt.Errorf("Q%d: %s changed the result: %d vs %d", id, name, n, nTwig)
			}
		}
		row.N = nTwig
		row.AllocsTwig = allocsPerRun(func() { _, _ = s.RunLPath(id) })
		row.AllocsNoTwig = allocsPerRun(func() { _, _ = s.RunLPathNoTwig(id) })
		row.Strategy = planStrategies(s.LPath.Plan(s.lpathQ[id]))
		out = append(out, row)
	}
	return out, nil
}

// BitmapRow is one query's measurement of the dense-bitset kernels: the full
// engine (the planner marks winning scope entries StrategyBitmap and
// satisfier sets materialize as bitsets) against the bitmap-off ablation
// (the pre-bitmap engine), plus the steady-state heap allocations of one
// warm evaluation under each.
type BitmapRow struct {
	ID           int
	Query        string
	Bitmap       time.Duration // full engine, bitmap kernels available
	NoBitmap     time.Duration // bitmap-off ablation (pre-bitmap engine)
	AllocsBitmap float64       // allocations per warm evaluation, full engine
	AllocsNoBmp  float64       // allocations per warm evaluation, bitmap off
	N            int           // result size (identical by construction; verified)
	Strategy     string        // per-step strategy counts from the plan
}

// Speedup is the no-bitmap/bitmap time ratio (>1 = the bitmap kernels help).
func (r BitmapRow) Speedup() float64 {
	if r.Bitmap <= 0 {
		return 0
	}
	return float64(r.NoBitmap) / float64(r.Bitmap)
}

// BitmapImpact measures every evaluation query with the dense-bitset kernels
// on and off over the same store. Result identity is checked five ways per
// query — planner-chosen, bitmap-off, probe-only, bitmap-forced, twig-forced
// and merge-forced all have to agree — before the timings are trusted.
func BitmapImpact(s *Systems) ([]BitmapRow, error) {
	var out []BitmapRow
	for _, id := range s.QueryIDs() {
		row := BitmapRow{ID: id, Query: s.QueryText(id)}
		var nBmp, nNoBmp int
		var err error
		row.Bitmap = TimeIt(func() {
			var e error
			nBmp, e = s.RunLPath(id)
			if e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, fmt.Errorf("Q%d bitmap: %w", id, err)
		}
		row.NoBitmap = TimeIt(func() {
			var e error
			nNoBmp, e = s.RunLPathNoBitmap(id)
			if e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, fmt.Errorf("Q%d no-bitmap: %w", id, err)
		}
		if nBmp != nNoBmp {
			return nil, fmt.Errorf("Q%d: bitmap kernels changed the result: %d vs %d", id, nBmp, nNoBmp)
		}
		for name, run := range map[string]func(int) (int, error){
			"probe-only":    s.RunLPathNoMerge,
			"bitmap-forced": s.RunLPathBitmapForced,
			"twig-forced":   s.RunLPathTwigForced,
			"merge-forced":  s.RunLPathMergeForced,
		} {
			n, e := run(id)
			if e != nil {
				return nil, fmt.Errorf("Q%d %s: %w", id, name, e)
			}
			if n != nBmp {
				return nil, fmt.Errorf("Q%d: %s changed the result: %d vs %d", id, name, n, nBmp)
			}
		}
		row.N = nBmp
		row.AllocsBitmap = allocsPerRun(func() { _, _ = s.RunLPath(id) })
		row.AllocsNoBmp = allocsPerRun(func() { _, _ = s.RunLPathNoBitmap(id) })
		row.Strategy = planStrategies(s.LPath.Plan(s.lpathQ[id]))
		out = append(out, row)
	}
	return out, nil
}

// LimitPoints are the pushed-down limits the early-termination experiment
// measures against the full evaluation.
var LimitPoints = []int{1, 10, 100}

// LimitRow is one query's limit-pushdown measurement: the full evaluation
// against EvalLimit at each of LimitPoints over the same store.
type LimitRow struct {
	ID      int
	Query   string
	Full    time.Duration
	Limited []time.Duration // aligned with LimitPoints
	N       int             // full result size
}

// Speedup is the full/limited time ratio at LimitPoints[i] (>1 = early
// termination helps).
func (r LimitRow) Speedup(i int) float64 {
	if r.Limited[i] <= 0 {
		return 0
	}
	return float64(r.Full) / float64(r.Limited[i])
}

// LimitImpact measures every evaluation query with the limit pushed into the
// engine at each of LimitPoints against the full evaluation — the streaming
// early-termination before/after benchmark. Every limited run is verified to
// equal the corresponding prefix of the full result before its timing is
// trusted.
func LimitImpact(s *Systems) ([]LimitRow, error) {
	var out []LimitRow
	for _, id := range s.QueryIDs() {
		plan := s.lpathQ[id]
		full, err := s.LPath.Eval(plan)
		if err != nil {
			return nil, fmt.Errorf("Q%d full: %w", id, err)
		}
		row := LimitRow{ID: id, Query: s.QueryText(id), N: len(full)}
		row.Full = TimeIt(func() {
			if _, e := s.LPath.Eval(plan); e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, fmt.Errorf("Q%d full: %w", id, err)
		}
		for _, k := range LimitPoints {
			got, e := s.LPath.EvalLimit(plan, k)
			if e != nil {
				return nil, fmt.Errorf("Q%d limit %d: %w", id, k, e)
			}
			want := full
			if k < len(full) {
				want = full[:k]
			}
			if !reflect.DeepEqual(got, want) {
				return nil, fmt.Errorf("bench: Q%d limit %d is not the prefix of the full result (%d vs %d matches)",
					id, k, len(got), len(want))
			}
			row.Limited = append(row.Limited, TimeIt(func() {
				if _, e := s.LPath.EvalLimit(plan, k); e != nil {
					err = e
				}
			}))
			if err != nil {
				return nil, fmt.Errorf("Q%d limit %d: %w", id, k, err)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// ParallelRow is one (query, workers) measurement of the parallel-scaling
// experiment: the serial engine time against the sharded EvalParallel time
// at a worker count, with the speedup factor.
type ParallelRow struct {
	ID       int
	Query    string
	Workers  int
	Serial   time.Duration
	Parallel time.Duration
	Matches  int
}

// Speedup is the serial/parallel time ratio.
func (r ParallelRow) Speedup() float64 {
	if r.Parallel <= 0 {
		return 0
	}
	return float64(r.Serial) / float64(r.Parallel)
}

// ParallelScaling measures the sharded parallel evaluator against the
// serial engine on the representative Figure 9 queries, sweeping the worker
// counts over a fixed shard layout (one shard per worker at the largest
// count, so only the pool size varies across rows). Speedups track the
// physical core count: on a single-core host every worker count measures
// scheduling overhead only.
func ParallelScaling(s *Systems, workerCounts []int) ([]ParallelRow, error) {
	maxWorkers := 1
	for _, w := range workerCounts {
		if w > maxWorkers {
			maxWorkers = w
		}
	}
	shards, err := engine.NewSharded(relstore.BuildShards(s.Trees, relstore.SchemeInterval, maxWorkers))
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	var out []ParallelRow
	for _, id := range Fig9Queries {
		plan := s.lpathQ[id]
		var serialN int
		serial := TimeIt(func() {
			ms, e := s.LPath.Eval(plan)
			if e != nil {
				err = e
			}
			serialN = len(ms)
		})
		if err != nil {
			return nil, fmt.Errorf("Q%d serial: %w", id, err)
		}
		for _, w := range workerCounts {
			row := ParallelRow{ID: id, Query: s.QueryText(id), Workers: w, Serial: serial}
			row.Parallel = TimeIt(func() {
				ms, e := engine.EvalParallel(ctx, shards, plan, engine.WithWorkers(w))
				if e != nil {
					err = e
				}
				row.Matches = len(ms)
			})
			if err != nil {
				return nil, fmt.Errorf("Q%d workers=%d: %w", id, w, err)
			}
			if row.Matches != serialN {
				return nil, fmt.Errorf("bench: Q%d parallel returned %d matches, serial %d",
					id, row.Matches, serialN)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func compileCount(s *Systems, text string) (time.Duration, error) {
	p, err := parseLPath(text)
	if err != nil {
		return 0, err
	}
	var evalErr error
	d := TimeIt(func() {
		if _, e := s.LPath.Count(p); e != nil {
			evalErr = e
		}
	})
	return d, evalErr
}

// BatchSizes are the batch widths measured by BatchImpact.
var BatchSizes = []int{1, 4, 16, 64}

// BatchWorkloadLen is the length of the serving mix BatchImpact evaluates.
const BatchWorkloadLen = 64

// BatchWorkload is the deterministic 64-query serving mix of the batched
// evaluation experiment: three of every four slots cycle the representative
// Figure 9 trio — the way production query traffic skews toward a few hot
// texts — and every fourth slot walks the full 23-query suite so the tail is
// represented. At batch width 16 a window holds the hot trio four times over
// plus four tail queries, so the cross-query rows memo collapses roughly
// sixteen evaluations into seven.
func (s *Systems) BatchWorkload() []int {
	ids := s.QueryIDs()
	out := make([]int, BatchWorkloadLen)
	for i := range out {
		if i%4 < 3 {
			out[i] = Fig9Queries[i%4]
		} else {
			out[i] = ids[(i/4)%len(ids)]
		}
	}
	return out
}

// BatchRow is one batch-width measurement: the whole workload evaluated
// query-by-query (Serial) against the same workload evaluated in batches of
// Size (Batched), with the memo sharing the batched pass achieved.
type BatchRow struct {
	Size    int
	Serial  time.Duration // workload total, one Eval per query
	Batched time.Duration // workload total, EvalBatch in chunks of Size
	Stats   engine.BatchStats
	Matches int // total matches across the workload
}

// Speedup is the serial/batched aggregate throughput ratio.
func (r BatchRow) Speedup() float64 {
	if r.Batched <= 0 {
		return 0
	}
	return float64(r.Serial) / float64(r.Batched)
}

// RowsHitRate is the fraction of per-plan row scans answered by the batch
// memo.
func (r BatchRow) RowsHitRate() float64 {
	if t := r.Stats.RowsHits + r.Stats.RowsMisses; t > 0 {
		return float64(r.Stats.RowsHits) / float64(t)
	}
	return 0
}

// FrontierHitRate is the fraction of main-path frontier computations
// answered by the batch memo.
func (r BatchRow) FrontierHitRate() float64 {
	if t := r.Stats.FrontierHits + r.Stats.FrontierMisses; t > 0 {
		return float64(r.Stats.FrontierHits) / float64(t)
	}
	return 0
}

// SatHitRate is the fraction of semijoin satisfier sets answered by the
// batch memo.
func (r BatchRow) SatHitRate() float64 {
	if t := r.Stats.SatHits + r.Stats.SatMisses; t > 0 {
		return float64(r.Stats.SatHits) / float64(t)
	}
	return 0
}

// BatchImpact measures EvalBatch against query-by-query evaluation over the
// BatchWorkload serving mix at each of BatchSizes. Every batched slot is
// verified element-wise against its serial evaluation before any timing is
// trusted, so the speedups are over identical results.
func BatchImpact(s *Systems) ([]BatchRow, error) {
	work := s.BatchWorkload()
	paths := make([]*lpath.Path, len(work))
	for i, id := range work {
		paths[i] = s.lpathQ[id]
	}

	// Serial reference: one Eval per slot, also the identity oracle.
	serial := make([][]engine.Match, len(work))
	var total int
	for i, id := range work {
		got, err := s.LPath.Eval(paths[i])
		if err != nil {
			return nil, fmt.Errorf("Q%d serial: %w", id, err)
		}
		serial[i] = got
		total += len(got)
	}
	var evalErr error
	serialTime := TimeIt(func() {
		for i := range paths {
			if _, e := s.LPath.Eval(paths[i]); e != nil {
				evalErr = e
			}
		}
	})
	if evalErr != nil {
		return nil, fmt.Errorf("serial workload: %w", evalErr)
	}

	ctx := context.Background()
	var out []BatchRow
	for _, size := range BatchSizes {
		// Verification pass (untimed): every slot must equal its serial
		// evaluation; the memo hit counters come from this pass.
		var stats engine.BatchStats
		for lo := 0; lo < len(paths); lo += size {
			hi := lo + size
			if hi > len(paths) {
				hi = len(paths)
			}
			got, errs, st := s.LPath.EvalBatchStats(ctx, paths[lo:hi], nil)
			for j, e := range errs {
				if e != nil {
					return nil, fmt.Errorf("Q%d batch %d: %w", work[lo+j], size, e)
				}
				if !reflect.DeepEqual(got[j], serial[lo+j]) {
					return nil, fmt.Errorf("bench: Q%d at batch width %d diverges from serial evaluation (%d vs %d matches)",
						work[lo+j], size, len(got[j]), len(serial[lo+j]))
				}
			}
			stats.Add(st)
		}
		// Timing pass: pure evaluation, no per-slot comparison.
		batched := TimeIt(func() {
			for lo := 0; lo < len(paths); lo += size {
				hi := lo + size
				if hi > len(paths) {
					hi = len(paths)
				}
				_, errs := s.LPath.EvalBatchContext(ctx, paths[lo:hi])
				for _, e := range errs {
					if e != nil {
						evalErr = e
					}
				}
			}
		})
		if evalErr != nil {
			return nil, fmt.Errorf("batch %d: %w", size, evalErr)
		}
		out = append(out, BatchRow{
			Size:    size,
			Serial:  serialTime,
			Batched: batched,
			Stats:   stats,
			Matches: total,
		})
	}
	return out, nil
}
