package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lpath/internal/engine"
	"lpath/internal/lpath"
	"lpath/internal/relstore"
	"lpath/internal/relstore/snapshot"
	"lpath/internal/tree"
)

// SnapshotResult is the cold-start comparison behind the persistent-snapshot
// subsystem: starting a query service from Penn-bracketed text (parse +
// label + sort every index) versus from the binary .lpx snapshot (mmap +
// validate + slice-cast), on the same corpus, with all evaluation queries
// cross-checked between the two stores.
type SnapshotResult struct {
	Trees int
	Rows  int

	TextBytes     int64
	SnapshotBytes int64

	ParseBuild time.Duration // text file → trees → built store
	Encode     time.Duration // built store → snapshot image
	Open       time.Duration // snapshot file → mmap → validated store

	Queries int // evaluation queries with identical counts on both stores
}

// Speedup is the cold-start ratio: text parse+build time over snapshot open
// time.
func (r SnapshotResult) Speedup() float64 {
	if r.Open <= 0 {
		return 0
	}
	return r.ParseBuild.Seconds() / r.Open.Seconds()
}

// SnapshotImpact measures snapshot cold starts for the corpus under the
// standard timing protocol (Reps runs, trimmed mean). Both paths read
// page-cache-warm files, so the comparison isolates CPU cost: parsing and
// index sorting versus validation over mapped arrays.
func SnapshotImpact(trees *tree.Corpus) (*SnapshotResult, error) {
	dir, err := os.MkdirTemp("", "lpath-snapshot-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	mrg := filepath.Join(dir, "corpus.mrg")
	f, err := os.Create(mrg)
	if err != nil {
		return nil, err
	}
	if err := tree.WriteAll(f, trees); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	res := &SnapshotResult{Trees: trees.Len()}
	if info, err := os.Stat(mrg); err == nil {
		res.TextBytes = info.Size()
	}

	// Cold start from text: parse the Penn file and build every index.
	var built *relstore.Store
	res.ParseBuild = TimeIt(func() {
		r, e := os.Open(mrg)
		if e != nil {
			err = e
			return
		}
		c, e := tree.ReadAll(r)
		r.Close()
		if e != nil {
			err = e
			return
		}
		built = relstore.Build(c, relstore.SchemeInterval)
	})
	if err != nil {
		return nil, err
	}
	res.Rows = built.Len()

	// Save: built store → snapshot image → file.
	res.Encode = TimeIt(func() {
		if _, e := snapshot.Encode(built); e != nil {
			err = e
		}
	})
	if err != nil {
		return nil, err
	}
	lpx := filepath.Join(dir, "corpus.lpx")
	if err := snapshot.WriteFile(lpx, built); err != nil {
		return nil, err
	}
	if info, err := os.Stat(lpx); err == nil {
		res.SnapshotBytes = info.Size()
	}

	// Cold start from the snapshot: mmap, validate, assemble.
	res.Open = TimeIt(func() {
		sf, e := snapshot.Open(lpx)
		if e != nil {
			err = e
			return
		}
		sf.Close()
	})
	if err != nil {
		return nil, err
	}

	// Query identity: every evaluation query must count the same on the
	// text-built store and the snapshot-loaded store.
	sf, err := snapshot.Open(lpx)
	if err != nil {
		return nil, err
	}
	defer sf.Close()
	fromText, err := engine.New(built)
	if err != nil {
		return nil, err
	}
	fromSnap, err := engine.New(sf.Store())
	if err != nil {
		return nil, err
	}
	for _, q := range lpath.EvalQueries {
		p, err := lpath.Parse(q.Text)
		if err != nil {
			return nil, fmt.Errorf("Q%d: %w", q.ID, err)
		}
		want, err := fromText.Count(p)
		if err != nil {
			return nil, fmt.Errorf("Q%d text store: %w", q.ID, err)
		}
		got, err := fromSnap.Count(p)
		if err != nil {
			return nil, fmt.Errorf("Q%d snapshot store: %w", q.ID, err)
		}
		if got != want {
			return nil, fmt.Errorf("bench: Q%d counts diverge: snapshot %d, text %d", q.ID, got, want)
		}
		res.Queries++
	}
	return res, nil
}

// WriteSnapshotImpact renders the cold-start comparison as text.
func WriteSnapshotImpact(w io.Writer, r *SnapshotResult) {
	fmt.Fprintln(w, "Snapshot cold start (text parse+build vs .lpx mmap load)")
	fmt.Fprintf(w, "  corpus: %d trees, %d rows\n", r.Trees, r.Rows)
	fmt.Fprintf(w, "  artifact: text %d bytes, snapshot %d bytes (%.2fx)\n",
		r.TextBytes, r.SnapshotBytes, ratio(float64(r.SnapshotBytes), float64(r.TextBytes)))
	fmt.Fprintf(w, "  parse+build from text: %s\n", r.ParseBuild.Round(time.Microsecond))
	fmt.Fprintf(w, "  encode snapshot:       %s\n", r.Encode.Round(time.Microsecond))
	fmt.Fprintf(w, "  open snapshot (mmap):  %s\n", r.Open.Round(time.Microsecond))
	fmt.Fprintf(w, "  cold-start speedup:    %.1fx\n", r.Speedup())
	fmt.Fprintf(w, "  query identity:        %d/%d evaluation queries match\n", r.Queries, len(lpath.EvalQueries))
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// CSVSnapshotImpact renders the comparison as a one-row CSV.
func CSVSnapshotImpact(r *SnapshotResult) string {
	var b strings.Builder
	b.WriteString("trees,rows,text_bytes,snapshot_bytes,parse_build_s,encode_s,open_s,speedup,queries_identical\n")
	fmt.Fprintf(&b, "%d,%d,%d,%d,%f,%f,%f,%.2f,%d\n",
		r.Trees, r.Rows, r.TextBytes, r.SnapshotBytes,
		r.ParseBuild.Seconds(), r.Encode.Seconds(), r.Open.Seconds(), r.Speedup(), r.Queries)
	return b.String()
}

// JSONSnapshotImpact renders the comparison as the BENCH_snapshot.json
// artifact.
func JSONSnapshotImpact(r *SnapshotResult) ([]byte, error) {
	return json.MarshalIndent(struct {
		Trees            int     `json:"trees"`
		Rows             int     `json:"rows"`
		TextBytes        int64   `json:"text_bytes"`
		SnapshotBytes    int64   `json:"snapshot_bytes"`
		ParseBuildSec    float64 `json:"parse_build_s"`
		EncodeSec        float64 `json:"encode_s"`
		OpenSec          float64 `json:"open_s"`
		Speedup          float64 `json:"speedup"`
		QueriesIdentical int     `json:"queries_identical"`
	}{
		r.Trees, r.Rows, r.TextBytes, r.SnapshotBytes,
		r.ParseBuild.Seconds(), r.Encode.Seconds(), r.Open.Seconds(),
		r.Speedup(), r.Queries,
	}, "", "  ")
}
