package xpath

import (
	"math/rand"
	"strings"
	"testing"

	"lpath/internal/engine"
	"lpath/internal/lpath"
	"lpath/internal/relstore"
	"lpath/internal/tree"
)

func TestParseBasics(t *testing.T) {
	p := MustParse(`//S`)
	if len(p.Steps) != 1 || p.Steps[0].Axis != lpath.AxisDescendant || p.Steps[0].Test != "S" {
		t.Errorf("parse //S = %v", p)
	}
	p = MustParse(`/S/NP`)
	if len(p.Steps) != 2 || p.Steps[0].Axis != lpath.AxisChild {
		t.Errorf("parse /S/NP = %v", p)
	}
	p = MustParse(`//*`)
	if !p.Steps[0].Wildcard() {
		t.Errorf("wildcard lost: %v", p)
	}
	p = MustParse(`//NP-SBJ-1`)
	if p.Steps[0].Test != "NP-SBJ-1" {
		t.Errorf("hyphen tag = %q", p.Steps[0].Test)
	}
}

func TestParsePredicates(t *testing.T) {
	p := MustParse(`//S[.//*[@lex='saw']]`)
	pe, ok := p.Steps[0].Preds[0].(*lpath.PathExpr)
	if !ok {
		t.Fatalf("pred = %T", p.Steps[0].Preds[0])
	}
	if pe.Path.Steps[0].Axis != lpath.AxisDescendant || !pe.Path.Steps[0].Wildcard() {
		t.Errorf("inner path = %v", pe.Path)
	}
	cmp, ok := pe.Path.Steps[0].Preds[0].(*lpath.CmpExpr)
	if !ok || cmp.Value != "saw" {
		t.Errorf("cmp = %v", pe.Path.Steps[0].Preds[0])
	}
	p = MustParse(`//NP[not(.//JJ)]`)
	if _, ok := p.Steps[0].Preds[0].(*lpath.NotExpr); !ok {
		t.Errorf("pred = %T", p.Steps[0].Preds[0])
	}
	p = MustParse(`//NP[.//JJ and .//DT or @lex='x']`)
	if _, ok := p.Steps[0].Preds[0].(*lpath.OrExpr); !ok {
		t.Errorf("pred = %T", p.Steps[0].Preds[0])
	}
	p = MustParse(`//S[.//NP/ADJP]`)
	pe = p.Steps[0].Preds[0].(*lpath.PathExpr)
	if len(pe.Path.Steps) != 2 || pe.Path.Steps[1].Axis != lpath.AxisChild {
		t.Errorf("path = %v", pe.Path)
	}
	p = MustParse(`//NP[@lex!="dog"]`)
	cmp = p.Steps[0].Preds[0].(*lpath.CmpExpr)
	if cmp.Op != "!=" || cmp.Value != "dog" {
		t.Errorf("cmp = %+v", cmp)
	}
}

func TestParseLongAxes(t *testing.T) {
	p := MustParse(`/child::S/descendant::NP`)
	if p.Steps[0].Axis != lpath.AxisChild || p.Steps[1].Axis != lpath.AxisDescendant {
		t.Errorf("axes = %v, %v", p.Steps[0].Axis, p.Steps[1].Axis)
	}
	p = MustParse(`//NP[ancestor::VP]`)
	pe := p.Steps[0].Preds[0].(*lpath.PathExpr)
	if pe.Path.Steps[0].Axis != lpath.AxisAncestor {
		t.Errorf("axis = %v", pe.Path.Steps[0].Axis)
	}
}

func TestParseErrors(t *testing.T) {
	for _, q := range []string{
		``, `NP`, `//`, `//NP[`, `//NP[]`, `//NP[@lex=]`, `//NP[@lex=saw]`,
		`//NP]`, `///NP`, `//NP[not .//JJ]`, `//descendant::NP`,
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): expected error", q)
		}
	}
}

func TestAllEvalQueriesParse(t *testing.T) {
	if len(EvalQueries) != 11 {
		t.Fatalf("EvalQueries has %d entries, want 11", len(EvalQueries))
	}
	for id, q := range EvalQueries {
		if _, err := Parse(q); err != nil {
			t.Errorf("Q%d %q: %v", id, q, err)
		}
	}
}

func TestEngineRequiresStartEnd(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	if _, err := New(relstore.Build(c, relstore.SchemeInterval)); err == nil {
		t.Fatal("expected scheme error")
	}
}

func TestEngineRejectsLPathExtensions(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	e, err := New(relstore.Build(c, relstore.SchemeStartEnd))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{`//V->NP`, `//VP{/NP$}`, `//VP/NP$`, `//VP/^V`} {
		if _, err := e.Eval(lpath.MustParse(q)); err == nil {
			t.Errorf("Eval(%q): expected unsupported-feature error", q)
		}
	}
}

func TestEvalFigure1(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	e, err := New(relstore.Build(c, relstore.SchemeStartEnd))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		query string
		want  int
	}{
		{`//NP`, 4},
		{`//S[.//*[@lex='saw']]`, 1},
		{`//NP[not(.//Adj)]`, 2},
		{`//NP[.//Adj]`, 2},
		{`//S/NP`, 1},
		{`//NP/NP`, 1},
		{`//*[@lex='dog']`, 1},
		{`//*[@lex='missing']`, 0},
		{`//NP[parent::VP]`, 1},
		{`//Det[ancestor::PP]`, 1},
		{`//V[self::V]`, 1},
		{`//NP[.//Adj and .//Prep]`, 1},
		{`//NP[.//Adj or @lex='I']`, 3},
	}
	for _, tc := range cases {
		n, err := e.Count(MustParse(tc.query))
		if err != nil {
			t.Errorf("%s: %v", tc.query, err)
			continue
		}
		if n != tc.want {
			t.Errorf("%s: count = %d, want %d", tc.query, n, tc.want)
		}
	}
}

// equivalentLPath maps each XPath test query to the equivalent LPath text so
// the two engines (different labeling schemes) can be cross-validated.
var equivalent = []struct{ xpath, lp string }{
	{`//NP`, `//NP`},
	{`//S/NP`, `/S/NP`},
	{`//NP/NP`, `//NP/NP`},
	{`//S[.//*[@lex='saw']]`, `//S[//_[@lex=saw]]`},
	{`//NP[not(.//Adj)]`, `//NP[not(//Adj)]`},
	{`//NP[.//Adj and .//Prep]`, `//NP[//Adj and //Prep]`},
	{`//NP[parent::VP]`, `//NP[\VP]`},
	{`//Det[ancestor::PP]`, `//Det[\\PP]`},
	{`//*[@lex='dog']`, `//_[@lex=dog]`},
	{`//NP/NP/NP`, `//NP/NP/NP`},
	{`//V/descendant-or-self::*`, `//V/descendant-or-self::_`},
}

// TestCrossValidateWithLPathEngine checks that the XPath engine on start/end
// labels and the LPath engine on interval labels agree on the shared
// fragment, over random corpora.
func TestCrossValidateWithLPathEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tags := []string{"S", "NP", "VP", "PP", "N", "V", "Det", "Adj", "Prep"}
	words := []string{"saw", "dog", "the", "I", "old"}
	var build func(depth int) *tree.Node
	build = func(depth int) *tree.Node {
		n := &tree.Node{Tag: tags[rng.Intn(len(tags))]}
		if depth >= 6 || rng.Intn(3) == 0 {
			n.Word = words[rng.Intn(len(words))]
			return n
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			n.AddChild(build(depth + 1))
		}
		return n
	}
	c := tree.NewCorpus()
	for i := 0; i < 8; i++ {
		c.AddRoot(build(1))
	}
	xe, err := New(relstore.Build(c, relstore.SchemeStartEnd))
	if err != nil {
		t.Fatal(err)
	}
	le, err := engine.New(relstore.Build(c, relstore.SchemeInterval))
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range equivalent {
		xm, err := xe.Eval(MustParse(pair.xpath))
		if err != nil {
			t.Errorf("xpath %q: %v", pair.xpath, err)
			continue
		}
		lm, err := le.Eval(lpath.MustParse(pair.lp))
		if err != nil {
			t.Errorf("lpath %q: %v", pair.lp, err)
			continue
		}
		if len(xm) != len(lm) {
			t.Errorf("%s vs %s: %d vs %d matches", pair.xpath, pair.lp, len(xm), len(lm))
			continue
		}
		for i := range xm {
			if xm[i].TreeID != lm[i].TreeID || xm[i].Node != lm[i].Node {
				t.Errorf("%s vs %s: match %d differs", pair.xpath, pair.lp, i)
				break
			}
		}
	}
}

func TestValueIndexOption(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	s := relstore.Build(c, relstore.SchemeStartEnd)
	e1, _ := New(s)
	e2, _ := New(s, WithoutValueIndex())
	q := MustParse(`//*[@lex='saw']`)
	n1, err1 := e1.Count(q)
	n2, err2 := e2.Count(q)
	if err1 != nil || err2 != nil || n1 != n2 || n1 != 1 {
		t.Errorf("value index on/off disagree: %d/%v vs %d/%v", n1, err1, n2, err2)
	}
}

func TestParseWhitespaceTolerance(t *testing.T) {
	p := MustParse(`  //S[ .//NP and .//VP ]  `)
	if len(p.Steps) != 1 || len(p.Steps[0].Preds) != 1 {
		t.Errorf("parse = %v", p)
	}
	if !strings.Contains(p.String(), "S") {
		t.Errorf("printed = %q", p.String())
	}
}
