package xpath

// EvalQueries maps the 11 XPath-expressible evaluation queries of Figure
// 6(c) (by their Q-number) to XPath 1.0 surface syntax, as used in the
// Figure 10 labeling-scheme comparison.
var EvalQueries = map[int]string{
	1:  `//S[.//*[@lex='saw']]`,
	8:  `//S[.//NP/ADJP]`,
	9:  `//NP[not(.//JJ)]`,
	12: `//*[@lex='rapprochement']`,
	13: `//*[@lex='1929']`,
	14: `//ADVP-LOC-CLR`,
	15: `//WHPP`,
	16: `//RRC/PP-TMP`,
	17: `//UCP-PRD/ADJP-PRD`,
	18: `//NP/NP/NP/NP/NP`,
	19: `//VP/VP/VP`,
}
