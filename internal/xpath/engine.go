package xpath

import (
	"fmt"
	"sort"

	"lpath/internal/lpath"
	"lpath/internal/relstore"
	"lpath/internal/tree"
)

// Engine evaluates the XPath subset over a start/end-labeled store.
//
// Under start/end labels the containment test c.left < x.left ∧ x.right <
// c.right characterizes descendants without a depth column (every position
// is unique), the pid column serves the child/parent axes, and — the point
// of Figure 10 — no label comparison exists for immediate-following, so the
// engine supports exactly the Core XPath vertical fragment plus attributes.
type Engine struct {
	s *relstore.Store
	// disableValueIndex mirrors the LPath engine option, keeping "other
	// components of both labeling schemes the same" (Section 5.4).
	disableValueIndex bool
}

// Option configures an Engine.
type Option func(*Engine)

// WithoutValueIndex disables the value-index access path.
func WithoutValueIndex() Option {
	return func(e *Engine) { e.disableValueIndex = true }
}

// New creates an XPath engine; the store must use the start/end scheme.
func New(s *relstore.Store, opts ...Option) (*Engine, error) {
	if s.Scheme() != relstore.SchemeStartEnd {
		return nil, fmt.Errorf("xpath: store uses %v labels; the XPath engine requires the start/end scheme", s.Scheme())
	}
	e := &Engine{s: s}
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// Match is one query result.
type Match struct {
	TreeID int
	Node   *tree.Node
}

const noRow = int32(-1)

// Eval evaluates the query and returns distinct final-step matches in
// document order.
func (e *Engine) Eval(p *lpath.Path) ([]Match, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	rows, err := e.evalPath(p, []int32{noRow})
	if err != nil {
		return nil, err
	}
	seen := make(map[int32]bool, len(rows))
	uniq := rows[:0:0]
	for _, r := range rows {
		if r != noRow && !seen[r] {
			seen[r] = true
			uniq = append(uniq, r)
		}
	}
	sort.Slice(uniq, func(i, j int) bool {
		a, b := e.s.Row(uniq[i]), e.s.Row(uniq[j])
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.ID < b.ID
	})
	out := make([]Match, 0, len(uniq))
	for _, ri := range uniq {
		r := e.s.Row(ri)
		out = append(out, Match{TreeID: int(r.TID), Node: e.s.NodeFor(r)})
	}
	return out, nil
}

// Count returns the number of distinct matches.
func (e *Engine) Count(p *lpath.Path) (int, error) {
	ms, err := e.Eval(p)
	return len(ms), err
}

// validate rejects AST features the start/end scheme cannot evaluate.
func validate(p *lpath.Path) error {
	if p.Scoped != nil {
		return fmt.Errorf("xpath: subtree scoping is not expressible in XPath")
	}
	for i := range p.Steps {
		s := &p.Steps[i]
		if s.LeftAlign || s.RightAlign {
			return fmt.Errorf("xpath: edge alignment is not expressible in XPath")
		}
		switch s.Axis {
		case lpath.AxisChild, lpath.AxisDescendant, lpath.AxisDescendantOrSelf,
			lpath.AxisParent, lpath.AxisAncestor, lpath.AxisAncestorOrSelf,
			lpath.AxisSelf, lpath.AxisAttribute:
		default:
			return fmt.Errorf("xpath: axis %s is not supported by the start/end labeling", s.Axis)
		}
		for _, pred := range s.Preds {
			if err := validateExpr(pred); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateExpr(x lpath.Expr) error {
	switch ex := x.(type) {
	case *lpath.AndExpr:
		if err := validateExpr(ex.L); err != nil {
			return err
		}
		return validateExpr(ex.R)
	case *lpath.OrExpr:
		if err := validateExpr(ex.L); err != nil {
			return err
		}
		return validateExpr(ex.R)
	case *lpath.NotExpr:
		return validateExpr(ex.X)
	case *lpath.PathExpr:
		return validate(ex.Path)
	case *lpath.CmpExpr:
		return validate(ex.Path)
	case *lpath.PositionExpr, *lpath.LastExpr, *lpath.CountExpr, *lpath.StrFnExpr:
		return fmt.Errorf("xpath: the function library is not part of the comparison subset")
	}
	return nil
}

func (e *Engine) evalPath(p *lpath.Path, ctxs []int32) ([]int32, error) {
	var err error
	for i := range p.Steps {
		ctxs, err = e.evalStep(&p.Steps[i], ctxs)
		if err != nil {
			return nil, err
		}
		if len(ctxs) == 0 {
			return nil, nil
		}
	}
	return ctxs, nil
}

func (e *Engine) evalStep(step *lpath.Step, ctxs []int32) ([]int32, error) {
	if step.Axis == lpath.AxisAttribute {
		return nil, lpath.ErrAttrInMainPath
	}
	valueDriven, eqValue := e.valueDrivenCandidates(step)
	var out []int32
	seen := make(map[int32]bool)
	for _, ctx := range ctxs {
		var cands []int32
		if valueDriven != nil {
			cands = e.filterContained(valueDriven, step, ctx)
		} else {
			cands = e.axisCandidates(step, ctx)
		}
		for _, ci := range cands {
			if seen[ci] {
				continue
			}
			ok, err := e.preds(step, ci, eqValue)
			if err != nil {
				return nil, err
			}
			if ok {
				seen[ci] = true
				out = append(out, ci)
			}
		}
	}
	return out, nil
}

func (e *Engine) preds(step *lpath.Step, ci int32, eqValue string) (bool, error) {
	for _, pred := range step.Preds {
		if eqValue != "" {
			if cmp, ok := pred.(*lpath.CmpExpr); ok && isDirectEq(cmp) && cmp.Value == eqValue {
				continue
			}
		}
		ok, err := e.evalExpr(pred, ci)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func isDirectEq(c *lpath.CmpExpr) bool {
	return c.Op == "=" && c.Path.Scoped == nil && len(c.Path.Steps) == 1 &&
		c.Path.Steps[0].Axis == lpath.AxisAttribute
}

func (e *Engine) valueDrivenCandidates(step *lpath.Step) ([]int32, string) {
	if e.disableValueIndex {
		return nil, ""
	}
	for _, pred := range step.Preds {
		cmp, ok := pred.(*lpath.CmpExpr)
		if !ok || !isDirectEq(cmp) {
			continue
		}
		postings := e.s.ByValue(cmp.Value)
		nameCost := e.s.NameCount(step.Test)
		if step.Wildcard() {
			nameCost = e.s.ElementCount()
		}
		if len(postings) >= nameCost {
			continue
		}
		attrName := "@" + cmp.Path.Steps[0].Test
		cands := make([]int32, 0, len(postings))
		for _, pi := range postings {
			ar := e.s.Row(pi)
			if ar.Name != attrName {
				continue
			}
			ei, ok := e.s.ElementByID(ar.TID, ar.ID)
			if !ok {
				continue
			}
			if !step.Wildcard() && e.s.Row(ei).Name != step.Test {
				continue
			}
			cands = append(cands, ei)
		}
		return cands, cmp.Value
	}
	return nil, ""
}

// filterContained filters precomputed candidates by the axis relation.
func (e *Engine) filterContained(cands []int32, step *lpath.Step, ctx int32) []int32 {
	if ctx == noRow {
		switch step.Axis {
		case lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
			return cands
		case lpath.AxisChild:
			out := cands[:0:0]
			for _, ci := range cands {
				if e.s.Row(ci).PID == 0 {
					out = append(out, ci)
				}
			}
			return out
		default:
			return nil
		}
	}
	c := e.s.Row(ctx)
	out := cands[:0:0]
	for _, ci := range cands {
		x := e.s.Row(ci)
		if x.TID != c.TID {
			continue
		}
		switch step.Axis {
		case lpath.AxisChild:
			if x.PID == c.ID {
				out = append(out, ci)
			}
		case lpath.AxisDescendant:
			if c.Left < x.Left && x.Right < c.Right {
				out = append(out, ci)
			}
		case lpath.AxisDescendantOrSelf:
			if c.Left <= x.Left && x.Right <= c.Right {
				out = append(out, ci)
			}
		case lpath.AxisSelf:
			if x.ID == c.ID {
				out = append(out, ci)
			}
		case lpath.AxisParent:
			if x.ID == c.PID {
				out = append(out, ci)
			}
		case lpath.AxisAncestor:
			if x.Left < c.Left && c.Right < x.Right {
				out = append(out, ci)
			}
		case lpath.AxisAncestorOrSelf:
			if x.Left <= c.Left && c.Right <= x.Right {
				out = append(out, ci)
			}
		}
	}
	return out
}

// axisCandidates probes the store for nodes on the axis from ctx.
func (e *Engine) axisCandidates(step *lpath.Step, ctx int32) []int32 {
	if ctx == noRow {
		switch step.Axis {
		case lpath.AxisChild:
			return e.filterName(e.s.Roots(), step)
		case lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
			if step.Wildcard() {
				return e.s.ElementsByLeft()
			}
			lo, hi, ok := e.s.NameRange(step.Test)
			if !ok {
				return nil
			}
			out := make([]int32, 0, hi-lo)
			for i := lo; i < hi; i++ {
				out = append(out, i)
			}
			return out
		default:
			return nil
		}
	}
	c := e.s.Row(ctx)
	switch step.Axis {
	case lpath.AxisSelf:
		if step.Wildcard() || c.Name == step.Test {
			return []int32{ctx}
		}
		return nil
	case lpath.AxisChild:
		return e.filterName(e.s.Children(c.TID, c.ID), step)
	case lpath.AxisParent:
		if c.PID == 0 {
			return nil
		}
		if pi, ok := e.s.ElementByID(c.TID, c.PID); ok {
			return e.filterName([]int32{pi}, step)
		}
		return nil
	case lpath.AxisAncestor, lpath.AxisAncestorOrSelf:
		var out []int32
		cur := ctx
		if step.Axis == lpath.AxisAncestor {
			r := e.s.Row(cur)
			if r.PID == 0 {
				return nil
			}
			next, ok := e.s.ElementByID(r.TID, r.PID)
			if !ok {
				return nil
			}
			cur = next
		}
		for {
			r := e.s.Row(cur)
			if step.Wildcard() || r.Name == step.Test {
				out = append(out, cur)
			}
			if r.PID == 0 {
				break
			}
			next, ok := e.s.ElementByID(r.TID, r.PID)
			if !ok {
				break
			}
			cur = next
		}
		return out
	case lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
		// start ∈ (c.start, c.end) — containment needs no depth column.
		lo, hi := c.Left+1, c.Right-1
		if step.Axis == lpath.AxisDescendantOrSelf {
			lo = c.Left
		}
		return e.scanLeftRange(step, c.TID, lo, hi)
	}
	return nil
}

func (e *Engine) filterName(rows []int32, step *lpath.Step) []int32 {
	if step.Wildcard() {
		return rows
	}
	out := rows[:0:0]
	for _, ri := range rows {
		if e.s.Row(ri).Name == step.Test {
			out = append(out, ri)
		}
	}
	return out
}

func (e *Engine) scanLeftRange(step *lpath.Step, tid, lo, hi int32) []int32 {
	if hi < lo {
		return nil
	}
	if step.Wildcard() {
		idxs := e.s.ElementsByLeft()
		start := sort.Search(len(idxs), func(i int) bool {
			r := e.s.Row(idxs[i])
			return r.TID > tid || (r.TID == tid && r.Left >= lo)
		})
		var out []int32
		for i := start; i < len(idxs); i++ {
			r := e.s.Row(idxs[i])
			if r.TID != tid || r.Left > hi {
				break
			}
			out = append(out, idxs[i])
		}
		return out
	}
	rlo, rhi, ok := e.s.NameRange(step.Test)
	if !ok {
		return nil
	}
	n := int(rhi - rlo)
	start := sort.Search(n, func(i int) bool {
		r := e.s.Row(rlo + int32(i))
		return r.TID > tid || (r.TID == tid && r.Left >= lo)
	})
	var out []int32
	for i := start; i < n; i++ {
		ri := rlo + int32(i)
		r := e.s.Row(ri)
		if r.TID != tid || r.Left > hi {
			break
		}
		out = append(out, ri)
	}
	return out
}

// --- predicates -----------------------------------------------------------

func (e *Engine) evalExpr(x lpath.Expr, ctx int32) (bool, error) {
	switch ex := x.(type) {
	case *lpath.AndExpr:
		ok, err := e.evalExpr(ex.L, ctx)
		if err != nil || !ok {
			return false, err
		}
		return e.evalExpr(ex.R, ctx)
	case *lpath.OrExpr:
		ok, err := e.evalExpr(ex.L, ctx)
		if err != nil || ok {
			return ok, err
		}
		return e.evalExpr(ex.R, ctx)
	case *lpath.NotExpr:
		ok, err := e.evalExpr(ex.X, ctx)
		return !ok, err
	case *lpath.PathExpr:
		return e.exists(ex.Path, ctx, "", "")
	case *lpath.CmpExpr:
		return e.exists(ex.Path, ctx, ex.Op, ex.Value)
	}
	return false, nil
}

func (e *Engine) exists(p *lpath.Path, ctx int32, op, value string) (bool, error) {
	head, attr, err := lpath.SplitAttr(p)
	if err != nil {
		return false, err
	}
	if op != "" && attr == "" {
		return false, lpath.ErrCmpNeedsAttr
	}
	var elems []int32
	if head == nil {
		elems = []int32{ctx}
	} else {
		elems, err = e.evalPath(head, []int32{ctx})
		if err != nil {
			return false, err
		}
	}
	if attr == "" {
		return len(elems) > 0, nil
	}
	attrName := "@" + attr
	for _, ei := range elems {
		if ei == noRow {
			continue
		}
		r := e.s.Row(ei)
		v, ok := e.s.AttrValue(r.TID, r.ID, attrName)
		if !ok {
			continue
		}
		switch op {
		case "":
			return true, nil
		case "=":
			if v == value {
				return true, nil
			}
		case "!=":
			if v != value {
				return true, nil
			}
		}
	}
	return false, nil
}
