package xpath

import (
	"testing"

	"lpath/internal/relstore"
	"lpath/internal/tree"
)

func figEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	c.Add(tree.MustParseTree(`(S (NP you) (VP (V saw) (NP (Det a) (N cat))))`))
	e, err := New(relstore.Build(c, relstore.SchemeStartEnd), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestValueDrivenWithContexts exercises the value-index access path under
// every supported axis relation (filterContained branches).
func TestValueDrivenWithContexts(t *testing.T) {
	e := figEngine(t)
	cases := []struct {
		query string
		want  int
	}{
		{`//S/NP[@lex='I']`, 1},                        // child + value
		{`//S//*[@lex='saw']`, 2},                      // descendant + value
		{`//VP[descendant-or-self::*[@lex='saw']]`, 2}, // desc-or-self + value
		{`//*[@lex='saw'][self::V]`, 2},                // self after value probe
		{`//Det[parent::NP[.//*[@lex='dog']]]`, 1},     // parent navigation
		{`//Det[ancestor::VP[.//*[@lex='cat']]]`, 1},   // ancestor navigation
		{`/S[.//*[@lex='cat']]`, 1},                    // root-child + value pred
		{`//*[@lex='nope']`, 0},
	}
	for _, tc := range cases {
		n, err := e.Count(MustParse(tc.query))
		if err != nil {
			t.Errorf("%s: %v", tc.query, err)
			continue
		}
		if n != tc.want {
			t.Errorf("%s: count = %d, want %d", tc.query, n, tc.want)
		}
	}
	// The same queries without the value index must agree.
	noval := figEngine(t, WithoutValueIndex())
	for _, tc := range cases {
		n, err := noval.Count(MustParse(tc.query))
		if err != nil || n != tc.want {
			t.Errorf("no-value-index %s: count = %d, %v (want %d)", tc.query, n, err, tc.want)
		}
	}
}

func TestParserKeywordAdjacency(t *testing.T) {
	// 'or'/'and' adjacent to parens rather than spaces.
	p := MustParse(`//S[.//NP or(.//ZZ)]`)
	e := figEngine(t)
	n, err := e.Count(p)
	if err != nil || n != 2 {
		t.Errorf("or( adjacency: %d, %v", n, err)
	}
	p = MustParse(`//S[(.//NP)and .//VP]`)
	n, err = e.Count(p)
	if err != nil || n != 2 {
		t.Errorf("and adjacency: %d, %v", n, err)
	}
	// 'order' must not lex as the keyword 'or'.
	if _, err := Parse(`//S[.//NP order]`); err == nil {
		t.Error("trailing garbage should fail")
	}
}

func TestXPathMoreErrors(t *testing.T) {
	for _, q := range []string{
		`//S[@]`,           // missing attribute name
		`//S[.//NP=]`,      // missing literal
		`//S[.//NP='x]`,    // unterminated literal
		`//S[.//NP!=x]`,    // unquoted literal
		`//descendant::NP`, // // with explicit axis
		`//S[not(.//NP]`,   // missing close paren
		`//S[child::@x]`,   // @ after explicit axis
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): expected error", q)
		}
	}
}

func TestXPathAttrComparisonForms(t *testing.T) {
	e := figEngine(t)
	n, err := e.Count(MustParse(`//V[@lex!="ran"]`))
	if err != nil || n != 2 {
		t.Errorf("!= form: %d, %v", n, err)
	}
	n, err = e.Count(MustParse(`//V[./@lex='saw']`))
	if err != nil || n != 2 {
		t.Errorf("./@ form: %d, %v", n, err)
	}
	n, err = e.Count(MustParse(`//V[attribute::lex='saw']`))
	if err != nil || n != 2 {
		t.Errorf("attribute:: form: %d, %v", n, err)
	}
}
