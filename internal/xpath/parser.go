// Package xpath implements the comparison system of Figure 10: an XPath 1.0
// subset evaluated over the conventional start/end labeling scheme of
// DeHaan et al. [11] rather than the paper's interval scheme.
//
// The subset covers what the 11 XPath-expressible evaluation queries need:
// the child, descendant, descendant-or-self, self, parent, ancestor and
// attribute axes, '*' wildcards, and predicates built from relative paths,
// attribute comparisons, not(), and, or. The horizontal LPath axes, subtree
// scoping and edge alignment are deliberately absent — they are the features
// the start/end scheme cannot support (Lemma 3.1).
//
// Queries parse into the shared lpath.Path AST (restricted to Core XPath
// axes), and evaluate on a relstore built with relstore.SchemeStartEnd.
package xpath

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"lpath/internal/lpath"
)

// Parse parses an absolute XPath query (beginning with / or //) from the
// supported subset into the shared AST.
func Parse(query string) (*lpath.Path, error) {
	p := &xparser{src: query}
	p.ws()
	path, err := p.parseAbsolute()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos < len(p.src) {
		return nil, p.errf("trailing input")
	}
	return path, nil
}

// MustParse is Parse panicking on error.
func MustParse(query string) *lpath.Path {
	p, err := Parse(query)
	if err != nil {
		panic(err)
	}
	return p
}

type xparser struct {
	src string
	pos int
}

func (p *xparser) errf(format string, args ...any) error {
	return fmt.Errorf("xpath: %s at offset %d in %q", fmt.Sprintf(format, args...), p.pos, p.src)
}

func (p *xparser) ws() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *xparser) eat(s string) bool {
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *xparser) peekPrefix(s string) bool { return strings.HasPrefix(p.src[p.pos:], s) }

func isXNameRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_' || r == '.'
}

func (p *xparser) name() (string, bool) {
	start := p.pos
	for p.pos < len(p.src) {
		r, sz := utf8.DecodeRuneInString(p.src[p.pos:])
		if !isXNameRune(r) {
			break
		}
		p.pos += sz
	}
	if p.pos == start {
		return "", false
	}
	return p.src[start:p.pos], true
}

// parseAbsolute parses '/'|'//' Step (('/'|'//') Step)*.
func (p *xparser) parseAbsolute() (*lpath.Path, error) {
	if !p.peekPrefix("/") {
		return nil, p.errf("expected absolute path")
	}
	return p.parseSteps()
}

// parseSteps parses a slash-separated step sequence; the caller guarantees
// the input starts with '/' or '//'.
func (p *xparser) parseSteps() (*lpath.Path, error) {
	path := &lpath.Path{}
	for {
		p.ws()
		var axis lpath.Axis
		switch {
		case p.eat("//"):
			axis = lpath.AxisDescendant
		case p.eat("/"):
			axis = lpath.AxisChild
		default:
			if len(path.Steps) == 0 {
				return nil, p.errf("expected step")
			}
			return path, nil
		}
		step, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, *step)
	}
}

func (p *xparser) parseStep(axis lpath.Axis) (*lpath.Step, error) {
	p.ws()
	// Long axis forms.
	explicit := false
	for name, a := range map[string]lpath.Axis{
		"descendant-or-self::": lpath.AxisDescendantOrSelf,
		"descendant::":         lpath.AxisDescendant,
		"ancestor-or-self::":   lpath.AxisAncestorOrSelf,
		"ancestor::":           lpath.AxisAncestor,
		"child::":              lpath.AxisChild,
		"parent::":             lpath.AxisParent,
		"self::":               lpath.AxisSelf,
		"attribute::":          lpath.AxisAttribute,
	} {
		if p.peekPrefix(name) {
			if axis == lpath.AxisDescendant {
				return nil, p.errf("'//' may not combine with an explicit axis")
			}
			p.eat(name)
			axis = a
			explicit = true
			break
		}
	}
	step := &lpath.Step{Axis: axis}
	switch {
	case p.eat("@"):
		if step.Axis == lpath.AxisChild && !explicit {
			step.Axis = lpath.AxisAttribute
		} else if step.Axis != lpath.AxisAttribute {
			return nil, p.errf("@ after explicit axis")
		}
		n, ok := p.name()
		if !ok {
			return nil, p.errf("expected attribute name")
		}
		step.Test = n
	case p.eat("*"):
		step.Test = "_"
	default:
		n, ok := p.name()
		if !ok {
			return nil, p.errf("expected node test")
		}
		step.Test = n
	}
	for {
		p.ws()
		if !p.eat("[") {
			break
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		p.ws()
		if !p.eat("]") {
			return nil, p.errf("expected ]")
		}
		step.Preds = append(step.Preds, e)
	}
	return step, nil
}

func (p *xparser) parseOr() (lpath.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.ws()
		if !p.eat("or ") && !p.peekOrKeyword("or") {
			return l, nil
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &lpath.OrExpr{L: l, R: r}
	}
}

// peekOrKeyword handles "or(" and "or[" style adjacency; the common form
// "or " is consumed by the caller.
func (p *xparser) peekOrKeyword(kw string) bool {
	if p.peekPrefix(kw) {
		rest := p.src[p.pos+len(kw):]
		if rest != "" && !isXNameRune(rune(rest[0])) {
			p.pos += len(kw)
			return true
		}
	}
	return false
}

func (p *xparser) parseAnd() (lpath.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		p.ws()
		if !p.eat("and ") && !p.peekOrKeyword("and") {
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &lpath.AndExpr{L: l, R: r}
	}
}

func (p *xparser) parseUnary() (lpath.Expr, error) {
	p.ws()
	if p.peekPrefix("not") {
		save := p.pos
		p.pos += 3
		p.ws()
		if p.eat("(") {
			inner, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			p.ws()
			if !p.eat(")") {
				return nil, p.errf("expected )")
			}
			return &lpath.NotExpr{X: inner}, nil
		}
		p.pos = save
	}
	if p.eat("(") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		p.ws()
		if !p.eat(")") {
			return nil, p.errf("expected )")
		}
		return inner, nil
	}
	return p.parseRelative()
}

// parseRelative parses a relative path predicate: './/'-, '.'-, '@'-, or
// name-initial, optionally followed by a comparison.
func (p *xparser) parseRelative() (lpath.Expr, error) {
	path := &lpath.Path{}
	p.ws()
	switch {
	case p.eat(".//"):
		step, err := p.parseStep(lpath.AxisDescendant)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, *step)
	case p.eat("./"):
		step, err := p.parseStep(lpath.AxisChild)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, *step)
	case p.eat("."):
		path.Steps = append(path.Steps, lpath.Step{Axis: lpath.AxisSelf, Test: "_"})
	default:
		// name- / * / @ / axis:: -initial: an implicit child (or attribute)
		// step.
		step, err := p.parseStep(lpath.AxisChild)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, *step)
	}
	// Continue with /-separated steps.
	for {
		p.ws()
		var axis lpath.Axis
		switch {
		case p.eat("//"):
			axis = lpath.AxisDescendant
		case p.eat("/"):
			axis = lpath.AxisChild
		default:
			goto done
		}
		step, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, *step)
	}
done:
	p.ws()
	op := ""
	switch {
	case p.eat("!="):
		op = "!="
	case p.eat("="):
		op = "="
	}
	if op == "" {
		return &lpath.PathExpr{Path: path}, nil
	}
	p.ws()
	val, err := p.literal()
	if err != nil {
		return nil, err
	}
	return &lpath.CmpExpr{Path: path, Op: op, Value: val}, nil
}

func (p *xparser) literal() (string, error) {
	if p.pos >= len(p.src) {
		return "", p.errf("expected literal")
	}
	q := p.src[p.pos]
	if q != '\'' && q != '"' {
		return "", p.errf("expected quoted literal")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != q {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", p.errf("unterminated literal")
	}
	val := p.src[start:p.pos]
	p.pos++
	return val, nil
}
