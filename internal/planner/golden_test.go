// Golden EXPLAIN snapshots for the 23-query evaluation matrix: the chosen
// access paths, predicate order, semijoins and cardinality estimates over the
// deterministic wsj corpus (scale 0.01, seed 42) are pinned byte-for-byte, so
// any cost-model or estimator change shows up as a reviewed diff. Refresh
// with:
//
//	go test ./internal/planner -run TestGoldenPlans -update

package planner_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"lpath"
)

var update = flag.Bool("update", false, "rewrite the golden EXPLAIN snapshots")

func goldenPlans(t *testing.T, c *lpath.Corpus, allowUpdate bool) {
	t.Helper()
	for _, eq := range lpath.EvalQueries() {
		name := fmt.Sprintf("q%02d", eq.ID)
		t.Run(name, func(t *testing.T) {
			got, err := c.ExplainText(eq.Text)
			if err != nil {
				t.Fatal(err)
			}
			got += "\n"
			path := filepath.Join("testdata", name+".golden")
			if allowUpdate && *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

func TestGoldenPlans(t *testing.T) {
	c, err := lpath.GenerateCorpus("wsj", 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	goldenPlans(t, c, true)
}

// TestGoldenPlansFromSnapshot pins that a snapshot round trip preserves the
// statistics the planner reads: the store saved to the binary snapshot format
// and loaded back must produce the exact same EXPLAIN output — same access
// paths, same cardinality estimates — as the freshly built store.
func TestGoldenPlansFromSnapshot(t *testing.T) {
	built, err := lpath.GenerateCorpus("wsj", 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := built.SaveStore(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := lpath.LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	goldenPlans(t, c, false)
}
