// Package planner is the cost-based query planner between LPath compilation
// and evaluation. It reads the corpus statistics snapshot the relational
// store computes at build time (relstore.Statistics) and turns a compiled
// query into an explicit Plan: for every location step an access-path
// choice (clustered name scan, {value,tid,id} value index, {tid,pid} child
// index, or pid-chain walk), an execution order for the step's commutative
// predicate conjuncts (cheapest first), and — for selective existential
// filters — a reverse "semijoin" strategy that computes the filter's
// satisfier set once from its most selective end instead of re-probing it
// from every candidate.
//
// The plan is pure annotation: it never changes what a query means, only
// how the engine evaluates it, and the engine's unplanned path remains
// available so the equivalence is continuously checked by differential
// tests and fuzzing. EXPLAIN (Plan.Render) prints the chosen plan with
// estimated and, when available, actual cardinalities.
package planner

import (
	"fmt"
	"hash/fnv"
	"strings"

	"lpath/internal/lpath"
)

// Access enumerates the access paths of the paper's storage design
// (Section 5): how a step's candidate rows are retrieved.
type Access int

const (
	// AccessNameScan probes the clustered {name, tid, left, ...} relation
	// with a sargable range for the axis (Table 2).
	AccessNameScan Access = iota
	// AccessDocScan is the wildcard variant: a document-order range scan
	// over all element rows.
	AccessDocScan
	// AccessChildIndex probes the {tid, pid} index (child and sibling axes).
	AccessChildIndex
	// AccessPidChain walks the pid chain upward (parent and ancestor axes).
	AccessPidChain
	// AccessSelf tests the context row itself.
	AccessSelf
	// AccessValueIndex drives the step from the {value, tid, id} posting
	// list of a direct @attr=value predicate, then filters by the axis.
	AccessValueIndex
)

func (a Access) String() string {
	switch a {
	case AccessNameScan:
		return "name-scan"
	case AccessDocScan:
		return "doc-scan"
	case AccessChildIndex:
		return "child-index"
	case AccessPidChain:
		return "pid-chain"
	case AccessSelf:
		return "self"
	case AccessValueIndex:
		return "value-index"
	}
	return fmt.Sprintf("access(%d)", int(a))
}

// Strategy enumerates how a step's axis join is executed.
type Strategy int

const (
	// StrategyProbe evaluates the step binding-at-a-time: one index probe
	// per context row.
	StrategyProbe Strategy = iota
	// StrategyMerge evaluates the whole frontier against the step's posting
	// list in one forward sweep — the set-at-a-time structural join the
	// interval labeling enables (docs/EXECUTION.md).
	StrategyMerge
	// StrategyTwig evaluates the step as part of a holistic run: one
	// synchronized document-order sweep over every step's posting list at
	// once, with per-step stacks instead of materialized inter-step
	// frontiers. The run's head step carries TwigRun.
	StrategyTwig
	// StrategyBitmap evaluates a subtree-scope entry step set-at-a-time
	// over dense bitsets: the scope frontier becomes a bitset over the
	// columnar row index, and the step's posting list resolves membership
	// through the parent-pointer column instead of per-scope index probes
	// (internal/engine/bitmap.go).
	StrategyBitmap
)

func (st Strategy) String() string {
	switch st {
	case StrategyMerge:
		return "merge"
	case StrategyTwig:
		return "twig"
	case StrategyBitmap:
		return "bitmap"
	}
	return "probe"
}

// SeedKind says how a semijoin's seed set (the matches of the filter path's
// final step) is materialized.
type SeedKind int

const (
	// SeedName scans the final step's clustered name range.
	SeedName SeedKind = iota
	// SeedValue drives the seed from a value-index posting list.
	SeedValue
)

func (k SeedKind) String() string {
	if k == SeedValue {
		return "value"
	}
	return "name"
}

// Plan is the executable plan for one query. It is immutable after
// planning; the engine threads it through evaluation and looks up the
// per-step and per-predicate choices by AST node identity.
type Plan struct {
	// Text is the canonical query text.
	Text string
	// Root is the plan of the main path.
	Root *PathPlan
	// EstMatches is the estimated final result cardinality.
	EstMatches float64
	// Threshold is the statistics-derived value-probe density (elements
	// per unit of span) used by the runtime crossover check.
	Threshold float64

	steps map[*lpath.Step]*StepPlan
	semis map[lpath.Expr]*Semijoin
}

// Step returns the plan of an AST step, or nil when the step was not
// planned (e.g. a trailing attribute step).
func (p *Plan) Step(s *lpath.Step) *StepPlan { return p.steps[s] }

// StrategyCounts tallies the execution strategies chosen for the main path's
// steps (including scoped tails): how many run as per-binding probes, as
// set-at-a-time merges, as members of holistic twig runs, and as bitmap
// scope entries. The serving layer exports these as executor-strategy
// metrics.
func (p *Plan) StrategyCounts() (probe, merge, twig, bitmap int) {
	for pp := p.Root; pp != nil; pp = pp.Scoped {
		for _, sp := range pp.Steps {
			switch sp.Strategy {
			case StrategyMerge:
				merge++
			case StrategyTwig:
				twig++
			case StrategyBitmap:
				bitmap++
			default:
				probe++
			}
		}
	}
	return probe, merge, twig, bitmap
}

// SemijoinFor returns the semijoin strategy chosen for a predicate
// expression, or nil when the predicate runs forward.
func (p *Plan) SemijoinFor(x lpath.Expr) *Semijoin { return p.semis[x] }

// MainKey returns the canonical structural key of the main path's step
// sequence when path is the plan's root path, and "" otherwise. The batch
// executor uses it to recognize step-frontier computations shared across the
// queries of a batch.
func (p *Plan) MainKey(path *lpath.Path) string {
	if p == nil || p.Root == nil || p.Root.Path != path {
		return ""
	}
	return p.Root.Key
}

// PathPlan mirrors one relative path of the query.
type PathPlan struct {
	Path   *lpath.Path
	Steps  []*StepPlan
	Scoped *PathPlan
	// Key is the canonical structural key of the path's step sequence
	// (excluding any scoped tail): the cumulative key of its last step, or
	// the inherited prefix for a step-less path. Empty on predicate paths,
	// which are keyed through their semijoins instead.
	Key string
	// EstOut is the estimated number of bindings the path produces.
	EstOut float64
	// cost is the modeled total row touches of evaluating the path once.
	cost float64
}

// StepPlan is the planned form of one location step.
type StepPlan struct {
	Step   *lpath.Step
	Access Access
	// Key is the canonical structural key of the step: the canonical print
	// of the main path's steps (including predicates, alignment and subtree
	// scope openings) from the virtual root up to and including this one.
	// Equal keys across queries mean equal inputs to the planner and equal
	// candidate frontiers at this point, which is what the batch executor's
	// cross-query memo keys on (engine.EvalBatch). Empty on predicate-path
	// steps, whose sharing runs through Semijoin.Key instead.
	Key string
	// Strategy says whether the engine executes the step as per-binding
	// probes or as one set-at-a-time merge over the sorted frontier.
	Strategy Strategy
	// Value/Attr/Postings describe the value-index drive when Access is
	// AccessValueIndex: the literal, the attribute name (with '@'), and
	// the statistics-time posting count.
	Value    string
	Attr     string
	Postings int
	// Bias is the statistics-derived crossover density for the value probe:
	// the engine drives a descendant step from the value index when the
	// posting list is smaller than Bias × the context's span (the expected
	// name rows a clustered scan of that subtree would touch). It replaces
	// the engine's former hardcoded nodes-per-span constant of 2.
	Bias float64
	// Preds is the predicate pipeline in execution order; Reordered says
	// the order differs from the written one.
	Preds     []*PredPlan
	Reordered bool
	// TwigRun, on the head step of a holistic run, is the number of
	// consecutive steps (including this one) the engine evaluates in one
	// synchronized twig sweep. Zero everywhere else; every member step of
	// the run has Strategy == StrategyTwig.
	TwigRun int
	// EstIn, EstCand and EstOut estimate the bindings entering the step,
	// the candidates after the node test, and the bindings surviving the
	// predicates.
	EstIn, EstCand, EstOut float64
	// cost is the modeled per-context row touches of executing the step.
	cost float64
}

// PredExprs returns the predicate expressions in planned execution order.
func (sp *StepPlan) PredExprs() []lpath.Expr {
	out := make([]lpath.Expr, len(sp.Preds))
	for i, pp := range sp.Preds {
		out[i] = pp.Expr
	}
	return out
}

// PredPlan is one predicate conjunct with its cost-model annotations.
type PredPlan struct {
	Expr lpath.Expr
	// Sel is the estimated selectivity (fraction of candidates kept) and
	// Cost the estimated per-candidate evaluation cost in row touches.
	Sel  float64
	Cost float64
	// Note is a short human-readable strategy annotation for EXPLAIN.
	Note string
	// Paths are the plans of the relative paths inside the expression, in
	// visit order (used by EXPLAIN to render nested steps).
	Paths []*PathPlan
}

// Semijoin is the reverse-driven strategy for one existential filter
// [path] or [path Op 'value']: materialize the set of rows that satisfy the
// filter once — seeding from the path's final step and walking the inverse
// axes back — then answer each candidate with a set-membership test.
type Semijoin struct {
	Expr lpath.Expr
	// Key is the canonical print of the filter expression. An unscoped
	// satisfier set is a pure function of this key against one store
	// generation — the filter path, operator and value fully determine which
	// rows satisfy it — so equal keys across queries in a batch share one
	// materialization (engine.EvalBatch).
	Key string
	// Head is the filter path with a trailing attribute step removed.
	Head *lpath.Path
	// Attr (without '@'), Op and Value carry the attribute comparison the
	// filter ends in; Attr == "" means a pure existence test.
	Attr, Op, Value string
	// Seed describes how the final step's matches are materialized.
	Seed SeedKind
	// SeedValue/SeedAttr are the posting-list drive when Seed == SeedValue.
	SeedValue, SeedAttr string
	// Estimates: seed rows, satisfier-set size, and the modeled costs of
	// the forward and reverse strategies (row touches).
	EstSeed, EstSet, EstForward, EstReverse float64
}

// Actuals carries runtime cardinalities collected by an instrumented
// execution, to be rendered next to the estimates.
type Actuals struct {
	// Steps maps a step plan to the number of bindings it produced.
	Steps map[*StepPlan]int
	// SemiSeed and SemiSet map a semijoin's expression to the materialized
	// seed and satisfier-set sizes.
	SemiSeed, SemiSet map[lpath.Expr]int
	// Matches is the final distinct-match count.
	Matches int
}

// Render formats the plan in the EXPLAIN format (docs/PLANNER.md). With a
// non-nil Actuals the actual cardinalities are printed next to the
// estimates.
func (p *Plan) Render(a *Actuals) string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", p.Text)
	fmt.Fprintf(&b, "plan:\n")
	p.renderPath(&b, p.Root, a, "  ", "")
	fmt.Fprintf(&b, "estimated matches: %s", card(p.EstMatches))
	if a != nil {
		fmt.Fprintf(&b, "   actual: %d", a.Matches)
	}
	b.WriteByte('\n')
	return b.String()
}

func (p *Plan) renderPath(b *strings.Builder, pp *PathPlan, a *Actuals, indent, numPrefix string) {
	for i, sp := range pp.Steps {
		num := fmt.Sprintf("%s%d", numPrefix, i+1)
		fmt.Fprintf(b, "%s%s. %s  [%s]", indent, num, stepText(sp.Step), accessText(sp))
		fmt.Fprintf(b, "  est=%s", card(sp.EstOut))
		if a != nil {
			if n, ok := a.Steps[sp]; ok {
				fmt.Fprintf(b, " actual=%d", n)
			}
		}
		b.WriteByte('\n')
		for _, pred := range sp.Preds {
			p.renderPred(b, pred, a, indent+"     ")
		}
	}
	if pp.Scoped != nil {
		fmt.Fprintf(b, "%s{ subtree scope\n", indent)
		p.renderPath(b, pp.Scoped, a, indent+"  ", numPrefix+"s")
		fmt.Fprintf(b, "%s}\n", indent)
	}
}

func (p *Plan) renderPred(b *strings.Builder, pred *PredPlan, a *Actuals, indent string) {
	fmt.Fprintf(b, "%swhere %s  sel=%.3g cost=%s", indent, exprText(pred.Expr), pred.Sel, card(pred.Cost))
	if pred.Note != "" {
		fmt.Fprintf(b, "  %s", pred.Note)
	}
	if sj := p.semis[pred.Expr]; sj != nil && sj.Key != "" {
		fmt.Fprintf(b, "  share=%s", shareHash(sj.Key))
	}
	if a != nil {
		if sj := p.semisUnder(pred.Expr); sj != nil {
			if n, ok := a.SemiSeed[sj.Expr]; ok {
				fmt.Fprintf(b, "  [seed=%d", n)
				if m, ok := a.SemiSet[sj.Expr]; ok {
					fmt.Fprintf(b, " set=%d", m)
				}
				b.WriteByte(']')
			}
		}
	}
	b.WriteByte('\n')
	for _, sub := range pred.Paths {
		p.renderPath(b, sub, a, indent+"  ", "p")
	}
}

// semisUnder finds the first semijoin registered on the expression or any
// of its boolean children (for the actual-cardinality annotation).
func (p *Plan) semisUnder(x lpath.Expr) *Semijoin {
	if sj := p.semis[x]; sj != nil {
		return sj
	}
	switch e := x.(type) {
	case *lpath.AndExpr:
		if sj := p.semisUnder(e.L); sj != nil {
			return sj
		}
		return p.semisUnder(e.R)
	case *lpath.OrExpr:
		if sj := p.semisUnder(e.L); sj != nil {
			return sj
		}
		return p.semisUnder(e.R)
	case *lpath.NotExpr:
		return p.semisUnder(e.X)
	}
	return nil
}

func accessText(sp *StepPlan) string {
	var s string
	if sp.Access == AccessValueIndex {
		s = fmt.Sprintf("value-index %s=%s ~%d postings exec=%s", sp.Attr, sp.Value, sp.Postings, sp.Strategy)
	} else {
		s = fmt.Sprintf("%s exec=%s", sp.Access, sp.Strategy)
	}
	if sp.Key != "" {
		s += " share=" + shareHash(sp.Key)
	}
	return s
}

// shareHash compacts a canonical structural key into the fixed-width token
// EXPLAIN prints after share=. Two steps (or filters) with the same token
// compute the same intermediate result against one store generation, so a
// batch evaluates it once.
func shareHash(key string) string {
	h := fnv.New32a()
	h.Write([]byte(key))
	return fmt.Sprintf("%08x", h.Sum32())
}

// stepCanon is the canonical print of one full location step — axis, test,
// edge alignment and predicates — used to build the cumulative structural
// keys. Unlike stepText it keeps the predicates: two steps share a frontier
// only when their filters agree too.
func stepCanon(s *lpath.Step) string {
	p := &lpath.Path{Steps: []lpath.Step{*s}}
	return p.String()
}

func stepText(s *lpath.Step) string {
	p := &lpath.Path{Steps: []lpath.Step{{
		Axis: s.Axis, Test: s.Test, LeftAlign: s.LeftAlign, RightAlign: s.RightAlign,
	}}}
	return p.String()
}

func exprText(x lpath.Expr) string {
	p := &lpath.Path{Steps: []lpath.Step{{Axis: lpath.AxisSelf, Test: "_", Preds: []lpath.Expr{x}}}}
	s := p.String()
	// Strip the ". _" scaffold, keeping the bracketed predicate.
	if i := strings.IndexByte(s, '['); i >= 0 {
		return s[i:]
	}
	return s
}

// card prints a cardinality estimate compactly: integers below 1e6, then
// scientific notation.
func card(v float64) string {
	if v < 0 {
		v = 0
	}
	if v < 10 {
		return fmt.Sprintf("%.3g", v)
	}
	if v < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2e", v)
}
