package planner

import (
	"math"
	"sort"

	"lpath/internal/lpath"
	"lpath/internal/relstore"
)

// Planner builds cost-based plans from a statistics snapshot. A Planner is
// immutable and safe for concurrent use; every shard of a sharded corpus
// shares one (the snapshot is corpus-global, see relstore.BuildShards).
type Planner struct {
	st       *relstore.Statistics
	noValue  bool
	noTwig   bool
	noBitmap bool

	elements   float64 // element rows
	totalSpan  float64 // summed root spans
	avgSpanAll float64 // mean element span across all names
}

// Option configures a Planner.
type Option func(*Planner)

// WithoutValueIndex makes the planner never choose the value-index access
// path or value-seeded semijoins; it mirrors the engine option of the same
// name so ablation runs plan what they execute.
func WithoutValueIndex() Option {
	return func(pl *Planner) { pl.noValue = true }
}

// WithoutTwig makes the planner never mark holistic twig runs, so every step
// keeps its per-step probe/merge strategy; it mirrors the engine option of
// the same name so the twig ablation plans exactly what the pre-twig engine
// would execute.
func WithoutTwig() Option {
	return func(pl *Planner) { pl.noTwig = true }
}

// WithoutBitmap makes the planner never mark bitmap scope entries, so scoped
// tails keep their per-step probe/merge/twig strategies; it mirrors the
// engine option of the same name so the bitmap ablation plans exactly what
// the pre-bitmap engine would execute.
func WithoutBitmap() Option {
	return func(pl *Planner) { pl.noBitmap = true }
}

// New creates a planner over the snapshot (nil is treated as an empty
// corpus).
func New(st *relstore.Statistics, opts ...Option) *Planner {
	if st == nil {
		st = &relstore.Statistics{}
	}
	pl := &Planner{st: st}
	for _, o := range opts {
		o(pl)
	}
	pl.elements = float64(st.Elements)
	pl.totalSpan = float64(st.TotalSpan)
	var acc float64
	for _, ns := range st.Names {
		acc += float64(ns.Count) * ns.Span
	}
	if st.Elements > 0 {
		pl.avgSpanAll = acc / pl.elements
	}
	if pl.avgSpanAll < 1 {
		pl.avgSpanAll = 1
	}
	return pl
}

// semijoinAdvantage is how much cheaper the modeled reverse strategy must be
// before the planner abandons the forward one — a margin against estimation
// error, since a wrongly chosen semijoin materializes a whole set up front.
const semijoinAdvantage = 0.8

// ectx is the planner's model of a step's input context: the name the
// context rows are known to carry ("" or "_" = unknown), their expected
// subtree span, and whether the context is the virtual super-root.
type ectx struct {
	test string
	span float64
	root bool
}

// Plan builds the plan for a compiled query. It never fails: steps it cannot
// improve (positional predicates, attribute axes) keep the engine's default
// strategy and are annotated as such.
func (pl *Planner) Plan(p *lpath.Path) *Plan {
	plan := &Plan{
		Text:      p.String(),
		Threshold: pl.st.NodesPerSpan(),
		steps:     make(map[*lpath.Step]*StepPlan),
		semis:     make(map[lpath.Expr]*Semijoin),
	}
	plan.Root = pl.planPath(p, ectx{root: true, span: pl.treeSpan()}, 1, plan, "", true)
	if !pl.noTwig {
		pl.markTwigRuns(plan.Root, true, false)
	}
	plan.EstMatches = plan.Root.EstOut
	return plan
}

func (pl *Planner) treeSpan() float64 {
	if s := pl.st.AvgTreeSpan(); s >= 1 {
		return s
	}
	return 1
}

// --- statistics lookups ---------------------------------------------------

func isWild(test string) bool { return test == "_" || test == "" }

// nameCount is the element cardinality of a node test.
func (pl *Planner) nameCount(test string) float64 {
	if isWild(test) {
		return pl.elements
	}
	return float64(pl.st.NameCount(test))
}

// share is the probability that an arbitrary element satisfies the test.
func (pl *Planner) share(test string) float64 {
	if pl.elements == 0 {
		return 0
	}
	return pl.nameCount(test) / pl.elements
}

// density is the expected number of test-satisfying rows per unit of leaf
// span — the quantity that converts a context's span into a descendant-scan
// cardinality, and the statistics-derived value-index crossover bias.
func (pl *Planner) density(test string) float64 {
	if pl.totalSpan <= 0 {
		return 0
	}
	return pl.nameCount(test) / pl.totalSpan
}

// spanOf is the expected subtree span of an element satisfying the test.
func (pl *Planner) spanOf(test string) float64 {
	if !isWild(test) {
		if ns, ok := pl.st.Names[test]; ok && ns.Span >= 1 {
			return ns.Span
		}
		return 1
	}
	return pl.avgSpanAll
}

// fanout is the expected child count of a context element.
func (pl *Planner) fanout(test string) float64 {
	if !isWild(test) {
		if ns, ok := pl.st.Names[test]; ok {
			if ns.Fanout < 1 {
				return 1
			}
			return ns.Fanout
		}
	}
	if f := pl.st.AvgFanout(); f >= 1 {
		return f
	}
	return 1
}

func (pl *Planner) avgDepth() float64 {
	if d := pl.st.AvgDepth; d >= 1 {
		return d
	}
	return 1
}

// selfProb is the probability that a context row of c satisfies the test.
func (pl *Planner) selfProb(c ectx, test string) float64 {
	if isWild(test) {
		return 1
	}
	if !isWild(c.test) {
		if c.test == test {
			return 1
		}
		return 0
	}
	return pl.share(test)
}

// --- per-step probe model -------------------------------------------------

// probe estimates, for one axis step from a context of shape c, the expected
// candidate rows per context (cands), the expected rows touched to produce
// them (cost), and the access path the engine will use.
func (pl *Planner) probe(c ectx, axis lpath.Axis, test string) (cands, cost float64, acc Access) {
	scanAcc := AccessNameScan
	if isWild(test) {
		scanAcc = AccessDocScan
	}
	if c.root {
		trees := float64(pl.st.Trees)
		switch axis {
		case lpath.AxisChild:
			return math.Min(trees, pl.nameCount(test)), math.Max(trees, 1), AccessChildIndex
		case lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
			n := pl.nameCount(test)
			return n, math.Max(n, 1), scanAcc
		default:
			// Other axes are empty from the virtual root.
			return 0, 1, scanAcc
		}
	}
	span := math.Max(c.span, 1)
	switch axis {
	case lpath.AxisSelf:
		return pl.selfProb(c, test), 1, AccessSelf

	case lpath.AxisChild:
		f := pl.fanout(c.test)
		return f * pl.share(test), f, AccessChildIndex

	case lpath.AxisParent:
		return pl.share(test), 1, AccessPidChain

	case lpath.AxisAncestor, lpath.AxisAncestorOrSelf:
		d := pl.avgDepth()
		n := d * pl.share(test)
		if axis == lpath.AxisAncestorOrSelf {
			n += pl.selfProb(c, test)
		}
		return n, d, AccessPidChain

	case lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
		n := pl.density(test) * span
		if axis == lpath.AxisDescendantOrSelf {
			n += pl.selfProb(c, test)
		}
		return n, math.Max(n, 1), scanAcc

	case lpath.AxisFollowing, lpath.AxisPreceding,
		lpath.AxisFollowingOrSelf, lpath.AxisPrecedingOrSelf:
		// On average half the tree's span lies on either side.
		n := pl.density(test) * pl.treeSpan() / 2
		return n, math.Max(n, 1), scanAcc

	case lpath.AxisImmediateFollowing, lpath.AxisImmediatePreceding:
		// left (right) pinned to one boundary value.
		n := pl.density(test)
		return n, n + 1, scanAcc

	case lpath.AxisFollowingSibling, lpath.AxisPrecedingSibling,
		lpath.AxisFollowingSiblingOrSelf, lpath.AxisPrecedingSiblingOrSelf:
		f := pl.fanout("_")
		return f / 2 * pl.share(test), f, AccessChildIndex

	case lpath.AxisImmediateFollowingSibling, lpath.AxisImmediatePrecedingSibling:
		return pl.share(test), pl.fanout("_"), AccessChildIndex
	}
	return 0, 1, scanAcc
}

// --- path and step planning -----------------------------------------------

// planPath plans one relative path. When keyed is set (the main path chain:
// the root path and its nested subtree scopes), prefix is the canonical
// structural key of everything evaluated before the path, and every step is
// stamped with its cumulative key — equal keys across queries denote equal
// planner inputs from the virtual root, hence equal frontiers a batch can
// share. Predicate paths plan unkeyed: their frontiers depend on the outer
// candidate, and their cross-query sharing runs through Semijoin.Key.
func (pl *Planner) planPath(p *lpath.Path, c ectx, nIn float64, plan *Plan, prefix string, keyed bool) *PathPlan {
	pp := &PathPlan{Path: p}
	cur, est := c, nIn
	acc := prefix
	for i := range p.Steps {
		step := &p.Steps[i]
		sp := pl.planStep(step, cur, est, plan)
		if keyed {
			acc += stepCanon(step)
			sp.Key = acc
		}
		pp.Steps = append(pp.Steps, sp)
		plan.steps[step] = sp
		pp.cost += est * sp.cost
		est = sp.EstOut
		cur = ectx{test: step.Test, span: pl.spanOf(step.Test)}
	}
	if keyed {
		pp.Key = acc
	}
	if p.Scoped != nil {
		pp.Scoped = pl.planPath(p.Scoped, cur, est, plan, acc+"{", keyed)
		pl.markBitmapEntry(pp.Scoped, cur, est)
		pp.cost += pp.Scoped.cost
		est = pp.Scoped.EstOut
	}
	pp.EstOut = est
	return pp
}

func (pl *Planner) planStep(step *lpath.Step, c ectx, nIn float64, plan *Plan) *StepPlan {
	sp := &StepPlan{Step: step, EstIn: nIn}
	if step.Axis == lpath.AxisAttribute {
		// Invalid in a navigation path; the engine reports the error.
		sp.Access = AccessSelf
		sp.EstCand, sp.EstOut, sp.cost = nIn, nIn, 1
		return sp
	}
	cands, probeCost, acc := pl.probe(c, step.Axis, step.Test)
	sp.Access = acc
	sp.EstCand = nIn * cands
	positional := step.HasPositional()

	// Value-index access: available when a direct @attr=value predicate has
	// a posting list smaller than the step's name range. Bias is the
	// statistics-derived crossover density the engine compares per binding.
	if !pl.noValue && !positional {
		if val, attr, ok := directEq(step); ok {
			postings := float64(pl.st.PostingCount(val))
			if postings < pl.nameCount(step.Test) {
				sp.Value, sp.Attr, sp.Postings = val, "@"+attr, pl.st.PostingCount(val)
				sp.Bias = pl.density(step.Test)
				switch {
				case c.root:
					sp.Access = AccessValueIndex
				case step.Axis == lpath.AxisDescendant || step.Axis == lpath.AxisDescendantOrSelf:
					if postings < sp.Bias*math.Max(c.span, 1) {
						sp.Access = AccessValueIndex
					}
				}
			}
		}
	}

	// Execution strategy: for the mergeable axes, compare the modeled cost
	// of per-binding probes — a binary search into the posting plus the scan
	// per context — against one set-at-a-time sweep: sorting the frontier,
	// then advancing a single posting cursor with galloping, which bounds the
	// sweep by min(posting touches, probe touches). The merge executor
	// requires the candidate set to be a pure function of (context, scope),
	// so positional predicates and edge alignment keep the probe, as does the
	// virtual root (its probe is already a single range handover) and the
	// value index (a different access path altogether).
	if MergeableAxis(step.Axis) && !positional && !step.LeftAlign && !step.RightAlign &&
		!c.root && sp.Access != AccessValueIndex {
		f := math.Max(nIn, 1)
		posting := math.Max(pl.nameCount(step.Test), 1)
		lgP := math.Log2(math.Max(posting, 2))
		lgF := math.Log2(f + 2)
		// Sorting the frontier touches rows sequentially; a probe's binary
		// search chases cold cache lines. Weight sort comparisons at a
		// quarter of a probe touch.
		sortCost := 0.25 * f * lgF
		var probeTotal, mergeTotal float64
		if step.Axis == lpath.AxisChild {
			// Child probes hit the {tid,pid} hash index (no log); the merge
			// variant walks the whole posting list and binary-searches the
			// frontier, so it only pays off for very dense frontiers.
			probeTotal = f * probeCost
			mergeTotal = sortCost + posting*lgF
		} else {
			// Per-binding overhead (buffer handling, probe setup) rides on
			// every probe; galloping bounds the sweep by whichever is
			// smaller, the posting walk or the per-context searches.
			const probeOverhead = 4
			probeTotal = f * (lgP + probeOverhead + probeCost)
			mergeTotal = sortCost + math.Min(posting, f*lgP) + f + probeCost
		}
		if mergeTotal < probeTotal {
			sp.Strategy = StrategyMerge
		}
	}

	// Predicates: estimate each conjunct, then order the commutative ones
	// cheapest-effective-first (rank = cost / (1 - selectivity)).
	pctx := ectx{test: step.Test, span: pl.spanOf(step.Test)}
	sel := 1.0
	for _, pred := range step.Preds {
		ppd := pl.planExpr(pred, pctx, math.Max(sp.EstCand, 1), plan)
		if sp.Access == AccessValueIndex && consumedByValue(pred, sp.Value, sp.Attr) {
			ppd.Cost = 0
			ppd.Note = "satisfied by value probe"
		}
		sp.Preds = append(sp.Preds, ppd)
		sel *= ppd.Sel
	}
	if !positional && len(sp.Preds) > 1 && !predsCanError(step.Preds) {
		ordered := make([]*PredPlan, len(sp.Preds))
		copy(ordered, sp.Preds)
		sort.SliceStable(ordered, func(i, j int) bool {
			return predRank(ordered[i]) < predRank(ordered[j])
		})
		for i := range ordered {
			if ordered[i] != sp.Preds[i] {
				sp.Reordered = true
			}
		}
		sp.Preds = ordered
	}

	sp.EstOut = sp.EstCand * sel
	if sp.Access == AccessValueIndex {
		probeCost = math.Max(float64(sp.Postings), 1)
	}
	predCost := 0.0
	pass := 1.0
	for _, ppd := range sp.Preds {
		predCost += pass * ppd.Cost
		pass *= ppd.Sel
	}
	sp.cost = probeCost + cands*predCost
	return sp
}

// MergeableAxis reports whether the axis has a set-at-a-time merge
// implementation in the engine (internal/engine/merge.go): the axes whose
// candidate ranges are sargable over one sorted posting ordering. Sibling
// axes probe per-parent child lists and the vertical reverse axes walk the
// pid chain, so they stay per-binding.
func MergeableAxis(axis lpath.Axis) bool {
	switch axis {
	case lpath.AxisChild,
		lpath.AxisDescendant, lpath.AxisDescendantOrSelf,
		lpath.AxisFollowing, lpath.AxisFollowingOrSelf,
		lpath.AxisPreceding, lpath.AxisPrecedingOrSelf,
		lpath.AxisImmediateFollowing, lpath.AxisImmediatePreceding:
		return true
	}
	return false
}

// TwigableAxis reports whether the axis can participate in a holistic twig
// run (internal/engine/twig.go): the forward axes whose supporting context
// row always arrives no later than the supported row in one document-order
// (tid, left, depth) sweep, so support can be decided at arrival time from a
// per-step stack, adjacency heap, or running minimum. The reverse axes would
// need supporters from the future, and the non-immediate sibling axes a
// per-parent map, so they stay with probe/merge.
func TwigableAxis(axis lpath.Axis) bool {
	switch axis {
	case lpath.AxisChild,
		lpath.AxisDescendant, lpath.AxisDescendantOrSelf,
		lpath.AxisFollowing, lpath.AxisFollowingOrSelf,
		lpath.AxisImmediateFollowing, lpath.AxisImmediateFollowingSibling:
		return true
	}
	return false
}

// TwigPushablePred reports whether the predicate can be pushed into the twig
// sweep as a constant-time per-arrival filter: a comparison on an attribute
// of the candidate node itself.
func TwigPushablePred(x lpath.Expr) bool {
	cmp, ok := x.(*lpath.CmpExpr)
	if !ok || (cmp.Op != "=" && cmp.Op != "!=") {
		return false
	}
	return cmp.Path.Scoped == nil && len(cmp.Path.Steps) == 1 &&
		cmp.Path.Steps[0].Axis == lpath.AxisAttribute
}

// TwigableStep reports whether a step can be a member of a holistic twig
// run. Positional predicates need the materialized per-context candidate
// list, and relative-path predicates need per-binding evaluation, so both
// exclude the step. Edge alignment compares against the enclosing scope,
// which is only constant across the sweep inside a subtree scope.
func TwigableStep(step *lpath.Step, inScope bool) bool {
	if !TwigableAxis(step.Axis) || step.HasPositional() {
		return false
	}
	if (step.LeftAlign || step.RightAlign) && !inScope {
		return false
	}
	for _, p := range step.Preds {
		if !TwigPushablePred(p) {
			return false
		}
	}
	return true
}

// BitmapEntryStep reports whether a subtree-scoped tail's first step has the
// shape the bitmap scope-entry kernel supports (internal/engine/bitmap.go):
// a downward axis whose scope membership resolves through the parent-pointer
// column, with no positional predicates — the kernel emits bindings in
// posting order, not per-scope document order.
func BitmapEntryStep(step *lpath.Step) bool {
	switch step.Axis {
	case lpath.AxisChild, lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
	default:
		return false
	}
	return !step.HasPositional()
}

// bitmapTouchCost weights one bitmap scope-entry touch — a posting row's
// parent-column load plus a bitset membership test — against one modeled
// probe row touch. Two sequential array loads against a hash probe or a
// binary search, so well under 1.
const bitmapTouchCost = 0.3

// markBitmapEntry decides whether the first step of a subtree-scoped tail
// runs as a bitmap scope entry: instead of expanding every scope into a
// binding, deduplicating, and probing the step per scope, the engine sets
// the scope rows in a dense bitset and walks the step's posting list once,
// resolving scope membership through the parent-pointer column. The modeled
// crossover compares per-scope probing (plus the frontier expansion and
// dedup the scoped branch pays) against one posting sweep whose per-row cost
// is the parent chain walked — length 1 for the child axis, a short prefix
// for edge-aligned descendants (alignment breaks the climb at the first
// non-aligned ancestor), half the average depth otherwise.
func (pl *Planner) markBitmapEntry(scoped *PathPlan, c ectx, scopes float64) {
	if pl.noBitmap || len(scoped.Steps) == 0 {
		return
	}
	sp := scoped.Steps[0]
	if sp.Access == AccessValueIndex || !BitmapEntryStep(sp.Step) {
		return
	}
	_, probeCost, _ := pl.probe(c, sp.Step.Axis, sp.Step.Test)
	f := math.Max(scopes, 1)
	posting := math.Max(pl.nameCount(sp.Step.Test), 1)
	// Per-scope probing pays the access path plus per-binding overhead
	// (buffer handling, hash or search setup) for every scope, and the
	// scoped branch additionally materializes and deduplicates the scope
	// frontier.
	const probeOverhead = 4
	stepwise := f*(probeCost+probeOverhead) + 2*f
	climb := 1.0
	if sp.Step.Axis != lpath.AxisChild {
		if sp.Step.LeftAlign || sp.Step.RightAlign {
			climb = 2
		} else {
			climb = math.Max(pl.avgDepth()/2, 1)
		}
	}
	bitmap := 0.2*f + bitmapTouchCost*posting*climb
	if bitmap < stepwise {
		sp.Strategy = StrategyBitmap
	}
}

// markTwigRuns is a post-pass over the main path chain (the root path and
// its nested subtree scopes — not predicate paths, which evaluate per
// binding): it finds maximal runs of twig-able steps and, where the modeled
// holistic sweep beats the chosen per-step strategies, marks every member
// StrategyTwig and stamps the run length on the head step.
func (pl *Planner) markTwigRuns(pp *PathPlan, root, inScope bool) {
	steps := pp.Steps
	for i := 0; i < len(steps); {
		if !pl.twigEligible(steps[i], root && i == 0, inScope) {
			i++
			continue
		}
		j := i + 1
		for j < len(steps) && pl.twigEligible(steps[j], false, inScope) {
			j++
		}
		if j-i >= 2 && pl.twigWins(steps[i:j], root && i == 0) {
			for _, sp := range steps[i:j] {
				sp.Strategy = StrategyTwig
			}
			steps[i].TwigRun = j - i
		}
		i = j
	}
	if pp.Scoped != nil {
		pl.markTwigRuns(pp.Scoped, false, true)
	}
}

// twigEligible is TwigableStep plus the planner-side exclusions: the value
// index is a different access path, and a run headed at the virtual root can
// only open with an axis the super-root supports.
func (pl *Planner) twigEligible(sp *StepPlan, fromRoot, inScope bool) bool {
	if sp.Access == AccessValueIndex || sp.Strategy == StrategyBitmap {
		return false
	}
	if !TwigableStep(sp.Step, inScope) {
		return false
	}
	if fromRoot {
		switch sp.Step.Axis {
		case lpath.AxisChild, lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
		default:
			return false
		}
	}
	return true
}

// twigTouchCost weights one twig-sweep posting touch (an arrival: a cursor
// advance, a stack/heap maintenance step and a support test) against one
// modeled probe row touch. Sequential columnar reads against pointer-chasing
// probes, so well under 1.
const twigTouchCost = 0.5

// twigWins compares the modeled cost of evaluating the run holistically —
// sort the input frontier once, then stream every step's posting window
// through constant-time per-arrival work — against the per-step strategies,
// which also pay to materialize and deduplicate every intermediate frontier.
func (pl *Planner) twigWins(run []*StepPlan, fromRoot bool) bool {
	stepwise := 0.0
	for _, sp := range run {
		stepwise += math.Max(sp.EstIn, 1) * sp.cost
	}
	for _, sp := range run[:len(run)-1] {
		stepwise += 2 * sp.EstOut
	}
	f := math.Max(run[0].EstIn, 1)
	twig := 0.25 * f * math.Log2(f+2)
	for _, sp := range run {
		p := math.Max(pl.nameCount(sp.Step.Test), 1)
		touch := p
		if !fromRoot {
			// A bounded frontier opens per-scope posting windows: pay the
			// seeks plus the expected candidates instead of the whole list.
			touch = math.Min(p, f*math.Log2(p+2)+sp.EstCand)
		}
		twig += twigTouchCost * touch
	}
	return twig < stepwise
}

// predRank orders predicates for execution: pay little, filter much. The
// 1-sel denominator sends near-certain predicates to the back regardless of
// cost, since they rarely shrink the pipeline.
func predRank(p *PredPlan) float64 {
	return p.Cost / math.Max(1-p.Sel, 1e-6)
}

// directEq finds the first direct @attr=value equality among the step's
// predicates with a posting list usable as an access path — the same
// first-match rule the engine's valueDriver applies, so plan and execution
// agree on which predicate drives.
func directEq(step *lpath.Step) (value, attr string, ok bool) {
	for _, pred := range step.Preds {
		cmp, isCmp := pred.(*lpath.CmpExpr)
		if !isCmp || !isDirectEq(cmp) {
			continue
		}
		return cmp.Value, cmp.Path.Steps[0].Test, true
	}
	return "", "", false
}

// isDirectEq mirrors the engine's test for a value-index-drivable predicate:
// an equality on an attribute of the context node itself.
func isDirectEq(c *lpath.CmpExpr) bool {
	if c.Op != "=" || c.Path.Scoped != nil || len(c.Path.Steps) != 1 {
		return false
	}
	return c.Path.Steps[0].Axis == lpath.AxisAttribute
}

// consumedByValue reports whether the predicate is the direct equality the
// value probe already enforced.
func consumedByValue(pred lpath.Expr, value, attrName string) bool {
	cmp, ok := pred.(*lpath.CmpExpr)
	return ok && isDirectEq(cmp) && cmp.Value == value && "@"+cmp.Path.Steps[0].Test == attrName
}
