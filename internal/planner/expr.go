package planner

import (
	"fmt"
	"math"

	"lpath/internal/lpath"
)

// Predicate planning: estimate each conjunct's selectivity and per-candidate
// cost, and — for existential path filters — decide between the forward
// strategy (evaluate the filter path from every candidate) and a reverse
// semijoin (materialize the filter's satisfier set once from its selective
// end, then test candidates by membership).

// selFloor keeps selectivities strictly positive so downstream estimates
// stay ordered instead of collapsing to zero.
const selFloor = 1e-4

func clampSel(s float64) float64 {
	if s < selFloor {
		return selFloor
	}
	if s > 1 {
		return 1
	}
	return s
}

// planExpr estimates one predicate expression evaluated against nCtx
// candidate rows of shape c.
func (pl *Planner) planExpr(x lpath.Expr, c ectx, nCtx float64, plan *Plan) *PredPlan {
	pp := &PredPlan{Expr: x}
	switch e := x.(type) {
	case *lpath.AndExpr:
		l := pl.planExpr(e.L, c, nCtx, plan)
		r := pl.planExpr(e.R, c, nCtx*l.Sel, plan)
		pp.Sel = clampSel(l.Sel * r.Sel)
		pp.Cost = l.Cost + l.Sel*r.Cost
		pp.Paths = append(append(pp.Paths, l.Paths...), r.Paths...)

	case *lpath.OrExpr:
		l := pl.planExpr(e.L, c, nCtx, plan)
		r := pl.planExpr(e.R, c, nCtx*(1-l.Sel), plan)
		pp.Sel = clampSel(1 - (1-l.Sel)*(1-r.Sel))
		pp.Cost = l.Cost + (1-l.Sel)*r.Cost
		pp.Paths = append(append(pp.Paths, l.Paths...), r.Paths...)

	case *lpath.NotExpr:
		inner := pl.planExpr(e.X, c, nCtx, plan)
		pp.Sel = clampSel(1 - inner.Sel)
		pp.Cost = inner.Cost
		pp.Paths = inner.Paths

	case *lpath.PositionExpr, *lpath.LastExpr:
		pp.Sel, pp.Cost = 0.5, 0

	case *lpath.CountExpr:
		hp := pl.planPath(e.Path, c, 1, plan, "", false)
		pp.Sel = 0.5
		pp.Cost = hp.cost
		pp.Paths = []*PathPlan{hp}

	case *lpath.StrFnExpr:
		head, _, err := lpath.SplitAttr(e.Path)
		if err != nil || head == nil {
			pp.Sel, pp.Cost = 0.1, 1
			break
		}
		hp := pl.planPath(head, c, 1, plan, "", false)
		pp.Sel = clampSel(math.Min(1, hp.EstOut) * 0.1)
		pp.Cost = hp.cost + 1
		pp.Paths = []*PathPlan{hp}

	case *lpath.PathExpr:
		return pl.planExistential(x, e.Path, "", "", c, nCtx, plan)

	case *lpath.CmpExpr:
		return pl.planExistential(x, e.Path, e.Op, e.Value, c, nCtx, plan)

	default:
		pp.Sel, pp.Cost = 0.5, 1
	}
	return pp
}

// attrShare is the probability that an element carries the attribute.
func (pl *Planner) attrShare(attr string) float64 {
	if pl.elements == 0 {
		return 0
	}
	return math.Min(1, float64(pl.st.AttrNames["@"+attr])/pl.elements)
}

// planExistential estimates an existence filter [path] or comparison
// [path op 'value'] and registers a semijoin when the reverse strategy is
// modeled cheaper.
func (pl *Planner) planExistential(x lpath.Expr, path *lpath.Path, op, value string, c ectx, nCtx float64, plan *Plan) *PredPlan {
	pp := &PredPlan{Expr: x}
	head, attr, err := lpath.SplitAttr(path)
	if err != nil {
		// Unreachable after Validate; keep neutral estimates.
		pp.Sel, pp.Cost = 0.5, 1
		return pp
	}
	if head == nil {
		// Attribute of the context node itself: one index lookup.
		pp.Cost = 1
		switch op {
		case "=":
			pp.Sel = clampSel(math.Min(pl.attrShare(attr),
				float64(pl.st.PostingCount(value))/math.Max(pl.nameCount(c.test), 1)))
			pp.Note = "attr probe"
		case "!=":
			pp.Sel = clampSel(pl.attrShare(attr) * 0.9)
		default:
			pp.Sel = clampSel(pl.attrShare(attr))
		}
		return pp
	}

	hp := pl.planPath(head, c, 1, plan, "", false)
	pp.Paths = []*PathPlan{hp}
	m := hp.EstOut
	lastTest := lastStepTest(head)
	switch {
	case attr == "":
		pp.Sel = clampSel(math.Min(1, m))
	case op == "=":
		pv := float64(pl.st.PostingCount(value)) / math.Max(pl.nameCount(lastTest), 1)
		pp.Sel = clampSel(m * math.Min(pv, 1))
	case op == "!=":
		pp.Sel = clampSel(m * pl.attrShare(attr) * 0.9)
	default:
		pp.Sel = clampSel(m * pl.attrShare(attr))
	}
	pp.Cost = hp.cost + 1

	if sj := pl.planSemijoin(x, head, hp, attr, op, value, c, nCtx, pp.Cost); sj != nil {
		plan.semis[x] = sj
		pp.Note = fmt.Sprintf("semijoin (seed=%s ~%s rows, set ~%s)",
			sj.Seed, card(sj.EstSeed), card(sj.EstSet))
		// Amortized per-candidate cost once the set exists.
		pp.Cost = sj.EstReverse / math.Max(nCtx, 1)
	}
	return pp
}

// planSemijoin models the reverse strategy for the filter and returns it
// when it is both sound (reversible axes, no alignment, no positional or
// error-capable predicates, no subtree scope inside the filter) and modeled
// sufficiently cheaper than evaluating the filter forward from each of the
// nCtx candidates.
func (pl *Planner) planSemijoin(x lpath.Expr, head *lpath.Path, hp *PathPlan, attr, op, value string, c ectx, nCtx, fwdCost float64) *Semijoin {
	if !reversible(head) {
		return nil
	}
	steps := head.Steps
	k := len(steps)
	last := &steps[k-1]

	sj := &Semijoin{Expr: x, Key: exprText(x), Head: head, Attr: attr, Op: op, Value: value}
	var seedCost float64
	switch {
	case op == "=" && attr != "" && !pl.noValue:
		sj.Seed = SeedValue
		sj.SeedValue, sj.SeedAttr = value, "@"+attr
		sj.EstSeed = float64(pl.st.PostingCount(value))
		seedCost = math.Max(sj.EstSeed, 1)
		sj.EstSeed *= predSel(hp.Steps[k-1])
	default:
		if v, a, ok := directEq(last); ok && !pl.noValue &&
			float64(pl.st.PostingCount(v)) < pl.nameCount(last.Test) {
			sj.Seed = SeedValue
			sj.SeedValue, sj.SeedAttr = v, "@"+a
			sj.EstSeed = float64(pl.st.PostingCount(v))
			seedCost = math.Max(sj.EstSeed, 1)
			// The posting list already enforces the driving equality; only
			// the remaining predicates thin the seed further.
			sj.EstSeed *= predSelExcluding(hp.Steps[k-1], v, "@"+a)
		} else {
			sj.Seed = SeedName
			sj.EstSeed = pl.nameCount(last.Test)
			seedCost = math.Max(sj.EstSeed, 1)
			sj.EstSeed *= predSel(hp.Steps[k-1])
		}
		if attr != "" {
			sj.EstSeed *= pl.attrShare(attr)
		}
	}

	// Walk the inverse axes from the seed level back to the head of the
	// filter path, capping each level at its name cardinality.
	r := sj.EstSeed
	revCost := seedCost
	for i := k - 1; i >= 1; i-- {
		inv, _ := lpath.InverseAxis(steps[i].Axis)
		cctx := ectx{test: steps[i].Test, span: pl.spanOf(steps[i].Test)}
		cands, cost, _ := pl.probe(cctx, inv, steps[i-1].Test)
		revCost += r * cost
		r = math.Min(pl.nameCount(steps[i-1].Test), r*cands) * predSel(hp.Steps[i-1])
	}
	inv0, _ := lpath.InverseAxis(steps[0].Axis)
	cands, cost, _ := pl.probe(ectx{test: steps[0].Test, span: pl.spanOf(steps[0].Test)}, inv0, "_")
	revCost += r * cost
	sj.EstSet = math.Min(pl.elements, r*cands)
	revCost += nCtx // one membership probe per candidate

	sj.EstForward = nCtx * fwdCost
	sj.EstReverse = revCost
	if revCost >= semijoinAdvantage*sj.EstForward {
		return nil
	}
	return sj
}

// lastStepTest is the node test of the path's final location step (its
// innermost scoped tail), or "_" when the path navigates by scope alone.
func lastStepTest(p *lpath.Path) string {
	test := "_"
	for q := p; q != nil; q = q.Scoped {
		if n := len(q.Steps); n > 0 {
			test = q.Steps[n-1].Test
		}
	}
	return test
}

// predSel is the combined selectivity of a planned step's predicates.
func predSel(sp *StepPlan) float64 {
	s := 1.0
	for _, p := range sp.Preds {
		s *= p.Sel
	}
	return s
}

// predSelExcluding is predSel with the consumed @attr=value equality left
// out (its selectivity is already paid by the posting-list seed).
func predSelExcluding(sp *StepPlan, value, attrName string) float64 {
	s := 1.0
	for _, p := range sp.Preds {
		if consumedByValue(p.Expr, value, attrName) {
			continue
		}
		s *= p.Sel
	}
	return s
}

// reversible reports whether the filter path can be evaluated backwards with
// identical semantics: every axis invertible, no attribute axis mid-path, no
// edge alignment (it binds to the outer context), no positional predicates
// (their counting context is forward-only), no subtree scope, and no
// predicate that could raise a runtime error (reversal changes which rows a
// predicate is evaluated on, and must not change whether an error surfaces).
func reversible(head *lpath.Path) bool {
	if head == nil || head.Scoped != nil || len(head.Steps) == 0 {
		return false
	}
	for i := range head.Steps {
		s := &head.Steps[i]
		if s.Axis == lpath.AxisAttribute || s.LeftAlign || s.RightAlign || s.HasPositional() {
			return false
		}
		if _, ok := lpath.InverseAxis(s.Axis); !ok {
			return false
		}
		if predsCanError(s.Preds) {
			return false
		}
	}
	return true
}

// --- runtime-error analysis -----------------------------------------------

// Validate rejects almost every malformed query before evaluation, but
// count()'s path is validated as a predicate path and may legally contain an
// attribute step that the join pipeline then rejects at runtime — and only
// if evaluation actually reaches it. Reordering predicates or reversing a
// filter changes which rows (and hence whether) such a predicate runs, so
// any predicate that could error pins the written order.

func predsCanError(preds []lpath.Expr) bool {
	for _, p := range preds {
		if exprCanError(p) {
			return true
		}
	}
	return false
}

func exprCanError(x lpath.Expr) bool {
	switch e := x.(type) {
	case *lpath.AndExpr:
		return exprCanError(e.L) || exprCanError(e.R)
	case *lpath.OrExpr:
		return exprCanError(e.L) || exprCanError(e.R)
	case *lpath.NotExpr:
		return exprCanError(e.X)
	case *lpath.PathExpr:
		return pathPredsCanError(e.Path)
	case *lpath.CmpExpr:
		return pathPredsCanError(e.Path)
	case *lpath.StrFnExpr:
		return pathPredsCanError(e.Path)
	case *lpath.CountExpr:
		return pathHasAttrStep(e.Path) || pathPredsCanError(e.Path)
	}
	return false
}

func pathHasAttrStep(p *lpath.Path) bool {
	for q := p; q != nil; q = q.Scoped {
		for i := range q.Steps {
			if q.Steps[i].Axis == lpath.AxisAttribute {
				return true
			}
		}
	}
	return false
}

func pathPredsCanError(p *lpath.Path) bool {
	for q := p; q != nil; q = q.Scoped {
		for i := range q.Steps {
			if predsCanError(q.Steps[i].Preds) {
				return true
			}
		}
	}
	return false
}
