package engine

import (
	"testing"
	"testing/quick"

	"lpath/internal/lpath"
	"lpath/internal/relstore"
	"lpath/internal/tree"
)

// Query-level semantic properties, checked on random corpora: laws the
// language definition implies, independent of any particular evaluation
// strategy.

func buildEngine(t *testing.T, c *tree.Corpus, opts ...Option) *Engine {
	t.Helper()
	e, err := New(relstore.Build(c, relstore.SchemeInterval), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func matchSet(t *testing.T, e *Engine, q string) map[Match]bool {
	t.Helper()
	ms, err := e.Eval(lpath.MustParse(q))
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	set := make(map[Match]bool, len(ms))
	for _, m := range ms {
		set[m] = true
	}
	return set
}

func subset(a, b map[Match]bool) bool {
	for m := range a {
		if !b[m] {
			return false
		}
	}
	return true
}

func equalSet(a, b map[Match]bool) bool {
	return len(a) == len(b) && subset(a, b)
}

// TestPropertyClosureLaws checks that each closure axis equals the union of
// iterated primitive steps, up to the corpus diameter.
func TestPropertyClosureLaws(t *testing.T) {
	f := func(seed int64) bool {
		e := buildEngine(t, randomCorpus(seed, 3))
		// following == immediate-following iterated: //X-->_ equals the
		// union of //X(->_)^k for k = 1..diameter. Verify both directions
		// via subset checks with a generous k.
		closure := matchSet(t, e, `//NP-->_`)
		iterated := map[Match]bool{}
		q := `//NP`
		for k := 0; k < 14; k++ {
			q += `->_`
			for m := range matchSet(t, e, q) {
				iterated[m] = true
			}
		}
		if !equalSet(closure, iterated) {
			t.Logf("seed %d: following ≠ ∪ immediate-following^k (%d vs %d)",
				seed, len(closure), len(iterated))
			return false
		}
		// descendant == child iterated.
		closure = matchSet(t, e, `//S//_`)
		iterated = map[Match]bool{}
		q = `//S`
		for k := 0; k < 10; k++ {
			q += `/_`
			for m := range matchSet(t, e, q) {
				iterated[m] = true
			}
		}
		if !equalSet(closure, iterated) {
			t.Logf("seed %d: descendant ≠ ∪ child^k", seed)
			return false
		}
		// following-sibling == immediate-following-sibling iterated.
		closure = matchSet(t, e, `//V==>_`)
		iterated = map[Match]bool{}
		q = `//V`
		for k := 0; k < 8; k++ {
			q += `=>_`
			for m := range matchSet(t, e, q) {
				iterated[m] = true
			}
		}
		if !equalSet(closure, iterated) {
			t.Logf("seed %d: following-sibling ≠ ∪ immediate^k", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyInverseAxes checks that reverse axes are the inverses of the
// forward ones: x ∈ //A->B  iff some b matched with a as its <- partner.
func TestPropertyInverseAxes(t *testing.T) {
	f := func(seed int64) bool {
		e := buildEngine(t, randomCorpus(seed, 3))
		pairs := []struct{ fwd, rev string }{
			{`//V->NP`, `//NP[<-V]`},
			{`//V-->NP`, `//NP[<--V]`},
			{`//V=>NP`, `//NP[<=V]`},
			{`//V==>NP`, `//NP[<==V]`},
			{`//V/NP`, `//NP[\V]`},
			{`//V//NP`, `//NP[\\V]`},
		}
		for _, p := range pairs {
			if !equalSet(matchSet(t, e, p.fwd), matchSet(t, e, p.rev)) {
				t.Logf("seed %d: %s ≠ %s", seed, p.fwd, p.rev)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyScopeMonotone checks that scoping and alignment only shrink
// result sets, and that scoped results are exactly the unscoped ones within
// the scope subtree.
func TestPropertyScopeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		e := buildEngine(t, randomCorpus(seed, 3))
		pairs := []struct{ narrow, wide string }{
			{`//VP{/V-->N}`, `//VP/V-->N`},
			{`//VP{//NP}`, `//VP//NP`},
			{`//VP{//NP$}`, `//VP{//NP}`},
			{`//VP{//^NP}`, `//VP{//NP}`},
			{`//S{//V->_}`, `//S//V->_`},
		}
		for _, p := range pairs {
			if !subset(matchSet(t, e, p.narrow), matchSet(t, e, p.wide)) {
				t.Logf("seed %d: %s ⊄ %s", seed, p.narrow, p.wide)
				return false
			}
		}
		// Scoping a vertical-only navigation is a no-op: descendants are
		// always inside the subtree.
		if !equalSet(matchSet(t, e, `//VP{//NP}`), matchSet(t, e, `//VP//NP`)) {
			t.Logf("seed %d: vertical scope not a no-op", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPredicateLaws checks boolean-algebra laws of predicates.
func TestPropertyPredicateLaws(t *testing.T) {
	f := func(seed int64) bool {
		e := buildEngine(t, randomCorpus(seed, 3))
		// Excluded middle: [p] ∪ [not(p)] = everything; intersection empty.
		withP := matchSet(t, e, `//NP[//Det]`)
		withoutP := matchSet(t, e, `//NP[not(//Det)]`)
		all := matchSet(t, e, `//NP`)
		if len(withP)+len(withoutP) != len(all) {
			t.Logf("seed %d: excluded middle violated", seed)
			return false
		}
		for m := range withP {
			if withoutP[m] || !all[m] {
				return false
			}
		}
		// De Morgan: not(a or b) == not(a) and not(b).
		lhs := matchSet(t, e, `//NP[not(//Det or //V)]`)
		rhs := matchSet(t, e, `//NP[not(//Det) and not(//V)]`)
		if !equalSet(lhs, rhs) {
			t.Logf("seed %d: De Morgan violated", seed)
			return false
		}
		// count ≥ 1 is existence.
		if !equalSet(matchSet(t, e, `//NP[count(//V)>=1]`), matchSet(t, e, `//NP[//V]`)) {
			t.Logf("seed %d: count>=1 ≠ existence", seed)
			return false
		}
		// position()=1 on child equals first-position shorthand.
		if !equalSet(matchSet(t, e, `//VP/_[position()=1]`), matchSet(t, e, `//VP/_[1]`)) {
			return false
		}
		// [last()] equals [position()=last()].
		if !equalSet(matchSet(t, e, `//VP/_[last()]`), matchSet(t, e, `//VP/_[position()=last()]`)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestAdjacencyDefinitionSingleV checks Definition 3.1 at the query level
// on the Figure 1 tree, where the verb is unique so the "no intervening z"
// condition can be written without node variables:
// //V->_  ==  //V-->_[not(<--_[<--V])].
//
// On corpora with several V nodes the rewrite is NOT equivalent — LPath has
// no variable binding, which is part of why immediate-following must be a
// primitive (Lemma 3.1); TestLemma31Inexpressibility demonstrates that.
func TestAdjacencyDefinitionSingleV(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	e := buildEngine(t, c)
	imm := matchSet(t, e, `//V->_`)
	viaDef := matchSet(t, e, `//V-->_[not(<--_[<--V])]`)
	if !equalSet(imm, viaDef) {
		t.Errorf("Definition 3.1 rewrite mismatch: %d vs %d", len(imm), len(viaDef))
	}
	if len(imm) != 3 { // NP, NP, Det per Section 1
		t.Errorf("//V->_ = %d matches, want 3", len(imm))
	}
}

// TestLemma31Inexpressibility exhibits a corpus on which the variable-free
// rewrite of immediate-following diverges from the primitive axis — the
// concrete phenomenon behind Lemma 3.1's inexpressibility result.
func TestLemma31Inexpressibility(t *testing.T) {
	c := tree.NewCorpus()
	// Two verbs: the rewrite's inner V can bind to the other verb.
	c.Add(tree.MustParseTree(`(S (V a) (N b) (V c) (N d))`))
	e := buildEngine(t, c)
	imm := matchSet(t, e, `//V->N`)
	rewrite := matchSet(t, e, `//V-->N[not(<--_[<--V])]`)
	if equalSet(imm, rewrite) {
		t.Error("expected the variable-free rewrite to diverge on a two-verb corpus")
	}
	if len(imm) != 2 { // N(b) after V(a), N(d) after V(c)
		t.Errorf("//V->N = %d, want 2", len(imm))
	}
}
