package engine

import (
	"sort"

	"lpath/internal/lpath"
	"lpath/internal/relstore"
)

// This file implements the index probes: for each axis, how candidate rows
// are retrieved from the clustered relation using sargable ranges, per the
// Table 2 label comparisons.

// axisCandidates returns the rows reachable from the binding's context along
// the step's axis that satisfy the node test. Scope, alignment and
// predicates are applied later.
func (e *Engine) axisCandidates(step *lpath.Step, b bind) []int32 {
	if b.row == noRow {
		return e.virtualRootCandidates(step)
	}
	ctx := e.s.Row(b.row)
	// Subtree scoping is a sargable conjunct (Section 2.2.2): clamp the
	// horizontal range probes to the scope's span instead of filtering
	// afterwards.
	clampL, clampR := int32(0), maxInt32
	if b.scope != noRow {
		sc := e.s.Row(b.scope)
		clampL, clampR = sc.Left, sc.Right
	}
	maxLeft := clampR - 1 // a scoped node's left is at most scope.right-1
	switch step.Axis {
	case lpath.AxisSelf:
		if step.Wildcard() || ctx.Name == step.Test {
			return []int32{b.row}
		}
		return nil

	case lpath.AxisChild:
		return e.filterName(e.s.Children(ctx.TID, ctx.ID), step)

	case lpath.AxisParent:
		if ctx.PID == 0 {
			return nil
		}
		pi, ok := e.s.ElementByID(ctx.TID, ctx.PID)
		if !ok {
			return nil
		}
		return e.filterName([]int32{pi}, step)

	case lpath.AxisAncestor, lpath.AxisAncestorOrSelf:
		// Walk the pid chain; depth is bounded by the tree height.
		var out []int32
		cur := b.row
		if step.Axis == lpath.AxisAncestor {
			r := e.s.Row(cur)
			if r.PID == 0 {
				return nil
			}
			next, ok := e.s.ElementByID(r.TID, r.PID)
			if !ok {
				return nil
			}
			cur = next
		}
		for {
			r := e.s.Row(cur)
			if step.Wildcard() || r.Name == step.Test {
				out = append(out, cur)
			}
			if r.PID == 0 {
				break
			}
			next, ok := e.s.ElementByID(r.TID, r.PID)
			if !ok {
				break
			}
			cur = next
		}
		return out

	case lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
		// left ∈ [c.left, c.right) over the (tid, left)-ordered scan,
		// filtered by right ≤ c.right and the depth comparison.
		orSelf := step.Axis == lpath.AxisDescendantOrSelf
		return e.scanLeftRange(step, ctx.TID, ctx.Left, ctx.Right-1, func(r *relstore.Row) bool {
			if r.Right > ctx.Right {
				return false
			}
			if orSelf {
				return r.Depth >= ctx.Depth
			}
			return r.Depth > ctx.Depth
		})

	case lpath.AxisImmediateFollowing:
		// left = c.right.
		return e.scanLeftRange(step, ctx.TID, ctx.Right, minInt32Of(ctx.Right, maxLeft), nil)

	case lpath.AxisFollowing:
		// left ≥ c.right (clamped to the scope's span).
		return e.scanLeftRange(step, ctx.TID, ctx.Right, maxLeft, nil)

	case lpath.AxisFollowingOrSelf:
		out := e.scanLeftRange(step, ctx.TID, ctx.Right, maxLeft, nil)
		if step.Wildcard() || ctx.Name == step.Test {
			out = append(out, b.row)
		}
		return out

	case lpath.AxisImmediatePreceding:
		// right = c.left.
		return e.scanRightRange(step, ctx.TID, ctx.Left, ctx.Left, nil)

	case lpath.AxisPreceding:
		// right ≤ c.left; a scoped node's right is at least scope.left+1.
		return e.scanRightRange(step, ctx.TID, clampL+1, ctx.Left, nil)

	case lpath.AxisPrecedingOrSelf:
		out := e.scanRightRange(step, ctx.TID, clampL+1, ctx.Left, nil)
		if step.Wildcard() || ctx.Name == step.Test {
			out = append(out, b.row)
		}
		return out

	case lpath.AxisImmediateFollowingSibling:
		return e.siblingCandidates(step, ctx, func(r *relstore.Row) bool { return r.Left == ctx.Right })

	case lpath.AxisFollowingSibling:
		return e.siblingCandidates(step, ctx, func(r *relstore.Row) bool { return r.Left >= ctx.Right })

	case lpath.AxisFollowingSiblingOrSelf:
		out := e.siblingCandidates(step, ctx, func(r *relstore.Row) bool { return r.Left >= ctx.Right })
		if step.Wildcard() || ctx.Name == step.Test {
			out = append(out, b.row)
		}
		return out

	case lpath.AxisImmediatePrecedingSibling:
		return e.siblingCandidates(step, ctx, func(r *relstore.Row) bool { return r.Right == ctx.Left })

	case lpath.AxisPrecedingSibling:
		return e.siblingCandidates(step, ctx, func(r *relstore.Row) bool { return r.Right <= ctx.Left })

	case lpath.AxisPrecedingSiblingOrSelf:
		out := e.siblingCandidates(step, ctx, func(r *relstore.Row) bool { return r.Right <= ctx.Left })
		if step.Wildcard() || ctx.Name == step.Test {
			out = append(out, b.row)
		}
		return out
	}
	return nil
}

const maxInt32 = int32(1<<31 - 1)

func minInt32Of(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// virtualRootCandidates handles the first step of a query, whose context is
// the virtual super-root above every tree root.
func (e *Engine) virtualRootCandidates(step *lpath.Step) []int32 {
	switch step.Axis {
	case lpath.AxisChild:
		return e.filterName(e.s.Roots(), step)
	case lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
		if step.Wildcard() {
			return e.s.ElementsByLeft()
		}
		lo, hi, ok := e.s.NameRange(step.Test)
		if !ok {
			return nil
		}
		out := make([]int32, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	default:
		return nil
	}
}

// filterName filters a row-index list by the step's node test.
func (e *Engine) filterName(rows []int32, step *lpath.Step) []int32 {
	if step.Wildcard() {
		return rows
	}
	out := rows[:0:0]
	for _, ri := range rows {
		if e.s.Row(ri).Name == step.Test {
			out = append(out, ri)
		}
	}
	return out
}

// scanLeftRange returns rows with the step's name whose left ∈ [lo, hi]
// within tid, additionally filtered by keep (may be nil). It binary-searches
// the clustered name range (or the whole-relation document order for
// wildcards), so the probe costs O(log n + results).
func (e *Engine) scanLeftRange(step *lpath.Step, tid, lo, hi int32, keep func(*relstore.Row) bool) []int32 {
	if hi < lo {
		return nil
	}
	if step.Wildcard() {
		idxs := e.s.ElementsByLeft()
		start := sort.Search(len(idxs), func(i int) bool {
			r := e.s.Row(idxs[i])
			return r.TID > tid || (r.TID == tid && r.Left >= lo)
		})
		var out []int32
		for i := start; i < len(idxs); i++ {
			r := e.s.Row(idxs[i])
			if r.TID != tid || r.Left > hi {
				break
			}
			if keep == nil || keep(r) {
				out = append(out, idxs[i])
			}
		}
		return out
	}
	rlo, rhi, ok := e.s.NameRange(step.Test)
	if !ok {
		return nil
	}
	n := int(rhi - rlo)
	start := sort.Search(n, func(i int) bool {
		r := e.s.Row(rlo + int32(i))
		return r.TID > tid || (r.TID == tid && r.Left >= lo)
	})
	var out []int32
	for i := start; i < n; i++ {
		ri := rlo + int32(i)
		r := e.s.Row(ri)
		if r.TID != tid || r.Left > hi {
			break
		}
		if keep == nil || keep(r) {
			out = append(out, ri)
		}
	}
	return out
}

// scanRightRange returns rows with the step's name whose right ∈ [lo, hi]
// within tid, using the (tid, right)-ordered secondary ordering.
func (e *Engine) scanRightRange(step *lpath.Step, tid, lo, hi int32, keep func(*relstore.Row) bool) []int32 {
	if hi < lo {
		return nil
	}
	var idxs []int32
	if step.Wildcard() {
		idxs = e.s.ElementsByRight()
	} else {
		idxs = e.s.NameByRight(step.Test)
	}
	start := sort.Search(len(idxs), func(i int) bool {
		r := e.s.Row(idxs[i])
		return r.TID > tid || (r.TID == tid && r.Right >= lo)
	})
	var out []int32
	for i := start; i < len(idxs); i++ {
		r := e.s.Row(idxs[i])
		if r.TID != tid || r.Right > hi {
			break
		}
		if keep == nil || keep(r) {
			out = append(out, idxs[i])
		}
	}
	return out
}

// siblingCandidates probes the {tid, pid} index and filters by the given
// span relation and the node test.
func (e *Engine) siblingCandidates(step *lpath.Step, ctx *relstore.Row, rel func(*relstore.Row) bool) []int32 {
	sibs := e.s.Children(ctx.TID, ctx.PID)
	var out []int32
	for _, si := range sibs {
		if si == noRow {
			continue
		}
		r := e.s.Row(si)
		if r.ID == ctx.ID {
			continue
		}
		if !rel(r) {
			continue
		}
		if !step.Wildcard() && r.Name != step.Test {
			continue
		}
		out = append(out, si)
	}
	return out
}

// --- predicate evaluation ------------------------------------------------

func (e *Engine) evalExpr(x lpath.Expr, b bind, pos, size int, ctx *evalCtx) (bool, error) {
	switch ex := x.(type) {
	case *lpath.AndExpr:
		ok, err := e.evalExpr(ex.L, b, pos, size, ctx)
		if err != nil || !ok {
			return false, err
		}
		return e.evalExpr(ex.R, b, pos, size, ctx)
	case *lpath.OrExpr:
		ok, err := e.evalExpr(ex.L, b, pos, size, ctx)
		if err != nil || ok {
			return ok, err
		}
		return e.evalExpr(ex.R, b, pos, size, ctx)
	case *lpath.NotExpr:
		ok, err := e.evalExpr(ex.X, b, pos, size, ctx)
		return !ok, err
	case *lpath.PathExpr:
		if sj := ctx.semijoin(x); sj != nil && b.row != noRow {
			return e.semiHolds(sj, x, b, ctx)
		}
		return e.evalExistential(ex.Path, b, "", "", ctx)
	case *lpath.CmpExpr:
		if sj := ctx.semijoin(x); sj != nil && b.row != noRow {
			return e.semiHolds(sj, x, b, ctx)
		}
		return e.evalExistential(ex.Path, b, ex.Op, ex.Value, ctx)
	case *lpath.PositionExpr:
		rhs := ex.Value
		if ex.Last {
			rhs = size
		}
		return lpath.CompareInts(pos, ex.Op, rhs), nil
	case *lpath.LastExpr:
		return pos == size, nil
	case *lpath.CountExpr:
		matches, err := e.evalPath(ex.Path, []bind{b}, ctx)
		if err != nil {
			return false, err
		}
		return lpath.CompareInts(len(matches), ex.Op, ex.Value), nil
	case *lpath.StrFnExpr:
		return e.evalStrFn(ex, b, ctx)
	}
	return false, nil
}

// evalStrFn evaluates contains/starts-with/ends-with over the attribute
// values reached by the path.
func (e *Engine) evalStrFn(x *lpath.StrFnExpr, b bind, ctx *evalCtx) (bool, error) {
	head, attr, err := lpath.SplitAttr(x.Path)
	if err != nil {
		return false, err
	}
	if attr == "" {
		return false, lpath.ErrCmpNeedsAttr
	}
	var elems []bind
	if head == nil {
		elems = []bind{b}
	} else {
		elems, err = e.evalPath(head, []bind{b}, ctx)
		if err != nil {
			return false, err
		}
	}
	attrName := "@" + attr
	for _, eb := range elems {
		if eb.row == noRow {
			continue
		}
		r := e.s.Row(eb.row)
		if v, ok := e.s.AttrValue(r.TID, r.ID, attrName); ok && lpath.StrFn(x.Fn, v, x.Arg) {
			return true, nil
		}
	}
	return false, nil
}

// evalExistential implements existence predicates and attribute
// comparisons: it evaluates the path from the binding and checks whether any
// reached element (and, for comparisons, its attribute value) satisfies the
// test.
func (e *Engine) evalExistential(p *lpath.Path, b bind, op, value string, ctx *evalCtx) (bool, error) {
	head, attr, err := lpath.SplitAttr(p)
	if err != nil {
		return false, err
	}
	if op != "" && attr == "" {
		return false, lpath.ErrCmpNeedsAttr
	}
	var elems []bind
	if head == nil {
		elems = []bind{b}
	} else {
		elems, err = e.evalPath(head, []bind{b}, ctx)
		if err != nil {
			return false, err
		}
	}
	if attr == "" {
		return len(elems) > 0, nil
	}
	attrName := "@" + attr
	for _, eb := range elems {
		if eb.row == noRow {
			continue
		}
		r := e.s.Row(eb.row)
		v, ok := e.s.AttrValue(r.TID, r.ID, attrName)
		if !ok {
			continue
		}
		switch op {
		case "":
			return true, nil
		case "=":
			if v == value {
				return true, nil
			}
		case "!=":
			if v != value {
				return true, nil
			}
		}
	}
	return false, nil
}
