package engine

import (
	"sort"

	"lpath/internal/lpath"
)

// This file implements the index probes: for each axis, how candidate rows
// are retrieved from the clustered relation using sargable ranges, per the
// Table 2 label comparisons.
//
// The probes are columnar and allocation-free: comparisons read the store's
// parallel label arrays (relstore.Cols) instead of materializing Row values,
// and every result list is either borrowed straight from a store index
// (returned with borrowed=true, never to be mutated) or appended into a
// buffer drawn from the evaluation's arena (see arena.go). Because the
// relation is clustered by name, the node test is a row-index range check —
// ri ∈ [nlo, nhi) — not a string comparison.

// axisCandidates returns the rows reachable from the binding's context along
// the step's axis that satisfy the node test. Scope, alignment and
// predicates are applied later. borrowed=true means the slice aliases a
// store index: the caller must not mutate it and must not release it.
func (e *Engine) axisCandidates(step *lpath.Step, b bind, ctx *evalCtx) (cands []int32, borrowed bool) {
	if b.row == noRow {
		return e.virtualRootCandidates(step, ctx)
	}
	wild := step.Wildcard()
	var nlo, nhi int32
	if !wild {
		var ok bool
		nlo, nhi, ok = e.s.NameRange(step.Test)
		if !ok {
			return nil, false
		}
	}
	cols := e.s.Cols()
	row := b.row
	ctxTID, ctxLeft, ctxRight := cols.TID[row], cols.Left[row], cols.Right[row]
	ctxDepth, ctxID, ctxPID := cols.Depth[row], cols.ID[row], cols.PID[row]
	// Subtree scoping is a sargable conjunct (Section 2.2.2): clamp the
	// horizontal range probes to the scope's span instead of filtering
	// afterwards.
	clampL, clampR := int32(0), maxInt32
	if b.scope != noRow {
		clampL, clampR = cols.Left[b.scope], cols.Right[b.scope]
	}
	maxLeft := clampR - 1 // a scoped node's left is at most scope.right-1
	switch step.Axis {
	case lpath.AxisSelf:
		if wild || (row >= nlo && row < nhi) {
			return append(ctx.ar.getInts(), row), false
		}
		return nil, false

	case lpath.AxisChild:
		kids := e.s.Children(ctxTID, ctxID)
		if wild {
			return kids, true
		}
		out := ctx.ar.getInts()
		for _, si := range kids {
			if si >= nlo && si < nhi {
				out = append(out, si)
			}
		}
		return out, false

	case lpath.AxisParent:
		if ctxPID == 0 {
			return nil, false
		}
		pi, ok := e.s.ElementByID(ctxTID, ctxPID)
		if !ok || !(wild || (pi >= nlo && pi < nhi)) {
			return nil, false
		}
		return append(ctx.ar.getInts(), pi), false

	case lpath.AxisAncestor, lpath.AxisAncestorOrSelf:
		// Walk the pid chain; depth is bounded by the tree height.
		out := ctx.ar.getInts()
		cur := row
		if step.Axis == lpath.AxisAncestor {
			if ctxPID == 0 {
				return out, false
			}
			next, ok := e.s.ElementByID(ctxTID, ctxPID)
			if !ok {
				return out, false
			}
			cur = next
		}
		for {
			if wild || (cur >= nlo && cur < nhi) {
				out = append(out, cur)
			}
			pid := cols.PID[cur]
			if pid == 0 {
				break
			}
			next, ok := e.s.ElementByID(ctxTID, pid)
			if !ok {
				break
			}
			cur = next
		}
		return out, false

	case lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
		// left ∈ [c.left, c.right) over the (tid, left)-ordered scan,
		// filtered by right ≤ c.right and the depth comparison.
		minDepth := ctxDepth + 1
		if step.Axis == lpath.AxisDescendantOrSelf {
			minDepth = ctxDepth
		}
		return e.scanLeftRange(step, ctxTID, ctxLeft, ctxRight-1, ctxRight, minDepth, ctx.ar.getInts()), false

	case lpath.AxisImmediateFollowing:
		// left = c.right.
		return e.scanLeftRange(step, ctxTID, ctxRight, minInt32Of(ctxRight, maxLeft), maxInt32, 0, ctx.ar.getInts()), false

	case lpath.AxisFollowing:
		// left ≥ c.right (clamped to the scope's span).
		return e.scanLeftRange(step, ctxTID, ctxRight, maxLeft, maxInt32, 0, ctx.ar.getInts()), false

	case lpath.AxisFollowingOrSelf:
		out := e.scanLeftRange(step, ctxTID, ctxRight, maxLeft, maxInt32, 0, ctx.ar.getInts())
		if wild || (row >= nlo && row < nhi) {
			// Self precedes every following node in document order; insert
			// it in front so the step's output stays (tid, left)-sorted.
			out = append(out, 0)
			copy(out[1:], out)
			out[0] = row
		}
		return out, false

	case lpath.AxisImmediatePreceding:
		// right = c.left.
		return e.scanRightRange(step, ctxTID, ctxLeft, ctxLeft, ctx.ar.getInts()), false

	case lpath.AxisPreceding:
		// right ≤ c.left; a scoped node's right is at least scope.left+1.
		return e.scanRightRange(step, ctxTID, clampL+1, ctxLeft, ctx.ar.getInts()), false

	case lpath.AxisPrecedingOrSelf:
		out := e.scanRightRange(step, ctxTID, clampL+1, ctxLeft, ctx.ar.getInts())
		if wild || (row >= nlo && row < nhi) {
			out = append(out, row) // self follows every preceding node
		}
		return out, false

	case lpath.AxisFollowingSibling, lpath.AxisImmediateFollowingSibling, lpath.AxisFollowingSiblingOrSelf,
		lpath.AxisPrecedingSibling, lpath.AxisImmediatePrecedingSibling, lpath.AxisPrecedingSiblingOrSelf:
		return e.siblingCandidates(step.Axis, row, ctxTID, ctxPID, ctxLeft, ctxRight, wild, nlo, nhi, ctx), false
	}
	return nil, false
}

const maxInt32 = int32(1<<31 - 1)

func minInt32Of(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// virtualRootCandidates handles the first step of a query, whose context is
// the virtual super-root above every tree root. The descendant probes hand
// back store indexes zero-copy: the wildcard case is the document-order
// index, and a named range is the matching slice of the identity row
// sequence — the clustered layout makes "all rows named X" a contiguous
// interval, so nothing is materialized. Every list is tid-ascending, so a
// streaming tid window narrows it to a subslice by binary search — the entry
// point that makes a windowed evaluation's cost proportional to its window.
func (e *Engine) virtualRootCandidates(step *lpath.Step, ctx *evalCtx) ([]int32, bool) {
	switch step.Axis {
	case lpath.AxisChild:
		roots := e.narrowToWindow(e.s.Roots(), ctx)
		if step.Wildcard() {
			return roots, true
		}
		nlo, nhi, ok := e.s.NameRange(step.Test)
		if !ok {
			return nil, false
		}
		out := ctx.ar.getInts()
		for _, ri := range roots {
			if ri >= nlo && ri < nhi {
				out = append(out, ri)
			}
		}
		return out, false
	case lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
		if step.Wildcard() {
			return e.narrowToWindow(e.s.ElementsByLeft(), ctx), true
		}
		nlo, nhi, ok := e.s.NameRange(step.Test)
		if !ok {
			return nil, false
		}
		return e.narrowToWindow(e.s.RowSeq()[nlo:nhi], ctx), true
	default:
		return nil, false
	}
}

// scanLeftRange appends to dst the rows with the step's name whose left ∈
// [lo, hi] within tid, additionally filtered by right ≤ maxRight and
// depth ≥ minDepth (pass maxInt32 / 0 to disable). It binary-searches the
// clustered name range (or the whole-relation document order for wildcards),
// so the probe costs O(log n + results).
func (e *Engine) scanLeftRange(step *lpath.Step, tid, lo, hi, maxRight, minDepth int32, dst []int32) []int32 {
	if hi < lo {
		return dst
	}
	cols := e.s.Cols()
	tids, lefts, rights, depths := cols.TID, cols.Left, cols.Right, cols.Depth
	if step.Wildcard() {
		idxs := e.s.ElementsByLeft()
		start := sort.Search(len(idxs), func(i int) bool {
			ri := idxs[i]
			return tids[ri] > tid || (tids[ri] == tid && lefts[ri] >= lo)
		})
		for i := start; i < len(idxs); i++ {
			ri := idxs[i]
			if tids[ri] != tid || lefts[ri] > hi {
				break
			}
			if rights[ri] <= maxRight && depths[ri] >= minDepth {
				dst = append(dst, ri)
			}
		}
		return dst
	}
	rlo, rhi, ok := e.s.NameRange(step.Test)
	if !ok {
		return dst
	}
	start := sort.Search(int(rhi-rlo), func(i int) bool {
		ri := rlo + int32(i)
		return tids[ri] > tid || (tids[ri] == tid && lefts[ri] >= lo)
	})
	for ri := rlo + int32(start); ri < rhi; ri++ {
		if tids[ri] != tid || lefts[ri] > hi {
			break
		}
		if rights[ri] <= maxRight && depths[ri] >= minDepth {
			dst = append(dst, ri)
		}
	}
	return dst
}

// scanRightRange appends to dst the rows with the step's name whose right ∈
// [lo, hi] within tid, using the (tid, right)-ordered secondary ordering.
func (e *Engine) scanRightRange(step *lpath.Step, tid, lo, hi int32, dst []int32) []int32 {
	if hi < lo {
		return dst
	}
	var idxs []int32
	if step.Wildcard() {
		idxs = e.s.ElementsByRight()
	} else {
		idxs = e.s.NameByRight(step.Test)
	}
	cols := e.s.Cols()
	tids, rights := cols.TID, cols.Right
	start := sort.Search(len(idxs), func(i int) bool {
		ri := idxs[i]
		return tids[ri] > tid || (tids[ri] == tid && rights[ri] >= lo)
	})
	for i := start; i < len(idxs); i++ {
		ri := idxs[i]
		if tids[ri] != tid || rights[ri] > hi {
			break
		}
		dst = append(dst, ri)
	}
	return dst
}

// siblingCandidates probes the {tid, pid} child list. Siblings' spans are
// disjoint and the list is left-sorted, so both left and right increase
// monotonically along it — the span boundary of each sibling axis is found
// by binary search and only the matching run is visited, instead of scanning
// every sibling and testing the Table 2 relation one by one.
func (e *Engine) siblingCandidates(axis lpath.Axis, row, tid, pid, left, right int32, wild bool, nlo, nhi int32, ctx *evalCtx) []int32 {
	sibs := e.s.Children(tid, pid)
	out := ctx.ar.getInts()
	cols := e.s.Cols()
	lefts, rights := cols.Left, cols.Right
	switch axis {
	case lpath.AxisFollowingSibling, lpath.AxisImmediateFollowingSibling, lpath.AxisFollowingSiblingOrSelf:
		if axis == lpath.AxisFollowingSiblingOrSelf && (wild || (row >= nlo && row < nhi)) {
			out = append(out, row) // self precedes its following siblings
		}
		// First sibling with left ≥ c.right; the run is immediate when it
		// must equal c.right, otherwise the whole tail qualifies.
		start := sort.Search(len(sibs), func(i int) bool { return lefts[sibs[i]] >= right })
		for i := start; i < len(sibs); i++ {
			si := sibs[i]
			if axis == lpath.AxisImmediateFollowingSibling && lefts[si] > right {
				break
			}
			if si == row {
				continue
			}
			if wild || (si >= nlo && si < nhi) {
				out = append(out, si)
			}
		}
	default:
		// Siblings left of the context (left < c.left) all have
		// right ≤ c.left — exactly the preceding-sibling set; the immediate
		// variant narrows to the run with right = c.left.
		end := sort.Search(len(sibs), func(i int) bool { return lefts[sibs[i]] >= left })
		i := 0
		if axis == lpath.AxisImmediatePrecedingSibling {
			i = sort.Search(end, func(i int) bool { return rights[sibs[i]] >= left })
		}
		for ; i < end; i++ {
			si := sibs[i]
			if si == row || rights[si] > left {
				continue
			}
			if wild || (si >= nlo && si < nhi) {
				out = append(out, si)
			}
		}
		if axis == lpath.AxisPrecedingSiblingOrSelf && (wild || (row >= nlo && row < nhi)) {
			out = append(out, row) // self follows its preceding siblings
		}
	}
	return out
}

// --- predicate evaluation ------------------------------------------------

func (e *Engine) evalExpr(x lpath.Expr, b bind, pos, size int, ctx *evalCtx) (bool, error) {
	switch ex := x.(type) {
	case *lpath.AndExpr:
		ok, err := e.evalExpr(ex.L, b, pos, size, ctx)
		if err != nil || !ok {
			return false, err
		}
		return e.evalExpr(ex.R, b, pos, size, ctx)
	case *lpath.OrExpr:
		ok, err := e.evalExpr(ex.L, b, pos, size, ctx)
		if err != nil || ok {
			return ok, err
		}
		return e.evalExpr(ex.R, b, pos, size, ctx)
	case *lpath.NotExpr:
		ok, err := e.evalExpr(ex.X, b, pos, size, ctx)
		return !ok, err
	case *lpath.PathExpr:
		if sj := ctx.semijoin(x); sj != nil && b.row != noRow {
			return e.semiHolds(sj, x, b, ctx)
		}
		return e.evalExistential(ex.Path, b, "", "", ctx)
	case *lpath.CmpExpr:
		if sj := ctx.semijoin(x); sj != nil && b.row != noRow {
			return e.semiHolds(sj, x, b, ctx)
		}
		return e.evalExistential(ex.Path, b, ex.Op, ex.Value, ctx)
	case *lpath.PositionExpr:
		rhs := ex.Value
		if ex.Last {
			rhs = size
		}
		return lpath.CompareInts(pos, ex.Op, rhs), nil
	case *lpath.LastExpr:
		return pos == size, nil
	case *lpath.CountExpr:
		matches, err := e.evalSubPath(ex.Path, b, ctx)
		if err != nil {
			return false, err
		}
		n := len(matches)
		ctx.ar.putBinds(matches)
		return lpath.CompareInts(n, ex.Op, ex.Value), nil
	case *lpath.StrFnExpr:
		return e.evalStrFn(ex, b, ctx)
	}
	return false, nil
}

// evalSubPath evaluates a nested path from one binding; the returned slice is
// arena-owned and must be released by the caller. The one-element start
// frontier comes from the arena too — a stack array would be forced to the
// heap on every call, because evalPath's input may alias buffers that reach
// the arena's free lists.
func (e *Engine) evalSubPath(p *lpath.Path, b bind, ctx *evalCtx) ([]bind, error) {
	start := append(ctx.ar.getBinds(), b)
	out, err := e.evalPath(p, start, ctx)
	ctx.ar.putBinds(start)
	return out, err
}

// evalStrFn evaluates contains/starts-with/ends-with over the attribute
// values reached by the path.
func (e *Engine) evalStrFn(x *lpath.StrFnExpr, b bind, ctx *evalCtx) (bool, error) {
	head, attr, err := lpath.SplitAttr(x.Path)
	if err != nil {
		return false, err
	}
	if attr == "" {
		return false, lpath.ErrCmpNeedsAttr
	}
	if head == nil {
		// Self only: keep the one-element frontier on the stack. It must not
		// share a code path with the arena-owned slice below, or escape
		// analysis would heap-allocate it.
		self := [1]bind{b}
		return e.strFnHit(self[:], x, attr), nil
	}
	elems, err := e.evalSubPath(head, b, ctx)
	if err != nil {
		return false, err
	}
	hit := e.strFnHit(elems, x, attr)
	ctx.ar.putBinds(elems)
	return hit, nil
}

func (e *Engine) strFnHit(elems []bind, x *lpath.StrFnExpr, attr string) bool {
	for _, eb := range elems {
		if eb.row == noRow {
			continue
		}
		r := e.s.Row(eb.row)
		if v, ok := e.s.AttrValueBare(r.TID, r.ID, attr); ok && lpath.StrFn(x.Fn, v, x.Arg) {
			return true
		}
	}
	return false
}

// evalExistential implements existence predicates and attribute
// comparisons: it evaluates the path from the binding and checks whether any
// reached element (and, for comparisons, its attribute value) satisfies the
// test.
func (e *Engine) evalExistential(p *lpath.Path, b bind, op, value string, ctx *evalCtx) (bool, error) {
	head, attr, err := lpath.SplitAttr(p)
	if err != nil {
		return false, err
	}
	if op != "" && attr == "" {
		return false, lpath.ErrCmpNeedsAttr
	}
	if head == nil {
		self := [1]bind{b}
		return e.existHit(self[:], attr, op, value), nil
	}
	elems, err := e.evalSubPath(head, b, ctx)
	if err != nil {
		return false, err
	}
	hit := e.existHit(elems, attr, op, value)
	ctx.ar.putBinds(elems)
	return hit, nil
}

func (e *Engine) existHit(elems []bind, attr, op, value string) bool {
	if attr == "" {
		return len(elems) > 0
	}
	for _, eb := range elems {
		if eb.row == noRow {
			continue
		}
		r := e.s.Row(eb.row)
		v, ok := e.s.AttrValueBare(r.TID, r.ID, attr)
		if !ok {
			continue
		}
		switch op {
		case "":
			return true
		case "=":
			if v == value {
				return true
			}
		case "!=":
			if v != value {
				return true
			}
		}
	}
	return false
}
