package engine

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"lpath/internal/corpus"
	"lpath/internal/lpath"
	"lpath/internal/relstore"
	"lpath/internal/tree"
)

// countdownCtx is a context whose Err() flips to context.Canceled after a
// fixed number of polls. It makes the cancellation tests deterministic: the
// entry check and the first strided polls see a live context, and the
// evaluation is guaranteed to be mid-sweep — not merely at the entry check —
// when cancellation lands, with no timing involved.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
	done      chan struct{}
}

func newCountdownCtx() *countdownCtx {
	return &countdownCtx{
		Context: context.Background(),
		done:    make(chan struct{}),
	}
}

func (c *countdownCtx) setPolls(n int64) { c.remaining.Store(n) }

// Done returns a non-nil (never-closed) channel so the engine registers the
// context for cooperative polling.
func (c *countdownCtx) Done() <-chan struct{} { return c.done }

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// cancelCorpus synthesizes a corpus big enough that every executor makes
// thousands of checkpointed loop iterations for the queries below.
func cancelCorpus(t testing.TB) *tree.Corpus {
	t.Helper()
	return corpus.Generate(corpus.Config{Profile: corpus.WSJ, Scale: 0.02, Seed: 7})
}

func cancelEngine(t testing.TB, tc *tree.Corpus, opts ...Option) *Engine {
	t.Helper()
	e, err := New(relstore.Build(tc, relstore.SchemeInterval), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCancelMidSweepPerStrategy proves that SelectContext-style evaluation
// returns promptly with context.Canceled from inside each executor's sweep:
// the per-binding probe loop, the merge group sweep with its predicate
// pipeline, and the holistic twig arrival loop.
func TestCancelMidSweepPerStrategy(t *testing.T) {
	tc := cancelCorpus(t)
	cases := []struct {
		name  string
		opts  []Option
		query string
		// polls the countdown context survives: 1 entry check + the given
		// number of strided in-sweep polls before flipping to Canceled.
		sweepPolls int64
	}{
		{"probe", []Option{WithoutPlanner()}, `//_[//_[//NP]]`, 1},
		{"merge", []Option{WithoutPlanner(), WithMergeAlways()}, `//_[//_[//NP]]`, 1},
		{"twig", []Option{WithoutPlanner(), WithTwigAlways()}, `//_//_//_`, 1},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			e := cancelEngine(t, tc, tt.opts...)
			p := lpath.MustParse(tt.query)

			cctx := newCountdownCtx()
			cctx.setPolls(1 + tt.sweepPolls)
			_, err := e.EvalContext(cctx, p)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("EvalContext: got err %v, want context.Canceled", err)
			}

			cctx.setPolls(1 + tt.sweepPolls)
			_, err = e.CountContext(cctx, p)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("CountContext: got err %v, want context.Canceled", err)
			}

			// A cancelled evaluation must not poison the engine's pooled
			// state: the same engine answers the same query correctly next.
			want, err := e.Eval(p)
			if err != nil {
				t.Fatalf("post-cancel Eval: %v", err)
			}
			fresh := cancelEngine(t, tc, tt.opts...)
			ref, err := fresh.Eval(p)
			if err != nil {
				t.Fatalf("fresh Eval: %v", err)
			}
			if !reflect.DeepEqual(want, ref) {
				t.Fatalf("post-cancel results differ: %d vs %d matches", len(want), len(ref))
			}
		})
	}
}

// TestCancelParallelMidSweep proves the sharded path is interrupted
// cooperatively too: the deadline reaches each in-flight shard evaluation
// (shards evaluate with the derived context), not just the not-yet-started
// ones. The query's full evaluation takes orders of magnitude longer than
// the deadline, so the workers are guaranteed to be mid-sweep when it fires.
func TestCancelParallelMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based cancellation test")
	}
	tc := cancelCorpus(t)
	shards, err := NewSharded(relstore.BuildShards(tc, relstore.SchemeInterval, 4), WithoutPlanner())
	if err != nil {
		t.Fatal(err)
	}
	p := lpath.MustParse(`//_[//_[//_]]`)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := EvalParallel(ctx, shards, p, WithWorkers(2)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EvalParallel: got err %v after %v, want context.DeadlineExceeded", err, time.Since(start))
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled parallel evaluation took %v, cancellation is not cooperative", elapsed)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	if _, err := CountParallel(ctx2, shards, p, WithWorkers(2)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CountParallel: got err %v, want context.DeadlineExceeded", err)
	}
}

// TestDeadlineExceededMidSweep runs an expensive query under a deadline far
// shorter than its full evaluation time and requires the deadline's error,
// bounding how long the return may take.
func TestDeadlineExceededMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based cancellation test")
	}
	tc := cancelCorpus(t)
	e := cancelEngine(t, tc, WithoutPlanner())
	p := lpath.MustParse(`//_[//_[//_]]`)

	// On a loaded machine the runtime may fire a short timer late enough
	// that a fast evaluation finishes first; halving the deadline until it
	// lands mid-sweep keeps the test independent of machine speed (a
	// sub-microsecond deadline is already expired at the entry check).
	for timeout := 10 * time.Millisecond; ; timeout /= 2 {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		start := time.Now()
		_, err := e.EvalContext(ctx, p)
		elapsed := time.Since(start)
		cancel()
		if errors.Is(err, context.DeadlineExceeded) {
			// The strided poll abandons work within a few thousand loop
			// iterations; anything near a second means cancellation is not
			// reaching the sweep.
			if elapsed > 5*time.Second {
				t.Fatalf("cancelled evaluation took %v, cancellation is not cooperative", elapsed)
			}
			return
		}
		if err != nil {
			t.Fatalf("got err %v after %v, want context.DeadlineExceeded", err, elapsed)
		}
		if timeout < time.Microsecond {
			t.Fatalf("no DeadlineExceeded even with an expired deadline (last err <nil> after %v)", elapsed)
		}
	}
}

// TestContextPreCancelled pins the entry-check behavior: an already-dead
// context returns its error without touching the store, identically across
// serial, parallel, and count entry points.
func TestContextPreCancelled(t *testing.T) {
	tc := cancelCorpus(t)
	e := cancelEngine(t, tc)
	shards, err := NewSharded(relstore.BuildShards(tc, relstore.SchemeInterval, 2))
	if err != nil {
		t.Fatal(err)
	}
	p := lpath.MustParse(`//NP`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := e.EvalContext(ctx, p); !errors.Is(err, context.Canceled) {
		t.Errorf("EvalContext: got %v", err)
	}
	if _, err := e.CountContext(ctx, p); !errors.Is(err, context.Canceled) {
		t.Errorf("CountContext: got %v", err)
	}
	if _, err := e.ExplainContext(ctx, p); !errors.Is(err, context.Canceled) {
		t.Errorf("ExplainContext: got %v", err)
	}
	if _, err := EvalParallel(ctx, shards, p); !errors.Is(err, context.Canceled) {
		t.Errorf("EvalParallel: got %v", err)
	}
	if _, err := CountParallel(ctx, shards, p); !errors.Is(err, context.Canceled) {
		t.Errorf("CountParallel: got %v", err)
	}
}
