package engine

import (
	"math"
	"reflect"
	"testing"

	"lpath/internal/lpath"
	"lpath/internal/relstore"
	"lpath/internal/tree"
)

// chainCorpus builds n trees, each a unary chain of depth deep whose every
// node is tagged W and whose single leaf carries the given word — a corpus
// with ~deep element rows per unit of leaf span, far from the treebank-
// typical density of 2 the unplanned engine assumes.
func chainCorpus(n, deep int, word func(i int) string) *tree.Corpus {
	c := tree.NewCorpus()
	for i := 0; i < n; i++ {
		leaf := &tree.Node{Tag: "W", Word: word(i)}
		root := leaf
		for d := 1; d < deep; d++ {
			root = &tree.Node{Tag: "W", Children: []*tree.Node{root}}
			root.Children[0].Parent = root
		}
		c.AddRoot(root)
	}
	return c
}

// TestValueCrossoverFromStatistics pins the regression for the hardcoded
// value-index crossover: the unplanned engine compares the posting-list size
// against 2×span (the treebank-typical nodes-per-span density), while a
// planned step carries the corpus's measured density as StepPlan.Bias. On a
// skewed corpus — deep unary chains, density ≈ 10 — the two thresholds make
// opposite decisions in the band (2×span, density×span), and the planned
// decision is the one that matches the corpus.
func TestValueCrossoverFromStatistics(t *testing.T) {
	const deep = 10
	c := chainCorpus(20, deep, func(i int) string {
		if i < 5 {
			return "rare"
		}
		return "common"
	})
	s := relstore.Build(c, relstore.SchemeInterval)
	e, err := New(s)
	if err != nil {
		t.Fatal(err)
	}

	density := float64(s.Statistics().NameCount("W")) / float64(s.Statistics().TotalSpan)
	if math.Abs(density-deep) > 1e-9 {
		t.Fatalf("corpus density = %g, want %d", density, deep)
	}

	p := lpath.MustParse(`//W[@lex=rare]`)
	plan := e.Plan(p)
	if plan == nil {
		t.Fatal("no plan")
	}
	sp := plan.Step(&p.Steps[0])
	if sp == nil {
		t.Fatal("no step plan for //W")
	}
	if math.Abs(sp.Bias-density) > 1e-9 {
		t.Fatalf("planned Bias = %g, want the measured density %g", sp.Bias, density)
	}

	// Context: one chain's root, span 1. 5 postings lie in the band
	// (2×span, density×span): the legacy constant refuses the value index,
	// the statistics accept it.
	step := &p.Steps[0]
	b := bind{row: s.Roots()[0], scope: noRow}
	if e.valueWorthwhile(step, b, 5, nil) {
		t.Error("legacy threshold accepted 5 postings for span 1 (2×span = 2)")
	}
	if !e.valueWorthwhile(step, b, 5, sp) {
		t.Error("statistics threshold rejected 5 postings for span 1 (density×span = 10)")
	}
	// Outside the band both agree.
	if e.valueWorthwhile(step, b, deep+1, sp) {
		t.Error("statistics threshold accepted more postings than the context holds rows")
	}
	if !e.valueWorthwhile(step, b, 1, nil) || !e.valueWorthwhile(step, b, 1, sp) {
		t.Error("a single posting must win under either threshold")
	}

	// The decision is an access path, never a semantic choice: planned and
	// unplanned evaluation agree exactly on the skewed corpus.
	noplan, err := New(s, WithoutPlanner())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{`//W[@lex=rare]`, `//W[@lex=common]`, `//W//W[@lex=rare]`} {
		fast, err := e.Eval(lpath.MustParse(q))
		if err != nil {
			t.Fatal(err)
		}
		slow, err := noplan.Eval(lpath.MustParse(q))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Errorf("%s: planned %d matches, unplanned %d", q, len(fast), len(slow))
		}
	}
}
