package engine

import (
	"reflect"
	"testing"

	"lpath/internal/lpath"
	"lpath/internal/relstore"
	"lpath/internal/tree"
)

// Differential tests for the holistic twig executor: with the executor pinned
// on (every maximal run sweeps) and pinned off (planner falls back to
// merge/probe), results must agree with the tree-walking oracle and, ordered,
// with the probe-only engine.

// twigQueries exercises the shapes the twig sweep must get right: same-name
// vertical chains (stack discipline under laminar nesting), or-self support,
// adjacency chains (the pending-edge stack), following (running minimum
// right), rooted pipelines, scoped alignment residuals, and pushed-down
// attribute predicates.
var twigQueries = []string{
	// Same-name vertical chains, including unary spines.
	`//NP/NP`, `//NP//NP`, `//NP/NP/NP`, `//NP//NP//NP`,
	`//NP/NP/NP/NP/NP`, `//NP//NP/NP`,
	`//NP/descendant-or-self::NP`, `//NP/descendant-or-self::NP/NP`,
	// Adjacency chains.
	`//Det->N`, `//V->NP->PP`, `//Det-->N`, `//V-->N`,
	`//NP=>NP`, `//NP=>NP=>NP`, `//PP=>_`, `//V==>NP`, `//VP=>_=>_`,
	// Following with and without self.
	`//Det/following::N`, `//N/following-or-self::N`,
	`//Det/following::NP//N`,
	// Rooted pipelines (root mode, including the child residual).
	`/S/NP/N`, `/S//NP/NP`, `/NP/NP`,
	// Scoped alignment over twig-shaped tails.
	`//VP{/NP$}`, `//S{//NP/NP}`, `//VP{//^NP=>NP}`, `//S{//NP=>NP$}`,
	// Predicate pushdown inside a run.
	`//NP[@lex]/NP`, `//NP//N[@lex=dog]`, `//_[@lex=the]->_[@lex=old]`,
	`//S//NP->PP//N`,
}

// nestedCorpus builds trees that stress laminar same-name nesting: an NP
// spine alternating identical-span unary links (same left and right, depth
// tiebreak) with left-aligned widened links (same left, distinct rights —
// the shape that forces the per-name document-order permutation), a
// branching same-name tree with adjacent same-name siblings, and a copy of
// the spine in a second tree to cross tree boundaries mid-sweep.
func nestedCorpus() *tree.Corpus {
	spine := func() *tree.Node {
		root := &tree.Node{Tag: "NP"}
		cur := root
		for i := 0; i < 5; i++ {
			k := &tree.Node{Tag: "NP"}
			cur.AddChild(k)
			if i%2 == 0 {
				cur.AddChild(&tree.Node{Tag: "N", Word: "man"})
			}
			cur = k
		}
		cur.AddChild(&tree.Node{Tag: "N", Word: "dog"})
		return root
	}
	branchy := func() *tree.Node {
		root := &tree.Node{Tag: "S"}
		for i := 0; i < 3; i++ {
			np := &tree.Node{Tag: "NP"}
			inner := &tree.Node{Tag: "NP"}
			inner.AddChild(&tree.Node{Tag: "Det", Word: "the"})
			inner.AddChild(&tree.Node{Tag: "N", Word: "man"})
			np.AddChild(inner)
			np.AddChild(&tree.Node{Tag: "N", Word: "dog"})
			root.AddChild(np)
		}
		vp := &tree.Node{Tag: "VP"}
		vp.AddChild(&tree.Node{Tag: "V", Word: "saw"})
		np := &tree.Node{Tag: "NP"}
		np.AddChild(&tree.Node{Tag: "N", Word: "dog"})
		vp.AddChild(np)
		root.AddChild(vp)
		return root
	}
	c := tree.NewCorpus()
	c.AddRoot(spine())
	c.AddRoot(branchy())
	c.AddRoot(spine())
	c.Add(tree.Figure1())
	return c
}

func TestCrossValidateTwigAlways(t *testing.T) {
	queries := append(append([]string{}, queryCorpus...), twigQueries...)
	crossValidate(t, nestedCorpus(), queries, WithTwigAlways())
	fig := tree.NewCorpus()
	fig.Add(tree.Figure1())
	crossValidate(t, fig, queries, WithTwigAlways())
	for seed := int64(61); seed <= 66; seed++ {
		crossValidate(t, randomCorpus(seed, 3), queries, WithTwigAlways())
	}
}

func TestCrossValidateTwigOff(t *testing.T) {
	queries := append(append([]string{}, queryCorpus...), twigQueries...)
	crossValidate(t, nestedCorpus(), queries, WithoutTwig())
	for seed := int64(71); seed <= 74; seed++ {
		crossValidate(t, randomCorpus(seed, 3), queries, WithoutTwig())
	}
}

// TestTwigEqualsProbeOrdered builds engines over one shared store —
// planner-driven, twig-forced, twig-off, and twig-forced with merge also
// forced for the residual steps — and requires byte-identical ordered results
// against the probe-only baseline on every query.
func TestTwigEqualsProbeOrdered(t *testing.T) {
	queries := append(append([]string{}, queryCorpus...), twigQueries...)
	corpora := []*tree.Corpus{nestedCorpus()}
	for seed := int64(81); seed <= 85; seed++ {
		corpora = append(corpora, randomCorpus(seed, 4))
	}
	for ci, c := range corpora {
		s := relstore.Build(c, relstore.SchemeInterval)
		probe, err := New(s, WithoutMerge(), WithoutTwig())
		if err != nil {
			t.Fatal(err)
		}
		variants := map[string]*Engine{}
		add := func(name string, opts ...Option) {
			e, err := New(s, opts...)
			if err != nil {
				t.Fatal(err)
			}
			variants[name] = e
		}
		add("auto")
		add("twig-always", WithTwigAlways())
		add("twig-off", WithoutTwig())
		add("twig-and-merge", WithTwigAlways(), WithMergeAlways())
		for _, q := range queries {
			p := lpath.MustParse(q)
			want, err := probe.Eval(p)
			if err != nil {
				t.Fatalf("corpus %d probe %q: %v", ci, q, err)
			}
			for name, e := range variants {
				got, err := e.Eval(p)
				if err != nil {
					t.Fatalf("corpus %d %s %q: %v", ci, name, q, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("corpus %d: %s and probe-only disagree on %q (%d vs %d matches, or order)",
						ci, name, q, len(got), len(want))
				}
			}
		}
	}
}
