package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"lpath/internal/lpath"
	"lpath/internal/tree"
)

// batchOptRotations are the executor configurations the batch identity
// property is checked under: the memo must be inert to strategy choice.
var batchOptRotations = []struct {
	name string
	opts []Option
}{
	{"planned", nil},
	{"noplanner", []Option{WithoutPlanner()}},
	{"merge", []Option{WithMergeAlways()}},
	{"twig", []Option{WithTwigAlways()}},
	{"nobitmap", []Option{WithoutBitmap()}},
	{"bitmap", []Option{WithBitmapAlways()}},
}

// TestEvalBatchMatchesSerial is the batch identity property: on random
// corpora, under every executor rotation, EvalBatch's slot i is element-wise
// identical to Eval(paths[i]) — including when the batch holds duplicates, so
// every memo layer is live while the comparison runs.
func TestEvalBatchMatchesSerial(t *testing.T) {
	paths := make([]*lpath.Path, 0, 2*len(queryCorpus))
	for _, q := range queryCorpus {
		paths = append(paths, lpath.MustParse(q))
	}
	// Duplicate the whole suite so the rows memo serves half the batch.
	paths = append(paths, paths...)
	for seed := int64(1); seed <= 2; seed++ {
		c := randomCorpus(seed, 7)
		for _, rot := range batchOptRotations {
			e := buildEngine(t, c, rot.opts...)
			want := make([][]Match, len(paths))
			for i, p := range paths {
				ms, err := e.Eval(p)
				if err != nil {
					t.Fatalf("seed %d %s: serial %q: %v", seed, rot.name, p, err)
				}
				want[i] = ms
			}
			got, errs := e.EvalBatch(paths)
			for i := range paths {
				if errs[i] != nil {
					t.Fatalf("seed %d %s: batch slot %d (%q): %v", seed, rot.name, i, paths[i], errs[i])
				}
				if len(got[i]) == 0 && len(want[i]) == 0 {
					continue
				}
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("seed %d %s: %q: batch %d matches, serial %d",
						seed, rot.name, paths[i], len(got[i]), len(want[i]))
				}
			}
		}
	}
}

// TestEvalBatchErrorSlots proves a failing query occupies exactly its own
// slot with the same error serial evaluation reports, leaving batch mates
// untouched.
func TestEvalBatchErrorSlots(t *testing.T) {
	e, _ := figureEngine(t)
	bad := lpath.MustParse(`//S@lex`)
	_, serialErr := e.Eval(bad)
	if serialErr == nil {
		t.Fatal("serial Eval accepted a main-path attribute step")
	}
	paths := []*lpath.Path{lpath.MustParse(`//NP`), bad, lpath.MustParse(`//VP/V`)}
	got, errs := e.EvalBatch(paths)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy slots errored: %v, %v", errs[0], errs[2])
	}
	if errs[1] == nil || errs[1].Error() != serialErr.Error() {
		t.Fatalf("bad slot: got %v, want %v", errs[1], serialErr)
	}
	if got[1] != nil {
		t.Errorf("bad slot carries %d matches", len(got[1]))
	}
	if len(got[0]) != 4 {
		t.Errorf("//NP: %d matches, want 4", len(got[0]))
	}
}

// TestEvalBatchDuplicateRowsMemo pins the singleflight layer: duplicate
// queries evaluate once and hit the rows memo thereafter, with identical
// results in every slot.
func TestEvalBatchDuplicateRowsMemo(t *testing.T) {
	e, _ := figureEngine(t)
	p := lpath.MustParse(`//NP`)
	paths := []*lpath.Path{p, lpath.MustParse(`//NP`), lpath.MustParse(`//NP`)}
	got, errs, stats := e.EvalBatchStats(context.Background(), paths, nil)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	if stats.RowsMisses != 1 || stats.RowsHits != 2 {
		t.Errorf("rows memo: %d misses / %d hits, want 1 / 2", stats.RowsMisses, stats.RowsHits)
	}
	if !reflect.DeepEqual(got[0], got[1]) || !reflect.DeepEqual(got[0], got[2]) {
		t.Error("duplicate slots differ")
	}
	want, err := e.Eval(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], want) {
		t.Errorf("batch %d matches, serial %d", len(got[0]), len(want))
	}
}

// TestEvalBatchSharedFrontier pins the frontier memo: two queries whose main
// paths share the same canonical step prefix (differing only in scoped tail)
// reuse the step frontier, and the shared results stay identical to serial.
func TestEvalBatchSharedFrontier(t *testing.T) {
	tc := cancelCorpus(t)
	e := cancelEngine(t, tc)
	paths := []*lpath.Path{lpath.MustParse(`//VP{/NP$}`), lpath.MustParse(`//VP{//NP$}`)}
	got, errs, stats := e.EvalBatchStats(context.Background(), paths, nil)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	if stats.FrontierHits < 1 {
		t.Errorf("frontier memo: %d hits (%d misses), want >= 1 hit",
			stats.FrontierHits, stats.FrontierMisses)
	}
	for i, p := range paths {
		want, err := e.Eval(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("%q: batch %d matches, serial %d", p, len(got[i]), len(want))
		}
	}
}

// TestEvalBatchSharedSatisfiers pins the satisfier-bitset memo: two distinct
// queries with the same existential filter (planned as a semijoin on this
// corpus) share the materialized satisfier set.
func TestEvalBatchSharedSatisfiers(t *testing.T) {
	tc := cancelCorpus(t)
	e := cancelEngine(t, tc)
	paths := []*lpath.Path{
		lpath.MustParse(`//S[//_[@lex=saw]]`),
		lpath.MustParse(`//NP[//_[@lex=saw]]`),
	}
	got, errs, stats := e.EvalBatchStats(context.Background(), paths, nil)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	if stats.SatMisses < 1 || stats.SatHits < 1 {
		t.Errorf("satisfier memo: %d misses / %d hits, want >= 1 each",
			stats.SatMisses, stats.SatHits)
	}
	for i, p := range paths {
		want, err := e.Eval(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("%q: batch %d matches, serial %d", p, len(got[i]), len(want))
		}
	}
}

// TestEvalBatchLimit pins limit semantics: negative = unlimited, zero = empty
// non-nil, positive = the exact prefix of the full serial result — and a
// capped duplicate must not shrink what an uncapped batch mate sees.
func TestEvalBatchLimit(t *testing.T) {
	e, _ := figureEngine(t)
	p := lpath.MustParse(`//NP`)
	full, err := e.Eval(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 4 {
		t.Fatalf("//NP: %d matches, want 4", len(full))
	}
	paths := []*lpath.Path{p, p, p, p, p}
	limits := []int{-1, 0, 1, 2, 10}
	got, errs := e.EvalBatchLimit(context.Background(), paths, limits)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	for i, limit := range limits {
		want := full
		if limit >= 0 && limit < len(full) {
			want = full[:limit]
		}
		if len(got[i]) != len(want) {
			t.Errorf("limit %d: %d matches, want %d", limit, len(got[i]), len(want))
			continue
		}
		if limit == 0 {
			if got[i] == nil {
				t.Error("limit 0: nil result, want empty non-nil")
			}
			continue
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("limit %d: result is not the serial prefix", limit)
		}
	}
}

// TestCountBatchMatchesSerial checks CountBatch slot-for-slot against serial
// Count, including a duplicate that rides the rows memo.
func TestCountBatchMatchesSerial(t *testing.T) {
	e, _ := figureEngine(t)
	queries := []string{`//NP`, `//VP/V`, `//NP`, `//_[@lex=missing]`}
	paths := make([]*lpath.Path, len(queries))
	for i, q := range queries {
		paths[i] = lpath.MustParse(q)
	}
	counts, errs := e.CountBatch(context.Background(), paths)
	for i, p := range paths {
		if errs[i] != nil {
			t.Fatalf("slot %d: %v", i, errs[i])
		}
		want, err := e.Count(p)
		if err != nil {
			t.Fatal(err)
		}
		if counts[i] != want {
			t.Errorf("%q: batch count %d, serial %d", p, counts[i], want)
		}
	}
}

// TestEvalBatchPreCancelled: a dead context fails every slot with its error
// before any store access.
func TestEvalBatchPreCancelled(t *testing.T) {
	e, _ := figureEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	paths := []*lpath.Path{lpath.MustParse(`//NP`), lpath.MustParse(`//VP`)}
	got, errs := e.EvalBatchContext(ctx, paths)
	for i := range paths {
		if !errors.Is(errs[i], context.Canceled) {
			t.Errorf("slot %d: got %v, want context.Canceled", i, errs[i])
		}
		if got[i] != nil {
			t.Errorf("slot %d carries %d matches", i, len(got[i]))
		}
	}
}

// TestEvalBatchMidCancel cancels cooperatively mid-batch (via the countdown
// context) and requires every interrupted slot to carry the context error —
// and the engine's pooled state to stay healthy for the next evaluation.
func TestEvalBatchMidCancel(t *testing.T) {
	tc := cancelCorpus(t)
	e := cancelEngine(t, tc, WithoutPlanner())
	p := lpath.MustParse(`//_[//_[//NP]]`)
	paths := []*lpath.Path{p, p, p}

	cctx := newCountdownCtx()
	cctx.setPolls(2) // batch entry check + first in-sweep poll survive
	_, errs := e.EvalBatchContext(cctx, paths)
	for i := range paths {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("slot %d: got %v, want context.Canceled", i, errs[i])
		}
	}

	want, err := e.Eval(lpath.MustParse(`//NP`))
	if err != nil {
		t.Fatalf("post-cancel Eval: %v", err)
	}
	fresh := cancelEngine(t, tc, WithoutPlanner())
	ref, err := fresh.Eval(lpath.MustParse(`//NP`))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, ref) {
		t.Fatalf("post-cancel results differ: %d vs %d matches", len(want), len(ref))
	}
}

// TestEvalBatchParallelMatchesSerial is the sharded batch identity property:
// for every shard count and worker count, EvalBatchParallel's slot i equals
// EvalParallel for that query alone — which the parallel tests hold equal to
// serial Eval.
func TestEvalBatchParallelMatchesSerial(t *testing.T) {
	paths := make([]*lpath.Path, len(queryCorpus))
	for i, q := range queryCorpus {
		paths[i] = lpath.MustParse(q)
	}
	for seed := int64(1); seed <= 2; seed++ {
		c := randomCorpus(seed, 7)
		serial := buildEngine(t, c)
		want := make([][]Match, len(paths))
		for i, p := range paths {
			ms, err := serial.Eval(p)
			if err != nil {
				t.Fatalf("seed %d: serial %q: %v", seed, queryCorpus[i], err)
			}
			want[i] = ms
		}
		for _, k := range []int{1, 3, 7} {
			shards := shardEngines(t, c, k)
			for _, workers := range []int{1, 3} {
				got, errs := EvalBatchParallel(context.Background(), shards, paths, WithWorkers(workers))
				for i := range paths {
					if errs[i] != nil {
						t.Fatalf("seed %d k=%d w=%d: %q: %v", seed, k, workers, queryCorpus[i], errs[i])
					}
					if len(got[i]) == 0 && len(want[i]) == 0 {
						continue
					}
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Errorf("seed %d k=%d w=%d: %q: batch %d matches, serial %d",
							seed, k, workers, queryCorpus[i], len(got[i]), len(want[i]))
					}
				}
			}
		}
	}
}

// TestEvalBatchParallelErrorSlots: a failing query fails only its own slot,
// positionally, across shards.
func TestEvalBatchParallelErrorSlots(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	shards := shardEngines(t, c, 2)
	bad := lpath.MustParse(`//S@lex`)
	paths := []*lpath.Path{lpath.MustParse(`//NP`), bad}
	got, errs := EvalBatchParallel(context.Background(), shards, paths)
	if errs[0] != nil {
		t.Fatalf("healthy slot: %v", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("bad slot did not error")
	}
	if len(got[0]) != 4 {
		t.Errorf("//NP: %d matches, want 4", len(got[0]))
	}
}

// TestEvalBatchParallelEmptyShards mirrors EvalParallel's empty-shard
// behavior per slot: empty results, validation errors still surfaced.
func TestEvalBatchParallelEmptyShards(t *testing.T) {
	paths := []*lpath.Path{lpath.MustParse(`//NP`), lpath.MustParse(`//S@lex`)}
	got, errs := EvalBatchParallel(context.Background(), nil, paths)
	if errs[0] != nil || len(got[0]) != 0 {
		t.Errorf("healthy slot on empty shards: %d matches, %v", len(got[0]), errs[0])
	}
	if errs[1] == nil {
		t.Error("invalid query accepted on empty shards")
	}
}

// TestEvalBatchParallelPreCancelled: a dead context fails every slot.
func TestEvalBatchParallelPreCancelled(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	shards := shardEngines(t, c, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errs := EvalBatchParallel(ctx, shards, []*lpath.Path{lpath.MustParse(`//NP`)})
	if !errors.Is(errs[0], context.Canceled) {
		t.Errorf("got %v, want context.Canceled", errs[0])
	}
}
