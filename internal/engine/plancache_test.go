package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"lpath/internal/lpath"
)

func TestPlanCacheHitMissEviction(t *testing.T) {
	c := NewPlanCache(2)
	a, b, d := lpath.MustParse(`//A`), lpath.MustParse(`//B`), lpath.MustParse(`//D`)

	if _, ok := c.Get("//A"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("//A", a)
	c.Put("//B", b)
	if p, ok := c.Get("//A"); !ok || p != a {
		t.Fatal("miss on cached //A")
	}
	// //B is now least recently used; inserting //D evicts it.
	c.Put("//D", d)
	if _, ok := c.Get("//B"); ok {
		t.Error("//B should have been evicted")
	}
	if _, ok := c.Get("//A"); !ok {
		t.Error("//A should have survived eviction")
	}
	if _, ok := c.Get("//D"); !ok {
		t.Error("//D should be cached")
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 2 || st.Evictions != 1 || st.Len != 2 || st.Capacity != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPlanCachePutRefreshesExisting(t *testing.T) {
	c := NewPlanCache(2)
	a1, a2 := lpath.MustParse(`//A`), lpath.MustParse(`//A`)
	c.Put("//A", a1)
	c.Put("//A", a2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if p, _ := c.Get("//A"); p != a2 {
		t.Error("Put should replace the stored plan")
	}
	if c.Stats().Evictions != 0 {
		t.Error("refreshing a key must not evict")
	}
}

func TestPlanCacheDefaultCapacity(t *testing.T) {
	for _, capGiven := range []int{0, -5} {
		if got := NewPlanCache(capGiven).Stats().Capacity; got != DefaultPlanCacheSize {
			t.Errorf("NewPlanCache(%d).Capacity = %d, want %d", capGiven, got, DefaultPlanCacheSize)
		}
	}
}

func TestPlanCacheGetOrCompile(t *testing.T) {
	c := NewPlanCache(4)
	compiles := 0
	compile := func(s string) (*lpath.Path, error) {
		compiles++
		return lpath.Parse(s)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.GetOrCompile(`//NP`, compile); err != nil {
			t.Fatal(err)
		}
	}
	if compiles != 1 {
		t.Errorf("compiled %d times, want 1", compiles)
	}
	// Errors are propagated and never cached.
	boom := errors.New("boom")
	fails := 0
	for i := 0; i < 3; i++ {
		_, err := c.GetOrCompile(`//bad`, func(string) (*lpath.Path, error) {
			fails++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if fails != 3 {
		t.Errorf("failing compile ran %d times, want 3 (errors must not be cached)", fails)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

// TestPlanCacheConcurrent hammers the cache from many goroutines over a key
// space larger than the capacity, so hits, misses and evictions all occur
// concurrently; the -race CI job runs this to certify the locking.
func TestPlanCacheConcurrent(t *testing.T) {
	c := NewPlanCache(8)
	texts := make([]string, 24)
	for i := range texts {
		texts[i] = fmt.Sprintf(`//NP[count(/_)=%d]`, i)
	}
	var wg sync.WaitGroup
	const goroutines, rounds = 16, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				text := texts[(g*7+i)%len(texts)]
				p, err := c.GetOrCompile(text, lpath.Parse)
				if err != nil || p == nil {
					t.Errorf("GetOrCompile(%q): %v", text, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Len > 8 {
		t.Errorf("Len = %d exceeds capacity", st.Len)
	}
	if st.Hits+st.Misses != goroutines*rounds {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, goroutines*rounds)
	}
}
