package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"lpath/internal/lpath"
	"lpath/internal/relstore"
	"lpath/internal/tree"
	"lpath/internal/treeval"
)

func figureEngine(t *testing.T, opts ...Option) (*Engine, *tree.Corpus) {
	t.Helper()
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	s := relstore.Build(c, relstore.SchemeInterval)
	e, err := New(s, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e, c
}

func sig(n *tree.Node) string {
	return n.Tag + "[" + strings.Join(n.Words(), " ") + "]"
}

func evalSigs(t *testing.T, e *Engine, query string) []string {
	t.Helper()
	ms, err := e.Eval(lpath.MustParse(query))
	if err != nil {
		t.Fatalf("eval %q: %v", query, err)
	}
	out := make([]string, 0, len(ms))
	for _, m := range ms {
		out = append(out, sig(m.Node))
	}
	sort.Strings(out)
	return out
}

func expect(t *testing.T, e *Engine, query string, want ...string) {
	t.Helper()
	got := evalSigs(t, e, query)
	sort.Strings(want)
	if want == nil {
		want = []string{}
	}
	if got == nil {
		got = []string{}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s:\n got %v\nwant %v", query, got, want)
	}
}

// TestFigure2Queries checks the paper's Figure 2 result sets on the engine.
func TestFigure2Queries(t *testing.T) {
	e, _ := figureEngine(t)
	expect(t, e, `//S[//_[@lex=saw]]`, "S[I saw the old man with a dog today]")
	expect(t, e, `//V==>NP`, "NP[the old man with a dog]")
	expect(t, e, `//V->NP`, "NP[the old man with a dog]", "NP[the old man]")
	expect(t, e, `//VP/V-->N`, "N[man]", "N[dog]", "N[today]")
	expect(t, e, `//VP{/V-->N}`, "N[man]", "N[dog]")
	expect(t, e, `//VP{/NP$}`, "NP[the old man with a dog]")
	expect(t, e, `//VP{//NP$}`, "NP[the old man with a dog]", "NP[a dog]")
}

func TestEngineRequiresIntervalScheme(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	s := relstore.Build(c, relstore.SchemeStartEnd)
	if _, err := New(s); err == nil {
		t.Fatal("expected scheme error")
	}
}

func TestEngineRejectsMainPathAttribute(t *testing.T) {
	e, _ := figureEngine(t)
	if _, err := e.Eval(lpath.MustParse(`//S@lex`)); err == nil {
		t.Error("expected error for attribute step in main path")
	}
	if _, err := e.Eval(lpath.MustParse(`//_[@lex/NP]`)); err == nil {
		t.Error("expected error for non-final attribute step")
	}
	if _, err := e.Eval(lpath.MustParse(`//_[//NP=x]`)); err == nil {
		t.Error("expected error for comparison without attribute")
	}
}

func TestEngineResultOrderAndTreeIDs(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.MustParseTree(`(S (NP b) (VP (V x) (NP y)))`))
	c.Add(tree.MustParseTree(`(S (NP c) (NP d))`))
	s := relstore.Build(c, relstore.SchemeInterval)
	e, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := e.Eval(lpath.MustParse(`//NP`))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("matches = %d", len(ms))
	}
	wantTrees := []int{1, 1, 2, 2}
	for i, m := range ms {
		if m.TreeID != wantTrees[i] {
			t.Errorf("match %d tree = %d, want %d", i, m.TreeID, wantTrees[i])
		}
	}
	// Document order within tree 2: NP[c] before NP[d].
	if got := strings.Join(ms[2].Node.Words(), ""); got != "c" {
		t.Errorf("first tree-2 match = %q, want c", got)
	}
}

// queryCorpus is a broad set of LPath queries exercising every axis,
// scoping, alignment and predicate form; used by the cross-validation tests.
var queryCorpus = []string{
	`//NP`, `/S`, `/S/VP`, `//VP/V`, `//VP//N`, `//N\_`, `//N\\_`, `//N\\NP`,
	`//V->_`, `//V->NP`, `//V-->N`, `//N<-_`, `//N<--_`, `//N<--Det`,
	`//V==>NP`, `//NP==>_`, `//N<=_`, `//NP<==_`, `//V.`, `//_.NP`,
	`//VP{//N}`, `//VP{/NP$}`, `//VP{//NP$}`, `//VP{//^_}`, `//VP{//_$}`,
	`//S{//NP{//N}}`, `//NP{//Det->_}`,
	`//VP/_$`, `//VP/^_`, `//^_`, `//_$`,
	`//S[//_[@lex=saw]]`, `//_[@lex=saw]`, `//_[@lex=dog]`, `//_[@lex=missing]`,
	`//NP[//Adj]`, `//NP[not(//Adj)]`, `//NP[//Adj and //Prep]`,
	`//NP[//Adj or @lex=I]`, `//NP[@lex]`, `//NP[@lex!=I]`, `//N[@lex!=man]`,
	`//NP[/NP and /PP]`, `//NP[\VP]`, `//Det[-->N[@lex=dog]]`,
	`//NP[->PP[//Det]]`, `//VP[{//^V->NP->PP$}]`, `//VP[{//_[@lex=saw]}]`,
	`//S[{//_[@lex=the]->_[@lex=old]}]`,
	`//N/following::Det`, `//N/following-or-self::N`, `//N/preceding-or-self::N`,
	`//V/following-sibling-or-self::_`, `//V/preceding-sibling-or-self::_`,
	`//Det/immediate-following::_`, `//NP/descendant-or-self::NP`,
	`//Adj\ancestor::NP`, `//Adj\ancestor-or-self::_`,
	`//NP/NP`, `//NP/NP/NP`, `//PP=>_`, `//_=>PP`,
	// Function library: positional, counting and string predicates.
	`//VP/_[position()=1]`, `//VP/_[last()]`, `//VP/_[position()=last()]`,
	`//NP/_[2]`, `//NP/_[position()>1]`, `//NP/_[position()<=2]`,
	`//NP/_[position()!=1]`, `//NP/_[position()>=2][position()<2]`,
	`//N\\_[position()=1]`, `//N\\_[last()]`, `//N<==_[position()=1]`,
	`//N<--_[position()=1]`, `//N-->_[position()=2]`,
	`//V/following-sibling::_[position()=1][.NP]`, `//VP/_[last()][.NP]`,
	`//NP[count(/_)=3]`, `//NP[count(//N)>=1]`, `//S[count(//NP)>2]`,
	`//NP[count(/Det)<1]`, `//NP[count(//_)!=2]`,
	`//_[contains(@lex,'o')]`, `//_[starts-with(@lex,'d')]`,
	`//_[ends-with(@lex,'w')]`, `//NP[contains(//N@lex,'a')]`,
	`//NP[count(/_)=2 and //Adj]`, `//VP{//_[position()=1]}`,
	`//NP/_[position()=1 or position()=last()]`,
	`//NP/_[not(position()=1)]`,
}

// crossValidate checks engine == oracle on one corpus for every query.
func crossValidate(t *testing.T, c *tree.Corpus, queries []string, opts ...Option) {
	t.Helper()
	s := relstore.Build(c, relstore.SchemeInterval)
	e, err := New(s, opts...)
	if err != nil {
		t.Fatal(err)
	}
	oracle := treeval.NewCorpus(c)
	for _, q := range queries {
		p, err := lpath.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		want, err := oracle.Eval(p)
		if err != nil {
			t.Fatalf("oracle %q: %v", q, err)
		}
		got, err := e.Eval(p)
		if err != nil {
			t.Fatalf("engine %q: %v", q, err)
		}
		if !sameMatches(got, want) {
			t.Errorf("%s: engine and oracle disagree\nengine: %v\noracle: %v",
				q, matchSigs(got), oracleSigs(want))
		}
	}
}

func matchSigs(ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = sig(m.Node)
	}
	return out
}

func oracleSigs(ms []treeval.Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = sig(m.Node)
	}
	return out
}

func sameMatches(got []Match, want []treeval.Match) bool {
	if len(got) != len(want) {
		return false
	}
	type key struct {
		tid  int
		node *tree.Node
	}
	a := make(map[key]int)
	for _, m := range got {
		a[key{m.TreeID, m.Node}]++
	}
	for _, m := range want {
		a[key{m.TreeID, m.Node}]--
	}
	for _, v := range a {
		if v != 0 {
			return false
		}
	}
	return true
}

func TestCrossValidateFigure1(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	crossValidate(t, c, queryCorpus)
}

func TestCrossValidateWithoutValueIndex(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	crossValidate(t, c, queryCorpus, WithoutValueIndex())
}

// randomCorpus builds a corpus of random trees over the fixture tag set,
// with unary branching allowed.
func randomCorpus(seed int64, nTrees int) *tree.Corpus {
	rng := rand.New(rand.NewSource(seed))
	tags := []string{"S", "NP", "VP", "PP", "N", "V", "Det", "Adj", "Prep"}
	words := []string{"saw", "dog", "man", "the", "a", "old", "with", "I", "today"}
	var build func(depth int) *tree.Node
	build = func(depth int) *tree.Node {
		n := &tree.Node{Tag: tags[rng.Intn(len(tags))]}
		if depth >= 6 || rng.Intn(3) == 0 {
			n.Word = words[rng.Intn(len(words))]
			return n
		}
		kids := 1 + rng.Intn(3)
		for i := 0; i < kids; i++ {
			n.AddChild(build(depth + 1))
		}
		return n
	}
	c := tree.NewCorpus()
	for i := 0; i < nTrees; i++ {
		c.AddRoot(build(1))
	}
	return c
}

// TestCrossValidateRandom is the main correctness property: on random
// corpora (including unary branching), the label-based engine agrees with
// the tree-walking oracle on every query in the corpus.
func TestCrossValidateRandom(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		c := randomCorpus(seed, 4)
		crossValidate(t, c, queryCorpus)
	}
}

func TestCrossValidateRandomNoValueIndex(t *testing.T) {
	for seed := int64(100); seed <= 104; seed++ {
		c := randomCorpus(seed, 3)
		crossValidate(t, c, queryCorpus, WithoutValueIndex())
	}
}

// randomQuery generates a random syntactically valid LPath query.
func randomQuery(rng *rand.Rand) string {
	tags := []string{"S", "NP", "VP", "PP", "N", "V", "Det", "_", "_"}
	axes := []string{"/", "//", `\`, `\\`, "->", "-->", "<-", "<--",
		"=>", "==>", "<=", "<==", "."}
	words := []string{"saw", "dog", "the", "I"}
	var steps func(n int, allowScope bool) string
	step := func(allowPred bool) string {
		var b strings.Builder
		b.WriteString(axes[rng.Intn(len(axes))])
		if rng.Intn(8) == 0 {
			b.WriteByte('^')
		}
		b.WriteString(tags[rng.Intn(len(tags))])
		if rng.Intn(8) == 0 {
			b.WriteByte('$')
		}
		if allowPred && rng.Intn(4) == 0 {
			switch rng.Intn(8) {
			case 0:
				b.WriteString("[@lex=" + words[rng.Intn(len(words))] + "]")
			case 1:
				b.WriteString("[" + steps(1, false) + "]")
			case 2:
				b.WriteString("[not(" + steps(1, false) + ")]")
			case 3:
				b.WriteString("[" + steps(1, false) + " and " + steps(1, false) + "]")
			case 4:
				ops := []string{"=", "!=", "<", "<=", ">", ">="}
				fmt.Fprintf(&b, "[position()%s%d]", ops[rng.Intn(len(ops))], 1+rng.Intn(3))
			case 5:
				b.WriteString("[last()]")
			case 6:
				fmt.Fprintf(&b, "[count(%s)%s%d]", steps(1, false),
					[]string{"=", ">=", "<"}[rng.Intn(3)], rng.Intn(3))
			case 7:
				fns := []string{"contains", "starts-with", "ends-with"}
				fmt.Fprintf(&b, "[%s(@lex,'%s')]", fns[rng.Intn(3)],
					words[rng.Intn(len(words))][:1])
			}
		}
		return b.String()
	}
	steps = func(n int, allowScope bool) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString(step(true))
		}
		if allowScope && rng.Intn(4) == 0 {
			b.WriteString("{" + steps(1+rng.Intn(2), false) + "}")
		}
		return b.String()
	}
	q := "//" + tags[rng.Intn(len(tags))] + steps(rng.Intn(3), true)
	return q
}

// TestCrossValidateGeneratedQueries fuzzes randomly generated queries
// against random corpora.
func TestCrossValidateGeneratedQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := randomCorpus(7, 5)
	s := relstore.Build(c, relstore.SchemeInterval)
	e, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	oracle := treeval.NewCorpus(c)
	for i := 0; i < 300; i++ {
		q := randomQuery(rng)
		p, err := lpath.Parse(q)
		if err != nil {
			t.Fatalf("generated query %q does not parse: %v", q, err)
		}
		want, err1 := oracle.Eval(p)
		got, err2 := e.Eval(p)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%q: oracle err=%v engine err=%v", q, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if !sameMatches(got, want) {
			t.Errorf("%q: engine %v, oracle %v", q, matchSigs(got), oracleSigs(want))
		}
	}
}

func TestCount(t *testing.T) {
	e, _ := figureEngine(t)
	n, err := e.Count(lpath.MustParse(`//NP`))
	if err != nil || n != 4 {
		t.Errorf("Count(//NP) = %d, %v", n, err)
	}
	n, err = e.Count(lpath.MustParse(`//ZZZ`))
	if err != nil || n != 0 {
		t.Errorf("Count(//ZZZ) = %d, %v", n, err)
	}
}

func TestTopLevelScope(t *testing.T) {
	e, _ := figureEngine(t)
	// A query that is only a scoped tail: scope is each tree root.
	expect(t, e, `{//V}`, "V[saw]")
	// // inside the scope is a proper-descendant step, so the scope root
	// itself (S) is not a candidate.
	expect(t, e, `{//^_}`, "NP[I]")
}
