package engine

import "lpath/internal/bitset"

// arena is an evalCtx-owned pool of scratch buffers, so steady-state
// evaluation of a compiled plan allocates near zero: every intermediate
// candidate list, binding frontier and dedup set is drawn from freelists
// that survive across evaluations (the evalCtx itself is pooled on the
// Engine).
//
// Ownership protocol:
//   - get* hands out an empty buffer the caller owns; the caller returns it
//     with the matching put* exactly once, after its last use.
//   - Store-owned slices (name ranges via RowSeq, ElementsByLeft, child
//     lists, ...) are "borrowed": they must never be mutated or put back.
//     Call sites track borrowed-ness explicitly and materialize into an
//     arena buffer before any in-place filtering or sorting.
//   - A filtered view v := compact-in-place(buf) shares buf's backing array;
//     only the original buf is ever put back, once.
//
// maxPooledSet bounds the entry count of maps returned to the pool. Go maps
// never shrink and clear() costs O(capacity), so pooling a set that once held
// thousands of entries would tax every later borrower with the peak query's
// clear cost — a cheap query running after a heavy one would pay the heavy
// query's bill on every get/put cycle. Oversized sets go to the GC instead;
// the rare evaluations that need them re-grow fresh ones, paying their own
// way (a handful of allocations against a runtime already proportional to
// the set size).
const maxPooledSet = 256

type arena struct {
	ints     [][]int32
	i64s     [][]int64
	binds    [][]bind
	rowSets  []map[int32]bool
	bindSets []map[bind]bool
	bitsets  []*bitset.Set
}

func (a *arena) getInts() []int32 {
	if n := len(a.ints); n > 0 {
		s := a.ints[n-1]
		a.ints = a.ints[:n-1]
		return s
	}
	return make([]int32, 0, 64)
}

func (a *arena) putInts(s []int32) {
	if cap(s) == 0 {
		return
	}
	a.ints = append(a.ints, s[:0])
}

func (a *arena) getI64s() []int64 {
	if n := len(a.i64s); n > 0 {
		s := a.i64s[n-1]
		a.i64s = a.i64s[:n-1]
		return s
	}
	return make([]int64, 0, 32)
}

func (a *arena) putI64s(s []int64) {
	if cap(s) == 0 {
		return
	}
	a.i64s = append(a.i64s, s[:0])
}

func (a *arena) getBinds() []bind {
	if n := len(a.binds); n > 0 {
		s := a.binds[n-1]
		a.binds = a.binds[:n-1]
		return s
	}
	return make([]bind, 0, 64)
}

func (a *arena) putBinds(s []bind) {
	if cap(s) == 0 {
		return
	}
	a.binds = append(a.binds, s[:0])
}

func (a *arena) getRowSet() map[int32]bool {
	if n := len(a.rowSets); n > 0 {
		m := a.rowSets[n-1]
		a.rowSets = a.rowSets[:n-1]
		return m
	}
	return make(map[int32]bool, 64)
}

func (a *arena) putRowSet(m map[int32]bool) {
	if len(m) > maxPooledSet {
		return
	}
	clear(m)
	a.rowSets = append(a.rowSets, m)
}

// getBitset hands out a cleared bitset of n bits. Bitsets pool without a
// size cap: Set.Reset clears only the words the requested length needs, so a
// set that once grew large never taxes a later, smaller borrower the way an
// oversized map would.
func (a *arena) getBitset(n int) *bitset.Set {
	if k := len(a.bitsets); k > 0 {
		s := a.bitsets[k-1]
		a.bitsets = a.bitsets[:k-1]
		s.Reset(n)
		return s
	}
	return bitset.New(n)
}

func (a *arena) putBitset(s *bitset.Set) {
	a.bitsets = append(a.bitsets, s)
}

func (a *arena) getBindSet() map[bind]bool {
	if n := len(a.bindSets); n > 0 {
		m := a.bindSets[n-1]
		a.bindSets = a.bindSets[:n-1]
		return m
	}
	return make(map[bind]bool, 64)
}

func (a *arena) putBindSet(m map[bind]bool) {
	if len(m) > maxPooledSet {
		return
	}
	clear(m)
	a.bindSets = append(a.bindSets, m)
}
