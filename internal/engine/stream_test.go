package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"lpath/internal/corpus"
	"lpath/internal/lpath"
	"lpath/internal/relstore"
)

func streamCorpus(t testing.TB) *Engine {
	t.Helper()
	tc := corpus.Generate(corpus.Config{Profile: corpus.WSJ, Scale: 0.004, Seed: 9})
	e, err := New(relstore.Build(tc, relstore.SchemeInterval))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// streamQueries exercises every windowed entry point: plain descendants, the
// twig-able runs, positional predicates under the virtual root, value-index
// driving, semijoin-eligible filters, and scoping on the virtual root.
var streamQueries = []string{
	`//NP`,
	`//VB->NP`,
	`//VP//NN`,
	`//_//_//NP`,
	`//S{//NP$}`,
	`//VP{/VB-->NN}`,
	`//NP[not(//JJ) and //NN]`,
	`//_[position()=2]`,
	`//V[@lex=saw]`,
	`//S[//^NP]`,
	`//NN[count(//_)=0]`,
}

// TestEvalLimitParity holds EvalLimit(k) ≡ Eval()[:k] at the engine level,
// across boundary limits and both with and without a plan.
func TestEvalLimitParity(t *testing.T) {
	e := streamCorpus(t)
	for _, text := range streamQueries {
		p := lpath.MustParse(text)
		full, err := e.Eval(p)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		for _, k := range []int{0, 1, 3, len(full), len(full) + 1} {
			got, err := e.EvalLimit(p, k)
			if err != nil {
				t.Fatalf("%s limit %d: %v", text, k, err)
			}
			want := full
			if k < len(full) {
				want = full[:k]
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: EvalLimit(%d) = %d matches, want prefix of len %d",
					text, k, len(got), len(want))
			}
		}
	}
}

// TestStreamOrderAndAbort verifies the streaming contract directly: yields
// arrive in Eval's exact order, and returning false stops the evaluation
// without corrupting the engine's pooled state.
func TestStreamOrderAndAbort(t *testing.T) {
	e := streamCorpus(t)
	p := lpath.MustParse(`//VB->NP`)
	full, err := e.Eval(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 8 {
		t.Fatalf("corpus too small: %d matches", len(full))
	}

	var got []Match
	err = e.Stream(context.Background(), p, func(m Match) bool {
		got = append(got, m)
		return len(got) < 6
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, full[:6]) {
		t.Fatalf("streamed prefix differs: %d matches", len(got))
	}

	// The abort above released the eval context mid-corpus; the pooled
	// arena and twig scratch must still produce correct full evaluations.
	for i := 0; i < 3; i++ {
		again, err := e.Eval(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, full) {
			t.Fatalf("post-abort Eval differs on round %d", i)
		}
	}
}

// TestEvalLimitCancel proves limited evaluation is interrupted cooperatively
// mid-sweep, and that an interrupted limit evaluation does not poison the
// pooled state (the arena-ownership guarantee of the early-exit path).
func TestEvalLimitCancel(t *testing.T) {
	tc := cancelCorpus(t)
	for _, tt := range []struct {
		name string
		opts []Option
	}{
		{"probe", []Option{WithoutPlanner()}},
		{"merge", []Option{WithoutPlanner(), WithMergeAlways()}},
		{"twig", []Option{WithoutPlanner(), WithTwigAlways()}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			e := cancelEngine(t, tc, tt.opts...)
			p := lpath.MustParse(`//_[//_[//NP]]`)

			cctx := newCountdownCtx()
			cctx.setPolls(2)
			if _, err := e.EvalLimitContext(cctx, p, 1_000_000); !errors.Is(err, context.Canceled) {
				t.Fatalf("EvalLimitContext: got err %v, want context.Canceled", err)
			}

			want, err := e.Eval(p)
			if err != nil {
				t.Fatalf("post-cancel Eval: %v", err)
			}
			fresh := cancelEngine(t, tc, tt.opts...)
			ref, err := fresh.Eval(p)
			if err != nil {
				t.Fatalf("fresh Eval: %v", err)
			}
			if !reflect.DeepEqual(want, ref) {
				t.Fatalf("post-cancel results differ: %d vs %d matches", len(want), len(ref))
			}
		})
	}
}

// TestEvalParallelLimitParity holds the sharded limit path to the serial
// contract over several shard and worker counts.
func TestEvalParallelLimitParity(t *testing.T) {
	tc := corpus.Generate(corpus.Config{Profile: corpus.WSJ, Scale: 0.004, Seed: 9})
	serial, err := New(relstore.Build(tc, relstore.SchemeInterval))
	if err != nil {
		t.Fatal(err)
	}
	for _, nshards := range []int{1, 3} {
		shards, err := NewSharded(relstore.BuildShards(tc, relstore.SchemeInterval, nshards))
		if err != nil {
			t.Fatal(err)
		}
		for _, text := range streamQueries {
			p := lpath.MustParse(text)
			full, err := serial.Eval(p)
			if err != nil {
				t.Fatalf("%s: %v", text, err)
			}
			for _, k := range []int{0, 1, 3, len(full), len(full) + 1} {
				got, err := EvalParallelLimit(context.Background(), shards, p, k, WithWorkers(2))
				if err != nil {
					t.Fatalf("%s shards=%d limit=%d: %v", text, nshards, k, err)
				}
				want := full
				if k < len(full) {
					want = full[:k]
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s shards=%d: EvalParallelLimit(%d) = %d matches, want %d",
						text, nshards, k, len(got), len(want))
				}
			}
		}
	}
}

// TestLimitEntryPointsPreCancelled pins the entry checks of the new
// streaming surfaces, mirroring TestContextPreCancelled.
func TestLimitEntryPointsPreCancelled(t *testing.T) {
	e := streamCorpus(t)
	shards, err := NewSharded(relstore.BuildShards(
		corpus.Generate(corpus.Config{Profile: corpus.WSJ, Scale: 0.002, Seed: 9}),
		relstore.SchemeInterval, 2))
	if err != nil {
		t.Fatal(err)
	}
	p := lpath.MustParse(`//NP`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := e.EvalLimitContext(ctx, p, 10); !errors.Is(err, context.Canceled) {
		t.Errorf("EvalLimitContext: got %v", err)
	}
	if err := e.Stream(ctx, p, func(Match) bool { return true }); !errors.Is(err, context.Canceled) {
		t.Errorf("Stream: got %v", err)
	}
	if _, err := EvalParallelLimit(ctx, shards, p, 10); !errors.Is(err, context.Canceled) {
		t.Errorf("EvalParallelLimit: got %v", err)
	}
	// limit <= 0 yields an empty result without evaluating — but never a
	// nil slice.
	if ms, err := e.EvalLimit(p, 0); err != nil || ms == nil || len(ms) != 0 {
		t.Errorf("EvalLimit(0) = %v, %v", ms, err)
	}
	if ms, err := e.EvalLimit(p, -3); err != nil || ms == nil || len(ms) != 0 {
		t.Errorf("EvalLimit(-3) = %v, %v", ms, err)
	}
}
