package engine

import (
	"lpath/internal/bitset"
	"lpath/internal/lpath"
	"lpath/internal/planner"
	"lpath/internal/relstore"
)

// Bitmap execution: dense-bitset kernels over the columnar row index
// (docs/EXECUTION.md, "Bitmap filter kernels"). Two pieces share the
// machinery:
//
//   - The scope-entry kernel replaces the scoped branch's per-scope
//     expansion: the scope frontier becomes one bitset, the entry step's
//     clustered posting range is walked once, and scope membership resolves
//     through the store's parent-pointer column — one array load and a bit
//     test for the child axis, a parent-chain climb for descendants, cut
//     short by edge alignment (rights never decrease and lefts never grow
//     while climbing, so a climb past the first non-aligned ancestor cannot
//     realign).
//
//   - Satisfier bitsets replace the map-based semijoin sets for unscoped
//     filters, and boolean combinations of semijoin-backed filters combine
//     with word-parallel And/Or/AndNot instead of per-candidate recursion.
//     Negations stay symbolic (a complement flag) so no kernel ever
//     materializes the complement of a sparse set.
//
// Both kernels are result-identical to the probe path by construction: the
// scope-entry emits exactly the (row, scope) pairs the scoped expansion
// would after its dedup, and eager satisfier materialization is safe because
// the planner's reversibility gate only registers semijoins on filters that
// cannot error.

// useBitmapEntry decides whether a subtree-scoped tail enters through the
// bitmap kernel. Under bitmapAuto the plan's cost-marked entry decides —
// except when a forced merge or twig mode is measuring a specific executor
// the kernel would shadow. bitmapAlways forces every shape-eligible entry.
func (e *Engine) useBitmapEntry(tail *lpath.Path, ctx *evalCtx) bool {
	if e.bitmap == bitmapOff || len(tail.Steps) == 0 {
		return false
	}
	step := &tail.Steps[0]
	if !planner.BitmapEntryStep(step) {
		return false
	}
	if e.bitmap == bitmapAlways {
		return true
	}
	if e.exec == execAlways || e.twig == twigAlways {
		return false
	}
	sp := ctx.stepPlan(step)
	return sp != nil && sp.Strategy == planner.StrategyBitmap
}

// evalBitmapScoped evaluates a subtree-scoped tail whose first step runs as
// a bitmap scope entry, then re-enters the regular pipeline for the
// remaining steps. cur is read-only here; the caller releases it.
func (e *Engine) evalBitmapScoped(tail *lpath.Path, cur []bind, ctx *evalCtx) ([]bind, error) {
	entry, err := e.bitmapEntry(&tail.Steps[0], cur, ctx)
	if err != nil {
		return nil, err
	}
	if len(entry) == 0 {
		ctx.ar.putBinds(entry)
		return nil, nil
	}
	return e.evalSteps(tail, 1, entry, true, ctx)
}

// bitmapEntry evaluates a scoped tail's first step set-at-a-time. It emits
// every (candidate, scope) pair the scoped probe expansion would — in
// posting order rather than per-scope order, which no downstream consumer
// observes (final results sort, counts are multiset sizes, and each pair is
// emitted exactly once, matching the probe path's cross-binding dedup).
func (e *Engine) bitmapEntry(step *lpath.Step, cur []bind, ctx *evalCtx) ([]bind, error) {
	sp := ctx.stepPlan(step)
	preds := step.Preds
	if sp != nil && sp.Reordered {
		preds = sp.PredExprs()
	}

	// The scope frontier as a bitset; the virtual root stands for every tree
	// root (within the streaming tid window, when one is active). The scope
	// rows themselves came from a windowed pipeline, so no further clamp is
	// needed.
	scopeBits := ctx.ar.getBitset(e.s.Len())
	for _, b := range cur {
		if b.row == noRow {
			for _, ri := range e.narrowToWindow(e.s.Roots(), ctx) {
				scopeBits.Set(ri)
			}
			continue
		}
		scopeBits.Set(b.row)
	}

	// The step's candidates: one clustered posting range (wildcards use the
	// document-order element index), narrowed to the window. Borrowed from
	// the store — never mutated.
	var cands []int32
	if step.Wildcard() {
		cands = e.narrowToWindow(e.s.ElementsByLeft(), ctx)
	} else if lo, hi, ok := e.s.NameRange(step.Test); ok {
		cands = e.narrowToWindow(e.s.RowSeq()[lo:hi], ctx)
	}

	parents := e.s.ParentRows()
	cols := e.s.Cols()
	lefts, rights := cols.Left, cols.Right
	out := ctx.ar.getBinds()
	fail := func(err error) ([]bind, error) {
		ctx.ar.putBitset(scopeBits)
		ctx.ar.putBinds(out)
		return nil, err
	}
	for _, x := range cands {
		if ctx.interrupted() {
			return fail(ctx.cerr)
		}
		if step.Axis == lpath.AxisChild {
			p := parents[x]
			if p == relstore.NoParent || !scopeBits.Has(p) {
				continue
			}
			if step.LeftAlign && lefts[x] != lefts[p] {
				continue
			}
			if step.RightAlign && rights[x] != rights[p] {
				continue
			}
			ok, err := e.bitmapPredsHold(preds, bind{row: x, scope: p}, ctx)
			if err != nil {
				return fail(err)
			}
			if ok {
				out = append(out, bind{row: x, scope: p})
			}
			continue
		}
		// Descendant axes: every scope containing x lies on x's parent chain.
		// descendant-or-self additionally admits x as its own scope (trivially
		// aligned).
		if step.Axis == lpath.AxisDescendantOrSelf && scopeBits.Has(x) {
			ok, err := e.bitmapPredsHold(preds, bind{row: x, scope: x}, ctx)
			if err != nil {
				return fail(err)
			}
			if ok {
				out = append(out, bind{row: x, scope: x})
			}
		}
		for p := parents[x]; p != relstore.NoParent; p = parents[p] {
			if step.LeftAlign && lefts[p] != lefts[x] {
				break
			}
			if step.RightAlign && rights[p] != rights[x] {
				break
			}
			if !scopeBits.Has(p) {
				continue
			}
			ok, err := e.bitmapPredsHold(preds, bind{row: x, scope: p}, ctx)
			if err != nil {
				return fail(err)
			}
			if ok {
				out = append(out, bind{row: x, scope: p})
			}
		}
	}
	ctx.ar.putBitset(scopeBits)
	ctx.countStep(sp, len(out))
	return out, nil
}

// bitmapPredsHold runs the entry step's predicate pipeline on one emitted
// binding. BitmapEntryStep excluded positional predicates, so the (1, 1)
// positional context is inert.
func (e *Engine) bitmapPredsHold(preds []lpath.Expr, b bind, ctx *evalCtx) (bool, error) {
	for _, pred := range preds {
		ok, err := e.evalExpr(pred, b, 1, 1, ctx)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// predBits resolves a predicate to one satisfier bitset plus a complement
// flag, when every leaf of its boolean combination carries a planned
// semijoin. Combinations memoize per (expression, scope) like the leaf sets;
// negation flips the flag and the And/Or cases apply De Morgan so the result
// is always a positive set under And/Or/AndNot kernels. ok is false when
// some leaf has no semijoin (positional, count, string-function or
// forward-only predicates) — the caller falls back to per-candidate
// evaluation. Eager materialization of branches a short-circuit would skip
// is safe: the planner's reversibility gate admits only error-free filters.
func (e *Engine) predBits(x lpath.Expr, scope int32, ctx *evalCtx) (set *bitset.Set, negated, ok bool, err error) {
	switch t := x.(type) {
	case *lpath.NotExpr:
		set, negated, ok, err = e.predBits(t.X, scope, ctx)
		return set, !negated, ok, err
	case *lpath.AndExpr, *lpath.OrExpr:
		key := satKey{expr: x, scope: scope}
		if s, hit := ctx.satBits[key]; hit {
			return s, ctx.satNeg[key], true, nil
		}
		var l, r lpath.Expr
		_, isAnd := t.(*lpath.AndExpr)
		if isAnd {
			a := t.(*lpath.AndExpr)
			l, r = a.L, a.R
		} else {
			o := t.(*lpath.OrExpr)
			l, r = o.L, o.R
		}
		ls, ln, lok, lerr := e.predBits(l, scope, ctx)
		if lerr != nil || !lok {
			return nil, false, false, lerr
		}
		rs, rn, rok, rerr := e.predBits(r, scope, ctx)
		if rerr != nil || !rok {
			return nil, false, false, rerr
		}
		res := ctx.ar.getBitset(e.s.Len())
		var neg bool
		switch {
		case isAnd && !ln && !rn: // L ∧ R
			res.CopyFrom(ls)
			res.And(rs)
		case isAnd && ln && rn: // ¬L ∧ ¬R = ¬(L ∨ R)
			res.CopyFrom(ls)
			res.Or(rs)
			neg = true
		case isAnd && ln: // ¬L ∧ R = R ∖ L
			res.CopyFrom(rs)
			res.AndNot(ls)
		case isAnd: // L ∧ ¬R = L ∖ R
			res.CopyFrom(ls)
			res.AndNot(rs)
		case !ln && !rn: // L ∨ R
			res.CopyFrom(ls)
			res.Or(rs)
		case ln && rn: // ¬L ∨ ¬R = ¬(L ∧ R)
			res.CopyFrom(ls)
			res.And(rs)
			neg = true
		case ln: // ¬L ∨ R = ¬(L ∖ R)
			res.CopyFrom(ls)
			res.AndNot(rs)
			neg = true
		default: // L ∨ ¬R = ¬(R ∖ L)
			res.CopyFrom(rs)
			res.AndNot(ls)
			neg = true
		}
		if ctx.satBits == nil {
			ctx.satBits = make(map[satKey]*bitset.Set)
		}
		ctx.satBits[key] = res
		if neg {
			if ctx.satNeg == nil {
				ctx.satNeg = make(map[satKey]bool)
			}
			ctx.satNeg[key] = true
		}
		return res, neg, true, nil
	default:
		sj := ctx.semijoin(x)
		if sj == nil {
			return nil, false, false, nil
		}
		s, serr := e.satisfierBits(sj, x, scope, ctx)
		if serr != nil {
			return nil, false, false, serr
		}
		return s, false, true, nil
	}
}

// satisfierBits is the bitset counterpart of semiHolds' satisfier sets,
// memoized per (filter expression, scope) on the evaluation context and
// recycled through the arena between evaluations.
func (e *Engine) satisfierBits(sj *planner.Semijoin, x lpath.Expr, scope int32, ctx *evalCtx) (*bitset.Set, error) {
	key := satKey{expr: x, scope: scope}
	if set, ok := ctx.satBits[key]; ok {
		return set, nil
	}
	// Batched evaluation: an unscoped satisfier set is a pure function of the
	// filter's canonical key (planner.Semijoin.Key) against the store, so a
	// batch mate that materialized an identical filter shares it with one
	// word-parallel copy instead of a recomputation. The local entry stays an
	// arena set (clearSat recycles it); the batch keeps a heap-owned copy.
	shared := ctx.batch != nil && scope == noRow && !ctx.windowed && ctx.act == nil && sj.Key != ""
	if shared {
		if cached, ok := ctx.batch.satBits[sj.Key]; ok {
			ctx.batch.stats.SatHits++
			set := ctx.ar.getBitset(e.s.Len())
			set.CopyFrom(cached)
			if ctx.satBits == nil {
				ctx.satBits = make(map[satKey]*bitset.Set)
			}
			ctx.satBits[key] = set
			return set, nil
		}
		ctx.batch.stats.SatMisses++
	}
	set, err := e.bitsetSatisfiers(sj, x, scope, ctx)
	if err != nil {
		return nil, err
	}
	if ctx.satBits == nil {
		ctx.satBits = make(map[satKey]*bitset.Set)
	}
	ctx.satBits[key] = set
	if shared {
		cp := bitset.New(e.s.Len())
		cp.CopyFrom(set)
		ctx.batch.satBits[sj.Key] = cp
	}
	return set, nil
}

// bitsetSatisfiers mirrors satisfiers (semijoin.go) with dense sets: the
// per-level dedup map becomes one pooled bitset cleared between levels, and
// the final satisfier set is a bitset ready for word-parallel combination.
func (e *Engine) bitsetSatisfiers(sj *planner.Semijoin, x lpath.Expr, scope int32, ctx *evalCtx) (*bitset.Set, error) {
	steps := sj.Head.Steps
	cur, err := e.semiSeeds(sj, scope, ctx)
	if err != nil {
		return nil, err
	}
	nSeeds := len(cur)

	seen := ctx.ar.getBitset(e.s.Len())
	for i := len(steps) - 1; i >= 1 && len(cur) > 0; i-- {
		inv, _ := lpath.InverseAxis(steps[i].Axis)
		prev := &steps[i-1]
		synth := lpath.Step{Axis: inv, Test: prev.Test}
		next := cur[:0:0]
		seen.Reset(e.s.Len())
		for _, ri := range cur {
			cands, borrowed := e.axisCandidates(&synth, bind{row: ri, scope: scope}, ctx)
			for _, ci := range cands {
				if seen.Has(ci) {
					continue
				}
				seen.Set(ci)
				if !e.inScopeRow(scope, ci) {
					continue
				}
				ok, perr := e.semiPredsHold(prev.Preds, ci, scope, "", "", ctx)
				if perr != nil {
					if !borrowed {
						ctx.ar.putInts(cands)
					}
					ctx.ar.putBitset(seen)
					return nil, perr
				}
				if ok {
					next = append(next, ci)
				}
			}
			if !borrowed {
				ctx.ar.putInts(cands)
			}
		}
		cur = next
	}
	ctx.ar.putBitset(seen)

	out := ctx.ar.getBitset(e.s.Len())
	inv0, _ := lpath.InverseAxis(steps[0].Axis)
	synth := lpath.Step{Axis: inv0, Test: "_"}
	for _, ri := range cur {
		cands, borrowed := e.axisCandidates(&synth, bind{row: ri, scope: scope}, ctx)
		for _, ci := range cands {
			out.Set(ci)
		}
		if !borrowed {
			ctx.ar.putInts(cands)
		}
	}
	if ctx.act != nil {
		ctx.countSemi(x, nSeeds, out.Count())
	}
	return out, nil
}
