// Batched multi-query evaluation. A batch evaluates N compiled queries
// against one store generation in a single pass, sharing work the canonical
// structural keys of the plan IR prove equal across queries (planner:
// StepPlan.Key, Semijoin.Key): whole-query result rows, main-path step
// frontiers, and unscoped predicate satisfier bitsets. The memo lives for
// one batch only — queries inside a batch run sequentially per engine (per
// shard under EvalBatchParallel), so it needs no locking, and every result a
// later query may reuse is copied to the heap before the arena reclaims it.
//
// The contract is the batch identity property, held by the differential
// tests and FuzzEvalOracle: EvalBatch(paths)[i] is element-wise identical to
// Eval(paths[i]), errors included.

package engine

import (
	"context"

	"lpath/internal/bitset"
	"lpath/internal/lpath"
	"lpath/internal/planner"
)

// BatchStats reports the cross-query sharing a batch achieved: hits and
// misses of the whole-query rows memo, the main-path frontier memo, and the
// satisfier-bitset memo.
type BatchStats struct {
	RowsHits, RowsMisses         int
	FrontierHits, FrontierMisses int
	SatHits, SatMisses           int
}

// Add accumulates another batch's counters into s, for callers aggregating
// sharing across several EvalBatchStats passes.
func (s *BatchStats) Add(o BatchStats) { s.add(o) }

func (s *BatchStats) add(o BatchStats) {
	s.RowsHits += o.RowsHits
	s.RowsMisses += o.RowsMisses
	s.FrontierHits += o.FrontierHits
	s.FrontierMisses += o.FrontierMisses
	s.SatHits += o.SatHits
	s.SatMisses += o.SatMisses
}

// batchMemo is the per-batch shared memo. All values are heap-owned: binds
// and rows are private copies, and the bitsets are allocated outside the
// arena (the evaluation contexts that populate them return their own sets to
// the arena between queries).
type batchMemo struct {
	// rows caches the final distinct (tid,id)-ordered result rows per
	// canonical query text — the singleflight layer for duplicate queries.
	rows map[string][]int32
	// frontiers caches the binding frontier after the main path's step
	// sequence (before any scoped tail), keyed by the plan's MainKey.
	frontiers map[string][]bind
	// satBits caches unscoped semijoin satisfier bitsets by Semijoin.Key.
	satBits map[string]*bitset.Set
	stats   BatchStats
}

func newBatchMemo() *batchMemo {
	return &batchMemo{
		rows:      make(map[string][]int32),
		frontiers: make(map[string][]bind),
		satBits:   make(map[string]*bitset.Set),
	}
}

// frontierKey returns the memo key under which this evalSteps invocation's
// step frontier is shared across the batch, or "" when it is not shareable:
// the call must be the full main path from the virtual root, unwindowed and
// uninstrumented, with a plan that stamped canonical keys.
func (c *evalCtx) frontierKey(p *lpath.Path, start int, binds []bind) string {
	if c.batch == nil || start != 0 || c.windowed || c.act != nil || c.plan == nil {
		return ""
	}
	if len(p.Steps) == 0 || len(binds) != 1 || binds[0].row != noRow {
		return ""
	}
	return c.plan.MainKey(p)
}

// EvalBatch evaluates the queries in one shared-memo pass and returns one
// result slice and one error slot per query, positionally. A failing query
// does not disturb its batch mates; every slot mirrors exactly what Eval
// would have returned for that query alone.
func (e *Engine) EvalBatch(paths []*lpath.Path) ([][]Match, []error) {
	return e.EvalBatchContext(context.Background(), paths)
}

// EvalBatchContext is EvalBatch honoring a context for cooperative
// cancellation: once the context is done, remaining queries report its error.
func (e *Engine) EvalBatchContext(cctx context.Context, paths []*lpath.Path) ([][]Match, []error) {
	out, errs, _ := e.EvalBatchStats(cctx, paths, nil)
	return out, errs
}

// EvalBatchLimit is EvalBatchContext with a per-query result cap. limits may
// be nil (no caps); otherwise it is parallel to paths, where a negative
// limit means unlimited and zero yields an empty result. Capped slots are
// the exact prefix of the query's full evaluation — the batch evaluates
// fully so its memo stays valid for batch mates, then truncates.
func (e *Engine) EvalBatchLimit(cctx context.Context, paths []*lpath.Path, limits []int) ([][]Match, []error) {
	out, errs, _ := e.EvalBatchStats(cctx, paths, limits)
	return out, errs
}

// EvalBatchStats is EvalBatchLimit additionally reporting the memo hit rates
// the batch achieved.
func (e *Engine) EvalBatchStats(cctx context.Context, paths []*lpath.Path, limits []int) ([][]Match, []error, BatchStats) {
	plans := make([]*planner.Plan, len(paths))
	for i, p := range paths {
		plans[i] = e.Plan(p)
	}
	return e.EvalBatchPlans(cctx, paths, plans, limits)
}

// EvalBatchPlans is EvalBatchStats over pre-resolved (path, plan) pairs —
// the serving path, where compiled plans come from a plan cache. plans and
// limits may be nil (plan per query here / no caps); a nil path marks a slot
// to skip (it failed compilation upstream), leaving its result and error
// slots untouched.
func (e *Engine) EvalBatchPlans(cctx context.Context, paths []*lpath.Path, plans []*planner.Plan, limits []int) ([][]Match, []error, BatchStats) {
	memo := newBatchMemo()
	out := make([][]Match, len(paths))
	errs := make([]error, len(paths))
	for i, p := range paths {
		if p == nil {
			continue
		}
		limit := -1
		if limits != nil {
			limit = limits[i]
		}
		plan := e.Plan(p)
		if plans != nil {
			plan = plans[i]
		}
		out[i], errs[i] = e.evalBatchOne(cctx, p, plan, limit, memo)
	}
	return out, errs, memo.stats
}

// CountBatch counts each query's distinct matches in one shared-memo pass;
// slot i mirrors Count(paths[i]).
func (e *Engine) CountBatch(cctx context.Context, paths []*lpath.Path) ([]int, []error) {
	memo := newBatchMemo()
	out := make([]int, len(paths))
	errs := make([]error, len(paths))
	for i, p := range paths {
		rows, err := e.batchRows(cctx, p, e.Plan(p), memo)
		if err != nil {
			errs[i] = err
			continue
		}
		out[i] = len(rows)
	}
	return out, errs
}

// evalBatchOne evaluates one query of a batch: resolve the distinct result
// rows through the memo, then materialize this query's own Match slice
// (truncated when limit >= 0).
func (e *Engine) evalBatchOne(cctx context.Context, p *lpath.Path, plan *planner.Plan, limit int, memo *batchMemo) ([]Match, error) {
	rows, err := e.batchRows(cctx, p, plan, memo)
	if err != nil {
		return nil, err
	}
	if limit == 0 {
		return []Match{}, nil
	}
	n := len(rows)
	if limit > 0 && n > limit {
		n = limit
	}
	out := make([]Match, 0, n)
	for _, ri := range rows[:n] {
		r := e.s.Row(ri)
		out = append(out, Match{TreeID: int(r.TID), Node: e.s.NodeFor(r)})
	}
	return out, nil
}

// batchRows returns the query's distinct result rows in (tid,id) order,
// served from the batch memo when an identical query already ran. The
// returned slice is memo-owned; callers must not mutate it.
func (e *Engine) batchRows(cctx context.Context, p *lpath.Path, plan *planner.Plan, memo *batchMemo) ([]int32, error) {
	if err := lpath.Validate(p); err != nil {
		return nil, err
	}
	if err := cctx.Err(); err != nil {
		return nil, err
	}
	key := p.String()
	if plan != nil {
		key = plan.Text
	}
	if rows, ok := memo.rows[key]; ok {
		memo.stats.RowsHits++
		return rows, nil
	}
	memo.stats.RowsMisses++
	ctx := e.newEvalCtx(plan, cctx)
	ctx.batch = memo
	defer e.releaseCtx(ctx)
	arRows, err := e.evalRows(p, ctx)
	if err != nil {
		return nil, err
	}
	rows := append([]int32(nil), arRows...)
	ctx.ar.putInts(arRows)
	memo.rows[key] = rows
	return rows, nil
}

// EvalBatchParallel runs the batch over the shards with shards as the unit
// of work: each shard visit evaluates all N queries under one per-shard
// batch memo, and each query's per-shard results merge back into global
// (tid, id) order — slot i is identical to EvalParallel(ctx, shards,
// paths[i]), errors included, with the same deterministic lowest-shard error
// choice. A failing query never disturbs its batch mates; cancelling ctx
// surfaces the context error on every query it interrupted.
func EvalBatchParallel(ctx context.Context, shards []*Engine, paths []*lpath.Path, opts ...ParallelOption) ([][]Match, []error) {
	cfg := parallelConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	out := make([][]Match, len(paths))
	errs := make([]error, len(paths))
	if len(paths) == 0 {
		return out, errs
	}
	if len(shards) == 0 {
		for i, p := range paths {
			if errs[i] = lpath.Validate(p); errs[i] != nil {
				continue
			}
			if errs[i] = ctx.Err(); errs[i] == nil {
				out[i] = []Match{}
			}
		}
		return out, errs
	}
	// Plan once per query: shard engines share the corpus-global statistics
	// snapshot, so one plan serves every shard.
	plans := make([]*planner.Plan, len(paths))
	for i, p := range paths {
		if lpath.Validate(p) == nil {
			plans[i] = shards[0].Plan(p)
		}
	}
	perShard := make([][][]Match, len(shards))
	perShardErr := make([][]error, len(shards))
	_ = runShards(ctx, len(shards), cfg.workers, func(sctx context.Context, si int) error {
		memo := newBatchMemo()
		ms := make([][]Match, len(paths))
		es := make([]error, len(paths))
		for qi, p := range paths {
			ms[qi], es[qi] = shards[si].evalBatchOne(sctx, p, plans[qi], -1, memo)
		}
		perShard[si] = ms
		perShardErr[si] = es
		return nil // per-query errors propagate positionally, not per shard
	})
	for qi := range paths {
		parts := make([][]Match, 0, len(shards))
		var qerr error
		missing := false
		for si := range shards {
			switch {
			case perShardErr[si] == nil:
				missing = true // shard drained after cancellation
			case perShardErr[si][qi] != nil:
				if err := perShardErr[si][qi]; !isCancel(err) {
					if qerr == nil {
						qerr = err // lowest shard's real failure wins
					}
				} else {
					missing = true
				}
			default:
				parts = append(parts, perShard[si][qi])
			}
		}
		switch {
		case qerr != nil:
			errs[qi] = qerr
		case missing:
			if errs[qi] = ctx.Err(); errs[qi] == nil {
				errs[qi] = context.Canceled
			}
		default:
			out[qi] = mergeByTree(parts)
		}
	}
	return out, errs
}
