package engine

import (
	"context"

	"lpath/internal/lpath"
	"lpath/internal/planner"
)

// Streaming evaluation with early termination (docs/EXECUTION.md). The
// engine's executors produce a tree's matches only after sweeping that
// tree's candidates, so per-match streaming from inside a sweep would either
// break the deterministic (tid, id) output order or force a cross-executor
// reordering buffer. Instead the stream evaluates the pipeline over
// successive disjoint tree-ID windows: axes never cross trees (the same
// per-tree decomposability the sharded parallel path exploits), so the
// concatenation of per-window results in ascending tid order is exactly the
// full evaluation's output — and the evaluation stops cold, mid-corpus, the
// moment the consumer has seen enough.
//
// Windows grow geometrically from streamBatchTrees by streamBatchGrowth: a
// limit-k query over a high-match corpus touches only the first few dozen
// trees, while a selective query degrades gracefully to full evaluation plus
// O(log trees) per-window fixed costs (the windows are disjoint, so no tree
// is ever evaluated twice).
const (
	streamBatchTrees  = 32
	streamBatchGrowth = 4
)

// StreamPlan evaluates the query executing the given plan (nil = the default
// strategy) and calls yield for every match in the exact (tree, document)
// order Eval produces. Evaluation stops — abandoning all remaining trees —
// when yield returns false. The context cancels cooperatively, exactly like
// EvalPlanContext.
func (e *Engine) StreamPlan(cctx context.Context, p *lpath.Path, plan *planner.Plan, yield func(Match) bool) error {
	if err := lpath.Validate(p); err != nil {
		return err
	}
	if err := cctx.Err(); err != nil {
		return err
	}
	roots := e.s.Roots()
	if len(roots) == 0 {
		return nil
	}
	tids := e.s.Cols().TID
	ctx := e.newEvalCtx(plan, cctx)
	defer e.releaseCtx(ctx)
	ctx.windowed = true
	batch := streamBatchTrees
	for lo := 0; lo < len(roots); lo, batch = lo+batch, batch*streamBatchGrowth {
		hi := lo + batch
		if hi >= len(roots) {
			hi = len(roots)
			ctx.winHi = maxInt32
		} else {
			ctx.winHi = tids[roots[hi]]
		}
		ctx.winLo = tids[roots[lo]]
		rows, err := e.evalRows(p, ctx)
		if err != nil {
			return err
		}
		stop := false
		for _, ri := range rows {
			r := e.s.Row(ri)
			if !yield(Match{TreeID: int(r.TID), Node: e.s.NodeFor(r)}) {
				stop = true
				break
			}
		}
		ctx.ar.putInts(rows)
		if stop {
			return nil
		}
		// Semijoin satisfier sets were seeded from this window's trees only;
		// they must not answer the next window's probes.
		ctx.clearSat()
	}
	return nil
}

// Stream is StreamPlan planning the query first, like Eval.
func (e *Engine) Stream(cctx context.Context, p *lpath.Path, yield func(Match) bool) error {
	return e.StreamPlan(cctx, p, e.Plan(p), yield)
}

// EvalLimit evaluates the query and returns at most limit matches — exactly
// the first limit entries of Eval's (tree, document)-ordered result — while
// terminating the evaluation early: trees past the one holding the limit-th
// match are never visited. limit <= 0 returns an empty (non-nil) slice.
func (e *Engine) EvalLimit(p *lpath.Path, limit int) ([]Match, error) {
	return e.EvalPlanLimitContext(context.Background(), p, e.Plan(p), limit)
}

// EvalLimitContext is EvalLimit honoring a context for cooperative
// cancellation.
func (e *Engine) EvalLimitContext(cctx context.Context, p *lpath.Path, limit int) ([]Match, error) {
	return e.EvalPlanLimitContext(cctx, p, e.Plan(p), limit)
}

// EvalPlanLimitContext is EvalLimitContext executing the given plan (nil =
// the default strategy).
func (e *Engine) EvalPlanLimitContext(cctx context.Context, p *lpath.Path, plan *planner.Plan, limit int) ([]Match, error) {
	if limit <= 0 {
		if err := lpath.Validate(p); err != nil {
			return nil, err
		}
		if err := cctx.Err(); err != nil {
			return nil, err
		}
		return []Match{}, nil
	}
	out := make([]Match, 0, min(limit, 256))
	err := e.StreamPlan(cctx, p, plan, func(m Match) bool {
		out = append(out, m)
		return len(out) < limit
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
