package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"lpath/internal/lpath"
	"lpath/internal/relstore"
	"lpath/internal/tree"
)

func shardEngines(t *testing.T, c *tree.Corpus, k int) []*Engine {
	t.Helper()
	shards, err := NewSharded(relstore.BuildShards(c, relstore.SchemeInterval, k))
	if err != nil {
		t.Fatal(err)
	}
	return shards
}

// TestEvalParallelMatchesSerial is the core equivalence property: on random
// corpora, for every query in the cross-validation corpus, every shard
// count and every worker count, EvalParallel returns exactly Engine.Eval's
// result — same matches, same order.
func TestEvalParallelMatchesSerial(t *testing.T) {
	plans := make([]*lpath.Path, len(queryCorpus))
	for i, q := range queryCorpus {
		plans[i] = lpath.MustParse(q)
	}
	for seed := int64(1); seed <= 4; seed++ {
		c := randomCorpus(seed, 7)
		serial := buildEngine(t, c)
		want := make([][]Match, len(plans))
		for i, p := range plans {
			ms, err := serial.Eval(p)
			if err != nil {
				t.Fatalf("seed %d: serial %q: %v", seed, queryCorpus[i], err)
			}
			want[i] = ms
		}
		for _, k := range []int{1, 3, 7} {
			shards := shardEngines(t, c, k)
			for _, workers := range []int{1, 3} {
				for i, p := range plans {
					got, err := EvalParallel(context.Background(), shards, p, WithWorkers(workers))
					if err != nil {
						t.Fatalf("seed %d k=%d w=%d: parallel %q: %v", seed, k, workers, queryCorpus[i], err)
					}
					if len(got) == 0 && len(want[i]) == 0 {
						continue
					}
					if !reflect.DeepEqual(got, want[i]) {
						t.Errorf("seed %d k=%d w=%d: %q: parallel %d matches, serial %d",
							seed, k, workers, queryCorpus[i], len(got), len(want[i]))
					}
				}
			}
		}
	}
}

func TestEvalParallelDefaultWorkers(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	shards := shardEngines(t, c, 1)
	// Workers below 1 fall back to GOMAXPROCS; both must succeed.
	for _, w := range []int{-1, 0, 99} {
		ms, err := EvalParallel(context.Background(), shards, lpath.MustParse(`//NP`), WithWorkers(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(ms) != 4 {
			t.Errorf("workers=%d: %d matches, want 4", w, len(ms))
		}
	}
}

func TestEvalParallelEmptyShards(t *testing.T) {
	ms, err := EvalParallel(context.Background(), nil, lpath.MustParse(`//NP`))
	if err != nil || len(ms) != 0 {
		t.Errorf("empty shard set: %d matches, %v", len(ms), err)
	}
}

func TestEvalParallelValidationError(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	shards := shardEngines(t, c, 2)
	if _, err := EvalParallel(context.Background(), shards, lpath.MustParse(`//S@lex`)); err == nil {
		t.Error("expected validation error for attribute step in main path")
	}
}

func TestEvalParallelCancelledContext(t *testing.T) {
	c := randomCorpus(5, 6)
	shards := shardEngines(t, c, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvalParallel(ctx, shards, lpath.MustParse(`//NP`)); err == nil {
		t.Error("expected context error after cancellation")
	}
}

func TestMergeByTree(t *testing.T) {
	n := &tree.Node{Tag: "X"}
	m := func(tid int) Match { return Match{TreeID: tid, Node: n} }
	got := mergeByTree([][]Match{
		{m(1), m(1), m(4)},
		{m(2), m(3), m(3)},
		nil,
		{m(5)},
	})
	want := []int{1, 1, 2, 3, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("merged %d matches, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].TreeID != w {
			t.Errorf("merged[%d].TreeID = %d, want %d", i, got[i].TreeID, w)
		}
	}
	// The empty merge is a non-nil empty slice, mirroring Engine.Eval, so
	// EvalParallel is byte-identical to serial even on zero matches.
	for _, in := range [][][]Match{nil, {nil, nil}} {
		if m := mergeByTree(in); m == nil || len(m) != 0 {
			t.Errorf("empty merge = %#v, want non-nil empty slice", m)
		}
	}
}

// TestRunShardsErrorPropagation pins the worker-pool error contract: a
// shard's real error is returned verbatim (and deterministically — the
// lowest recorded shard index wins over scheduling), real errors always win
// over cancellation noise from the fail-fast cancel, and a cancelled parent
// context surfaces as the parent's own error.
func TestRunShardsErrorPropagation(t *testing.T) {
	boom := errors.New("shard exploded")

	t.Run("single failing shard", func(t *testing.T) {
		for trial := 0; trial < 25; trial++ {
			err := runShards(context.Background(), 8, 4, func(ctx context.Context, i int) error {
				if i == 5 {
					return boom
				}
				return nil
			})
			if !errors.Is(err, boom) {
				t.Fatalf("trial %d: got %v, want %v", trial, err, boom)
			}
		}
	})

	t.Run("identical failure on every shard", func(t *testing.T) {
		for trial := 0; trial < 25; trial++ {
			err := runShards(context.Background(), 8, 4, func(ctx context.Context, i int) error {
				return boom
			})
			if !errors.Is(err, boom) {
				t.Fatalf("trial %d: got %v, want %v", trial, err, boom)
			}
		}
	})

	t.Run("real error beats in-flight cancellation", func(t *testing.T) {
		// Shards that observe the fail-fast cancel return ctx.Err(); the one
		// real error must still be the reported one.
		for trial := 0; trial < 25; trial++ {
			err := runShards(context.Background(), 8, 4, func(ctx context.Context, i int) error {
				if i == 2 {
					return boom
				}
				<-ctx.Done()
				return ctx.Err()
			})
			if !errors.Is(err, boom) {
				t.Fatalf("trial %d: got %v, want %v", trial, err, boom)
			}
		}
	})

	t.Run("parent cancellation surfaces as parent error", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		err := runShards(ctx, 8, 4, func(ctx context.Context, i int) error {
			return ctx.Err() // shards that started before the flag observed it
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	})

	t.Run("no failure returns nil", func(t *testing.T) {
		if err := runShards(context.Background(), 8, 4, func(ctx context.Context, i int) error { return nil }); err != nil {
			t.Fatalf("got %v, want nil", err)
		}
	})
}
