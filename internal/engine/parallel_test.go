package engine

import (
	"context"
	"reflect"
	"testing"

	"lpath/internal/lpath"
	"lpath/internal/relstore"
	"lpath/internal/tree"
)

func shardEngines(t *testing.T, c *tree.Corpus, k int) []*Engine {
	t.Helper()
	shards, err := NewSharded(relstore.BuildShards(c, relstore.SchemeInterval, k))
	if err != nil {
		t.Fatal(err)
	}
	return shards
}

// TestEvalParallelMatchesSerial is the core equivalence property: on random
// corpora, for every query in the cross-validation corpus, every shard
// count and every worker count, EvalParallel returns exactly Engine.Eval's
// result — same matches, same order.
func TestEvalParallelMatchesSerial(t *testing.T) {
	plans := make([]*lpath.Path, len(queryCorpus))
	for i, q := range queryCorpus {
		plans[i] = lpath.MustParse(q)
	}
	for seed := int64(1); seed <= 4; seed++ {
		c := randomCorpus(seed, 7)
		serial := buildEngine(t, c)
		want := make([][]Match, len(plans))
		for i, p := range plans {
			ms, err := serial.Eval(p)
			if err != nil {
				t.Fatalf("seed %d: serial %q: %v", seed, queryCorpus[i], err)
			}
			want[i] = ms
		}
		for _, k := range []int{1, 3, 7} {
			shards := shardEngines(t, c, k)
			for _, workers := range []int{1, 3} {
				for i, p := range plans {
					got, err := EvalParallel(context.Background(), shards, p, WithWorkers(workers))
					if err != nil {
						t.Fatalf("seed %d k=%d w=%d: parallel %q: %v", seed, k, workers, queryCorpus[i], err)
					}
					if len(got) == 0 && len(want[i]) == 0 {
						continue
					}
					if !reflect.DeepEqual(got, want[i]) {
						t.Errorf("seed %d k=%d w=%d: %q: parallel %d matches, serial %d",
							seed, k, workers, queryCorpus[i], len(got), len(want[i]))
					}
				}
			}
		}
	}
}

func TestEvalParallelDefaultWorkers(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	shards := shardEngines(t, c, 1)
	// Workers below 1 fall back to GOMAXPROCS; both must succeed.
	for _, w := range []int{-1, 0, 99} {
		ms, err := EvalParallel(context.Background(), shards, lpath.MustParse(`//NP`), WithWorkers(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(ms) != 4 {
			t.Errorf("workers=%d: %d matches, want 4", w, len(ms))
		}
	}
}

func TestEvalParallelEmptyShards(t *testing.T) {
	ms, err := EvalParallel(context.Background(), nil, lpath.MustParse(`//NP`))
	if err != nil || len(ms) != 0 {
		t.Errorf("empty shard set: %d matches, %v", len(ms), err)
	}
}

func TestEvalParallelValidationError(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	shards := shardEngines(t, c, 2)
	if _, err := EvalParallel(context.Background(), shards, lpath.MustParse(`//S@lex`)); err == nil {
		t.Error("expected validation error for attribute step in main path")
	}
}

func TestEvalParallelCancelledContext(t *testing.T) {
	c := randomCorpus(5, 6)
	shards := shardEngines(t, c, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvalParallel(ctx, shards, lpath.MustParse(`//NP`)); err == nil {
		t.Error("expected context error after cancellation")
	}
}

func TestMergeByTree(t *testing.T) {
	n := &tree.Node{Tag: "X"}
	m := func(tid int) Match { return Match{TreeID: tid, Node: n} }
	got := mergeByTree([][]Match{
		{m(1), m(1), m(4)},
		{m(2), m(3), m(3)},
		nil,
		{m(5)},
	})
	want := []int{1, 1, 2, 3, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("merged %d matches, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].TreeID != w {
			t.Errorf("merged[%d].TreeID = %d, want %d", i, got[i].TreeID, w)
		}
	}
	// The empty merge is a non-nil empty slice, mirroring Engine.Eval, so
	// EvalParallel is byte-identical to serial even on zero matches.
	for _, in := range [][][]Match{nil, {nil, nil}} {
		if m := mergeByTree(in); m == nil || len(m) != 0 {
			t.Errorf("empty merge = %#v, want non-nil empty slice", m)
		}
	}
}
