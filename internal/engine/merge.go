package engine

import (
	"sort"

	"lpath/internal/lpath"
	"lpath/internal/planner"
)

// Set-at-a-time merge execution (docs/EXECUTION.md). Instead of probing the
// store once per context binding, the merge executor joins the whole frontier
// against the step's posting list — the clustered name range (zero-copy via
// the identity row sequence), or the document-order index for wildcards — in
// one forward sweep. The interval labeling is what makes this possible: both
// sides are (tid, left)- or (tid, right)-ordered, every Table 2 axis relation
// is a range condition on those orders, and subtree spans form a laminar
// family, so overlapping context work can be pruned instead of deduplicated
// after the fact.
//
// The sweep advances a single posting cursor with galloping (exponential)
// search, so a step costs O(Σ log gap + results) — bounded by the posting
// list length, however many context bindings fan in. The planner's cost
// model (planner.StepPlan.Strategy) decides per step whether this beats
// per-binding probes; WithMergeAlways forces it for differential testing.

// evalStepMerge evaluates one step set-at-a-time. The frontier is grouped by
// scope (candidate membership is a pure function of (context, scope)); each
// group is merged in one sweep, scope-filtered, and pushed through the
// predicate pipeline. Within a group every result row is emitted exactly
// once — the per-axis merges produce duplicate-free unions by construction —
// so no cross-binding dedup set is needed.
func (e *Engine) evalStepMerge(step *lpath.Step, sp *planner.StepPlan, preds []lpath.Expr, binds []bind, ctx *evalCtx) ([]bind, error) {
	work := append(ctx.ar.getBinds(), binds...)
	sort.Slice(work, func(i, j int) bool {
		if work[i].scope != work[j].scope {
			return work[i].scope < work[j].scope
		}
		return work[i].row < work[j].row
	})
	out := ctx.ar.getBinds()
	ctxRows := ctx.ar.getInts()
	cands := ctx.ar.getInts()
	cols := e.s.Cols()
	for gi := 0; gi < len(work); {
		if ctx.interrupted() {
			ctx.ar.putInts(cands)
			ctx.ar.putInts(ctxRows)
			ctx.ar.putBinds(work)
			ctx.ar.putBinds(out)
			return nil, ctx.cerr
		}
		scope := work[gi].scope
		gj := gi
		for gj < len(work) && work[gj].scope == scope {
			gj++
		}
		ctxRows = ctxRows[:0]
		for _, b := range work[gi:gj] {
			ctxRows = append(ctxRows, b.row)
		}
		gi = gj
		cands = e.mergeAxis(step, scope, ctxRows, cands[:0])
		if scope != noRow {
			st, sl, sr, sd := cols.TID[scope], cols.Left[scope], cols.Right[scope], cols.Depth[scope]
			kept := cands[:0]
			for _, ci := range cands {
				if cols.TID[ci] == st && cols.Left[ci] >= sl && cols.Right[ci] <= sr && cols.Depth[ci] >= sd {
					kept = append(kept, ci)
				}
			}
			cands = kept
		}
		for _, pred := range preds {
			var err error
			cands, err = e.filterPred(pred, scope, cands, ctx)
			if err != nil {
				ctx.ar.putInts(cands)
				ctx.ar.putInts(ctxRows)
				ctx.ar.putBinds(work)
				ctx.ar.putBinds(out)
				return nil, err
			}
			if len(cands) == 0 {
				break
			}
		}
		for _, ci := range cands {
			out = append(out, bind{row: ci, scope: scope})
		}
	}
	ctx.ar.putInts(cands)
	ctx.ar.putInts(ctxRows)
	ctx.ar.putBinds(work)
	ctx.countStep(sp, len(out))
	return out, nil
}

// mergeAxis appends the duplicate-free union of the axis sets of all context
// rows (which share one scope) to dst. ctxs may be reordered in place.
func (e *Engine) mergeAxis(step *lpath.Step, scope int32, ctxs, dst []int32) []int32 {
	wild := step.Wildcard()
	var nlo, nhi int32
	byRight := false
	switch step.Axis {
	case lpath.AxisPreceding, lpath.AxisPrecedingOrSelf, lpath.AxisImmediatePreceding:
		byRight = true
	}
	var post []int32
	if wild {
		if byRight {
			post = e.s.ElementsByRight()
		} else {
			post = e.s.ElementsByLeft()
		}
	} else {
		var ok bool
		nlo, nhi, ok = e.s.NameRange(step.Test)
		if !ok {
			return dst
		}
		if byRight {
			post = e.s.NameByRight(step.Test)
		} else {
			post = e.s.RowSeq()[nlo:nhi]
		}
	}
	// The scope's span clamps the horizontal sweeps sargably, mirroring the
	// probe path; the full scope check still runs afterwards.
	clampL, clampR := int32(0), maxInt32
	if scope != noRow {
		cols := e.s.Cols()
		clampL, clampR = cols.Left[scope], cols.Right[scope]
	}
	switch step.Axis {
	case lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
		return e.mergeDescendant(post, ctxs, dst, step.Axis == lpath.AxisDescendantOrSelf)
	case lpath.AxisChild:
		return e.mergeChild(post, ctxs, dst)
	case lpath.AxisFollowing, lpath.AxisFollowingOrSelf:
		return e.mergeFollowing(post, ctxs, dst, step.Axis == lpath.AxisFollowingOrSelf, wild, nlo, nhi, clampR-1)
	case lpath.AxisPreceding, lpath.AxisPrecedingOrSelf:
		return e.mergePreceding(post, ctxs, dst, step.Axis == lpath.AxisPrecedingOrSelf, wild, nlo, nhi, clampL+1)
	case lpath.AxisImmediateFollowing:
		return e.mergeImmFollowing(post, ctxs, dst)
	case lpath.AxisImmediatePreceding:
		return e.mergeImmPreceding(post, ctxs, dst)
	}
	return dst
}

// mergeDescendant is the staircase structural join: contexts sorted by
// (tid, left, depth), contexts whose subtree lies inside the previous kept
// context's subtree pruned (their descendants are a subset — laminarity),
// and the survivors, whose spans are pairwise disjoint, swept against the
// left-ordered posting list with one monotone cursor.
func (e *Engine) mergeDescendant(post, ctxs, dst []int32, orSelf bool) []int32 {
	cols := e.s.Cols()
	tids, lefts, rights, depths := cols.TID, cols.Left, cols.Right, cols.Depth
	sort.Slice(ctxs, func(i, j int) bool {
		a, b := ctxs[i], ctxs[j]
		if tids[a] != tids[b] {
			return tids[a] < tids[b]
		}
		if lefts[a] != lefts[b] {
			return lefts[a] < lefts[b]
		}
		return depths[a] < depths[b]
	})
	kept := ctxs[:0]
	for _, c := range ctxs {
		if n := len(kept); n > 0 {
			top := kept[n-1]
			if tids[top] == tids[c] && rights[c] <= rights[top] {
				continue // c's subtree ⊆ top's: its results are covered
			}
		}
		kept = append(kept, c)
	}
	p, n := 0, len(post)
	for _, c := range kept {
		ct, cl, cr := tids[c], lefts[c], rights[c]
		minDepth := depths[c] + 1
		if orSelf {
			minDepth = depths[c]
		}
		p = gallopPost(post, p, func(ri int32) bool {
			return tids[ri] > ct || (tids[ri] == ct && lefts[ri] >= cl)
		})
		for ; p < n; p++ {
			ri := post[p]
			if tids[ri] != ct || lefts[ri] >= cr {
				break
			}
			// right ≤ c.right excludes left-aligned ancestors; the depth
			// bound excludes the context itself (and, in unary chains, its
			// same-span ancestors).
			if rights[ri] <= cr && depths[ri] >= minDepth {
				dst = append(dst, ri)
			}
		}
	}
	return dst
}

// mergeChild sorts the contexts by (tid, id) and walks the posting list
// once, answering each row's parent with a binary search — the sort-based
// dual of probing every parent's child list.
func (e *Engine) mergeChild(post, ctxs, dst []int32) []int32 {
	cols := e.s.Cols()
	tids, ids, pids := cols.TID, cols.ID, cols.PID
	sort.Slice(ctxs, func(i, j int) bool {
		a, b := ctxs[i], ctxs[j]
		if tids[a] != tids[b] {
			return tids[a] < tids[b]
		}
		return ids[a] < ids[b]
	})
	for _, ri := range post {
		pid := pids[ri]
		if pid == 0 {
			continue
		}
		t := tids[ri]
		j := sort.Search(len(ctxs), func(k int) bool {
			ck := ctxs[k]
			if tids[ck] != t {
				return tids[ck] > t
			}
			return ids[ck] >= pid
		})
		if j < len(ctxs) && tids[ctxs[j]] == t && ids[ctxs[j]] == pid {
			dst = append(dst, ri)
		}
	}
	return dst
}

// mergeFollowing exploits that the union of the contexts' following sets
// within one tree is a single range: every posting row with
// left ≥ min(context rights). For the or-self variant, a context row is part
// of the union iff it passes the node test; it is already swept up when its
// left reaches the range, so only contexts left of it are added explicitly.
func (e *Engine) mergeFollowing(post, ctxs, dst []int32, orSelf, wild bool, nlo, nhi, maxLeft int32) []int32 {
	cols := e.s.Cols()
	tids, lefts, rights := cols.TID, cols.Left, cols.Right
	sort.Slice(ctxs, func(i, j int) bool {
		a, b := ctxs[i], ctxs[j]
		if tids[a] != tids[b] {
			return tids[a] < tids[b]
		}
		return rights[a] < rights[b]
	})
	p, n := 0, len(post)
	for i := 0; i < len(ctxs); {
		ct := tids[ctxs[i]]
		minRight := rights[ctxs[i]]
		j := i
		for ; j < len(ctxs) && tids[ctxs[j]] == ct; j++ {
			if orSelf {
				cj := ctxs[j]
				if lefts[cj] < minRight && (wild || (cj >= nlo && cj < nhi)) {
					dst = append(dst, cj)
				}
			}
		}
		i = j
		p = gallopPost(post, p, func(ri int32) bool {
			return tids[ri] > ct || (tids[ri] == ct && lefts[ri] >= minRight)
		})
		for ; p < n; p++ {
			ri := post[p]
			if tids[ri] != ct || lefts[ri] > maxLeft {
				break
			}
			dst = append(dst, ri)
		}
	}
	return dst
}

// mergePreceding mirrors mergeFollowing over the (tid, right)-ordered
// posting list: the union per tree is every row with right ≤ max(context
// lefts), clamped below by the scope's left edge.
func (e *Engine) mergePreceding(post, ctxs, dst []int32, orSelf, wild bool, nlo, nhi, minRight int32) []int32 {
	cols := e.s.Cols()
	tids, lefts, rights := cols.TID, cols.Left, cols.Right
	sort.Slice(ctxs, func(i, j int) bool {
		a, b := ctxs[i], ctxs[j]
		if tids[a] != tids[b] {
			return tids[a] < tids[b]
		}
		return lefts[a] < lefts[b]
	})
	p, n := 0, len(post)
	for i := 0; i < len(ctxs); {
		ct := tids[ctxs[i]]
		j := i
		for ; j < len(ctxs) && tids[ctxs[j]] == ct; j++ {
		}
		maxLeftCtx := lefts[ctxs[j-1]]
		p = gallopPost(post, p, func(ri int32) bool {
			return tids[ri] > ct || (tids[ri] == ct && rights[ri] >= minRight)
		})
		for ; p < n; p++ {
			ri := post[p]
			if tids[ri] != ct || rights[ri] > maxLeftCtx {
				break
			}
			dst = append(dst, ri)
		}
		if orSelf {
			// A context row right of the sweep's upper bound was not swept
			// up; it still precedes-or-selfs itself.
			for k := i; k < j; k++ {
				ck := ctxs[k]
				if rights[ck] > maxLeftCtx && (wild || (ck >= nlo && ck < nhi)) {
					dst = append(dst, ck)
				}
			}
		}
		i = j
	}
	return dst
}

// mergeImmFollowing sweeps contexts ordered by (tid, right) against the
// left-ordered posting list: each distinct context right edge selects the
// run of rows starting exactly there. Distinct edges select disjoint runs,
// so the union is duplicate-free without a set.
func (e *Engine) mergeImmFollowing(post, ctxs, dst []int32) []int32 {
	cols := e.s.Cols()
	tids, lefts, rights := cols.TID, cols.Left, cols.Right
	sort.Slice(ctxs, func(i, j int) bool {
		a, b := ctxs[i], ctxs[j]
		if tids[a] != tids[b] {
			return tids[a] < tids[b]
		}
		return rights[a] < rights[b]
	})
	p, n := 0, len(post)
	for i, c := range ctxs {
		ct, rt := tids[c], rights[c]
		if i > 0 && tids[ctxs[i-1]] == ct && rights[ctxs[i-1]] == rt {
			continue // same edge: same run, already emitted
		}
		p = gallopPost(post, p, func(ri int32) bool {
			return tids[ri] > ct || (tids[ri] == ct && lefts[ri] >= rt)
		})
		for ; p < n; p++ {
			ri := post[p]
			if tids[ri] != ct || lefts[ri] != rt {
				break
			}
			dst = append(dst, ri)
		}
	}
	return dst
}

// mergeImmPreceding is the mirror: contexts ordered by (tid, left) against
// the (tid, right)-ordered posting list, emitting the run whose right edge
// meets each distinct context left edge.
func (e *Engine) mergeImmPreceding(post, ctxs, dst []int32) []int32 {
	cols := e.s.Cols()
	tids, lefts, rights := cols.TID, cols.Left, cols.Right
	sort.Slice(ctxs, func(i, j int) bool {
		a, b := ctxs[i], ctxs[j]
		if tids[a] != tids[b] {
			return tids[a] < tids[b]
		}
		return lefts[a] < lefts[b]
	})
	p, n := 0, len(post)
	for i, c := range ctxs {
		ct, lf := tids[c], lefts[c]
		if i > 0 && tids[ctxs[i-1]] == ct && lefts[ctxs[i-1]] == lf {
			continue
		}
		p = gallopPost(post, p, func(ri int32) bool {
			return tids[ri] > ct || (tids[ri] == ct && rights[ri] >= lf)
		})
		for ; p < n; p++ {
			ri := post[p]
			if tids[ri] != ct || rights[ri] != lf {
				break
			}
			dst = append(dst, ri)
		}
	}
	return dst
}

// gallopPost advances the posting cursor to the first index whose row
// satisfies pred, which must be monotone along the list: exponential probing
// followed by binary search, so a whole sweep costs O(Σ log gap) — never
// more than the list length, and far less when the frontier is sparse.
func gallopPost(post []int32, i int, pred func(int32) bool) int {
	n := len(post)
	if i >= n || pred(post[i]) {
		return i
	}
	step := 1
	for i+step < n && !pred(post[i+step]) {
		i += step
		step <<= 1
	}
	hi := i + step
	if hi > n {
		hi = n
	}
	return i + 1 + sort.Search(hi-i-1, func(k int) bool { return pred(post[i+1+k]) })
}
