package engine

import (
	"fmt"
	"sync"
	"testing"

	"lpath/internal/lpath"
)

// TestPlanCacheConcurrentEviction hammers GetOrPlan from many goroutines
// over more texts than the cache holds, with store-generation churn forcing
// re-planning and a concurrent Stats poller, and requires the counters to
// stay consistent: every call lands exactly one hit or miss, the resident
// set never exceeds capacity, and eviction pressure is visible. The CI race
// job runs this under -race, so it also proves the locking discipline.
func TestPlanCacheConcurrentEviction(t *testing.T) {
	e, _ := figureEngine(t)
	const (
		capacity   = 4
		texts      = 16
		goroutines = 8
		iters      = 200
	)
	pc := NewPlanCache(capacity)
	queries := make([]string, texts)
	for i := range queries {
		queries[i] = fmt.Sprintf(`//NP/_[position()=%d]`, i+1)
	}
	compile := func(s string) (*lpath.Path, error) { return lpath.Parse(s) }

	done := make(chan struct{})
	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			st := pc.Stats()
			if st.Len > st.Capacity {
				t.Errorf("mid-flight Len %d exceeds capacity %d", st.Len, st.Capacity)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				text := queries[(g*7+i*3)%texts]
				// Alternating generations keep the stale-exec re-plan path
				// (AST hit, plan refresh) under contention too.
				gen := uint64(i % 2)
				ast, _, err := pc.GetOrPlan(text, gen, compile, e.Plan)
				if err != nil {
					t.Errorf("GetOrPlan(%q): %v", text, err)
					return
				}
				if ast == nil {
					t.Errorf("GetOrPlan(%q): nil AST", text)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(done)
	poller.Wait()

	st := pc.Stats()
	if got, want := st.Hits+st.Misses, uint64(goroutines*iters); got != want {
		t.Errorf("hits+misses = %d, want %d (every call counts exactly once)", got, want)
	}
	if st.Len > capacity {
		t.Errorf("Len = %d, want <= %d", st.Len, capacity)
	}
	if st.Capacity != capacity {
		t.Errorf("Capacity = %d, want %d", st.Capacity, capacity)
	}
	if st.Misses < texts {
		t.Errorf("misses = %d, want >= %d (each text misses at least once)", st.Misses, texts)
	}
	if st.Evictions == 0 {
		t.Error("no evictions despite 4x over-subscription")
	}
	// Counters only grow; a fresh snapshot must dominate the previous one.
	st2 := pc.Stats()
	if st2.Hits < st.Hits || st2.Misses < st.Misses || st2.Evictions < st.Evictions {
		t.Errorf("counters regressed: %+v then %+v", st, st2)
	}
}

// TestPlanCacheConcurrentGetPut covers the plain Get/Put surface under the
// same contention, including AST replacement invalidating cached exec plans.
func TestPlanCacheConcurrentGetPut(t *testing.T) {
	pc := NewPlanCache(3)
	queries := []string{`//NP`, `//VP`, `//V`, `//S//NP`, `//Det->_`}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				text := queries[(g+i)%len(queries)]
				if p, ok := pc.Get(text); ok && p == nil {
					t.Errorf("Get(%q): hit with nil plan", text)
					return
				}
				if i%3 == 0 {
					pc.Put(text, lpath.MustParse(text))
				}
			}
		}(g)
	}
	wg.Wait()
	if st := pc.Stats(); st.Len > st.Capacity {
		t.Errorf("Len %d exceeds capacity %d", st.Len, st.Capacity)
	}
}
