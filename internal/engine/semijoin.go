package engine

import (
	"lpath/internal/label"
	"lpath/internal/lpath"
	"lpath/internal/planner"
)

// Semijoin execution: the reverse strategy for an existential filter chosen
// by the planner. Instead of evaluating the filter path forward from every
// candidate, the engine materializes the set of rows that satisfy the filter
// once per (filter, scope) — seeding from the path's final step (a value
// posting list or one clustered name range) and walking the inverse axes
// back to the path's head — and then answers each candidate with a set
// lookup. Soundness rests on the Table 2 label predicates being symmetric
// under lpath.InverseAxis, and on the planner's reversibility gate (no
// alignment, no positional predicates, no subtree scope, no attribute axes
// mid-path), which guarantees the reverse walk visits exactly the rows a
// forward evaluation could have reached.

// semiHolds answers one candidate's filter membership, building and
// memoizing the satisfier set on first use. Unscoped filters materialize as
// dense bitsets (bitmap.go) unless the bitmap kernels are disabled; scoped
// satisfier sets are small and numerous (one per scope), so they stay maps —
// a bitset's whole-store clear per scope would swamp the lookup win.
func (e *Engine) semiHolds(sj *planner.Semijoin, x lpath.Expr, b bind, ctx *evalCtx) (bool, error) {
	if b.scope == noRow && e.bitmap != bitmapOff {
		set, err := e.satisfierBits(sj, x, b.scope, ctx)
		if err != nil {
			return false, err
		}
		return set.Has(b.row), nil
	}
	key := satKey{expr: x, scope: b.scope}
	set, ok := ctx.sat[key]
	if !ok {
		if ctx.sat == nil {
			ctx.sat = make(map[satKey]map[int32]bool)
		}
		var err error
		set, err = e.satisfiers(sj, x, b.scope, ctx)
		if err != nil {
			return false, err
		}
		ctx.sat[key] = set
	}
	return set[b.row], nil
}

// satisfiers computes the rows from which the filter path has at least one
// match under the given scope.
func (e *Engine) satisfiers(sj *planner.Semijoin, x lpath.Expr, scope int32, ctx *evalCtx) (map[int32]bool, error) {
	steps := sj.Head.Steps
	cur, err := e.semiSeeds(sj, scope, ctx)
	if err != nil {
		return nil, err
	}
	nSeeds := len(cur)

	// Climb: level i-1 holds the rows matching step i-1 (test, predicates,
	// scope) from which some level-i row is reachable along step i's axis —
	// equivalently, rows reachable from a level-i row along the inverse.
	for i := len(steps) - 1; i >= 1 && len(cur) > 0; i-- {
		inv, _ := lpath.InverseAxis(steps[i].Axis)
		prev := &steps[i-1]
		synth := lpath.Step{Axis: inv, Test: prev.Test}
		next := cur[:0:0]
		seen := make(map[int32]bool)
		for _, ri := range cur {
			cands, borrowed := e.axisCandidates(&synth, bind{row: ri, scope: scope}, ctx)
			for _, ci := range cands {
				if seen[ci] {
					continue
				}
				seen[ci] = true
				if !e.inScopeRow(scope, ci) {
					continue
				}
				ok, err := e.semiPredsHold(prev.Preds, ci, scope, "", "", ctx)
				if err != nil {
					if !borrowed {
						ctx.ar.putInts(cands)
					}
					return nil, err
				}
				if ok {
					next = append(next, ci)
				}
			}
			if !borrowed {
				ctx.ar.putInts(cands)
			}
		}
		cur = next
	}

	// Final hop: any row that reaches a head-level row along the first
	// step's axis satisfies the filter. The candidate's own test, scope and
	// predicates are the outer step's business, so the inverse probe is
	// unconstrained (wildcard).
	out := make(map[int32]bool, len(cur))
	inv0, _ := lpath.InverseAxis(steps[0].Axis)
	synth := lpath.Step{Axis: inv0, Test: "_"}
	for _, ri := range cur {
		cands, borrowed := e.axisCandidates(&synth, bind{row: ri, scope: scope}, ctx)
		for _, ci := range cands {
			out[ci] = true
		}
		if !borrowed {
			ctx.ar.putInts(cands)
		}
	}
	ctx.countSemi(x, nSeeds, len(out))
	return out, nil
}

// semiSeeds materializes the filter path's final-step matches: rows
// satisfying its node test, its predicates, the scope, and the filter's
// trailing attribute condition.
func (e *Engine) semiSeeds(sj *planner.Semijoin, scope int32, ctx *evalCtx) ([]int32, error) {
	steps := sj.Head.Steps
	last := &steps[len(steps)-1]
	var cands []int32
	skipValue, skipAttr := "", ""
	if sj.Seed == planner.SeedValue {
		// The posting list already enforces one @attr=value equality; skip
		// re-checking that predicate, like the forward value driver does.
		skipValue, skipAttr = sj.SeedValue, sj.SeedAttr
		for _, pi := range e.s.ByValue(sj.SeedValue) {
			ar := e.s.Row(pi)
			if ar.Name != sj.SeedAttr {
				continue
			}
			// Posting lists are grouped by attribute name, not tid-sorted, so
			// the streaming tid window filters linearly. The windowed set is
			// memoized per batch only; evalCtx.clearSat drops it between
			// batches.
			if !ctx.inWindow(ar.TID) {
				continue
			}
			ei, ok := e.s.ElementByID(ar.TID, ar.ID)
			if !ok {
				continue
			}
			if !last.Wildcard() && e.s.Row(ei).Name != last.Test {
				continue
			}
			cands = append(cands, ei)
		}
	} else if last.Wildcard() {
		cands = e.narrowToWindow(e.s.ElementsByLeft(), ctx)
	} else if lo, hi, ok := e.s.NameRange(last.Test); ok {
		// The clustered name range, zero-copy via the identity row sequence,
		// narrowed to the streaming tid window when one is active.
		cands = e.narrowToWindow(e.s.RowSeq()[lo:hi], ctx)
	}

	out := cands[:0:0]
	for _, ci := range cands {
		if !e.inScopeRow(scope, ci) || !e.semiAttrOK(sj, ci) {
			continue
		}
		ok, err := e.semiPredsHold(last.Preds, ci, scope, skipValue, skipAttr, ctx)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, ci)
		}
	}
	return out, nil
}

// semiPredsHold checks a step's predicates on one row. The reversibility
// gate excludes positional predicates, so the positional context is inert;
// nested paths evaluate forward exactly as they would in the forward
// strategy (and may use their own semijoins via ctx).
func (e *Engine) semiPredsHold(preds []lpath.Expr, ri, scope int32, skipValue, skipAttr string, ctx *evalCtx) (bool, error) {
	for _, pred := range preds {
		if skipValue != "" {
			if cmp, ok := pred.(*lpath.CmpExpr); ok && isDirectEq(cmp) &&
				cmp.Value == skipValue && len(skipAttr) > 1 && cmp.Path.Steps[0].Test == skipAttr[1:] {
				continue
			}
		}
		ok, err := e.evalExpr(pred, bind{row: ri, scope: scope}, 1, 1, ctx)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// semiAttrOK applies the filter's trailing attribute condition to a row.
func (e *Engine) semiAttrOK(sj *planner.Semijoin, ri int32) bool {
	if sj.Attr == "" {
		return true
	}
	r := e.s.Row(ri)
	v, ok := e.s.AttrValue(r.TID, r.ID, "@"+sj.Attr)
	if !ok {
		return false
	}
	switch sj.Op {
	case "=":
		return v == sj.Value
	case "!=":
		return v != sj.Value
	}
	return true
}

// inScopeRow reports whether the row lies inside the subtree scope (noRow =
// unscoped).
func (e *Engine) inScopeRow(scope, ri int32) bool {
	if scope == noRow {
		return true
	}
	sc, r := e.s.Row(scope), e.s.Row(ri)
	return r.TID == sc.TID && label.InScope(rowLabel(r), rowLabel(sc))
}
