package engine

import (
	"reflect"
	"testing"

	"lpath/internal/lpath"
	"lpath/internal/relstore"
	"lpath/internal/tree"
	"lpath/internal/treeval"
)

// Differential tests for the set-at-a-time merge executor: with the executor
// pinned on (every eligible step merges) and pinned off (every step probes),
// results must agree with the tree-walking oracle and with each other,
// including order.

func TestCrossValidateMergeAlways(t *testing.T) {
	fig := tree.NewCorpus()
	fig.Add(tree.Figure1())
	crossValidate(t, fig, queryCorpus, WithMergeAlways())
	for seed := int64(21); seed <= 26; seed++ {
		crossValidate(t, randomCorpus(seed, 3), queryCorpus, WithMergeAlways())
	}
}

func TestCrossValidateMergeOff(t *testing.T) {
	fig := tree.NewCorpus()
	fig.Add(tree.Figure1())
	crossValidate(t, fig, queryCorpus, WithoutMerge())
	for seed := int64(41); seed <= 44; seed++ {
		crossValidate(t, randomCorpus(seed, 3), queryCorpus, WithoutMerge())
	}
}

// TestMergeEqualsProbeOrdered builds three engines over one shared store —
// planner-driven, merge-forced, probe-only — and requires byte-identical
// ordered results on every query of the corpus. This is stricter than the
// oracle cross-validation (which compares multisets): the executors must
// agree on result order too.
func TestMergeEqualsProbeOrdered(t *testing.T) {
	for seed := int64(31); seed <= 36; seed++ {
		c := randomCorpus(seed, 4)
		s := relstore.Build(c, relstore.SchemeInterval)
		probe, err := New(s, WithoutMerge())
		if err != nil {
			t.Fatal(err)
		}
		variants := map[string]*Engine{}
		if variants["auto"], err = New(s); err != nil {
			t.Fatal(err)
		}
		if variants["merge-always"], err = New(s, WithMergeAlways()); err != nil {
			t.Fatal(err)
		}
		for _, q := range queryCorpus {
			p := lpath.MustParse(q)
			want, err := probe.Eval(p)
			if err != nil {
				t.Fatalf("seed %d probe %q: %v", seed, q, err)
			}
			for name, e := range variants {
				got, err := e.Eval(p)
				if err != nil {
					t.Fatalf("seed %d %s %q: %v", seed, name, q, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("seed %d: %s and probe-only disagree on %q (%d vs %d matches, or order)",
						seed, name, q, len(got), len(want))
				}
			}
		}
	}
}

// TestOrSelfAxisOrder pins the result order of every or-self long-form axis:
// matches come back sorted by (tree, document order) with no duplicates,
// under all three executor configurations, and agree with the oracle as a
// multiset. (The grammar defines six or-self axes: descendant-, ancestor-,
// following-, preceding-, following-sibling- and preceding-sibling-or-self.)
func TestOrSelfAxisOrder(t *testing.T) {
	queries := []string{
		`//NP/descendant-or-self::_`,
		`//Adj\ancestor-or-self::_`,
		`//N/following-or-self::_`,
		`//N/preceding-or-self::_`,
		`//V/following-sibling-or-self::_`,
		`//V/preceding-sibling-or-self::_`,
		// Scoped forms: the self row must still land in document order.
		`//VP{/V/following-sibling-or-self::_}`,
		`//VP{//N/preceding-or-self::_}`,
	}
	for seed := int64(51); seed <= 56; seed++ {
		c := randomCorpus(seed, 3)
		s := relstore.Build(c, relstore.SchemeInterval)
		docIdx := documentOrder(c)
		oracle := treeval.NewCorpus(c)
		for name, opts := range map[string][]Option{
			"auto": nil, "merge-always": {WithMergeAlways()}, "probe-only": {WithoutMerge()},
		} {
			e, err := New(s, opts...)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				p := lpath.MustParse(q)
				got, err := e.Eval(p)
				if err != nil {
					t.Fatalf("seed %d %s %q: %v", seed, name, q, err)
				}
				for i := 1; i < len(got); i++ {
					a, b := got[i-1], got[i]
					if a.TreeID > b.TreeID ||
						(a.TreeID == b.TreeID && docIdx[a.Node] >= docIdx[b.Node]) {
						t.Errorf("seed %d %s: %q out of document order (or duplicate) at %d: %s then %s",
							seed, name, q, i, sig(a.Node), sig(b.Node))
						break
					}
				}
				want, err := oracle.Eval(p)
				if err != nil {
					t.Fatalf("seed %d oracle %q: %v", seed, q, err)
				}
				if !sameMatches(got, want) {
					t.Errorf("seed %d %s: %q disagrees with oracle (%d vs %d)",
						seed, name, q, len(got), len(want))
				}
			}
		}
	}
}

// documentOrder maps every node of the corpus to its preorder index within
// its tree.
func documentOrder(c *tree.Corpus) map[*tree.Node]int {
	idx := map[*tree.Node]int{}
	for _, tr := range c.Trees {
		i := 0
		var walk func(n *tree.Node)
		walk = func(n *tree.Node) {
			idx[n] = i
			i++
			for _, k := range n.Children {
				walk(k)
			}
		}
		walk(tr.Root)
	}
	return idx
}
