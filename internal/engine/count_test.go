package engine

import (
	"context"
	"testing"

	"lpath/internal/lpath"
)

// TestCountAgreesWithSelect is the count-only pipeline's contract: Count
// skips sorting and node materialization but must report exactly
// len(Eval(...)) for every query, planner on and off.
func TestCountAgreesWithSelect(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		c := randomCorpus(seed, 7)
		for _, opts := range [][]Option{nil, {WithoutPlanner()}} {
			e := buildEngine(t, c, opts...)
			for _, q := range queryCorpus {
				p := lpath.MustParse(q)
				ms, err := e.Eval(p)
				if err != nil {
					t.Fatalf("seed %d %q eval: %v", seed, q, err)
				}
				n, err := e.Count(p)
				if err != nil {
					t.Fatalf("seed %d %q count: %v", seed, q, err)
				}
				if n != len(ms) {
					t.Errorf("seed %d %q: Count = %d, len(Eval) = %d (opts %d)",
						seed, q, n, len(ms), len(opts))
				}
			}
		}
	}
}

// TestCountParallelAgreesWithSerial checks the sharded count against both
// the serial count and the materializing parallel path, across shard and
// worker counts.
func TestCountParallelAgreesWithSerial(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		c := randomCorpus(seed, 9)
		serial := buildEngine(t, c)
		for _, k := range []int{1, 3, 9} {
			shards := shardEngines(t, c, k)
			for _, workers := range []int{1, 4} {
				for _, q := range queryCorpus {
					p := lpath.MustParse(q)
					want, err := serial.Count(p)
					if err != nil {
						t.Fatalf("seed %d %q: %v", seed, q, err)
					}
					got, err := CountParallel(context.Background(), shards, p, WithWorkers(workers))
					if err != nil {
						t.Fatalf("seed %d k=%d w=%d %q: %v", seed, k, workers, q, err)
					}
					if got != want {
						t.Errorf("seed %d k=%d w=%d %q: CountParallel = %d, serial Count = %d",
							seed, k, workers, q, got, want)
					}
					ms, err := EvalParallel(context.Background(), shards, p, WithWorkers(workers))
					if err != nil {
						t.Fatalf("seed %d k=%d w=%d %q eval: %v", seed, k, workers, q, err)
					}
					if got != len(ms) {
						t.Errorf("seed %d k=%d w=%d %q: CountParallel = %d, len(EvalParallel) = %d",
							seed, k, workers, q, got, len(ms))
					}
				}
			}
		}
	}
}

func TestCountParallelValidationAndEmpty(t *testing.T) {
	if _, err := CountParallel(context.Background(), nil, lpath.MustParse(`@lex`)); err == nil {
		t.Error("expected validation error for a bare attribute path")
	}
	n, err := CountParallel(context.Background(), nil, lpath.MustParse(`//NP`))
	if err != nil || n != 0 {
		t.Errorf("no shards: CountParallel = %d, %v", n, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	shards := shardEngines(t, randomCorpus(1, 4), 2)
	if _, err := CountParallel(ctx, shards, lpath.MustParse(`//NP`)); err == nil {
		t.Error("expected error from cancelled context")
	}
}
