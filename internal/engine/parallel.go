// Parallel evaluation: the interval scheme makes every axis a per-tree label
// comparison (Table 2), so a query over a corpus decomposes into independent
// evaluations over disjoint tid shards — the same per-tree decomposability
// that makes conjunctive tree queries parallelizable. EvalParallel fans a
// compiled query out over per-shard engines with a bounded worker pool and
// merges the per-shard results back into global (tid, id) order.

package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"lpath/internal/lpath"
	"lpath/internal/relstore"
)

// NewSharded builds one engine per shard store. The shards are typically the
// output of relstore.BuildShards; every engine option applies to every
// shard.
func NewSharded(shards []*relstore.Store, opts ...Option) ([]*Engine, error) {
	out := make([]*Engine, len(shards))
	for i, s := range shards {
		e, err := New(s, opts...)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// ParallelOption configures a parallel evaluation.
type ParallelOption func(*parallelConfig)

type parallelConfig struct {
	workers int
}

// WithWorkers bounds the worker pool at n goroutines. Values below 1 restore
// the default, runtime.GOMAXPROCS(0).
func WithWorkers(n int) ParallelOption {
	return func(c *parallelConfig) { c.workers = n }
}

// EvalParallel evaluates the query over every shard concurrently, using at
// most the configured number of workers (default runtime.GOMAXPROCS(0)),
// and returns the merged matches in global (tree, document) order — the
// identical order Engine.Eval produces on an unsharded store, because
// shards partition whole trees.
//
// The first shard error cancels the remaining work via the context;
// cancelling ctx abandons shards that have not started and interrupts
// in-flight shard evaluations cooperatively (each shard evaluates with the
// context). The result slice is deterministic: it does not depend on the
// worker count or on scheduling — and so is the error: identical failures
// yield the identical (lowest-shard) error, whatever order workers ran in.
func EvalParallel(ctx context.Context, shards []*Engine, p *lpath.Path, opts ...ParallelOption) ([]Match, error) {
	cfg := parallelConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	if err := lpath.Validate(p); err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return []Match{}, nil
	}
	// Plan once: shard engines share the corpus-global statistics snapshot
	// (relstore.BuildShards), so one plan is every shard's plan, and the
	// per-query planning cost does not scale with the shard count.
	plan := shards[0].Plan(p)
	results := make([][]Match, len(shards))
	err := runShards(ctx, len(shards), cfg.workers, func(ctx context.Context, i int) error {
		ms, err := shards[i].EvalPlanContext(ctx, p, plan)
		if err != nil {
			return err
		}
		results[i] = ms
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeByTree(results), nil
}

// EvalParallelLimit evaluates the query over the shards with a per-shard cap
// of limit matches and returns the first limit entries of EvalParallel's
// (tree, document)-ordered result. Shards hold tid-contiguous, ascending tree
// ranges, so the global prefix is the concatenation of per-shard prefixes in
// shard order, truncated at limit; every shard streams with early
// termination (EvalPlanLimitContext), and the moment a settled prefix of
// shards holds limit matches, all higher shards are cancelled — work past
// the answer is abandoned, not merged and discarded.
//
// The result is deterministic like EvalParallel's, and so is the error: a
// real failure surfaces only when it lies before the point where the settled
// prefix reaches limit — the trees a serial EvalLimit would actually have
// visited — with the lowest-indexed such failure winning.
func EvalParallelLimit(ctx context.Context, shards []*Engine, p *lpath.Path, limit int, opts ...ParallelOption) ([]Match, error) {
	cfg := parallelConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	if err := lpath.Validate(p); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if limit <= 0 || len(shards) == 0 {
		return []Match{}, nil
	}
	plan := shards[0].Plan(p)
	n := len(shards)
	parent := ctx
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	var (
		mu         sync.Mutex
		results    = make([][]Match, n)
		errs       = make([]error, n)
		done       = make([]bool, n)
		cancels    = make([]context.CancelFunc, n)
		settled    int // first shard index not yet finished
		prefix     int // matches held by shards [0, settled)
		sufficient bool
	)
	record := func(i int, ms []Match, err error) {
		mu.Lock()
		defer mu.Unlock()
		results[i], errs[i], done[i] = ms, err, true
		if err != nil && !isCancel(err) {
			cancelAll() // real failure: stop all shards, like EvalParallel
			return
		}
		for settled < n && done[settled] {
			prefix += len(results[settled])
			settled++
			if prefix >= limit {
				// The settled prefix already answers the query; everything
				// past it is unreachable output.
				sufficient = true
				for j := settled; j < n; j++ {
					if cancels[j] != nil {
						cancels[j]()
					}
				}
				return
			}
		}
	}

	workers := cfg.workers
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				mu.Lock()
				if sufficient || ctx.Err() != nil {
					mu.Unlock()
					continue // drain: this shard's output is unreachable
				}
				sctx, cancel := context.WithCancel(ctx)
				cancels[i] = cancel
				mu.Unlock()
				ms, err := shards[i].EvalPlanLimitContext(sctx, p, plan, limit)
				cancel()
				record(i, ms, err)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Concatenate per-shard prefixes in shard order up to limit. A missing
	// shard (skipped or cancelled) before the limit is reached means the
	// evaluation did not finish cleanly: surface the lowest-indexed real
	// failure, else the caller's cancellation.
	out := make([]Match, 0, min(limit, 256))
	for i := 0; i < n; i++ {
		if done[i] && errs[i] == nil {
			for _, m := range results[i] {
				out = append(out, m)
				if len(out) == limit {
					return out, nil
				}
			}
			continue
		}
		for j := i; j < n; j++ {
			if errs[j] != nil && !isCancel(errs[j]) {
				return nil, errs[j]
			}
		}
		return nil, parent.Err()
	}
	return out, nil
}

func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// CountParallel counts the query's matches over every shard concurrently and
// returns the global count — identical to len(EvalParallel(...)), but each
// shard uses the count-only pipeline (no sort, no node materialization) and
// only an integer crosses the merge. Shards hold disjoint trees, so the
// per-shard distinct counts add exactly.
func CountParallel(ctx context.Context, shards []*Engine, p *lpath.Path, opts ...ParallelOption) (int, error) {
	cfg := parallelConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	if err := lpath.Validate(p); err != nil {
		return 0, err
	}
	if len(shards) == 0 {
		return 0, ctx.Err()
	}
	plan := shards[0].Plan(p)
	counts := make([]int, len(shards))
	err := runShards(ctx, len(shards), cfg.workers, func(ctx context.Context, i int) error {
		n, err := shards[i].CountPlanContext(ctx, p, plan)
		if err != nil {
			return err
		}
		counts[i] = n
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	return total, nil
}

// runShards runs fn(ctx, i) for every shard index over a bounded worker
// pool. The first error cancels the remaining work (abandoning shards that
// have not started and interrupting in-flight, context-honoring fn calls),
// but error *propagation* is deterministic: per-shard errors are collected
// by index, and the lowest-indexed shard's non-cancellation error is
// returned — so the parallel entry points report the same error as the
// serial ones for the same failure, independent of worker scheduling.
// Cancellation of the caller's context surfaces as that context's error.
func runShards(ctx context.Context, n, workers int, fn func(context.Context, int) error) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain: cancelled work is not evaluated
				}
				if err := fn(ctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	// No real failure: any recorded context errors came from the caller's
	// context (or from our own cancel chasing a failure that then must have
	// been real — excluded above), so report the caller's state.
	return parent.Err()
}

// mergeByTree merges per-shard match lists, each already in (tid, id) order,
// into one global (tid, id)-ordered list. Shards hold disjoint tid sets, so
// comparing head TreeIDs (ties broken by shard index, which cannot occur
// across well-formed shards) yields exactly the unsharded engine's order.
func mergeByTree(results [][]Match) []Match {
	total := 0
	for _, r := range results {
		total += len(r)
	}
	if total == 0 {
		// Eval returns a non-nil empty slice when nothing matches; mirror it
		// so SelectParallel stays byte-identical to Select, matches or not.
		return []Match{}
	}
	out := make([]Match, 0, total)
	heads := make([]int, len(results))
	for len(out) < total {
		best := -1
		for s, r := range results {
			if heads[s] >= len(r) {
				continue
			}
			if best == -1 || r[heads[s]].TreeID < results[best][heads[best]].TreeID {
				best = s
			}
		}
		// A shard's run of equal-TreeID matches is contiguous; copy the
		// whole tree's matches in one go to keep the merge near O(total).
		r := results[best]
		i := heads[best]
		tid := r[i].TreeID
		j := i
		for j < len(r) && r[j].TreeID == tid {
			j++
		}
		out = append(out, r[i:j]...)
		heads[best] = j
	}
	return out
}
