package engine

import (
	"sort"

	"lpath/internal/lpath"
	"lpath/internal/planner"
	"lpath/internal/relstore"
)

// Holistic twig execution (docs/EXECUTION.md). Where probe evaluates a path
// binding-at-a-time and merge step-at-a-time, the twig executor evaluates a
// whole run of consecutive steps in ONE synchronized sweep: one galloping
// cursor per step over that step's document-order posting list, all cursors
// advanced together in global (tid, left, depth) order, with the partial
// matches between adjacent steps encoded compactly in per-step state — an
// ancestor stack for the vertical axes, a stack of pending adjacency edges
// for -> and =>, a running minimum right edge for --> — instead of
// materialized (and deduplicated) inter-step binding frontiers.
//
// The sweep works because for every twig-able axis the supporting row
// arrives no later than the supported row in document order: a descendant's
// ancestors open before it, an adjacent row's left edge equals a context's
// right edge (which closed strictly earlier), a following row starts after
// its context ended. Support can therefore be decided once, at arrival time,
// and never revised — the PathStack/TwigStack insight carried over to the
// paper's interval labels. A row of the final step is emitted the moment it
// arrives supported, so per scope group the output is duplicate-free without
// a dedup set, and intermediate state stays proportional to the tree depth
// (both stacks — spans are laminar, so the open frontier is an ancestor
// chain), not to the per-step candidate counts.

// twigCursor walks one stream's posting list within the current scope
// group's (tid, left) window. keys is the packed (tid, left) sort-key slice
// parallel to post (relstore.DocKey order), so every comparison the sweep
// makes — min-selection, gallop probes — reads one sequential int64 array
// instead of chasing the permutation through two columns. key caches
// keys[pos] (exhaustedKey once the window is spent); depth — needed only to
// break exact key ties — is fetched lazily from the column.
type twigCursor struct {
	post []int32
	keys []int64
	pos  int
	hi   int
	key  int64
}

// exhaustedKey sorts a spent cursor after every real arrival.
const exhaustedKey = int64(^uint64(0) >> 1)

// load refreshes the cursor's cached sort key after a position change.
func (c *twigCursor) load() {
	if c.pos >= c.hi {
		c.key = exhaustedKey
		return
	}
	c.key = c.keys[c.pos]
}

// gallop advances the cursor to the first arrival at or past the packed
// bound, staying within the group window: an exponential probe followed by
// binary search. Callers only gallop forward — the bound strictly exceeds
// the current arrival's key.
func (c *twigCursor) gallop(bound int64) {
	keys := c.keys
	lo, hi := c.pos, c.hi
	step := 1
	for lo+step < hi && keys[lo+step] < bound {
		lo += step
		step <<= 1
	}
	u := lo + step
	if u > hi {
		u = hi
	}
	for lo+1 < u {
		m := int(uint(lo+u) >> 1)
		if keys[m] < bound {
			lo = m
		} else {
			u = m
		}
	}
	c.pos = u
}

// twigStepState encodes the supported arrivals of one stream, organized for
// the NEXT step's axis — the structure consulted when the next stream asks
// "does any supporter relate to me?".
type twigStepState struct {
	axis lpath.Axis

	// tid owns every entry of stack, adj and minRight; an arrival from a
	// later tree resets the state lazily.
	tid int32

	// stack (vertical axes): supported rows whose spans contain the sweep
	// position, bottom→top nested with non-decreasing depth. Rows are
	// popped as the sweep passes their right edge, so membership alone
	// answers descendant-or-self; the bottom entry's depth answers strict
	// descendant, and a (depth, id) scan from the top answers child.
	stack []int32

	// adj (immediate adjacency): pending (right, pid) edges of supported
	// rows packed as right<<32|pid. Because spans are laminar, the rows
	// still open at the sweep position are a nested ancestor chain, so
	// their right edges are non-increasing bottom→top — the pending edges
	// form a stack (top = least right), no heap needed. cur holds the
	// edges whose right equals the sweep's current left — the ones an
	// arrival at this position can attach to.
	adj             []int64
	cur             []int64
	curTid, curLeft int32

	// minRight (following): the least right edge among supported rows of
	// tid — x follows some supporter iff minRight ≤ x.left.
	minRight int32

	// lastSup is the most recent supported arrival of this stream; the
	// or-self axes use it for self-support (the same row arrives on the
	// lower stream first at the same sweep key).
	lastSup int32
}

func (st *twigStepState) reset() {
	st.tid = -1
	st.stack = st.stack[:0]
	st.adj = st.adj[:0]
	st.cur = st.cur[:0]
	st.curTid, st.curLeft = -1, -1
	st.minRight = maxInt32
	st.lastSup = noRow
}

// twigScratch is the evalCtx-held reusable state of one twig run: cursors,
// per-step states and supported-arrival counters. The slices-of-structs are
// retained across evaluations (the evalCtx is pooled on the Engine); the
// per-state buffers are drawn from the arena at run start and returned at
// run end, so warm runs allocate nothing.
type twigScratch struct {
	cur    []twigCursor
	st     []twigStepState
	counts []int
}

func (tw *twigScratch) ensure(k int, ar *arena) {
	if cap(tw.cur) < k+1 {
		tw.cur = make([]twigCursor, k+1)
	}
	tw.cur = tw.cur[:k+1]
	if cap(tw.st) < k {
		tw.st = make([]twigStepState, k)
	}
	tw.st = tw.st[:k]
	if cap(tw.counts) < k {
		tw.counts = make([]int, k)
	}
	tw.counts = tw.counts[:k]
	for i := range tw.st {
		st := &tw.st[i]
		st.stack = ar.getInts()
		st.adj = ar.getI64s()
		st.cur = ar.getI64s()
		tw.counts[i] = 0
	}
}

func (tw *twigScratch) release(ar *arena) {
	for i := range tw.st {
		st := &tw.st[i]
		ar.putInts(st.stack)
		ar.putI64s(st.adj)
		ar.putI64s(st.cur)
		st.stack, st.adj, st.cur = nil, nil, nil
	}
	for i := range tw.cur {
		tw.cur[i] = twigCursor{}
	}
}

// twigRunLen returns the number of steps starting at p.Steps[i] to evaluate
// as one holistic sweep, or 0 to fall back to per-step execution. Under
// twigAuto the plan's cost-marked run decides; twigAlways recomputes the
// maximal eligible run from the AST so differential tests exercise every
// shape, including single-step runs the cost model would never choose.
func (e *Engine) twigRunLen(p *lpath.Path, i int, binds []bind, ctx *evalCtx) int {
	var n int
	switch {
	case e.twig == twigOff:
		return 0
	case e.twig == twigAlways:
		n = e.maxTwigRun(p, i, binds)
	case e.exec != execAuto:
		// Forced probe (merge ablation) and forced merge both measure a
		// specific per-step executor; the twig path would shadow it.
		return 0
	default:
		sp := ctx.stepPlan(&p.Steps[i])
		if sp == nil || sp.TwigRun < 2 || i+sp.TwigRun > len(p.Steps) {
			return 0
		}
		if len(binds) == 1 && binds[0].row != noRow {
			// A one-binding frontier gains nothing from a synchronized
			// sweep; nested predicate paths evaluate one binding at a time,
			// whatever the planner estimated for the enclosing pipeline.
			return 0
		}
		n = sp.TwigRun
	}
	if n > 0 && !e.twigFrontierOK(p.Steps[i:i+n], binds) {
		return 0
	}
	return n
}

// maxTwigRun computes the longest twig-able run at i from the AST alone.
func (e *Engine) maxTwigRun(p *lpath.Path, i int, binds []bind) int {
	inScope := len(binds) > 0 && binds[0].scope != noRow
	n := 0
	for j := i; j < len(p.Steps); j++ {
		if !planner.TwigableStep(&p.Steps[j], inScope) {
			break
		}
		n++
	}
	return n
}

// twigFrontierOK re-verifies at runtime what the run marking assumed about
// the frontier: the virtual root only opens the vertical axes, a frontier
// mixing the virtual root with real rows never twigs, and edge alignment
// needs every binding to carry a real scope (the sweep compares against the
// group's scope row).
func (e *Engine) twigFrontierOK(steps []lpath.Step, binds []bind) bool {
	if len(binds) == 1 && binds[0].row == noRow {
		switch steps[0].Axis {
		case lpath.AxisChild, lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
			return true
		default:
			return false
		}
	}
	aligned := false
	for i := range steps {
		if steps[i].LeftAlign || steps[i].RightAlign {
			aligned = true
			break
		}
	}
	for _, b := range binds {
		if b.row == noRow || (aligned && b.scope == noRow) {
			return false
		}
	}
	return true
}

// twigSweep bundles the hot column arrays and run shape so the per-arrival
// helpers stay call-cheap. It lives on evalTwigRun's stack.
type twigSweep struct {
	e                                      *Engine
	tids, lefts, rights, depths, ids, pids []int32
	steps                                  []lpath.Step
	k                                      int
	tw                                     *twigScratch
	rootMode                               bool
	// ec is the evaluation context, polled for cooperative cancellation at
	// the top of the arrival loop; a cancelled sweep stops and leaves the
	// context error in ec.cerr for evalPath to propagate.
	ec *evalCtx

	// depthTie: break exact key ties by depth. Required only when a
	// vertical axis is in the run — a same-position supporter must be
	// pushed before the deeper arrival it contains is tested. Adjacency and
	// following supporters can never support a same-position arrival (their
	// right edge exceeds their left), so those runs skip the depth fetch
	// and fall back to the stream-index tiebreak alone.
	depthTie bool

	// fastRoot: stream 1 qualifies for the specialized root-mode drain —
	// every arrival is supported unconditionally (no predicates, no scope,
	// not the root-pinned child axis), so its inner loop reduces to
	// count-and-push with the push's axis switch hoisted out.
	fastRoot bool
}

// evalTwigRun evaluates the run of steps as one holistic sweep per scope
// group and returns the final step's bindings (arena-owned, duplicate-free
// per (row, scope), like the other executors).
func (e *Engine) evalTwigRun(steps []lpath.Step, binds []bind, ctx *evalCtx) []bind {
	k := len(steps)
	tw := &ctx.tw
	tw.ensure(k, ctx.ar)
	cols := e.s.Cols()
	sw := twigSweep{
		e: e, steps: steps, k: k, tw: tw,
		tids: cols.TID, lefts: cols.Left, rights: cols.Right,
		depths: cols.Depth, ids: cols.ID, pids: cols.PID,
		ec: ctx,
	}
	for i := range steps {
		switch steps[i].Axis {
		case lpath.AxisChild, lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
			sw.depthTie = true
		}
	}
	// Resolve every stream's document-order posting list once per run.
	for j := 1; j <= k; j++ {
		tw.cur[j].post, tw.cur[j].keys = e.docPosting(&steps[j-1])
	}
	out := ctx.ar.getBinds()
	if len(binds) == 1 && binds[0].row == noRow {
		sw.rootMode = true
		sw.fastRoot = k >= 2 && len(steps[0].Preds) == 0 && steps[0].Axis != lpath.AxisChild
		out = sw.group(nil, nil, noRow, out)
	} else {
		work := append(ctx.ar.getBinds(), binds...)
		sort.Slice(work, func(i, j int) bool {
			if work[i].scope != work[j].scope {
				return work[i].scope < work[j].scope
			}
			return work[i].row < work[j].row
		})
		ctxRows := ctx.ar.getInts()
		ctxKeys := ctx.ar.getI64s()
		for gi := 0; gi < len(work); {
			scope := work[gi].scope
			gj := gi
			for gj < len(work) && work[gj].scope == scope {
				gj++
			}
			ctxRows = ctxRows[:0]
			for _, b := range work[gi:gj] {
				ctxRows = append(ctxRows, b.row)
			}
			gi = gj
			sw.sortDoc(ctxRows)
			ctxKeys = ctxKeys[:0]
			for _, ri := range ctxRows {
				ctxKeys = append(ctxKeys, relstore.DocKey(sw.tids[ri], sw.lefts[ri]))
			}
			out = sw.group(ctxRows, ctxKeys, scope, out)
		}
		ctx.ar.putInts(ctxRows)
		ctx.ar.putI64s(ctxKeys)
		ctx.ar.putBinds(work)
	}
	for j := 0; j < k; j++ {
		ctx.countStep(ctx.stepPlan(&steps[j]), tw.counts[j])
	}
	tw.release(ctx.ar)
	return out
}

// docPosting returns the step's posting list in document order (tid, left,
// depth) with its parallel packed-key slice: the per-name permutation where
// the clustered order differs, the zero-copy clustered range otherwise, the
// whole-relation document order for wildcards.
func (e *Engine) docPosting(step *lpath.Step) ([]int32, []int64) {
	if step.Wildcard() {
		return e.s.ElementsByLeft(), e.s.ElementKeys()
	}
	if idx := e.s.NameByDoc(step.Test); idx != nil {
		return idx, e.s.NameKeysByDoc(step.Test)
	}
	lo, hi, ok := e.s.NameRange(step.Test)
	if !ok {
		return nil, nil
	}
	return e.s.RowSeq()[lo:hi], e.s.ClusterKeys()[lo:hi]
}

// group sweeps one scope group: stream 0 is the group's context rows (always
// supported), stream j ∈ 1..k is step j's posting window. Each iteration
// processes the globally earliest arrival in (tid, left, depth, stream)
// order — the stream-index tiebreak guarantees that when the same row sits
// on two adjacent streams, the supporting occurrence processes first.
func (sw *twigSweep) group(ctxRows []int32, ctxKeys []int64, scope int32, out []bind) []bind {
	tw, k := sw.tw, sw.k
	tw.cur[0] = twigCursor{post: ctxRows, keys: ctxKeys, pos: 0, hi: len(ctxRows)}
	tw.cur[0].load()
	var sTid, sLeft, sRight, sDepth int32
	if scope != noRow {
		sTid, sLeft, sRight, sDepth = sw.tids[scope], sw.lefts[scope], sw.rights[scope], sw.depths[scope]
	}
	for j := 1; j <= k; j++ {
		c := &tw.cur[j]
		switch {
		case scope != noRow:
			c.pos, c.hi = window(c.keys, relstore.DocKey(sTid, sLeft), relstore.DocKey(sTid, sRight))
		case sw.rootMode && sw.ec.windowed:
			// Streaming tid window: in root mode the cursors ARE the
			// virtual-root candidate lists, so the window restricts them
			// directly (non-root groups are already windowed through their
			// context rows, which descend from windowed first-step output).
			c.pos, c.hi = window(c.keys, relstore.DocKey(sw.ec.winLo, 0), relstore.DocKey(sw.ec.winHi, 0))
		default:
			c.pos, c.hi = 0, len(c.post)
		}
		c.load()
	}
	for i := 0; i < k; i++ {
		st := &tw.st[i]
		st.axis = sw.steps[i].Axis
		st.reset()
	}
	final := &tw.cur[k]
	for final.pos < final.hi {
		if sw.ec.interrupted() {
			break
		}
		// Pick the earliest arrival across all live streams: least cached
		// (tid, left) key, depth then stream index breaking ties (strict <
		// keeps the lowest stream, so a supporting occurrence of a row always
		// processes before the occurrence it supports). The same pass tracks
		// the runner-up key ru: the chosen stream then drains WITHOUT
		// re-selecting for as long as it stays strictly below every other
		// stream — sweeps spend most iterations in long single-stream bursts
		// between synchronization points, and a tie on ru falls back to the
		// full depth-aware pick.
		j := 0
		bk := tw.cur[0].key
		bd := int32(-1) // best arrival's depth, fetched only on key ties
		ru := exhaustedKey
		for s := 1; s <= k; s++ {
			ck := tw.cur[s].key
			if ck < bk {
				ru = bk // the dethroned best is the least loser so far
				j, bk, bd = s, ck, -1
			} else {
				if ck < ru {
					ru = ck
				}
				if ck == bk && ck != exhaustedKey && sw.depthTie {
					if bd < 0 {
						bc := &tw.cur[j]
						bd = sw.depths[bc.post[bc.pos]]
					}
					c := &tw.cur[s]
					if cd := sw.depths[c.post[c.pos]]; cd < bd {
						j, bd = s, cd
					}
				}
			}
		}
		c := &tw.cur[j]
		if j == 1 && sw.fastRoot {
			// Specialized root-mode stream-1 drain: every arrival is
			// supported, so the body is count-and-push with the push's axis
			// switch (and the dead-supporter test against the consumer's
			// cursor) hoisted out of the loop. dk splices the supporter's
			// right edge into the tid half of its own key.
			st := &tw.st[1]
			ck2 := tw.cur[2].key
			switch st.axis {
			case lpath.AxisChild, lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
				for {
					ri := c.post[c.pos]
					tw.counts[0]++
					if dk := c.key&^0xffffffff | int64(uint32(sw.rights[ri])); dk > ck2 {
						sw.cleanStack(st, int32(c.key>>32), int32(uint32(c.key)))
						st.stack = append(st.stack, ri)
					}
					c.pos++
					c.load()
					if c.key < ru {
						continue
					}
					break
				}
			case lpath.AxisImmediateFollowing, lpath.AxisImmediateFollowingSibling:
				for {
					ri := c.post[c.pos]
					tw.counts[0]++
					if dk := c.key&^0xffffffff | int64(uint32(sw.rights[ri])); dk >= ck2 {
						sw.refreshAdj(st, int32(c.key>>32), int32(uint32(c.key)))
						st.adj = append(st.adj, int64(sw.rights[ri])<<32|int64(uint32(sw.pids[ri])))
					}
					c.pos++
					c.load()
					if c.key < ru {
						continue
					}
					break
				}
			case lpath.AxisFollowing, lpath.AxisFollowingOrSelf:
				for {
					ri := c.post[c.pos]
					tw.counts[0]++
					st.lastSup = ri
					if tid := int32(c.key >> 32); st.tid != tid {
						st.minRight = maxInt32
						st.tid = tid
					}
					if r := sw.rights[ri]; r < st.minRight {
						st.minRight = r
					}
					c.pos++
					c.load()
					if c.key < ru {
						continue
					}
					break
				}
			}
			continue
		}
		for {
			ri := c.post[c.pos]
			bt, bl := int32(c.key>>32), int32(uint32(c.key))
			if j > 0 && !(sw.rootMode && j == 1) {
				// If the predecessor state cannot support anything here,
				// gallop the stream to the earliest position where support
				// could exist — from pending state (an adjacency edge, the
				// running minRight) or from the predecessor's own next
				// arrival — instead of testing arrival by arrival.
				ps := &tw.st[j-1]
				if now, ek, none := sw.earliest(ps, ri, bt, bl); !now {
					pc := &tw.cur[j-1]
					if pc.key != exhaustedKey {
						// Adding the axis delta to the packed key advances
						// its left-edge half.
						pk := pc.key + int64(twigDelta(ps.axis))
						if none || pk < ek {
							ek, none = pk, false
						}
					}
					if none {
						// No supporter can ever arrive: the stream is dead,
						// and deadness cascades until the final stream
						// exhausts.
						c.pos = c.hi
						c.key = exhaustedKey
						break
					}
					if ek > c.key {
						c.gallop(ek)
					} else {
						// The bound is this very position: the only future
						// supporter would sit deeper at the same left and
						// could not contain this arrival, so it is provably
						// unsupported.
						c.pos++
					}
					c.load()
					if c.key < ru {
						continue
					}
					break
				}
			}
			c.pos++
			c.load()
			if j == 0 {
				sw.push(&tw.st[0], ri, bt, bl, tw.cur[1].key)
			} else {
				step := &sw.steps[j-1]
				ok := true
				if scope != noRow {
					// Residual scope constraints (the window already pinned
					// tid and left) and edge alignment against the scope row.
					ok = sw.rights[ri] <= sRight && sw.depths[ri] >= sDepth &&
						(!step.LeftAlign || bl == sLeft) &&
						(!step.RightAlign || sw.rights[ri] == sRight)
				}
				if ok && len(step.Preds) > 0 {
					ok = sw.predsHold(step, ri)
				}
				if ok {
					if sw.rootMode && j == 1 {
						ok = step.Axis != lpath.AxisChild || sw.pids[ri] == 0
					} else {
						ok = sw.supported(&tw.st[j-1], ri, bt, bl)
					}
				}
				if ok {
					tw.counts[j-1]++
					if j == k {
						out = append(out, bind{row: ri, scope: scope})
					} else {
						sw.push(&tw.st[j], ri, bt, bl, tw.cur[j+1].key)
					}
				}
			}
			if c.key < ru {
				continue
			}
			break
		}
	}
	return out
}

// earliest reports whether the state could support an arrival at the current
// sweep position (now), and otherwise the earliest packed (tid, left) key
// where pending state could support one — none when no pending state exists
// and only a future predecessor arrival could help.
func (sw *twigSweep) earliest(st *twigStepState, ri, tid, left int32) (now bool, ek int64, none bool) {
	switch st.axis {
	case lpath.AxisChild, lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
		sw.cleanStack(st, tid, left)
		if len(st.stack) > 0 {
			return true, 0, false
		}
		return false, 0, true
	case lpath.AxisImmediateFollowing, lpath.AxisImmediateFollowingSibling:
		sw.refreshAdj(st, tid, left)
		if len(st.cur) > 0 {
			return true, 0, false
		}
		if n := len(st.adj); n > 0 {
			// Top of the stack = least pending right edge.
			return false, relstore.DocKey(tid, int32(st.adj[n-1]>>32)), false
		}
		return false, 0, true
	case lpath.AxisFollowingOrSelf:
		if st.lastSup == ri {
			return true, 0, false
		}
		fallthrough
	case lpath.AxisFollowing:
		if st.tid == tid {
			if st.minRight <= left {
				return true, 0, false
			}
			if st.minRight < maxInt32 {
				return false, relstore.DocKey(tid, st.minRight), false
			}
		}
		return false, 0, true
	}
	return true, 0, false
}

// twigDelta is the minimal left-edge advance between a future supporter's
// left and the earliest row it could support: an adjacent or following row
// starts at or after the supporter's right edge (> left), a descendant at
// the supporter's own left, a following-or-self row at its own position.
func twigDelta(axis lpath.Axis) int32 {
	switch axis {
	case lpath.AxisFollowing, lpath.AxisImmediateFollowing, lpath.AxisImmediateFollowingSibling:
		return 1
	}
	return 0
}

// supported decides, at arrival time, whether any supporter of the given
// axis relates to row ri at sweep position (tid, left).
func (sw *twigSweep) supported(st *twigStepState, ri, tid, left int32) bool {
	switch st.axis {
	case lpath.AxisDescendant:
		sw.cleanStack(st, tid, left)
		// Every remaining entry's span contains ri's; the bottom entry is
		// the shallowest, and strict descent needs a strictly shallower
		// supporter (equal depth = the row itself, via a lower stream).
		return len(st.stack) > 0 && sw.depths[st.stack[0]] < sw.depths[ri]
	case lpath.AxisDescendantOrSelf:
		sw.cleanStack(st, tid, left)
		return len(st.stack) > 0
	case lpath.AxisChild:
		sw.cleanStack(st, tid, left)
		pid, d := sw.pids[ri], sw.depths[ri]
		for i := len(st.stack) - 1; i >= 0; i-- {
			ei := st.stack[i]
			ed := sw.depths[ei]
			if ed < d-1 {
				break
			}
			if ed == d-1 && sw.ids[ei] == pid {
				return true
			}
		}
		return false
	case lpath.AxisImmediateFollowing:
		sw.refreshAdj(st, tid, left)
		return len(st.cur) > 0
	case lpath.AxisImmediateFollowingSibling:
		sw.refreshAdj(st, tid, left)
		pid := int64(uint32(sw.pids[ri]))
		for _, v := range st.cur {
			if v&0xffffffff == pid {
				return true
			}
		}
		return false
	case lpath.AxisFollowing:
		return st.tid == tid && st.minRight <= left
	case lpath.AxisFollowingOrSelf:
		return st.lastSup == ri || (st.tid == tid && st.minRight <= left)
	}
	return false
}

// push records a supported arrival into the state consulted by the next
// stream. ck is the consuming stream's current cursor key: a supporter whose
// consumable window already lies behind it can never be used (the consumer
// only moves forward), so it skips the structure entirely — dead edges never
// cost an append and a pop.
func (sw *twigSweep) push(st *twigStepState, ri, tid, left int32, ck int64) {
	st.lastSup = ri
	switch st.axis {
	case lpath.AxisChild, lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
		// Containment needs a consumer position strictly before this span's
		// right edge.
		if int64(tid)<<32|int64(uint32(sw.rights[ri])) <= ck {
			return
		}
		sw.cleanStack(st, tid, left)
		st.stack = append(st.stack, ri)
	case lpath.AxisImmediateFollowing, lpath.AxisImmediateFollowingSibling:
		// Adjacency is due exactly at the right edge's position.
		if int64(tid)<<32|int64(uint32(sw.rights[ri])) < ck {
			return
		}
		// Pop the edges that expired before this position first, then
		// append: the new span nests inside every span still open here, so
		// its right edge is the least — the stack invariant holds. (right >
		// left always, so the fresh edge is never already due.)
		sw.refreshAdj(st, tid, left)
		st.adj = append(st.adj, int64(sw.rights[ri])<<32|int64(uint32(sw.pids[ri])))
	case lpath.AxisFollowing, lpath.AxisFollowingOrSelf:
		if st.tid != tid {
			st.minRight = maxInt32
			st.tid = tid
		}
		if r := sw.rights[ri]; r < st.minRight {
			st.minRight = r
		}
	}
}

// cleanStack pops entries whose span closed before the sweep position; what
// remains are exactly the supporters whose spans contain it.
func (sw *twigSweep) cleanStack(st *twigStepState, tid, left int32) {
	if st.tid != tid {
		st.stack = st.stack[:0]
		st.tid = tid
		return
	}
	for n := len(st.stack); n > 0 && sw.rights[st.stack[n-1]] <= left; n-- {
		st.stack = st.stack[:n-1]
	}
}

// refreshAdj advances the adjacency stack to the sweep position: edges whose
// right passed are popped, edges due exactly here move to cur. Arrivals
// sharing (tid, left) reuse cur — and a supporter pushed at this position
// cannot be due here, since its right exceeds its left. Only the top is ever
// inspected: the open edges are nested, so rights are non-increasing
// bottom→top.
func (sw *twigSweep) refreshAdj(st *twigStepState, tid, left int32) {
	if st.curTid == tid && st.curLeft == left {
		return
	}
	st.cur = st.cur[:0]
	st.curTid, st.curLeft = tid, left
	if st.tid != tid {
		st.adj = st.adj[:0]
		st.tid = tid
		return
	}
	for n := len(st.adj); n > 0; n-- {
		top := st.adj[n-1]
		r := int32(top >> 32)
		if r > left {
			break
		}
		st.adj = st.adj[:n-1]
		if r == left {
			st.cur = append(st.cur, top)
		}
	}
}

// predsHold evaluates the step's pushed-down attribute comparisons; the run
// eligibility check guarantees every predicate is a direct @attr cmp, which
// matches the probe executor's existential semantics (a missing attribute
// satisfies neither = nor !=).
func (sw *twigSweep) predsHold(step *lpath.Step, ri int32) bool {
	r := sw.e.s.Row(ri)
	for _, p := range step.Preds {
		cmp := p.(*lpath.CmpExpr)
		v, ok := sw.e.s.AttrValueBare(r.TID, r.ID, cmp.Path.Steps[0].Test)
		if !ok {
			return false
		}
		if (cmp.Op == "=") != (v == cmp.Value) {
			return false
		}
	}
	return true
}

// window binary-searches the key-ordered posting for the packed-key span
// [lo, hi).
func window(keys []int64, lo, hi int64) (int, int) {
	start := sort.Search(len(keys), func(i int) bool { return keys[i] >= lo })
	end := start + sort.Search(len(keys)-start, func(i int) bool { return keys[start+i] >= hi })
	return start, end
}

// sortDoc orders context rows in document order (tid, left, depth). Scoped
// groups are typically tiny, so small inputs use insertion sort to keep the
// per-group constant (and allocation) cost down.
func (sw *twigSweep) sortDoc(rows []int32) {
	if len(rows) > 24 {
		sort.Slice(rows, func(i, j int) bool { return sw.docLess(rows[i], rows[j]) })
		return
	}
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && sw.docLess(rows[j], rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func (sw *twigSweep) docLess(a, b int32) bool {
	if sw.tids[a] != sw.tids[b] {
		return sw.tids[a] < sw.tids[b]
	}
	if sw.lefts[a] != sw.lefts[b] {
		return sw.lefts[a] < sw.lefts[b]
	}
	return sw.depths[a] < sw.depths[b]
}
