// Package engine is the LPath query engine of Section 4 of the paper: it
// evaluates LPath queries over the interval-labeled relational store by
// translating each location step into an index-assisted join against the
// node relation.
//
// Every axis becomes a sargable range over a clustered name scan (Table 2):
// descendant probes left ∈ [c.left, c.right), immediate-following probes
// left = c.right, the sibling axes probe the {tid, pid} index, and the
// vertical reverse axes walk the pid chain. Value predicates ([@lex=w]) can
// drive a step from the {value, tid, id} secondary index instead of the name
// scan, which is what makes high-selectivity word lookups fast (Section 5.2).
//
// The engine must agree exactly with the reference tree-walking evaluator
// (package treeval); the cross-validation tests enforce this.
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"lpath/internal/label"
	"lpath/internal/lpath"
	"lpath/internal/planner"
	"lpath/internal/relstore"
	"lpath/internal/tree"
)

// execMode selects how axis steps are executed (docs/EXECUTION.md).
type execMode int

const (
	// execAuto follows the plan's per-step strategy (probe without a plan).
	execAuto execMode = iota
	// execProbe forces per-binding probes everywhere (merge ablation).
	execProbe
	// execAlways forces the merge executor on every eligible step,
	// bypassing the cost decision; differential tests and fuzzers use it to
	// keep the merge path under continuous cross-checking.
	execAlways
)

// twigMode selects whether runs of consecutive steps may execute as one
// holistic twig sweep (twig.go); it is orthogonal to execMode, which picks
// the per-step executor for everything outside a twig run.
type twigMode int

const (
	// twigAuto follows the plan's cost-marked runs (no twig without a plan).
	twigAuto twigMode = iota
	// twigOff disables the twig executor (ablation).
	twigOff
	// twigAlways runs every maximal twig-able run holistically, bypassing
	// the cost decision; differential tests and fuzzers use it to keep the
	// sweep under continuous cross-checking.
	twigAlways
)

// bitmapMode selects whether dense-bitset kernels may execute subtree-scope
// entries and materialize semijoin satisfier sets (bitmap.go); it is
// orthogonal to execMode and twigMode, which govern the remaining steps.
type bitmapMode int

const (
	// bitmapAuto follows the plan's cost-marked scope entries (no bitmap
	// without a plan); unscoped satisfier sets still materialize as bitsets.
	bitmapAuto bitmapMode = iota
	// bitmapOff disables the bitmap kernels (ablation): scoped tails expand
	// per scope and satisfier sets stay maps — exactly the pre-bitmap engine.
	bitmapOff
	// bitmapAlways runs every shape-eligible scope entry through the bitmap
	// kernel, bypassing the cost decision; differential tests and fuzzers
	// use it to keep the kernel under continuous cross-checking.
	bitmapAlways
)

// Engine evaluates LPath queries against an interval-labeled store.
type Engine struct {
	s *relstore.Store
	// pl is the cost-based planner over the store's statistics snapshot;
	// Eval plans each query through it unless noPlanner is set.
	pl *planner.Planner
	// disableValueIndex turns off the value-index access path; used by the
	// ablation benchmarks.
	disableValueIndex bool
	// noPlanner restores the pre-planner evaluation strategy (no predicate
	// reordering, no semijoins, the hardcoded value-index threshold); the
	// differential tests hold the two paths result-identical.
	noPlanner bool
	// exec selects the step execution strategy (probe vs merge).
	exec execMode
	// twig selects whether step runs may execute as holistic twig sweeps.
	twig twigMode
	// bitmap selects whether the dense-bitset kernels are available.
	bitmap bitmapMode

	// ctxPool recycles evalCtx values (and their scratch arenas) across
	// evaluations, so a hot compiled query runs without steady-state
	// allocation. Safe for concurrent evaluations: each takes its own ctx.
	ctxPool sync.Pool
}

// Option configures an Engine.
type Option func(*Engine)

// WithoutValueIndex disables the {value, tid, id} access path so every step
// is driven by name scans; used to measure the value index's contribution.
func WithoutValueIndex() Option {
	return func(e *Engine) { e.disableValueIndex = true }
}

// WithoutPlanner disables cost-based planning: queries evaluate with the
// engine's default strategy only. Used by the differential tests and to
// measure the planner's contribution.
func WithoutPlanner() Option {
	return func(e *Engine) { e.noPlanner = true }
}

// WithoutMerge disables the set-at-a-time merge executor, so every step runs
// per-binding probes regardless of the plan. Used by the executor ablation
// benchmarks and differential tests.
func WithoutMerge() Option {
	return func(e *Engine) { e.exec = execProbe }
}

// WithMergeAlways forces the merge executor on every eligible step,
// bypassing the planner's cost decision. The merge and probe executors are
// result-identical by construction; this option keeps the merge path under
// continuous differential testing even on inputs where the planner would
// choose probes.
func WithMergeAlways() Option {
	return func(e *Engine) { e.exec = execAlways }
}

// WithoutTwig disables the holistic twig executor, so every step runs
// through the per-step probe/merge dispatch. Used by the executor ablation
// benchmarks and differential tests.
func WithoutTwig() Option {
	return func(e *Engine) { e.twig = twigOff }
}

// WithTwigAlways runs every maximal twig-able run through the holistic
// sweep, bypassing the planner's cost decision. The twig executor is
// result-identical to the per-step executors by construction; this option
// keeps the sweep under continuous differential testing even on inputs
// where the planner would never choose it.
func WithTwigAlways() Option {
	return func(e *Engine) { e.twig = twigAlways }
}

// WithoutBitmap disables the dense-bitset kernels: subtree scopes expand per
// scope and semijoin satisfier sets materialize as maps. Used by the
// executor ablation benchmarks and differential tests.
func WithoutBitmap() Option {
	return func(e *Engine) { e.bitmap = bitmapOff }
}

// WithBitmapAlways runs every shape-eligible subtree-scope entry through the
// bitmap kernel, bypassing the planner's cost decision. The bitmap kernel is
// result-identical to the scoped probe expansion by construction; this
// option keeps it under continuous differential testing even on inputs
// where the planner would never choose it.
func WithBitmapAlways() Option {
	return func(e *Engine) { e.bitmap = bitmapAlways }
}

// New creates an engine over the store, which must use the interval scheme.
func New(s *relstore.Store, opts ...Option) (*Engine, error) {
	if s.Scheme() != relstore.SchemeInterval {
		return nil, fmt.Errorf("engine: store uses %v labels; the LPath engine requires the interval scheme", s.Scheme())
	}
	e := &Engine{s: s}
	e.ctxPool.New = func() any { return &evalCtx{ar: &arena{}} }
	for _, o := range opts {
		o(e)
	}
	var popts []planner.Option
	if e.disableValueIndex {
		popts = append(popts, planner.WithoutValueIndex())
	}
	if e.twig == twigOff {
		// The twig ablation must execute the pre-twig plan: without this the
		// planner would still mark runs whose steps then fall back to probe
		// (the merge executor only accepts steps marked StrategyMerge),
		// which is neither the twig engine nor the pre-twig one.
		popts = append(popts, planner.WithoutTwig())
	}
	if e.bitmap == bitmapOff {
		// Same reasoning for the bitmap ablation: a scope entry marked
		// StrategyBitmap would fall back to probe and also block twig-run
		// formation over the scoped tail.
		popts = append(popts, planner.WithoutBitmap())
	}
	e.pl = planner.New(s.Statistics(), popts...)
	return e, nil
}

// Plan returns the cost-based plan Eval would execute for the query, or nil
// when planning is disabled. Plans are immutable and may be executed
// concurrently (and on other shards of the same corpus, whose engines share
// the corpus-global statistics).
func (e *Engine) Plan(p *lpath.Path) *planner.Plan {
	if e.noPlanner {
		return nil
	}
	return e.pl.Plan(p)
}

// Match is one query result: a node within a tree.
type Match struct {
	TreeID int
	Node   *tree.Node
}

const noRow = int32(-1)

// bind is one tuple of the running join: the current context row and the
// innermost subtree-scope row (noRow = the virtual super-root / no scope).
type bind struct {
	row   int32
	scope int32
}

// Eval evaluates the query over the whole corpus and returns the distinct
// matches of the final step in (tree, document) order. Unless the engine
// was built WithoutPlanner, the query is planned first; the plan never
// changes the result, only the evaluation strategy.
func (e *Engine) Eval(p *lpath.Path) ([]Match, error) {
	return e.EvalPlan(p, e.Plan(p))
}

// EvalContext is Eval honoring a context: cancellation (or an expired
// deadline) interrupts the join pipeline cooperatively — the executors poll
// the context inside their sweeps, not just between steps — and returns the
// context's error.
func (e *Engine) EvalContext(cctx context.Context, p *lpath.Path) ([]Match, error) {
	return e.EvalPlanContext(cctx, p, e.Plan(p))
}

// EvalPlan evaluates the query executing the given plan (nil = the default
// strategy). The plan must have been built for this query's AST.
func (e *Engine) EvalPlan(p *lpath.Path, plan *planner.Plan) ([]Match, error) {
	return e.EvalPlanContext(context.Background(), p, plan)
}

// EvalPlanContext is EvalPlan honoring a context for cooperative
// cancellation.
func (e *Engine) EvalPlanContext(cctx context.Context, p *lpath.Path, plan *planner.Plan) ([]Match, error) {
	if err := lpath.Validate(p); err != nil {
		return nil, err
	}
	if err := cctx.Err(); err != nil {
		return nil, err
	}
	ctx := e.newEvalCtx(plan, cctx)
	defer e.releaseCtx(ctx)
	rows, err := e.evalRows(p, ctx)
	if err != nil {
		return nil, err
	}
	out := make([]Match, 0, len(rows))
	for _, ri := range rows {
		r := e.s.Row(ri)
		out = append(out, Match{TreeID: int(r.TID), Node: e.s.NodeFor(r)})
	}
	ctx.ar.putInts(rows)
	return out, nil
}

// evalRows runs the join pipeline and returns the distinct result rows in
// (tree, document) order. The returned slice is owned by ctx's arena.
func (e *Engine) evalRows(p *lpath.Path, ctx *evalCtx) ([]int32, error) {
	start := [1]bind{{row: noRow, scope: noRow}}
	binds, err := e.evalPath(p, start[:], ctx)
	if err != nil {
		return nil, err
	}
	rows := ctx.ar.getInts()
	seen := ctx.ar.getRowSet()
	for _, b := range binds {
		if b.row != noRow && !seen[b.row] {
			seen[b.row] = true
			rows = append(rows, b.row)
		}
	}
	ctx.ar.putRowSet(seen)
	ctx.ar.putBinds(binds)
	ids := e.s.Cols().ID
	tids := e.s.Cols().TID
	sort.Slice(rows, func(i, j int) bool {
		if tids[rows[i]] != tids[rows[j]] {
			return tids[rows[i]] < tids[rows[j]]
		}
		return ids[rows[i]] < ids[rows[j]] // ids are preorder: document order
	})
	return rows, nil
}

// Count returns the number of distinct matches without materializing them:
// the same join pipeline as Eval, skipping the document-order sort and the
// row → node mapping.
func (e *Engine) Count(p *lpath.Path) (int, error) {
	return e.CountPlan(p, e.Plan(p))
}

// CountContext is Count honoring a context for cooperative cancellation,
// like EvalContext.
func (e *Engine) CountContext(cctx context.Context, p *lpath.Path) (int, error) {
	return e.CountPlanContext(cctx, p, e.Plan(p))
}

// CountPlan is Count executing the given plan (nil = default strategy).
func (e *Engine) CountPlan(p *lpath.Path, plan *planner.Plan) (int, error) {
	return e.CountPlanContext(context.Background(), p, plan)
}

// CountPlanContext is CountPlan honoring a context for cooperative
// cancellation.
func (e *Engine) CountPlanContext(cctx context.Context, p *lpath.Path, plan *planner.Plan) (int, error) {
	if err := lpath.Validate(p); err != nil {
		return 0, err
	}
	if err := cctx.Err(); err != nil {
		return 0, err
	}
	ctx := e.newEvalCtx(plan, cctx)
	defer e.releaseCtx(ctx)
	start := [1]bind{{row: noRow, scope: noRow}}
	binds, err := e.evalPath(p, start[:], ctx)
	if err != nil {
		return 0, err
	}
	seen := ctx.ar.getRowSet()
	n := 0
	for _, b := range binds {
		if b.row != noRow && !seen[b.row] {
			seen[b.row] = true
			n++
		}
	}
	ctx.ar.putRowSet(seen)
	ctx.ar.putBinds(binds)
	return n, nil
}

// Explain plans the query, executes the plan with cardinality counters, and
// returns the rendered EXPLAIN report (estimated vs actual rows per step).
// It always plans, even on a WithoutPlanner engine — EXPLAIN exists to show
// what the planner would do.
func (e *Engine) Explain(p *lpath.Path) (string, error) {
	return e.ExplainContext(context.Background(), p)
}

// ExplainContext is Explain honoring a context for cooperative cancellation.
func (e *Engine) ExplainContext(cctx context.Context, p *lpath.Path) (string, error) {
	if err := lpath.Validate(p); err != nil {
		return "", err
	}
	if err := cctx.Err(); err != nil {
		return "", err
	}
	plan := e.pl.Plan(p)
	ctx := e.newEvalCtx(plan, cctx)
	defer e.releaseCtx(ctx)
	ctx.act = &planner.Actuals{}
	rows, err := e.evalRows(p, ctx)
	if err != nil {
		return "", err
	}
	ctx.act.Matches = len(rows)
	ctx.ar.putInts(rows)
	return plan.Render(ctx.act), nil
}

// ExplainPlan is Explain executing a supplied cached plan instead of
// replanning — the serving path for EXPLAIN over a plan cache. The actual
// cardinalities are collected into a fresh counter set on every call, so a
// plan reused across executions never reports a prior run's actuals. A nil
// plan (a WithoutPlanner cache entry) falls back to Explain's own planning.
func (e *Engine) ExplainPlan(p *lpath.Path, plan *planner.Plan) (string, error) {
	return e.ExplainPlanContext(context.Background(), p, plan)
}

// ExplainPlanContext is ExplainPlan honoring a context for cooperative
// cancellation.
func (e *Engine) ExplainPlanContext(cctx context.Context, p *lpath.Path, plan *planner.Plan) (string, error) {
	if plan == nil {
		return e.ExplainContext(cctx, p)
	}
	if err := lpath.Validate(p); err != nil {
		return "", err
	}
	if err := cctx.Err(); err != nil {
		return "", err
	}
	ctx := e.newEvalCtx(plan, cctx)
	defer e.releaseCtx(ctx)
	ctx.act = &planner.Actuals{}
	rows, err := e.evalRows(p, ctx)
	if err != nil {
		return "", err
	}
	ctx.act.Matches = len(rows)
	ctx.ar.putInts(rows)
	return plan.Render(ctx.act), nil
}

// evalPath runs the join pipeline for one relative path. The input binds are
// owned by the caller and never released here; the returned slice is owned
// by ctx's arena and must be released by the caller with ctx.ar.putBinds.
func (e *Engine) evalPath(p *lpath.Path, binds []bind, ctx *evalCtx) ([]bind, error) {
	return e.evalSteps(p, 0, binds, false, ctx)
}

// evalSteps runs the join pipeline from step index start — the bitmap
// scope-entry kernel re-enters here at index 1 after evaluating a scoped
// tail's first step set-at-a-time. When owned is set the input binds are
// arena-owned and released here; otherwise they belong to the caller.
func (e *Engine) evalSteps(p *lpath.Path, start int, binds []bind, owned bool, ctx *evalCtx) ([]bind, error) {
	cur := binds
	// Batched evaluation: the frontier after the main path's step sequence is
	// a pure function of its canonical key from the virtual root, so a batch
	// mate that already walked an identical step sequence hands its frontier
	// over (batch.go). Hits skip the step loop and resume at the scoped tail.
	frontKey := ctx.frontierKey(p, start, binds)
	if frontKey != "" {
		if cached, ok := ctx.batch.frontiers[frontKey]; ok {
			ctx.batch.stats.FrontierHits++
			if owned {
				ctx.ar.putBinds(cur)
			}
			if len(cached) == 0 {
				return nil, nil
			}
			cur = append(ctx.ar.getBinds(), cached...)
			owned = true
			start = len(p.Steps)
			frontKey = "" // served from the memo; nothing to store
		} else {
			ctx.batch.stats.FrontierMisses++
		}
	}
	for i := start; i < len(p.Steps); {
		var next []bind
		var err error
		// A cost-marked (or, under WithTwigAlways, maximal) run of twig-able
		// steps evaluates as one holistic sweep; everything else dispatches
		// per step between the probe and merge executors.
		if n := e.twigRunLen(p, i, cur, ctx); n > 0 {
			next = e.evalTwigRun(p.Steps[i:i+n], cur, ctx)
			// The twig sweep's signature carries no error; a cancelled sweep
			// returns partial results and latches the context error instead.
			err = ctx.cerr
			i += n
		} else {
			next, err = e.evalStep(&p.Steps[i], cur, ctx)
			i++
		}
		if owned {
			ctx.ar.putBinds(cur)
		}
		if err != nil {
			return nil, err
		}
		cur, owned = next, true
		if len(cur) == 0 {
			if frontKey != "" {
				ctx.batch.frontiers[frontKey] = []bind{}
			}
			ctx.ar.putBinds(cur)
			return nil, nil
		}
	}
	if frontKey != "" {
		ctx.batch.frontiers[frontKey] = append([]bind(nil), cur...)
	}
	if p.Scoped != nil {
		if e.useBitmapEntry(p.Scoped, ctx) {
			res, err := e.evalBitmapScoped(p.Scoped, cur, ctx)
			if owned {
				ctx.ar.putBinds(cur)
			}
			return res, err
		}
		// Open a subtree scope at each current node and evaluate the tail.
		scoped := ctx.ar.getBinds()
		for _, b := range cur {
			row := b.row
			if row == noRow {
				// Scope on the virtual root: evaluate per tree root (within
				// the streaming tid window, when one is active).
				for _, ri := range e.narrowToWindow(e.s.Roots(), ctx) {
					scoped = append(scoped, bind{row: ri, scope: ri})
				}
				continue
			}
			scoped = append(scoped, bind{row: row, scope: row})
		}
		if owned {
			ctx.ar.putBinds(cur)
		}
		scoped = dedupBinds(scoped, ctx)
		res, err := e.evalPath(p.Scoped, scoped, ctx)
		ctx.ar.putBinds(scoped)
		return res, err
	}
	if !owned {
		// Zero-step path: hand back an arena-owned copy so the release
		// protocol stays uniform.
		out := append(ctx.ar.getBinds(), cur...)
		return out, nil
	}
	return cur, nil
}

// evalStep performs one join step, dispatching between the per-binding
// probe executor and the set-at-a-time merge executor (merge.go) according
// to the plan's strategy (or the engine's forced execution mode).
func (e *Engine) evalStep(step *lpath.Step, binds []bind, ctx *evalCtx) ([]bind, error) {
	if step.Axis == lpath.AxisAttribute {
		return nil, lpath.ErrAttrInMainPath
	}
	positional := step.HasPositional()
	// Plan-directed choices: the statistics-derived value-probe threshold
	// and the cheapest-first predicate order. Neither changes the result —
	// reordering is restricted to commutative conjuncts, and the value probe
	// is an access path, not a filter.
	sp := ctx.stepPlan(step)
	preds := step.Preds
	if sp != nil && sp.Reordered {
		preds = sp.PredExprs()
	}
	if e.mergeStep(step, sp, positional, binds) {
		return e.evalStepMerge(step, sp, preds, binds, ctx)
	}
	return e.evalStepProbe(step, sp, preds, positional, binds, ctx)
}

// mergeStep decides whether the step runs set-at-a-time: the axis must have
// a merge implementation, the candidate set must be a pure function of
// (context, scope) — no positional predicates, no edge alignment — and the
// frontier must hold real rows (the virtual root's probe is already a single
// range handover). Under execAuto the plan's cost-based choice decides;
// execAlways forces merge for differential coverage.
func (e *Engine) mergeStep(step *lpath.Step, sp *planner.StepPlan, positional bool, binds []bind) bool {
	if e.exec == execProbe || positional || step.LeftAlign || step.RightAlign {
		return false
	}
	if !planner.MergeableAxis(step.Axis) {
		return false
	}
	if len(binds) == 1 && binds[0].row == noRow {
		return false
	}
	if e.exec == execAlways {
		return true
	}
	// A one-binding frontier gains nothing from set-at-a-time execution (and
	// a child merge would walk the whole posting list for it): nested
	// predicate paths evaluate from one binding at a time, whatever the
	// planner estimated for the enclosing pipeline.
	if len(binds) < 2 {
		return false
	}
	return sp != nil && sp.Strategy == planner.StrategyMerge
}

// evalStepProbe is the per-binding executor: for every context binding,
// probe the store for candidate rows on the axis, then filter by scope,
// alignment and predicates.
func (e *Engine) evalStepProbe(step *lpath.Step, sp *planner.StepPlan, preds []lpath.Expr, positional bool, binds []bind, ctx *evalCtx) ([]bind, error) {
	var vd valueDriver
	if !positional {
		// The value-index shortcut would reorder the predicate pipeline
		// and corrupt position(); positional steps keep axis probes.
		e.initValueDriver(&vd, step)
	}
	out := ctx.ar.getBinds()
	// A single binding's probe already yields distinct rows, so the
	// cross-binding dedup map is only needed for fan-in — predicates
	// evaluate paths from one binding at a time and skip it entirely.
	var seen map[bind]bool
	if len(binds) > 1 {
		seen = ctx.ar.getBindSet()
	}
	for _, b := range binds {
		if ctx.interrupted() {
			return nil, ctx.cerr
		}
		var cands []int32
		var borrowed bool
		var scratch []int32 // arena buffer to release, if one was drawn
		useValue := vd.ok && e.valueWorthwhile(step, b, vd.postings, sp)
		if useValue {
			scratch = e.filterByAxis(vd.candidates(e, ctx), step, b, ctx.ar.getInts())
			cands = scratch
		} else {
			cands, borrowed = e.axisCandidates(step, b, ctx)
			if !borrowed {
				scratch = cands
			}
		}
		// Static filters: subtree scope and edge alignment. Skipped entirely
		// when no constraint applies; an owned buffer compacts in place, a
		// borrowed slice is never mutated — filtering copies into an arena
		// buffer instead.
		if b.scope != noRow || step.LeftAlign || step.RightAlign {
			var filtered []int32
			if borrowed {
				filtered = ctx.ar.getInts()
				borrowed = false
			} else {
				filtered = cands[:0]
			}
			for _, ci := range cands {
				if e.staticAccept(step, b, ci) {
					filtered = append(filtered, ci)
				}
			}
			if scratch == nil {
				scratch = filtered
			}
			cands = filtered
		}
		// The predicate pipeline filters in place; a borrowed slice must be
		// materialized first. Positional sorting mutates too.
		if borrowed && (len(preds) > 0 || positional) {
			scratch = append(ctx.ar.getInts(), cands...)
			cands = scratch
			borrowed = false
		}
		// position() counts within one context node. The virtual root stands
		// for every tree root at once, so its candidates are partitioned per
		// tree before counting — the per-tree semantics the reference oracle
		// and the sharded parallel path share.
		groups := [][]int32{cands}
		if positional && b.row == noRow {
			groups = e.groupByTID(cands)
		}
		for _, g := range groups {
			// Positional ordering: document order (preorder ids), reversed
			// for the reverse axes.
			if positional {
				ids := e.s.Cols().ID
				sort.Slice(g, func(i, j int) bool {
					return ids[g[i]] < ids[g[j]]
				})
				if lpath.ReverseAxis(step.Axis) {
					for i, j := 0, len(g)-1; i < j; i, j = i+1, j-1 {
						g[i], g[j] = g[j], g[i]
					}
				}
			}
			// Predicate pipeline with positional context.
			for _, pred := range preds {
				if useValue {
					if cmp, ok := pred.(*lpath.CmpExpr); ok && isDirectEq(cmp) &&
						cmp.Value == vd.value && cmp.Path.Steps[0].Test == vd.attr {
						continue // already satisfied by the value-index probe
					}
				}
				var err error
				g, err = e.filterPred(pred, b.scope, g, ctx)
				if err != nil {
					return nil, err
				}
				if len(g) == 0 {
					break
				}
			}
			for _, ci := range g {
				nb := bind{row: ci, scope: b.scope}
				if seen != nil {
					if seen[nb] {
						continue
					}
					seen[nb] = true
				}
				out = append(out, nb)
			}
		}
		if scratch != nil {
			ctx.ar.putInts(scratch)
		}
	}
	if seen != nil {
		ctx.ar.putBindSet(seen)
	}
	if vd.rowsSet {
		ctx.ar.putInts(vd.rows)
	}
	ctx.countStep(sp, len(out))
	return out, nil
}

// groupByTID partitions candidate rows per tree, trees in ascending tid
// order, so position() under the virtual root never counts across trees.
func (e *Engine) groupByTID(cands []int32) [][]int32 {
	byTID := make(map[int32][]int32)
	tids := make([]int32, 0, 4)
	for _, ci := range cands {
		tid := e.s.Row(ci).TID
		if _, ok := byTID[tid]; !ok {
			tids = append(tids, tid)
		}
		byTID[tid] = append(byTID[tid], ci)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	out := make([][]int32, len(tids))
	for i, tid := range tids {
		out[i] = byTID[tid]
	}
	return out
}

// filterPred keeps the candidates satisfying one predicate, supplying the
// positional context. The filter compacts in place: the caller must own the
// slice (both executors materialize borrowed slices before the pipeline).
func (e *Engine) filterPred(pred lpath.Expr, scope int32, cands []int32, ctx *evalCtx) ([]int32, error) {
	// Bitmap fast path: a boolean combination whose every leaf has a planned
	// semijoin resolves to one satisfier bitset (possibly stored complemented)
	// via word-parallel set algebra; the per-candidate loop becomes a bit
	// test per candidate (bitmap.go).
	if e.bitmap != bitmapOff && scope == noRow && len(cands) > 0 {
		if set, negated, ok, err := e.predBits(pred, scope, ctx); err != nil {
			return nil, err
		} else if ok {
			out := cands[:0]
			for _, ci := range cands {
				if set.Has(ci) != negated {
					out = append(out, ci)
				}
			}
			return out, nil
		}
	}
	out := cands[:0]
	size := len(cands)
	for i, ci := range cands {
		if ctx.interrupted() {
			return out, ctx.cerr
		}
		ok, err := e.evalExpr(pred, bind{row: ci, scope: scope}, i+1, size, ctx)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, ci)
		}
	}
	return out, nil
}

// valueWorthwhile decides, per binding, whether driving the step from the
// value index beats an axis probe: always from the virtual root (the probe
// would scan the whole name range), and otherwise only when the posting
// list is smaller than the expected cost of scanning the context's subtree
// — the cost trade-off the paper's optimizer resolves with relational
// statistics. A planned step carries the statistics-derived crossover
// density (planner.StepPlan.Bias: expected rows of the step's name per unit
// of span); without a plan the engine falls back to the treebank-typical
// nodes-per-span constant 2.
func (e *Engine) valueWorthwhile(step *lpath.Step, b bind, postings int, sp *planner.StepPlan) bool {
	if b.row == noRow {
		return true
	}
	switch step.Axis {
	case lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
		ctx := e.s.Row(b.row)
		span := ctx.Right - ctx.Left
		if sp != nil && sp.Bias > 0 {
			return float64(postings) < sp.Bias*float64(span)
		}
		return postings < 2*int(span)
	default:
		// Other axes have cheap dedicated probes.
		return false
	}
}

// staticAccept applies the scope constraint and edge alignment to a
// candidate row; predicates run afterwards in the positional pipeline.
func (e *Engine) staticAccept(step *lpath.Step, b bind, ci int32) bool {
	cand := e.s.Row(ci)
	cl := rowLabel(cand)
	if b.scope != noRow {
		sc := e.s.Row(b.scope)
		if sc.TID != cand.TID || !label.InScope(cl, rowLabel(sc)) {
			return false
		}
	}
	if step.LeftAlign || step.RightAlign {
		ref := e.alignRef(b, cand.TID)
		if ref == noRow {
			return false
		}
		rl := rowLabel(e.s.Row(ref))
		if step.LeftAlign && !label.IsLeftAligned(cl, rl) {
			return false
		}
		if step.RightAlign && !label.IsRightAligned(cl, rl) {
			return false
		}
	}
	return true
}

// alignRef resolves the node that ^/$ compare against: the innermost scope,
// else the context node, else (from the virtual root) the candidate's tree
// root.
func (e *Engine) alignRef(b bind, candTID int32) int32 {
	if b.scope != noRow {
		return b.scope
	}
	if b.row != noRow {
		return b.row
	}
	return e.rootOf(candTID)
}

func (e *Engine) rootOf(tid int32) int32 {
	roots := e.s.Roots()
	i := sort.Search(len(roots), func(i int) bool { return e.s.Row(roots[i]).TID >= tid })
	if i < len(roots) && e.s.Row(roots[i]).TID == tid {
		return roots[i]
	}
	return noRow
}

func rowLabel(r *relstore.Row) label.Label {
	return label.Label{Left: r.Left, Right: r.Right, Depth: r.Depth, ID: r.ID, PID: r.PID}
}

// narrowToWindow returns the subslice of idx covering the evaluation's
// streaming tid window. idx must be tid-ascending — true of every store index
// the virtual-root entry points hand out (the clustered order is
// (name, tid, left, ...), the document-order indexes are (tid, left)-sorted,
// and Roots is tid-sorted). Subslicing keeps borrowed slices borrowed.
func (e *Engine) narrowToWindow(idx []int32, ctx *evalCtx) []int32 {
	if !ctx.windowed {
		return idx
	}
	tids := e.s.Cols().TID
	lo := sort.Search(len(idx), func(i int) bool { return tids[idx[i]] >= ctx.winLo })
	hi := lo + sort.Search(len(idx)-lo, func(i int) bool { return tids[idx[lo+i]] >= ctx.winHi })
	return idx[lo:hi]
}

// isDirectEq reports whether the expression is a direct equality comparison
// on an attribute of the context node, e.g. @lex=saw.
func isDirectEq(c *lpath.CmpExpr) bool {
	if c.Op != "=" || c.Path.Scoped != nil || len(c.Path.Steps) != 1 {
		return false
	}
	return c.Path.Steps[0].Axis == lpath.AxisAttribute
}

// valueDriver describes the value-index access path for a step: whether a
// direct @attr=value predicate makes it available, the posting-list size
// (for the cost decision), and a memoized candidate materialization so the
// posting→element mapping is computed at most once per step evaluation.
type valueDriver struct {
	ok       bool
	value    string
	attr     string // attribute name without the '@' prefix
	postings int
	step     *lpath.Step
	rows     []int32
	rowsSet  bool
}

// initValueDriver inspects the step's predicates for a usable value-index
// access path. The driver lives on the caller's stack; its memoized row
// buffer is arena-owned and released by the caller after the step.
func (e *Engine) initValueDriver(vd *valueDriver, step *lpath.Step) {
	vd.step = step
	if e.disableValueIndex {
		return
	}
	for _, pred := range step.Preds {
		cmp, ok := pred.(*lpath.CmpExpr)
		if !ok || !isDirectEq(cmp) {
			continue
		}
		postings := e.s.ByValue(cmp.Value)
		nameCost := e.s.NameCount(step.Test)
		if step.Wildcard() {
			nameCost = e.s.ElementCount()
		}
		if len(postings) >= nameCost {
			continue
		}
		vd.ok = true
		vd.value = cmp.Value
		vd.attr = cmp.Path.Steps[0].Test
		vd.postings = len(postings)
		return
	}
}

// candidates materializes (once) the element rows carrying the driving
// attribute value and satisfying the node test.
func (vd *valueDriver) candidates(e *Engine, ctx *evalCtx) []int32 {
	if vd.rowsSet {
		return vd.rows
	}
	vd.rowsSet = true
	postings := e.s.ByValue(vd.value)
	cands := ctx.ar.getInts()
	for _, pi := range postings {
		ar := e.s.Row(pi)
		if n := ar.Name; len(n) < 2 || n[0] != '@' || n[1:] != vd.attr {
			continue
		}
		// Posting lists are grouped by attribute name, not tid-sorted, so the
		// streaming window filters linearly (they are small by the cost gate).
		if !ctx.inWindow(ar.TID) {
			continue
		}
		ei, ok := e.s.ElementByID(ar.TID, ar.ID)
		if !ok {
			continue
		}
		if !vd.step.Wildcard() && e.s.Row(ei).Name != vd.step.Test {
			continue
		}
		cands = append(cands, ei)
	}
	vd.rows = cands
	return cands
}

// filterByAxis appends to dst the candidates satisfying the axis relation to
// the context binding, and returns dst. cands is read-only.
func (e *Engine) filterByAxis(cands []int32, step *lpath.Step, b bind, dst []int32) []int32 {
	if b.row == noRow {
		switch step.Axis {
		case lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
			return append(dst, cands...)
		case lpath.AxisChild:
			pids := e.s.Cols().PID
			for _, ci := range cands {
				if pids[ci] == 0 {
					dst = append(dst, ci)
				}
			}
			return dst
		default:
			return dst
		}
	}
	ctx := e.s.Row(b.row)
	cl := rowLabel(ctx)
	tids := e.s.Cols().TID
	for _, ci := range cands {
		if tids[ci] != ctx.TID {
			continue
		}
		if axisHolds(step.Axis, rowLabel(e.s.Row(ci)), cl) {
			dst = append(dst, ci)
		}
	}
	return dst
}

// axisHolds evaluates the Table 2 label predicate for the axis.
func axisHolds(axis lpath.Axis, x, c label.Label) bool {
	switch axis {
	case lpath.AxisSelf:
		return label.IsSelf(x, c)
	case lpath.AxisChild:
		return label.IsChild(x, c)
	case lpath.AxisParent:
		return label.IsParent(x, c)
	case lpath.AxisDescendant:
		return label.IsDescendant(x, c)
	case lpath.AxisDescendantOrSelf:
		return label.IsDescendantOrSelf(x, c)
	case lpath.AxisAncestor:
		return label.IsAncestor(x, c)
	case lpath.AxisAncestorOrSelf:
		return label.IsAncestorOrSelf(x, c)
	case lpath.AxisFollowing:
		return label.IsFollowing(x, c)
	case lpath.AxisFollowingOrSelf:
		return label.IsSelf(x, c) || label.IsFollowing(x, c)
	case lpath.AxisImmediateFollowing:
		return label.IsImmediateFollowing(x, c)
	case lpath.AxisPreceding:
		return label.IsPreceding(x, c)
	case lpath.AxisPrecedingOrSelf:
		return label.IsSelf(x, c) || label.IsPreceding(x, c)
	case lpath.AxisImmediatePreceding:
		return label.IsImmediatePreceding(x, c)
	case lpath.AxisFollowingSibling:
		return label.IsFollowingSibling(x, c)
	case lpath.AxisFollowingSiblingOrSelf:
		return label.IsSelf(x, c) || label.IsFollowingSibling(x, c)
	case lpath.AxisImmediateFollowingSibling:
		return label.IsImmediateFollowingSibling(x, c)
	case lpath.AxisPrecedingSibling:
		return label.IsPrecedingSibling(x, c)
	case lpath.AxisPrecedingSiblingOrSelf:
		return label.IsSelf(x, c) || label.IsPrecedingSibling(x, c)
	case lpath.AxisImmediatePrecedingSibling:
		return label.IsImmediatePrecedingSibling(x, c)
	}
	return false
}

// dedupBinds compacts the bindings in place (the caller must own the slice),
// keeping the first occurrence of each (row, scope) pair.
func dedupBinds(binds []bind, ctx *evalCtx) []bind {
	if len(binds) <= 1 {
		return binds
	}
	seen := ctx.ar.getBindSet()
	out := binds[:0]
	for _, b := range binds {
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	ctx.ar.putBindSet(seen)
	return out
}
