// Package engine is the LPath query engine of Section 4 of the paper: it
// evaluates LPath queries over the interval-labeled relational store by
// translating each location step into an index-assisted join against the
// node relation.
//
// Every axis becomes a sargable range over a clustered name scan (Table 2):
// descendant probes left ∈ [c.left, c.right), immediate-following probes
// left = c.right, the sibling axes probe the {tid, pid} index, and the
// vertical reverse axes walk the pid chain. Value predicates ([@lex=w]) can
// drive a step from the {value, tid, id} secondary index instead of the name
// scan, which is what makes high-selectivity word lookups fast (Section 5.2).
//
// The engine must agree exactly with the reference tree-walking evaluator
// (package treeval); the cross-validation tests enforce this.
package engine

import (
	"fmt"
	"sort"

	"lpath/internal/label"
	"lpath/internal/lpath"
	"lpath/internal/planner"
	"lpath/internal/relstore"
	"lpath/internal/tree"
)

// Engine evaluates LPath queries against an interval-labeled store.
type Engine struct {
	s *relstore.Store
	// pl is the cost-based planner over the store's statistics snapshot;
	// Eval plans each query through it unless noPlanner is set.
	pl *planner.Planner
	// disableValueIndex turns off the value-index access path; used by the
	// ablation benchmarks.
	disableValueIndex bool
	// noPlanner restores the pre-planner evaluation strategy (no predicate
	// reordering, no semijoins, the hardcoded value-index threshold); the
	// differential tests hold the two paths result-identical.
	noPlanner bool
}

// Option configures an Engine.
type Option func(*Engine)

// WithoutValueIndex disables the {value, tid, id} access path so every step
// is driven by name scans; used to measure the value index's contribution.
func WithoutValueIndex() Option {
	return func(e *Engine) { e.disableValueIndex = true }
}

// WithoutPlanner disables cost-based planning: queries evaluate with the
// engine's default strategy only. Used by the differential tests and to
// measure the planner's contribution.
func WithoutPlanner() Option {
	return func(e *Engine) { e.noPlanner = true }
}

// New creates an engine over the store, which must use the interval scheme.
func New(s *relstore.Store, opts ...Option) (*Engine, error) {
	if s.Scheme() != relstore.SchemeInterval {
		return nil, fmt.Errorf("engine: store uses %v labels; the LPath engine requires the interval scheme", s.Scheme())
	}
	e := &Engine{s: s}
	for _, o := range opts {
		o(e)
	}
	var popts []planner.Option
	if e.disableValueIndex {
		popts = append(popts, planner.WithoutValueIndex())
	}
	e.pl = planner.New(s.Statistics(), popts...)
	return e, nil
}

// Plan returns the cost-based plan Eval would execute for the query, or nil
// when planning is disabled. Plans are immutable and may be executed
// concurrently (and on other shards of the same corpus, whose engines share
// the corpus-global statistics).
func (e *Engine) Plan(p *lpath.Path) *planner.Plan {
	if e.noPlanner {
		return nil
	}
	return e.pl.Plan(p)
}

// Match is one query result: a node within a tree.
type Match struct {
	TreeID int
	Node   *tree.Node
}

const noRow = int32(-1)

// bind is one tuple of the running join: the current context row and the
// innermost subtree-scope row (noRow = the virtual super-root / no scope).
type bind struct {
	row   int32
	scope int32
}

// Eval evaluates the query over the whole corpus and returns the distinct
// matches of the final step in (tree, document) order. Unless the engine
// was built WithoutPlanner, the query is planned first; the plan never
// changes the result, only the evaluation strategy.
func (e *Engine) Eval(p *lpath.Path) ([]Match, error) {
	return e.EvalPlan(p, e.Plan(p))
}

// EvalPlan evaluates the query executing the given plan (nil = the default
// strategy). The plan must have been built for this query's AST.
func (e *Engine) EvalPlan(p *lpath.Path, plan *planner.Plan) ([]Match, error) {
	if err := lpath.Validate(p); err != nil {
		return nil, err
	}
	rows, err := e.evalRows(p, newEvalCtx(plan))
	if err != nil {
		return nil, err
	}
	out := make([]Match, 0, len(rows))
	for _, ri := range rows {
		r := e.s.Row(ri)
		out = append(out, Match{TreeID: int(r.TID), Node: e.s.NodeFor(r)})
	}
	return out, nil
}

// evalRows runs the join pipeline and returns the distinct result rows in
// (tree, document) order.
func (e *Engine) evalRows(p *lpath.Path, ctx *evalCtx) ([]int32, error) {
	binds, err := e.evalPath(p, []bind{{row: noRow, scope: noRow}}, ctx)
	if err != nil {
		return nil, err
	}
	rows := make([]int32, 0, len(binds))
	seen := make(map[int32]bool, len(binds))
	for _, b := range binds {
		if b.row != noRow && !seen[b.row] {
			seen[b.row] = true
			rows = append(rows, b.row)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := e.s.Row(rows[i]), e.s.Row(rows[j])
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.ID < b.ID // ids are preorder: document order
	})
	return rows, nil
}

// Count returns the number of distinct matches without materializing them:
// the same join pipeline as Eval, skipping the document-order sort and the
// row → node mapping.
func (e *Engine) Count(p *lpath.Path) (int, error) {
	return e.CountPlan(p, e.Plan(p))
}

// CountPlan is Count executing the given plan (nil = default strategy).
func (e *Engine) CountPlan(p *lpath.Path, plan *planner.Plan) (int, error) {
	if err := lpath.Validate(p); err != nil {
		return 0, err
	}
	binds, err := e.evalPath(p, []bind{{row: noRow, scope: noRow}}, newEvalCtx(plan))
	if err != nil {
		return 0, err
	}
	seen := make(map[int32]bool, len(binds))
	n := 0
	for _, b := range binds {
		if b.row != noRow && !seen[b.row] {
			seen[b.row] = true
			n++
		}
	}
	return n, nil
}

// Explain plans the query, executes the plan with cardinality counters, and
// returns the rendered EXPLAIN report (estimated vs actual rows per step).
// It always plans, even on a WithoutPlanner engine — EXPLAIN exists to show
// what the planner would do.
func (e *Engine) Explain(p *lpath.Path) (string, error) {
	if err := lpath.Validate(p); err != nil {
		return "", err
	}
	plan := e.pl.Plan(p)
	ctx := newEvalCtx(plan)
	ctx.act = &planner.Actuals{}
	rows, err := e.evalRows(p, ctx)
	if err != nil {
		return "", err
	}
	ctx.act.Matches = len(rows)
	return plan.Render(ctx.act), nil
}

// evalPath runs the join pipeline for one relative path.
func (e *Engine) evalPath(p *lpath.Path, binds []bind, ctx *evalCtx) ([]bind, error) {
	var err error
	for i := range p.Steps {
		binds, err = e.evalStep(&p.Steps[i], binds, ctx)
		if err != nil {
			return nil, err
		}
		if len(binds) == 0 {
			return nil, nil
		}
	}
	if p.Scoped != nil {
		// Open a subtree scope at each current node and evaluate the tail.
		scoped := make([]bind, 0, len(binds))
		for _, b := range binds {
			row := b.row
			if row == noRow {
				// Scope on the virtual root: evaluate per tree root.
				for _, ri := range e.s.Roots() {
					scoped = append(scoped, bind{row: ri, scope: ri})
				}
				continue
			}
			scoped = append(scoped, bind{row: row, scope: row})
		}
		return e.evalPath(p.Scoped, dedup(scoped), ctx)
	}
	return binds, nil
}

// evalStep performs one join step: for every context binding, probe the
// store for candidate rows on the axis, then filter by scope, alignment and
// predicates.
func (e *Engine) evalStep(step *lpath.Step, binds []bind, ctx *evalCtx) ([]bind, error) {
	if step.Axis == lpath.AxisAttribute {
		return nil, lpath.ErrAttrInMainPath
	}
	positional := step.HasPositional()
	var vd *valueDriver
	if positional {
		// The value-index shortcut would reorder the predicate pipeline
		// and corrupt position(); fall back to axis probes.
		vd = &valueDriver{}
	} else {
		vd = e.valueDriver(step)
	}
	// Plan-directed choices: the statistics-derived value-probe threshold
	// and the cheapest-first predicate order. Neither changes the result —
	// reordering is restricted to commutative conjuncts, and the value probe
	// is an access path, not a filter.
	sp := ctx.stepPlan(step)
	preds := step.Preds
	if sp != nil && sp.Reordered {
		preds = sp.PredExprs()
	}
	var out []bind
	// A single binding's probe already yields distinct rows, so the
	// cross-binding dedup map is only needed for fan-in — predicates
	// evaluate paths from one binding at a time and skip it entirely.
	var seen map[bind]bool
	if len(binds) > 1 {
		seen = make(map[bind]bool)
	}
	for _, b := range binds {
		var cands []int32
		useValue := vd.ok && e.valueWorthwhile(step, b, vd.postings, sp)
		if useValue {
			cands = e.filterByAxis(vd.candidates(e), step, b)
		} else {
			cands = e.axisCandidates(step, b)
		}
		// Static filters: subtree scope and edge alignment.
		filtered := cands[:0:0]
		for _, ci := range cands {
			ok := e.staticAccept(step, b, ci)
			if ok {
				filtered = append(filtered, ci)
			}
		}
		// position() counts within one context node. The virtual root stands
		// for every tree root at once, so its candidates are partitioned per
		// tree before counting — the per-tree semantics the reference oracle
		// and the sharded parallel path share.
		groups := [][]int32{filtered}
		if positional && b.row == noRow {
			groups = e.groupByTID(filtered)
		}
		for _, g := range groups {
			// Positional ordering: document order (preorder ids), reversed
			// for the reverse axes.
			if positional {
				sort.Slice(g, func(i, j int) bool {
					return e.s.Row(g[i]).ID < e.s.Row(g[j]).ID
				})
				if lpath.ReverseAxis(step.Axis) {
					for i, j := 0, len(g)-1; i < j; i, j = i+1, j-1 {
						g[i], g[j] = g[j], g[i]
					}
				}
			}
			// Predicate pipeline with positional context.
			for _, pred := range preds {
				if useValue {
					if cmp, ok := pred.(*lpath.CmpExpr); ok && isDirectEq(cmp) &&
						cmp.Value == vd.value && "@"+cmp.Path.Steps[0].Test == vd.attrName {
						continue // already satisfied by the value-index probe
					}
				}
				var err error
				g, err = e.filterPred(pred, b.scope, g, ctx)
				if err != nil {
					return nil, err
				}
				if len(g) == 0 {
					break
				}
			}
			for _, ci := range g {
				nb := bind{row: ci, scope: b.scope}
				if seen != nil {
					if seen[nb] {
						continue
					}
					seen[nb] = true
				}
				out = append(out, nb)
			}
		}
	}
	ctx.countStep(sp, len(out))
	return out, nil
}

// groupByTID partitions candidate rows per tree, trees in ascending tid
// order, so position() under the virtual root never counts across trees.
func (e *Engine) groupByTID(cands []int32) [][]int32 {
	byTID := make(map[int32][]int32)
	tids := make([]int32, 0, 4)
	for _, ci := range cands {
		tid := e.s.Row(ci).TID
		if _, ok := byTID[tid]; !ok {
			tids = append(tids, tid)
		}
		byTID[tid] = append(byTID[tid], ci)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	out := make([][]int32, len(tids))
	for i, tid := range tids {
		out[i] = byTID[tid]
	}
	return out
}

// filterPred keeps the candidates satisfying one predicate, supplying the
// positional context.
func (e *Engine) filterPred(pred lpath.Expr, scope int32, cands []int32, ctx *evalCtx) ([]int32, error) {
	out := cands[:0:0]
	size := len(cands)
	for i, ci := range cands {
		ok, err := e.evalExpr(pred, bind{row: ci, scope: scope}, i+1, size, ctx)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, ci)
		}
	}
	return out, nil
}

// valueWorthwhile decides, per binding, whether driving the step from the
// value index beats an axis probe: always from the virtual root (the probe
// would scan the whole name range), and otherwise only when the posting
// list is smaller than the expected cost of scanning the context's subtree
// — the cost trade-off the paper's optimizer resolves with relational
// statistics. A planned step carries the statistics-derived crossover
// density (planner.StepPlan.Bias: expected rows of the step's name per unit
// of span); without a plan the engine falls back to the treebank-typical
// nodes-per-span constant 2.
func (e *Engine) valueWorthwhile(step *lpath.Step, b bind, postings int, sp *planner.StepPlan) bool {
	if b.row == noRow {
		return true
	}
	switch step.Axis {
	case lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
		ctx := e.s.Row(b.row)
		span := ctx.Right - ctx.Left
		if sp != nil && sp.Bias > 0 {
			return float64(postings) < sp.Bias*float64(span)
		}
		return postings < 2*int(span)
	default:
		// Other axes have cheap dedicated probes.
		return false
	}
}

// staticAccept applies the scope constraint and edge alignment to a
// candidate row; predicates run afterwards in the positional pipeline.
func (e *Engine) staticAccept(step *lpath.Step, b bind, ci int32) bool {
	cand := e.s.Row(ci)
	cl := rowLabel(cand)
	if b.scope != noRow {
		sc := e.s.Row(b.scope)
		if sc.TID != cand.TID || !label.InScope(cl, rowLabel(sc)) {
			return false
		}
	}
	if step.LeftAlign || step.RightAlign {
		ref := e.alignRef(b, cand.TID)
		if ref == noRow {
			return false
		}
		rl := rowLabel(e.s.Row(ref))
		if step.LeftAlign && !label.IsLeftAligned(cl, rl) {
			return false
		}
		if step.RightAlign && !label.IsRightAligned(cl, rl) {
			return false
		}
	}
	return true
}

// alignRef resolves the node that ^/$ compare against: the innermost scope,
// else the context node, else (from the virtual root) the candidate's tree
// root.
func (e *Engine) alignRef(b bind, candTID int32) int32 {
	if b.scope != noRow {
		return b.scope
	}
	if b.row != noRow {
		return b.row
	}
	return e.rootOf(candTID)
}

func (e *Engine) rootOf(tid int32) int32 {
	roots := e.s.Roots()
	i := sort.Search(len(roots), func(i int) bool { return e.s.Row(roots[i]).TID >= tid })
	if i < len(roots) && e.s.Row(roots[i]).TID == tid {
		return roots[i]
	}
	return noRow
}

func rowLabel(r *relstore.Row) label.Label {
	return label.Label{Left: r.Left, Right: r.Right, Depth: r.Depth, ID: r.ID, PID: r.PID}
}

// isDirectEq reports whether the expression is a direct equality comparison
// on an attribute of the context node, e.g. @lex=saw.
func isDirectEq(c *lpath.CmpExpr) bool {
	if c.Op != "=" || c.Path.Scoped != nil || len(c.Path.Steps) != 1 {
		return false
	}
	return c.Path.Steps[0].Axis == lpath.AxisAttribute
}

// valueDriver describes the value-index access path for a step: whether a
// direct @attr=value predicate makes it available, the posting-list size
// (for the cost decision), and a memoized candidate materialization so the
// posting→element mapping is computed at most once per step evaluation.
type valueDriver struct {
	ok       bool
	value    string
	attrName string
	postings int
	step     *lpath.Step
	rows     []int32
	rowsSet  bool
}

// valueDriver inspects the step's predicates for a usable value-index
// access path.
func (e *Engine) valueDriver(step *lpath.Step) *valueDriver {
	vd := &valueDriver{step: step}
	if e.disableValueIndex {
		return vd
	}
	for _, pred := range step.Preds {
		cmp, ok := pred.(*lpath.CmpExpr)
		if !ok || !isDirectEq(cmp) {
			continue
		}
		postings := e.s.ByValue(cmp.Value)
		nameCost := e.s.NameCount(step.Test)
		if step.Wildcard() {
			nameCost = e.s.ElementCount()
		}
		if len(postings) >= nameCost {
			continue
		}
		vd.ok = true
		vd.value = cmp.Value
		vd.attrName = "@" + cmp.Path.Steps[0].Test
		vd.postings = len(postings)
		return vd
	}
	return vd
}

// candidates materializes (once) the element rows carrying the driving
// attribute value and satisfying the node test.
func (vd *valueDriver) candidates(e *Engine) []int32 {
	if vd.rowsSet {
		return vd.rows
	}
	vd.rowsSet = true
	postings := e.s.ByValue(vd.value)
	cands := make([]int32, 0, len(postings))
	for _, pi := range postings {
		ar := e.s.Row(pi)
		if ar.Name != vd.attrName {
			continue
		}
		ei, ok := e.s.ElementByID(ar.TID, ar.ID)
		if !ok {
			continue
		}
		if !vd.step.Wildcard() && e.s.Row(ei).Name != vd.step.Test {
			continue
		}
		cands = append(cands, ei)
	}
	vd.rows = cands
	return cands
}

// filterByAxis filters a precomputed candidate list by the axis relation to
// the context binding.
func (e *Engine) filterByAxis(cands []int32, step *lpath.Step, b bind) []int32 {
	if b.row == noRow {
		switch step.Axis {
		case lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
			return cands
		case lpath.AxisChild:
			out := cands[:0:0]
			for _, ci := range cands {
				if e.s.Row(ci).PID == 0 {
					out = append(out, ci)
				}
			}
			return out
		default:
			return nil
		}
	}
	ctx := e.s.Row(b.row)
	cl := rowLabel(ctx)
	out := cands[:0:0]
	for _, ci := range cands {
		r := e.s.Row(ci)
		if r.TID != ctx.TID {
			continue
		}
		if axisHolds(step.Axis, rowLabel(r), cl) {
			out = append(out, ci)
		}
	}
	return out
}

// axisHolds evaluates the Table 2 label predicate for the axis.
func axisHolds(axis lpath.Axis, x, c label.Label) bool {
	switch axis {
	case lpath.AxisSelf:
		return label.IsSelf(x, c)
	case lpath.AxisChild:
		return label.IsChild(x, c)
	case lpath.AxisParent:
		return label.IsParent(x, c)
	case lpath.AxisDescendant:
		return label.IsDescendant(x, c)
	case lpath.AxisDescendantOrSelf:
		return label.IsDescendantOrSelf(x, c)
	case lpath.AxisAncestor:
		return label.IsAncestor(x, c)
	case lpath.AxisAncestorOrSelf:
		return label.IsAncestorOrSelf(x, c)
	case lpath.AxisFollowing:
		return label.IsFollowing(x, c)
	case lpath.AxisFollowingOrSelf:
		return label.IsSelf(x, c) || label.IsFollowing(x, c)
	case lpath.AxisImmediateFollowing:
		return label.IsImmediateFollowing(x, c)
	case lpath.AxisPreceding:
		return label.IsPreceding(x, c)
	case lpath.AxisPrecedingOrSelf:
		return label.IsSelf(x, c) || label.IsPreceding(x, c)
	case lpath.AxisImmediatePreceding:
		return label.IsImmediatePreceding(x, c)
	case lpath.AxisFollowingSibling:
		return label.IsFollowingSibling(x, c)
	case lpath.AxisFollowingSiblingOrSelf:
		return label.IsSelf(x, c) || label.IsFollowingSibling(x, c)
	case lpath.AxisImmediateFollowingSibling:
		return label.IsImmediateFollowingSibling(x, c)
	case lpath.AxisPrecedingSibling:
		return label.IsPrecedingSibling(x, c)
	case lpath.AxisPrecedingSiblingOrSelf:
		return label.IsSelf(x, c) || label.IsPrecedingSibling(x, c)
	case lpath.AxisImmediatePrecedingSibling:
		return label.IsImmediatePrecedingSibling(x, c)
	}
	return false
}

func dedup(binds []bind) []bind {
	seen := make(map[bind]bool, len(binds))
	out := binds[:0:0]
	for _, b := range binds {
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}
