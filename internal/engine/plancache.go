// The compiled-plan cache: parsing and validating an LPath query is pure
// CPU work that repeats verbatim under production traffic, where a small
// set of query texts dominates. PlanCache memoizes text → compiled plan
// with LRU eviction so the parse+validate cost is paid once per distinct
// query, and exposes hit/miss/eviction counters for observability.

package engine

import (
	"container/list"
	"sync"

	"lpath/internal/lpath"
	"lpath/internal/planner"
)

// DefaultPlanCacheSize is the capacity used when none is given.
const DefaultPlanCacheSize = 128

// PlanCache is a bounded LRU cache from query text to compiled plan. It is
// safe for concurrent use. Plans are immutable after compilation (the
// engine never mutates a *lpath.Path), so a cached plan may be evaluated
// from many goroutines at once.
type PlanCache struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used; values are *planEntry
	entries   map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type planEntry struct {
	text string
	plan *lpath.Path
	// exec is the cost-based executable plan for the AST, valid for the
	// store generation gen. The AST outlives store rebuilds (parsing is
	// corpus-independent); the exec plan is re-derived when statistics
	// change. planned distinguishes a cached nil plan (planning disabled)
	// from an entry that has not been planned yet.
	exec    *planner.Plan
	gen     uint64
	planned bool
}

// NewPlanCache creates a cache holding at most capacity plans; a
// non-positive capacity selects DefaultPlanCacheSize.
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = DefaultPlanCacheSize
	}
	return &PlanCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached plan for the query text, marking it most recently
// used.
func (c *PlanCache) Get(text string) (*lpath.Path, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[text]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*planEntry).plan, true
}

// Put inserts or refreshes a plan, evicting the least recently used entry
// when the cache is full.
func (c *PlanCache) Put(text string, plan *lpath.Path) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[text]; ok {
		ent := el.Value.(*planEntry)
		ent.plan = plan
		// A replaced AST invalidates any exec plan keyed to the old one.
		ent.exec, ent.gen, ent.planned = nil, 0, false
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*planEntry).text)
		c.evictions++
	}
	c.entries[text] = c.order.PushFront(&planEntry{text: text, plan: plan})
}

// GetOrCompile returns the cached plan for the text, compiling and caching
// it on a miss. Concurrent misses on the same text may compile more than
// once; every compilation produces an equivalent immutable plan, so the
// duplicate work is harmless and the cache keeps whichever lands last.
// Compilation errors are returned and not cached.
func (c *PlanCache) GetOrCompile(text string, compile func(string) (*lpath.Path, error)) (*lpath.Path, error) {
	if p, ok := c.Get(text); ok {
		return p, nil
	}
	p, err := compile(text)
	if err != nil {
		return nil, err
	}
	c.Put(text, p)
	return p, nil
}

// GetOrPlan is GetOrCompile extended with the cost-based executable plan:
// it returns the cached AST and the exec plan valid for store generation
// gen, compiling and/or planning on demand. A cached entry from an older
// generation keeps its AST but is re-planned, so corpus rebuilds invalidate
// plans without re-parsing. plan may return nil (planning disabled); the
// nil is cached like any other plan.
func (c *PlanCache) GetOrPlan(text string, gen uint64, compile func(string) (*lpath.Path, error), plan func(*lpath.Path) *planner.Plan) (*lpath.Path, *planner.Plan, error) {
	c.mu.Lock()
	if el, ok := c.entries[text]; ok {
		ent := el.Value.(*planEntry)
		c.order.MoveToFront(el)
		if ent.planned && ent.gen == gen {
			c.hits++
			ast, exec := ent.plan, ent.exec
			c.mu.Unlock()
			return ast, exec, nil
		}
		// AST hit, stale (or absent) exec plan: re-plan outside the lock.
		c.hits++
		ast := ent.plan
		c.mu.Unlock()
		exec := plan(ast)
		c.putExec(text, ast, exec, gen)
		return ast, exec, nil
	}
	c.misses++
	c.mu.Unlock()

	ast, err := compile(text)
	if err != nil {
		return nil, nil, err
	}
	exec := plan(ast)
	c.putExec(text, ast, exec, gen)
	return ast, exec, nil
}

// putExec inserts or refreshes an entry carrying an exec plan.
func (c *PlanCache) putExec(text string, ast *lpath.Path, exec *planner.Plan, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[text]; ok {
		ent := el.Value.(*planEntry)
		ent.plan, ent.exec, ent.gen, ent.planned = ast, exec, gen, true
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*planEntry).text)
		c.evictions++
	}
	c.entries[text] = c.order.PushFront(&planEntry{
		text: text, plan: ast, exec: exec, gen: gen, planned: true,
	})
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// CacheStats is a snapshot of the cache's counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Len       int
	Capacity  int
}

// Stats returns a consistent snapshot of the counters.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Len:       c.order.Len(),
		Capacity:  c.capacity,
	}
}
