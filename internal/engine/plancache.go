// The compiled-plan cache: parsing and validating an LPath query is pure
// CPU work that repeats verbatim under production traffic, where a small
// set of query texts dominates. PlanCache memoizes text → compiled plan
// with LRU eviction so the parse+validate cost is paid once per distinct
// query, and exposes hit/miss/eviction counters for observability.

package engine

import (
	"container/list"
	"sync"

	"lpath/internal/lpath"
)

// DefaultPlanCacheSize is the capacity used when none is given.
const DefaultPlanCacheSize = 128

// PlanCache is a bounded LRU cache from query text to compiled plan. It is
// safe for concurrent use. Plans are immutable after compilation (the
// engine never mutates a *lpath.Path), so a cached plan may be evaluated
// from many goroutines at once.
type PlanCache struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used; values are *planEntry
	entries   map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type planEntry struct {
	text string
	plan *lpath.Path
}

// NewPlanCache creates a cache holding at most capacity plans; a
// non-positive capacity selects DefaultPlanCacheSize.
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = DefaultPlanCacheSize
	}
	return &PlanCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached plan for the query text, marking it most recently
// used.
func (c *PlanCache) Get(text string) (*lpath.Path, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[text]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*planEntry).plan, true
}

// Put inserts or refreshes a plan, evicting the least recently used entry
// when the cache is full.
func (c *PlanCache) Put(text string, plan *lpath.Path) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[text]; ok {
		el.Value.(*planEntry).plan = plan
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*planEntry).text)
		c.evictions++
	}
	c.entries[text] = c.order.PushFront(&planEntry{text: text, plan: plan})
}

// GetOrCompile returns the cached plan for the text, compiling and caching
// it on a miss. Concurrent misses on the same text may compile more than
// once; every compilation produces an equivalent immutable plan, so the
// duplicate work is harmless and the cache keeps whichever lands last.
// Compilation errors are returned and not cached.
func (c *PlanCache) GetOrCompile(text string, compile func(string) (*lpath.Path, error)) (*lpath.Path, error) {
	if p, ok := c.Get(text); ok {
		return p, nil
	}
	p, err := compile(text)
	if err != nil {
		return nil, err
	}
	c.Put(text, p)
	return p, nil
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// CacheStats is a snapshot of the cache's counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Len       int
	Capacity  int
}

// Stats returns a consistent snapshot of the counters.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Len:       c.order.Len(),
		Capacity:  c.capacity,
	}
}
