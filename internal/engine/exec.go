package engine

import (
	"context"

	"lpath/internal/bitset"
	"lpath/internal/lpath"
	"lpath/internal/planner"
)

// Plan-directed execution state. An evalCtx travels through one evaluation
// (one Eval/Count/Explain call): it carries the cost-based plan the steps
// consult, the memoized semijoin satisfier sets, and — for EXPLAIN — the
// actual-cardinality counters. A nil plan (or a nil field lookup) means the
// engine's default strategy, which is exactly the pre-planner behavior; the
// differential tests and fuzzers hold the two result-identical.

type satKey struct {
	expr  lpath.Expr
	scope int32
}

type evalCtx struct {
	plan *planner.Plan
	// sat memoizes semijoin satisfier sets per (filter expression, scope):
	// within one evaluation the same filter under the same scope always has
	// the same satisfiers, however many candidates probe it.
	sat map[satKey]map[int32]bool
	// satBits is the dense counterpart of sat (bitmap.go): arena-owned
	// satisfier bitsets for unscoped filters, including memoized boolean
	// combinations. satNeg marks combination sets stored complemented (the
	// De Morgan rewrites keep the kernels to And/Or/AndNot).
	satBits map[satKey]*bitset.Set
	satNeg  map[satKey]bool
	// act collects actual cardinalities when EXPLAIN runs the query.
	act *planner.Actuals
	// batch is the cross-query memo of the enclosing EvalBatch call, nil
	// outside batched evaluation (batch.go). Unlike sat/satBits it is keyed
	// by canonical structural keys, not AST identity, so it survives across
	// the batch's per-query evaluation contexts.
	batch *batchMemo
	// ar is the evaluation's scratch arena (see arena.go); it survives
	// across evaluations via the Engine's evalCtx pool.
	ar *arena
	// tw is the twig executor's reusable run state (cursors, per-step
	// stacks/heaps, counters); like the arena it survives across
	// evaluations, keeping warm twig runs allocation-free.
	tw twigScratch

	// Cooperative cancellation. cctx is the evaluation's context — nil when
	// the caller's context can never be cancelled, so uncancellable
	// evaluations pay nothing. The executors' hot loops call interrupted(),
	// which polls cctx.Err() once every cancelStride calls and latches the
	// result in cerr; evalPath propagates cerr out of executors (like the
	// twig sweep) whose signatures carry no error.
	cctx context.Context
	tick int
	cerr error

	// Streaming tid window (stream.go). When windowed is set, every
	// virtual-root entry point — the probe's first-step candidate lists, the
	// twig root-mode cursor windows, the scoped-roots expansion, semijoin
	// seeds and the value-driver postings — restricts itself to trees with
	// tid ∈ [winLo, winHi). Axes never cross trees, so a windowed evaluation
	// is exactly the full evaluation restricted to that tree range, which is
	// what lets EvalLimit evaluate batches of trees and stop early.
	winLo, winHi int32
	windowed     bool
}

// inWindow reports whether a tree falls inside the streaming tid window
// (always true for unwindowed evaluations).
func (c *evalCtx) inWindow(tid int32) bool {
	return !c.windowed || (tid >= c.winLo && tid < c.winHi)
}

// cancelStride bounds how many interrupted() calls pass between two
// ctx.Err() polls. Each call between polls is a counter increment, so the
// hot loops stay cheap while a cancelled evaluation is still abandoned
// within a few thousand loop iterations — microseconds of work.
const cancelStride = 4096

// interrupted reports whether the evaluation's context is done. The result
// is sticky: once the context reports an error the evaluation stays
// interrupted, whatever loop asks next.
func (c *evalCtx) interrupted() bool {
	if c.cctx == nil {
		return false
	}
	if c.cerr != nil {
		return true
	}
	c.tick++
	if c.tick < cancelStride {
		return false
	}
	c.tick = 0
	if err := c.cctx.Err(); err != nil {
		c.cerr = err
		return true
	}
	return false
}

// newEvalCtx takes a pooled context for one evaluation; releaseCtx returns
// it. The arena's buffers are retained across evaluations — that retention
// is what makes steady-state execution of a compiled plan allocation-free.
// cctx is recorded for cooperative cancellation only when it can actually be
// cancelled (Done() != nil); context.Background() and friends cost nothing.
func (e *Engine) newEvalCtx(plan *planner.Plan, cctx context.Context) *evalCtx {
	ctx := e.ctxPool.Get().(*evalCtx)
	ctx.plan = plan
	if cctx != nil && cctx.Done() != nil {
		ctx.cctx = cctx
	}
	return ctx
}

func (e *Engine) releaseCtx(ctx *evalCtx) {
	ctx.plan = nil
	ctx.act = nil
	ctx.batch = nil
	ctx.cctx = nil
	ctx.tick = 0
	ctx.cerr = nil
	ctx.winLo, ctx.winHi = 0, 0
	ctx.windowed = false
	// Satisfier sets are valid only for the evaluation's plan identity; the
	// outer map is kept, the per-expression sets are dropped.
	ctx.clearSat()
	e.ctxPool.Put(ctx)
}

// clearSat drops the memoized semijoin satisfier sets. The streaming
// evaluator also calls it between tid-window batches: a satisfier set built
// under one window is seeded from that window's trees only and must not
// answer probes from the next. A map that grew large is released entirely —
// clear() costs O(capacity) and maps never shrink, so retaining it would tax
// every later evaluation.
func (c *evalCtx) clearSat() {
	if len(c.sat) > 64 {
		c.sat = nil
	} else {
		clear(c.sat)
	}
	// Satisfier bitsets recycle through the arena: unlike maps, a bitset's
	// reset cost is proportional to the next evaluation's row count, not to
	// its own peak size, so they always pool.
	for _, s := range c.satBits {
		c.ar.putBitset(s)
	}
	clear(c.satBits)
	clear(c.satNeg)
}

func (c *evalCtx) stepPlan(s *lpath.Step) *planner.StepPlan {
	if c == nil || c.plan == nil {
		return nil
	}
	return c.plan.Step(s)
}

func (c *evalCtx) semijoin(x lpath.Expr) *planner.Semijoin {
	if c == nil || c.plan == nil {
		return nil
	}
	return c.plan.SemijoinFor(x)
}

func (c *evalCtx) countStep(sp *planner.StepPlan, n int) {
	if c == nil || c.act == nil || sp == nil {
		return
	}
	if c.act.Steps == nil {
		c.act.Steps = make(map[*planner.StepPlan]int)
	}
	c.act.Steps[sp] += n
}

func (c *evalCtx) countSemi(x lpath.Expr, seed, set int) {
	if c == nil || c.act == nil {
		return
	}
	if c.act.SemiSeed == nil {
		c.act.SemiSeed = make(map[lpath.Expr]int)
		c.act.SemiSet = make(map[lpath.Expr]int)
	}
	c.act.SemiSeed[x] = seed
	c.act.SemiSet[x] = set
}
