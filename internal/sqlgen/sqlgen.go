// Package sqlgen translates LPath queries into SQL over the node relation
//
//	node(tid, left, right, depth, id, pid, name, value)
//
// following the translation strategy sketched in Section 4 of the paper
// (after DeHaan et al. and Li & Moon): each location step becomes a
// self-join whose join condition is the Table 2 label comparison for the
// step's axis; predicates become EXISTS subqueries (NOT EXISTS for not()),
// subtree scoping adds containment conjuncts against the scope alias, and
// edge alignment adds left/right equality conjuncts.
//
// The in-process engine (package engine) executes the equivalent plans
// directly; this package exists to document the translation, to test that
// every axis has a SQL rendering, and to let the CLI print the SQL for a
// query the way the paper's yacc-based translator did.
package sqlgen

import (
	"fmt"
	"strings"

	"lpath/internal/lpath"
)

// Translate renders the LPath query as a single SQL SELECT statement
// returning the distinct (tid, id) pairs of the final step's matches.
func Translate(p *lpath.Path) (string, error) {
	if err := lpath.Validate(p); err != nil {
		return "", err
	}
	g := &gen{}
	last, where, err := g.path(p, "", "")
	if err != nil {
		return "", err
	}
	if last == "" {
		return "", fmt.Errorf("sqlgen: empty query")
	}
	var b strings.Builder
	b.WriteString("SELECT DISTINCT ")
	b.WriteString(last + ".tid, " + last + ".id\n")
	b.WriteString("FROM " + strings.Join(g.from, ", ") + "\n")
	b.WriteString("WHERE " + strings.Join(where, "\n  AND "))
	b.WriteString("\nORDER BY " + last + ".tid, " + last + ".id")
	return b.String(), nil
}

type gen struct {
	n    int
	from []string
}

// alias allocates a fresh relation alias in the top-level FROM clause.
func (g *gen) alias() string {
	g.n++
	a := fmt.Sprintf("n%d", g.n)
	g.from = append(g.from, "node "+a)
	return a
}

// subAlias allocates an alias for a subquery without adding it to the
// top-level FROM.
func (g *gen) subAlias() string {
	g.n++
	return fmt.Sprintf("s%d", g.n)
}

// path emits conjuncts for a relative path evaluated from ctx ("" = the
// virtual super-root) under scope ("" = none). It returns the alias bound to
// the final step and the accumulated conjuncts.
func (g *gen) path(p *lpath.Path, ctx, scope string) (string, []string, error) {
	var where []string
	cur := ctx
	for i := range p.Steps {
		step := &p.Steps[i]
		if step.Axis == lpath.AxisAttribute {
			return "", nil, lpath.ErrAttrInMainPath
		}
		a := g.alias()
		conds, err := g.stepConds(step, a, cur, scope)
		if err != nil {
			return "", nil, err
		}
		where = append(where, conds...)
		cur = a
	}
	if p.Scoped != nil {
		inner := cur
		if inner == "" {
			// Scope on the virtual root: each tree root.
			inner = g.alias()
			where = append(where, inner+".pid = 0")
		}
		last, conds, err := g.path(p.Scoped, inner, inner)
		if err != nil {
			return "", nil, err
		}
		where = append(where, conds...)
		cur = last
	}
	return cur, where, nil
}

// stepConds emits the conjuncts for one step bound to alias a with context
// alias ctx.
func (g *gen) stepConds(step *lpath.Step, a, ctx, scope string) ([]string, error) {
	var where []string
	if !step.Wildcard() {
		where = append(where, fmt.Sprintf("%s.name = %s", a, quote(step.Test)))
	} else {
		where = append(where, fmt.Sprintf("%s.name NOT LIKE '@%%'", a))
	}
	if ctx != "" {
		where = append(where, fmt.Sprintf("%s.tid = %s.tid", a, ctx))
		where = append(where, axisConds(step.Axis, a, ctx)...)
	} else {
		switch step.Axis {
		case lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
			// Every node descends from the virtual root: no constraint.
		case lpath.AxisChild:
			where = append(where, a+".pid = 0")
		default:
			return nil, fmt.Errorf("sqlgen: axis %s cannot start a query", step.Axis)
		}
	}
	if scope != "" {
		where = append(where,
			fmt.Sprintf("%s.left >= %s.left", a, scope),
			fmt.Sprintf("%s.right <= %s.right", a, scope),
			fmt.Sprintf("%s.depth >= %s.depth", a, scope))
	}
	if step.LeftAlign || step.RightAlign {
		ref := scope
		if ref == "" {
			ref = ctx
		}
		if ref == "" {
			return nil, fmt.Errorf("sqlgen: alignment on the first step requires a scope")
		}
		if step.LeftAlign {
			where = append(where, fmt.Sprintf("%s.left = %s.left", a, ref))
		}
		if step.RightAlign {
			where = append(where, fmt.Sprintf("%s.right = %s.right", a, ref))
		}
	}
	for _, pred := range step.Preds {
		c, err := g.exprCond(pred, a, scope)
		if err != nil {
			return nil, err
		}
		where = append(where, c)
	}
	return where, nil
}

// axisConds renders the Table 2 label comparison of the axis between alias a
// (the candidate) and alias c (the context).
func axisConds(axis lpath.Axis, a, c string) []string {
	f := func(format string, args ...any) string { return fmt.Sprintf(format, args...) }
	switch axis {
	case lpath.AxisSelf:
		return []string{f("%s.id = %s.id", a, c)}
	case lpath.AxisChild:
		return []string{f("%s.pid = %s.id", a, c)}
	case lpath.AxisParent:
		return []string{f("%s.id = %s.pid", a, c)}
	case lpath.AxisDescendant:
		return []string{f("%s.left >= %s.left", a, c), f("%s.right <= %s.right", a, c), f("%s.depth > %s.depth", a, c)}
	case lpath.AxisDescendantOrSelf:
		return []string{f("%s.left >= %s.left", a, c), f("%s.right <= %s.right", a, c), f("%s.depth >= %s.depth", a, c)}
	case lpath.AxisAncestor:
		return []string{f("%s.left <= %s.left", a, c), f("%s.right >= %s.right", a, c), f("%s.depth < %s.depth", a, c)}
	case lpath.AxisAncestorOrSelf:
		return []string{f("%s.left <= %s.left", a, c), f("%s.right >= %s.right", a, c), f("%s.depth <= %s.depth", a, c)}
	case lpath.AxisImmediateFollowing:
		return []string{f("%s.left = %s.right", a, c)}
	case lpath.AxisFollowing:
		return []string{f("%s.left >= %s.right", a, c)}
	case lpath.AxisFollowingOrSelf:
		return []string{f("(%s.left >= %s.right OR %s.id = %s.id)", a, c, a, c)}
	case lpath.AxisImmediatePreceding:
		return []string{f("%s.right = %s.left", a, c)}
	case lpath.AxisPreceding:
		return []string{f("%s.right <= %s.left", a, c)}
	case lpath.AxisPrecedingOrSelf:
		return []string{f("(%s.right <= %s.left OR %s.id = %s.id)", a, c, a, c)}
	case lpath.AxisImmediateFollowingSibling:
		return []string{f("%s.pid = %s.pid", a, c), f("%s.left = %s.right", a, c)}
	case lpath.AxisFollowingSibling:
		return []string{f("%s.pid = %s.pid", a, c), f("%s.left >= %s.right", a, c)}
	case lpath.AxisFollowingSiblingOrSelf:
		return []string{f("%s.pid = %s.pid", a, c), f("(%s.left >= %s.right OR %s.id = %s.id)", a, c, a, c)}
	case lpath.AxisImmediatePrecedingSibling:
		return []string{f("%s.pid = %s.pid", a, c), f("%s.right = %s.left", a, c)}
	case lpath.AxisPrecedingSibling:
		return []string{f("%s.pid = %s.pid", a, c), f("%s.right <= %s.left", a, c)}
	case lpath.AxisPrecedingSiblingOrSelf:
		return []string{f("%s.pid = %s.pid", a, c), f("(%s.right <= %s.left OR %s.id = %s.id)", a, c, a, c)}
	}
	return []string{"1 = 0"}
}

// exprCond renders a predicate expression as a boolean SQL condition for
// context alias ctx.
func (g *gen) exprCond(e lpath.Expr, ctx, scope string) (string, error) {
	switch x := e.(type) {
	case *lpath.AndExpr:
		l, err := g.exprCond(x.L, ctx, scope)
		if err != nil {
			return "", err
		}
		r, err := g.exprCond(x.R, ctx, scope)
		if err != nil {
			return "", err
		}
		return "(" + l + " AND " + r + ")", nil
	case *lpath.OrExpr:
		l, err := g.exprCond(x.L, ctx, scope)
		if err != nil {
			return "", err
		}
		r, err := g.exprCond(x.R, ctx, scope)
		if err != nil {
			return "", err
		}
		return "(" + l + " OR " + r + ")", nil
	case *lpath.NotExpr:
		inner, err := g.exprCond(x.X, ctx, scope)
		if err != nil {
			return "", err
		}
		return "NOT " + inner, nil
	case *lpath.PathExpr:
		return g.existsCond(x.Path, ctx, scope, "", "")
	case *lpath.CmpExpr:
		return g.existsCond(x.Path, ctx, scope, x.Op, x.Value)
	case *lpath.PositionExpr, *lpath.LastExpr:
		// Positional predicates need window functions (ROW_NUMBER over the
		// axis order); the paper's translator did not emit them either.
		return "", fmt.Errorf("sqlgen: position()/last() have no join translation")
	case *lpath.CountExpr:
		return g.countCond(x, ctx, scope)
	case *lpath.StrFnExpr:
		return g.strFnCond(x, ctx, scope)
	}
	return "", fmt.Errorf("sqlgen: unknown expression %T", e)
}

// countCond renders count(path) Op N as a scalar COUNT subquery.
func (g *gen) countCond(x *lpath.CountExpr, ctx, scope string) (string, error) {
	sub := &gen{n: g.n}
	last, where, err := sub.path(x.Path, ctx, scope)
	if err != nil {
		return "", err
	}
	g.n = sub.n
	op := x.Op
	if op == "!=" {
		op = "<>"
	}
	return fmt.Sprintf("(SELECT COUNT(DISTINCT %s.id) FROM %s WHERE %s) %s %d",
		last, strings.Join(sub.from, ", "), strings.Join(where, " AND "), op, x.Value), nil
}

// strFnCond renders the string functions as LIKE patterns over the
// attribute value.
func (g *gen) strFnCond(x *lpath.StrFnExpr, ctx, scope string) (string, error) {
	head, attr, err := lpath.SplitAttr(x.Path)
	if err != nil {
		return "", err
	}
	if attr == "" {
		return "", lpath.ErrCmpNeedsAttr
	}
	sub := &gen{n: g.n}
	last := ctx
	var where []string
	if head != nil {
		last, where, err = sub.path(head, ctx, scope)
		if err != nil {
			return "", err
		}
	}
	g.n = sub.n
	av := g.subAlias()
	from := append(sub.from, "node "+av)
	esc := strings.NewReplacer("%", `\%`, "_", `\_`).Replace(x.Arg)
	var pattern string
	switch x.Fn {
	case "contains":
		pattern = "%" + esc + "%"
	case "starts-with":
		pattern = esc + "%"
	case "ends-with":
		pattern = "%" + esc
	default:
		return "", fmt.Errorf("sqlgen: unknown string function %q", x.Fn)
	}
	where = append(where,
		fmt.Sprintf("%s.tid = %s.tid", av, last),
		fmt.Sprintf("%s.id = %s.id", av, last),
		fmt.Sprintf("%s.name = %s", av, quote("@"+attr)),
		fmt.Sprintf("%s.value LIKE %s", av, quote(pattern)))
	return "EXISTS (SELECT 1 FROM " + strings.Join(from, ", ") +
		" WHERE " + strings.Join(where, " AND ") + ")", nil
}

// existsCond renders an existential path (optionally with a trailing
// attribute comparison) as an EXISTS subquery.
func (g *gen) existsCond(p *lpath.Path, ctx, scope, op, value string) (string, error) {
	head, attr, err := lpath.SplitAttr(p)
	if err != nil {
		return "", err
	}
	if op != "" && attr == "" {
		return "", lpath.ErrCmpNeedsAttr
	}
	sub := &gen{n: g.n}
	var last string
	var where []string
	if head == nil {
		last = ctx
	} else {
		last, where, err = sub.path(head, ctx, scope)
		if err != nil {
			return "", err
		}
	}
	g.n = sub.n
	from := sub.from
	if attr != "" {
		av := g.subAlias()
		from = append(from, "node "+av)
		where = append(where,
			fmt.Sprintf("%s.tid = %s.tid", av, last),
			fmt.Sprintf("%s.id = %s.id", av, last),
			fmt.Sprintf("%s.name = %s", av, quote("@"+attr)))
		sqlOp := "="
		if op == "!=" {
			sqlOp = "<>"
		}
		if op != "" {
			where = append(where, fmt.Sprintf("%s.value %s %s", av, sqlOp, quote(value)))
		}
	}
	if len(from) == 0 {
		// Pure self test (e.g. [@lex] handled above); degenerate.
		if len(where) == 0 {
			return "1 = 1", nil
		}
	}
	var b strings.Builder
	b.WriteString("EXISTS (SELECT 1 FROM ")
	b.WriteString(strings.Join(from, ", "))
	b.WriteString(" WHERE ")
	b.WriteString(strings.Join(where, " AND "))
	b.WriteString(")")
	return b.String(), nil
}

// quote renders a SQL string literal.
func quote(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
