package sqlgen

import (
	"strings"
	"testing"

	"lpath/internal/lpath"
)

func translate(t *testing.T, q string) string {
	t.Helper()
	sql, err := Translate(lpath.MustParse(q))
	if err != nil {
		t.Fatalf("Translate(%q): %v", q, err)
	}
	return sql
}

func TestTranslateImmediateFollowing(t *testing.T) {
	sql := translate(t, `//VB->NP`)
	for _, frag := range []string{
		"n1.name = 'VB'",
		"n2.name = 'NP'",
		"n2.left = n1.right", // the adjacency join of the labeling scheme
		"n2.tid = n1.tid",
		"SELECT DISTINCT n2.tid, n2.id",
	} {
		if !strings.Contains(sql, frag) {
			t.Errorf("missing %q in:\n%s", frag, sql)
		}
	}
}

func TestTranslateDescendantChain(t *testing.T) {
	sql := translate(t, `//VP/VB-->NN`)
	for _, frag := range []string{
		"n2.pid = n1.id",      // child
		"n3.left >= n2.right", // following
	} {
		if !strings.Contains(sql, frag) {
			t.Errorf("missing %q in:\n%s", frag, sql)
		}
	}
}

func TestTranslateScope(t *testing.T) {
	sql := translate(t, `//VP{/VB-->NN}`)
	for _, frag := range []string{
		"n2.left >= n1.left",
		"n2.right <= n1.right",
		"n3.left >= n1.left",
		"n3.right <= n1.right",
	} {
		if !strings.Contains(sql, frag) {
			t.Errorf("missing scope conjunct %q in:\n%s", frag, sql)
		}
	}
}

func TestTranslateAlignment(t *testing.T) {
	sql := translate(t, `//VP{//NP$}`)
	if !strings.Contains(sql, "n2.right = n1.right") {
		t.Errorf("missing right-alignment conjunct in:\n%s", sql)
	}
	sql = translate(t, `//VP[{//^VB->NP->PP$}]`)
	if !strings.Contains(sql, ".left = n1.left") {
		t.Errorf("missing left-alignment conjunct in:\n%s", sql)
	}
}

func TestTranslateValuePredicate(t *testing.T) {
	sql := translate(t, `//S[//_[@lex=saw]]`)
	for _, frag := range []string{
		"EXISTS (SELECT 1 FROM",
		".name = '@lex'",
		".value = 'saw'",
		"NOT LIKE '@%'", // wildcard excludes attribute rows
	} {
		if !strings.Contains(sql, frag) {
			t.Errorf("missing %q in:\n%s", frag, sql)
		}
	}
}

func TestTranslateNot(t *testing.T) {
	sql := translate(t, `//NP[not(//JJ)]`)
	if !strings.Contains(sql, "NOT EXISTS (SELECT 1 FROM") {
		t.Errorf("missing NOT EXISTS in:\n%s", sql)
	}
}

func TestTranslateBooleans(t *testing.T) {
	sql := translate(t, `//NP[//JJ and //DT or //NN]`)
	if !strings.Contains(sql, " AND ") || !strings.Contains(sql, " OR ") {
		t.Errorf("missing boolean connectives in:\n%s", sql)
	}
	if !strings.Contains(sql, "((") {
		t.Errorf("missing grouping parens in:\n%s", sql)
	}
}

func TestTranslateNeq(t *testing.T) {
	sql := translate(t, `//NN[@lex!=dog]`)
	if !strings.Contains(sql, ".value <> 'dog'") {
		t.Errorf("missing <> comparison in:\n%s", sql)
	}
}

func TestTranslateQuoting(t *testing.T) {
	sql := translate(t, `//_[@lex='don''t']`)
	if !strings.Contains(sql, "'don''t'") {
		t.Errorf("missing escaped literal in:\n%s", sql)
	}
}

// TestTranslateAllEvalQueries ensures every Figure 6(c) query translates and
// the output is superficially well-formed SQL.
func TestTranslateAllEvalQueries(t *testing.T) {
	for _, q := range lpath.EvalQueries {
		sql, err := Translate(lpath.MustParse(q.Text))
		if err != nil {
			t.Errorf("Q%d: %v", q.ID, err)
			continue
		}
		if !strings.HasPrefix(sql, "SELECT DISTINCT ") {
			t.Errorf("Q%d: missing SELECT: %s", q.ID, sql)
		}
		if !strings.Contains(sql, "FROM node n1") {
			t.Errorf("Q%d: missing FROM: %s", q.ID, sql)
		}
		if strings.Count(sql, "(") != strings.Count(sql, ")") {
			t.Errorf("Q%d: unbalanced parentheses:\n%s", q.ID, sql)
		}
		if !strings.Contains(sql, "ORDER BY") {
			t.Errorf("Q%d: missing ORDER BY", q.ID)
		}
	}
}

// TestTranslateAllAxes ensures every axis has a SQL rendering.
func TestTranslateAllAxes(t *testing.T) {
	queries := []string{
		`//A/B`, `//A//B`, `//A\B`, `//A\\B`, `//A.B`,
		`//A->B`, `//A-->B`, `//A<-B`, `//A<--B`,
		`//A=>B`, `//A==>B`, `//A<=B`, `//A<==B`,
		`//A/descendant-or-self::B`, `//A\ancestor-or-self::B`,
		`//A/following-or-self::B`, `//A/preceding-or-self::B`,
		`//A/following-sibling-or-self::B`, `//A/preceding-sibling-or-self::B`,
	}
	for _, q := range queries {
		sql := translate(t, q)
		if strings.Contains(sql, "1 = 0") {
			t.Errorf("%s: untranslated axis:\n%s", q, sql)
		}
	}
}

func TestTranslateErrors(t *testing.T) {
	for _, q := range []string{`//S@lex`, `//_[@lex/NP]`, `//_[//NP=x]`} {
		if _, err := Translate(lpath.MustParse(q)); err == nil {
			t.Errorf("Translate(%q): expected error", q)
		}
	}
	// Axes that cannot start a query from the virtual root.
	for _, q := range []string{`->NP`, `\NP`, `==>NP`} {
		if _, err := Translate(lpath.MustParse(q)); err == nil {
			t.Errorf("Translate(%q): expected error", q)
		}
	}
}

func TestTranslateCount(t *testing.T) {
	sql := translate(t, `//NP[count(//JJ)>=2]`)
	for _, frag := range []string{"SELECT COUNT(DISTINCT", ">= 2"} {
		if !strings.Contains(sql, frag) {
			t.Errorf("missing %q in:\n%s", frag, sql)
		}
	}
	sql = translate(t, `//NP[count(//JJ)!=2]`)
	if !strings.Contains(sql, "<> 2") {
		t.Errorf("missing <> in:\n%s", sql)
	}
}

func TestTranslateStringFunctions(t *testing.T) {
	cases := map[string]string{
		`//_[contains(@lex,'og')]`:     "LIKE '%og%'",
		`//_[starts-with(@lex,'d')]`:   "LIKE 'd%'",
		`//_[ends-with(@lex,'g')]`:     "LIKE '%g'",
		`//_[contains(@lex,'100%')]`:   `LIKE '%100\%%'`,
		`//NP[contains(//NN@lex,'s')]`: "LIKE '%s%'",
	}
	for q, frag := range cases {
		sql := translate(t, q)
		if !strings.Contains(sql, frag) {
			t.Errorf("%s: missing %q in:\n%s", q, frag, sql)
		}
	}
}

func TestTranslatePositionUnsupported(t *testing.T) {
	for _, q := range []string{`//VP/_[position()=1]`, `//VP/_[last()]`} {
		if _, err := Translate(lpath.MustParse(q)); err == nil {
			t.Errorf("Translate(%q): expected unsupported error", q)
		}
	}
}

func TestTranslateDeterministic(t *testing.T) {
	a := translate(t, `//S[//NP/ADJP]`)
	b := translate(t, `//S[//NP/ADJP]`)
	if a != b {
		t.Error("translation is not deterministic")
	}
}
