// Package treeval is the reference evaluator for LPath: a direct,
// tree-walking implementation of the language semantics that never consults
// the interval labeling or the relational store. It exists as the
// correctness oracle for the label-based query engine (package engine): both
// must return identical result sets on every query and corpus.
//
// The evaluator is deliberately simple — each step scans every node of the
// tree — so its behaviour is easy to audit against the paper's definitions.
package treeval

import (
	"fmt"
	"sort"

	"lpath/internal/lpath"
	"lpath/internal/tree"
)

// nodeInfo caches the structural facts each axis test needs: the 1-based
// positions of the node's first and last leaf in the terminal sequence, its
// depth, and its document-order index.
type nodeInfo struct {
	firstLeaf int // position of leftmost leaf descendant (1-based)
	lastLeaf  int // position of rightmost leaf descendant
	depth     int
	order     int // preorder index, for deterministic result ordering
}

// Evaluator evaluates LPath queries over a single tree.
type Evaluator struct {
	tree  *tree.Tree
	nodes []*tree.Node
	info  map[*tree.Node]nodeInfo
}

// New prepares an evaluator for the tree.
func New(t *tree.Tree) *Evaluator {
	ev := &Evaluator{tree: t, info: make(map[*tree.Node]nodeInfo, 64)}
	leaf := 0
	var rec func(n *tree.Node, depth int) (first, last int)
	rec = func(n *tree.Node, depth int) (int, int) {
		order := len(ev.nodes)
		ev.nodes = append(ev.nodes, n)
		var first, last int
		if len(n.Children) == 0 {
			leaf++
			first, last = leaf, leaf
		} else {
			for i, c := range n.Children {
				f, l := rec(c, depth+1)
				if i == 0 {
					first = f
				}
				last = l
			}
		}
		ev.info[n] = nodeInfo{firstLeaf: first, lastLeaf: last, depth: depth, order: order}
		return first, last
	}
	if t != nil && t.Root != nil {
		rec(t.Root, 1)
	}
	return ev
}

// Eval evaluates the query from the tree root (the query's leading axis is
// applied to a virtual super-root, so //S matches the root as XPath's
// document node semantics require). Results are the distinct matches of the
// final step, in document order.
func (ev *Evaluator) Eval(p *lpath.Path) ([]*tree.Node, error) {
	res, err := ev.evalPath(p, nil, nil)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Count returns the number of matches of the query.
func (ev *Evaluator) Count(p *lpath.Path) (int, error) {
	res, err := ev.Eval(p)
	return len(res), err
}

// evalPath evaluates a relative path from the context node (nil = virtual
// super-root) under the given scope stack, returning the final matches.
func (ev *Evaluator) evalPath(p *lpath.Path, ctx *tree.Node, scopes []*tree.Node) ([]*tree.Node, error) {
	contexts := []*tree.Node{ctx}
	for i := range p.Steps {
		step := &p.Steps[i]
		var next []*tree.Node
		seen := map[*tree.Node]bool{}
		for _, c := range contexts {
			matches, err := ev.evalStep(step, c, scopes)
			if err != nil {
				return nil, err
			}
			for _, m := range matches {
				if !seen[m] {
					seen[m] = true
					next = append(next, m)
				}
			}
		}
		contexts = next
		if len(contexts) == 0 {
			break
		}
	}
	if p.Scoped != nil {
		var out []*tree.Node
		seen := map[*tree.Node]bool{}
		for _, c := range contexts {
			if c == nil {
				// Scope on the virtual root: scope to the whole tree.
				c = ev.tree.Root
			}
			matches, err := ev.evalPath(p.Scoped, c, append(scopes, c))
			if err != nil {
				return nil, err
			}
			for _, m := range matches {
				if !seen[m] {
					seen[m] = true
					out = append(out, m)
				}
			}
		}
		contexts = out
	}
	// Drop a virtual-root context that survived an empty path.
	res := contexts[:0:0]
	for _, c := range contexts {
		if c != nil {
			res = append(res, c)
		}
	}
	sort.Slice(res, func(i, j int) bool { return ev.info[res[i]].order < ev.info[res[j]].order })
	return res, nil
}

// evalStep returns the nodes reachable from ctx along one step: the axis,
// node test, scope constraint and edge alignment select the candidate list,
// and the predicates then filter it sequentially — position() in the k-th
// predicate sees the list as filtered by the first k-1 predicates, with
// positions counted in document order for forward axes and reverse document
// order for reverse axes, as in XPath.
func (ev *Evaluator) evalStep(step *lpath.Step, ctx *tree.Node, scopes []*tree.Node) ([]*tree.Node, error) {
	if step.Axis == lpath.AxisAttribute {
		return nil, fmt.Errorf("treeval: attribute step @%s is only valid inside a comparison or existence predicate", step.Test)
	}
	var cands []*tree.Node
	for _, cand := range ev.nodes {
		if !ev.onAxis(step.Axis, cand, ctx) {
			continue
		}
		if !step.Wildcard() && cand.Tag != step.Test {
			continue
		}
		if len(scopes) > 0 && !ev.inSubtree(cand, scopes[len(scopes)-1]) {
			continue
		}
		if step.LeftAlign || step.RightAlign {
			ref := ev.alignRef(ctx, scopes)
			ci, ri := ev.info[cand], ev.info[ref]
			if step.LeftAlign && ci.firstLeaf != ri.firstLeaf {
				continue
			}
			if step.RightAlign && ci.lastLeaf != ri.lastLeaf {
				continue
			}
		}
		cands = append(cands, cand)
	}
	if lpath.ReverseAxis(step.Axis) {
		for i, j := 0, len(cands)-1; i < j; i, j = i+1, j-1 {
			cands[i], cands[j] = cands[j], cands[i]
		}
	}
	for _, pred := range step.Preds {
		var err error
		cands, err = ev.filterPred(pred, cands, scopes)
		if err != nil {
			return nil, err
		}
		if len(cands) == 0 {
			break
		}
	}
	return cands, nil
}

// filterPred keeps the candidates satisfying one predicate, supplying each
// its 1-based position and the list size for the positional functions.
func (ev *Evaluator) filterPred(pred lpath.Expr, cands []*tree.Node, scopes []*tree.Node) ([]*tree.Node, error) {
	out := cands[:0:0]
	size := len(cands)
	for i, c := range cands {
		ok, err := ev.evalExpr(pred, c, scopes, i+1, size)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, c)
		}
	}
	return out, nil
}

// alignRef returns the node that ^/$ align against: the innermost scope, or
// the step's context node when no scope is open (the tree root for the
// virtual root).
func (ev *Evaluator) alignRef(ctx *tree.Node, scopes []*tree.Node) *tree.Node {
	if len(scopes) > 0 {
		return scopes[len(scopes)-1]
	}
	if ctx == nil {
		return ev.tree.Root
	}
	return ctx
}

func (ev *Evaluator) inSubtree(n, scope *tree.Node) bool {
	return n == scope || scope.IsAncestorOf(n)
}

// onAxis reports whether cand is reachable from ctx along the axis,
// following the structural definitions of Section 3 (a nil ctx is the
// virtual super-root above the tree root).
func (ev *Evaluator) onAxis(axis lpath.Axis, cand, ctx *tree.Node) bool {
	if ctx == nil {
		switch axis {
		case lpath.AxisChild:
			return cand == ev.tree.Root
		case lpath.AxisDescendant, lpath.AxisDescendantOrSelf:
			return true
		default:
			return false
		}
	}
	ci, xi := ev.info[ctx], ev.info[cand]
	switch axis {
	case lpath.AxisSelf:
		return cand == ctx
	case lpath.AxisChild:
		return cand.Parent == ctx
	case lpath.AxisParent:
		return ctx.Parent == cand
	case lpath.AxisDescendant:
		return ctx.IsAncestorOf(cand)
	case lpath.AxisDescendantOrSelf:
		return cand == ctx || ctx.IsAncestorOf(cand)
	case lpath.AxisAncestor:
		return cand.IsAncestorOf(ctx)
	case lpath.AxisAncestorOrSelf:
		return cand == ctx || cand.IsAncestorOf(ctx)
	case lpath.AxisFollowing:
		return xi.firstLeaf > ci.lastLeaf
	case lpath.AxisFollowingOrSelf:
		return cand == ctx || xi.firstLeaf > ci.lastLeaf
	case lpath.AxisImmediateFollowing:
		return xi.firstLeaf == ci.lastLeaf+1
	case lpath.AxisPreceding:
		return xi.lastLeaf < ci.firstLeaf
	case lpath.AxisPrecedingOrSelf:
		return cand == ctx || xi.lastLeaf < ci.firstLeaf
	case lpath.AxisImmediatePreceding:
		return xi.lastLeaf+1 == ci.firstLeaf
	case lpath.AxisFollowingSibling:
		return cand.Parent != nil && cand.Parent == ctx.Parent && xi.firstLeaf > ci.lastLeaf
	case lpath.AxisFollowingSiblingOrSelf:
		return cand == ctx || (cand.Parent != nil && cand.Parent == ctx.Parent && xi.firstLeaf > ci.lastLeaf)
	case lpath.AxisImmediateFollowingSibling:
		return ctx.NextSibling() == cand
	case lpath.AxisPrecedingSibling:
		return cand.Parent != nil && cand.Parent == ctx.Parent && xi.lastLeaf < ci.firstLeaf
	case lpath.AxisPrecedingSiblingOrSelf:
		return cand == ctx || (cand.Parent != nil && cand.Parent == ctx.Parent && xi.lastLeaf < ci.firstLeaf)
	case lpath.AxisImmediatePrecedingSibling:
		return ctx.PrevSibling() == cand
	}
	return false
}

// evalExpr evaluates a predicate expression with the candidate node as
// context; pos and size carry the positional context of the enclosing
// candidate list. Predicates inherit the enclosing scope stack, so
// navigation inside braces stays constrained to the scope.
func (ev *Evaluator) evalExpr(e lpath.Expr, ctx *tree.Node, scopes []*tree.Node, pos, size int) (bool, error) {
	switch x := e.(type) {
	case *lpath.AndExpr:
		ok, err := ev.evalExpr(x.L, ctx, scopes, pos, size)
		if err != nil || !ok {
			return false, err
		}
		return ev.evalExpr(x.R, ctx, scopes, pos, size)
	case *lpath.OrExpr:
		ok, err := ev.evalExpr(x.L, ctx, scopes, pos, size)
		if err != nil || ok {
			return ok, err
		}
		return ev.evalExpr(x.R, ctx, scopes, pos, size)
	case *lpath.NotExpr:
		ok, err := ev.evalExpr(x.X, ctx, scopes, pos, size)
		return !ok, err
	case *lpath.PathExpr:
		return ev.evalExistential(x.Path, ctx, scopes, "", "")
	case *lpath.CmpExpr:
		return ev.evalExistential(x.Path, ctx, scopes, x.Op, x.Value)
	case *lpath.PositionExpr:
		rhs := x.Value
		if x.Last {
			rhs = size
		}
		return lpath.CompareInts(pos, x.Op, rhs), nil
	case *lpath.LastExpr:
		return pos == size, nil
	case *lpath.CountExpr:
		matches, err := ev.evalPath(x.Path, ctx, scopes)
		if err != nil {
			return false, err
		}
		return lpath.CompareInts(len(matches), x.Op, x.Value), nil
	case *lpath.StrFnExpr:
		return ev.evalStrFn(x, ctx, scopes)
	}
	return false, fmt.Errorf("treeval: unknown predicate expression %T", e)
}

// evalStrFn evaluates contains/starts-with/ends-with over the attribute
// values reached by the path.
func (ev *Evaluator) evalStrFn(x *lpath.StrFnExpr, ctx *tree.Node, scopes []*tree.Node) (bool, error) {
	head, attr, err := lpath.SplitAttr(x.Path)
	if err != nil {
		return false, err
	}
	if attr == "" {
		return false, lpath.ErrCmpNeedsAttr
	}
	var elems []*tree.Node
	if head == nil {
		elems = []*tree.Node{ctx}
	} else {
		elems, err = ev.evalPath(head, ctx, scopes)
		if err != nil {
			return false, err
		}
	}
	for _, el := range elems {
		v, ok := el.Attr(attr)
		if !ok {
			continue
		}
		if lpath.StrFn(x.Fn, v, x.Arg) {
			return true, nil
		}
	}
	return false, nil
}

// evalExistential evaluates a predicate path. When op is non-empty the path
// must end in an attribute step, and the test holds iff some reached element
// has an attribute value satisfying the comparison; otherwise the test holds
// iff the path has any match. An attribute final step without a comparison
// tests attribute existence.
func (ev *Evaluator) evalExistential(p *lpath.Path, ctx *tree.Node, scopes []*tree.Node, op, value string) (bool, error) {
	head, attr, err := lpath.SplitAttr(p)
	if err != nil {
		return false, err
	}
	if op != "" && attr == "" {
		return false, fmt.Errorf("treeval: comparison requires a path ending in an attribute step")
	}
	var elems []*tree.Node
	if head == nil {
		elems = []*tree.Node{ctx}
	} else {
		elems, err = ev.evalPath(head, ctx, scopes)
		if err != nil {
			return false, err
		}
	}
	if attr == "" {
		return len(elems) > 0, nil
	}
	for _, el := range elems {
		v, ok := el.Attr(attr)
		if !ok {
			continue
		}
		switch op {
		case "":
			return true, nil
		case "=":
			if v == value {
				return true, nil
			}
		case "!=":
			if v != value {
				return true, nil
			}
		}
	}
	return false, nil
}

// CorpusEval evaluates queries over a whole corpus, one evaluator per tree.
type CorpusEval struct {
	evals []*Evaluator
}

// NewCorpus prepares evaluators for every tree in the corpus.
func NewCorpus(c *tree.Corpus) *CorpusEval {
	ce := &CorpusEval{evals: make([]*Evaluator, 0, c.Len())}
	for _, t := range c.Trees {
		ce.evals = append(ce.evals, New(t))
	}
	return ce
}

// Match is a query match: a node within a tree.
type Match struct {
	TreeID int
	Node   *tree.Node
}

// Eval returns every match of the query across the corpus.
func (ce *CorpusEval) Eval(p *lpath.Path) ([]Match, error) {
	var out []Match
	for _, ev := range ce.evals {
		res, err := ev.Eval(p)
		if err != nil {
			return nil, err
		}
		for _, n := range res {
			out = append(out, Match{TreeID: ev.tree.ID, Node: n})
		}
	}
	return out, nil
}

// Count returns the total number of matches across the corpus.
func (ce *CorpusEval) Count(p *lpath.Path) (int, error) {
	total := 0
	for _, ev := range ce.evals {
		n, err := ev.Count(p)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}
