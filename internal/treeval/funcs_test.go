package treeval

import (
	"testing"

	"lpath/internal/lpath"
	"lpath/internal/tree"
)

// TestFunctionLibraryPaper checks the XPath-equivalence examples the paper
// gives in Section 2.2: the immediate-following-sibling query expressed with
// position(), and child edge alignment expressed with last().
func TestFunctionLibraryPaper(t *testing.T) {
	ev := New(tree.Figure1())
	// Q2-equivalent via the function library:
	// //V/following-sibling::_[position()=1][.NP]  ~  //V==>NP
	expect(t, ev, `//V/following-sibling::_[position()=1][.NP]`,
		"NP[the old man with a dog]")
	// Q5-equivalent: //VP/_[last()][.NP]  ~  //VP{/NP$}
	expect(t, ev, `//VP/_[last()][.NP]`,
		"NP[the old man with a dog]")
}

func TestPositionSemantics(t *testing.T) {
	ev := New(tree.Figure1())
	// Children of the NP with a direct Adj child (the old man): Det, Adj, N.
	expect(t, ev, `//NP[/Adj]/_[position()=1]`, "Det[the]")
	expect(t, ev, `//NP[/Adj]/_[position()=2]`, "Adj[old]")
	expect(t, ev, `//NP[/Adj]/_[position()=last()]`, "N[man]")
	// Positions recompute between predicates: after [position()>1] the
	// remaining Adj and N are at positions 1 and 2, so both pass <3.
	expect(t, ev, `//NP[/Adj]/_[position()>1][position()<3]`, "Adj[old]", "N[man]")
	// Numeric shorthand.
	expect(t, ev, `//NP[/Adj]/_[2]`, "Adj[old]")
	// position() on a reverse axis counts nearest-first.
	expect(t, ev, `//Prep\\_[position()=1]`, "PP[with a dog]")
	expect(t, ev, `//Prep\\_[position()=2]`, "NP[the old man with a dog]")
	expect(t, ev, `//Prep\\_[last()]`, "S[I saw the old man with a dog today]")
	// Preceding-sibling nearest-first.
	expect(t, ev, `//N[@lex=man]<==_[position()=1]`, "Adj[old]")
	expect(t, ev, `//N[@lex=man]<==_[position()=2]`, "Det[the]")
	// Sequential filtering: the second predicate sees positions after the
	// first has filtered.
	expect(t, ev, `//NP[/Adj]/_[position()>1][position()=1]`, "Adj[old]")
}

func TestCountFunction(t *testing.T) {
	ev := New(tree.Figure1())
	expect(t, ev, `//NP[count(/_)=3]`, "NP[the old man]")
	expect(t, ev, `//NP[count(/_)>=2]`,
		"NP[the old man]", "NP[the old man with a dog]", "NP[a dog]")
	expect(t, ev, `//NP[count(//N)=2]`, "NP[the old man with a dog]")
	expect(t, ev, `//S[count(//NP)=4]`, "S[I saw the old man with a dog today]")
	expect(t, ev, `//S[count(//NP)!=4]`)
	expect(t, ev, `//NP[count(/Det)<1]`, "NP[I]", "NP[the old man with a dog]")
}

func TestStringFunctions(t *testing.T) {
	ev := New(tree.Figure1())
	expect(t, ev, `//_[contains(@lex,'o')]`,
		"Adj[old]", "N[dog]", "N[today]")
	expect(t, ev, `//_[starts-with(@lex,'to')]`, "N[today]")
	expect(t, ev, `//_[ends-with(@lex,'og')]`, "N[dog]")
	expect(t, ev, `//NP[contains(//N@lex,'a')]`, // any N below with 'a' in it
		"NP[the old man]", "NP[the old man with a dog]")
	expect(t, ev, `//_[contains(@lex,'zzz')]`)
	// On the context node's attribute, via a nil head.
	expect(t, ev, `//V[starts-with(@lex,'s')]`, "V[saw]")
}

func TestFunctionLibraryErrors(t *testing.T) {
	ev := New(tree.Figure1())
	// String functions require an attribute path.
	p, err := lpath.Parse(`//NP[contains(//N,'a')]`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Eval(p); err == nil {
		t.Error("contains() without attribute path should fail")
	}
}
