package treeval

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"lpath/internal/lpath"
	"lpath/internal/tree"
)

// sig gives a readable identity for a node: Tag[covered words].
func sig(n *tree.Node) string {
	return n.Tag + "[" + strings.Join(n.Words(), " ") + "]"
}

func evalSigs(t *testing.T, ev *Evaluator, query string) []string {
	t.Helper()
	p, err := lpath.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	res, err := ev.Eval(p)
	if err != nil {
		t.Fatalf("eval %q: %v", query, err)
	}
	sigs := make([]string, 0, len(res))
	for _, n := range res {
		sigs = append(sigs, sig(n))
	}
	sort.Strings(sigs)
	return sigs
}

func expect(t *testing.T, ev *Evaluator, query string, want ...string) {
	t.Helper()
	got := evalSigs(t, ev, query)
	sort.Strings(want)
	if want == nil {
		want = []string{}
	}
	if got == nil {
		got = []string{}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s:\n got %v\nwant %v", query, got, want)
	}
}

// TestFigure2Queries checks every example query of Figure 2 against the
// result sets given in the paper.
func TestFigure2Queries(t *testing.T) {
	ev := New(tree.Figure1())
	expect(t, ev, `//S[//_[@lex=saw]]`,
		"S[I saw the old man with a dog today]")
	expect(t, ev, `//V==>NP`,
		"NP[the old man with a dog]")
	expect(t, ev, `//V->NP`,
		"NP[the old man with a dog]", "NP[the old man]")
	expect(t, ev, `//VP/V-->N`,
		"N[man]", "N[dog]", "N[today]")
	expect(t, ev, `//VP{/V-->N}`,
		"N[man]", "N[dog]")
	expect(t, ev, `//VP{/NP$}`,
		"NP[the old man with a dog]")
	expect(t, ev, `//VP{//NP$}`,
		"NP[the old man with a dog]", "NP[a dog]")
}

// TestSection1ImmediateFollowing checks the introduction's example: the
// constituents immediately following the verb are NP, NP and Det.
func TestSection1ImmediateFollowing(t *testing.T) {
	ev := New(tree.Figure1())
	expect(t, ev, `//V->_`,
		"NP[the old man with a dog]", "NP[the old man]", "Det[the]")
}

func TestVerticalAxes(t *testing.T) {
	ev := New(tree.Figure1())
	expect(t, ev, `//PP/NP`, "NP[a dog]")
	expect(t, ev, `//PP//Det`, "Det[a]")
	expect(t, ev, `//Prep\PP`, "PP[with a dog]")
	expect(t, ev, `//Prep\\_`,
		"PP[with a dog]",
		"NP[the old man with a dog]",
		"VP[saw the old man with a dog]",
		"S[I saw the old man with a dog today]")
	expect(t, ev, `//Adj\ancestor::NP`,
		"NP[the old man]", "NP[the old man with a dog]")
	expect(t, ev, `//Adj/descendant-or-self::Adj`, "Adj[old]")
	expect(t, ev, `//Adj\ancestor-or-self::Adj`, "Adj[old]")
	// /S from the virtual root selects the tree root only.
	expect(t, ev, `/S`, "S[I saw the old man with a dog today]")
	expect(t, ev, `/NP`) // no NP at the root
}

func TestHorizontalAxes(t *testing.T) {
	ev := New(tree.Figure1())
	expect(t, ev, `//Adj-->Prep`, "Prep[with]")
	expect(t, ev, `//Prep<--Adj`, "Adj[old]")
	expect(t, ev, `//Prep<-N`, "N[man]")
	expect(t, ev, `//Prep<-_`, "N[man]", "NP[the old man]")
	expect(t, ev, `//V<==_`) // V is the first child of VP: no preceding sibling
	expect(t, ev, `//VP<==_`, "NP[I]")
	expect(t, ev, `//PP<=NP`, "NP[the old man]")
	expect(t, ev, `//N[@lex=dog]-->N`, "N[today]")
	expect(t, ev, `//N[@lex=man]/following::Det`, "Det[a]")
	expect(t, ev, `//N[@lex=man]/following-or-self::N`,
		"N[man]", "N[dog]", "N[today]")
	expect(t, ev, `//N[@lex=dog]/preceding-or-self::N`,
		"N[man]", "N[dog]")
	expect(t, ev, `//V/following-sibling-or-self::_`,
		"V[saw]", "NP[the old man with a dog]")
	expect(t, ev, `//NP[@lex=I]=>VP`, "VP[saw the old man with a dog]")
	expect(t, ev, `//VP==>_`, "N[today]")
	expect(t, ev, `//VP/preceding-sibling-or-self::_`,
		"NP[I]", "VP[saw the old man with a dog]")
	expect(t, ev, `//N[@lex=today]<=_`, "VP[saw the old man with a dog]")
}

func TestSelfAxis(t *testing.T) {
	ev := New(tree.Figure1())
	expect(t, ev, `//V.`, "V[saw]")
	expect(t, ev, `//NP.NP[@lex=I]`, "NP[I]")
	expect(t, ev, `//V.N`) // self with mismatching tag
}

func TestPredicates(t *testing.T) {
	ev := New(tree.Figure1())
	expect(t, ev, `//NP[//Adj]`,
		"NP[the old man]", "NP[the old man with a dog]")
	expect(t, ev, `//NP[not(//Adj)]`,
		"NP[I]", "NP[a dog]")
	expect(t, ev, `//NP[//Adj and //Prep]`,
		"NP[the old man with a dog]")
	expect(t, ev, `//NP[//Adj or @lex=I]`,
		"NP[I]", "NP[the old man]", "NP[the old man with a dog]")
	expect(t, ev, `//NP[@lex!=I]`) // only the leaf NP has @lex, and it is "I"
	expect(t, ev, `//N[@lex!=man]`, "N[dog]", "N[today]")
	expect(t, ev, `//NP[@lex]`, "NP[I]")
	expect(t, ev, `//NP[/NP and /PP]`,
		"NP[the old man with a dog]")
	expect(t, ev, `//NP[\VP]`, "NP[the old man with a dog]")
	expect(t, ev, `//Det[-->N[@lex=dog]]`, "Det[the]", "Det[a]")
	expect(t, ev, `//_[@lex=saw]`, "V[saw]")
	// Nested path predicate with its own predicate.
	expect(t, ev, `//NP[->PP[//Det]]`, "NP[the old man]")
}

func TestScoping(t *testing.T) {
	ev := New(tree.Figure1())
	// Within-VP noun search; today is excluded.
	expect(t, ev, `//VP{//N}`, "N[man]", "N[dog]")
	// Nested scopes narrow progressively.
	expect(t, ev, `//NP{//PP{//Det}}`, "Det[a]")
	// Scope at the start of a query scopes to the whole tree.
	expect(t, ev, `//S{//V}`, "V[saw]")
	// Predicates inside a scope are also constrained to the scope.
	expect(t, ev, `//VP{//NP[//N]}`,
		"NP[the old man]", "NP[the old man with a dog]", "NP[a dog]")
}

func TestAlignmentDetailed(t *testing.T) {
	ev := New(tree.Figure1())
	// Left-aligned descendants of VP: V only (l=2).
	expect(t, ev, `//VP{//^_}`, "V[saw]")
	// Right-aligned descendants of VP: everything whose span ends at "dog".
	expect(t, ev, `//VP{//_$}`,
		"NP[the old man with a dog]", "PP[with a dog]", "NP[a dog]", "N[dog]")
	// Without braces, alignment is relative to the step's context node.
	expect(t, ev, `//VP/_$`, "NP[the old man with a dog]")
	expect(t, ev, `//VP/^_`, "V[saw]")
	// Q7-style pattern adapted to the example grammar.
	expect(t, ev, `//VP[{//^V->NP->PP$}]`, "VP[saw the old man with a dog]")
	// Alignment at the top level is relative to the whole tree.
	expect(t, ev, `//^NP`, "NP[I]")
	expect(t, ev, `//_$`,
		"S[I saw the old man with a dog today]", "N[today]")
}

func TestAttributeErrors(t *testing.T) {
	ev := New(tree.Figure1())
	for _, q := range []string{
		`//@lex`,            // attribute as a main-path step
		`//_[@lex/NP]`,      // attribute step not final
		`//_[//NP=saw]`,     // comparison without attribute step
		`//_[{//@lex}=saw]`, // attribute inside scope head position is fine? no: scoped tail final step is @lex — allowed
	} {
		p, err := lpath.Parse(q)
		if err != nil {
			continue // some are syntax errors, equally acceptable
		}
		if _, err := ev.Eval(p); err == nil && q != `//_[{//@lex}=saw]` {
			t.Errorf("Eval(%q): expected error", q)
		}
	}
}

func TestAttributeInScopedPredicate(t *testing.T) {
	ev := New(tree.Figure1())
	// A scoped predicate path ending in an attribute comparison.
	expect(t, ev, `//VP[{//_[@lex=saw]}]`, "VP[saw the old man with a dog]")
}

func TestCorpusEval(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	c.Add(tree.MustParseTree(`(S (NP you) (VP (V saw) (NP (Det a) (N cat))))`))
	ce := NewCorpus(c)
	p := lpath.MustParse(`//_[@lex=saw]`)
	ms, err := ce.Eval(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("matches = %d, want 2", len(ms))
	}
	if ms[0].TreeID != 1 || ms[1].TreeID != 2 {
		t.Errorf("tree IDs = %d, %d", ms[0].TreeID, ms[1].TreeID)
	}
	n, err := ce.Count(p)
	if err != nil || n != 2 {
		t.Errorf("Count = %d, %v", n, err)
	}
	// Det(a)->N(dog) in tree 1 and Det(a)->N(cat) in tree 2;
	// Det(the) is immediately followed by Adj(old), not an N.
	n, err = ce.Count(lpath.MustParse(`//Det->N`))
	if err != nil || n != 2 {
		t.Errorf("Count(//Det->N) = %d, %v; want 2", n, err)
	}
}

func TestResultsDocumentOrderAndDedup(t *testing.T) {
	ev := New(tree.Figure1())
	// Two Dets each have an Adj/N following; ancestors overlap — dedup must
	// apply across context nodes.
	p := lpath.MustParse(`//Det\\NP`)
	res, err := ev.Eval(p)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[*tree.Node]bool{}
	for _, n := range res {
		if seen[n] {
			t.Fatalf("duplicate node %s in results", sig(n))
		}
		seen[n] = true
	}
	// Document order: NP[the old man with a dog] precedes NP[the old man].
	if len(res) < 2 || sig(res[0]) != "NP[the old man with a dog]" {
		t.Errorf("results out of document order: %v", sigsOf(res))
	}
}

func sigsOf(ns []*tree.Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = sig(n)
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	ev := New(&tree.Tree{})
	res, err := ev.Eval(lpath.MustParse(`//NP`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("results on empty tree: %v", res)
	}
}
