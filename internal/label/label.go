// Package label implements the interval-based labeling scheme of the LPath
// paper (Definition 4.1) and the axis predicates over labels (Table 2).
//
// Each node of an ordered linguistic tree receives a tuple
//
//	(left, right, depth, id, pid, name)
//
// assigned in a single depth-first traversal:
//
//   - the i-th leaf (1-based, left to right) has left=i, right=i+1, so the
//     left span of a leaf immediately follows the right span of the previous
//     leaf;
//   - a non-terminal spans from the left of its first leaf descendant to the
//     right of its last leaf descendant;
//   - depth is 1 at the root and grows downward;
//   - id is a unique nonzero identifier, pid the parent's id (0 at the root);
//   - attributes copy their element's (left, right, depth, id, pid) and carry
//     name "@attr".
//
// Two structural properties (Section 4) make the scheme work:
//
//	Containment: x is a descendant of y iff every leaf of x is a leaf of y —
//	with labels, y.l ≤ x.l ∧ x.r ≤ y.r (plus depth to resolve unary chains).
//
//	Adjacency: x immediately follows y iff the leftmost leaf of x immediately
//	follows the rightmost leaf of y — with labels, x.l = y.r.
//
// The Adjacency property is what lets the scheme answer immediate-following
// queries, which the start/end labeling used for XPath evaluation cannot
// express (see package xpath for that scheme).
package label

import "lpath/internal/tree"

// Label is the (left, right, depth, id, pid) tuple of Definition 4.1, without
// the name/value columns, which live in the relational row (package
// relstore).
type Label struct {
	Left  int32
	Right int32
	Depth int32
	ID    int32
	PID   int32
}

// Labeled pairs a tree node with its label.
type Labeled struct {
	Node  *tree.Node
	Label Label
}

// Assign labels every node of the tree in document order and returns the
// nodes paired with their labels, in document (preorder) order. IDs are
// assigned in preorder starting from 1; the root has PID 0.
func Assign(t *tree.Tree) []Labeled {
	if t == nil || t.Root == nil {
		return nil
	}
	out := make([]Labeled, 0, 64)
	nextLeaf := int32(1)
	var nextID int32
	var rec func(n *tree.Node, depth, pid int32) (l, r int32)
	rec = func(n *tree.Node, depth, pid int32) (int32, int32) {
		nextID++
		id := nextID
		idx := len(out)
		out = append(out, Labeled{Node: n}) // placeholder; spans fixed below
		var l, r int32
		if len(n.Children) == 0 {
			l = nextLeaf
			r = nextLeaf + 1
			nextLeaf++
		} else {
			for i, c := range n.Children {
				cl, cr := rec(c, depth+1, id)
				if i == 0 {
					l = cl
				}
				r = cr
			}
		}
		out[idx].Label = Label{Left: l, Right: r, Depth: depth, ID: id, PID: pid}
		return l, r
	}
	rec(t.Root, 1, 0)
	return out
}

// --- Table 2: axis relationships as label comparisons ------------------
//
// Each predicate asks: given the label c of a context node, is the node
// labeled x reachable from c along the axis? All predicates assume the two
// labels come from the same tree.

// IsChild reports whether x is a child of c.
func IsChild(x, c Label) bool { return x.PID == c.ID }

// IsDescendant reports whether x is a proper descendant of c.
func IsDescendant(x, c Label) bool {
	return c.Left <= x.Left && x.Right <= c.Right && x.Depth > c.Depth
}

// IsDescendantOrSelf reports whether x is c or a descendant of c.
func IsDescendantOrSelf(x, c Label) bool {
	return c.Left <= x.Left && x.Right <= c.Right && x.Depth >= c.Depth
}

// IsParent reports whether x is the parent of c.
func IsParent(x, c Label) bool { return x.ID == c.PID }

// IsAncestor reports whether x is a proper ancestor of c.
func IsAncestor(x, c Label) bool {
	return x.Left <= c.Left && c.Right <= x.Right && x.Depth < c.Depth
}

// IsAncestorOrSelf reports whether x is c or an ancestor of c.
func IsAncestorOrSelf(x, c Label) bool {
	return x.Left <= c.Left && c.Right <= x.Right && x.Depth <= c.Depth
}

// IsImmediateFollowing reports whether x immediately follows c
// (Definition 3.1): x's leftmost leaf immediately follows c's rightmost leaf.
func IsImmediateFollowing(x, c Label) bool { return x.Left == c.Right }

// IsFollowing reports whether x follows c, i.e. x appears after c in some
// proper analysis: every leaf of x is after every leaf of c.
func IsFollowing(x, c Label) bool { return x.Left >= c.Right }

// IsImmediatePreceding reports whether x immediately precedes c.
func IsImmediatePreceding(x, c Label) bool { return x.Right == c.Left }

// IsPreceding reports whether x precedes c.
func IsPreceding(x, c Label) bool { return x.Right <= c.Left }

// IsImmediateFollowingSibling reports whether x is a sibling of c and
// immediately follows it. Because siblings are spatially adjacent exactly
// when they are consecutive children, x.l = c.r selects the next sibling.
func IsImmediateFollowingSibling(x, c Label) bool {
	return x.PID == c.PID && x.Left == c.Right
}

// IsFollowingSibling reports whether x is a sibling of c appearing after it.
func IsFollowingSibling(x, c Label) bool {
	return x.PID == c.PID && x.Left >= c.Right
}

// IsImmediatePrecedingSibling reports whether x is the sibling immediately
// before c.
func IsImmediatePrecedingSibling(x, c Label) bool {
	return x.PID == c.PID && x.Right == c.Left
}

// IsPrecedingSibling reports whether x is a sibling of c appearing before it.
func IsPrecedingSibling(x, c Label) bool {
	return x.PID == c.PID && x.Right <= c.Left
}

// IsSelf reports whether x and c are the same node.
func IsSelf(x, c Label) bool { return x.ID == c.ID }

// --- Edge alignment and scoping ----------------------------------------

// IsLeftAligned reports whether x starts at the left edge of scope s.
func IsLeftAligned(x, s Label) bool { return x.Left == s.Left }

// IsRightAligned reports whether x ends at the right edge of scope s.
func IsRightAligned(x, s Label) bool { return x.Right == s.Right }

// InScope reports whether x lies inside the subtree of scope s (s itself
// included): the subtree-scoping test applied to every step between braces.
func InScope(x, s Label) bool {
	return s.Left <= x.Left && x.Right <= s.Right && x.Depth >= s.Depth
}
