package label

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lpath/internal/tree"
)

// findLabeled returns the labeled entry for the first node matching tag and
// (optionally) word.
func findLabeled(t *testing.T, ls []Labeled, tag, word string) Labeled {
	t.Helper()
	for _, l := range ls {
		if l.Node.Tag == tag && (word == "" || l.Node.Word == word) {
			return l
		}
	}
	t.Fatalf("no node %s %q", tag, word)
	return Labeled{}
}

// TestFigure5Rows checks the labels of the running example against the
// relational representation shown in Figure 5 of the paper.
func TestFigure5Rows(t *testing.T) {
	ls := Assign(tree.Figure1())
	cases := []struct {
		tag, word string
		l, r, d   int32
	}{
		{"S", "", 1, 10, 1},
		{"NP", "I", 1, 2, 2},
		{"VP", "", 2, 9, 2},
		{"V", "saw", 2, 3, 3},
		{"Det", "the", 3, 4, 5},
		{"Adj", "old", 4, 5, 5},
		{"N", "man", 5, 6, 5},
		{"Prep", "with", 6, 7, 5},
		{"Det", "a", 7, 8, 6},
		{"N", "dog", 8, 9, 6},
		{"N", "today", 9, 10, 2},
	}
	for _, tc := range cases {
		got := findLabeled(t, ls, tc.tag, tc.word).Label
		if got.Left != tc.l || got.Right != tc.r || got.Depth != tc.d {
			t.Errorf("(%s %s): got (l=%d r=%d d=%d), want (l=%d r=%d d=%d)",
				tc.tag, tc.word, got.Left, got.Right, got.Depth, tc.l, tc.r, tc.d)
		}
	}
	// The two object noun phrases from Figure 5.
	var np39, np36 bool
	for _, l := range ls {
		if l.Node.Tag == "NP" && l.Label.Left == 3 && l.Label.Right == 9 && l.Label.Depth == 3 {
			np39 = true
		}
		if l.Node.Tag == "NP" && l.Label.Left == 3 && l.Label.Right == 6 && l.Label.Depth == 4 {
			np36 = true
		}
	}
	if !np39 || !np36 {
		t.Errorf("object NPs missing: NP(3,9,3)=%v NP(3,6,4)=%v", np39, np36)
	}
}

func TestAssignIDsPreorder(t *testing.T) {
	ls := Assign(tree.Figure1())
	for i, l := range ls {
		if l.Label.ID != int32(i+1) {
			t.Fatalf("node %d has id %d", i, l.Label.ID)
		}
	}
	if ls[0].Label.PID != 0 {
		t.Errorf("root pid = %d, want 0", ls[0].Label.PID)
	}
	// Parent pointers must agree with pid.
	byNode := map[*tree.Node]Label{}
	for _, l := range ls {
		byNode[l.Node] = l.Label
	}
	for _, l := range ls {
		if l.Node.Parent == nil {
			continue
		}
		if got := byNode[l.Node.Parent].ID; got != l.Label.PID {
			t.Errorf("node %s: pid %d, parent id %d", l.Node.Tag, l.Label.PID, got)
		}
	}
}

func TestAssignEmpty(t *testing.T) {
	if got := Assign(nil); got != nil {
		t.Errorf("Assign(nil) = %v", got)
	}
	if got := Assign(&tree.Tree{}); got != nil {
		t.Errorf("Assign(empty) = %v", got)
	}
}

// TestExample41 reproduces the label comparisons of Example 4.1: S is an
// ancestor of the object NP, and V immediately precedes it.
func TestExample41(t *testing.T) {
	ls := Assign(tree.Figure1())
	s := findLabeled(t, ls, "S", "").Label
	v := findLabeled(t, ls, "V", "saw").Label
	var np Label
	for _, l := range ls {
		if l.Node.Tag == "NP" && l.Label.Left == 3 && l.Label.Right == 9 {
			np = l.Label
		}
	}
	if !IsAncestor(s, np) {
		t.Error("S should be an ancestor of NP(3,9)")
	}
	if !IsImmediatePreceding(v, np) {
		t.Error("V should immediately precede NP(3,9)")
	}
	if !IsImmediateFollowing(np, v) {
		t.Error("NP(3,9) should immediately follow V")
	}
}

// TestImmediateFollowingSection1 reproduces the Section 1 example: the
// constituents that immediately follow the verb are NP(3,9), NP(3,6) and
// Det(the) — the three nodes whose left span equals V's right span.
func TestImmediateFollowingSection1(t *testing.T) {
	ls := Assign(tree.Figure1())
	v := findLabeled(t, ls, "V", "saw").Label
	var got []string
	for _, l := range ls {
		if IsImmediateFollowing(l.Label, v) {
			got = append(got, l.Node.Tag)
		}
	}
	want := map[string]bool{"NP": true, "Det": true}
	if len(got) != 3 {
		t.Fatalf("immediate-following(V) = %v, want 3 nodes", got)
	}
	for _, tag := range got {
		if !want[tag] {
			t.Errorf("unexpected immediate-following tag %q", tag)
		}
	}
}

// labeledTree builds a random tree and returns nodes with labels plus an
// index from node to label.
func labeledTree(seed int64) ([]Labeled, map[*tree.Node]Label) {
	rng := rand.New(rand.NewSource(seed))
	tags := []string{"S", "NP", "VP", "PP", "N", "V"}
	var build func(depth int) *tree.Node
	build = func(depth int) *tree.Node {
		n := &tree.Node{Tag: tags[rng.Intn(len(tags))]}
		if depth >= 7 || rng.Intn(3) == 0 {
			n.Word = "w"
			return n
		}
		// Allow unary branching (rng.Intn(3) may be 1) on purpose: the
		// labeling must distinguish unary chains via depth.
		kids := 1 + rng.Intn(3)
		for i := 0; i < kids; i++ {
			n.AddChild(build(depth + 1))
		}
		return n
	}
	t := tree.NewTree(build(1))
	ls := Assign(t)
	idx := make(map[*tree.Node]Label, len(ls))
	for _, l := range ls {
		idx[l.Node] = l.Label
	}
	return ls, idx
}

// slow tree-walking definitions of the axes, used as the specification.
func slowFollows(x, y *tree.Node, idx map[*tree.Node]Label) bool {
	// x follows y iff x's leftmost leaf comes strictly after y's rightmost
	// leaf in the terminal order. Leaf order equals label order of leaves.
	return idx[x.LeftmostLeaf()].Left >= idx[y.RightmostLeaf()].Right
}

func slowImmediatelyFollows(x, y *tree.Node, idx map[*tree.Node]Label) bool {
	if !slowFollows(x, y, idx) {
		return false
	}
	// Definition 3.1: no z with x follows z and z follows y.
	root := x.Root()
	found := false
	root.Walk(func(z *tree.Node) bool {
		if z != x && z != y && slowFollows(x, z, idx) && slowFollows(z, y, idx) {
			found = true
		}
		return !found
	})
	return !found
}

// TestTable2LabelPredicates verifies, on random trees with unary branching,
// that every Table 2 label comparison agrees with the structural definition
// of its axis.
func TestTable2LabelPredicates(t *testing.T) {
	f := func(seed int64) bool {
		ls, idx := labeledTree(seed)
		for _, a := range ls {
			for _, b := range ls {
				x, c := a.Label, b.Label
				xn, cn := a.Node, b.Node
				if IsChild(x, c) != (xn.Parent == cn) {
					t.Logf("seed %d: child mismatch", seed)
					return false
				}
				if IsParent(x, c) != (cn.Parent == xn) {
					return false
				}
				if IsDescendant(x, c) != cn.IsAncestorOf(xn) {
					t.Logf("seed %d: descendant mismatch %v %v", seed, x, c)
					return false
				}
				if IsAncestor(x, c) != xn.IsAncestorOf(cn) {
					return false
				}
				if IsDescendantOrSelf(x, c) != (xn == cn || cn.IsAncestorOf(xn)) {
					return false
				}
				if IsAncestorOrSelf(x, c) != (xn == cn || xn.IsAncestorOf(cn)) {
					return false
				}
				if IsFollowing(x, c) != slowFollows(xn, cn, idx) {
					t.Logf("seed %d: following mismatch", seed)
					return false
				}
				if IsPreceding(x, c) != slowFollows(cn, xn, idx) {
					return false
				}
				if IsImmediateFollowing(x, c) != slowImmediatelyFollows(xn, cn, idx) {
					t.Logf("seed %d: immediate-following mismatch x=%v c=%v", seed, x, c)
					return false
				}
				if IsImmediatePreceding(x, c) != slowImmediatelyFollows(cn, xn, idx) {
					return false
				}
				sib := xn.Parent != nil && xn.Parent == cn.Parent
				if IsFollowingSibling(x, c) != (sib && slowFollows(xn, cn, idx)) {
					return false
				}
				if IsPrecedingSibling(x, c) != (sib && slowFollows(cn, xn, idx)) {
					return false
				}
				if IsImmediateFollowingSibling(x, c) != (cn.NextSibling() == xn) {
					t.Logf("seed %d: immediate-following-sibling mismatch", seed)
					return false
				}
				if IsImmediatePrecedingSibling(x, c) != (cn.PrevSibling() == xn) {
					return false
				}
				if IsSelf(x, c) != (xn == cn) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestClosureProperties checks the Table 1 closure relationships: following
// is the transitive closure of immediate-following, and likewise for the
// sibling axes.
func TestClosureProperties(t *testing.T) {
	f := func(seed int64) bool {
		ls, _ := labeledTree(seed)
		// reachable[i][j]: j reachable from i via immediate-following edges.
		n := len(ls)
		if n > 40 {
			ls = ls[:40]
			n = 40
		}
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = make([]bool, n)
			for j := range reach[i] {
				reach[i][j] = IsImmediateFollowing(ls[j].Label, ls[i].Label)
			}
		}
		// Warshall.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				if reach[i][k] {
					for j := 0; j < n; j++ {
						if reach[k][j] {
							reach[i][j] = true
						}
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if reach[i][j] != IsFollowing(ls[j].Label, ls[i].Label) {
					t.Logf("seed %d: closure mismatch i=%d j=%d", seed, i, j)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAlignmentAndScope(t *testing.T) {
	ls := Assign(tree.Figure1())
	var vp, np39, np36, npDog, det Label
	for _, l := range ls {
		switch {
		case l.Node.Tag == "VP":
			vp = l.Label
		case l.Node.Tag == "NP" && l.Label.Left == 3 && l.Label.Right == 9:
			np39 = l.Label
		case l.Node.Tag == "NP" && l.Label.Left == 3 && l.Label.Right == 6:
			np36 = l.Label
		case l.Node.Tag == "NP" && l.Label.Left == 7:
			npDog = l.Label
		case l.Node.Word == "the":
			det = l.Label
		}
	}
	// Query Q6-style right alignment: NP(3,9) and NP(7,9) end at VP's right
	// edge; NP(3,6) does not.
	if !IsRightAligned(np39, vp) || !IsRightAligned(npDog, vp) {
		t.Error("NP(3,9) and NP(7,9) must be right-aligned with VP")
	}
	if IsRightAligned(np36, vp) {
		t.Error("NP(3,6) must not be right-aligned with VP")
	}
	if IsLeftAligned(np39, vp) {
		t.Error("NP(3,9) must not be left-aligned with VP")
	}
	// Scope: everything inside VP's subtree is in scope, the N(today) node
	// is not.
	if !InScope(det, vp) || !InScope(np39, vp) || !InScope(vp, vp) {
		t.Error("VP subtree members must be in scope")
	}
	var today Label
	for _, l := range ls {
		if l.Node.Word == "today" {
			today = l.Label
		}
	}
	if InScope(today, vp) {
		t.Error("N(today) is outside VP's subtree")
	}
	// Unary-chain case: a parent with identical span must NOT be in the
	// scope of its child.
	chain := Assign(tree.MustParseTree("(NP (NP (N dog)))"))
	outer, inner := chain[0].Label, chain[1].Label
	if InScope(outer, inner) {
		t.Error("unary parent must be outside the child's scope")
	}
	if !InScope(inner, outer) {
		t.Error("unary child must be inside the parent's scope")
	}
}
