// Package bitset provides dense bitsets over the columnar row index of a
// relstore shard: bit i corresponds to clustered row i, so name postings and
// value-index postings convert to sets in O(ranges) via SetRange, and
// conjunctive/disjunctive structural filters evaluate as word-parallel
// And/Or/AndNot kernels instead of per-candidate probes (docs/EXECUTION.md,
// "Bitmap filter kernels").
//
// A Set is not safe for concurrent mutation; concurrent readers are fine.
// All sets combined by the binary kernels are expected to share the same
// logical length (the shard's row count); the kernels tolerate shorter
// operands by treating missing words as zero.
package bitset

import "math/bits"

const wordBits = 64

// Set is a dense bitset of a fixed logical length.
type Set struct {
	words []uint64
	n     int // logical length in bits
}

// New returns an empty set of logical length n bits.
func New(n int) *Set {
	s := &Set{}
	s.Reset(n)
	return s
}

// Reset clears the set and resizes it to n bits, reusing the word slice when
// it is large enough — the pooling entry point (engine arenas call it when
// recycling sets across evaluations).
func (s *Set) Reset(n int) {
	if n < 0 {
		n = 0
	}
	w := (n + wordBits - 1) / wordBits
	if cap(s.words) < w {
		s.words = make([]uint64, w)
	} else {
		s.words = s.words[:w]
		clear(s.words)
	}
	s.n = n
}

// Len returns the logical length in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i. Out-of-range indexes are ignored.
func (s *Set) Set(i int32) {
	if i < 0 || int(i) >= s.n {
		return
	}
	s.words[i>>6] |= 1 << uint(i&63)
}

// Clear clears bit i. Out-of-range indexes are ignored.
func (s *Set) Clear(i int32) {
	if i < 0 || int(i) >= s.n {
		return
	}
	s.words[i>>6] &^= 1 << uint(i&63)
}

// Has reports whether bit i is set. Out-of-range indexes are false.
func (s *Set) Has(i int32) bool {
	if i < 0 || int(i) >= s.n {
		return false
	}
	return s.words[i>>6]&(1<<uint(i&63)) != 0
}

// SetRange sets every bit in [lo, hi), clamped to the set's length. Interior
// words fill at word granularity, so converting a clustered posting range to
// a set costs O(hi-lo)/64 — the O(ranges) conversion the bitmap executor
// relies on.
func (s *Set) SetRange(lo, hi int32) {
	if lo < 0 {
		lo = 0
	}
	if int(hi) > s.n {
		hi = int32(s.n)
	}
	if lo >= hi {
		return
	}
	lw, hw := int(lo>>6), int((hi-1)>>6)
	loMask := ^uint64(0) << uint(lo&63)
	hiMask := ^uint64(0) >> uint(63-(hi-1)&63)
	if lw == hw {
		s.words[lw] |= loMask & hiMask
		return
	}
	s.words[lw] |= loMask
	for w := lw + 1; w < hw; w++ {
		s.words[w] = ^uint64(0)
	}
	s.words[hw] |= hiMask
}

// And intersects s with o in place.
func (s *Set) And(o *Set) {
	n := min(len(s.words), len(o.words))
	for w := 0; w < n; w++ {
		s.words[w] &= o.words[w]
	}
	for w := n; w < len(s.words); w++ {
		s.words[w] = 0
	}
}

// Or unions o into s in place.
func (s *Set) Or(o *Set) {
	n := min(len(s.words), len(o.words))
	for w := 0; w < n; w++ {
		s.words[w] |= o.words[w]
	}
}

// AndNot removes o's bits from s in place.
func (s *Set) AndNot(o *Set) {
	n := min(len(s.words), len(o.words))
	for w := 0; w < n; w++ {
		s.words[w] &^= o.words[w]
	}
}

// Not complements s in place within its logical length.
func (s *Set) Not() {
	for w := range s.words {
		s.words[w] = ^s.words[w]
	}
	s.maskTail()
}

// maskTail zeroes the bits of the last word beyond the logical length, so
// Count/Any/AppendTo never observe ghost bits after Not or SetRange at the
// boundary.
func (s *Set) maskTail() {
	if tail := uint(s.n & 63); tail != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= ^uint64(0) >> (wordBits - tail)
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// ClampWindow clears every bit outside [lo, hi) — the word-masked window
// clamp the streaming executors apply so a windowed evaluation never sees
// rows outside its tree-ID slice.
func (s *Set) ClampWindow(lo, hi int32) {
	if lo < 0 {
		lo = 0
	}
	if int(hi) > s.n {
		hi = int32(s.n)
	}
	if lo >= hi {
		clear(s.words)
		return
	}
	lw, hw := int(lo>>6), int((hi-1)>>6)
	for w := 0; w < lw; w++ {
		s.words[w] = 0
	}
	s.words[lw] &= ^uint64(0) << uint(lo&63)
	s.words[hw] &= ^uint64(0) >> uint(63-(hi-1)&63)
	for w := hw + 1; w < len(s.words); w++ {
		s.words[w] = 0
	}
}

// AppendTo appends the set bits in ascending order to dst (typically an
// arena-pooled candidate slice) via trailing-zero iteration and returns it.
func (s *Set) AppendTo(dst []int32) []int32 {
	for wi, w := range s.words {
		base := int32(wi * wordBits)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// Range calls f on every set bit in ascending order until f returns false.
func (s *Set) Range(f func(i int32) bool) {
	for wi, w := range s.words {
		base := int32(wi * wordBits)
		for w != 0 {
			if !f(base + int32(bits.TrailingZeros64(w))) {
				return
			}
			w &= w - 1
		}
	}
}

// CopyFrom makes s an exact copy of o (same logical length and bits).
func (s *Set) CopyFrom(o *Set) {
	s.Reset(o.n)
	copy(s.words, o.words)
}
