package bitset

import (
	"math/rand"
	"testing"
)

// oracle is the map-based reference the property tests compare against.
type oracle map[int32]bool

func (o oracle) collect(n int) []int32 {
	var out []int32
	for i := int32(0); int(i) < n; i++ {
		if o[i] {
			out = append(out, i)
		}
	}
	return out
}

func equal(t *testing.T, what string, s *Set, o oracle) {
	t.Helper()
	n := s.Len()
	want := o.collect(n)
	got := s.AppendTo(nil)
	if len(got) != len(want) {
		t.Fatalf("%s: %d bits, oracle %d\ngot  %v\nwant %v", what, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: bit %d differs: got %d want %d", what, i, got[i], want[i])
		}
	}
	if s.Count() != len(want) {
		t.Errorf("%s: Count = %d, want %d", what, s.Count(), len(want))
	}
	if s.Any() != (len(want) > 0) {
		t.Errorf("%s: Any = %v with %d bits", what, s.Any(), len(want))
	}
	for _, i := range []int32{-1, int32(n), int32(n + 63)} {
		if s.Has(i) {
			t.Errorf("%s: Has(%d) out of range true", what, i)
		}
	}
}

func randSet(rng *rand.Rand, n int) (*Set, oracle) {
	s, o := New(n), oracle{}
	for k := 0; k < n/2; k++ {
		i := int32(rng.Intn(n))
		s.Set(i)
		o[i] = true
	}
	return s, o
}

// TestKernelsAgainstOracle drives And/Or/AndNot/Not over random sets at
// lengths straddling word boundaries and checks every kernel against the
// map-based oracle.
func TestKernelsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 63, 64, 65, 127, 128, 129, 1000} {
		for trial := 0; trial < 20; trial++ {
			a, oa := randSet(rng, n)
			b, ob := randSet(rng, n)

			and := New(n)
			and.CopyFrom(a)
			and.And(b)
			oAnd := oracle{}
			for i := range oa {
				if ob[i] {
					oAnd[i] = true
				}
			}
			equal(t, "And", and, oAnd)

			or := New(n)
			or.CopyFrom(a)
			or.Or(b)
			oOr := oracle{}
			for i := range oa {
				oOr[i] = true
			}
			for i := range ob {
				oOr[i] = true
			}
			equal(t, "Or", or, oOr)

			andNot := New(n)
			andNot.CopyFrom(a)
			andNot.AndNot(b)
			oAndNot := oracle{}
			for i := range oa {
				if !ob[i] {
					oAndNot[i] = true
				}
			}
			equal(t, "AndNot", andNot, oAndNot)

			not := New(n)
			not.CopyFrom(a)
			not.Not()
			oNot := oracle{}
			for i := int32(0); int(i) < n; i++ {
				if !oa[i] {
					oNot[i] = true
				}
			}
			equal(t, "Not", not, oNot)
		}
	}
}

// TestSetRangeAgainstOracle checks the word-masked range fill at every
// boundary combination, including empty and inverted ranges.
func TestSetRangeAgainstOracle(t *testing.T) {
	n := 200
	for _, r := range [][2]int32{
		{0, 0}, {0, 1}, {0, 64}, {0, 200}, {63, 64}, {63, 65}, {64, 128},
		{1, 199}, {127, 129}, {5, 5}, {10, 5}, {-3, 70}, {190, 300},
	} {
		s := New(n)
		s.SetRange(r[0], r[1])
		o := oracle{}
		for i := max(r[0], 0); i < min(r[1], int32(n)); i++ {
			o[i] = true
		}
		equal(t, "SetRange", s, o)
	}
}

// TestClampWindow checks the window clamp against a filtered oracle.
func TestClampWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 300
	for _, w := range [][2]int32{
		{0, 300}, {0, 0}, {50, 50}, {64, 128}, {63, 65}, {1, 299}, {-10, 400}, {200, 100},
	} {
		s, o := randSet(rng, n)
		s.ClampWindow(w[0], w[1])
		ow := oracle{}
		for i := range o {
			if i >= w[0] && i < w[1] {
				ow[i] = true
			}
		}
		equal(t, "ClampWindow", s, ow)
	}
}

// TestEmptyAndFull pins the degenerate sets: zero-length, all-clear, and
// all-set via SetRange and Not.
func TestEmptyAndFull(t *testing.T) {
	z := New(0)
	if z.Any() || z.Count() != 0 || len(z.AppendTo(nil)) != 0 {
		t.Error("zero-length set is not empty")
	}
	z.Set(0) // ignored
	z.Not()  // no-op
	if z.Any() {
		t.Error("zero-length set gained bits")
	}

	for _, n := range []int{64, 65, 130} {
		full := New(n)
		full.SetRange(0, int32(n))
		if full.Count() != n {
			t.Errorf("full(%d): Count = %d", n, full.Count())
		}
		full.Not()
		if full.Any() {
			t.Errorf("¬full(%d) has bits", n)
		}
		full.Not()
		if full.Count() != n {
			t.Errorf("¬¬full(%d): Count = %d", n, full.Count())
		}
	}
}

// TestResetReuse pins that Reset reuses capacity and clears content, and that
// shrinking then growing inside capacity never exposes stale words.
func TestResetReuse(t *testing.T) {
	s := New(256)
	s.SetRange(0, 256)
	s.Reset(100)
	if s.Len() != 100 || s.Any() {
		t.Fatalf("Reset(100): len=%d any=%v", s.Len(), s.Any())
	}
	s.Set(99)
	s.Reset(256)
	if s.Any() {
		t.Fatal("Reset(256) exposed stale bits")
	}
	s.Reset(-5)
	if s.Len() != 0 {
		t.Fatalf("Reset(-5): len=%d", s.Len())
	}
}

// TestRangeEarlyStop pins that Range stops when the callback returns false.
func TestRangeEarlyStop(t *testing.T) {
	s := New(200)
	for _, i := range []int32{3, 70, 140, 199} {
		s.Set(i)
	}
	var seen []int32
	s.Range(func(i int32) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 3 || seen[1] != 70 {
		t.Fatalf("Range early stop: %v", seen)
	}
}

// TestMismatchedLengths pins the defensive behavior of the binary kernels on
// operands of different lengths: missing operand words act as zero.
func TestMismatchedLengths(t *testing.T) {
	long := New(200)
	long.SetRange(0, 200)
	short := New(64)
	short.SetRange(0, 64)

	a := New(200)
	a.CopyFrom(long)
	a.And(short)
	if a.Count() != 64 || a.Has(64) {
		t.Errorf("And short: count=%d", a.Count())
	}

	b := New(200)
	b.CopyFrom(long)
	b.AndNot(short)
	if b.Count() != 136 || b.Has(0) || !b.Has(64) {
		t.Errorf("AndNot short: count=%d", b.Count())
	}

	c := New(200)
	c.Or(short)
	if c.Count() != 64 {
		t.Errorf("Or short: count=%d", c.Count())
	}
}
