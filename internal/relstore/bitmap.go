package relstore

import (
	"sync"

	"lpath/internal/bitset"
)

// Bitmap-executor support: a parent-pointer column and dense per-name
// bitsets over the clustered row index, built lazily on first use and cached
// on the store alongside Cols (docs/EXECUTION.md, "Bitmap filter kernels").
// Everything here is derived from the clustered relation, so snapshot-loaded
// stores (Assemble) rebuild it on demand exactly like freshly built ones.
//
// The caches are safe for concurrent readers: engines share one store across
// goroutines, so the lazy builds are guarded.

// bitmapCache holds the lazily built bitmap-executor structures.
type bitmapCache struct {
	parentOnce sync.Once
	parentRows []int32 // row → parent element row index, -1 for roots/orphans

	elemOnce sync.Once
	elemBits *bitset.Set // all element rows (attribute rows excluded)

	nameMu   sync.RWMutex
	nameBits map[string]*bitset.Set // name → rows of that name
}

// NoParent marks a row without a parent element row in ParentRows (tree
// roots, and attribute rows whose owner is not an element).
const NoParent int32 = -1

// ParentRows returns the parent column: for every clustered row i, the row
// index of its parent element (NoParent for tree roots). Attribute rows map
// to their owning element's parent, matching the (left, right, depth, id,
// pid) labels they share with it. Built once, lazily; read-only.
//
// This is the column that turns the engine's per-scope child probing
// (childIdx map lookups) into two array loads and a bit test: a candidate x
// is a child of some scope s exactly when scopeBits.Has(ParentRows()[x]).
func (s *Store) ParentRows() []int32 {
	s.bitmaps.parentOnce.Do(func() {
		parents := make([]int32, len(s.rows))
		for i := range s.rows {
			r := &s.rows[i]
			if r.PID == 0 {
				parents[i] = NoParent
				continue
			}
			if p, ok := s.idIdx[Key(r.TID, r.PID)]; ok {
				parents[i] = p
			} else {
				parents[i] = NoParent
			}
		}
		s.bitmaps.parentRows = parents
	})
	return s.bitmaps.parentRows
}

// ElementBits returns the bitset of all element rows (attribute rows clear),
// built lazily from the clustered relation. Read-only; callers needing a
// mutable copy must CopyFrom it.
func (s *Store) ElementBits() *bitset.Set {
	s.bitmaps.elemOnce.Do(func() {
		b := bitset.New(len(s.rows))
		for name, rng := range s.nameIdx {
			if len(name) > 0 && name[0] == '@' {
				continue
			}
			b.SetRange(rng[0], rng[1])
		}
		s.bitmaps.elemBits = b
	})
	return s.bitmaps.elemBits
}

// NameBits returns the bitset of rows clustered under the name — the O(1)
// word-fill conversion of a clustered posting range (SetRange over
// [lo, hi)). Built lazily per name and cached for the store's lifetime; the
// returned set is shared and read-only.
func (s *Store) NameBits(name string) *bitset.Set {
	s.bitmaps.nameMu.RLock()
	b := s.bitmaps.nameBits[name]
	s.bitmaps.nameMu.RUnlock()
	if b != nil {
		return b
	}
	s.bitmaps.nameMu.Lock()
	defer s.bitmaps.nameMu.Unlock()
	if b = s.bitmaps.nameBits[name]; b != nil {
		return b
	}
	b = bitset.New(len(s.rows))
	if rng, ok := s.nameIdx[name]; ok {
		b.SetRange(rng[0], rng[1])
	}
	if s.bitmaps.nameBits == nil {
		s.bitmaps.nameBits = make(map[string]*bitset.Set)
	}
	s.bitmaps.nameBits[name] = b
	return b
}
