package relstore

import (
	"math"
	"testing"

	"lpath/internal/tree"
)

func TestStatisticsFigure1(t *testing.T) {
	s := figureStore(t, SchemeInterval)
	st := s.Statistics()
	if st == nil {
		t.Fatal("Statistics() = nil")
	}
	if st.Trees != 1 {
		t.Errorf("Trees = %d, want 1", st.Trees)
	}
	if st.Elements != 15 {
		t.Errorf("Elements = %d, want 15", st.Elements)
	}
	if st.AttrRows != 9 {
		t.Errorf("AttrRows = %d, want 9 (@lex per preterminal)", st.AttrRows)
	}
	if st.Leaves != 9 {
		t.Errorf("Leaves = %d, want 9", st.Leaves)
	}
	if st.TotalSpan != 9 {
		t.Errorf("TotalSpan = %d, want 9 (one unit per word)", st.TotalSpan)
	}
	if got := st.NameCount("NP"); got != 4 {
		t.Errorf("NameCount(NP) = %d, want 4", got)
	}
	if got := st.NameCount("ZZZ"); got != 0 {
		t.Errorf("NameCount(ZZZ) = %d, want 0", got)
	}
	if got := st.AttrNames["@lex"]; got != 9 {
		t.Errorf("AttrNames[@lex] = %d, want 9", got)
	}
	if got := st.PostingCount("saw"); got != 1 {
		t.Errorf("PostingCount(saw) = %d, want 1", got)
	}
	if got := st.PostingCount("no-such-word"); got != 0 {
		t.Errorf("PostingCount(no-such-word) = %d, want 0", got)
	}
	if got := st.NodesPerSpan(); math.Abs(got-15.0/9.0) > 1e-9 {
		t.Errorf("NodesPerSpan = %g, want %g", got, 15.0/9.0)
	}
	if got := st.AvgTreeSpan(); got != 9 {
		t.Errorf("AvgTreeSpan = %g, want 9", got)
	}
	// 15 elements, 9 leaves, 6 internal; every non-root element is someone's
	// child, so AvgFanout = (15-1)/6.
	if got := st.AvgFanout(); math.Abs(got-14.0/6.0) > 1e-9 {
		t.Errorf("AvgFanout = %g, want %g", got, 14.0/6.0)
	}
	if st.MaxDepth < 2 || len(st.DepthHist) != st.MaxDepth+1 {
		t.Errorf("MaxDepth = %d, DepthHist len = %d", st.MaxDepth, len(st.DepthHist))
	}
	sum := 0
	for _, n := range st.DepthHist {
		sum += n
	}
	if sum != st.Elements {
		t.Errorf("DepthHist sums to %d, want %d", sum, st.Elements)
	}
	if st.Values.Rows != 9 {
		t.Errorf("Values.Rows = %d, want 9", st.Values.Rows)
	}
	if st.Values.Distinct == 0 || st.Values.Max < 1 {
		t.Errorf("Values = %+v", st.Values)
	}
}

func TestStatisticsEmptyStore(t *testing.T) {
	s := Build(tree.NewCorpus(), SchemeInterval)
	st := s.Statistics()
	if st.Elements != 0 || st.Trees != 0 {
		t.Fatalf("empty store stats: %+v", st)
	}
	if got := st.NodesPerSpan(); got != 2 {
		t.Errorf("empty NodesPerSpan = %g, want the default 2", got)
	}
	if got := st.AvgFanout(); got != 0 {
		t.Errorf("empty AvgFanout = %g, want 0", got)
	}
}

// TestShardStatisticsMerged checks that every shard carries the identical
// corpus-global snapshot, equal to what an unsharded build computes.
func TestShardStatisticsMerged(t *testing.T) {
	c := randomShardCorpus(99, 23)
	whole := Build(c, SchemeInterval).Statistics()
	shards := BuildShards(c, SchemeInterval, 4)
	if len(shards) != 4 {
		t.Fatalf("BuildShards returned %d shards", len(shards))
	}
	for i, sh := range shards {
		st := sh.Statistics()
		if st.Trees != whole.Trees || st.Elements != whole.Elements ||
			st.AttrRows != whole.AttrRows || st.Leaves != whole.Leaves ||
			st.TotalSpan != whole.TotalSpan || st.MaxDepth != whole.MaxDepth {
			t.Fatalf("shard %d counts differ from unsharded: %+v vs %+v", i, st, whole)
		}
		if math.Abs(st.AvgDepth-whole.AvgDepth) > 1e-9 {
			t.Errorf("shard %d AvgDepth = %g, want %g", i, st.AvgDepth, whole.AvgDepth)
		}
		if len(st.Names) != len(whole.Names) {
			t.Fatalf("shard %d has %d names, want %d", i, len(st.Names), len(whole.Names))
		}
		for name, ns := range whole.Names {
			got := st.Names[name]
			if got.Count != ns.Count {
				t.Errorf("shard %d NameCount(%s) = %d, want %d", i, name, got.Count, ns.Count)
			}
			if math.Abs(got.Fanout-ns.Fanout) > 1e-9 || math.Abs(got.Span-ns.Span) > 1e-9 {
				t.Errorf("shard %d %s stat %+v, want %+v", i, name, got, ns)
			}
		}
		for name, n := range whole.AttrNames {
			if st.AttrNames[name] != n {
				t.Errorf("shard %d AttrNames[%s] = %d, want %d", i, name, st.AttrNames[name], n)
			}
		}
		if st.Values.Distinct != whole.Values.Distinct || st.Values.Rows != whole.Values.Rows ||
			st.Values.Max != whole.Values.Max {
			t.Errorf("shard %d Values = %+v, want %+v", i, st.Values, whole.Values)
		}
		for v, n := range whole.valueCard {
			if st.PostingCount(v) != n {
				t.Errorf("shard %d PostingCount(%s) = %d, want %d", i, v, st.PostingCount(v), n)
			}
		}
	}
	// Shards 1..k share the exact snapshot pointer with shard 0 — planning
	// once per query is sound because the statistics are one object.
	for i := 1; i < len(shards); i++ {
		if shards[i].Statistics() != shards[0].Statistics() {
			t.Errorf("shard %d has a distinct Statistics pointer", i)
		}
	}
}

func TestNamesBySize(t *testing.T) {
	s := figureStore(t, SchemeInterval)
	names := s.Statistics().NamesBySize()
	if len(names) == 0 {
		t.Fatal("no names")
	}
	st := s.Statistics()
	for i := 1; i < len(names); i++ {
		a, b := st.Names[names[i-1]].Count, st.Names[names[i]].Count
		if a < b {
			t.Fatalf("NamesBySize out of order at %d: %s(%d) before %s(%d)",
				i, names[i-1], a, names[i], b)
		}
	}
}
