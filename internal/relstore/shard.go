package relstore

import "lpath/internal/tree"

// Sharding partitions a corpus into disjoint tree-ID ranges so queries can
// be evaluated shard-by-shard in parallel. Every LPath axis relates nodes of
// a single tree (Table 2 predicates all conjoin on tid), so a per-tree
// partition never splits a match: evaluating a query on each shard and
// concatenating the per-shard results in tid order is exactly the global
// evaluation.

// SplitByTID partitions the corpus's trees into at most k contiguous chunks,
// balanced by node count so shards carry comparable evaluation work even
// when tree sizes are skewed. Tree identifiers are preserved: each returned
// corpus shares the original *Tree values (and hence their IDs), so rows
// built from a shard carry the same tid they would in the unsharded store.
// The chunks cover every tree exactly once and are returned in tid order.
func SplitByTID(c *tree.Corpus, k int) []*tree.Corpus {
	n := c.Len()
	if n == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	total := 0
	for _, t := range c.Trees {
		total += t.Size()
	}
	out := make([]*tree.Corpus, 0, k)
	start, acc, used := 0, 0, 0
	for i, t := range c.Trees {
		acc += t.Size()
		remChunks := k - len(out)
		remTrees := n - i - 1
		// Close the chunk once it reaches an even share of the remaining
		// work — but never leave fewer trees than chunks still to emit.
		target := (total - used) / remChunks
		if (acc >= target || remTrees < remChunks) && remChunks > 1 || i == n-1 {
			out = append(out, &tree.Corpus{Trees: c.Trees[start : i+1]})
			start = i + 1
			used += acc
			acc = 0
		}
	}
	return out
}

// BuildShards splits the corpus with SplitByTID and builds an independent
// Store per shard under the scheme. Each shard is a complete store over its
// trees — same clustering, same secondary indexes — so any engine that runs
// over a Store runs unchanged over a shard.
// Each shard's Statistics() snapshot is the corpus-global merge of the
// per-shard statistics, so planning decisions are identical on every shard.
func BuildShards(c *tree.Corpus, scheme Scheme, k int) []*Store {
	parts := SplitByTID(c, k)
	out := make([]*Store, len(parts))
	stats := make([]*Statistics, len(parts))
	for i, p := range parts {
		out[i] = Build(p, scheme)
		stats[i] = out[i].stats
	}
	if len(out) > 0 {
		merged := mergeStatistics(stats)
		for _, s := range out {
			s.stats = merged
		}
	}
	return out
}
