package relstore

// Store deconstruction and reassembly for persistent snapshots.
//
// A built Store is a clustered row array plus sorted secondary postings plus
// hash indexes plus a statistics snapshot. Parts flattens exactly the
// non-derivable portion of that state — the clustered order, the name/value
// dictionaries, every sorted posting permutation, and the Statistics block —
// into dictionary-coded flat arrays that a binary format can write and read
// verbatim (see internal/relstore/snapshot). Assemble is the inverse: it
// revalidates the arrays and rebuilds the Store's hash indexes, packed sort
// keys, and corpus trees with linear passes only. Nothing is re-sorted on
// load; every sorted order ships in the snapshot and is verified, not
// recomputed, which is what turns cold start from O(parse + sort) into
// O(read + scan).
//
// Assemble treats its input as untrusted: any structural inconsistency —
// out-of-range posting, misordered permutation, orphaned attribute row,
// duplicate node identity — is reported as an error, never a panic, so the
// snapshot loader can feed it bytes that passed only checksum validation.

import (
	"fmt"
	"sort"

	"lpath/internal/tree"
)

// StatsParts is the serializable image of the Statistics block. Counts that
// are derivable from the dictionary ranges (per-name cardinalities, attribute
// name counts, value posting sizes) are reconstructed from those ranges;
// everything else travels here.
type StatsParts struct {
	Elements  int
	AttrRows  int
	Leaves    int
	TotalSpan int
	MaxDepth  int
	AvgDepth  float64
	DepthHist []int64
	// NameFanout and NameSpan are parallel to Parts.Names; entries for
	// attribute names are zero.
	NameFanout []float64
	NameSpan   []float64
}

// Parts is the complete physical state of a built Store as flat arrays:
//
//   - Names / NameStarts: the name dictionary in clustered (ascending) order
//     and the partition of the row array into per-name ranges
//     [NameStarts[i], NameStarts[i+1]).
//   - Values / ValueStarts / ValuePost: the attribute-value dictionary
//     (ascending) with its {value → attr rows} postings, (tid, id,
//     row)-ordered.
//   - Cols: the six hot label columns in clustered row order; together with
//     the dictionaries they reconstruct every Row.
//   - RightStarts / RightPost: per-name (tid, right, left, depth)-ordered
//     element postings (the reverse-axis index).
//   - DocNames / DocStarts / DocPost: the doc-order permutations kept for
//     names whose clustered order differs from document order (NameByDoc).
//   - ElemsByLeft / ElemsByRight: whole-relation document-order element
//     permutations for wildcard node tests.
//   - Stats: the non-derivable remainder of the Statistics snapshot.
type Parts struct {
	Scheme    Scheme
	TreeCount int

	Names      []string
	NameStarts []int32

	Values      []string
	ValueStarts []int32
	ValuePost   []int32

	Cols Cols

	RightStarts []int32
	RightPost   []int32

	DocNames  []int32
	DocStarts []int32
	DocPost   []int32

	ElemsByLeft  []int32
	ElemsByRight []int32

	Stats StatsParts
}

// Parts flattens the store into its serializable parts. The returned slices
// alias the store's internal state where possible and must not be mutated.
// Extraction is deterministic: dictionaries are emitted in sorted order and
// every posting order is total, so the same store always yields byte-equal
// parts.
func (s *Store) Parts() *Parts {
	p := &Parts{
		Scheme:       s.scheme,
		TreeCount:    s.treeCount,
		Cols:         s.cols,
		ElemsByLeft:  s.elemsByLeft,
		ElemsByRight: s.elemsByRight,
	}
	// Name dictionary straight off the clustered row array: ascending, with
	// the range partition for free.
	p.NameStarts = append(p.NameStarts, 0)
	for i := 0; i < len(s.rows); {
		name := s.rows[i].Name
		j := i + 1
		for j < len(s.rows) && s.rows[j].Name == name {
			j++
		}
		p.Names = append(p.Names, name)
		p.NameStarts = append(p.NameStarts, int32(j))
		i = j
	}
	// Per-name reverse and doc-order postings, concatenated in dictionary
	// order.
	p.RightStarts = append(p.RightStarts, 0)
	p.DocStarts = append(p.DocStarts, 0)
	for i, name := range p.Names {
		p.RightPost = append(p.RightPost, s.rightIdx[name]...)
		p.RightStarts = append(p.RightStarts, int32(len(p.RightPost)))
		if perm := s.docIdx[name]; perm != nil {
			p.DocNames = append(p.DocNames, int32(i))
			p.DocPost = append(p.DocPost, perm...)
			p.DocStarts = append(p.DocStarts, int32(len(p.DocPost)))
		}
	}
	// Value dictionary sorted ascending with its postings.
	p.Values = make([]string, 0, len(s.valueIdx))
	for v := range s.valueIdx {
		p.Values = append(p.Values, v)
	}
	sort.Strings(p.Values)
	p.ValueStarts = append(p.ValueStarts, 0)
	for _, v := range p.Values {
		p.ValuePost = append(p.ValuePost, s.valueIdx[v]...)
		p.ValueStarts = append(p.ValueStarts, int32(len(p.ValuePost)))
	}
	// Statistics remainder.
	st := s.stats
	p.Stats = StatsParts{
		Elements:   st.Elements,
		AttrRows:   st.AttrRows,
		Leaves:     st.Leaves,
		TotalSpan:  st.TotalSpan,
		MaxDepth:   st.MaxDepth,
		AvgDepth:   st.AvgDepth,
		DepthHist:  make([]int64, len(st.DepthHist)),
		NameFanout: make([]float64, len(p.Names)),
		NameSpan:   make([]float64, len(p.Names)),
	}
	for i, n := range st.DepthHist {
		p.Stats.DepthHist[i] = int64(n)
	}
	for i, name := range p.Names {
		if ns, ok := st.Names[name]; ok {
			p.Stats.NameFanout[i] = ns.Fanout
			p.Stats.NameSpan[i] = ns.Span
		}
	}
	return p
}

// corruptf builds the error every Assemble validation failure reports.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("relstore: corrupt parts: "+format, args...)
}

// clusteredLess reports whether row a precedes row b in the clustered
// (tid, left, right, depth, id) order used within a name range.
func clusteredLess(a, b *Row) bool {
	if a.TID != b.TID {
		return a.TID < b.TID
	}
	if a.Left != b.Left {
		return a.Left < b.Left
	}
	if a.Right != b.Right {
		return a.Right < b.Right
	}
	if a.Depth != b.Depth {
		return a.Depth < b.Depth
	}
	return a.ID < b.ID
}

// checkPrefix validates that starts is a monotone prefix array over total
// postings: starts[0] == 0, nondecreasing, final value == total.
func checkPrefix(what string, starts []int32, wantLen int, total int) error {
	if len(starts) != wantLen {
		return corruptf("%s: prefix length %d, want %d", what, len(starts), wantLen)
	}
	if starts[0] != 0 {
		return corruptf("%s: prefix does not start at 0", what)
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] < starts[i-1] {
			return corruptf("%s: prefix decreases at %d", what, i)
		}
	}
	if int(starts[len(starts)-1]) != total {
		return corruptf("%s: prefix covers %d postings, have %d", what, starts[len(starts)-1], total)
	}
	return nil
}

// Assemble reconstructs a Store (and the corpus trees behind its NodeFor
// mapping) from flattened parts, validating every structural invariant the
// engine depends on. No sorting happens: all orders are checked against the
// shipped arrays. Returns an error — never panics — on any inconsistency.
func Assemble(p *Parts) (*Store, *tree.Corpus, error) {
	if p == nil {
		return nil, nil, corruptf("nil parts")
	}
	if p.Scheme != SchemeInterval && p.Scheme != SchemeStartEnd {
		return nil, nil, corruptf("unknown scheme %d", int(p.Scheme))
	}
	if p.TreeCount < 0 {
		return nil, nil, corruptf("negative tree count %d", p.TreeCount)
	}
	n := len(p.Cols.TID)
	for _, c := range [][]int32{p.Cols.Left, p.Cols.Right, p.Cols.Depth, p.Cols.ID, p.Cols.PID} {
		if len(c) != n {
			return nil, nil, corruptf("column lengths differ: %d vs %d", len(c), n)
		}
	}

	// --- Dictionaries and the clustered partition -----------------------
	if len(p.NameStarts) != len(p.Names)+1 {
		return nil, nil, corruptf("name starts length %d for %d names", len(p.NameStarts), len(p.Names))
	}
	if p.NameStarts[0] != 0 || int(p.NameStarts[len(p.Names)]) != n {
		return nil, nil, corruptf("name ranges do not partition %d rows", n)
	}
	for i, name := range p.Names {
		if name == "" {
			return nil, nil, corruptf("empty name in dictionary")
		}
		if i > 0 && p.Names[i-1] >= name {
			return nil, nil, corruptf("name dictionary not strictly ascending at %q", name)
		}
		if p.NameStarts[i] >= p.NameStarts[i+1] {
			return nil, nil, corruptf("name %q has empty or inverted range", name)
		}
	}
	for i := 1; i < len(p.Values); i++ {
		if p.Values[i-1] >= p.Values[i] {
			return nil, nil, corruptf("value dictionary not strictly ascending at %q", p.Values[i])
		}
	}

	// Row counts per kind fall out of the name dictionary ranges, so every
	// map below can be allocated at its final size before the row scan.
	var elemCount, attrCount int
	for i, name := range p.Names {
		span := int(p.NameStarts[i+1] - p.NameStarts[i])
		if name[0] == '@' {
			attrCount += span
		} else {
			elemCount += span
		}
	}

	// --- Rows from columns + dictionaries -------------------------------
	s := &Store{
		scheme:    p.Scheme,
		treeCount: p.TreeCount,
		rows:      make([]Row, n),
		cols: Cols{
			TID:   p.Cols.TID,
			Left:  p.Cols.Left,
			Right: p.Cols.Right,
			Depth: p.Cols.Depth,
			ID:    p.Cols.ID,
			PID:   p.Cols.PID,
		},
		nameIdx:  make(map[string][2]int32, len(p.Names)),
		rightIdx: make(map[string][]int32, len(p.Names)),
		docIdx:   make(map[string][]int32, len(p.DocNames)),
		valueIdx: make(map[string][]int32, len(p.Values)),
		idIdx:    make(map[int64]int32, elemCount),
		attrIdx:  make(map[int64][]int32, attrCount),
		childIdx: make(map[int64][]int32, elemCount),
		nodeOf:   make(map[int64]*tree.Node, elemCount),
	}
	rows := s.rows
	for ni, name := range p.Names {
		lo, hi := p.NameStarts[ni], p.NameStarts[ni+1]
		s.nameIdx[name] = [2]int32{lo, hi}
		for i := lo; i < hi; i++ {
			rows[i] = Row{
				TID: p.Cols.TID[i], Left: p.Cols.Left[i], Right: p.Cols.Right[i],
				Depth: p.Cols.Depth[i], ID: p.Cols.ID[i], PID: p.Cols.PID[i],
				Name: name,
			}
			if i > lo && !clusteredLess(&rows[i-1], &rows[i]) {
				return nil, nil, corruptf("rows for %q not in clustered order at %d", name, i)
			}
		}
	}

	// --- Attribute values ------------------------------------------------
	if err := checkPrefix("value postings", p.ValueStarts, len(p.Values)+1, len(p.ValuePost)); err != nil {
		return nil, nil, err
	}
	if len(p.ValuePost) != attrCount {
		return nil, nil, corruptf("value postings cover %d rows, have %d attribute rows", len(p.ValuePost), attrCount)
	}
	valued := make([]bool, n)
	for vi, v := range p.Values {
		post := p.ValuePost[p.ValueStarts[vi]:p.ValueStarts[vi+1]]
		for k, ri := range post {
			if ri < 0 || int(ri) >= n {
				return nil, nil, corruptf("value %q posting out of range: %d", v, ri)
			}
			r := &rows[ri]
			if !r.IsAttr() {
				return nil, nil, corruptf("value %q posting %d targets an element row", v, ri)
			}
			if valued[ri] {
				return nil, nil, corruptf("row %d carries two values", ri)
			}
			valued[ri] = true
			r.Value = v
			if k > 0 {
				prev := post[k-1]
				pr := &rows[prev]
				if pr.TID > r.TID || (pr.TID == r.TID && pr.ID > r.ID) ||
					(pr.TID == r.TID && pr.ID == r.ID && prev >= ri) {
					return nil, nil, corruptf("value %q postings not in (tid, id, row) order", v)
				}
			}
		}
		s.valueIdx[v] = post
	}

	// --- Per-name reverse-order postings ---------------------------------
	if err := checkPrefix("right postings", p.RightStarts, len(p.Names)+1, len(p.RightPost)); err != nil {
		return nil, nil, err
	}
	for ni, name := range p.Names {
		post := p.RightPost[p.RightStarts[ni]:p.RightStarts[ni+1]]
		lo, hi := p.NameStarts[ni], p.NameStarts[ni+1]
		if name[0] == '@' {
			if len(post) != 0 {
				return nil, nil, corruptf("attribute name %q has right postings", name)
			}
			continue
		}
		if int32(len(post)) != hi-lo {
			return nil, nil, corruptf("right postings for %q cover %d of %d rows", name, len(post), hi-lo)
		}
		for k, ri := range post {
			if ri < lo || ri >= hi {
				return nil, nil, corruptf("right posting for %q out of its range: %d", name, ri)
			}
			if k > 0 {
				a, b := &rows[post[k-1]], &rows[ri]
				if a.TID > b.TID || (a.TID == b.TID && (a.Right > b.Right ||
					(a.Right == b.Right && (a.Left > b.Left ||
						(a.Left == b.Left && a.Depth >= b.Depth))))) {
					return nil, nil, corruptf("right postings for %q not in (tid, right, left, depth) order", name)
				}
			}
		}
		s.rightIdx[name] = post
	}

	// --- Doc-order permutations ------------------------------------------
	if err := checkPrefix("doc postings", p.DocStarts, len(p.DocNames)+1, len(p.DocPost)); err != nil {
		return nil, nil, err
	}
	for di, ni := range p.DocNames {
		if ni < 0 || int(ni) >= len(p.Names) {
			return nil, nil, corruptf("doc permutation names out of range: %d", ni)
		}
		if di > 0 && p.DocNames[di-1] >= ni {
			return nil, nil, corruptf("doc permutation names not ascending")
		}
		name := p.Names[ni]
		if name[0] == '@' {
			return nil, nil, corruptf("doc permutation on attribute name %q", name)
		}
		post := p.DocPost[p.DocStarts[di]:p.DocStarts[di+1]]
		lo, hi := p.NameStarts[ni], p.NameStarts[ni+1]
		if int32(len(post)) != hi-lo {
			return nil, nil, corruptf("doc permutation for %q covers %d of %d rows", name, len(post), hi-lo)
		}
		for k, ri := range post {
			if ri < lo || ri >= hi {
				return nil, nil, corruptf("doc posting for %q out of its range: %d", name, ri)
			}
			if k > 0 {
				a, b := &rows[post[k-1]], &rows[ri]
				if a.TID > b.TID || (a.TID == b.TID && (a.Left > b.Left ||
					(a.Left == b.Left && a.Depth >= b.Depth))) {
					return nil, nil, corruptf("doc permutation for %q not in (tid, left, depth) order", name)
				}
			}
		}
		s.docIdx[name] = post
	}

	// --- Whole-relation document-order permutations ----------------------
	if len(p.ElemsByLeft) != elemCount || len(p.ElemsByRight) != elemCount {
		return nil, nil, corruptf("element permutations cover %d/%d rows, have %d elements",
			len(p.ElemsByLeft), len(p.ElemsByRight), elemCount)
	}
	seen := make([]bool, n)
	for k, ri := range p.ElemsByLeft {
		if ri < 0 || int(ri) >= n || rows[ri].IsAttr() {
			return nil, nil, corruptf("elems-by-left entry %d invalid", ri)
		}
		if seen[ri] {
			return nil, nil, corruptf("elems-by-left repeats row %d", ri)
		}
		seen[ri] = true
		if k > 0 {
			a, b := &rows[p.ElemsByLeft[k-1]], &rows[ri]
			if a.TID > b.TID || (a.TID == b.TID && (a.Left > b.Left ||
				(a.Left == b.Left && a.Depth >= b.Depth))) {
				return nil, nil, corruptf("elems-by-left not in (tid, left, depth) order at %d", k)
			}
		}
	}
	for k, ri := range p.ElemsByRight {
		if ri < 0 || int(ri) >= n || rows[ri].IsAttr() {
			return nil, nil, corruptf("elems-by-right entry %d invalid", ri)
		}
		if k > 0 {
			a, b := &rows[p.ElemsByRight[k-1]], &rows[ri]
			if a.TID > b.TID || (a.TID == b.TID && (a.Right > b.Right ||
				(a.Right == b.Right && (a.Left > b.Left ||
					(a.Left == b.Left && a.Depth >= b.Depth))))) {
				return nil, nil, corruptf("elems-by-right not in (tid, right, left, depth) order at %d", k)
			}
		}
	}
	s.elemsByLeft = p.ElemsByLeft
	s.elemsByRight = p.ElemsByRight

	// --- Hash indexes, trees, and nodeOf: linear passes ------------------
	// Clustered scan: identity and attribute indexes in clustered order,
	// exactly as buildIndexes appends them.
	for i := range rows {
		r := &rows[i]
		key := Key(r.TID, r.ID)
		if r.IsAttr() {
			s.attrIdx[key] = append(s.attrIdx[key], int32(i))
		} else {
			// Unconditional insert; a duplicate shows as the map not growing.
			before := len(s.idIdx)
			s.idIdx[key] = int32(i)
			if len(s.idIdx) == before {
				return nil, nil, corruptf("duplicate element identity (%d, %d)", r.TID, r.ID)
			}
		}
	}
	// Document-order scan: child lists arrive (left, depth)-sorted for free,
	// roots arrive in tid order, parents precede children — which rebuilds
	// the trees in one pass. Nodes come from a single arena allocation.
	corpus := tree.NewCorpus()
	arena := make([]tree.Node, elemCount)
	var curTID int32 = -1
	for k, ri := range p.ElemsByLeft {
		r := &rows[ri]
		node := &arena[k]
		node.Tag = r.Name
		key := Key(r.TID, r.ID)
		before := len(s.nodeOf)
		s.nodeOf[key] = node
		if len(s.nodeOf) == before {
			return nil, nil, corruptf("duplicate node identity (%d, %d)", r.TID, r.ID)
		}
		if r.PID == 0 {
			if r.TID == curTID {
				return nil, nil, corruptf("tree %d has two roots", r.TID)
			}
			if len(s.rootRows) == 0 {
				s.rootRows = make([]int32, 0, p.TreeCount)
			}
			curTID = r.TID
			s.rootRows = append(s.rootRows, ri)
			t := corpus.Add(tree.NewTree(node))
			if int32(t.ID) != r.TID {
				// Snapshot tree ids are normally dense and 1-based; preserve
				// them explicitly if a gap appears.
				t.ID = int(r.TID)
			}
		} else {
			if r.TID != curTID {
				return nil, nil, corruptf("tree %d has no root before node %d", r.TID, r.ID)
			}
			parent := s.nodeOf[Key(r.TID, r.PID)]
			if parent == nil {
				return nil, nil, corruptf("tree %d: node %d has unknown parent %d", r.TID, r.ID, r.PID)
			}
			parent.AddChild(node)
		}
		s.childIdx[Key(r.TID, r.PID)] = append(s.childIdx[Key(r.TID, r.PID)], ri)
	}
	if corpus.Len() > p.TreeCount {
		return nil, nil, corruptf("%d trees reconstructed, tree count says %d", corpus.Len(), p.TreeCount)
	}
	// Attribute rows attach to their element's node; the clustered order is
	// deterministic, and AttrNames() re-sorts on the write side anyway.
	for i := range rows {
		r := &rows[i]
		if !r.IsAttr() {
			continue
		}
		node := s.nodeOf[Key(r.TID, r.ID)]
		if node == nil {
			return nil, nil, corruptf("attribute row %s for unknown element (%d, %d)", r.Name, r.TID, r.ID)
		}
		node.SetAttr(r.Name, r.Value)
	}

	// --- Derived state: identity permutation and packed sort keys --------
	s.rowSeq = make([]int32, n)
	for i := range s.rowSeq {
		s.rowSeq[i] = int32(i)
	}
	s.clusterKeys = make([]int64, n)
	for i := range rows {
		s.clusterKeys[i] = DocKey(rows[i].TID, rows[i].Left)
	}
	s.docKeys = make(map[string][]int64, len(s.docIdx))
	for name, idxs := range s.docIdx {
		keys := make([]int64, len(idxs))
		for i, ri := range idxs {
			keys[i] = s.clusterKeys[ri]
		}
		s.docKeys[name] = keys
	}
	s.elemKeys = make([]int64, len(s.elemsByLeft))
	for i, ri := range s.elemsByLeft {
		s.elemKeys[i] = s.clusterKeys[ri]
	}

	// --- Statistics -------------------------------------------------------
	if err := s.assembleStats(p, elemCount, attrCount); err != nil {
		return nil, nil, err
	}
	return s, corpus, nil
}

// assembleStats reconstructs the Statistics snapshot from the stats parts
// plus the dictionary ranges, cross-checking the redundant counts.
func (s *Store) assembleStats(p *Parts, elemCount, attrCount int) error {
	sp := &p.Stats
	if sp.Elements != elemCount {
		return corruptf("statistics claim %d elements, relation has %d", sp.Elements, elemCount)
	}
	if sp.AttrRows != attrCount {
		return corruptf("statistics claim %d attribute rows, relation has %d", sp.AttrRows, attrCount)
	}
	if sp.Leaves < 0 || sp.Leaves > elemCount {
		return corruptf("statistics leaf count %d out of range", sp.Leaves)
	}
	if sp.MaxDepth < 0 || len(sp.DepthHist) != sp.MaxDepth+1 {
		return corruptf("depth histogram length %d for max depth %d", len(sp.DepthHist), sp.MaxDepth)
	}
	if len(sp.NameFanout) != len(p.Names) || len(sp.NameSpan) != len(p.Names) {
		return corruptf("per-name statistics length %d/%d for %d names",
			len(sp.NameFanout), len(sp.NameSpan), len(p.Names))
	}
	st := &Statistics{
		Trees:     p.TreeCount,
		Elements:  sp.Elements,
		AttrRows:  sp.AttrRows,
		Leaves:    sp.Leaves,
		TotalSpan: sp.TotalSpan,
		MaxDepth:  sp.MaxDepth,
		AvgDepth:  sp.AvgDepth,
		DepthHist: make([]int, len(sp.DepthHist)),
		Names:     make(map[string]NameStat, len(p.Names)),
		AttrNames: make(map[string]int),
		valueCard: make(map[string]int, len(p.Values)),
	}
	var histSum int64
	for i, c := range sp.DepthHist {
		if c < 0 {
			return corruptf("negative depth histogram bucket %d", i)
		}
		st.DepthHist[i] = int(c)
		histSum += c
	}
	if histSum != int64(elemCount) {
		return corruptf("depth histogram sums to %d, have %d elements", histSum, elemCount)
	}
	for i, name := range p.Names {
		count := int(p.NameStarts[i+1] - p.NameStarts[i])
		if name[0] == '@' {
			st.AttrNames[name] = count
			continue
		}
		st.Names[name] = NameStat{Count: count, Fanout: sp.NameFanout[i], Span: sp.NameSpan[i]}
	}
	for i, v := range p.Values {
		st.valueCard[v] = int(p.ValueStarts[i+1] - p.ValueStarts[i])
	}
	st.Values = summarizeValues(st.valueCard)
	s.stats = st
	return nil
}
