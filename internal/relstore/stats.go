package relstore

// Corpus statistics: the relational catalog the cost-based planner reads.
// Everything here is computed once, at index-build time, from the finished
// indexes — a Statistics value is an immutable snapshot that can be shared
// freely across goroutines and across shards. BuildShards merges the
// per-shard snapshots into one corpus-global snapshot and hands that single
// snapshot to every shard, so a plan chosen from the statistics is the same
// plan no matter which shard executes it.

import "sort"

// NameStat summarizes the element rows clustered under one tag name.
type NameStat struct {
	// Count is the number of element rows with this name — the primary
	// join-ordering statistic (the clustered name scan touches exactly
	// Count rows).
	Count int
	// Fanout is the average number of children of elements with this name;
	// 0 for names that only label terminals.
	Fanout float64
	// Span is the average interval width (right - left): the expected
	// number of leaf positions under an element with this name.
	Span float64
}

// ValueStats summarizes the {value, tid, id} index as a posting-list-size
// histogram: how skewed the attribute vocabulary is.
type ValueStats struct {
	// Distinct is the number of distinct attribute values.
	Distinct int
	// Rows is the total number of attribute rows (the sum of all posting
	// lists).
	Rows int
	// Max is the longest posting list.
	Max int
	// Mean is Rows / Distinct.
	Mean float64
	// Hist is the log2 histogram: Hist[b] counts the distinct values whose
	// posting list size lies in [2^b, 2^(b+1)).
	Hist []int
}

// Statistics is the build-time statistics snapshot of a store (or of a whole
// sharded corpus; see BuildShards). It is immutable after construction.
type Statistics struct {
	// Trees, Elements, AttrRows and Leaves count trees, element rows,
	// attribute rows and terminal elements.
	Trees    int
	Elements int
	AttrRows int
	Leaves   int
	// TotalSpan is the summed root span (right - left) over all trees;
	// under the interval scheme it equals the total number of terminals.
	TotalSpan int
	// MaxDepth and AvgDepth describe the depth distribution, with
	// DepthHist[d] counting the elements at depth d (the root has depth 1).
	MaxDepth  int
	AvgDepth  float64
	DepthHist []int
	// Names holds the per-name cardinality statistics.
	Names map[string]NameStat
	// AttrNames maps an attribute name (with its '@' prefix) to the number
	// of rows carrying it.
	AttrNames map[string]int
	// Values summarizes the value index.
	Values ValueStats
	// valueCard is the exact per-value posting-list size. It is kept
	// unexported so the snapshot stays immutable; read it via PostingCount.
	valueCard map[string]int
}

// NameCount returns the element cardinality of a tag name (0 when absent).
func (st *Statistics) NameCount(name string) int { return st.Names[name].Count }

// PostingCount returns the exact posting-list size of an attribute value.
func (st *Statistics) PostingCount(v string) int { return st.valueCard[v] }

// NodesPerSpan is the average number of element rows per unit of leaf span —
// the density that converts a context subtree's span into an expected node
// count. The engine derives the value-index crossover threshold from it.
func (st *Statistics) NodesPerSpan() float64 {
	if st.TotalSpan <= 0 {
		return 2 // the treebank-typical default when the corpus is empty
	}
	return float64(st.Elements) / float64(st.TotalSpan)
}

// AvgFanout is the average number of children of an internal element.
func (st *Statistics) AvgFanout() float64 {
	internal := st.Elements - st.Leaves
	if internal <= 0 {
		return 0
	}
	return float64(st.Elements-st.Trees) / float64(internal)
}

// AvgTreeSpan is the average root span of a tree.
func (st *Statistics) AvgTreeSpan() float64 {
	if st.Trees == 0 {
		return 0
	}
	return float64(st.TotalSpan) / float64(st.Trees)
}

// Statistics returns the store's statistics snapshot. For a shard built by
// BuildShards the snapshot describes the whole corpus, not just the shard,
// so every shard plans against identical statistics.
func (s *Store) Statistics() *Statistics { return s.stats }

// computeStats builds the snapshot from the finished indexes; called at the
// end of buildIndexes so every construction path (Build, ReadSnapshot) gets
// statistics for free.
func (s *Store) computeStats() {
	st := &Statistics{
		Names:     make(map[string]NameStat),
		AttrNames: make(map[string]int),
		valueCard: make(map[string]int, len(s.valueIdx)),
	}
	st.Trees = s.treeCount

	type nameAcc struct {
		count    int
		children int
		span     int64
	}
	accs := make(map[string]*nameAcc, len(s.nameIdx))
	var depthSum int64
	for i := range s.rows {
		r := &s.rows[i]
		if r.IsAttr() {
			st.AttrRows++
			st.AttrNames[r.Name]++
			continue
		}
		st.Elements++
		a := accs[r.Name]
		if a == nil {
			a = &nameAcc{}
			accs[r.Name] = a
		}
		a.count++
		a.span += int64(r.Right - r.Left)
		nkids := len(s.childIdx[Key(r.TID, r.ID)])
		a.children += nkids
		if nkids == 0 {
			st.Leaves++
		}
		d := int(r.Depth)
		if d > st.MaxDepth {
			st.MaxDepth = d
		}
		depthSum += int64(d)
	}
	st.DepthHist = make([]int, st.MaxDepth+1)
	for i := range s.rows {
		if r := &s.rows[i]; !r.IsAttr() {
			st.DepthHist[r.Depth]++
		}
	}
	if st.Elements > 0 {
		st.AvgDepth = float64(depthSum) / float64(st.Elements)
	}
	for _, ri := range s.rootRows {
		r := &s.rows[ri]
		st.TotalSpan += int(r.Right - r.Left)
	}
	for name, a := range accs {
		ns := NameStat{Count: a.count}
		if a.count > 0 {
			ns.Fanout = float64(a.children) / float64(a.count)
			ns.Span = float64(a.span) / float64(a.count)
		}
		st.Names[name] = ns
	}
	for v, postings := range s.valueIdx {
		st.valueCard[v] = len(postings)
	}
	st.Values = summarizeValues(st.valueCard)
	s.stats = st
}

// summarizeValues condenses per-value cardinalities into the histogram form.
func summarizeValues(card map[string]int) ValueStats {
	vs := ValueStats{Distinct: len(card)}
	for _, n := range card {
		vs.Rows += n
		if n > vs.Max {
			vs.Max = n
		}
		b := 0
		for 1<<(b+1) <= n {
			b++
		}
		for len(vs.Hist) <= b {
			vs.Hist = append(vs.Hist, 0)
		}
		vs.Hist[b]++
	}
	if vs.Distinct > 0 {
		vs.Mean = float64(vs.Rows) / float64(vs.Distinct)
	}
	return vs
}

// mergeStatistics combines per-shard snapshots into one corpus-global
// snapshot: counts and histograms add, averages re-weight by their counts.
func mergeStatistics(parts []*Statistics) *Statistics {
	out := &Statistics{
		Names:     make(map[string]NameStat),
		AttrNames: make(map[string]int),
		valueCard: make(map[string]int),
	}
	type nameAcc struct {
		count    int
		children float64
		span     float64
	}
	accs := make(map[string]*nameAcc)
	var depthSum float64
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Trees += p.Trees
		out.Elements += p.Elements
		out.AttrRows += p.AttrRows
		out.Leaves += p.Leaves
		out.TotalSpan += p.TotalSpan
		if p.MaxDepth > out.MaxDepth {
			out.MaxDepth = p.MaxDepth
		}
		depthSum += p.AvgDepth * float64(p.Elements)
		for name, ns := range p.Names {
			a := accs[name]
			if a == nil {
				a = &nameAcc{}
				accs[name] = a
			}
			a.count += ns.Count
			a.children += ns.Fanout * float64(ns.Count)
			a.span += ns.Span * float64(ns.Count)
		}
		for name, n := range p.AttrNames {
			out.AttrNames[name] += n
		}
		for v, n := range p.valueCard {
			out.valueCard[v] += n
		}
	}
	out.DepthHist = make([]int, out.MaxDepth+1)
	for _, p := range parts {
		if p == nil {
			continue
		}
		for d, n := range p.DepthHist {
			out.DepthHist[d] += n
		}
	}
	if out.Elements > 0 {
		out.AvgDepth = depthSum / float64(out.Elements)
	}
	for name, a := range accs {
		ns := NameStat{Count: a.count}
		if a.count > 0 {
			ns.Fanout = a.children / float64(a.count)
			ns.Span = a.span / float64(a.count)
		}
		out.Names[name] = ns
	}
	out.Values = summarizeValues(out.valueCard)
	return out
}

// NamesBySize returns the element tag names in decreasing cardinality order
// (ties alphabetical) — a convenience for reports and tests.
func (st *Statistics) NamesBySize() []string {
	names := make([]string, 0, len(st.Names))
	for n := range st.Names {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := st.Names[names[i]].Count, st.Names[names[j]].Count
		if a != b {
			return a > b
		}
		return names[i] < names[j]
	})
	return names
}
