package relstore

import (
	"sort"
	"testing"

	"lpath/internal/tree"
)

func figureStore(t *testing.T, scheme Scheme) *Store {
	t.Helper()
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	return Build(c, scheme)
}

func TestBuildFigure1(t *testing.T) {
	s := figureStore(t, SchemeInterval)
	// 15 element rows + 9 attribute rows (@lex on each preterminal).
	if got := s.Len(); got != 24 {
		t.Errorf("Len = %d, want 24", got)
	}
	if got := s.ElementCount(); got != 15 {
		t.Errorf("ElementCount = %d, want 15", got)
	}
	if got := s.TreeCount(); got != 1 {
		t.Errorf("TreeCount = %d, want 1", got)
	}
	if s.Scheme() != SchemeInterval {
		t.Errorf("Scheme = %v", s.Scheme())
	}
}

func TestClusteredOrder(t *testing.T) {
	s := figureStore(t, SchemeInterval)
	for i := 1; i < s.Len(); i++ {
		a, b := s.Row(int32(i-1)), s.Row(int32(i))
		if a.Name > b.Name {
			t.Fatalf("rows %d,%d out of name order: %q > %q", i-1, i, a.Name, b.Name)
		}
		if a.Name == b.Name && (a.TID > b.TID || (a.TID == b.TID && a.Left > b.Left)) {
			t.Fatalf("rows %d,%d out of (tid,left) order", i-1, i)
		}
	}
}

func TestNameScan(t *testing.T) {
	s := figureStore(t, SchemeInterval)
	nps := s.Name("NP")
	if len(nps) != 4 {
		t.Fatalf("NP rows = %d, want 4", len(nps))
	}
	for _, r := range nps {
		if r.Name != "NP" || r.IsAttr() {
			t.Errorf("unexpected row %+v", r)
		}
	}
	if got := s.NameCount("NP"); got != 4 {
		t.Errorf("NameCount(NP) = %d", got)
	}
	if got := s.NameCount("ZZZ"); got != 0 {
		t.Errorf("NameCount(ZZZ) = %d", got)
	}
	if got := s.Name("ZZZ"); got != nil {
		t.Errorf("Name(ZZZ) = %v", got)
	}
	lex := s.Name("@lex")
	if len(lex) != 9 {
		t.Fatalf("@lex rows = %d, want 9", len(lex))
	}
	for _, r := range lex {
		if !r.IsAttr() || r.Value == "" {
			t.Errorf("attribute row without value: %+v", r)
		}
	}
	names := s.Names()
	sort.Strings(names)
	want := []string{"Adj", "Det", "N", "NP", "PP", "Prep", "S", "V", "VP"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

// TestFigure5AttributeRows checks that attribute rows copy their element's
// label, as in Figure 5 of the paper.
func TestFigure5AttributeRows(t *testing.T) {
	s := figureStore(t, SchemeInterval)
	for _, r := range s.Name("@lex") {
		ei, ok := s.ElementByID(r.TID, r.ID)
		if !ok {
			t.Fatalf("attribute row %+v has no element", r)
		}
		e := s.Row(ei)
		if e.Left != r.Left || e.Right != r.Right || e.Depth != r.Depth || e.PID != r.PID {
			t.Errorf("attribute label %+v differs from element %+v", r, e)
		}
	}
	// Spot-check the V row: (2, 3, 3) with @lex saw.
	v, ok := s.AttrValue(1, findID(t, s, "V"), "@lex")
	if !ok || v != "saw" {
		t.Errorf("V @lex = %q, %v", v, ok)
	}
}

func findID(t *testing.T, s *Store, name string) int32 {
	t.Helper()
	rows := s.Name(name)
	if len(rows) == 0 {
		t.Fatalf("no rows named %q", name)
	}
	return rows[0].ID
}

func TestValueIndex(t *testing.T) {
	s := figureStore(t, SchemeInterval)
	idxs := s.ByValue("saw")
	if len(idxs) != 1 {
		t.Fatalf("ByValue(saw) = %d rows", len(idxs))
	}
	r := s.Row(idxs[0])
	if r.Name != "@lex" || r.Value != "saw" {
		t.Errorf("row = %+v", r)
	}
	n := s.NodeFor(r)
	if n == nil || n.Tag != "V" {
		t.Errorf("NodeFor = %v", n)
	}
	if got := s.ByValue("absent-word"); got != nil {
		t.Errorf("ByValue(absent) = %v", got)
	}
}

func TestChildAndRootIndexes(t *testing.T) {
	s := figureStore(t, SchemeInterval)
	roots := s.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d", len(roots))
	}
	root := s.Row(roots[0])
	if root.Name != "S" || root.PID != 0 {
		t.Errorf("root row = %+v", root)
	}
	kids := s.Children(root.TID, root.ID)
	if len(kids) != 3 {
		t.Fatalf("root children = %d", len(kids))
	}
	wantTags := []string{"NP", "VP", "N"}
	for i, ki := range kids {
		if got := s.Row(ki).Name; got != wantTags[i] {
			t.Errorf("child %d = %q, want %q", i, got, wantTags[i])
		}
	}
	// Children come back in left-to-right order.
	for i := 1; i < len(kids); i++ {
		if s.Row(kids[i-1]).Left > s.Row(kids[i]).Left {
			t.Error("children out of order")
		}
	}
	// Virtual-root children (pid 0) are the roots.
	vkids := s.Children(root.TID, 0)
	if len(vkids) != 1 || s.Row(vkids[0]).Name != "S" {
		t.Errorf("children of pid 0 = %v", vkids)
	}
}

func TestRightOrderedIndex(t *testing.T) {
	s := figureStore(t, SchemeInterval)
	byRight := s.NameByRight("NP")
	if len(byRight) != 4 {
		t.Fatalf("NameByRight(NP) = %d", len(byRight))
	}
	for i := 1; i < len(byRight); i++ {
		a, b := s.Row(byRight[i-1]), s.Row(byRight[i])
		if a.TID == b.TID && a.Right > b.Right {
			t.Fatal("right index out of order")
		}
	}
	if s.NameByRight("@lex") != nil {
		t.Error("attribute names must not have a right index")
	}
}

func TestMultiTreeStore(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	c.Add(tree.MustParseTree(`(S (NP you) (VP (V saw) (NP (Det a) (N cat))))`))
	s := Build(c, SchemeInterval)
	if s.TreeCount() != 2 {
		t.Fatalf("TreeCount = %d", s.TreeCount())
	}
	if got := len(s.Roots()); got != 2 {
		t.Fatalf("roots = %d", got)
	}
	if s.Row(s.Roots()[0]).TID != 1 || s.Row(s.Roots()[1]).TID != 2 {
		t.Error("roots not ordered by tid")
	}
	// "saw" occurs in both trees.
	if got := len(s.ByValue("saw")); got != 2 {
		t.Errorf("ByValue(saw) = %d, want 2", got)
	}
	// Name scans are (tid, left) ordered across trees.
	nps := s.Name("NP")
	for i := 1; i < len(nps); i++ {
		if nps[i-1].TID > nps[i].TID {
			t.Fatal("name scan out of tid order")
		}
	}
}

func TestStartEndScheme(t *testing.T) {
	s := figureStore(t, SchemeStartEnd)
	if s.Scheme() != SchemeStartEnd {
		t.Fatalf("scheme = %v", s.Scheme())
	}
	// Under start/end labels, containment characterizes descendants without
	// needing depth: parent.start < child.start && child.end < parent.end.
	root := s.Row(s.Roots()[0])
	for _, name := range s.Names() {
		for _, r := range s.Name(name) {
			if r.ID == root.ID {
				continue
			}
			if !(root.Left < r.Left && r.Right < root.Right) {
				t.Errorf("node %s (%d,%d) not contained in root (%d,%d)",
					r.Name, r.Left, r.Right, root.Left, root.Right)
			}
		}
	}
	// Start/end positions are all distinct: 2 per element node.
	seen := map[int32]bool{}
	for _, name := range s.Names() {
		for _, r := range s.Name(name) {
			if seen[r.Left] || seen[r.Right] {
				t.Fatalf("duplicate position in start/end labels: %+v", r)
			}
			seen[r.Left], seen[r.Right] = true, true
		}
	}
	if len(seen) != 2*s.ElementCount() {
		t.Errorf("positions = %d, want %d", len(seen), 2*s.ElementCount())
	}
}

func TestEmptyCorpus(t *testing.T) {
	s := Build(tree.NewCorpus(), SchemeInterval)
	if s.Len() != 0 || s.TreeCount() != 0 {
		t.Errorf("empty corpus store: len=%d trees=%d", s.Len(), s.TreeCount())
	}
	if s.Names() != nil && len(s.Names()) != 0 {
		t.Errorf("Names = %v", s.Names())
	}
}

func TestAttrsLookup(t *testing.T) {
	s := figureStore(t, SchemeInterval)
	vID := findID(t, s, "V")
	attrs := s.Attrs(1, vID)
	if len(attrs) != 1 {
		t.Fatalf("Attrs(V) = %d", len(attrs))
	}
	if s.Row(attrs[0]).Value != "saw" {
		t.Errorf("V attr = %+v", s.Row(attrs[0]))
	}
	if _, ok := s.AttrValue(1, vID, "@pos"); ok {
		t.Error("AttrValue(@pos) should be absent")
	}
	// Phrasal node has no attributes.
	sID := findID(t, s, "S")
	if got := s.Attrs(1, sID); len(got) != 0 {
		t.Errorf("Attrs(S) = %v", got)
	}
}
