package relstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"

	"lpath/internal/tree"
)

// This file implements binary store snapshots: the labeled relation can be
// written once and reloaded without re-parsing or re-labeling the corpus,
// the workflow of the paper's engine (label the treebank, load it into the
// database, then answer queries). A snapshot contains the full relation, so
// loading reconstructs both the indexes and the original trees.
//
// Format (all integers unsigned varints unless noted):
//
//	magic "LPS1" (4 bytes)
//	scheme (1 byte)
//	tree count
//	string table: count, then per string: length, bytes
//	row count, then per row: tid, left, right, depth, id, pid,
//	    name ref (1-based into the string table),
//	    value ref (0 = no value)

const snapshotMagic = "LPS1"

// WriteSnapshot serializes the store.
func (s *Store) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(s.scheme)); err != nil {
		return err
	}
	writeUvarint(bw, uint64(s.treeCount))

	// Build the string table over names and values.
	refs := make(map[string]uint64)
	var table []string
	intern := func(str string) uint64 {
		if str == "" {
			return 0
		}
		if ref, ok := refs[str]; ok {
			return ref
		}
		table = append(table, str)
		refs[str] = uint64(len(table))
		return refs[str]
	}
	nameRefs := make([]uint64, len(s.rows))
	valueRefs := make([]uint64, len(s.rows))
	for i := range s.rows {
		nameRefs[i] = intern(s.rows[i].Name)
		valueRefs[i] = intern(s.rows[i].Value)
	}
	writeUvarint(bw, uint64(len(table)))
	for _, str := range table {
		writeUvarint(bw, uint64(len(str)))
		if _, err := bw.WriteString(str); err != nil {
			return err
		}
	}
	writeUvarint(bw, uint64(len(s.rows)))
	for i := range s.rows {
		r := &s.rows[i]
		writeUvarint(bw, uint64(r.TID))
		writeUvarint(bw, uint64(r.Left))
		writeUvarint(bw, uint64(r.Right))
		writeUvarint(bw, uint64(r.Depth))
		writeUvarint(bw, uint64(r.ID))
		writeUvarint(bw, uint64(r.PID))
		writeUvarint(bw, nameRefs[i])
		writeUvarint(bw, valueRefs[i])
	}
	return bw.Flush()
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, _ = w.Write(buf[:n])
}

// ReadSnapshot deserializes a store, rebuilding its indexes and
// reconstructing the corpus trees from the relation. The returned corpus
// carries the same tree IDs as the one the snapshot was built from.
func ReadSnapshot(r io.Reader) (*Store, *tree.Corpus, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, fmt.Errorf("relstore: reading snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, nil, fmt.Errorf("relstore: bad snapshot magic %q", magic)
	}
	schemeByte, err := br.ReadByte()
	if err != nil {
		return nil, nil, err
	}
	scheme := Scheme(schemeByte)
	if scheme != SchemeInterval && scheme != SchemeStartEnd {
		return nil, nil, fmt.Errorf("relstore: unknown scheme %d in snapshot", schemeByte)
	}
	treeCount, err := readUvarint(br)
	if err != nil {
		return nil, nil, err
	}
	nStrings, err := readUvarint(br)
	if err != nil {
		return nil, nil, err
	}
	const maxStrings = 1 << 28
	if nStrings > maxStrings {
		return nil, nil, fmt.Errorf("relstore: implausible string table size %d", nStrings)
	}
	table := make([]string, nStrings)
	var sb strings.Builder
	for i := range table {
		n, err := readUvarint(br)
		if err != nil {
			return nil, nil, err
		}
		if n > 1<<20 {
			return nil, nil, fmt.Errorf("relstore: implausible string length %d", n)
		}
		sb.Reset()
		if _, err := io.CopyN(&sb, br, int64(n)); err != nil {
			return nil, nil, err
		}
		table[i] = sb.String()
	}
	lookup := func(ref uint64) (string, error) {
		if ref == 0 {
			return "", nil
		}
		if ref > uint64(len(table)) {
			return "", fmt.Errorf("relstore: string ref %d out of range", ref)
		}
		return table[ref-1], nil
	}
	nRows, err := readUvarint(br)
	if err != nil {
		return nil, nil, err
	}
	if nRows > maxStrings*4 {
		return nil, nil, fmt.Errorf("relstore: implausible row count %d", nRows)
	}
	s := &Store{
		scheme:   scheme,
		rows:     make([]Row, 0, nRows),
		nameIdx:  make(map[string][2]int32),
		rightIdx: make(map[string][]int32),
		valueIdx: make(map[string][]int32),
		idIdx:    make(map[int64]int32),
		attrIdx:  make(map[int64][]int32),
		childIdx: make(map[int64][]int32),
		nodeOf:   make(map[int64]*tree.Node),
	}
	s.treeCount = int(treeCount)
	for i := uint64(0); i < nRows; i++ {
		var vals [6]uint64
		for j := range vals {
			v, err := readUvarint(br)
			if err != nil {
				return nil, nil, fmt.Errorf("relstore: truncated snapshot row %d: %w", i, err)
			}
			vals[j] = v
		}
		nameRef, err := readUvarint(br)
		if err != nil {
			return nil, nil, err
		}
		valueRef, err := readUvarint(br)
		if err != nil {
			return nil, nil, err
		}
		name, err := lookup(nameRef)
		if err != nil {
			return nil, nil, err
		}
		value, err := lookup(valueRef)
		if err != nil {
			return nil, nil, err
		}
		if name == "" {
			return nil, nil, fmt.Errorf("relstore: row %d without name", i)
		}
		s.rows = append(s.rows, Row{
			TID: int32(vals[0]), Left: int32(vals[1]), Right: int32(vals[2]),
			Depth: int32(vals[3]), ID: int32(vals[4]), PID: int32(vals[5]),
			Name: name, Value: value,
		})
	}
	corpus, err := reconstruct(s)
	if err != nil {
		return nil, nil, err
	}
	s.buildIndexes()
	return s, corpus, nil
}

func readUvarint(br *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(br)
}

// reconstruct rebuilds the corpus trees from the relation rows and
// populates the store's node map.
func reconstruct(s *Store) (*tree.Corpus, error) {
	type elem struct {
		row  *Row
		node *tree.Node
	}
	perTree := make(map[int32][]elem)
	var attrs []*Row
	for i := range s.rows {
		r := &s.rows[i]
		if r.IsAttr() {
			attrs = append(attrs, r)
			continue
		}
		perTree[r.TID] = append(perTree[r.TID], elem{row: r, node: &tree.Node{Tag: r.Name}})
	}
	tids := make([]int32, 0, len(perTree))
	for tid := range perTree {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })

	c := tree.NewCorpus()
	for _, tid := range tids {
		elems := perTree[tid]
		// Preorder ids: sorting by id recovers document order, so parents
		// precede children and child order is left-to-right.
		sort.Slice(elems, func(i, j int) bool { return elems[i].row.ID < elems[j].row.ID })
		byID := make(map[int32]*tree.Node, len(elems))
		var root *tree.Node
		for _, el := range elems {
			byID[el.row.ID] = el.node
			s.nodeOf[Key(tid, el.row.ID)] = el.node
			if el.row.PID == 0 {
				if root != nil {
					return nil, fmt.Errorf("relstore: tree %d has two roots", tid)
				}
				root = el.node
				continue
			}
			parent, ok := byID[el.row.PID]
			if !ok {
				return nil, fmt.Errorf("relstore: tree %d: node %d has unknown parent %d",
					tid, el.row.ID, el.row.PID)
			}
			parent.AddChild(el.node)
		}
		if root == nil {
			return nil, fmt.Errorf("relstore: tree %d has no root", tid)
		}
		t := c.Add(tree.NewTree(root))
		if int32(t.ID) != tid {
			// Tree ids in snapshots are dense and 1-based by construction;
			// preserve them explicitly if a gap appears.
			t.ID = int(tid)
		}
	}
	for _, ar := range attrs {
		n := s.nodeOf[Key(ar.TID, ar.ID)]
		if n == nil {
			return nil, fmt.Errorf("relstore: attribute row %s for unknown element %d/%d",
				ar.Name, ar.TID, ar.ID)
		}
		n.SetAttr(ar.Name, ar.Value)
	}
	return c, nil
}
