// Package relstore is the embedded relational storage engine beneath the
// LPath query processor. It reproduces the storage organization of Section 5
// of the paper: labeled tree nodes stored in a single relation with schema
//
//	{tid, left, right, depth, id, pid, name, value}
//
// clustered by {name, tid, left, right, depth, id, pid}, with secondary
// indexes {value, tid, id} (attribute values), {tid, id} (node identity) and
// a {tid, pid} index for sibling navigation. Attribute rows carry the same
// (left, right, depth, id, pid) as their element and a name starting with
// '@', exactly as in Figure 5.
//
// The store supports two labeling schemes so the Figure 10 comparison can be
// run on identical machinery: SchemeInterval is the paper's scheme (package
// label); SchemeStartEnd is the conventional XPath labeling of DeHaan et
// al., where left/right are the textual positions of the start and end tags.
package relstore

import (
	"fmt"
	"sort"

	"lpath/internal/label"
	"lpath/internal/tree"
)

// Scheme selects how left/right are assigned.
type Scheme int

const (
	// SchemeInterval is the paper's labeling (Definition 4.1): leaf i spans
	// [i, i+1] and a non-terminal spans its leaf descendants.
	SchemeInterval Scheme = iota
	// SchemeStartEnd is the start/end-position labeling used by XPath
	// engines [DeHaan et al., SIGMOD 2001]: left/right are preorder start
	// and postorder end positions, so containment tests descendants but
	// spatial adjacency is not represented.
	SchemeStartEnd
)

func (s Scheme) String() string {
	switch s {
	case SchemeInterval:
		return "interval"
	case SchemeStartEnd:
		return "start-end"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Row is one tuple of the node relation.
type Row struct {
	TID   int32
	Left  int32
	Right int32
	Depth int32
	ID    int32
	PID   int32
	Name  string
	Value string // attribute value; "" for element rows
}

// IsAttr reports whether the row is an attribute row.
func (r *Row) IsAttr() bool { return len(r.Name) > 0 && r.Name[0] == '@' }

// Key packs (tid, id) into a single map key.
func Key(tid, id int32) int64 { return int64(tid)<<32 | int64(uint32(id)) }

// Cols exposes the hot label fields of the clustered relation as parallel
// column arrays, index-aligned with Row(i): Cols().Left[i] == Row(i).Left and
// so on. The set-at-a-time executor's inner comparison loops (the Table 2
// label predicates) run over these flat arrays instead of chasing Row
// structs, so a sweep over a name posting touches cache lines carrying
// nothing but the field it compares. The arrays are rebuilt with the indexes
// and must never be mutated by callers.
type Cols struct {
	TID, Left, Right, Depth, ID, PID []int32
}

// Store is the node relation plus its indexes.
type Store struct {
	scheme Scheme
	rows   []Row // clustered by (name, tid, left, right, depth, id)
	cols   Cols  // hot fields of rows as parallel columns (same order)

	// rowSeq is the identity permutation 0..len(rows)-1, so a clustered
	// range [lo, hi) can be handed out as the row-index slice rowSeq[lo:hi]
	// without materializing a copy.
	rowSeq []int32

	nameIdx  map[string][2]int32 // name → [lo, hi) range in rows
	rightIdx map[string][]int32  // name → element row indexes sorted by (tid, right)
	docIdx   map[string][]int32  // name → element rows in document order, when ≠ clustered order
	valueIdx map[string][]int32  // value → attribute row indexes sorted by (tid, id)
	idIdx    map[int64]int32     // (tid,id) → element row index
	attrIdx  map[int64][]int32   // (tid,id) → attribute row indexes
	childIdx map[int64][]int32   // (tid,pid) → element row indexes of children in order
	nodeOf   map[int64]*tree.Node

	treeCount int
	rootRows  []int32 // element row index of each tree root, by tid order

	elemsByLeft  []int32 // all element rows sorted by (tid, left, depth)
	elemsByRight []int32 // all element rows sorted by (tid, right, left)

	// Packed (tid, left) document-order sort keys (see DocKey): one per row
	// in clustered order, plus slices parallel to each doc-order
	// permutation, so stream cursors compare one sequential int64 array
	// instead of chasing a permutation through two columns.
	clusterKeys []int64
	docKeys     map[string][]int64
	elemKeys    []int64

	// stats is the build-time statistics snapshot (see stats.go). For
	// shards it is replaced by the merged corpus-global snapshot.
	stats *Statistics

	// bitmaps holds the lazily built bitmap-executor caches (see bitmap.go):
	// the parent-row column and the per-name dense bitsets. Zero value is
	// ready, so snapshot assembly needs no extra wiring.
	bitmaps bitmapCache
}

// Build labels every tree of the corpus under the scheme and constructs the
// relation and all indexes.
func Build(c *tree.Corpus, scheme Scheme) *Store {
	s := &Store{
		scheme:   scheme,
		nameIdx:  make(map[string][2]int32),
		rightIdx: make(map[string][]int32),
		valueIdx: make(map[string][]int32),
		idIdx:    make(map[int64]int32),
		attrIdx:  make(map[int64][]int32),
		childIdx: make(map[int64][]int32),
		nodeOf:   make(map[int64]*tree.Node),
	}
	s.treeCount = c.Len()
	est := c.NodeCount()
	s.rows = make([]Row, 0, est+est/3)
	for _, t := range c.Trees {
		s.appendTree(t)
	}
	s.buildIndexes()
	return s
}

// appendTree labels one tree and appends its element and attribute rows.
func (s *Store) appendTree(t *tree.Tree) {
	tid := int32(t.ID)
	var labeled []label.Labeled
	switch s.scheme {
	case SchemeInterval:
		labeled = label.Assign(t)
	case SchemeStartEnd:
		labeled = assignStartEnd(t)
	}
	for _, ln := range labeled {
		row := Row{
			TID: tid, Left: ln.Label.Left, Right: ln.Label.Right,
			Depth: ln.Label.Depth, ID: ln.Label.ID, PID: ln.Label.PID,
			Name: ln.Node.Tag,
		}
		s.rows = append(s.rows, row)
		s.nodeOf[Key(tid, ln.Label.ID)] = ln.Node
		for _, attr := range ln.Node.AttrNames() {
			v, _ := ln.Node.Attr(attr)
			arow := row
			arow.Name = attr
			arow.Value = v
			s.rows = append(s.rows, arow)
		}
	}
}

// assignStartEnd labels a tree with the start/end scheme: positions are
// assigned by a single traversal where entering and leaving a node each
// consume one position, mimicking textual tag offsets.
func assignStartEnd(t *tree.Tree) []label.Labeled {
	if t == nil || t.Root == nil {
		return nil
	}
	out := make([]label.Labeled, 0, 64)
	var pos, nextID int32
	var rec func(n *tree.Node, depth, pid int32)
	rec = func(n *tree.Node, depth, pid int32) {
		nextID++
		id := nextID
		idx := len(out)
		out = append(out, label.Labeled{Node: n})
		pos++
		start := pos
		for _, c := range n.Children {
			rec(c, depth+1, id)
		}
		pos++
		out[idx].Label = label.Label{Left: start, Right: pos, Depth: depth, ID: id, PID: pid}
	}
	rec(t.Root, 1, 0)
	return out
}

func (s *Store) buildIndexes() {
	rows := s.rows
	sort.Slice(rows, func(i, j int) bool {
		a, b := &rows[i], &rows[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Left != b.Left {
			return a.Left < b.Left
		}
		if a.Right != b.Right {
			return a.Right < b.Right
		}
		if a.Depth != b.Depth {
			return a.Depth < b.Depth
		}
		return a.ID < b.ID
	})
	s.cols = Cols{
		TID:   make([]int32, len(rows)),
		Left:  make([]int32, len(rows)),
		Right: make([]int32, len(rows)),
		Depth: make([]int32, len(rows)),
		ID:    make([]int32, len(rows)),
		PID:   make([]int32, len(rows)),
	}
	s.rowSeq = make([]int32, len(rows))
	for i := range rows {
		r := &rows[i]
		s.cols.TID[i], s.cols.Left[i], s.cols.Right[i] = r.TID, r.Left, r.Right
		s.cols.Depth[i], s.cols.ID[i], s.cols.PID[i] = r.Depth, r.ID, r.PID
		s.rowSeq[i] = int32(i)
	}
	var curName string
	var lo int32
	flush := func(hi int32) {
		if curName != "" || hi > lo {
			s.nameIdx[curName] = [2]int32{lo, hi}
		}
	}
	for i := range rows {
		r := &rows[i]
		if i == 0 || r.Name != curName {
			if i > 0 {
				flush(int32(i))
			}
			curName = r.Name
			lo = int32(i)
		}
		key := Key(r.TID, r.ID)
		if r.IsAttr() {
			s.valueIdx[r.Value] = append(s.valueIdx[r.Value], int32(i))
			s.attrIdx[key] = append(s.attrIdx[key], int32(i))
		} else {
			s.idIdx[key] = int32(i)
			s.childIdx[Key(r.TID, r.PID)] = append(s.childIdx[Key(r.TID, r.PID)], int32(i))
			if r.PID == 0 {
				s.rootRows = append(s.rootRows, int32(i))
			}
		}
	}
	if len(rows) > 0 {
		flush(int32(len(rows)))
	}
	sort.Slice(s.rootRows, func(a, b int) bool {
		return rows[s.rootRows[a]].TID < rows[s.rootRows[b]].TID
	})
	// Per-name (tid, right)-ordered element indexes for the reverse
	// horizontal axes.
	for name, rng := range s.nameIdx {
		if name != "" && name[0] == '@' {
			continue
		}
		idxs := make([]int32, 0, rng[1]-rng[0])
		for i := rng[0]; i < rng[1]; i++ {
			idxs = append(idxs, i)
		}
		sort.Slice(idxs, func(a, b int) bool {
			ra, rb := &rows[idxs[a]], &rows[idxs[b]]
			if ra.TID != rb.TID {
				return ra.TID < rb.TID
			}
			if ra.Right != rb.Right {
				return ra.Right < rb.Right
			}
			if ra.Left != rb.Left {
				return ra.Left < rb.Left
			}
			// Same-name unary chains share (left, right); break the tie by
			// depth so the order is total and snapshot-stable.
			return ra.Depth < rb.Depth
		})
		s.rightIdx[name] = idxs
	}
	// Per-name document-order (tid, left, depth) permutations for the
	// holistic twig executor's step streams. The clustered order breaks
	// same-(tid, left) ties by right ascending — innermost first — so a
	// left-aligned same-name nesting like (NP (NP ...) ...) is stored
	// deepest-first, the opposite of document order. The permutation is
	// kept only for names where the two orders actually differ; NameByDoc
	// returns nil otherwise and callers use the clustered range directly.
	s.docIdx = make(map[string][]int32)
	for name, rng := range s.nameIdx {
		if name != "" && name[0] == '@' {
			continue
		}
		need := false
		for i := rng[0] + 1; i < rng[1]; i++ {
			a, b := &rows[i-1], &rows[i]
			if a.TID == b.TID && a.Left == b.Left && a.Depth > b.Depth {
				need = true
				break
			}
		}
		if !need {
			continue
		}
		idxs := make([]int32, 0, rng[1]-rng[0])
		for i := rng[0]; i < rng[1]; i++ {
			idxs = append(idxs, i)
		}
		sort.Slice(idxs, func(a, b int) bool {
			ra, rb := &rows[idxs[a]], &rows[idxs[b]]
			if ra.TID != rb.TID {
				return ra.TID < rb.TID
			}
			if ra.Left != rb.Left {
				return ra.Left < rb.Left
			}
			return ra.Depth < rb.Depth
		})
		s.docIdx[name] = idxs
	}
	// Value and child index postings sorted for deterministic scans.
	for v, idxs := range s.valueIdx {
		sort.Slice(idxs, func(a, b int) bool {
			ra, rb := &rows[idxs[a]], &rows[idxs[b]]
			if ra.TID != rb.TID {
				return ra.TID < rb.TID
			}
			if ra.ID != rb.ID {
				return ra.ID < rb.ID
			}
			// Two attributes of one element can share a value; order the
			// tie by row index so the posting order is total and
			// snapshot-stable.
			return idxs[a] < idxs[b]
		})
		s.valueIdx[v] = idxs
	}
	for k, idxs := range s.childIdx {
		sort.Slice(idxs, func(a, b int) bool {
			return rows[idxs[a]].Left < rows[idxs[b]].Left ||
				(rows[idxs[a]].Left == rows[idxs[b]].Left && rows[idxs[a]].Depth < rows[idxs[b]].Depth)
		})
		s.childIdx[k] = idxs
	}
	// Whole-relation document-order indexes for wildcard node tests.
	s.elemsByLeft = make([]int32, 0, len(s.idIdx))
	for i := range rows {
		if !rows[i].IsAttr() {
			s.elemsByLeft = append(s.elemsByLeft, int32(i))
		}
	}
	s.elemsByRight = append([]int32(nil), s.elemsByLeft...)
	sort.Slice(s.elemsByLeft, func(a, b int) bool {
		ra, rb := &rows[s.elemsByLeft[a]], &rows[s.elemsByLeft[b]]
		if ra.TID != rb.TID {
			return ra.TID < rb.TID
		}
		if ra.Left != rb.Left {
			return ra.Left < rb.Left
		}
		return ra.Depth < rb.Depth
	})
	sort.Slice(s.elemsByRight, func(a, b int) bool {
		ra, rb := &rows[s.elemsByRight[a]], &rows[s.elemsByRight[b]]
		if ra.TID != rb.TID {
			return ra.TID < rb.TID
		}
		if ra.Right != rb.Right {
			return ra.Right < rb.Right
		}
		if ra.Left != rb.Left {
			return ra.Left < rb.Left
		}
		// Unary chains share (left, right); depth makes the order total and
		// snapshot-stable.
		return ra.Depth < rb.Depth
	})
	// Packed document-order sort keys: the clustered array first, then a
	// parallel slice for every kept permutation (built by indirection into
	// the clustered array, so the packing exists in exactly one place).
	s.clusterKeys = make([]int64, len(rows))
	for i := range rows {
		s.clusterKeys[i] = DocKey(rows[i].TID, rows[i].Left)
	}
	s.docKeys = make(map[string][]int64, len(s.docIdx))
	for name, idxs := range s.docIdx {
		keys := make([]int64, len(idxs))
		for i, ri := range idxs {
			keys[i] = s.clusterKeys[ri]
		}
		s.docKeys[name] = keys
	}
	s.elemKeys = make([]int64, len(s.elemsByLeft))
	for i, ri := range s.elemsByLeft {
		s.elemKeys[i] = s.clusterKeys[ri]
	}
	s.computeStats()
}

// DocKey packs a row's (tid, left) into its int64 document-order sort key —
// the comparison unit of the twig executor's stream cursors.
func DocKey(tid, left int32) int64 { return int64(tid)<<32 | int64(uint32(left)) }

// ClusterKeys returns every row's packed (tid, left) key in clustered order;
// a clustered name range [lo, hi) doubles as its document-order key slice
// ClusterKeys()[lo:hi].
func (s *Store) ClusterKeys() []int64 { return s.clusterKeys }

// NameKeysByDoc returns the packed key slice parallel to NameByDoc — nil
// exactly when NameByDoc is nil.
func (s *Store) NameKeysByDoc(name string) []int64 { return s.docKeys[name] }

// ElementKeys returns the packed key slice parallel to ElementsByLeft.
func (s *Store) ElementKeys() []int64 { return s.elemKeys }

// ElementsByLeft returns every element row index ordered by (tid, left,
// depth) — document order. Used for wildcard node tests.
func (s *Store) ElementsByLeft() []int32 { return s.elemsByLeft }

// ElementsByRight returns every element row index ordered by (tid, right).
func (s *Store) ElementsByRight() []int32 { return s.elemsByRight }

// Scheme returns the labeling scheme the store was built with.
func (s *Store) Scheme() Scheme { return s.scheme }

// Len returns the total number of rows (element + attribute).
func (s *Store) Len() int { return len(s.rows) }

// TreeCount returns the number of trees stored.
func (s *Store) TreeCount() int { return s.treeCount }

// Row returns the i-th row of the clustered relation.
func (s *Store) Row(i int32) *Row { return &s.rows[i] }

// Cols returns the columnar view of the clustered relation's hot label
// fields. The arrays are index-aligned with Row and read-only.
func (s *Store) Cols() *Cols { return &s.cols }

// RowSeq returns the identity permutation over row indexes, so the clustered
// name range [lo, hi) can be used as the row-index slice RowSeq()[lo:hi]
// without copying. Read-only.
func (s *Store) RowSeq() []int32 { return s.rowSeq }

// Name returns the clustered range of rows with the given name (a tag, or an
// attribute name with leading '@') as a subslice view, sorted by
// (tid, left, right, depth, id).
func (s *Store) Name(name string) []Row {
	rng, ok := s.nameIdx[name]
	if !ok {
		return nil
	}
	return s.rows[rng[0]:rng[1]]
}

// NameByDoc returns the element row indexes for the name in document order
// (tid, left, depth), or nil when the clustered range is already
// document-ordered — callers then use RowSeq()[lo:hi] directly. Built only
// for names with a left-aligned same-name nesting, so it is nil for most
// names.
func (s *Store) NameByDoc(name string) []int32 { return s.docIdx[name] }

// NameRange returns the clustered [lo, hi) row-index range for a name.
func (s *Store) NameRange(name string) (lo, hi int32, ok bool) {
	rng, ok := s.nameIdx[name]
	return rng[0], rng[1], ok
}

// Names returns every distinct element tag in the store.
func (s *Store) Names() []string {
	out := make([]string, 0, len(s.nameIdx))
	for n := range s.nameIdx {
		if len(n) > 0 && n[0] == '@' {
			continue
		}
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NameCount returns the number of rows clustered under the name — the
// selectivity statistic the planner orders joins by.
func (s *Store) NameCount(name string) int {
	rng, ok := s.nameIdx[name]
	if !ok {
		return 0
	}
	return int(rng[1] - rng[0])
}

// ElementCount returns the total number of element rows.
func (s *Store) ElementCount() int { return len(s.idIdx) }

// NameByRight returns the element row indexes for the name ordered by
// (tid, right); used by the preceding/immediate-preceding probes.
func (s *Store) NameByRight(name string) []int32 { return s.rightIdx[name] }

// ByValue returns the attribute row indexes whose value equals v, ordered by
// (tid, id).
func (s *Store) ByValue(v string) []int32 { return s.valueIdx[v] }

// ElementByID returns the element row index for (tid, id).
func (s *Store) ElementByID(tid, id int32) (int32, bool) {
	i, ok := s.idIdx[Key(tid, id)]
	return i, ok
}

// Attrs returns the attribute row indexes of element (tid, id).
func (s *Store) Attrs(tid, id int32) []int32 { return s.attrIdx[Key(tid, id)] }

// AttrValue returns the value of the named attribute ('@' prefix included)
// on element (tid, id).
func (s *Store) AttrValue(tid, id int32, name string) (string, bool) {
	for _, i := range s.attrIdx[Key(tid, id)] {
		if s.rows[i].Name == name {
			return s.rows[i].Value, true
		}
	}
	return "", false
}

// AttrValueBare is AttrValue for an attribute name given without the '@'
// prefix; it avoids the per-call string concatenation a "@"+attr lookup
// would cost in the evaluator's hot predicate loops.
func (s *Store) AttrValueBare(tid, id int32, attr string) (string, bool) {
	for _, i := range s.attrIdx[Key(tid, id)] {
		if n := s.rows[i].Name; len(n) > 1 && n[0] == '@' && n[1:] == attr {
			return s.rows[i].Value, true
		}
	}
	return "", false
}

// Children returns the element row indexes of the children of (tid, pid) in
// left-to-right order.
func (s *Store) Children(tid, pid int32) []int32 { return s.childIdx[Key(tid, pid)] }

// Roots returns the element row indexes of the tree roots.
func (s *Store) Roots() []int32 { return s.rootRows }

// NodeFor maps a row back to its tree node (element rows and attribute rows
// both map to the element's node).
func (s *Store) NodeFor(r *Row) *tree.Node { return s.nodeOf[Key(r.TID, r.ID)] }
