package relstore

import (
	"reflect"
	"testing"

	"lpath/internal/tree"
)

// assembleRoundTrip flattens a built store and reassembles it, failing the
// test on any validation error.
func assembleRoundTrip(t *testing.T, c *tree.Corpus, scheme Scheme) (*Store, *Store, *tree.Corpus) {
	t.Helper()
	orig := Build(c, scheme)
	loaded, corpus, err := Assemble(orig.Parts())
	if err != nil {
		t.Fatal(err)
	}
	return orig, loaded, corpus
}

// checkStoreEqual compares every index structure the engine reads, including
// the unexported ones a black-box test cannot reach.
func checkStoreEqual(t *testing.T, orig, loaded *Store) {
	t.Helper()
	if loaded.scheme != orig.scheme || loaded.treeCount != orig.treeCount {
		t.Fatalf("scheme/treeCount = %v/%d, want %v/%d",
			loaded.scheme, loaded.treeCount, orig.scheme, orig.treeCount)
	}
	if !reflect.DeepEqual(loaded.rows, orig.rows) {
		t.Error("rows differ")
	}
	if !reflect.DeepEqual(loaded.cols, orig.cols) {
		t.Error("cols differ")
	}
	if !reflect.DeepEqual(loaded.rowSeq, orig.rowSeq) {
		t.Error("rowSeq differs")
	}
	if !reflect.DeepEqual(loaded.nameIdx, orig.nameIdx) {
		t.Error("nameIdx differs")
	}
	if !reflect.DeepEqual(loaded.rightIdx, orig.rightIdx) {
		t.Error("rightIdx differs")
	}
	if !reflect.DeepEqual(loaded.docIdx, orig.docIdx) {
		t.Errorf("docIdx differs: %v vs %v", loaded.docIdx, orig.docIdx)
	}
	if !reflect.DeepEqual(loaded.valueIdx, orig.valueIdx) {
		t.Error("valueIdx differs")
	}
	if !reflect.DeepEqual(loaded.idIdx, orig.idIdx) {
		t.Error("idIdx differs")
	}
	if !reflect.DeepEqual(loaded.attrIdx, orig.attrIdx) {
		t.Error("attrIdx differs")
	}
	if !reflect.DeepEqual(loaded.childIdx, orig.childIdx) {
		t.Error("childIdx differs")
	}
	if !reflect.DeepEqual(loaded.rootRows, orig.rootRows) {
		t.Error("rootRows differ")
	}
	if !reflect.DeepEqual(loaded.elemsByLeft, orig.elemsByLeft) {
		t.Error("elemsByLeft differs")
	}
	if !reflect.DeepEqual(loaded.elemsByRight, orig.elemsByRight) {
		t.Error("elemsByRight differs")
	}
	if !reflect.DeepEqual(loaded.clusterKeys, orig.clusterKeys) {
		t.Error("clusterKeys differ")
	}
	if !reflect.DeepEqual(loaded.docKeys, orig.docKeys) {
		t.Error("docKeys differ")
	}
	if !reflect.DeepEqual(loaded.elemKeys, orig.elemKeys) {
		t.Error("elemKeys differ")
	}
	if !reflect.DeepEqual(loaded.stats, orig.stats) {
		t.Errorf("stats differ:\n got %+v\nwant %+v", loaded.stats, orig.stats)
	}
}

func TestPartsRoundTrip(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	c.Add(tree.MustParseTree(`(S (NP-SBJ (-NONE- *T*-1)) (VP (VBD saw)))`))
	// A unary same-name chain: rightIdx order is only total with the depth
	// tiebreak, which the snapshot layer depends on.
	c.Add(tree.MustParseTree(`(NP (NP (NP x)))`))
	orig, loaded, corpus := assembleRoundTrip(t, c, SchemeInterval)
	checkStoreEqual(t, orig, loaded)

	// Reconstructed trees match the originals structurally.
	if corpus.Len() != c.Len() {
		t.Fatalf("corpus len = %d", corpus.Len())
	}
	for i := range c.Trees {
		if got, want := corpus.Trees[i].Root.String(), c.Trees[i].Root.String(); got != want {
			t.Errorf("tree %d:\n got %s\nwant %s", i+1, got, want)
		}
		if corpus.Trees[i].ID != c.Trees[i].ID {
			t.Errorf("tree %d id = %d", i, corpus.Trees[i].ID)
		}
	}
	if err := corpus.Validate(); err != nil {
		t.Error(err)
	}
	// NodeFor maps into the reconstructed trees.
	saw := loaded.ByValue("saw")
	if len(saw) != 2 {
		t.Fatalf("ByValue(saw) = %d", len(saw))
	}
	for _, ri := range saw {
		if n := loaded.NodeFor(loaded.Row(ri)); n == nil || n.Word != "saw" {
			t.Errorf("NodeFor = %v", n)
		}
	}
}

func TestPartsStartEndScheme(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	orig, loaded, _ := assembleRoundTrip(t, c, SchemeStartEnd)
	checkStoreEqual(t, orig, loaded)
}

func TestPartsEmpty(t *testing.T) {
	_, loaded, corpus := assembleRoundTrip(t, tree.NewCorpus(), SchemeInterval)
	if loaded.Len() != 0 || corpus.Len() != 0 {
		t.Errorf("empty store: %d rows, %d trees", loaded.Len(), corpus.Len())
	}
}

// cloneParts deep-copies parts so corruption tests can mutate freely (Parts
// aliases store internals).
func cloneParts(p *Parts) *Parts {
	q := *p
	q.Names = append([]string(nil), p.Names...)
	q.NameStarts = append([]int32(nil), p.NameStarts...)
	q.Values = append([]string(nil), p.Values...)
	q.ValueStarts = append([]int32(nil), p.ValueStarts...)
	q.ValuePost = append([]int32(nil), p.ValuePost...)
	q.Cols = Cols{
		TID:   append([]int32(nil), p.Cols.TID...),
		Left:  append([]int32(nil), p.Cols.Left...),
		Right: append([]int32(nil), p.Cols.Right...),
		Depth: append([]int32(nil), p.Cols.Depth...),
		ID:    append([]int32(nil), p.Cols.ID...),
		PID:   append([]int32(nil), p.Cols.PID...),
	}
	q.RightStarts = append([]int32(nil), p.RightStarts...)
	q.RightPost = append([]int32(nil), p.RightPost...)
	q.DocNames = append([]int32(nil), p.DocNames...)
	q.DocStarts = append([]int32(nil), p.DocStarts...)
	q.DocPost = append([]int32(nil), p.DocPost...)
	q.ElemsByLeft = append([]int32(nil), p.ElemsByLeft...)
	q.ElemsByRight = append([]int32(nil), p.ElemsByRight...)
	q.Stats.DepthHist = append([]int64(nil), p.Stats.DepthHist...)
	q.Stats.NameFanout = append([]float64(nil), p.Stats.NameFanout...)
	q.Stats.NameSpan = append([]float64(nil), p.Stats.NameSpan...)
	return &q
}

func TestAssembleRejectsCorruptParts(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	c.Add(tree.MustParseTree(`(S (NP (Det the) (N cat)) (VP (V sat)))`))
	base := Build(c, SchemeInterval).Parts()
	if _, _, err := Assemble(cloneParts(base)); err != nil {
		t.Fatalf("pristine parts rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(p *Parts)
	}{
		{"nil parts is rejected upstream", nil},
		{"bad scheme", func(p *Parts) { p.Scheme = Scheme(9) }},
		{"negative tree count", func(p *Parts) { p.TreeCount = -1 }},
		{"short column", func(p *Parts) { p.Cols.PID = p.Cols.PID[:len(p.Cols.PID)-1] }},
		{"name starts length", func(p *Parts) { p.NameStarts = p.NameStarts[:len(p.NameStarts)-1] }},
		{"names unsorted", func(p *Parts) { p.Names[0], p.Names[1] = p.Names[1], p.Names[0] }},
		{"empty name", func(p *Parts) { p.Names[0] = "" }},
		{"rows misordered", func(p *Parts) {
			// Swap two rows inside the first name range (Figure1 has several
			// NP rows) by swapping their columns.
			i, j := int(p.NameStarts[0]), int(p.NameStarts[0])+1
			for _, col := range [][]int32{p.Cols.TID, p.Cols.Left, p.Cols.Right, p.Cols.Depth, p.Cols.ID, p.Cols.PID} {
				col[i], col[j] = col[j], col[i]
			}
		}},
		{"value posting out of range", func(p *Parts) { p.ValuePost[0] = int32(len(p.Cols.TID)) }},
		{"value posting on element", func(p *Parts) { p.ValuePost[0] = p.ElemsByLeft[0] }},
		{"right posting out of name range", func(p *Parts) { p.RightPost[0] = p.NameStarts[len(p.NameStarts)-1] - 1 }},
		{"right postings misordered", func(p *Parts) {
			// Reverse the largest per-name posting list.
			var lo, hi int32
			for i := range p.Names {
				if p.RightStarts[i+1]-p.RightStarts[i] > hi-lo {
					lo, hi = p.RightStarts[i], p.RightStarts[i+1]
				}
			}
			post := p.RightPost[lo:hi]
			for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
				post[i], post[j] = post[j], post[i]
			}
		}},
		{"elems-by-left repeats", func(p *Parts) { p.ElemsByLeft[1] = p.ElemsByLeft[0] }},
		{"elems-by-right misordered", func(p *Parts) {
			p.ElemsByRight[0], p.ElemsByRight[len(p.ElemsByRight)-1] =
				p.ElemsByRight[len(p.ElemsByRight)-1], p.ElemsByRight[0]
		}},
		{"element count mismatch", func(p *Parts) { p.Stats.Elements++ }},
		{"histogram mismatch", func(p *Parts) { p.Stats.DepthHist[0]++ }},
		{"histogram length", func(p *Parts) { p.Stats.MaxDepth++ }},
		{"fanout length", func(p *Parts) { p.Stats.NameFanout = p.Stats.NameFanout[:1] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.mutate == nil {
				if _, _, err := Assemble(nil); err == nil {
					t.Fatal("Assemble(nil) succeeded")
				}
				return
			}
			p := cloneParts(base)
			tc.mutate(p)
			if _, _, err := Assemble(p); err == nil {
				t.Fatal("corrupt parts accepted")
			}
		})
	}
}
