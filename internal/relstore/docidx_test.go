package relstore

import (
	"testing"

	"lpath/internal/tree"
)

// leftAlignedCorpus builds a tree with left-aligned same-name nesting: every
// NP on the spine starts at the same word position as its NP first child but
// extends further right (a trailing leaf widens it). The clustered order
// breaks the left tie by right ascending — innermost first — while document
// order is outermost first, so this is exactly the shape that forces a
// per-name document-order permutation (NameByDoc) plus its packed key slice.
func leftAlignedCorpus() *tree.Corpus {
	root := &tree.Node{Tag: "NP"}
	cur := root
	for i := 0; i < 4; i++ {
		k := &tree.Node{Tag: "NP"}
		cur.AddChild(k)
		cur.AddChild(&tree.Node{Tag: "N", Word: "man"})
		cur = k
	}
	cur.AddChild(&tree.Node{Tag: "N", Word: "dog"})
	c := tree.NewCorpus()
	c.AddRoot(root)
	single := &tree.Node{Tag: "NP"}
	single.AddChild(&tree.Node{Tag: "N", Word: "dog"})
	c.AddRoot(single)
	return c
}

func docKeyOf(s *Store, ri int32) int64 {
	r := s.Row(ri)
	return DocKey(r.TID, r.Left)
}

// TestNameByDocOrder checks the document-order permutation invariants: it
// exists exactly for names whose clustered order is not document order, it is
// sorted by (tid, left, depth), and it enumerates the same rows as the
// clustered range.
func TestNameByDocOrder(t *testing.T) {
	s := Build(leftAlignedCorpus(), SchemeInterval)
	np := s.NameByDoc("NP")
	if np == nil {
		t.Fatal("NameByDoc(NP) is nil for left-aligned same-name nesting")
	}
	lo, hi, ok := s.NameRange("NP")
	if !ok || int(hi-lo) != len(np) {
		t.Fatalf("NameByDoc(NP) has %d rows, clustered range has %d", len(np), hi-lo)
	}
	seen := map[int32]bool{}
	for i, ri := range np {
		seen[ri] = true
		if i == 0 {
			continue
		}
		a, b := s.Row(np[i-1]), s.Row(ri)
		if a.TID > b.TID || (a.TID == b.TID && (a.Left > b.Left ||
			(a.Left == b.Left && a.Depth >= b.Depth))) {
			t.Fatalf("NameByDoc(NP) not in (tid, left, depth) order at %d", i)
		}
	}
	for i := lo; i < hi; i++ {
		if !seen[s.RowSeq()[i]] {
			t.Fatalf("clustered NP row %d missing from NameByDoc", i)
		}
	}
	// A name whose clustered order is already document order keeps no
	// permutation: the twig executor reads the clustered range directly.
	if s.NameByDoc("N") != nil {
		t.Error("NameByDoc(N) built despite clustered order being document order")
	}
	if s.NameKeysByDoc("N") != nil {
		t.Error("NameKeysByDoc(N) non-nil while NameByDoc(N) is nil")
	}
}

// TestPackedKeySlices checks every packed key slice is parallel to its row
// permutation: ClusterKeys to RowSeq, NameKeysByDoc to NameByDoc, and
// ElementKeys to ElementsByLeft.
func TestPackedKeySlices(t *testing.T) {
	for name, c := range map[string]*tree.Corpus{
		"spine": leftAlignedCorpus(),
		"fig1": func() *tree.Corpus {
			c := tree.NewCorpus()
			c.Add(tree.Figure1())
			return c
		}(),
	} {
		s := Build(c, SchemeInterval)
		if got, want := len(s.ClusterKeys()), s.Len(); got != want {
			t.Fatalf("%s: ClusterKeys len %d, store len %d", name, got, want)
		}
		for i, ri := range s.RowSeq() {
			if s.ClusterKeys()[i] != docKeyOf(s, ri) {
				t.Fatalf("%s: ClusterKeys[%d] does not pack RowSeq[%d]'s (tid, left)", name, i, i)
			}
		}
		for _, tag := range s.Names() {
			idx, keys := s.NameByDoc(tag), s.NameKeysByDoc(tag)
			if (idx == nil) != (keys == nil) || len(idx) != len(keys) {
				t.Fatalf("%s: NameKeysByDoc(%s) not parallel to NameByDoc", name, tag)
			}
			for i, ri := range idx {
				if keys[i] != docKeyOf(s, ri) {
					t.Fatalf("%s: NameKeysByDoc(%s)[%d] mismatched", name, tag, i)
				}
			}
		}
		elems, keys := s.ElementsByLeft(), s.ElementKeys()
		if len(elems) != len(keys) {
			t.Fatalf("%s: ElementKeys not parallel to ElementsByLeft", name)
		}
		for i, ri := range elems {
			if keys[i] != docKeyOf(s, ri) {
				t.Fatalf("%s: ElementKeys[%d] mismatched", name, i)
			}
		}
	}
}

// TestDocKeyOrdering pins the packing: keys compare exactly as (tid, left)
// pairs, including left values with the high bit clear but large magnitude.
func TestDocKeyOrdering(t *testing.T) {
	pairs := [][2]int32{{0, 0}, {0, 1}, {0, 1 << 30}, {1, 0}, {1, 5}, {2, 0}}
	for i := 1; i < len(pairs); i++ {
		a, b := pairs[i-1], pairs[i]
		if DocKey(a[0], a[1]) >= DocKey(b[0], b[1]) {
			t.Errorf("DocKey(%d,%d) >= DocKey(%d,%d)", a[0], a[1], b[0], b[1])
		}
	}
}
