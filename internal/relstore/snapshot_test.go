package relstore

import (
	"bytes"
	"strings"
	"testing"

	"lpath/internal/tree"
)

func snapshotRoundTrip(t *testing.T, c *tree.Corpus, scheme Scheme) (*Store, *Store, *tree.Corpus) {
	t.Helper()
	orig := Build(c, scheme)
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, corpus, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return orig, loaded, corpus
}

func TestSnapshotRoundTrip(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	c.Add(tree.MustParseTree(`(S (NP-SBJ (-NONE- *T*-1)) (VP (VBD saw)))`))
	orig, loaded, corpus := snapshotRoundTrip(t, c, SchemeInterval)

	if loaded.Scheme() != orig.Scheme() {
		t.Errorf("scheme = %v", loaded.Scheme())
	}
	if loaded.Len() != orig.Len() || loaded.TreeCount() != orig.TreeCount() {
		t.Fatalf("size = %d/%d, want %d/%d",
			loaded.Len(), loaded.TreeCount(), orig.Len(), orig.TreeCount())
	}
	for i := int32(0); i < int32(orig.Len()); i++ {
		a, b := orig.Row(i), loaded.Row(i)
		if *a != *b {
			t.Fatalf("row %d: %+v != %+v", i, a, b)
		}
	}
	// Reconstructed trees match the originals structurally.
	if corpus.Len() != c.Len() {
		t.Fatalf("corpus len = %d", corpus.Len())
	}
	for i := range c.Trees {
		if got, want := corpus.Trees[i].Root.String(), c.Trees[i].Root.String(); got != want {
			t.Errorf("tree %d:\n got %s\nwant %s", i+1, got, want)
		}
		if corpus.Trees[i].ID != c.Trees[i].ID {
			t.Errorf("tree %d id = %d", i, corpus.Trees[i].ID)
		}
	}
	if err := corpus.Validate(); err != nil {
		t.Error(err)
	}
	// Indexes were rebuilt: name scans and node mapping work.
	if got := loaded.NameCount("NP"); got != orig.NameCount("NP") {
		t.Errorf("NameCount(NP) = %d", got)
	}
	saw := loaded.ByValue("saw")
	if len(saw) != 2 {
		t.Fatalf("ByValue(saw) = %d", len(saw))
	}
	for _, ri := range saw {
		if n := loaded.NodeFor(loaded.Row(ri)); n == nil || n.Word != "saw" {
			t.Errorf("NodeFor = %v", n)
		}
	}
}

func TestSnapshotStartEndScheme(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	orig, loaded, _ := snapshotRoundTrip(t, c, SchemeStartEnd)
	if loaded.Scheme() != SchemeStartEnd {
		t.Errorf("scheme = %v", loaded.Scheme())
	}
	if loaded.Len() != orig.Len() {
		t.Errorf("len = %d", loaded.Len())
	}
}

func TestSnapshotEmpty(t *testing.T) {
	_, loaded, corpus := snapshotRoundTrip(t, tree.NewCorpus(), SchemeInterval)
	if loaded.Len() != 0 || corpus.Len() != 0 {
		t.Errorf("empty snapshot: %d rows, %d trees", loaded.Len(), corpus.Len())
	}
}

func TestSnapshotErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"bad magic", "XXXX"},
		{"truncated after magic", "LPS1"},
		{"bad scheme", "LPS1\x07"},
		{"truncated body", "LPS1\x00\x01"},
	}
	for _, tc := range cases {
		if _, _, err := ReadSnapshot(strings.NewReader(tc.data)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestSnapshotCorruptRows(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	s := Build(c, SchemeInterval)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-rows.
	data := buf.Bytes()
	if _, _, err := ReadSnapshot(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Error("truncated rows: expected error")
	}
}
