package snapshot

import (
	"path/filepath"
	"testing"

	"lpath/internal/corpus"
	"lpath/internal/relstore"
)

func BenchmarkOpen(b *testing.B) {
	c := corpus.Generate(corpus.Config{Profile: corpus.WSJ, Scale: 0.05, Seed: 42})
	s := relstore.Build(c, relstore.SchemeInterval)
	path := filepath.Join(b.TempDir(), "c.lpx")
	if err := WriteFile(path, s); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}
