package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lpath/internal/corpus"
	"lpath/internal/relstore"
	"lpath/internal/tree"
)

// partsEqual compares flattened parts, treating nil and empty slices as the
// same (the decoder materializes empty arrays where a freshly built store has
// nil ones).
func partsEqual(a, b *relstore.Parts) bool {
	norm := func(p *relstore.Parts) relstore.Parts {
		q := *p
		v := reflect.ValueOf(&q).Elem()
		var fix func(v reflect.Value)
		fix = func(v reflect.Value) {
			for i := 0; i < v.NumField(); i++ {
				f := v.Field(i)
				switch f.Kind() {
				case reflect.Slice:
					if f.IsNil() {
						f.Set(reflect.MakeSlice(f.Type(), 0, 0))
					}
				case reflect.Struct:
					fix(f)
				}
			}
		}
		fix(v)
		return q
	}
	an, bn := norm(a), norm(b)
	return reflect.DeepEqual(an, bn)
}

// buildGen builds a store from a seeded synthetic corpus; the same arguments
// always yield the identical store.
func buildGen(t testing.TB, profile corpus.Profile, scale float64, seed int64) (*relstore.Store, *tree.Corpus) {
	t.Helper()
	c := corpus.Generate(corpus.Config{Profile: profile, Scale: scale, Seed: seed})
	return relstore.Build(c, relstore.SchemeInterval), c
}

// checkRoundTrip encodes the store, decodes the image, and compares the
// flattened parts of both stores — which covers every serialized structure,
// including the posting permutations and statistics.
func checkRoundTrip(t *testing.T, orig *relstore.Store, origTrees *tree.Corpus) []byte {
	t.Helper()
	data, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	loaded, loadedTrees, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !partsEqual(loaded.Parts(), orig.Parts()) {
		t.Error("decoded parts differ from original")
	}
	if loadedTrees.Len() != origTrees.Len() {
		t.Fatalf("decoded %d trees, want %d", loadedTrees.Len(), origTrees.Len())
	}
	for i := range origTrees.Trees {
		if got, want := loadedTrees.Trees[i].Root.String(), origTrees.Trees[i].Root.String(); got != want {
			t.Fatalf("tree %d differs:\n got %s\nwant %s", i+1, got, want)
		}
	}
	// Writing is deterministic: re-encoding either store reproduces the
	// image byte for byte.
	again, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("encoding the same store twice produced different bytes")
	}
	fromLoaded, err := Encode(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, fromLoaded) {
		t.Error("re-encoding the decoded store produced different bytes")
	}
	return data
}

func TestRoundTripGenerated(t *testing.T) {
	cases := []struct {
		name    string
		profile corpus.Profile
		scale   float64
		seed    int64
	}{
		{"wsj-tiny", corpus.WSJ, 0.0005, 1},
		{"wsj-small", corpus.WSJ, 0.002, 42},
		{"wsj-mid", corpus.WSJ, 0.01, 7},
		{"swb-small", corpus.SWB, 0.002, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, trees := buildGen(t, tc.profile, tc.scale, tc.seed)
			checkRoundTrip(t, s, trees)
		})
	}
}

func TestRoundTripHandAssembled(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	c.Add(tree.MustParseTree(`(S (NP-SBJ (-NONE- *T*-1)) (VP (VBD saw)))`))
	c.Add(tree.MustParseTree(`(NP (NP (NP x)))`)) // unary same-name chain
	s := relstore.Build(c, relstore.SchemeInterval)
	data := checkRoundTrip(t, s, c)
	if !Sniff(data) {
		t.Error("Sniff rejects a valid snapshot")
	}
}

func TestRoundTripEmpty(t *testing.T) {
	c := tree.NewCorpus()
	s := relstore.Build(c, relstore.SchemeInterval)
	checkRoundTrip(t, s, c)
}

func TestReadWriter(t *testing.T) {
	s, trees := buildGen(t, corpus.WSJ, 0.001, 5)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	loaded, loadedTrees, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Len() || loadedTrees.Len() != trees.Len() {
		t.Fatalf("loaded %d rows/%d trees, want %d/%d",
			loaded.Len(), loadedTrees.Len(), s.Len(), trees.Len())
	}
}

func TestWriteFileAndOpen(t *testing.T) {
	s, trees := buildGen(t, corpus.WSJ, 0.001, 9)
	path := filepath.Join(t.TempDir(), "corpus.lpx")
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	ok, err := SniffFile(path)
	if err != nil || !ok {
		t.Fatalf("SniffFile = %v, %v", ok, err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Store().Len() != s.Len() || f.Corpus().Len() != trees.Len() {
		t.Fatalf("open: %d rows/%d trees, want %d/%d",
			f.Store().Len(), f.Corpus().Len(), s.Len(), trees.Len())
	}
	if info, err := os.Stat(path); err != nil || f.Size() != info.Size() {
		t.Errorf("Size = %d (stat %v, %v)", f.Size(), info, err)
	}
	if !partsEqual(f.Store().Parts(), s.Parts()) {
		t.Error("opened parts differ")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // double close is safe
		t.Fatal(err)
	}
}

func TestSniffFileShort(t *testing.T) {
	path := filepath.Join(t.TempDir(), "short")
	if err := os.WriteFile(path, []byte("LP"), 0o644); err != nil {
		t.Fatal(err)
	}
	ok, err := SniffFile(path)
	if err != nil || ok {
		t.Fatalf("SniffFile(short) = %v, %v", ok, err)
	}
}

func TestOpenRejectsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.lpx")
	if err := os.WriteFile(path, []byte("LPXSNAP\x00garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !IsFormatError(err) {
		t.Fatalf("Open(corrupt) = %v, want a format error", err)
	}
}

// headerDirEnd returns the byte offset where the header CRC lives, so tests
// can tamper with header fields and re-sign the header to reach the checks
// behind the checksum.
func headerDirEnd(data []byte) int {
	fixed := len(Magic) + 4 + 4 + 8
	count := int(uint32(data[len(Magic)+4]) | uint32(data[len(Magic)+5])<<8 |
		uint32(data[len(Magic)+6])<<16 | uint32(data[len(Magic)+7])<<24)
	return fixed + 24*count
}

func resignHeader(data []byte) {
	dirEnd := headerDirEnd(data)
	crc := checksum(data[:dirEnd])
	data[dirEnd] = byte(crc)
	data[dirEnd+1] = byte(crc >> 8)
	data[dirEnd+2] = byte(crc >> 16)
	data[dirEnd+3] = byte(crc >> 24)
}

func TestDecodeRejectsTamperedImages(t *testing.T) {
	s, _ := buildGen(t, corpus.WSJ, 0.001, 11)
	valid, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(data []byte) []byte
		want   error // nil = any typed format error
	}{
		{"empty", func(d []byte) []byte { return nil }, ErrTruncated},
		{"magic only", func(d []byte) []byte { return d[:len(Magic)] }, ErrTruncated},
		{"bad magic", func(d []byte) []byte { d[0] ^= 0xff; return d }, ErrBadMagic},
		{"wrong version", func(d []byte) []byte {
			d[len(Magic)] = 99
			resignHeader(d)
			return d
		}, ErrBadVersion},
		{"wrong section count", func(d []byte) []byte {
			d[len(Magic)+4] = 3
			// A smaller count moves the CRC slot; the original checksum no
			// longer lines up, whatever bytes happen to sit there.
			return d
		}, nil},
		{"header bit flip", func(d []byte) []byte {
			d[len(Magic)+13] ^= 0x01 // inside the file-size field
			return d
		}, ErrChecksum},
		{"file size lies", func(d []byte) []byte {
			d = append(d, 0, 0, 0, 0, 0, 0, 0, 0) // real file grows, header doesn't
			return d
		}, ErrTruncated},
		{"truncated mid-directory", func(d []byte) []byte { return d[:len(Magic)+20] }, ErrTruncated},
		{"truncated mid-section", func(d []byte) []byte { return d[:len(d)/2] }, nil},
		{"truncated one byte", func(d []byte) []byte { return d[:len(d)-1] }, nil},
		{"section offset corrupted", func(d []byte) []byte {
			// Point the first section's offset far past the end of the file
			// (aligned, so the bounds check is what fires).
			off := len(Magic) + 4 + 4 + 8 + 8
			d[off] = 0xf8
			d[off+1] = 0xff
			d[off+2] = 0xff
			resignHeader(d)
			return d
		}, ErrTruncated},
		{"section misaligned", func(d []byte) []byte {
			off := len(Magic) + 4 + 4 + 8 + 8
			d[off] ^= 0x01
			resignHeader(d)
			return d
		}, ErrCorrupt},
		{"section bit flip", func(d []byte) []byte {
			d[len(d)-9] ^= 0x40 // inside the last section's payload
			return d
		}, ErrChecksum},
		{"section crc forged", func(d []byte) []byte {
			off := len(Magic) + 4 + 4 + 8 + 4 // first section's crc field
			d[off] ^= 0xff
			resignHeader(d)
			return d
		}, ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), valid...))
			_, _, err := Decode(data)
			if err == nil {
				t.Fatal("tampered snapshot decoded successfully")
			}
			if !IsFormatError(err) {
				t.Fatalf("err = %v, want a typed format error", err)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestDecodeRejectsEveryTruncation walks all prefix lengths of a small valid
// snapshot: none may decode, and none may panic.
func TestDecodeRejectsEveryTruncation(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	s := relstore.Build(c, relstore.SchemeInterval)
	valid, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(valid); n++ {
		if _, _, err := Decode(valid[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", n, len(valid))
		} else if !IsFormatError(err) {
			t.Fatalf("prefix %d: err = %v, want a typed format error", n, err)
		}
	}
}

// TestDecodeSurvivesEveryBitFlip flips each byte of a small valid snapshot in
// turn. Any flip either fails with a typed error or — if it lands in header
// padding — still decodes the identical store. Either way: no panic, no
// silently different result.
func TestDecodeSurvivesEveryBitFlip(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	s := relstore.Build(c, relstore.SchemeInterval)
	valid, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Parts()
	for i := 0; i < len(valid); i++ {
		data := append([]byte(nil), valid...)
		data[i] ^= 0x55
		loaded, _, err := Decode(data)
		if err != nil {
			if !IsFormatError(err) {
				t.Fatalf("flip at %d: err = %v, want a typed format error", i, err)
			}
			continue
		}
		if !partsEqual(loaded.Parts(), want) {
			t.Fatalf("flip at %d decoded a different store", i)
		}
	}
}
