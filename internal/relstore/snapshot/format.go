// Package snapshot persists built relstore.Store indexes as versioned binary
// files (conventionally *.lpx), so a server cold-starts by reading and
// validating flat arrays instead of re-parsing Penn text and re-sorting every
// index — the paper's workflow of labeling the treebank once and loading the
// stored relation for querying.
//
// Layout (all integers little-endian, sections 8-byte aligned):
//
//	magic "LPXSNAP\x00" (8 bytes)
//	u32 version (currently 1)
//	u32 section count
//	u64 file size
//	directory: per section {u32 id, u32 crc32c, u64 offset, u64 length}
//	u32 header crc32c (over everything above)
//	...sections...
//
// Section payloads carry the relstore.Parts arrays verbatim (see that type
// for what each array means); every payload is covered by a CRC-32C checksum
// and every structural invariant is revalidated by relstore.Assemble, so a
// truncated, bit-flipped, or logically inconsistent file is rejected with a
// typed error — never a panic, never a silently wrong store.
//
// Loading is zero-copy where the host allows it: on little-endian machines
// the int32/int64/float64 arrays are aliased straight into the file bytes
// (which is what makes mmap-backed loading O(touched pages)), and dictionary
// strings alias the mapped blob. The store therefore keeps the backing
// buffer alive; File.Close documents the mmap lifetime.
package snapshot

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"unsafe"
)

// Magic identifies an lpath snapshot file.
const Magic = "LPXSNAP\x00"

// Version is the current format version. Bump it on any layout change and
// regenerate testdata/smoke.lpx (the golden compatibility test fails
// deliberately otherwise).
const Version = 1

// Section identifiers. Every section must appear exactly once.
const (
	secMeta         = 1  // scheme, tree/row/name/value counts
	secNames        = 2  // name dictionary string table
	secNameStarts   = 3  // clustered partition prefix, i32[names+1]
	secValues       = 4  // value dictionary string table
	secCols         = 5  // six i32 label columns, concatenated
	secRight        = 6  // per-name reverse-order postings
	secDoc          = 7  // per-name doc-order permutations
	secValueIdx     = 8  // per-value attribute-row postings
	secElemsByLeft  = 9  // all elements by (tid, left, depth)
	secElemsByRight = 10 // all elements by (tid, right, left, depth)
	secStats        = 11 // statistics block remainder
)

// sectionOrder is the canonical write order; the reader requires exactly
// this set (any order), each section once.
var sectionOrder = []uint32{
	secMeta, secNames, secNameStarts, secValues, secCols, secRight,
	secDoc, secValueIdx, secElemsByLeft, secElemsByRight, secStats,
}

// Typed load failures. Every error returned by Decode/Read/Open wraps
// exactly one of these sentinels, so callers can classify failures with
// errors.Is.
var (
	// ErrBadMagic: the bytes are not an lpath snapshot at all.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrBadVersion: a snapshot, but from an incompatible format version.
	ErrBadVersion = errors.New("snapshot: unsupported format version")
	// ErrTruncated: the file ends before its declared contents do.
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrChecksum: a section or the header fails its CRC-32C.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrCorrupt: checksums pass but the decoded structure is inconsistent.
	ErrCorrupt = errors.New("snapshot: corrupt")
)

// IsFormatError reports whether err is any snapshot load failure.
func IsFormatError(err error) bool {
	return errors.Is(err, ErrBadMagic) || errors.Is(err, ErrBadVersion) ||
		errors.Is(err, ErrTruncated) || errors.Is(err, ErrChecksum) ||
		errors.Is(err, ErrCorrupt)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func checksum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// hostLittle reports whether the host is little-endian; when true, the
// numeric sections can be aliased instead of decoded.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

const align = 8

func padded(n int) int { return (n + align - 1) &^ (align - 1) }

// --- encoding ----------------------------------------------------------

// enc is a little-endian append-only buffer.
type enc struct{ b []byte }

func (e *enc) u32(v uint32) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func (e *enc) u64(v uint64) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *enc) i32s(v []int32) {
	if hostLittle && len(v) > 0 {
		e.b = append(e.b, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))...)
		return
	}
	for _, x := range v {
		e.u32(uint32(x))
	}
}

func (e *enc) i64s(v []int64) {
	if hostLittle && len(v) > 0 {
		e.b = append(e.b, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))...)
		return
	}
	for _, x := range v {
		e.u64(uint64(x))
	}
}

func (e *enc) f64s(v []float64) {
	if hostLittle && len(v) > 0 {
		e.b = append(e.b, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))...)
		return
	}
	for _, x := range v {
		e.f64(x)
	}
}

// stringTable encodes a string dictionary: u32 count, u32 offsets[count+1]
// (relative to the blob), blob bytes.
func (e *enc) stringTable(strs []string) {
	e.u32(uint32(len(strs)))
	off := uint32(0)
	e.u32(0)
	for _, s := range strs {
		off += uint32(len(s))
		e.u32(off)
	}
	for _, s := range strs {
		e.b = append(e.b, s...)
	}
}

// --- decoding ----------------------------------------------------------

// cursor walks a section payload; every read is bounds-checked and returns
// ErrCorrupt when the payload is shorter than its contents claim.
type cursor struct {
	b   []byte
	off int
	sec string
}

func (c *cursor) fail(what string) error {
	return fmt.Errorf("%w: section %s: short or oversized %s at offset %d", ErrCorrupt, c.sec, what, c.off)
}

func (c *cursor) u32() (uint32, error) {
	if c.off+4 > len(c.b) {
		return 0, c.fail("u32")
	}
	v := uint32(c.b[c.off]) | uint32(c.b[c.off+1])<<8 | uint32(c.b[c.off+2])<<16 | uint32(c.b[c.off+3])<<24
	c.off += 4
	return v, nil
}

func (c *cursor) u64() (uint64, error) {
	lo, err := c.u32()
	if err != nil {
		return 0, err
	}
	hi, err := c.u32()
	if err != nil {
		return 0, err
	}
	return uint64(lo) | uint64(hi)<<32, nil
}

// intCount validates a u64 element count against the bytes remaining in the
// cursor, so no allocation can exceed the section size.
func (c *cursor) intCount(v uint64, width int) (int, error) {
	if v > uint64(len(c.b)-c.off)/uint64(width) {
		return 0, c.fail("count")
	}
	return int(v), nil
}

func (c *cursor) i32s(n int) ([]int32, error) {
	if n < 0 || c.off+4*n > len(c.b) {
		return nil, c.fail("i32 array")
	}
	raw := c.b[c.off : c.off+4*n]
	c.off += 4 * n
	if n == 0 {
		return []int32{}, nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&raw[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&raw[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		j := 4 * i
		out[i] = int32(uint32(raw[j]) | uint32(raw[j+1])<<8 | uint32(raw[j+2])<<16 | uint32(raw[j+3])<<24)
	}
	return out, nil
}

func (c *cursor) i64s(n int) ([]int64, error) {
	if n < 0 || c.off+8*n > len(c.b) {
		return nil, c.fail("i64 array")
	}
	raw := c.b[c.off : c.off+8*n]
	c.off += 8 * n
	if n == 0 {
		return []int64{}, nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&raw[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&raw[0])), n), nil
	}
	out := make([]int64, n)
	for i := range out {
		j := 8 * i
		out[i] = int64(uint64(raw[j]) | uint64(raw[j+1])<<8 | uint64(raw[j+2])<<16 | uint64(raw[j+3])<<24 |
			uint64(raw[j+4])<<32 | uint64(raw[j+5])<<40 | uint64(raw[j+6])<<48 | uint64(raw[j+7])<<56)
	}
	return out, nil
}

func (c *cursor) f64s(n int) ([]float64, error) {
	if n < 0 || c.off+8*n > len(c.b) {
		return nil, c.fail("f64 array")
	}
	raw := c.b[c.off : c.off+8*n]
	c.off += 8 * n
	if n == 0 {
		return []float64{}, nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&raw[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&raw[0])), n), nil
	}
	out := make([]float64, n)
	for i := range out {
		j := 8 * i
		out[i] = math.Float64frombits(uint64(raw[j]) | uint64(raw[j+1])<<8 | uint64(raw[j+2])<<16 |
			uint64(raw[j+3])<<24 | uint64(raw[j+4])<<32 | uint64(raw[j+5])<<40 |
			uint64(raw[j+6])<<48 | uint64(raw[j+7])<<56)
	}
	return out, nil
}

// stringTable decodes a dictionary written by enc.stringTable. The returned
// strings alias the underlying buffer (zero copy).
func (c *cursor) stringTable(wantCount int) ([]string, error) {
	count, err := c.u32()
	if err != nil {
		return nil, err
	}
	if int64(count) != int64(wantCount) {
		return nil, fmt.Errorf("%w: section %s: dictionary has %d entries, directory says %d",
			ErrCorrupt, c.sec, count, wantCount)
	}
	offs, err := c.i32s(wantCount + 1)
	if err != nil {
		return nil, err
	}
	if offs[0] != 0 {
		return nil, c.fail("dictionary offsets")
	}
	blobLen := int(offs[wantCount])
	if blobLen < 0 || c.off+blobLen > len(c.b) {
		return nil, c.fail("dictionary blob")
	}
	blob := c.b[c.off : c.off+blobLen]
	c.off += blobLen
	out := make([]string, wantCount)
	for i := 0; i < wantCount; i++ {
		lo, hi := offs[i], offs[i+1]
		if lo > hi || int(hi) > blobLen {
			return nil, c.fail("dictionary offsets")
		}
		if lo == hi {
			out[i] = ""
			continue
		}
		out[i] = unsafe.String(&blob[lo], int(hi-lo))
	}
	return out, nil
}

// done verifies the cursor consumed its section exactly.
func (c *cursor) done() error {
	if c.off != len(c.b) {
		return fmt.Errorf("%w: section %s: %d trailing bytes", ErrCorrupt, c.sec, len(c.b)-c.off)
	}
	return nil
}
