//go:build !(darwin || dragonfly || freebsd || linux || netbsd || openbsd)

package snapshot

import (
	"io"
	"os"
)

// mapFile reads the file into heap memory on platforms without the unix
// mmap syscall surface; the zero-copy decode path is unchanged.
func mapFile(f *os.File, size int64) ([]byte, func([]byte) error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
