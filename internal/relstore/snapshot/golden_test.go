package snapshot

import (
	"bytes"
	"flag"
	"os"
	"testing"

	"lpath/internal/relstore"
	"lpath/internal/tree"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/smoke.lpx")

const goldenPath = "../../../testdata/smoke.lpx"
const goldenSource = "../../../testdata/smoke.mrg"

// TestGoldenSnapshot pins the on-disk format: building the committed smoke
// corpus and encoding it must reproduce testdata/smoke.lpx byte for byte.
// If this fails because the format changed, bump Version and regenerate
// deliberately with:
//
//	go test ./internal/relstore/snapshot -run TestGoldenSnapshot -update
func TestGoldenSnapshot(t *testing.T) {
	src, err := os.Open(goldenSource)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	c, err := tree.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(relstore.Build(c, relstore.SchemeInterval))
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(data))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("encoding %s produced %d bytes that differ from the committed %s (%d bytes); "+
			"a format change must bump Version and regenerate with -update",
			goldenSource, len(data), goldenPath, len(want))
	}
	// The committed golden loads into a store equivalent to a fresh build.
	loaded, trees, err := Decode(want)
	if err != nil {
		t.Fatal(err)
	}
	fresh := relstore.Build(c, relstore.SchemeInterval)
	if !partsEqual(loaded.Parts(), fresh.Parts()) {
		t.Error("golden snapshot decodes to a different store than a fresh build")
	}
	if trees.Len() != c.Len() {
		t.Errorf("golden snapshot has %d trees, corpus has %d", trees.Len(), c.Len())
	}
}
