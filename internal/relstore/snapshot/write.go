package snapshot

import (
	"fmt"
	"io"
	"os"

	"lpath/internal/relstore"
)

// Write serializes the built store to w in the snapshot format. The store
// must be fully built (relstore.Build or a prior snapshot load); the output
// is deterministic — the same store always produces byte-identical
// snapshots, which the golden compatibility test pins.
func Write(w io.Writer, s *relstore.Store) error {
	data, err := Encode(s)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// WriteFile writes the store snapshot to path via a same-directory temp file
// and rename, so a crashed writer never leaves a half-written snapshot where
// a loader would find it.
func WriteFile(path string, s *relstore.Store) error {
	data, err := Encode(s)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(pathDir(path), ".lpx-tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func pathDir(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i+1]
		}
	}
	return "."
}

// Encode serializes the store into a snapshot byte image.
func Encode(s *relstore.Store) ([]byte, error) {
	return encodeParts(s.Parts())
}

// encodeParts lays the flattened parts out as sections and frames them with
// the checksummed directory.
func encodeParts(p *relstore.Parts) ([]byte, error) {
	if len(p.Names) > 1<<31-2 || len(p.Values) > 1<<31-2 || len(p.Cols.TID) > 1<<31-2 {
		return nil, fmt.Errorf("snapshot: store too large for the 32-bit row index space")
	}
	sections := make([][]byte, 0, len(sectionOrder))
	add := func(body *enc) { sections = append(sections, body.b) }

	meta := &enc{}
	meta.u32(uint32(p.Scheme))
	meta.u32(0) // pad / reserved
	meta.u64(uint64(p.TreeCount))
	meta.u64(uint64(len(p.Cols.TID)))
	meta.u64(uint64(len(p.Names)))
	meta.u64(uint64(len(p.Values)))
	add(meta)

	names := &enc{}
	names.stringTable(p.Names)
	add(names)

	nameStarts := &enc{}
	nameStarts.i32s(p.NameStarts)
	add(nameStarts)

	values := &enc{}
	values.stringTable(p.Values)
	add(values)

	cols := &enc{}
	for _, col := range [][]int32{p.Cols.TID, p.Cols.Left, p.Cols.Right, p.Cols.Depth, p.Cols.ID, p.Cols.PID} {
		cols.i32s(col)
	}
	add(cols)

	right := &enc{}
	right.i32s(p.RightStarts)
	right.i32s(p.RightPost)
	add(right)

	doc := &enc{}
	doc.u64(uint64(len(p.DocNames)))
	doc.i32s(p.DocNames)
	doc.i32s(p.DocStarts)
	doc.i32s(p.DocPost)
	add(doc)

	valueIdx := &enc{}
	valueIdx.i32s(p.ValueStarts)
	valueIdx.i32s(p.ValuePost)
	add(valueIdx)

	byLeft := &enc{}
	byLeft.i32s(p.ElemsByLeft)
	add(byLeft)

	byRight := &enc{}
	byRight.i32s(p.ElemsByRight)
	add(byRight)

	stats := &enc{}
	stats.u64(uint64(p.Stats.Elements))
	stats.u64(uint64(p.Stats.AttrRows))
	stats.u64(uint64(p.Stats.Leaves))
	stats.u64(uint64(p.Stats.TotalSpan))
	stats.u64(uint64(p.Stats.MaxDepth))
	stats.f64(p.Stats.AvgDepth)
	stats.u64(uint64(len(p.Stats.DepthHist)))
	stats.i64s(p.Stats.DepthHist)
	stats.f64s(p.Stats.NameFanout)
	stats.f64s(p.Stats.NameSpan)
	add(stats)

	// Frame: header, checksummed directory, aligned sections.
	headerLen := padded(len(Magic) + 4 + 4 + 8 + 24*len(sections) + 4)
	total := headerLen
	offsets := make([]int, len(sections))
	for i, sec := range sections {
		offsets[i] = total
		total += padded(len(sec))
	}

	h := &enc{b: make([]byte, 0, total)}
	h.b = append(h.b, Magic...)
	h.u32(Version)
	h.u32(uint32(len(sections)))
	h.u64(uint64(total))
	for i, sec := range sections {
		h.u32(sectionOrder[i])
		h.u32(checksum(sec))
		h.u64(uint64(offsets[i]))
		h.u64(uint64(len(sec)))
	}
	h.u32(checksum(h.b))
	for len(h.b) < headerLen {
		h.b = append(h.b, 0)
	}
	for _, sec := range sections {
		h.b = append(h.b, sec...)
		for len(h.b)%align != 0 {
			h.b = append(h.b, 0)
		}
	}
	return h.b, nil
}
