//go:build darwin || dragonfly || freebsd || linux || netbsd || openbsd

package snapshot

import (
	"io"
	"os"
	"syscall"
)

// mapFile maps the file read-only. Empty files get a heap buffer (mmap of
// length 0 is an error on most kernels).
func mapFile(f *os.File, size int64) ([]byte, func([]byte) error, error) {
	if size <= 0 {
		return []byte{}, nil, nil
	}
	if size != int64(int(size)) {
		return nil, nil, syscall.EFBIG
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Fall back to a plain read (e.g. files on filesystems without mmap).
		return readFallback(f, size)
	}
	return data, syscall.Munmap, nil
}

func readFallback(f *os.File, size int64) ([]byte, func([]byte) error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
