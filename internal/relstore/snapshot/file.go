package snapshot

import (
	"fmt"
	"os"

	"lpath/internal/relstore"
	"lpath/internal/tree"
)

// File is a snapshot opened from disk: the decoded store and corpus plus the
// backing buffer they alias. On platforms with mmap the buffer is the mapped
// file, so loading faults in only the pages the validation pass and queries
// actually touch, and the page cache is shared across processes serving the
// same corpus.
type File struct {
	store  *relstore.Store
	corpus *tree.Corpus
	data   []byte
	unmap  func([]byte) error // nil when the buffer is heap memory
}

// Open maps (or, where mmap is unavailable, reads) the snapshot at path and
// decodes it. The returned store and corpus remain valid until Close.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, unmap, err := mapFile(f, info.Size())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	store, corpus, err := Decode(data)
	if err != nil {
		if unmap != nil {
			unmap(data)
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &File{store: store, corpus: corpus, data: data, unmap: unmap}, nil
}

// Store returns the decoded store. It aliases the mapped file and must not
// be used after Close.
func (f *File) Store() *relstore.Store { return f.store }

// Corpus returns the reconstructed corpus trees. Tree structure is heap
// memory, but tag and attribute strings alias the mapped file and must not
// be used after Close.
func (f *File) Corpus() *tree.Corpus { return f.corpus }

// Size returns the snapshot size in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Mapped reports whether the snapshot is mmap-backed (as opposed to read
// into heap memory).
func (f *File) Mapped() bool { return f.unmap != nil }

// Close releases the mapping. The store and corpus must not be touched
// afterwards; closing is safe to skip for process-lifetime snapshots (the
// mapping is reclaimed at exit).
func (f *File) Close() error {
	if f.unmap == nil {
		f.data = nil
		return nil
	}
	unmap := f.unmap
	f.unmap = nil
	data := f.data
	f.data = nil
	return unmap(data)
}

// SniffFile reports whether the file at path starts with the snapshot magic.
func SniffFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	prefix := make([]byte, len(Magic))
	n, err := f.Read(prefix)
	if err != nil || n < len(prefix) {
		return false, nil // too short to be a snapshot; not an I/O failure for the caller
	}
	return Sniff(prefix), nil
}
