package snapshot

import (
	"bytes"
	"fmt"
	"io"
	"math"

	"lpath/internal/relstore"
	"lpath/internal/tree"
)

// Decode validates and loads a snapshot image, returning the ready-to-query
// store and its reconstructed corpus trees.
//
// The store aliases data where the host allows it (numeric columns, posting
// arrays, dictionary strings), so the caller must keep data alive and
// unmodified for the lifetime of the store — which is exactly what makes
// loading a read + validate + slice-cast instead of a rebuild. Use Open for
// the mmap-backed variant with an explicit lifetime.
func Decode(data []byte) (*relstore.Store, *tree.Corpus, error) {
	secs, err := parseDirectory(data)
	if err != nil {
		return nil, nil, err
	}
	p, err := decodeParts(secs)
	if err != nil {
		return nil, nil, err
	}
	s, c, err := relstore.Assemble(p)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return s, c, nil
}

// Read loads a snapshot from r (reading it fully into memory) and decodes
// it.
func Read(r io.Reader) (*relstore.Store, *tree.Corpus, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	return Decode(data)
}

// Sniff reports whether the byte prefix looks like a snapshot file.
func Sniff(prefix []byte) bool {
	return len(prefix) >= len(Magic) && bytes.Equal(prefix[:len(Magic)], []byte(Magic))
}

// section is one directory entry resolved against the file bytes.
type section struct {
	id   uint32
	body []byte
}

// parseDirectory validates magic, version, header checksum, and every
// section frame (bounds, alignment, checksum, exact required set), returning
// the section payloads by id.
func parseDirectory(data []byte) (map[uint32][]byte, error) {
	fixed := len(Magic) + 4 + 4 + 8
	if len(data) < fixed {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the fixed header", ErrTruncated, len(data))
	}
	if !Sniff(data) {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, data[:len(Magic)])
	}
	hc := &cursor{b: data, off: len(Magic), sec: "header"}
	version, _ := hc.u32()
	count, _ := hc.u32()
	fileSize, _ := hc.u64()
	if version != Version {
		return nil, fmt.Errorf("%w: file version %d, this build reads version %d", ErrBadVersion, version, Version)
	}
	if count != uint32(len(sectionOrder)) {
		return nil, fmt.Errorf("%w: %d sections, format version %d has %d", ErrCorrupt, count, Version, len(sectionOrder))
	}
	dirEnd := fixed + 24*int(count)
	if dirEnd+4 > len(data) {
		return nil, fmt.Errorf("%w: directory extends past end of file", ErrTruncated)
	}
	hc.off = dirEnd
	wantCRC, _ := hc.u32()
	if checksum(data[:dirEnd]) != wantCRC {
		return nil, fmt.Errorf("%w: header", ErrChecksum)
	}
	if fileSize != uint64(len(data)) {
		return nil, fmt.Errorf("%w: header says %d bytes, file has %d", ErrTruncated, fileSize, len(data))
	}
	secs := make(map[uint32][]byte, count)
	dc := &cursor{b: data, off: fixed, sec: "directory"}
	for i := 0; i < int(count); i++ {
		id, _ := dc.u32()
		crc, _ := dc.u32()
		off, _ := dc.u64()
		length, _ := dc.u64()
		if off%align != 0 {
			return nil, fmt.Errorf("%w: section %d misaligned at offset %d", ErrCorrupt, id, off)
		}
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: section %d extends past end of file", ErrTruncated, id)
		}
		body := data[off : off+length]
		if checksum(body) != crc {
			return nil, fmt.Errorf("%w: section %d", ErrChecksum, id)
		}
		if _, dup := secs[id]; dup {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrCorrupt, id)
		}
		secs[id] = body
	}
	for _, id := range sectionOrder {
		if _, ok := secs[id]; !ok {
			return nil, fmt.Errorf("%w: missing section %d", ErrCorrupt, id)
		}
	}
	return secs, nil
}

// decodeParts reads every section payload into the flat Parts arrays,
// enforcing that declared counts agree across sections.
func decodeParts(secs map[uint32][]byte) (*relstore.Parts, error) {
	p := &relstore.Parts{}

	mc := &cursor{b: secs[secMeta], sec: "meta"}
	scheme, err := mc.u32()
	if err != nil {
		return nil, err
	}
	if _, err := mc.u32(); err != nil { // reserved
		return nil, err
	}
	treeCount, err := mc.u64()
	if err != nil {
		return nil, err
	}
	rowCount64, err := mc.u64()
	if err != nil {
		return nil, err
	}
	nameCount64, err := mc.u64()
	if err != nil {
		return nil, err
	}
	valueCount64, err := mc.u64()
	if err != nil {
		return nil, err
	}
	if err := mc.done(); err != nil {
		return nil, err
	}
	p.Scheme = relstore.Scheme(scheme)
	// Counts are validated against the section byte lengths they index
	// into, so a forged count cannot force an oversized allocation.
	colsBody := secs[secCols]
	if rowCount64 > uint64(len(colsBody))/4 || rowCount64 >= 1<<31 || treeCount >= 1<<31 {
		return nil, fmt.Errorf("%w: meta counts exceed section sizes", ErrCorrupt)
	}
	rowCount := int(rowCount64)
	p.TreeCount = int(treeCount)

	nc := &cursor{b: secs[secNames], sec: "names"}
	nameCount, err := nc.intCount(nameCount64, 4)
	if err != nil {
		return nil, err
	}
	if p.Names, err = nc.stringTable(nameCount); err != nil {
		return nil, err
	}
	if err := nc.done(); err != nil {
		return nil, err
	}

	nsc := &cursor{b: secs[secNameStarts], sec: "name-starts"}
	if p.NameStarts, err = nsc.i32s(nameCount + 1); err != nil {
		return nil, err
	}
	if err := nsc.done(); err != nil {
		return nil, err
	}

	vc := &cursor{b: secs[secValues], sec: "values"}
	valueCount, err := vc.intCount(valueCount64, 4)
	if err != nil {
		return nil, err
	}
	if p.Values, err = vc.stringTable(valueCount); err != nil {
		return nil, err
	}
	if err := vc.done(); err != nil {
		return nil, err
	}

	cc := &cursor{b: colsBody, sec: "cols"}
	cols := [6][]int32{}
	for i := range cols {
		if cols[i], err = cc.i32s(rowCount); err != nil {
			return nil, err
		}
	}
	if err := cc.done(); err != nil {
		return nil, err
	}
	p.Cols = relstore.Cols{
		TID: cols[0], Left: cols[1], Right: cols[2],
		Depth: cols[3], ID: cols[4], PID: cols[5],
	}

	rc := &cursor{b: secs[secRight], sec: "right-postings"}
	if p.RightStarts, err = rc.i32s(nameCount + 1); err != nil {
		return nil, err
	}
	if p.RightPost, err = rc.i32s((len(rc.b) - rc.off) / 4); err != nil {
		return nil, err
	}
	if err := rc.done(); err != nil {
		return nil, err
	}

	dc := &cursor{b: secs[secDoc], sec: "doc-permutations"}
	docCount64, err := dc.u64()
	if err != nil {
		return nil, err
	}
	docCount, err := dc.intCount(docCount64, 4)
	if err != nil {
		return nil, err
	}
	if p.DocNames, err = dc.i32s(docCount); err != nil {
		return nil, err
	}
	if p.DocStarts, err = dc.i32s(docCount + 1); err != nil {
		return nil, err
	}
	if p.DocPost, err = dc.i32s((len(dc.b) - dc.off) / 4); err != nil {
		return nil, err
	}
	if err := dc.done(); err != nil {
		return nil, err
	}

	vic := &cursor{b: secs[secValueIdx], sec: "value-postings"}
	if p.ValueStarts, err = vic.i32s(valueCount + 1); err != nil {
		return nil, err
	}
	if p.ValuePost, err = vic.i32s((len(vic.b) - vic.off) / 4); err != nil {
		return nil, err
	}
	if err := vic.done(); err != nil {
		return nil, err
	}

	blc := &cursor{b: secs[secElemsByLeft], sec: "elems-by-left"}
	if p.ElemsByLeft, err = blc.i32s(len(blc.b) / 4); err != nil {
		return nil, err
	}
	if err := blc.done(); err != nil {
		return nil, err
	}
	brc := &cursor{b: secs[secElemsByRight], sec: "elems-by-right"}
	if p.ElemsByRight, err = brc.i32s(len(brc.b) / 4); err != nil {
		return nil, err
	}
	if err := brc.done(); err != nil {
		return nil, err
	}

	sc := &cursor{b: secs[secStats], sec: "stats"}
	var ints [5]uint64
	for i := range ints {
		if ints[i], err = sc.u64(); err != nil {
			return nil, err
		}
	}
	avgBits, err := sc.u64()
	if err != nil {
		return nil, err
	}
	histLen64, err := sc.u64()
	if err != nil {
		return nil, err
	}
	histLen, err := sc.intCount(histLen64, 8)
	if err != nil {
		return nil, err
	}
	hist, err := sc.i64s(histLen)
	if err != nil {
		return nil, err
	}
	fanout, err := sc.f64s(nameCount)
	if err != nil {
		return nil, err
	}
	span, err := sc.f64s(nameCount)
	if err != nil {
		return nil, err
	}
	if err := sc.done(); err != nil {
		return nil, err
	}
	const maxInt = int(^uint(0) >> 1)
	for _, v := range ints {
		if v > uint64(maxInt) {
			return nil, fmt.Errorf("%w: statistics count overflows", ErrCorrupt)
		}
	}
	p.Stats = relstore.StatsParts{
		Elements:   int(ints[0]),
		AttrRows:   int(ints[1]),
		Leaves:     int(ints[2]),
		TotalSpan:  int(ints[3]),
		MaxDepth:   int(ints[4]),
		AvgDepth:   math.Float64frombits(avgBits),
		DepthHist:  hist,
		NameFanout: fanout,
		NameSpan:   span,
	}
	return p, nil
}
