package snapshot

import (
	"testing"

	"lpath/internal/relstore"
	"lpath/internal/tree"
)

// FuzzSnapshotLoad feeds arbitrary bytes to the full load path. The contract
// under fuzz: a load either succeeds on a structurally valid image or fails
// with a typed format error — it never panics and never silently accepts a
// broken file. Successful loads must survive a re-encode/decode cycle.
func FuzzSnapshotLoad(f *testing.F) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	c.Add(tree.MustParseTree(`(S (NP-SBJ (-NONE- *T*-1)) (VP (VBD saw)))`))
	valid, err := Encode(relstore.Build(c, relstore.SchemeInterval))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x80
	f.Add(flipped)
	empty, err := Encode(relstore.Build(tree.NewCorpus(), relstore.SchemeInterval))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte(Magic))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, corpus, err := Decode(data)
		if err != nil {
			if !IsFormatError(err) {
				t.Fatalf("untyped load error: %v", err)
			}
			return
		}
		// Whatever decoded must be internally consistent enough to encode
		// again and reload identically.
		if s == nil || corpus == nil {
			t.Fatal("nil store/corpus without error")
		}
		again, err := Encode(s)
		if err != nil {
			t.Fatalf("re-encode of an accepted store failed: %v", err)
		}
		s2, _, err := Decode(again)
		if err != nil {
			t.Fatalf("re-decode of an accepted store failed: %v", err)
		}
		if s2.Len() != s.Len() || s2.TreeCount() != s.TreeCount() {
			t.Fatalf("re-decode changed shape: %d/%d vs %d/%d",
				s2.Len(), s2.TreeCount(), s.Len(), s.TreeCount())
		}
	})
}
