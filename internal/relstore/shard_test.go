package relstore

import (
	"math/rand"
	"testing"

	"lpath/internal/tree"
)

func randomShardCorpus(seed int64, n int) *tree.Corpus {
	rng := rand.New(rand.NewSource(seed))
	tags := []string{"S", "NP", "VP", "N", "V"}
	words := []string{"a", "b", "c", "d"}
	var build func(depth int) *tree.Node
	build = func(depth int) *tree.Node {
		nd := &tree.Node{Tag: tags[rng.Intn(len(tags))]}
		if depth >= 5 || rng.Intn(3) == 0 {
			nd.Word = words[rng.Intn(len(words))]
			return nd
		}
		for i, kids := 0, 1+rng.Intn(3); i < kids; i++ {
			nd.AddChild(build(depth + 1))
		}
		return nd
	}
	c := tree.NewCorpus()
	for i := 0; i < n; i++ {
		c.AddRoot(build(1))
	}
	return c
}

func TestSplitByTIDCoverage(t *testing.T) {
	for _, n := range []int{1, 2, 5, 23} {
		c := randomShardCorpus(int64(n), n)
		for _, k := range []int{1, 2, 3, 5, 17, 100} {
			parts := SplitByTID(c, k)
			wantParts := k
			if wantParts > n {
				wantParts = n
			}
			if len(parts) != wantParts {
				t.Fatalf("n=%d k=%d: %d parts, want %d", n, k, len(parts), wantParts)
			}
			// The chunks must cover every tree exactly once, in tid order,
			// preserving identifiers.
			nextID := 1
			for _, p := range parts {
				if p.Len() == 0 {
					t.Fatalf("n=%d k=%d: empty shard", n, k)
				}
				for _, tr := range p.Trees {
					if tr.ID != nextID {
						t.Fatalf("n=%d k=%d: tree ID %d, want %d", n, k, tr.ID, nextID)
					}
					nextID++
				}
			}
			if nextID != n+1 {
				t.Fatalf("n=%d k=%d: covered %d trees, want %d", n, k, nextID-1, n)
			}
		}
	}
}

func TestSplitByTIDEdgeCases(t *testing.T) {
	if parts := SplitByTID(tree.NewCorpus(), 4); parts != nil {
		t.Errorf("empty corpus: %d parts, want none", len(parts))
	}
	c := randomShardCorpus(7, 6)
	if parts := SplitByTID(c, 0); len(parts) != 1 || parts[0].Len() != 6 {
		t.Errorf("k=0 should yield a single full shard")
	}
	if parts := SplitByTID(c, -3); len(parts) != 1 {
		t.Errorf("negative k should yield a single full shard")
	}
}

func TestSplitByTIDBalance(t *testing.T) {
	// Uniform trees must split into shards within one tree of each other.
	c := tree.NewCorpus()
	for i := 0; i < 40; i++ {
		c.Add(tree.MustParseTree(`(S (NP a) (VP (V b) (NP c)))`))
	}
	for _, k := range []int{2, 4, 5, 8} {
		min, max := c.Len(), 0
		for _, p := range SplitByTID(c, k) {
			if p.Len() < min {
				min = p.Len()
			}
			if p.Len() > max {
				max = p.Len()
			}
		}
		if max-min > 1 {
			t.Errorf("k=%d: shard sizes range %d..%d on uniform trees", k, min, max)
		}
	}
}

func TestBuildShardsPartitionsStore(t *testing.T) {
	c := randomShardCorpus(3, 11)
	whole := Build(c, SchemeInterval)
	for _, k := range []int{1, 2, 4, 11} {
		shards := BuildShards(c, SchemeInterval, k)
		rows, elems, trees := 0, 0, 0
		seenTID := map[int32]int{}
		for si, s := range shards {
			if s.Scheme() != SchemeInterval {
				t.Fatalf("k=%d: shard scheme %v", k, s.Scheme())
			}
			rows += s.Len()
			elems += s.ElementCount()
			trees += s.TreeCount()
			for i := 0; i < s.Len(); i++ {
				tid := s.Row(int32(i)).TID
				if prev, ok := seenTID[tid]; ok && prev != si {
					t.Fatalf("k=%d: tid %d appears in shards %d and %d", k, tid, prev, si)
				}
				seenTID[tid] = si
			}
		}
		if rows != whole.Len() || elems != whole.ElementCount() || trees != whole.TreeCount() {
			t.Errorf("k=%d: shards total rows/elems/trees = %d/%d/%d, want %d/%d/%d",
				k, rows, elems, trees, whole.Len(), whole.ElementCount(), whole.TreeCount())
		}
	}
}
