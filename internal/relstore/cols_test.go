package relstore

import (
	"testing"

	"lpath/internal/tree"
)

// checkColumnar asserts the columnar invariants the set-at-a-time executor
// depends on: the Cols arrays are index-aligned mirrors of the Row fields,
// and RowSeq is the identity permutation over the clustered relation.
func checkColumnar(t *testing.T, s *Store) {
	t.Helper()
	cols := s.Cols()
	n := s.Len()
	for _, c := range [][]int32{cols.TID, cols.Left, cols.Right, cols.Depth, cols.ID, cols.PID} {
		if len(c) != n {
			t.Fatalf("column length %d, want Len() = %d", len(c), n)
		}
	}
	seq := s.RowSeq()
	if len(seq) != n {
		t.Fatalf("RowSeq length %d, want %d", len(seq), n)
	}
	for i := 0; i < n; i++ {
		ri := int32(i)
		r := s.Row(ri)
		if cols.TID[i] != r.TID || cols.Left[i] != r.Left || cols.Right[i] != r.Right ||
			cols.Depth[i] != r.Depth || cols.ID[i] != r.ID || cols.PID[i] != r.PID {
			t.Fatalf("row %d: columns {tid:%d l:%d r:%d d:%d id:%d pid:%d} != row %+v",
				i, cols.TID[i], cols.Left[i], cols.Right[i], cols.Depth[i], cols.ID[i], cols.PID[i], *r)
		}
		if seq[i] != ri {
			t.Fatalf("RowSeq[%d] = %d, want identity", i, seq[i])
		}
	}
}

func TestColumnarMirrorsRows(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	c.Add(tree.MustParseTree(`(S (NP (Det the) (N cat)) (VP (V sat)))`))
	checkColumnar(t, Build(c, SchemeInterval))
	checkColumnar(t, Build(c, SchemeStartEnd))
	checkColumnar(t, Build(tree.NewCorpus(), SchemeInterval)) // empty store
}

func TestColumnarAcrossShards(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	c.Add(tree.MustParseTree(`(S (NP a) (VP (V b) (NP c)))`))
	c.Add(tree.MustParseTree(`(S (NP d))`))
	for _, sh := range BuildShards(c, SchemeInterval, 2) {
		checkColumnar(t, sh)
	}
}

func TestColumnarSurvivesSnapshot(t *testing.T) {
	c := tree.NewCorpus()
	c.Add(tree.Figure1())
	s := Build(c, SchemeInterval)
	loaded, _, err := Assemble(s.Parts())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Len() {
		t.Fatalf("assembled Len = %d, want %d", loaded.Len(), s.Len())
	}
	checkColumnar(t, loaded)
}
