package server

import "testing"

func rk(corpus string, gen uint64, query string) resultKey {
	return resultKey{Corpus: corpus, Gen: gen, Kind: "count", Query: query}
}

func TestResultCacheLRU(t *testing.T) {
	c := NewResultCache(2)
	c.Put(rk("a", 1, "q1"), 1)
	c.Put(rk("a", 1, "q2"), 2)

	if v, ok := c.Get(rk("a", 1, "q1")); !ok || v.(int) != 1 {
		t.Fatalf("q1: got %v, %v", v, ok)
	}
	// q1 is now most recent; inserting q3 evicts q2.
	c.Put(rk("a", 1, "q3"), 3)
	if _, ok := c.Get(rk("a", 1, "q2")); ok {
		t.Fatal("q2 survived eviction")
	}
	if _, ok := c.Get(rk("a", 1, "q1")); !ok {
		t.Fatal("q1 evicted despite recent use")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Len != 2 {
		t.Fatalf("stats %+v, want 1 eviction, len 2", st)
	}
}

func TestResultCacheGenerationKeying(t *testing.T) {
	c := NewResultCache(8)
	c.Put(rk("a", 1, "q"), "old")
	if _, ok := c.Get(rk("a", 2, "q")); ok {
		t.Fatal("new generation hit the old generation's entry")
	}
	c.Put(rk("a", 2, "q"), "new")
	if v, _ := c.Get(rk("a", 2, "q")); v != "new" {
		t.Fatalf("gen 2: got %v", v)
	}
	if v, _ := c.Get(rk("a", 1, "q")); v != "old" {
		t.Fatalf("gen 1: got %v", v)
	}
}

func TestResultCacheInvalidateCorpus(t *testing.T) {
	c := NewResultCache(8)
	c.Put(rk("a", 1, "q1"), 1)
	c.Put(rk("a", 2, "q2"), 2)
	c.Put(rk("b", 1, "q1"), 3)
	c.InvalidateCorpus("a")
	if st := c.Stats(); st.Len != 1 {
		t.Fatalf("len %d after invalidate, want 1", st.Len)
	}
	if _, ok := c.Get(rk("b", 1, "q1")); !ok {
		t.Fatal("unrelated corpus entry dropped")
	}
	if _, ok := c.Get(rk("a", 1, "q1")); ok {
		t.Fatal("invalidated entry still served")
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := NewResultCache(0)
	c.Put(rk("a", 1, "q"), 1)
	if _, ok := c.Get(rk("a", 1, "q")); ok {
		t.Fatal("capacity-0 cache stored an entry")
	}
	c = NewResultCache(-1)
	c.Put(rk("a", 1, "q"), 1)
	if _, ok := c.Get(rk("a", 1, "q")); ok {
		t.Fatal("negative-capacity cache stored an entry")
	}
}

func TestResultCacheUpdateExisting(t *testing.T) {
	c := NewResultCache(2)
	key := rk("a", 1, "q")
	c.Put(key, 1)
	c.Put(key, 2)
	if v, _ := c.Get(key); v.(int) != 2 {
		t.Fatalf("got %v, want updated value 2", v)
	}
	if st := c.Stats(); st.Len != 1 {
		t.Fatalf("len %d, want 1 (update, not insert)", st.Len)
	}
}

// queryResultOfSize builds a *queryResult whose estimated entry size is
// dominated by one text payload of n bytes.
func queryResultOfSize(n int) *queryResult {
	return &queryResult{
		matches:  []matchJSON{{Tree: 1, Tag: "NP", Text: string(make([]byte, n))}},
		complete: true, count: 1, countKnown: true,
	}
}

func TestResultCacheBytesBound(t *testing.T) {
	// Capacity far above the byte bound: only bytes force evictions.
	c := NewResultCacheBytes(1000, 8<<10)
	for i := 0; i < 16; i++ {
		c.Put(rk("a", 1, string(rune('a'+i))), queryResultOfSize(1<<10))
	}
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("resident bytes %d exceed bound %d", st.Bytes, st.MaxBytes)
	}
	if st.BytesEvictions == 0 {
		t.Fatal("no byte-bound evictions despite 2x over-subscription")
	}
	if st.Evictions < st.BytesEvictions {
		t.Fatalf("evictions %d < bytes evictions %d", st.Evictions, st.BytesEvictions)
	}
	if st.Len == 0 || st.Len >= 16 {
		t.Fatalf("len %d, want a nonempty strict subset of the inserts", st.Len)
	}
	// Recently used entries survive; the eldest are the ones evicted.
	if _, ok := c.Get(rk("a", 1, string(rune('a'+15)))); !ok {
		t.Fatal("most recent entry evicted")
	}
}

func TestResultCacheOversizeEntryNotStored(t *testing.T) {
	c := NewResultCacheBytes(8, 1<<10)
	c.Put(rk("a", 1, "small"), queryResultOfSize(64))
	c.Put(rk("a", 1, "huge"), queryResultOfSize(1<<20))
	if _, ok := c.Get(rk("a", 1, "huge")); ok {
		t.Fatal("entry larger than the byte bound was cached")
	}
	if _, ok := c.Get(rk("a", 1, "small")); !ok {
		t.Fatal("oversize insert disturbed the resident working set")
	}
}

func TestResultCacheBytesAccounting(t *testing.T) {
	c := NewResultCacheBytes(8, 0) // unbounded: pure accounting
	key := rk("a", 1, "q")
	c.Put(key, queryResultOfSize(100))
	before := c.Stats().Bytes
	if before <= 0 {
		t.Fatalf("bytes %d after insert", before)
	}
	// Replacing a value re-accounts its size instead of double-counting.
	c.Put(key, queryResultOfSize(5000))
	mid := c.Stats().Bytes
	if mid <= before || mid > before+6000 {
		t.Fatalf("bytes %d after replace (was %d)", mid, before)
	}
	c.InvalidateCorpus("a")
	if got := c.Stats().Bytes; got != 0 {
		t.Fatalf("bytes %d after invalidating every entry, want 0", got)
	}
}
