package server

import "testing"

func rk(corpus string, gen uint64, query string) resultKey {
	return resultKey{Corpus: corpus, Gen: gen, Kind: "count", Query: query}
}

func TestResultCacheLRU(t *testing.T) {
	c := NewResultCache(2)
	c.Put(rk("a", 1, "q1"), 1)
	c.Put(rk("a", 1, "q2"), 2)

	if v, ok := c.Get(rk("a", 1, "q1")); !ok || v.(int) != 1 {
		t.Fatalf("q1: got %v, %v", v, ok)
	}
	// q1 is now most recent; inserting q3 evicts q2.
	c.Put(rk("a", 1, "q3"), 3)
	if _, ok := c.Get(rk("a", 1, "q2")); ok {
		t.Fatal("q2 survived eviction")
	}
	if _, ok := c.Get(rk("a", 1, "q1")); !ok {
		t.Fatal("q1 evicted despite recent use")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Len != 2 {
		t.Fatalf("stats %+v, want 1 eviction, len 2", st)
	}
}

func TestResultCacheGenerationKeying(t *testing.T) {
	c := NewResultCache(8)
	c.Put(rk("a", 1, "q"), "old")
	if _, ok := c.Get(rk("a", 2, "q")); ok {
		t.Fatal("new generation hit the old generation's entry")
	}
	c.Put(rk("a", 2, "q"), "new")
	if v, _ := c.Get(rk("a", 2, "q")); v != "new" {
		t.Fatalf("gen 2: got %v", v)
	}
	if v, _ := c.Get(rk("a", 1, "q")); v != "old" {
		t.Fatalf("gen 1: got %v", v)
	}
}

func TestResultCacheInvalidateCorpus(t *testing.T) {
	c := NewResultCache(8)
	c.Put(rk("a", 1, "q1"), 1)
	c.Put(rk("a", 2, "q2"), 2)
	c.Put(rk("b", 1, "q1"), 3)
	c.InvalidateCorpus("a")
	if st := c.Stats(); st.Len != 1 {
		t.Fatalf("len %d after invalidate, want 1", st.Len)
	}
	if _, ok := c.Get(rk("b", 1, "q1")); !ok {
		t.Fatal("unrelated corpus entry dropped")
	}
	if _, ok := c.Get(rk("a", 1, "q1")); ok {
		t.Fatal("invalidated entry still served")
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := NewResultCache(0)
	c.Put(rk("a", 1, "q"), 1)
	if _, ok := c.Get(rk("a", 1, "q")); ok {
		t.Fatal("capacity-0 cache stored an entry")
	}
	c = NewResultCache(-1)
	c.Put(rk("a", 1, "q"), 1)
	if _, ok := c.Get(rk("a", 1, "q")); ok {
		t.Fatal("negative-capacity cache stored an entry")
	}
}

func TestResultCacheUpdateExisting(t *testing.T) {
	c := NewResultCache(2)
	key := rk("a", 1, "q")
	c.Put(key, 1)
	c.Put(key, 2)
	if v, _ := c.Get(key); v.(int) != 2 {
		t.Fatalf("got %v, want updated value 2", v)
	}
	if st := c.Stats(); st.Len != 1 {
		t.Fatalf("len %d, want 1 (update, not insert)", st.Len)
	}
}
