package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(2, 0, 0)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.InFlight != 2 || st.Admitted != 2 {
		t.Fatalf("stats %+v, want 2 in flight, 2 admitted", st)
	}
	// Both tokens held, no queue: the third request sheds immediately.
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	r1()
	r1() // double release is a no-op, not a token leak
	if st := a.Stats(); st.InFlight != 1 {
		t.Fatalf("in flight %d after release, want 1", st.InFlight)
	}
	r3, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("token not reusable after release: %v", err)
	}
	r2()
	r3()
	if st := a.Stats(); st.InFlight != 0 || st.Shed != 1 {
		t.Fatalf("final stats %+v, want 0 in flight, 1 shed", st)
	}
}

func TestAdmissionQueueWait(t *testing.T) {
	a := NewAdmission(1, 1, 2*time.Second)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// A queued waiter gets the token as soon as the holder releases it.
	got := make(chan error, 1)
	go func() {
		r, err := a.Acquire(context.Background())
		if err == nil {
			r()
		}
		got <- err
	}()
	for a.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	release()
	if err := <-got; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}

	// A queued waiter whose context dies gets the context error, not a shed.
	release, err = a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		_, err := a.Acquire(ctx)
		got <- err
	}()
	for a.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: got %v, want context.Canceled", err)
	}
	release()
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := NewAdmission(1, 1, 5*time.Millisecond)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded after queue wait", err)
	}
	if st := a.Stats(); st.Timeouts != 1 || st.Shed != 1 {
		t.Fatalf("stats %+v, want 1 timeout, 1 shed", st)
	}
}

// TestOverloadSheds429WhileInFlightCompletes is the admission-control
// contract end to end: with the single evaluation slot occupied, concurrent
// requests are shed fast with 429 (and a Retry-After header), and once the
// slot frees, queries evaluate normally — the overload never corrupts or
// blocks the in-flight work.
func TestOverloadSheds429WhileInFlightCompletes(t *testing.T) {
	s, c := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: -1, CacheSize: -1})
	h := s.Handler()

	want, err := c.CountText(`//NP`)
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the single evaluation slot, deterministically standing in for a
	// long-running in-flight query.
	release, err := s.admission.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const burst = 8
	codes := make([]int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := postJSON(t, h, "/v1/count", queryRequest{Query: `//NP`})
			codes[i] = w.Code
			if w.Code == http.StatusTooManyRequests && w.Header().Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusTooManyRequests {
			t.Fatalf("burst request %d: status %d, want 429 while slot occupied", i, code)
		}
	}

	// The in-flight query completes and frees the slot; service resumes.
	release()
	w := postJSON(t, h, "/v1/count", queryRequest{Query: `//NP`})
	if w.Code != http.StatusOK {
		t.Fatalf("post-overload request: status %d: %s", w.Code, w.Body.String())
	}
	if resp := decodeResponse(t, w); resp.Count != want {
		t.Fatalf("post-overload count %d, want %d", resp.Count, want)
	}
	if st := s.admission.Stats(); st.Shed < burst {
		t.Fatalf("shed %d, want >= %d", st.Shed, burst)
	}
}

// TestConcurrentBurstMixesAdmissionAndShedding drives a real concurrent
// burst with one slot and no queue: every request terminates promptly with
// 200 or 429, and at least one is actually served.
func TestConcurrentBurstMixesAdmissionAndShedding(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: -1, CacheSize: -1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const burst = 12
	codes := make(chan int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/count", "application/json",
				jsonBody(t, queryRequest{Query: `//S[//NP/ADJP]`}))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)

	ok, shed := 0, 0
	for code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	if ok == 0 {
		t.Fatal("no burst request was served")
	}
	if ok+shed != burst {
		t.Fatalf("accounted %d of %d requests", ok+shed, burst)
	}
	t.Logf("burst: %d served, %d shed", ok, shed)
}

func jsonBody(t testing.TB, v any) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}
