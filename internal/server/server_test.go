package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lpath"
)

// testCorpus builds a small deterministic corpus with a plan cache, the way
// lpathd registers them.
func testCorpus(t testing.TB) *lpath.Corpus {
	t.Helper()
	c, err := lpath.GenerateCorpus("wsj", 0.005, 11, lpath.WithPlanCache(32))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newTestServer(t testing.TB, cfg Config) (*Server, *lpath.Corpus) {
	t.Helper()
	c := testCorpus(t)
	reg := NewRegistry()
	if _, err := reg.Set("wsj", c); err != nil {
		t.Fatal(err)
	}
	return New(reg, cfg), c
}

func postJSON(t testing.TB, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeResponse(t testing.TB, w *httptest.ResponseRecorder) queryResponse {
	t.Helper()
	var resp queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return resp
}

func TestQueryCountExplainEndpoints(t *testing.T) {
	s, c := newTestServer(t, Config{})
	h := s.Handler()

	for _, query := range []string{`//NP`, `//VP/VB-->NN`, `//S[//NP/ADJP]`} {
		want, err := c.CountText(query)
		if err != nil {
			t.Fatal(err)
		}

		// Without "count": true a truncated response does not learn the
		// total — the limited evaluation stops early and reports -1.
		w := postJSON(t, h, "/v1/query", queryRequest{Query: query, Limit: 1})
		if resp := decodeResponse(t, w); want > 1 && (resp.Count != -1 || !resp.Truncated) {
			t.Errorf("query %s limit=1: count=%d truncated=%v, want -1/true", query, resp.Count, resp.Truncated)
		}

		w = postJSON(t, h, "/v1/query", queryRequest{Query: query, Limit: 5, Count: true})
		if w.Code != http.StatusOK {
			t.Fatalf("query %s: status %d: %s", query, w.Code, w.Body.String())
		}
		resp := decodeResponse(t, w)
		if resp.Count != want {
			t.Errorf("query %s: count %d, want %d", query, resp.Count, want)
		}
		if want > 5 && (!resp.Truncated || len(resp.Matches) != 5) {
			t.Errorf("query %s: %d matches truncated=%v, want 5 truncated", query, len(resp.Matches), resp.Truncated)
		}
		if resp.Corpus != "wsj" {
			t.Errorf("query %s: corpus %q", query, resp.Corpus)
		}

		w = postJSON(t, h, "/v1/count", queryRequest{Query: query})
		if w.Code != http.StatusOK {
			t.Fatalf("count %s: status %d: %s", query, w.Code, w.Body.String())
		}
		if resp := decodeResponse(t, w); resp.Count != want || resp.Matches != nil {
			t.Errorf("count %s: count=%d matches=%d, want count=%d matches=0", query, resp.Count, len(resp.Matches), want)
		}

		w = postJSON(t, h, "/v1/explain", queryRequest{Query: query})
		if w.Code != http.StatusOK {
			t.Fatalf("explain %s: status %d: %s", query, w.Code, w.Body.String())
		}
		if resp := decodeResponse(t, w); !strings.Contains(resp.Explain, "plan:") {
			t.Errorf("explain %s: report %q lacks a plan section", query, resp.Explain)
		}
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"compile error", "/v1/query", queryRequest{Query: `//VP[`}, http.StatusBadRequest},
		{"missing query", "/v1/query", queryRequest{}, http.StatusBadRequest},
		{"unknown corpus", "/v1/count", queryRequest{Corpus: "nope", Query: `//NP`}, http.StatusNotFound},
		{"bad json", "/v1/query", "not json", http.StatusBadRequest},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			w := postJSON(t, h, tt.path, tt.body)
			if w.Code != tt.want {
				t.Fatalf("status %d, want %d: %s", w.Code, tt.want, w.Body.String())
			}
			var e errorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Errorf("error body %q not an error JSON", w.Body.String())
			}
		})
	}

	t.Run("GET rejected", func(t *testing.T) {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/query", nil))
		if w.Code != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", w.Code)
		}
	})
}

func TestDeadlineYields504(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based deadline test")
	}
	// Force the per-binding probe executor: its nested existential probes
	// make this query run far past the deadline, with a cancellation
	// checkpoint on every binding.
	c, err := lpath.GenerateCorpus("wsj", 0.02, 7, lpath.WithPlanCache(32), lpath.WithoutPlanner())
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if _, err := reg.Set("big", c); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{CacheSize: -1})
	h := s.Handler()

	w := postJSON(t, h, "/v1/count", queryRequest{Query: `//_[//_[//_]]`, TimeoutMS: 1})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", w.Code, w.Body.String())
	}
}

func TestResultCacheHitAndInvalidation(t *testing.T) {
	s, c := newTestServer(t, Config{})
	h := s.Handler()
	const query = `//NP/ADJP`

	w := postJSON(t, h, "/v1/count", queryRequest{Query: query})
	if resp := decodeResponse(t, w); resp.Cached {
		t.Fatal("first request reported cached")
	}
	w = postJSON(t, h, "/v1/count", queryRequest{Query: query})
	if resp := decodeResponse(t, w); !resp.Cached {
		t.Fatal("repeat request not served from cache")
	}
	if st := s.cache.Stats(); st.Hits != 1 {
		t.Fatalf("cache stats %+v, want 1 hit", st)
	}

	// /v1/query entries are keyed per query, not per limit: one stored
	// prefix answers every limit it covers, so a smaller limit is a hit.
	w = postJSON(t, h, "/v1/query", queryRequest{Query: query, Limit: 2})
	if resp := decodeResponse(t, w); resp.Cached {
		t.Fatal("limit=2 select unexpectedly cached")
	}
	w = postJSON(t, h, "/v1/query", queryRequest{Query: query, Limit: 1})
	if resp := decodeResponse(t, w); !resp.Cached {
		t.Fatal("limit=1 select not served from the limit=2 entry")
	}

	// Swapping the corpus bumps the generation: the old entries must not
	// serve the new corpus.
	if _, err := s.registry.Set("wsj", c); err != nil {
		t.Fatal(err)
	}
	s.InvalidateCorpus("wsj")
	w = postJSON(t, h, "/v1/count", queryRequest{Query: query})
	if resp := decodeResponse(t, w); resp.Cached {
		t.Fatal("post-swap request served a stale generation")
	}
}

func TestHealthz(t *testing.T) {
	empty := New(NewRegistry(), Config{})
	w := httptest.NewRecorder()
	empty.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("empty registry: status %d, want 503", w.Code)
	}

	s, _ := newTestServer(t, Config{})
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("loaded registry: status %d", w.Code)
	}
	var body struct {
		Status  string `json:"status"`
		Corpora []struct {
			Name      string `json:"name"`
			Sentences int    `json:"sentences"`
		} `json:"corpora"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || len(body.Corpora) != 1 || body.Corpora[0].Name != "wsj" || body.Corpora[0].Sentences == 0 {
		t.Fatalf("healthz body %s", w.Body.String())
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	postJSON(t, h, "/v1/query", queryRequest{Query: `//NP`})
	postJSON(t, h, "/v1/query", queryRequest{Query: `//NP`}) // cache hit
	postJSON(t, h, "/v1/count", queryRequest{Query: `//VP[`})

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		`lpathd_requests_total{endpoint="query",code="200"} 2`,
		`lpathd_requests_total{endpoint="count",code="400"} 1`,
		`lpathd_request_duration_seconds_count{endpoint="query"} 2`,
		`lpathd_result_cache{event="hit"} 1`,
		`lpathd_admission_total{outcome="admitted"}`,
		`lpathd_plan_cache{corpus="wsj",event="miss"}`,
		`lpathd_plan_steps_total{strategy=`,
		`lpathd_query_results_total{limit_hit=`,
		`lpathd_in_flight{endpoint="query"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output lacks %q", want)
		}
	}
}

// TestQueryLimitPushdown pins the /v1/query early-termination contract on a
// corpus with a known match count: truncatedness comes from probing one match
// past the limit, the exact total appears only when requested (or free), and
// one cached prefix serves every limit it covers — growing as bigger limits
// re-evaluate, never duplicating per limit.
func TestQueryLimitPushdown(t *testing.T) {
	c := lpath.NewCorpus()
	for i := 0; i < 6; i++ {
		if err := c.AddSentence(`(S (NP (N a)) (VP (V b)))`); err != nil {
			t.Fatal(err)
		}
	}
	reg := NewRegistry()
	if _, err := reg.Set("tiny", c); err != nil {
		t.Fatal(err)
	}
	h := New(reg, Config{}).Handler()
	const query = `//NP` // exactly 6 matches, one per tree

	step := func(limit int, count bool) queryResponse {
		t.Helper()
		w := postJSON(t, h, "/v1/query", queryRequest{Query: query, Limit: limit, Count: count})
		if w.Code != http.StatusOK {
			t.Fatalf("limit=%d count=%v: status %d: %s", limit, count, w.Code, w.Body.String())
		}
		return decodeResponse(t, w)
	}
	check := func(got queryResponse, matches, total int, truncated, cached bool) {
		t.Helper()
		if len(got.Matches) != matches || got.Count != total || got.Truncated != truncated || got.Cached != cached {
			t.Fatalf("got %d matches count=%d truncated=%v cached=%v, want %d/%d/%v/%v",
				len(got.Matches), got.Count, got.Truncated, got.Cached, matches, total, truncated, cached)
		}
	}

	check(step(2, false), 2, -1, true, false)  // probes 3 of 6: truncated, total unknown
	check(step(1, false), 1, -1, true, true)   // prefix-served from the limit=2 entry
	check(step(3, false), 3, -1, true, false)  // entry holds only 3: must re-evaluate
	check(step(2, true), 2, 6, true, false)    // count requested: exact total computed
	check(step(1, true), 1, 6, true, true)     // count now cached alongside the prefix
	check(step(10, false), 6, 6, false, false) // past the end: complete, count free
	check(step(2, true), 2, 6, true, true)     // complete entry answers everything
}

// TestHTTPRoundTrip exercises the handler over a real listener, the way
// lpathd serves it.
func TestHTTPRoundTrip(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/count", "application/json",
		strings.NewReader(fmt.Sprintf(`{"query":%q}`, `//NP`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
