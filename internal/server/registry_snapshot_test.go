package server

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"lpath"
)

// TestRegistryLoadFileSnapshot registers the same corpus twice — once from
// Penn text, once from a binary store snapshot — and cross-checks that the
// serving path returns identical counts from both, for every paper query.
func TestRegistryLoadFileSnapshot(t *testing.T) {
	built, err := lpath.GenerateCorpus("wsj", 0.003, 17)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "wsj.lpx")
	if err := built.SaveStoreFile(snapPath); err != nil {
		t.Fatal(err)
	}
	textPath := filepath.Join(dir, "wsj.mrg")
	f, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := built.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	snapEntry, format, err := reg.LoadFile("snap", snapPath, lpath.WithPlanCache(32))
	if err != nil {
		t.Fatal(err)
	}
	if format != "snapshot" {
		t.Fatalf("snapshot file detected as %q", format)
	}
	textEntry, format, err := reg.LoadFile("text", textPath, lpath.WithPlanCache(32))
	if err != nil {
		t.Fatal(err)
	}
	if format != "text" {
		t.Fatalf("text file detected as %q", format)
	}
	if snapEntry.Stats.Sentences != textEntry.Stats.Sentences ||
		snapEntry.Stats.TreeNodes != textEntry.Stats.TreeNodes {
		t.Fatalf("stats differ: snapshot %+v, text %+v", snapEntry.Stats, textEntry.Stats)
	}

	h := New(reg, Config{}).Handler()
	for _, eq := range lpath.EvalQueries() {
		var counts [2]int
		for i, corpus := range []string{"snap", "text"} {
			w := postJSON(t, h, "/v1/count", queryRequest{Corpus: corpus, Query: eq.Text})
			if w.Code != http.StatusOK {
				t.Fatalf("Q%d on %s: status %d: %s", eq.ID, corpus, w.Code, w.Body.String())
			}
			counts[i] = decodeResponse(t, w).Count
		}
		if counts[0] != counts[1] {
			t.Errorf("Q%d: snapshot corpus counts %d, text corpus %d", eq.ID, counts[0], counts[1])
		}
	}

	// /v1/query returns real matches from the snapshot-backed corpus.
	w := postJSON(t, h, "/v1/query", queryRequest{Corpus: "snap", Query: `//NP`, Limit: 3})
	if w.Code != http.StatusOK {
		t.Fatalf("query: status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeResponse(t, w)
	if resp.Count == 0 || len(resp.Matches) == 0 {
		t.Fatalf("snapshot query returned %d matches of %d", len(resp.Matches), resp.Count)
	}
}

func TestRegistryLoadFileErrors(t *testing.T) {
	reg := NewRegistry()
	if _, _, err := reg.LoadFile("x", filepath.Join(t.TempDir(), "missing.lpx")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.lpx")
	if err := os.WriteFile(bad, []byte("LPXSNAP\x00 not a real snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.LoadFile("x", bad); err == nil {
		t.Error("corrupt snapshot accepted")
	}
	if reg.Len() != 0 {
		t.Errorf("failed loads left %d registry entries", reg.Len())
	}
}
