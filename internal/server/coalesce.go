package server

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"lpath"
)

// Request coalescing for /v1/query: while an evaluation is executing,
// requests that arrive for the same corpus generation gather for a short
// window and then evaluate together through Corpus.SelectBatchLimitText —
// one batch pass whose cross-query memo (rows, frontiers, satisfier sets)
// amortizes the scans the queries share, with identical concurrent queries
// deduplicated into a single slot. A request that arrives while the
// coalescer is idle bypasses the window entirely and evaluates immediately,
// so coalescing adds zero latency at concurrency one; the window only ever
// delays requests that would otherwise have queued behind a busy engine.

// defaultBatchWindow is the gather window used when the config leaves
// BatchWindow zero.
const defaultBatchWindow = time.Millisecond

// batchSizeBuckets are the upper bounds of the batch-size histogram
// (lpathd_batch_size); the +Inf bucket is implicit.
var batchSizeBuckets = [...]int{1, 2, 4, 8, 16, 32, 64}

// coalesceKey scopes a gather group: only requests against the same corpus
// generation may share one batch evaluation.
type coalesceKey struct {
	corpus string
	gen    uint64
}

// batchCall is one request's seat in a gather group.
type batchCall struct {
	query string
	limit int // effective request limit (the +1 probe is added at exec)
	done  chan struct{}
	qr    *queryResult
	err   error
}

// batchGroup is one gathering batch: calls accumulate until the window
// timer flushes them as a single batch evaluation.
type batchGroup struct {
	entry *Entry
	calls []*batchCall
}

// batchExec evaluates one deduplicated batch; texts and limits are parallel,
// results and errors positional. It is a field so tests can interpose.
type batchExec func(ctx context.Context, entry *Entry, texts []string, limits []int) ([]*queryResult, []error)

// soloExec evaluates one query alone; the default keeps the streaming
// limit-pushdown path a batch of one would lose (a batch evaluates fully and
// truncates so its memo stays valid for batch mates — pointless solo).
type soloExec func(ctx context.Context, entry *Entry, query string, limit int) (*queryResult, error)

// coalescer implements the gather/flush protocol and owns its counters.
type coalescer struct {
	window  time.Duration
	timeout time.Duration // detached deadline for flushed batch evaluations
	exec    batchExec
	one     soloExec

	mu        sync.Mutex
	executing int
	pending   map[coalesceKey]*batchGroup

	// Batch-size histogram (per flushed or bypassed evaluation), dedup count
	// (requests answered by another identical in-batch query), and total
	// requests that went through a multi-request batch.
	sizeCounts [len(batchSizeBuckets) + 1]uint64
	sizeSum    uint64
	sizeTotal  uint64
	dedup      uint64
	coalesced  uint64
}

func newCoalescer(window, timeout time.Duration) *coalescer {
	c := &coalescer{
		window:  window,
		timeout: timeout,
		pending: make(map[coalesceKey]*batchGroup),
	}
	c.exec = c.runBatch
	c.one = c.runOne
	return c
}

// runOne is the real single-query evaluation: the same streaming limit+1
// probe the uncoalesced server runs.
func (c *coalescer) runOne(ctx context.Context, entry *Entry, query string, limit int) (*queryResult, error) {
	ms, err := entry.Corpus.SelectLimitTextContext(ctx, query, limit+1)
	if err != nil {
		return nil, err
	}
	return foldMatches(ms, limit), nil
}

// runBatch is the real batch evaluation: one SelectBatchLimitText pass with
// each slot's limit raised by one (the server's truncation probe, exactly as
// the uncoalesced path evaluates), results folded into limit-agnostic
// queryResults the cache and every group member can serve from.
func (c *coalescer) runBatch(ctx context.Context, entry *Entry, texts []string, limits []int) ([]*queryResult, []error) {
	probe := make([]int, len(limits))
	for i, l := range limits {
		probe[i] = l + 1
	}
	batches, errs := entry.Corpus.SelectBatchLimitTextContext(ctx, texts, probe)
	out := make([]*queryResult, len(texts))
	for i := range texts {
		if errs[i] != nil {
			continue
		}
		out[i] = foldMatches(batches[i], limits[i])
	}
	return out, errs
}

// foldMatches builds the cacheable queryResult from a limit+1 evaluation,
// mirroring evaluateQuery's completeness bookkeeping.
func foldMatches(ms []lpath.Match, limit int) *queryResult {
	qr := &queryResult{matches: make([]matchJSON, len(ms))}
	for i, m := range ms {
		qr.matches[i] = matchJSON{
			Tree: m.TreeID,
			Tag:  m.Node.Tag,
			Text: strings.Join(m.Node.Words(), " "),
		}
	}
	if len(ms) <= limit {
		qr.complete, qr.count, qr.countKnown = true, len(ms), true
	}
	return qr
}

// do evaluates one /v1/query request through the coalescer. The fast path —
// nothing executing, nothing pending for this generation — evaluates
// immediately under the caller's context. Otherwise the request joins (or
// opens) its generation's gather group and waits for the flush; flushed
// batches run under a detached deadline so one client's disconnect cannot
// fail its batch mates.
func (c *coalescer) do(ctx context.Context, entry *Entry, query string, limit int) (*queryResult, error) {
	key := coalesceKey{corpus: entry.Name, gen: entry.Gen}
	c.mu.Lock()
	if c.executing == 0 && c.pending[key] == nil {
		c.executing++
		c.mu.Unlock()
		qr, err := c.one(ctx, entry, query, limit)
		c.mu.Lock()
		c.executing--
		c.observeBatch(1)
		c.mu.Unlock()
		return qr, err
	}
	g := c.pending[key]
	if g == nil {
		g = &batchGroup{entry: entry}
		c.pending[key] = g
		time.AfterFunc(c.window, func() { c.flush(key, g) })
	}
	call := &batchCall{query: query, limit: limit, done: make(chan struct{})}
	g.calls = append(g.calls, call)
	c.mu.Unlock()

	select {
	case <-call.done:
		return call.qr, call.err
	case <-ctx.Done():
		// The flush still answers the call's batch mates; this caller alone
		// gives up.
		return nil, ctx.Err()
	}
}

// flush runs one gathered group as a single deduplicated batch and wakes
// every waiting call with its slot's outcome.
func (c *coalescer) flush(key coalesceKey, g *batchGroup) {
	c.mu.Lock()
	delete(c.pending, key)
	c.executing++
	c.mu.Unlock()

	// Dedup identical query texts into one slot evaluated with the largest
	// limit any requester asked for; the limit-agnostic queryResult then
	// serves every requester's own limit.
	slot := make(map[string]int)
	var texts []string
	var limits []int
	for _, call := range g.calls {
		if i, ok := slot[call.query]; ok {
			if call.limit > limits[i] {
				limits[i] = call.limit
			}
			continue
		}
		slot[call.query] = len(texts)
		texts = append(texts, call.query)
		limits = append(limits, call.limit)
	}

	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if c.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
	}
	var qrs []*queryResult
	var errs []error
	if len(texts) == 1 {
		// A group that deduplicated to one query keeps the streaming path.
		qr, err := c.one(ctx, g.entry, texts[0], limits[0])
		qrs, errs = []*queryResult{qr}, []error{err}
	} else {
		qrs, errs = c.exec(ctx, g.entry, texts, limits)
	}
	cancel()

	c.mu.Lock()
	c.executing--
	c.observeBatch(len(texts))
	c.dedup += uint64(len(g.calls) - len(texts))
	if len(g.calls) > 1 {
		c.coalesced += uint64(len(g.calls))
	}
	c.mu.Unlock()

	for _, call := range g.calls {
		i := slot[call.query]
		call.qr, call.err = qrs[i], errs[i]
		close(call.done)
	}
}

// observeBatch records one evaluated batch's size. Callers hold c.mu.
func (c *coalescer) observeBatch(size int) {
	i := sort.SearchInts(batchSizeBuckets[:], size)
	c.sizeCounts[i]++
	c.sizeSum += uint64(size)
	c.sizeTotal++
}

// CoalesceStats is a snapshot of the coalescer's counters.
type CoalesceStats struct {
	// SizeCounts are per-bucket (non-cumulative) batch-size observations,
	// aligned with batchSizeBuckets plus a final +Inf slot.
	SizeCounts [len(batchSizeBuckets) + 1]uint64
	SizeSum    uint64
	SizeTotal  uint64
	Dedup      uint64
	Coalesced  uint64
}

// Stats snapshots the counters.
func (c *coalescer) Stats() CoalesceStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CoalesceStats{
		SizeCounts: c.sizeCounts,
		SizeSum:    c.sizeSum,
		SizeTotal:  c.sizeTotal,
		Dedup:      c.dedup,
		Coalesced:  c.coalesced,
	}
}
