package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the fixed histogram bucket upper bounds, in seconds.
// They span sub-millisecond cache hits through multi-second scans; the
// +Inf bucket is implicit.
var latencyBuckets = [...]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// histogram is a fixed-bucket latency histogram with atomic counters, cheap
// enough to sit on every request path.
type histogram struct {
	counts [len(latencyBuckets) + 1]atomic.Uint64 // last = +Inf
	sum    atomic.Uint64                          // microseconds, to stay integral
	total  atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets[:], s)
	h.counts[i].Add(1)
	h.sum.Add(uint64(d.Microseconds()))
	h.total.Add(1)
}

// endpointMetrics aggregates one endpoint's traffic: latency distribution,
// in-flight gauge and status-code counts.
type endpointMetrics struct {
	latency  histogram
	inFlight atomic.Int64
	status   sync.Map // int → *atomic.Uint64
}

func (e *endpointMetrics) observe(code int, d time.Duration) {
	e.latency.observe(d)
	v, ok := e.status.Load(code)
	if !ok {
		v, _ = e.status.LoadOrStore(code, new(atomic.Uint64))
	}
	v.(*atomic.Uint64).Add(1)
}

// Metrics is the server-wide metrics registry, rendered in Prometheus text
// exposition format by WritePrometheus. Everything is lock-free on the hot
// path (atomics and sync.Map); the render path takes snapshots.
type Metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics

	// Executor strategy counts, summed from EXPLAIN-style planning of every
	// uncached query: how many main-path steps ran as probes, merges, twigs,
	// and bitmap scope entries.
	StrategyProbe  atomic.Uint64
	StrategyMerge  atomic.Uint64
	StrategyTwig   atomic.Uint64
	StrategyBitmap atomic.Uint64

	// /v1/query truncation outcomes: responses whose limit cut the match
	// list (limit_hit=true, the early-termination fast path) vs complete
	// result sets. Cached and uncached responses both count.
	QueryTruncated atomic.Uint64
	QueryComplete  atomic.Uint64
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{endpoints: make(map[string]*endpointMetrics)}
}

// Endpoint returns (creating if needed) the named endpoint's collector.
func (m *Metrics) Endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.endpoints[name]
	if !ok {
		e = &endpointMetrics{}
		m.endpoints[name] = e
	}
	return e
}

// AddStrategies accumulates executor-strategy step counts from a plan.
func (m *Metrics) AddStrategies(probe, merge, twig, bitmap int) {
	m.StrategyProbe.Add(uint64(probe))
	m.StrategyMerge.Add(uint64(merge))
	m.StrategyTwig.Add(uint64(twig))
	m.StrategyBitmap.Add(uint64(bitmap))
}

// AddQueryResult records whether a served /v1/query response was truncated by
// its limit.
func (m *Metrics) AddQueryResult(limitHit bool) {
	if limitHit {
		m.QueryTruncated.Add(1)
	} else {
		m.QueryComplete.Add(1)
	}
}

// WritePrometheus renders every metric in Prometheus text format. The extra
// closures let the server contribute gauges owned elsewhere (admission,
// caches) without this package importing them circularly.
func (m *Metrics) WritePrometheus(w io.Writer, extra ...func(io.Writer)) {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	eps := make([]*endpointMetrics, len(names))
	for i, name := range names {
		eps[i] = m.endpoints[name]
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP lpathd_requests_total Requests served, by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE lpathd_requests_total counter\n")
	for i, name := range names {
		type sc struct {
			code int
			n    uint64
		}
		var codes []sc
		eps[i].status.Range(func(k, v any) bool {
			codes = append(codes, sc{k.(int), v.(*atomic.Uint64).Load()})
			return true
		})
		sort.Slice(codes, func(a, b int) bool { return codes[a].code < codes[b].code })
		for _, c := range codes {
			fmt.Fprintf(w, "lpathd_requests_total{endpoint=%q,code=\"%d\"} %d\n", name, c.code, c.n)
		}
	}

	fmt.Fprintf(w, "# HELP lpathd_in_flight In-flight requests, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE lpathd_in_flight gauge\n")
	for i, name := range names {
		fmt.Fprintf(w, "lpathd_in_flight{endpoint=%q} %d\n", name, eps[i].inFlight.Load())
	}

	fmt.Fprintf(w, "# HELP lpathd_request_duration_seconds Request latency, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE lpathd_request_duration_seconds histogram\n")
	for i, name := range names {
		h := &eps[i].latency
		var cum uint64
		for j, ub := range latencyBuckets {
			cum += h.counts[j].Load()
			fmt.Fprintf(w, "lpathd_request_duration_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", name, ub, cum)
		}
		cum += h.counts[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "lpathd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "lpathd_request_duration_seconds_sum{endpoint=%q} %g\n", name, float64(h.sum.Load())/1e6)
		fmt.Fprintf(w, "lpathd_request_duration_seconds_count{endpoint=%q} %d\n", name, h.total.Load())
	}

	fmt.Fprintf(w, "# HELP lpathd_plan_steps_total Main-path steps executed, by strategy (from planning uncached queries).\n")
	fmt.Fprintf(w, "# TYPE lpathd_plan_steps_total counter\n")
	fmt.Fprintf(w, "lpathd_plan_steps_total{strategy=\"probe\"} %d\n", m.StrategyProbe.Load())
	fmt.Fprintf(w, "lpathd_plan_steps_total{strategy=\"merge\"} %d\n", m.StrategyMerge.Load())
	fmt.Fprintf(w, "lpathd_plan_steps_total{strategy=\"twig\"} %d\n", m.StrategyTwig.Load())
	fmt.Fprintf(w, "lpathd_plan_steps_total{strategy=\"bitmap\"} %d\n", m.StrategyBitmap.Load())

	fmt.Fprintf(w, "# HELP lpathd_query_results_total Served /v1/query responses, by whether the limit truncated the match list.\n")
	fmt.Fprintf(w, "# TYPE lpathd_query_results_total counter\n")
	fmt.Fprintf(w, "lpathd_query_results_total{limit_hit=\"true\"} %d\n", m.QueryTruncated.Load())
	fmt.Fprintf(w, "lpathd_query_results_total{limit_hit=\"false\"} %d\n", m.QueryComplete.Load())

	for _, fn := range extra {
		fn(w)
	}
}
