// Package server is the lpathd serving layer: a long-running HTTP front end
// over the LPath engine with the production behaviors the one-shot CLIs
// cannot provide — request deadlines with cooperative cancellation,
// semaphore-based admission control with fast load shedding, a
// generation-keyed result cache, and an observability surface (Prometheus
// text metrics, structured request logs, pprof).
//
// The package splits along those behaviors: registry.go holds the named,
// generation-stamped corpora; admission.go bounds concurrency; resultcache.go
// memoizes responses; metrics.go counts everything; handlers.go implements
// the /v1 endpoints; server.go wires them into an http.Server.
package server

import (
	"fmt"
	"sort"
	"sync"

	"lpath"
	"lpath/internal/relstore/snapshot"
)

// Entry is one registered corpus: the queryable corpus itself plus the
// serving metadata the handlers and caches key on.
type Entry struct {
	// Name is the registry key clients address queries to.
	Name string
	// Gen is the registry-wide swap generation: every Set increments it, so
	// (Name, Gen) uniquely identifies one loaded corpus state. Result-cache
	// keys embed it, which is what invalidates cached results when a corpus
	// is swapped for a rebuilt or reloaded one.
	Gen uint64
	// Corpus is the live corpus. It must not be mutated after registration:
	// the registry builds the index eagerly in Set, and every later access
	// is read-only and safe for concurrent queries.
	Corpus *lpath.Corpus
	// Stats is the corpus measurement snapshot taken at registration.
	Stats lpath.Stats
}

// Registry maps corpus names to live corpora. Lookups are cheap RLock reads
// on the request path; Set swaps atomically under the write lock, so
// in-flight queries keep the entry (and corpus) they resolved and new
// requests see the replacement.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	gen     uint64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*Entry)}
}

// Set registers (or swaps) a corpus under the name, building its index
// eagerly so the serving path never triggers a lazy, non-concurrent-safe
// build. It returns the new entry. The corpus must not be mutated after Set.
func (r *Registry) Set(name string, c *lpath.Corpus) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("server: corpus name must not be empty")
	}
	if err := c.Build(); err != nil {
		return nil, fmt.Errorf("server: building corpus %q: %w", name, err)
	}
	st := c.Stats()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gen++
	e := &Entry{Name: name, Gen: r.gen, Corpus: c, Stats: st}
	r.entries[name] = e
	return e, nil
}

// LoadFile registers the corpus stored at path under name, sniffing the file
// format: binary store snapshots (.lpx files, recognized by magic) are
// memory-mapped via lpath.OpenStore — so startup reads and validates flat
// arrays instead of re-parsing and re-indexing — and anything else is parsed
// as Penn-bracketed text. It returns the entry and the detected format
// ("snapshot" or "text").
func (r *Registry) LoadFile(name, path string, opts ...lpath.Option) (*Entry, string, error) {
	snap, err := snapshot.SniffFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("server: loading corpus %q: %w", name, err)
	}
	var c *lpath.Corpus
	format := "text"
	if snap {
		format = "snapshot"
		c, err = lpath.OpenStore(path, opts...)
	} else {
		c, err = lpath.OpenCorpus(path, opts...)
	}
	if err != nil {
		return nil, "", fmt.Errorf("server: loading corpus %q: %w", name, err)
	}
	e, err := r.Set(name, c)
	if err != nil {
		return nil, "", err
	}
	return e, format, nil
}

// Get resolves a corpus by name. The empty name resolves iff exactly one
// corpus is registered — the single-corpus deployment needs no addressing.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.entries) == 1 {
			for _, e := range r.entries {
				return e, true
			}
		}
		return nil, false
	}
	e, ok := r.entries[name]
	return e, ok
}

// Remove drops a corpus from the registry; in-flight queries against it
// complete on the entry they already hold.
func (r *Registry) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.entries, name)
}

// Entries returns the registered entries sorted by name.
func (r *Registry) Entries() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered corpora.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
