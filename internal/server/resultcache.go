package server

import (
	"container/list"
	"sync"
)

// resultKey identifies one cacheable response. Gen is the registry swap
// generation of the corpus the result was computed against, so swapping a
// corpus makes all of its cached entries unreachable (and InvalidateCorpus
// frees them promptly). The key deliberately carries no limit: "query"
// entries store an ordered prefix that answers every limit it covers
// (GetServe), so distinct limits share one entry instead of duplicating the
// evaluation per limit.
type resultKey struct {
	Corpus string
	Gen    uint64
	Kind   string // "query", "count" or "explain"
	Query  string
}

// ResultCache is a thread-safe LRU of fully rendered query results. Entries
// are immutable once stored; handlers must not mutate a cached value.
type ResultCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recent
	items    map[resultKey]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

type resultEntry struct {
	key   resultKey
	value any
}

// NewResultCache creates a cache holding at most capacity results; capacity
// below 1 disables caching (every Get misses, Put is a no-op).
func NewResultCache(capacity int) *ResultCache {
	return &ResultCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[resultKey]*list.Element),
	}
}

// Get returns the cached value for the key, marking it most recently used.
func (c *ResultCache) Get(key resultKey) (any, bool) {
	return c.GetServe(key, nil)
}

// GetServe returns the cached value for the key only when the usable
// predicate (nil = always) approves it, marking it most recently used. An
// entry the predicate rejects counts as a miss and keeps its LRU position.
// This is how one stored /v1/query prefix serves many limits: query entries
// are keyed without their limit, and whether an entry answers a request
// depends on the request (see queryResult.canServe).
func (c *ResultCache) GetServe(key resultKey, usable func(any) bool) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		v := el.Value.(*resultEntry).value
		if usable == nil || usable(v) {
			c.hits++
			c.ll.MoveToFront(el)
			return v, true
		}
	}
	c.misses++
	return nil, false
}

// Put stores a value, evicting the least recently used entry at capacity.
func (c *ResultCache) Put(key resultKey, value any) {
	if c.capacity < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*resultEntry).value = value
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&resultEntry{key: key, value: value})
	c.items[key] = el
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*resultEntry).key)
		c.evictions++
	}
}

// InvalidateCorpus drops every entry for the named corpus, regardless of
// generation. Generation keying already makes stale entries unreachable
// after a swap; this releases their memory without waiting for LRU churn.
func (c *ResultCache) InvalidateCorpus(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*resultEntry); e.key.Corpus == name {
			c.ll.Remove(el)
			delete(c.items, e.key)
		}
		el = next
	}
}

// ResultCacheStats is a point-in-time snapshot of the cache counters.
type ResultCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Len       int
	Capacity  int
}

// Stats snapshots the hit/miss/eviction counters.
func (c *ResultCache) Stats() ResultCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ResultCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Len:       c.ll.Len(),
		Capacity:  c.capacity,
	}
}
