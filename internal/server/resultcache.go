package server

import (
	"container/list"
	"sync"
)

// resultKey identifies one cacheable response. Gen is the registry swap
// generation of the corpus the result was computed against, so swapping a
// corpus makes all of its cached entries unreachable (and InvalidateCorpus
// frees them promptly). The key deliberately carries no limit: "query"
// entries store an ordered prefix that answers every limit it covers
// (GetServe), so distinct limits share one entry instead of duplicating the
// evaluation per limit.
type resultKey struct {
	Corpus string
	Gen    uint64
	Kind   string // "query", "count" or "explain"
	Query  string
}

// ResultCache is a thread-safe LRU of fully rendered query results, bounded
// both by entry count and by total estimated bytes. Entries are immutable
// once stored; handlers must not mutate a cached value.
type ResultCache struct {
	mu       sync.Mutex
	capacity int
	maxBytes int64 // 0 = no byte bound
	curBytes int64
	ll       *list.List // front = most recent
	items    map[resultKey]*list.Element

	hits           uint64
	misses         uint64
	evictions      uint64
	bytesEvictions uint64
}

type resultEntry struct {
	key   resultKey
	value any
	size  int64
}

// NewResultCache creates a cache holding at most capacity results with no
// byte bound; capacity below 1 disables caching (every Get misses, Put is a
// no-op).
func NewResultCache(capacity int) *ResultCache {
	return NewResultCacheBytes(capacity, 0)
}

// NewResultCacheBytes is NewResultCache with a total-bytes bound: once the
// estimated size of the resident entries exceeds maxBytes, least recently
// used entries are evicted until it fits. maxBytes <= 0 disables the byte
// bound; a single value larger than maxBytes is never cached at all.
func NewResultCacheBytes(capacity int, maxBytes int64) *ResultCache {
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &ResultCache{
		capacity: capacity,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[resultKey]*list.Element),
	}
}

// entrySize estimates one entry's resident memory: the key's strings, the
// list/map bookkeeping, and the value. The estimate is deliberately simple —
// it exists to bound the cache's footprint, not to audit the allocator.
func entrySize(key resultKey, value any) int64 {
	const bookkeeping = 256 // entry struct, list element, map slot
	n := int64(bookkeeping + len(key.Corpus) + len(key.Kind) + len(key.Query))
	switch v := value.(type) {
	case *queryResult:
		const matchOverhead = 48 // matchJSON struct + string headers
		for _, m := range v.matches {
			n += matchOverhead + int64(len(m.Tag)+len(m.Text))
		}
	case *queryResponse:
		n += 128 + int64(len(v.Corpus)+len(v.Query)+len(v.Explain))
		for _, m := range v.Matches {
			n += 48 + int64(len(m.Tag)+len(m.Text))
		}
	default:
		n += 512 // unknown value type: charge a conservative flat estimate
	}
	return n
}

// Get returns the cached value for the key, marking it most recently used.
func (c *ResultCache) Get(key resultKey) (any, bool) {
	return c.GetServe(key, nil)
}

// GetServe returns the cached value for the key only when the usable
// predicate (nil = always) approves it, marking it most recently used. An
// entry the predicate rejects counts as a miss and keeps its LRU position.
// This is how one stored /v1/query prefix serves many limits: query entries
// are keyed without their limit, and whether an entry answers a request
// depends on the request (see queryResult.canServe).
func (c *ResultCache) GetServe(key resultKey, usable func(any) bool) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		v := el.Value.(*resultEntry).value
		if usable == nil || usable(v) {
			c.hits++
			c.ll.MoveToFront(el)
			return v, true
		}
	}
	c.misses++
	return nil, false
}

// Put stores a value, evicting least recently used entries while either
// bound (entry count, total bytes) is exceeded. A value whose own estimated
// size exceeds the byte bound is not stored — caching it would evict the
// entire working set for an entry unlikely to be re-served before it is
// evicted in turn.
func (c *ResultCache) Put(key resultKey, value any) {
	if c.capacity < 1 {
		return
	}
	size := entrySize(key, value)
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*resultEntry)
		c.curBytes += size - e.size
		e.value, e.size = value, size
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&resultEntry{key: key, value: value, size: size})
		c.items[key] = el
		c.curBytes += size
	}
	for c.ll.Len() > c.capacity || (c.maxBytes > 0 && c.curBytes > c.maxBytes) {
		oldest := c.ll.Back()
		e := oldest.Value.(*resultEntry)
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.curBytes -= e.size
		c.evictions++
		if c.maxBytes > 0 && c.ll.Len() <= c.capacity {
			c.bytesEvictions++ // the byte bound alone forced this one out
		}
	}
}

// InvalidateCorpus drops every entry for the named corpus, regardless of
// generation. Generation keying already makes stale entries unreachable
// after a swap; this releases their memory without waiting for LRU churn.
func (c *ResultCache) InvalidateCorpus(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*resultEntry); e.key.Corpus == name {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.curBytes -= e.size
		}
		el = next
	}
}

// ResultCacheStats is a point-in-time snapshot of the cache counters.
type ResultCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// BytesEvictions counts evictions forced by the byte bound alone (the
	// entry count was still under capacity); a subset of Evictions.
	BytesEvictions uint64
	Len            int
	Capacity       int
	// Bytes is the estimated resident size of the cached values; MaxBytes is
	// the configured bound (0 = unbounded).
	Bytes    int64
	MaxBytes int64
}

// Stats snapshots the hit/miss/eviction counters.
func (c *ResultCache) Stats() ResultCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ResultCacheStats{
		Hits:           c.hits,
		Misses:         c.misses,
		Evictions:      c.evictions,
		BytesEvictions: c.bytesEvictions,
		Len:            c.ll.Len(),
		Capacity:       c.capacity,
		Bytes:          c.curBytes,
		MaxBytes:       c.maxBytes,
	}
}
