package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCoalesceGroupsConcurrentRequests drives the full gather/flush protocol
// deterministically: a blocked solo evaluation forces three follow-on
// requests (two of them identical) to gather, and the flushed batch must
// answer each with exactly what a direct evaluation returns, with the
// batch-size and dedup counters reflecting the grouping.
func TestCoalesceGroupsConcurrentRequests(t *testing.T) {
	s, c := newTestServer(t, Config{MaxInFlight: 8, BatchWindow: 500 * time.Millisecond})
	h := s.Handler()

	soloStarted := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	realOne := s.coal.one
	s.coal.one = func(ctx context.Context, entry *Entry, query string, limit int) (*queryResult, error) {
		once.Do(func() {
			close(soloStarted)
			<-release
		})
		return realOne(ctx, entry, query, limit)
	}

	// Request A takes the solo fast path and blocks inside evaluation.
	var aResp queryResponse
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := postJSON(t, h, "/v1/query", queryRequest{Query: `//S`, Limit: 5})
		aResp = decodeResponse(t, w)
	}()
	<-soloStarted

	// B, C, D arrive while A executes: they must gather into one group.
	type result struct {
		code int
		resp queryResponse
	}
	reqs := []queryRequest{
		{Query: `//NP`, Limit: 5},
		{Query: `//NP`, Limit: 3},
		{Query: `//VP`, Limit: 5},
	}
	results := make([]result, len(reqs))
	for i, rq := range reqs {
		wg.Add(1)
		go func(i int, rq queryRequest) {
			defer wg.Done()
			w := postJSON(t, h, "/v1/query", rq)
			results[i] = result{w.Code, decodeResponse(t, w)}
		}(i, rq)
	}
	// Wait until all three hold seats in the pending group, then unblock A.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.coal.mu.Lock()
		var seats int
		for _, g := range s.coal.pending {
			seats += len(g.calls)
		}
		s.coal.mu.Unlock()
		if seats == len(reqs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests joined the gather group", seats, len(reqs))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if aResp.Query != `//S` {
		t.Errorf("solo response: %+v", aResp)
	}
	for i, rq := range reqs {
		if results[i].code != http.StatusOK {
			t.Fatalf("request %d (%s): status %d", i, rq.Query, results[i].code)
		}
		direct, err := c.SelectLimitText(rq.Query, rq.Limit)
		if err != nil {
			t.Fatal(err)
		}
		got := results[i].resp.Matches
		if len(got) != len(direct) {
			t.Errorf("request %d (%s limit %d): %d matches, direct %d",
				i, rq.Query, rq.Limit, len(got), len(direct))
			continue
		}
		for j, m := range direct {
			want := matchJSON{Tree: m.TreeID, Tag: m.Node.Tag, Text: strings.Join(m.Node.Words(), " ")}
			if !reflect.DeepEqual(got[j], want) {
				t.Errorf("request %d match %d: got %+v, want %+v", i, j, got[j], want)
			}
		}
	}

	st := s.coal.Stats()
	if st.SizeTotal != 2 { // A's solo evaluation + one flushed batch
		t.Errorf("batches observed = %d, want 2", st.SizeTotal)
	}
	if st.SizeSum != 3 { // solo size 1 + batch of 2 unique texts
		t.Errorf("batch size sum = %d, want 3", st.SizeSum)
	}
	if st.Dedup != 1 { // the duplicate //NP collapsed into one slot
		t.Errorf("dedup = %d, want 1", st.Dedup)
	}
	if st.Coalesced != 3 {
		t.Errorf("coalesced requests = %d, want 3", st.Coalesced)
	}
}

// TestCoalesceSoloBypass pins the zero-latency contract at concurrency one:
// with an enormous gather window, an isolated request must still answer
// immediately because the idle coalescer bypasses the window entirely.
func TestCoalesceSoloBypass(t *testing.T) {
	s, _ := newTestServer(t, Config{BatchWindow: 30 * time.Second})
	h := s.Handler()
	start := time.Now()
	w := postJSON(t, h, "/v1/query", queryRequest{Query: `//NP`, Limit: 3})
	elapsed := time.Since(start)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if elapsed >= 30*time.Second {
		t.Fatalf("solo request waited the gather window (%v)", elapsed)
	}
	// Generous bound: evaluation of //NP on the test corpus is microseconds;
	// anything near the window means the bypass is broken.
	if elapsed > 5*time.Second {
		t.Errorf("solo request took %v with a 30s window; bypass not effective", elapsed)
	}
	if resp := decodeResponse(t, w); len(resp.Matches) != 3 {
		t.Errorf("%d matches, want 3", len(resp.Matches))
	}
}

// TestCoalesceDisabled: a negative window turns the coalescer off entirely
// and /v1/query serves through the direct streaming path.
func TestCoalesceDisabled(t *testing.T) {
	s, _ := newTestServer(t, Config{BatchWindow: -1})
	if s.coal != nil {
		t.Fatal("negative BatchWindow left the coalescer enabled")
	}
	w := postJSON(t, s.Handler(), "/v1/query", queryRequest{Query: `//NP`, Limit: 2})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if resp := decodeResponse(t, w); len(resp.Matches) != 2 {
		t.Errorf("%d matches, want 2", len(resp.Matches))
	}
}

// TestMetricsExposeBatchAndCacheBytes: the /metrics exposition carries the
// batch-size histogram, the dedup counter and the result-cache byte gauges.
func TestMetricsExposeBatchAndCacheBytes(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	postJSON(t, h, "/v1/query", queryRequest{Query: `//NP`, Limit: 2})

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	body := w.Body.String()
	for _, want := range []string{
		`lpathd_batch_size_bucket{le="1"} 1`,
		"lpathd_batch_size_sum 1",
		"lpathd_batch_size_count 1",
		"lpathd_batch_dedup_total 0",
		"lpathd_batch_coalesced_total 0",
		"lpathd_result_cache_bytes",
		`lpathd_result_cache{event="bytes_eviction"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition lacks %q", want)
		}
	}
}
