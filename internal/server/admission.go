package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned by Admission.Acquire when the server is at its
// concurrency limit and the bounded queue is full (or the queue wait timed
// out). Handlers translate it to HTTP 429.
var ErrOverloaded = errors.New("server overloaded")

// Admission bounds query concurrency with a token semaphore plus a small
// bounded waiting room. At most maxInFlight queries evaluate at once; up to
// maxQueue more may wait up to queueWait for a token; everything beyond that
// is shed immediately with ErrOverloaded, so overload produces fast 429s
// instead of a growing goroutine pile-up.
type Admission struct {
	tokens    chan struct{}
	queue     chan struct{}
	queueWait time.Duration

	admitted atomic.Uint64
	shed     atomic.Uint64
	timeouts atomic.Uint64
}

// NewAdmission creates a controller admitting maxInFlight concurrent
// queries, queueing at most maxQueue waiters for up to queueWait each.
// maxInFlight below 1 is clamped to 1; maxQueue below 0 to 0; queueWait at
// or below 0 disables waiting (queued requests shed immediately unless a
// token is free).
func NewAdmission(maxInFlight, maxQueue int, queueWait time.Duration) *Admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{
		tokens:    make(chan struct{}, maxInFlight),
		queue:     make(chan struct{}, maxQueue),
		queueWait: queueWait,
	}
}

// Acquire admits one query, returning a release function the caller must
// invoke exactly once when evaluation finishes. It fails fast with
// ErrOverloaded when the in-flight limit and queue are both saturated, and
// with ctx.Err() when the caller's context dies while waiting.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a token is free, no queueing.
	select {
	case a.tokens <- struct{}{}:
		a.admitted.Add(1)
		return a.releaseFunc(), nil
	default:
	}

	// Reserve a queue slot; a full queue is the shed signal.
	select {
	case a.queue <- struct{}{}:
	default:
		a.shed.Add(1)
		return nil, ErrOverloaded
	}
	defer func() { <-a.queue }()

	if a.queueWait <= 0 {
		// One more non-blocking attempt covers the race where a token freed
		// between the fast path and the queue reservation.
		select {
		case a.tokens <- struct{}{}:
			a.admitted.Add(1)
			return a.releaseFunc(), nil
		default:
			a.shed.Add(1)
			return nil, ErrOverloaded
		}
	}

	timer := time.NewTimer(a.queueWait)
	defer timer.Stop()
	select {
	case a.tokens <- struct{}{}:
		a.admitted.Add(1)
		return a.releaseFunc(), nil
	case <-timer.C:
		a.timeouts.Add(1)
		a.shed.Add(1)
		return nil, ErrOverloaded
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *Admission) releaseFunc() func() {
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			<-a.tokens
		}
	}
}

// AdmissionStats is a point-in-time snapshot of the controller.
type AdmissionStats struct {
	InFlight int    // queries currently holding a token
	Queued   int    // requests currently waiting for a token
	Admitted uint64 // total requests admitted
	Shed     uint64 // total requests rejected with ErrOverloaded
	Timeouts uint64 // subset of Shed that waited the full queueWait first
	Limit    int    // configured in-flight limit
	QueueCap int    // configured queue capacity
}

// Stats snapshots the controller's gauges and counters.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		InFlight: len(a.tokens),
		Queued:   len(a.queue),
		Admitted: a.admitted.Load(),
		Shed:     a.shed.Load(),
		Timeouts: a.timeouts.Load(),
		Limit:    cap(a.tokens),
		QueueCap: cap(a.queue),
	}
}
