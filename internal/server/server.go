package server

import (
	"context"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"
)

// Config carries the serving limits and defaults; zero values select the
// documented defaults.
type Config struct {
	// Addr is the listen address, e.g. ":8080".
	Addr string
	// MaxInFlight bounds concurrent query evaluations (default 4).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an evaluation slot (default 16;
	// negative disables queueing, so saturation sheds immediately).
	MaxQueue int
	// QueueWait bounds how long a queued request waits before shedding
	// (default 100ms; negative disables waiting entirely).
	QueueWait time.Duration
	// DefaultTimeout is the per-request evaluation deadline when the request
	// carries none (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied deadlines (default 60s).
	MaxTimeout time.Duration
	// CacheSize is the result-cache capacity in entries (default 256;
	// negative disables result caching).
	CacheSize int
	// CacheBytes bounds the result cache's total estimated memory, evicting
	// LRU entries once exceeded (default 64 MiB; negative removes the bound,
	// leaving only the entry-count capacity).
	CacheBytes int64
	// BatchWindow is the request-coalescing gather window for /v1/query:
	// requests arriving while an evaluation is in flight wait up to this long
	// and then evaluate together as one batch (default 1ms; negative disables
	// coalescing). A request arriving while the coalescer is idle always
	// evaluates immediately — the window never delays an unqueued request.
	BatchWindow time.Duration
	// DefaultLimit is the /v1/query match-list cap when the request carries
	// none (default 100).
	DefaultLimit int
	// MaxLimit clamps request-supplied limits (default 10000).
	MaxLimit int
	// Logger receives structured request logs; nil disables request logging.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 16
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueWait == 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.CacheBytes < 0 {
		c.CacheBytes = 0 // unbounded
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = defaultBatchWindow
	}
	if c.DefaultLimit == 0 {
		c.DefaultLimit = 100
	}
	if c.MaxLimit == 0 {
		c.MaxLimit = 10000
	}
	return c
}

// Server is the lpathd HTTP front end: registry lookups, admission control,
// result caching and metrics around the LPath engine.
type Server struct {
	cfg       Config
	registry  *Registry
	admission *Admission
	cache     *ResultCache
	coal      *coalescer // nil when coalescing is disabled
	metrics   *Metrics
	http      *http.Server
}

// New assembles a server over the registry. Corpora may be registered before
// or after New; /healthz reports 503 until the registry is non-empty.
func New(reg *Registry, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		registry:  reg,
		admission: NewAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait),
		cache:     NewResultCacheBytes(cfg.CacheSize, cfg.CacheBytes),
		metrics:   NewMetrics(),
	}
	if cfg.BatchWindow > 0 {
		s.coal = newCoalescer(cfg.BatchWindow, cfg.DefaultTimeout)
	}
	s.http = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Registry returns the server's corpus registry.
func (s *Server) Registry() *Registry { return s.registry }

// InvalidateCorpus drops the named corpus's cached results; call it after
// swapping a corpus in the registry. (Generation keying already prevents
// stale hits; this releases the memory promptly.)
func (s *Server) InvalidateCorpus(name string) { s.cache.InvalidateCorpus(name) }

// Handler builds the route table. It is exported so tests (and embedders)
// can drive the server through httptest without a listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.instrument("query", s.handleEval("query")))
	mux.HandleFunc("/v1/count", s.instrument("count", s.handleEval("count")))
	mux.HandleFunc("/v1/explain", s.instrument("explain", s.handleEval("explain")))
	mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", s.handleMetrics)
	// pprof is wired explicitly: the server deliberately never touches
	// http.DefaultServeMux, so tests can run many instances side by side.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// statusRecorder captures the status code an inner handler writes.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-endpoint metrics: in-flight gauge,
// latency histogram and status-code counters.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.metrics.Endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		ep.inFlight.Add(1)
		defer ep.inFlight.Add(-1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		ep.observe(rec.code, time.Since(start))
	}
}

// ListenAndServe starts serving on the configured address and blocks until
// Shutdown or a listener error; like http.Server, it returns
// http.ErrServerClosed after a clean Shutdown.
func (s *Server) ListenAndServe() error {
	return s.http.ListenAndServe()
}

// Shutdown drains in-flight requests and stops the server.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.http.Shutdown(ctx)
}
