package server

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h histogram
	h.observe(300 * time.Microsecond) // below the first bound
	h.observe(700 * time.Microsecond) // second bucket
	h.observe(20 * time.Second)       // +Inf
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("bucket[0] = %d, want 1", got)
	}
	if got := h.counts[1].Load(); got != 1 {
		t.Errorf("bucket[1] = %d, want 1", got)
	}
	if got := h.counts[len(latencyBuckets)].Load(); got != 1 {
		t.Errorf("+Inf bucket = %d, want 1", got)
	}
	if got := h.total.Load(); got != 3 {
		t.Errorf("total = %d, want 3", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	m := NewMetrics()
	ep := m.Endpoint("query")
	ep.observe(200, 2*time.Millisecond)
	ep.observe(200, 2*time.Millisecond)
	ep.observe(429, 10*time.Microsecond)
	m.AddStrategies(3, 2, 1, 4)

	var b strings.Builder
	m.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		`lpathd_requests_total{endpoint="query",code="200"} 2`,
		`lpathd_requests_total{endpoint="query",code="429"} 1`,
		`lpathd_request_duration_seconds_count{endpoint="query"} 3`,
		`lpathd_request_duration_seconds_bucket{endpoint="query",le="+Inf"} 3`,
		`lpathd_plan_steps_total{strategy="probe"} 3`,
		`lpathd_plan_steps_total{strategy="merge"} 2`,
		`lpathd_plan_steps_total{strategy="twig"} 1`,
		`lpathd_plan_steps_total{strategy="bitmap"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q", want)
		}
	}

	// Histogram buckets are cumulative: the 2ms observations land in the
	// le="0.0025" bucket and every later one.
	if !strings.Contains(out, `le="0.0025"} 3`) {
		t.Errorf("cumulative bucket rendering wrong:\n%s", out)
	}

	// Endpoint() must return the same collector for the same name.
	if m.Endpoint("query") != ep {
		t.Error("Endpoint not idempotent")
	}
}
