package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"
)

// statusClientClosed is the conventional (nginx) code for "client closed
// request"; it never reaches the disconnected client but keeps the logs and
// status counters honest.
const statusClientClosed = 499

// queryRequest is the JSON body of the /v1/query, /v1/count and /v1/explain
// endpoints.
type queryRequest struct {
	// Corpus names the registered corpus; may be empty when exactly one
	// corpus is loaded.
	Corpus string `json:"corpus"`
	// Query is the LPath query text.
	Query string `json:"query"`
	// Limit caps the matches returned by /v1/query (0 = server default;
	// values above the server maximum are clamped). The limit is pushed into
	// the engine: evaluation stops once the prefix is known, it does not
	// compute the full result and discard the tail.
	Limit int `json:"limit"`
	// Count requests the exact total match count on /v1/query even when the
	// limit truncates the match list, at the cost of one count-only
	// evaluation on top of the limited one. Without it, a truncated response
	// reports count -1 (unknown). Ignored by /v1/count and /v1/explain.
	Count bool `json:"count"`
	// TimeoutMS overrides the server's default per-request deadline, in
	// milliseconds (0 = default; clamped to the server maximum).
	TimeoutMS int `json:"timeout_ms"`
}

// matchJSON is one rendered match.
type matchJSON struct {
	Tree int    `json:"tree"`
	Tag  string `json:"tag"`
	Text string `json:"text,omitempty"`
}

// queryResponse is the /v1/query response; /v1/count omits Matches and
// Truncated; /v1/explain carries Explain instead. On /v1/query, Count is the
// exact total when it is known — the result was not truncated, or the request
// asked for it with "count": true — and -1 when the limited evaluation
// stopped early without learning it.
type queryResponse struct {
	Corpus    string      `json:"corpus"`
	Query     string      `json:"query"`
	Count     int         `json:"count"`
	Matches   []matchJSON `json:"matches,omitempty"`
	Truncated bool        `json:"truncated,omitempty"`
	Explain   string      `json:"explain,omitempty"`
	Cached    bool        `json:"cached"`
	ElapsedMS float64     `json:"elapsed_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// queryResult is the cached outcome of one /v1/query evaluation: an ordered
// prefix of the result set plus what is known about the total. An incomplete
// entry holds one match more than the limit that produced it — that extra
// match is how truncatedness stays decidable for every limit the entry can
// answer. One entry per (corpus, gen, query) serves all such limits.
type queryResult struct {
	matches    []matchJSON
	complete   bool // matches is the entire result set
	count      int  // exact total; valid only when countKnown
	countKnown bool
}

// canServe reports whether the entry answers a request with the given limit
// (and, when wantCount, an exact total). A complete entry answers anything;
// an incomplete one must hold strictly more than limit matches, so both the
// prefix and whether the limit truncated it are known.
func (qr *queryResult) canServe(limit int, wantCount bool) bool {
	if wantCount && !qr.countKnown {
		return false
	}
	return qr.complete || len(qr.matches) > limit
}

// render builds the response view for one limit. Matches aliases the cached
// slice read-only (capacity-clipped so callers cannot append into it); Count
// is -1 when the total is unknown.
func (qr *queryResult) render(limit int) *queryResponse {
	n := len(qr.matches)
	if n > limit {
		n = limit
	}
	resp := &queryResponse{
		Count:     -1,
		Matches:   qr.matches[:n:n],
		Truncated: !qr.complete || n < len(qr.matches),
	}
	if qr.countKnown {
		resp.Count = qr.count
	}
	return resp
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeQueryRequest parses and bounds-checks the request body.
func (s *Server) decodeQueryRequest(w http.ResponseWriter, r *http.Request) (*queryRequest, *Entry, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST with a JSON body")
		return nil, nil, false
	}
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return nil, nil, false
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "missing query")
		return nil, nil, false
	}
	entry, ok := s.registry.Get(req.Corpus)
	if !ok {
		if req.Corpus == "" {
			writeError(w, http.StatusBadRequest, "multiple corpora loaded; specify \"corpus\"")
		} else {
			writeError(w, http.StatusNotFound, "unknown corpus %q", req.Corpus)
		}
		return nil, nil, false
	}
	if req.Limit <= 0 {
		req.Limit = s.cfg.DefaultLimit
	}
	if req.Limit > s.cfg.MaxLimit {
		req.Limit = s.cfg.MaxLimit
	}
	return &req, entry, true
}

// requestContext derives the evaluation context: the client disconnect (via
// r.Context()) plus the effective deadline — the request override clamped to
// the server maximum, or the server default.
func (s *Server) requestContext(r *http.Request, req *queryRequest) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	if d <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), d)
}

// evalStatus maps an evaluation (or admission) error to its HTTP status.
func evalStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosed
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}

// handleEval is the shared core of /v1/query, /v1/count and /v1/explain:
// decode, admit, consult the result cache, evaluate under the request
// deadline, cache, respond.
func (s *Server) handleEval(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, entry, ok := s.decodeQueryRequest(w, r)
		if !ok {
			return
		}
		start := time.Now()

		ctx, cancel := s.requestContext(r, req)
		defer cancel()

		release, err := s.admission.Acquire(ctx)
		if err != nil {
			code := evalStatus(err)
			if errors.Is(err, ErrOverloaded) {
				w.Header().Set("Retry-After", "1")
			}
			writeError(w, code, "%v", err)
			s.logRequest(r, kind, req, code, false, time.Since(start), err)
			return
		}
		defer release()

		key := resultKey{Corpus: entry.Name, Gen: entry.Gen, Kind: kind, Query: req.Query}
		usable := func(v any) bool {
			if kind != "query" {
				return true // count and explain results answer any request
			}
			qr, ok := v.(*queryResult)
			return ok && qr.canServe(req.Limit, req.Count)
		}
		if v, ok := s.cache.GetServe(key, usable); ok {
			var out queryResponse
			if kind == "query" {
				out = *v.(*queryResult).render(req.Limit)
				out.Corpus, out.Query = entry.Name, req.Query
				s.metrics.AddQueryResult(out.Truncated)
			} else {
				out = *v.(*queryResponse) // shallow copy: per-request fields differ
			}
			out.Cached = true
			out.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
			writeJSON(w, http.StatusOK, &out)
			s.logRequest(r, kind, req, http.StatusOK, true, time.Since(start), nil)
			return
		}

		resp, cacheable, err := s.evaluate(ctx, kind, entry, req)
		if err != nil {
			code := evalStatus(err)
			writeError(w, code, "%v", err)
			s.logRequest(r, kind, req, code, false, time.Since(start), err)
			return
		}
		s.cache.Put(key, cacheable)
		if kind == "query" {
			s.metrics.AddQueryResult(resp.Truncated)
		}

		out := *resp
		out.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
		writeJSON(w, http.StatusOK, &out)
		s.logRequest(r, kind, req, http.StatusOK, false, time.Since(start), nil)
	}
}

// evaluate runs one uncached evaluation and builds the response plus the
// immutable value to cache (Cached=false, ElapsedMS unset; the handler stamps
// both). For "query" the cacheable value is a *queryResult — a limit-agnostic
// prefix the cache serves to later requests — not the rendered response.
func (s *Server) evaluate(ctx context.Context, kind string, entry *Entry, req *queryRequest) (*queryResponse, any, error) {
	resp := &queryResponse{Corpus: entry.Name, Query: req.Query}

	// Count executor strategies once per uncached evaluation, from the same
	// plan the engine will run; compile errors surface here first.
	q, err := entry.Corpus.CompileCached(req.Query)
	if err != nil {
		return nil, nil, err
	}
	if p, m, tw, bm, err := entry.Corpus.Strategies(q); err == nil {
		s.metrics.AddStrategies(p, m, tw, bm)
	}

	switch kind {
	case "query":
		qr, err := s.evaluateQuery(ctx, entry, req)
		if err != nil {
			return nil, nil, err
		}
		resp = qr.render(req.Limit)
		resp.Corpus, resp.Query = entry.Name, req.Query
		return resp, qr, nil
	case "count":
		n, err := entry.Corpus.CountTextContext(ctx, req.Query)
		if err != nil {
			return nil, nil, err
		}
		resp.Count = n
	case "explain":
		report, err := entry.Corpus.ExplainContext(ctx, q)
		if err != nil {
			return nil, nil, err
		}
		resp.Explain = report
	default:
		return nil, nil, fmt.Errorf("unknown evaluation kind %q", kind)
	}
	return resp, resp, nil
}

// evaluateQuery runs one uncached /v1/query evaluation with the limit pushed
// into the engine: the corpus streams matches in (tree, document) order and
// stops after limit+1 — the extra match is how the server learns whether the
// limit truncated the result without evaluating the rest of the corpus. With
// request coalescing enabled the evaluation routes through the coalescer,
// which may run it inside a shared batch pass alongside concurrent requests
// (coalesce.go); the returned queryResult is identical either way. The
// exact total costs a separate count-only evaluation and is computed only
// when the request asks for it (or comes free because the stream ran dry).
func (s *Server) evaluateQuery(ctx context.Context, entry *Entry, req *queryRequest) (*queryResult, error) {
	var qr *queryResult
	var err error
	if s.coal != nil {
		qr, err = s.coal.do(ctx, entry, req.Query, req.Limit)
	} else {
		var ms []matchJSON
		ms, err = s.selectDirect(ctx, entry, req)
		if err == nil {
			qr = &queryResult{matches: ms}
			if len(ms) <= req.Limit {
				qr.complete, qr.count, qr.countKnown = true, len(ms), true
			}
		}
	}
	if err != nil {
		return nil, err
	}
	if req.Count && !qr.countKnown {
		n, err := entry.Corpus.CountTextContext(ctx, req.Query)
		if err != nil {
			return nil, err
		}
		// A coalesced queryResult may be shared with batch mates and the
		// cache: attach the count to a copy rather than mutating it.
		counted := *qr
		counted.count, counted.countKnown = n, true
		qr = &counted
	}
	return qr, nil
}

// selectDirect is the uncoalesced limit+1 evaluation.
func (s *Server) selectDirect(ctx context.Context, entry *Entry, req *queryRequest) ([]matchJSON, error) {
	ms, err := entry.Corpus.SelectLimitTextContext(ctx, req.Query, req.Limit+1)
	if err != nil {
		return nil, err
	}
	out := make([]matchJSON, len(ms))
	for i, m := range ms {
		out[i] = matchJSON{
			Tree: m.TreeID,
			Tag:  m.Node.Tag,
			Text: strings.Join(m.Node.Words(), " "),
		}
	}
	return out, nil
}

// handleHealthz reports readiness: 200 with the corpus inventory once at
// least one corpus is registered, 503 before that.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type corpusJSON struct {
		Name      string `json:"name"`
		Gen       uint64 `json:"generation"`
		Sentences int    `json:"sentences"`
		Nodes     int    `json:"nodes"`
	}
	entries := s.registry.Entries()
	if len(entries) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "loading", "corpora": []corpusJSON{}})
		return
	}
	out := make([]corpusJSON, len(entries))
	for i, e := range entries {
		out[i] = corpusJSON{Name: e.Name, Gen: e.Gen, Sentences: e.Stats.Sentences, Nodes: e.Stats.TreeNodes}
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "corpora": out})
}

// handleMetrics renders the Prometheus text exposition: request metrics plus
// admission, result-cache and per-corpus plan-cache gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w,
		func(w io.Writer) {
			st := s.admission.Stats()
			fmt.Fprintf(w, "# HELP lpathd_admission_in_flight Queries currently evaluating.\n")
			fmt.Fprintf(w, "# TYPE lpathd_admission_in_flight gauge\n")
			fmt.Fprintf(w, "lpathd_admission_in_flight %d\n", st.InFlight)
			fmt.Fprintf(w, "# HELP lpathd_admission_queued Requests waiting for an evaluation slot.\n")
			fmt.Fprintf(w, "# TYPE lpathd_admission_queued gauge\n")
			fmt.Fprintf(w, "lpathd_admission_queued %d\n", st.Queued)
			fmt.Fprintf(w, "# HELP lpathd_admission_total Admission outcomes.\n")
			fmt.Fprintf(w, "# TYPE lpathd_admission_total counter\n")
			fmt.Fprintf(w, "lpathd_admission_total{outcome=\"admitted\"} %d\n", st.Admitted)
			fmt.Fprintf(w, "lpathd_admission_total{outcome=\"shed\"} %d\n", st.Shed)
			fmt.Fprintf(w, "lpathd_admission_total{outcome=\"queue_timeout\"} %d\n", st.Timeouts)
		},
		func(w io.Writer) {
			st := s.cache.Stats()
			fmt.Fprintf(w, "# HELP lpathd_result_cache Result cache counters.\n")
			fmt.Fprintf(w, "# TYPE lpathd_result_cache counter\n")
			fmt.Fprintf(w, "lpathd_result_cache{event=\"hit\"} %d\n", st.Hits)
			fmt.Fprintf(w, "lpathd_result_cache{event=\"miss\"} %d\n", st.Misses)
			fmt.Fprintf(w, "lpathd_result_cache{event=\"eviction\"} %d\n", st.Evictions)
			fmt.Fprintf(w, "lpathd_result_cache{event=\"bytes_eviction\"} %d\n", st.BytesEvictions)
			fmt.Fprintf(w, "# HELP lpathd_result_cache_entries Result cache occupancy.\n")
			fmt.Fprintf(w, "# TYPE lpathd_result_cache_entries gauge\n")
			fmt.Fprintf(w, "lpathd_result_cache_entries %d\n", st.Len)
			fmt.Fprintf(w, "# HELP lpathd_result_cache_bytes Estimated resident bytes of cached results.\n")
			fmt.Fprintf(w, "# TYPE lpathd_result_cache_bytes gauge\n")
			fmt.Fprintf(w, "lpathd_result_cache_bytes %d\n", st.Bytes)
		},
		func(w io.Writer) {
			if s.coal == nil {
				return
			}
			st := s.coal.Stats()
			fmt.Fprintf(w, "# HELP lpathd_batch_size Queries per evaluated /v1/query batch (1 = uncoalesced).\n")
			fmt.Fprintf(w, "# TYPE lpathd_batch_size histogram\n")
			var cum uint64
			for i, ub := range batchSizeBuckets {
				cum += st.SizeCounts[i]
				fmt.Fprintf(w, "lpathd_batch_size_bucket{le=\"%d\"} %d\n", ub, cum)
			}
			cum += st.SizeCounts[len(batchSizeBuckets)]
			fmt.Fprintf(w, "lpathd_batch_size_bucket{le=\"+Inf\"} %d\n", cum)
			fmt.Fprintf(w, "lpathd_batch_size_sum %d\n", st.SizeSum)
			fmt.Fprintf(w, "lpathd_batch_size_count %d\n", st.SizeTotal)
			fmt.Fprintf(w, "# HELP lpathd_batch_dedup_total Requests answered by an identical query coalesced into the same batch.\n")
			fmt.Fprintf(w, "# TYPE lpathd_batch_dedup_total counter\n")
			fmt.Fprintf(w, "lpathd_batch_dedup_total %d\n", st.Dedup)
			fmt.Fprintf(w, "# HELP lpathd_batch_coalesced_total Requests served through a multi-request batch.\n")
			fmt.Fprintf(w, "# TYPE lpathd_batch_coalesced_total counter\n")
			fmt.Fprintf(w, "lpathd_batch_coalesced_total %d\n", st.Coalesced)
		},
		func(w io.Writer) {
			fmt.Fprintf(w, "# HELP lpathd_plan_cache Plan cache counters, by corpus.\n")
			fmt.Fprintf(w, "# TYPE lpathd_plan_cache counter\n")
			for _, e := range s.registry.Entries() {
				st := e.Corpus.PlanCacheStats()
				fmt.Fprintf(w, "lpathd_plan_cache{corpus=%q,event=\"hit\"} %d\n", e.Name, st.Hits)
				fmt.Fprintf(w, "lpathd_plan_cache{corpus=%q,event=\"miss\"} %d\n", e.Name, st.Misses)
				fmt.Fprintf(w, "lpathd_plan_cache{corpus=%q,event=\"eviction\"} %d\n", e.Name, st.Evictions)
			}
		},
	)
}

// logRequest emits one structured log line per query request.
func (s *Server) logRequest(r *http.Request, kind string, req *queryRequest, code int, cached bool, elapsed time.Duration, err error) {
	if s.cfg.Logger == nil {
		return
	}
	attrs := []any{
		slog.String("endpoint", kind),
		slog.String("corpus", req.Corpus),
		slog.String("query", req.Query),
		slog.Int("status", code),
		slog.Bool("cached", cached),
		slog.Duration("elapsed", elapsed),
		slog.String("remote", r.RemoteAddr),
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
		s.cfg.Logger.Warn("query", attrs...)
		return
	}
	s.cfg.Logger.Info("query", attrs...)
}
