package tree

// Figure1 returns the running-example syntax tree of the paper (Figure 1):
// the analysis of "I saw the old man with a dog today".
//
// The leaf spans induced by this tree reproduce the relational rows of
// Figure 5: S spans [1,10], V spans [2,3], the object NP spans [3,9], the
// inner NP "the old man" spans [3,6], and so on.
func Figure1() *Tree {
	return MustParseTree(`
		(S
		  (NP I)
		  (VP
		    (V saw)
		    (NP
		      (NP (Det the) (Adj old) (N man))
		      (PP (Prep with)
		          (NP (Det a) (N dog)))))
		  (N today))`)
}

// Figure1Sentence is the terminal string of the Figure 1 tree.
const Figure1Sentence = "I saw the old man with a dog today"
