// Package tree defines the ordered linguistic tree model used throughout the
// repository: an ordered labeled tree whose terminals are units of a
// linguistic artifact (words) and whose non-terminals are annotations, as in
// Section 2.1 of the LPath paper (Bird et al., ICDE 2006).
//
// The package also provides a reader and writer for the Penn Treebank
// bracketed format, traversal helpers, and a Corpus container that groups a
// set of trees under stable tree identifiers.
package tree

import (
	"fmt"
	"sort"
	"strings"
)

// Node is a single node of a linguistic tree.
//
// A preterminal node (a part-of-speech node such as V or NN) carries the
// terminal it annotates in Word; following the paper's data model the word is
// exposed to queries as the @lex attribute of the preterminal. Additional
// attributes, which are rare, live in Attrs and are allocated lazily.
type Node struct {
	// Tag is the syntactic category label, e.g. "NP" or "VP" or "NP-SBJ".
	Tag string
	// Word is the terminal annotated by this node, or "" for phrasal nodes.
	// It is exposed to queries as the @lex attribute.
	Word string
	// Parent is nil for the root.
	Parent *Node
	// Children are the ordered children of the node.
	Children []*Node
	// Attrs holds attributes other than @lex; nil for almost every node.
	Attrs map[string]string
}

// IsLeaf reports whether the node is a preterminal, i.e. annotates a word and
// has no element children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Attr returns the value of the named attribute ("lex" or an Attrs key) and
// whether it is present. The leading '@' may be included or omitted.
func (n *Node) Attr(name string) (string, bool) {
	name = strings.TrimPrefix(name, "@")
	if name == "lex" {
		if n.Word == "" {
			return "", false
		}
		return n.Word, true
	}
	v, ok := n.Attrs[name]
	return v, ok
}

// SetAttr sets an attribute on the node. Setting "lex" assigns Word.
func (n *Node) SetAttr(name, value string) {
	name = strings.TrimPrefix(name, "@")
	if name == "lex" {
		n.Word = value
		return
	}
	if n.Attrs == nil {
		n.Attrs = make(map[string]string, 1)
	}
	n.Attrs[name] = value
}

// AttrNames returns the attribute names present on the node, sorted, each
// with a leading '@'.
func (n *Node) AttrNames() []string {
	var names []string
	if n.Word != "" {
		names = append(names, "@lex")
	}
	for k := range n.Attrs {
		names = append(names, "@"+k)
	}
	sort.Strings(names)
	return names
}

// AddChild appends child to n and sets its parent pointer.
func (n *Node) AddChild(child *Node) {
	child.Parent = n
	n.Children = append(n.Children, child)
}

// ChildIndex returns the index of n in its parent's child list, or -1 for a
// root node.
func (n *Node) ChildIndex() int {
	if n.Parent == nil {
		return -1
	}
	for i, c := range n.Parent.Children {
		if c == n {
			return i
		}
	}
	return -1
}

// NextSibling returns the immediately following sibling, or nil.
func (n *Node) NextSibling() *Node {
	i := n.ChildIndex()
	if i < 0 || i+1 >= len(n.Parent.Children) {
		return nil
	}
	return n.Parent.Children[i+1]
}

// PrevSibling returns the immediately preceding sibling, or nil.
func (n *Node) PrevSibling() *Node {
	i := n.ChildIndex()
	if i <= 0 {
		return nil
	}
	return n.Parent.Children[i-1]
}

// Root returns the root of the tree containing n.
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// Depth returns the depth of the node; the root has depth 1, as in
// Definition 4.1 of the paper.
func (n *Node) Depth() int {
	d := 1
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// IsAncestorOf reports whether n is a proper ancestor of other.
func (n *Node) IsAncestorOf(other *Node) bool {
	for p := other.Parent; p != nil; p = p.Parent {
		if p == n {
			return true
		}
	}
	return false
}

// LeftmostLeaf returns the leftmost leaf descendant of n (n itself if a leaf).
func (n *Node) LeftmostLeaf() *Node {
	for len(n.Children) > 0 {
		n = n.Children[0]
	}
	return n
}

// RightmostLeaf returns the rightmost leaf descendant of n (n itself if a
// leaf).
func (n *Node) RightmostLeaf() *Node {
	for len(n.Children) > 0 {
		n = n.Children[len(n.Children)-1]
	}
	return n
}

// Walk visits n and every descendant in document (preorder) order, calling
// visit for each. If visit returns false the subtree below the node is
// skipped.
func (n *Node) Walk(visit func(*Node) bool) {
	if !visit(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// Size returns the number of nodes in the subtree rooted at n.
func (n *Node) Size() int {
	total := 0
	n.Walk(func(*Node) bool { total++; return true })
	return total
}

// Leaves returns the leaf nodes of the subtree rooted at n, left to right.
func (n *Node) Leaves() []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.IsLeaf() {
			out = append(out, m)
		}
		return true
	})
	return out
}

// Words returns the terminal string of the subtree, left to right.
func (n *Node) Words() []string {
	var out []string
	for _, l := range n.Leaves() {
		if l.Word != "" {
			out = append(out, l.Word)
		}
	}
	return out
}

// String renders the subtree in single-line Penn bracketed form.
func (n *Node) String() string {
	var b strings.Builder
	writeNode(&b, n)
	return b.String()
}

// Tree is a single linguistic tree with a corpus-stable identifier.
type Tree struct {
	// ID distinguishes trees within a corpus; assigned by Corpus.Add.
	ID int
	// Root is the root node.
	Root *Node
}

// NewTree wraps a root node as a Tree with ID 0.
func NewTree(root *Node) *Tree { return &Tree{Root: root} }

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int {
	if t.Root == nil {
		return 0
	}
	return t.Root.Size()
}

// Nodes returns all nodes of the tree in document order.
func (t *Tree) Nodes() []*Node {
	if t.Root == nil {
		return nil
	}
	out := make([]*Node, 0, 32)
	t.Root.Walk(func(n *Node) bool { out = append(out, n); return true })
	return out
}

// MaxDepth returns the depth of the deepest node (root = 1).
func (t *Tree) MaxDepth() int {
	if t.Root == nil {
		return 0
	}
	max := 0
	var rec func(n *Node, d int)
	rec = func(n *Node, d int) {
		if d > max {
			max = d
		}
		for _, c := range n.Children {
			rec(c, d+1)
		}
	}
	rec(t.Root, 1)
	return max
}

// Validate checks structural invariants: parent pointers are consistent,
// every leaf has a word, and every non-leaf has no word.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("tree %d: nil root", t.ID)
	}
	if t.Root.Parent != nil {
		return fmt.Errorf("tree %d: root has a parent", t.ID)
	}
	var err error
	t.Root.Walk(func(n *Node) bool {
		if err != nil {
			return false
		}
		if n.Tag == "" {
			err = fmt.Errorf("tree %d: node with empty tag", t.ID)
			return false
		}
		if n.IsLeaf() && n.Word == "" {
			err = fmt.Errorf("tree %d: leaf %q without word", t.ID, n.Tag)
			return false
		}
		if !n.IsLeaf() && n.Word != "" {
			err = fmt.Errorf("tree %d: internal node %q carries word %q", t.ID, n.Tag, n.Word)
			return false
		}
		for _, c := range n.Children {
			if c.Parent != n {
				err = fmt.Errorf("tree %d: broken parent pointer under %q", t.ID, n.Tag)
				return false
			}
		}
		return true
	})
	return err
}

// Corpus is an ordered collection of trees with stable identifiers.
type Corpus struct {
	Trees []*Tree
}

// NewCorpus creates an empty corpus.
func NewCorpus() *Corpus { return &Corpus{} }

// Add appends a tree, assigning it the next tree ID, and returns the tree.
func (c *Corpus) Add(t *Tree) *Tree {
	t.ID = len(c.Trees) + 1
	c.Trees = append(c.Trees, t)
	return t
}

// AddRoot wraps the root in a Tree and adds it.
func (c *Corpus) AddRoot(root *Node) *Tree { return c.Add(NewTree(root)) }

// Len returns the number of trees.
func (c *Corpus) Len() int { return len(c.Trees) }

// NodeCount returns the total number of element nodes across all trees.
func (c *Corpus) NodeCount() int {
	total := 0
	for _, t := range c.Trees {
		total += t.Size()
	}
	return total
}

// WordCount returns the total number of terminals across all trees.
func (c *Corpus) WordCount() int {
	total := 0
	for _, t := range c.Trees {
		for _, n := range t.Nodes() {
			if n.Word != "" {
				total++
			}
		}
	}
	return total
}

// MaxDepth returns the maximum node depth across all trees.
func (c *Corpus) MaxDepth() int {
	max := 0
	for _, t := range c.Trees {
		if d := t.MaxDepth(); d > max {
			max = d
		}
	}
	return max
}

// TagFrequencies returns tag → occurrence count over all element nodes.
func (c *Corpus) TagFrequencies() map[string]int {
	freq := make(map[string]int)
	for _, t := range c.Trees {
		t.Root.Walk(func(n *Node) bool {
			freq[n.Tag]++
			return true
		})
	}
	return freq
}

// TagFreq is a (tag, count) pair used for frequency rankings.
type TagFreq struct {
	Tag   string
	Count int
}

// TopTags returns the k most frequent tags, most frequent first; ties are
// broken alphabetically so the ranking is deterministic.
func (c *Corpus) TopTags(k int) []TagFreq {
	freq := c.TagFrequencies()
	out := make([]TagFreq, 0, len(freq))
	for tag, n := range freq {
		out = append(out, TagFreq{tag, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Tag < out[j].Tag
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Validate validates every tree in the corpus.
func (c *Corpus) Validate() error {
	for _, t := range c.Trees {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}
