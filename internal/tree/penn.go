package tree

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file implements a reader and writer for the Penn Treebank bracketed
// format, the de-facto interchange format for syntactically parsed corpora:
//
//	( (S (NP-SBJ (PRP I)) (VP (VBD saw) (NP (DT the) (NN dog))) (. .)) )
//
// The reader accepts both the outer-wrapper form above (an extra unlabeled
// pair of parentheses around each sentence, as emitted by the Treebank tools)
// and the bare form without it. Tags and words may contain any rune except
// whitespace and parentheses, so Treebank tags such as "-NONE-", "NP-SBJ-1",
// "." and "," round-trip exactly.

// ParseError describes a syntax error in bracketed input.
type ParseError struct {
	Line int    // 1-based line of the offending token
	Msg  string // description of the problem
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("treebank: line %d: %s", e.Line, e.Msg)
}

type pennToken struct {
	kind rune // '(' , ')' or 'a' for an atom
	text string
	line int
}

type pennLexer struct {
	r    *bufio.Reader
	line int
	peek *pennToken
}

func newPennLexer(r io.Reader) *pennLexer {
	return &pennLexer{r: bufio.NewReaderSize(r, 64<<10), line: 1}
}

func (lx *pennLexer) next() (pennToken, error) {
	if lx.peek != nil {
		t := *lx.peek
		lx.peek = nil
		return t, nil
	}
	for {
		ch, _, err := lx.r.ReadRune()
		if err != nil {
			return pennToken{}, err
		}
		switch ch {
		case '\n':
			lx.line++
		case ' ', '\t', '\r', '\f', '\v':
			// skip
		case '(', ')':
			return pennToken{kind: ch, line: lx.line}, nil
		default:
			var b strings.Builder
			b.WriteRune(ch)
			for {
				ch, _, err := lx.r.ReadRune()
				if err != nil {
					break
				}
				if ch == '(' || ch == ')' || ch == ' ' || ch == '\t' ||
					ch == '\n' || ch == '\r' || ch == '\f' || ch == '\v' {
					_ = lx.r.UnreadRune()
					break
				}
				b.WriteRune(ch)
			}
			return pennToken{kind: 'a', text: b.String(), line: lx.line}, nil
		}
	}
}

func (lx *pennLexer) unread(t pennToken) { lx.peek = &t }

// Reader parses a stream of bracketed trees.
type Reader struct {
	lx *pennLexer
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{lx: newPennLexer(r)} }

// Read parses and returns the next tree from the stream. It returns io.EOF
// when the input is exhausted.
func (rd *Reader) Read() (*Tree, error) {
	t, err := rd.lx.next()
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, err
	}
	if t.kind != '(' {
		return nil, &ParseError{t.line, fmt.Sprintf("expected '(', found %q", tokenDesc(t))}
	}
	// Distinguish "( (S ...) )" from "(S ...)": if the next token is another
	// '(' the outer pair is an unlabeled wrapper.
	t2, err := rd.lx.next()
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	if t2.kind == '(' {
		rd.lx.unread(t2)
		root, err := rd.parseNode()
		if err != nil {
			return nil, err
		}
		closeTok, err := rd.lx.next()
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		if closeTok.kind != ')' {
			return nil, &ParseError{closeTok.line, "expected ')' closing sentence wrapper"}
		}
		return NewTree(root), nil
	}
	// Bare form: t2 must be the root tag.
	if t2.kind != 'a' {
		return nil, &ParseError{t2.line, "expected tag after '('"}
	}
	root, err := rd.parseBody(t2.text, t2.line)
	if err != nil {
		return nil, err
	}
	return NewTree(root), nil
}

// parseNode parses "(" TAG body ")" and returns the node.
func (rd *Reader) parseNode() (*Node, error) {
	t, err := rd.lx.next()
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	if t.kind != '(' {
		return nil, &ParseError{t.line, fmt.Sprintf("expected '(', found %q", tokenDesc(t))}
	}
	tagTok, err := rd.lx.next()
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	if tagTok.kind != 'a' {
		return nil, &ParseError{tagTok.line, "expected tag after '('"}
	}
	return rd.parseBody(tagTok.text, tagTok.line)
}

// parseBody parses the remainder of a node whose opening "(" TAG has been
// consumed: either a single word (preterminal) or one or more child nodes,
// followed by ")".
func (rd *Reader) parseBody(tag string, line int) (*Node, error) {
	if strings.HasPrefix(tag, "@") {
		// '@'-prefixed names are reserved for attribute rows in the
		// relational store; a constituent tagged that way would collide
		// with the attribute encoding.
		return nil, &ParseError{line, fmt.Sprintf("tag %q: '@' names are reserved for attributes", tag)}
	}
	n := &Node{Tag: tag}
	for {
		t, err := rd.lx.next()
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		switch t.kind {
		case ')':
			if len(n.Children) == 0 && n.Word == "" {
				return nil, &ParseError{t.line, fmt.Sprintf("empty constituent %q", tag)}
			}
			return n, nil
		case '(':
			if n.Word != "" {
				return nil, &ParseError{t.line, fmt.Sprintf("constituent %q mixes word and children", tag)}
			}
			rd.lx.unread(t)
			child, err := rd.parseNode()
			if err != nil {
				return nil, err
			}
			n.AddChild(child)
		case 'a':
			if len(n.Children) > 0 {
				return nil, &ParseError{t.line, fmt.Sprintf("constituent %q mixes children and word %q", tag, t.text)}
			}
			if n.Word != "" {
				return nil, &ParseError{t.line, fmt.Sprintf("constituent %q has two words (%q, %q)", tag, n.Word, t.text)}
			}
			n.Word = t.text
		}
	}
}

func tokenDesc(t pennToken) string {
	switch t.kind {
	case '(':
		return "("
	case ')':
		return ")"
	default:
		return t.text
	}
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return &ParseError{0, "unexpected end of input"}
	}
	return err
}

// ReadAll parses every tree in the stream into a fresh corpus.
func ReadAll(r io.Reader) (*Corpus, error) {
	rd := NewReader(r)
	c := NewCorpus()
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return c, nil
		}
		if err != nil {
			return nil, err
		}
		c.Add(t)
	}
}

// ParseTree parses a single bracketed tree from a string.
func ParseTree(s string) (*Tree, error) {
	rd := NewReader(strings.NewReader(s))
	t, err := rd.Read()
	if err == io.EOF {
		return nil, &ParseError{1, "empty input"}
	}
	if err != nil {
		return nil, err
	}
	return t, nil
}

// MustParseTree is ParseTree panicking on error; for tests and examples.
func MustParseTree(s string) *Tree {
	t, err := ParseTree(s)
	if err != nil {
		panic(err)
	}
	return t
}

func writeNode(b *strings.Builder, n *Node) {
	b.WriteByte('(')
	b.WriteString(n.Tag)
	if n.Word != "" {
		b.WriteByte(' ')
		b.WriteString(n.Word)
	}
	for _, c := range n.Children {
		b.WriteByte(' ')
		writeNode(b, c)
	}
	b.WriteByte(')')
}

// Write writes the tree to w in single-line bracketed form with the standard
// sentence wrapper, followed by a newline.
func Write(w io.Writer, t *Tree) error {
	var b strings.Builder
	b.WriteString("( ")
	writeNode(&b, t.Root)
	b.WriteString(" )\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteAll writes every tree of the corpus to w.
func WriteAll(w io.Writer, c *Corpus) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	for _, t := range c.Trees {
		if err := Write(bw, t); err != nil {
			return err
		}
	}
	return bw.Flush()
}
