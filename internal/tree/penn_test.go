package tree

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseTreeBare(t *testing.T) {
	tr, err := ParseTree("(S (NP I) (VP (V saw) (NP (Det the) (N dog))))")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Tag != "S" {
		t.Errorf("root = %q", tr.Root.Tag)
	}
	if got := strings.Join(tr.Root.Words(), " "); got != "I saw the dog" {
		t.Errorf("words = %q", got)
	}
}

func TestParseTreeWrapped(t *testing.T) {
	tr, err := ParseTree("( (S (NP-SBJ (PRP I)) (VP (VBD saw) (NP (DT the) (NN dog))) (. .)) )")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Tag != "S" {
		t.Errorf("root = %q", tr.Root.Tag)
	}
	if got := len(tr.Root.Children); got != 3 {
		t.Fatalf("root children = %d", got)
	}
	if tr.Root.Children[2].Tag != "." || tr.Root.Children[2].Word != "." {
		t.Errorf("punctuation node = (%s %s)", tr.Root.Children[2].Tag, tr.Root.Children[2].Word)
	}
}

func TestParseTreebankTags(t *testing.T) {
	// Tags with hyphens, leading hyphens and digits must survive.
	tr, err := ParseTree("(S (NP-SBJ-1 (-NONE- *T*-1)) (ADVP-LOC-CLR (RB here)))")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Children[0].Tag != "NP-SBJ-1" {
		t.Errorf("tag = %q", tr.Root.Children[0].Tag)
	}
	none := tr.Root.Children[0].Children[0]
	if none.Tag != "-NONE-" || none.Word != "*T*-1" {
		t.Errorf("trace node = (%s %s)", none.Tag, none.Word)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"unbalanced open", "(S (NP I)"},
		{"no open", "S NP)"},
		{"empty constituent", "(S (NP))"},
		{"word then child", "(S foo (NP I))"},
		{"child then word", "(S (NP I) foo)"},
		{"two words", "(NP the dog)"},
		{"bad wrapper", "( (S (NP I)) extra )"},
		{"empty input", ""},
		{"missing tag", "((I))"},
		{"reserved attribute tag", "(S (@ 0))"},
		{"reserved attribute root", "(@lex (N 0))"},
	}
	for _, tc := range cases {
		if _, err := ParseTree(tc.input); err == nil {
			t.Errorf("%s: expected error for %q", tc.name, tc.input)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := ParseTree("(S\n(NP\n I) (NP))")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("expected *ParseError, got %T (%v)", err, err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Errorf("error text = %q", pe.Error())
	}
}

func TestReaderStream(t *testing.T) {
	input := "( (S (NP a)) )\n( (S (NP b)) )\n(S (NP c))\n"
	rd := NewReader(strings.NewReader(input))
	var words []string
	for {
		tr, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		words = append(words, tr.Root.Words()...)
	}
	if got := strings.Join(words, ""); got != "abc" {
		t.Errorf("stream words = %q, want abc", got)
	}
}

func TestReadAll(t *testing.T) {
	input := "( (S (NP a)) )( (S (NP b)) )"
	c, err := ReadAll(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Trees[0].ID != 1 || c.Trees[1].ID != 2 {
		t.Errorf("IDs = %d, %d", c.Trees[0].ID, c.Trees[1].ID)
	}
}

func TestRoundTripFigure1(t *testing.T) {
	tr := Figure1()
	var sb strings.Builder
	if err := Write(&sb, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTree(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.Root.String() != tr.Root.String() {
		t.Errorf("round trip mismatch:\n in: %s\nout: %s", tr.Root, back.Root)
	}
}

// randomTree builds a random well-formed tree for property tests.
func randomTree(rng *rand.Rand, maxDepth int) *Node {
	tags := []string{"S", "NP", "VP", "PP", "ADJP", "X-1", "-NONE-"}
	words := []string{"a", "dog", "saw", "*T*-1", "ran", "x"}
	var build func(depth int) *Node
	build = func(depth int) *Node {
		n := &Node{Tag: tags[rng.Intn(len(tags))]}
		if depth >= maxDepth || rng.Intn(3) == 0 {
			n.Word = words[rng.Intn(len(words))]
			return n
		}
		kids := 1 + rng.Intn(3)
		for i := 0; i < kids; i++ {
			n.AddChild(build(depth + 1))
		}
		return n
	}
	return build(1)
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTree(randomTree(rng, 6))
		if err := tr.Validate(); err != nil {
			t.Logf("invalid random tree: %v", err)
			return false
		}
		var sb strings.Builder
		if err := Write(&sb, tr); err != nil {
			return false
		}
		back, err := ParseTree(sb.String())
		if err != nil {
			t.Logf("parse back failed: %v", err)
			return false
		}
		return back.Root.String() == tr.Root.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWriteAll(t *testing.T) {
	c := NewCorpus()
	c.Add(Figure1())
	c.Add(MustParseTree("(S (NP me) (VP (V ran)))"))
	var sb strings.Builder
	if err := WriteAll(&sb, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round-trip corpus has %d trees", back.Len())
	}
	if back.NodeCount() != c.NodeCount() {
		t.Errorf("node count %d != %d", back.NodeCount(), c.NodeCount())
	}
}
