package tree

import (
	"strings"
	"testing"
)

func TestFigure1Structure(t *testing.T) {
	tr := Figure1()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(tr.Root.Words(), " "); got != Figure1Sentence {
		t.Errorf("words = %q, want %q", got, Figure1Sentence)
	}
	if got := tr.Root.Tag; got != "S" {
		t.Errorf("root tag = %q, want S", got)
	}
	if got := len(tr.Root.Children); got != 3 {
		t.Fatalf("root has %d children, want 3", got)
	}
	tags := []string{}
	for _, c := range tr.Root.Children {
		tags = append(tags, c.Tag)
	}
	want := []string{"NP", "VP", "N"}
	for i := range want {
		if tags[i] != want[i] {
			t.Errorf("root child %d tag = %q, want %q", i, tags[i], want[i])
		}
	}
	if got := tr.Size(); got != 15 {
		t.Errorf("size = %d, want 15", got)
	}
	if got := tr.MaxDepth(); got != 6 {
		t.Errorf("max depth = %d, want 6", got)
	}
}

func TestNodeNavigation(t *testing.T) {
	tr := Figure1()
	vp := tr.Root.Children[1]
	if vp.Tag != "VP" {
		t.Fatalf("expected VP, got %q", vp.Tag)
	}
	v := vp.Children[0]
	if v.Tag != "V" || v.Word != "saw" {
		t.Fatalf("expected (V saw), got (%s %s)", v.Tag, v.Word)
	}
	if sib := v.NextSibling(); sib == nil || sib.Tag != "NP" {
		t.Errorf("V next sibling: got %v", sib)
	}
	if sib := v.PrevSibling(); sib != nil {
		t.Errorf("V prev sibling should be nil, got %v", sib)
	}
	np := v.NextSibling()
	if sib := np.NextSibling(); sib != nil {
		t.Errorf("object NP next sibling should be nil, got %v", sib)
	}
	if got := v.Depth(); got != 3 {
		t.Errorf("V depth = %d, want 3", got)
	}
	if v.Root() != tr.Root {
		t.Error("Root() did not reach the tree root")
	}
	if !tr.Root.IsAncestorOf(v) {
		t.Error("root should be ancestor of V")
	}
	if v.IsAncestorOf(tr.Root) {
		t.Error("V must not be ancestor of root")
	}
	if v.IsAncestorOf(v) {
		t.Error("IsAncestorOf must be irreflexive")
	}
	if got := np.LeftmostLeaf().Word; got != "the" {
		t.Errorf("object NP leftmost leaf = %q, want \"the\"", got)
	}
	if got := np.RightmostLeaf().Word; got != "dog" {
		t.Errorf("object NP rightmost leaf = %q, want \"dog\"", got)
	}
	if got := v.ChildIndex(); got != 0 {
		t.Errorf("V child index = %d, want 0", got)
	}
	if got := tr.Root.ChildIndex(); got != -1 {
		t.Errorf("root child index = %d, want -1", got)
	}
}

func TestAttributes(t *testing.T) {
	n := &Node{Tag: "V", Word: "saw"}
	if v, ok := n.Attr("lex"); !ok || v != "saw" {
		t.Errorf("Attr(lex) = %q, %v", v, ok)
	}
	if v, ok := n.Attr("@lex"); !ok || v != "saw" {
		t.Errorf("Attr(@lex) = %q, %v", v, ok)
	}
	if _, ok := n.Attr("pos"); ok {
		t.Error("Attr(pos) should be absent")
	}
	n.SetAttr("pos", "VBD")
	if v, ok := n.Attr("pos"); !ok || v != "VBD" {
		t.Errorf("Attr(pos) = %q, %v after SetAttr", v, ok)
	}
	n.SetAttr("@lex", "seen")
	if n.Word != "seen" {
		t.Errorf("SetAttr(@lex) did not update Word: %q", n.Word)
	}
	names := n.AttrNames()
	if len(names) != 2 || names[0] != "@lex" || names[1] != "@pos" {
		t.Errorf("AttrNames = %v", names)
	}
	empty := &Node{Tag: "NP"}
	if _, ok := empty.Attr("lex"); ok {
		t.Error("phrasal node should have no @lex")
	}
}

func TestLeavesAndWords(t *testing.T) {
	tr := Figure1()
	leaves := tr.Root.Leaves()
	if len(leaves) != 9 {
		t.Fatalf("got %d leaves, want 9", len(leaves))
	}
	want := strings.Fields(Figure1Sentence)
	for i, l := range leaves {
		if l.Word != want[i] {
			t.Errorf("leaf %d = %q, want %q", i, l.Word, want[i])
		}
	}
}

func TestWalkPrune(t *testing.T) {
	tr := Figure1()
	var visited []string
	tr.Root.Walk(func(n *Node) bool {
		visited = append(visited, n.Tag)
		return n.Tag != "VP" // prune below VP
	})
	for _, tag := range visited {
		if tag == "V" {
			t.Fatal("walk descended into pruned VP subtree")
		}
	}
	if len(visited) != 4 { // S, NP, VP, N
		t.Errorf("visited %d nodes, want 4 (%v)", len(visited), visited)
	}
}

func TestCorpusBasics(t *testing.T) {
	c := NewCorpus()
	t1 := c.Add(Figure1())
	t2 := c.AddRoot(MustParseTree("(S (NP me) (VP (V ran)))").Root)
	if t1.ID != 1 || t2.ID != 2 {
		t.Errorf("tree IDs = %d, %d; want 1, 2", t1.ID, t2.ID)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if got := c.NodeCount(); got != 15+4 {
		t.Errorf("NodeCount = %d, want 19", got)
	}
	if got := c.WordCount(); got != 9+2 {
		t.Errorf("WordCount = %d, want 11", got)
	}
	if got := c.MaxDepth(); got != 6 {
		t.Errorf("MaxDepth = %d, want 6", got)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestTopTags(t *testing.T) {
	c := NewCorpus()
	c.Add(Figure1())
	top := c.TopTags(3)
	if len(top) != 3 {
		t.Fatalf("TopTags(3) returned %d entries", len(top))
	}
	if top[0].Tag != "NP" || top[0].Count != 4 {
		t.Errorf("top tag = %+v, want NP×4", top[0])
	}
	if top[1].Tag != "N" || top[1].Count != 3 {
		t.Errorf("second tag = %+v, want N×3", top[1])
	}
	if top[2].Tag != "Det" || top[2].Count != 2 {
		t.Errorf("third tag = %+v, want Det×2", top[2])
	}
	all := c.TopTags(100)
	if len(all) != len(c.TagFrequencies()) {
		t.Errorf("TopTags(100) should return all %d tags, got %d",
			len(c.TagFrequencies()), len(all))
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		tree *Tree
	}{
		{"nil root", &Tree{}},
		{"leaf without word", NewTree(&Node{Tag: "NP"})},
		{"empty tag", NewTree(&Node{Tag: ""})},
	}
	for _, tc := range cases {
		if err := tc.tree.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
	// Internal node carrying a word.
	bad := &Node{Tag: "NP", Word: "x"}
	bad.AddChild(&Node{Tag: "N", Word: "dog"})
	if err := NewTree(bad).Validate(); err == nil {
		t.Error("internal node with word: expected validation error")
	}
	// Broken parent pointer.
	root := &Node{Tag: "S"}
	child := &Node{Tag: "N", Word: "x"}
	root.Children = append(root.Children, child) // no parent pointer set
	if err := NewTree(root).Validate(); err == nil {
		t.Error("broken parent pointer: expected validation error")
	}
}
