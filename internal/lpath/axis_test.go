package lpath

import "testing"

// TestTable1AxisInventory checks the axis inventory of Table 1: every
// primitive/closure pairing, the abbreviations, and the Core XPath column.
func TestTable1AxisInventory(t *testing.T) {
	closures := map[Axis]Axis{
		AxisDescendant:       AxisChild,
		AxisAncestor:         AxisParent,
		AxisFollowing:        AxisImmediateFollowing,
		AxisPreceding:        AxisImmediatePreceding,
		AxisFollowingSibling: AxisImmediateFollowingSibling,
		AxisPrecedingSibling: AxisImmediatePrecedingSibling,
	}
	for closure, prim := range closures {
		got, ok := closure.Primitive()
		if !ok || got != prim {
			t.Errorf("%s.Primitive() = %s, %v; want %s", closure, got, ok, prim)
		}
	}
	for _, prim := range []Axis{AxisChild, AxisParent, AxisImmediateFollowing,
		AxisImmediatePreceding, AxisImmediateFollowingSibling, AxisImmediatePrecedingSibling} {
		if _, ok := prim.Primitive(); ok {
			t.Errorf("%s should not report a primitive", prim)
		}
	}

	abbrevs := map[Axis]string{
		AxisChild:                     "/",
		AxisParent:                    `\`,
		AxisImmediateFollowing:        "->",
		AxisFollowing:                 "-->",
		AxisImmediatePreceding:        "<-",
		AxisPreceding:                 "<--",
		AxisImmediateFollowingSibling: "=>",
		AxisFollowingSibling:          "==>",
		AxisImmediatePrecedingSibling: "<=",
		AxisPrecedingSibling:          "<==",
		AxisSelf:                      ".",
		AxisAttribute:                 "@",
	}
	for a, want := range abbrevs {
		if got := a.Abbrev(); got != want {
			t.Errorf("%s.Abbrev() = %q, want %q", a, got, want)
		}
	}

	// Core XPath (Table 1's final column): the immediate-* axes are the new
	// primitives, absent from Core XPath; their closures are present.
	notInCore := []Axis{AxisImmediateFollowing, AxisImmediatePreceding,
		AxisImmediateFollowingSibling, AxisImmediatePrecedingSibling,
		AxisFollowingOrSelf, AxisPrecedingOrSelf,
		AxisFollowingSiblingOrSelf, AxisPrecedingSiblingOrSelf}
	for _, a := range notInCore {
		if a.CoreXPath() {
			t.Errorf("%s must not be Core XPath", a)
		}
	}
	inCore := []Axis{AxisChild, AxisDescendant, AxisParent, AxisAncestor,
		AxisFollowing, AxisPreceding, AxisFollowingSibling, AxisPrecedingSibling,
		AxisSelf, AxisAttribute}
	for _, a := range inCore {
		if !a.CoreXPath() {
			t.Errorf("%s should be Core XPath", a)
		}
	}
}

func TestAxisClassification(t *testing.T) {
	horizontals := []Axis{AxisImmediateFollowing, AxisFollowing, AxisFollowingOrSelf,
		AxisImmediatePreceding, AxisPreceding, AxisPrecedingOrSelf,
		AxisImmediateFollowingSibling, AxisFollowingSibling, AxisFollowingSiblingOrSelf,
		AxisImmediatePrecedingSibling, AxisPrecedingSibling, AxisPrecedingSiblingOrSelf}
	verticals := []Axis{AxisChild, AxisDescendant, AxisDescendantOrSelf,
		AxisParent, AxisAncestor, AxisAncestorOrSelf}
	for _, a := range horizontals {
		if !a.IsHorizontal() || a.IsVertical() {
			t.Errorf("%s misclassified", a)
		}
	}
	for _, a := range verticals {
		if !a.IsVertical() || a.IsHorizontal() {
			t.Errorf("%s misclassified", a)
		}
	}
	for _, a := range []Axis{AxisSelf, AxisAttribute} {
		if a.IsVertical() || a.IsHorizontal() {
			t.Errorf("%s misclassified", a)
		}
	}
}

func TestAxisStrings(t *testing.T) {
	if AxisImmediateFollowing.String() != "immediate-following" {
		t.Errorf("String = %q", AxisImmediateFollowing.String())
	}
	if Axis(999).String() != "unknown-axis" {
		t.Errorf("unknown axis String = %q", Axis(999).String())
	}
	// Every named axis round-trips through axisByName.
	for a, name := range axisNames {
		if axisByName[name] != a {
			t.Errorf("axisByName[%q] = %v, want %v", name, axisByName[name], a)
		}
	}
}
