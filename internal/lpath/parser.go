package lpath

import "fmt"

// Parse parses an LPath query and returns its syntax tree.
//
// The grammar follows Figure 4 of the paper:
//
//	RLP  ::= HP | HP '{' RLP '}'
//	HP   ::= ε | S HP
//	S    ::= A ['^'] NodeTest ['$'] Predicate*
//	A    ::= '/' | '//' | '\' | '\\' | '.' | '@'
//	       | '->' | '-->' | '<-' | '<--'
//	       | '=>' | '==>' | '<=' | '<=='
//	       | '/' AxisName '::' | '\' AxisName '::'
//
// plus predicates [expr] where expr is a boolean combination (and, or,
// not(...)) of relative paths and comparisons path = literal / path != literal.
func Parse(query string) (*Path, error) {
	p := &parser{lx: newLexer(query)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errHere("unexpected %s after end of path", p.tok.kind)
	}
	if len(path.Steps) == 0 && path.Scoped == nil {
		return nil, p.errHere("empty query")
	}
	return path, nil
}

// MustParse is Parse panicking on error; for tests and examples.
func MustParse(query string) *Path {
	p, err := Parse(query)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errHere(format string, args ...any) error {
	return &SyntaxError{Query: p.lx.src, Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) error {
	if p.tok.kind != k {
		return p.errHere("expected %s, found %s", k, p.tok.kind)
	}
	return p.advance()
}

// axisStarters maps tokens that begin a step directly to their axis.
var axisStarters = map[tokenKind]Axis{
	tokSlashSlash: AxisDescendant,
	tokSlash:      AxisChild,
	tokBackslash:  AxisParent,
	tokBackslash2: AxisAncestor,
	tokDot:        AxisSelf,
	tokAt:         AxisAttribute,
	tokArrow:      AxisImmediateFollowing,
	tokDArrow:     AxisFollowing,
	tokLArrow:     AxisImmediatePreceding,
	tokDLArrow:    AxisPreceding,
	tokFatArrow:   AxisImmediateFollowingSibling,
	tokDFatArrow:  AxisFollowingSibling,
	tokLFatArrow:  AxisImmediatePrecedingSibling,
	tokDLFatArrow: AxisPrecedingSibling,
}

// parsePath parses a relative location path: zero or more steps optionally
// followed by a braced scoped tail.
func (p *parser) parsePath() (*Path, error) {
	path := &Path{}
	for {
		if _, ok := axisStarters[p.tok.kind]; ok {
			step, err := p.parseStep()
			if err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, *step)
			continue
		}
		if p.tok.kind == tokLBrace {
			if err := p.advance(); err != nil {
				return nil, err
			}
			inner, err := p.parsePath()
			if err != nil {
				return nil, err
			}
			if len(inner.Steps) == 0 && inner.Scoped == nil {
				return nil, p.errHere("empty scope {}")
			}
			if err := p.expect(tokRBrace); err != nil {
				return nil, err
			}
			path.Scoped = inner
		}
		return path, nil
	}
}

// parseStep parses one location step; the current token is the axis starter.
func (p *parser) parseStep() (*Step, error) {
	axis := axisStarters[p.tok.kind]
	axisTok := p.tok.kind
	if err := p.advance(); err != nil {
		return nil, err
	}

	// Long axis form: '/' name '::' or '\' name '::'.
	if (axisTok == tokSlash || axisTok == tokBackslash) && p.tok.kind == tokName {
		if named, ok := axisByName[p.tok.text]; ok {
			savedName := p.tok
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind == tokAxisSep {
				if axisTok == tokBackslash && named != AxisAncestor && named != AxisAncestorOrSelf && named != AxisParent {
					return nil, p.errHere(`axis %s may not follow '\'`, named)
				}
				axis = named
				if err := p.advance(); err != nil {
					return nil, err
				}
				return p.parseStepRest(axis)
			}
			// Not an axis name after all: it was the node test.
			return p.parseStepRestWithTest(axis, savedName.text)
		}
	}
	return p.parseStepRest(axis)
}

// parseStepRest parses [^] NodeTest [$] Predicate* for the given axis.
func (p *parser) parseStepRest(axis Axis) (*Step, error) {
	step := &Step{Axis: axis}
	if p.tok.kind == tokCaret {
		step.LeftAlign = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	switch {
	case axis == AxisSelf && p.tok.kind != tokName && p.tok.kind != tokUnderscore && p.tok.kind != tokString:
		// Bare '.' — self with implicit wildcard.
		step.Test = "_"
	case p.tok.kind == tokName || p.tok.kind == tokString:
		step.Test = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	case p.tok.kind == tokUnderscore:
		step.Test = "_"
		if err := p.advance(); err != nil {
			return nil, err
		}
	default:
		return nil, p.errHere("expected node test, found %s", p.tok.kind)
	}
	if axis == AxisAttribute && step.Test == "_" {
		return nil, p.errHere("attribute axis requires an attribute name")
	}
	return p.finishStep(step)
}

// parseStepRestWithTest continues a step whose node test has already been
// consumed (disambiguation of long axis names).
func (p *parser) parseStepRestWithTest(axis Axis, test string) (*Step, error) {
	step := &Step{Axis: axis, Test: test}
	return p.finishStep(step)
}

func (p *parser) finishStep(step *Step) (*Step, error) {
	if p.tok.kind == tokDollar {
		step.RightAlign = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	for p.tok.kind == tokLBracket {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		step.Preds = append(step.Preds, e)
	}
	return step, nil
}

func (p *parser) parseOrExpr() (Expr, error) {
	l, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokName && p.tok.text == "or" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		l = &OrExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAndExpr() (Expr, error) {
	l, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokName && p.tok.text == "and" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		l = &AndExpr{L: l, R: r}
	}
	return l, nil
}

// cmpOps maps comparison tokens to their operator spelling; tokLFatArrow
// (the immediate-preceding-sibling axis) doubles as <= in comparison
// position.
var cmpOps = map[tokenKind]string{
	tokEq: "=", tokNeq: "!=", tokLT: "<", tokGT: ">", tokGE: ">=",
	tokLFatArrow: "<=",
}

func (p *parser) parseUnaryExpr() (Expr, error) {
	if p.tok.kind == tokName {
		switch p.tok.text {
		case "position":
			return p.parsePositionExpr()
		case "last":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			if err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return &LastExpr{}, nil
		case "count":
			return p.parseCountExpr()
		case "contains", "starts-with", "ends-with":
			return p.parseStrFnExpr(p.tok.text)
		}
		// A bare integer is positional shorthand: [3] = [position()=3].
		if n, ok := atoiName(p.tok.text); ok {
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &PositionExpr{Op: "=", Value: n}, nil
		}
	}
	if p.tok.kind == tokName && p.tok.text == "not" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		inner, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &NotExpr{X: inner}, nil
	}
	if p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parsePathExpr()
}

// atoiName converts a name token consisting solely of digits.
func atoiName(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// parseCmpOp consumes a comparison operator token.
func (p *parser) parseCmpOp() (string, error) {
	op, ok := cmpOps[p.tok.kind]
	if !ok {
		return "", p.errHere("expected comparison operator, found %s", p.tok.kind)
	}
	return op, p.advance()
}

// parsePositionExpr parses position() Op (INT | last()).
func (p *parser) parsePositionExpr() (Expr, error) {
	if err := p.advance(); err != nil { // position
		return nil, err
	}
	if err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	op, err := p.parseCmpOp()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokName && p.tok.text == "last" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &PositionExpr{Op: op, Last: true}, nil
	}
	if p.tok.kind != tokName {
		return nil, p.errHere("expected integer or last() after position()%s", op)
	}
	n, ok := atoiName(p.tok.text)
	if !ok {
		return nil, p.errHere("expected integer, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return &PositionExpr{Op: op, Value: n}, nil
}

// parseCountExpr parses count(path) Op INT.
func (p *parser) parseCountExpr() (Expr, error) {
	if err := p.advance(); err != nil { // count
		return nil, err
	}
	if err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if len(path.Steps) == 0 && path.Scoped == nil {
		return nil, p.errHere("count() requires a path argument")
	}
	if err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	op, err := p.parseCmpOp()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokName {
		return nil, p.errHere("expected integer after count()%s", op)
	}
	n, ok := atoiName(p.tok.text)
	if !ok {
		return nil, p.errHere("expected integer, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return &CountExpr{Path: path, Op: op, Value: n}, nil
}

// parseStrFnExpr parses fn(path, 'literal') for the string functions.
func (p *parser) parseStrFnExpr(fn string) (Expr, error) {
	if err := p.advance(); err != nil { // fn name
		return nil, err
	}
	if err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if len(path.Steps) == 0 && path.Scoped == nil {
		return nil, p.errHere("%s() requires an attribute path argument", fn)
	}
	if err := p.expect(tokComma); err != nil {
		return nil, err
	}
	if p.tok.kind != tokName && p.tok.kind != tokString {
		return nil, p.errHere("expected literal argument to %s()", fn)
	}
	arg := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return &StrFnExpr{Fn: fn, Path: path, Arg: arg}, nil
}

// parsePathExpr parses a relative path possibly followed by a comparison.
func (p *parser) parsePathExpr() (Expr, error) {
	start := p.tok
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if len(path.Steps) == 0 && path.Scoped == nil {
		return nil, &SyntaxError{Query: p.lx.src, Pos: start.pos,
			Msg: fmt.Sprintf("expected predicate expression, found %s", start.kind)}
	}
	if p.tok.kind == tokEq || p.tok.kind == tokNeq {
		op := "="
		if p.tok.kind == tokNeq {
			op = "!="
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokName && p.tok.kind != tokString {
			return nil, p.errHere("expected literal after %s", op)
		}
		val := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &CmpExpr{Path: path, Op: op, Value: val}, nil
	}
	return &PathExpr{Path: path}, nil
}
