package lpath

// EvalQueries is the 23-query evaluation set of Figure 6(c) in the paper.
// Index 0 is Q1. XPathExpressible marks the 11 queries expressible in XPath
// 1.0, the set used in the labeling-scheme comparison of Figure 10.
var EvalQueries = []struct {
	ID               int
	Text             string
	XPathExpressible bool
}{
	{1, `//S[//_[@lex=saw]]`, true},
	{2, `//VB->NP`, false},
	{3, `//VP/VB-->NN`, false},
	{4, `//VP{/VB-->NN}`, false},
	{5, `//VP{/NP$}`, false},
	{6, `//VP{//NP$}`, false},
	{7, `//VP[{//^VB->NP->PP$}]`, false},
	{8, `//S[//NP/ADJP]`, true},
	{9, `//NP[not(//JJ)]`, true},
	{10, `//NP[->PP[//IN[@lex=of]]=>VP]`, false},
	{11, `//S[{//_[@lex=what]->_[@lex=building]}]`, false},
	{12, `//_[@lex=rapprochement]`, true},
	{13, `//_[@lex=1929]`, true},
	{14, `//ADVP-LOC-CLR`, true},
	{15, `//WHPP`, true},
	{16, `//RRC/PP-TMP`, true},
	{17, `//UCP-PRD/ADJP-PRD`, true},
	{18, `//NP/NP/NP/NP/NP`, true},
	{19, `//VP/VP/VP`, true},
	{20, `//PP=>SBAR`, false},
	{21, `//ADVP=>ADJP`, false},
	{22, `//NP=>NP=>NP`, false},
	{23, `//VP=>VP`, false},
}
