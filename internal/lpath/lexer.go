package lpath

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind identifies the lexical class of a token.
type tokenKind int

const (
	tokEOF        tokenKind = iota
	tokName                 // tag name, attribute name, bare literal value
	tokString               // quoted literal
	tokSlashSlash           // //
	tokSlash                // /
	tokBackslash            // \
	tokBackslash2           // \\
	tokDot                  // .
	tokAt                   // @
	tokAxisSep              // ::
	tokArrow                // ->
	tokDArrow               // -->
	tokLArrow               // <-
	tokDLArrow              // <--
	tokFatArrow             // =>
	tokDFatArrow            // ==>
	tokLFatArrow            // <=
	tokDLFatArrow           // <==
	tokLBrace               // {
	tokRBrace               // }
	tokLBracket             // [
	tokRBracket             // ]
	tokLParen               // (
	tokRParen               // )
	tokCaret                // ^
	tokDollar               // $
	tokEq                   // =
	tokNeq                  // !=
	tokUnderscore           // _
	tokComma                // , (function argument separator)
	tokLT                   // <  (comparison)
	tokGT                   // >  (comparison)
	tokGE                   // >= (comparison; <= is tokLFatArrow, disambiguated by the parser)
)

var tokenKindNames = map[tokenKind]string{
	tokEOF: "end of query", tokName: "name", tokString: "string",
	tokSlashSlash: "//", tokSlash: "/", tokBackslash: `\`, tokBackslash2: `\\`,
	tokDot: ".", tokAt: "@", tokAxisSep: "::",
	tokArrow: "->", tokDArrow: "-->", tokLArrow: "<-", tokDLArrow: "<--",
	tokFatArrow: "=>", tokDFatArrow: "==>", tokLFatArrow: "<=", tokDLFatArrow: "<==",
	tokLBrace: "{", tokRBrace: "}", tokLBracket: "[", tokRBracket: "]",
	tokLParen: "(", tokRParen: ")", tokCaret: "^", tokDollar: "$",
	tokEq: "=", tokNeq: "!=", tokUnderscore: "_",
	tokComma: ",", tokLT: "<", tokGT: ">", tokGE: ">=",
}

func (k tokenKind) String() string {
	if s, ok := tokenKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

type token struct {
	kind tokenKind
	text string // for tokName / tokString
	pos  int    // byte offset in the query
}

// SyntaxError reports an LPath lexical or syntactic error with its position.
type SyntaxError struct {
	Query string
	Pos   int
	Msg   string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("lpath: %s at offset %d in %q", e.Msg, e.Pos, e.Query)
}

type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (lx *lexer) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Query: lx.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// isNameStart reports whether r can begin a name token. '-' is handled
// separately because of the -> and --> operators.
func isNameStart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '*' || r == '+' || r == '#'
}

// isNameRune reports whether r can continue a name token (except '-', which
// needs lookahead).
func isNameRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) ||
		r == '*' || r == '+' || r == '#' || r == '\''
}

// next scans and returns the next token.
func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.pos++
			continue
		}
		break
	}
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: lx.pos}, nil
	}
	start := lx.pos
	rest := lx.src[lx.pos:]
	emit := func(k tokenKind, n int) (token, error) {
		lx.pos += n
		return token{kind: k, pos: start}, nil
	}
	switch {
	case strings.HasPrefix(rest, "//"):
		return emit(tokSlashSlash, 2)
	case strings.HasPrefix(rest, "/"):
		return emit(tokSlash, 1)
	case strings.HasPrefix(rest, `\\`):
		return emit(tokBackslash2, 2)
	case strings.HasPrefix(rest, `\`):
		return emit(tokBackslash, 1)
	case strings.HasPrefix(rest, "::"):
		return emit(tokAxisSep, 2)
	case strings.HasPrefix(rest, "-->"):
		return emit(tokDArrow, 3)
	case strings.HasPrefix(rest, "->"):
		return emit(tokArrow, 2)
	case strings.HasPrefix(rest, "<--"):
		return emit(tokDLArrow, 3)
	case strings.HasPrefix(rest, "<-"):
		return emit(tokLArrow, 2)
	case strings.HasPrefix(rest, "<=="):
		return emit(tokDLFatArrow, 3)
	case strings.HasPrefix(rest, "<="):
		return emit(tokLFatArrow, 2)
	case strings.HasPrefix(rest, "==>"):
		return emit(tokDFatArrow, 3)
	case strings.HasPrefix(rest, "=>"):
		return emit(tokFatArrow, 2)
	case strings.HasPrefix(rest, "!="):
		return emit(tokNeq, 2)
	case strings.HasPrefix(rest, ">="):
		return emit(tokGE, 2)
	case strings.HasPrefix(rest, "<"):
		// Every multi-character <-operator was tried above; a bare '<' is
		// the numeric comparison.
		return emit(tokLT, 1)
	case strings.HasPrefix(rest, ">"):
		return emit(tokGT, 1)
	}
	switch rest[0] {
	case '=':
		return emit(tokEq, 1)
	case ',':
		return emit(tokComma, 1)
	case '.':
		return emit(tokDot, 1)
	case '@':
		return emit(tokAt, 1)
	case '{':
		return emit(tokLBrace, 1)
	case '}':
		return emit(tokRBrace, 1)
	case '[':
		return emit(tokLBracket, 1)
	case ']':
		return emit(tokRBracket, 1)
	case '(':
		return emit(tokLParen, 1)
	case ')':
		return emit(tokRParen, 1)
	case '^':
		return emit(tokCaret, 1)
	case '$':
		return emit(tokDollar, 1)
	case '\'', '"':
		return lx.scanString(rune(rest[0]))
	}
	r, _ := utf8.DecodeRuneInString(rest)
	if r == '_' {
		// '_' alone is the wildcard; '_' followed by a name rune begins a
		// name (tags with underscores are uncommon but legal).
		nr, _ := utf8.DecodeRuneInString(rest[1:])
		if len(rest) == 1 || !(isNameRune(nr) || nr == '_') {
			return emit(tokUnderscore, 1)
		}
		return lx.scanName()
	}
	if isNameStart(r) || r == '-' {
		return lx.scanName()
	}
	return token{}, lx.errf(start, "unexpected character %q", r)
}

// scanName scans a name. A '-' is included in the name unless it begins the
// -> or --> operator, so Treebank tags such as NP-SBJ, -NONE- and -DFL-
// lex as single names while VB->NP still splits at the arrow.
func (lx *lexer) scanName() (token, error) {
	start := lx.pos
	for lx.pos < len(lx.src) {
		r, sz := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if isNameRune(r) || r == '_' {
			lx.pos += sz
			continue
		}
		if r == '-' {
			tail := lx.src[lx.pos:]
			if strings.HasPrefix(tail, "->") || strings.HasPrefix(tail, "-->") {
				break
			}
			lx.pos += sz
			continue
		}
		break
	}
	if lx.pos == start {
		return token{}, lx.errf(start, "empty name")
	}
	return token{kind: tokName, text: lx.src[start:lx.pos], pos: start}, nil
}

// scanString scans a quoted literal delimited by quote; a doubled quote
// escapes itself, as in SQL.
func (lx *lexer) scanString(quote rune) (token, error) {
	start := lx.pos
	lx.pos++ // opening quote
	var b strings.Builder
	for lx.pos < len(lx.src) {
		r, sz := utf8.DecodeRuneInString(lx.src[lx.pos:])
		lx.pos += sz
		if r == quote {
			if lx.pos < len(lx.src) {
				nr, nsz := utf8.DecodeRuneInString(lx.src[lx.pos:])
				if nr == quote {
					b.WriteRune(quote)
					lx.pos += nsz
					continue
				}
			}
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		b.WriteRune(r)
	}
	return token{}, lx.errf(start, "unterminated string")
}
