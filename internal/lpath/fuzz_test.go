package lpath

import "testing"

// FuzzParse checks the parser/printer round trip: any string the parser
// accepts must pretty-print to a canonical form that (a) reparses, (b) is a
// fixpoint of printing, and (c) agrees with the original on validation.
// Parsing must never panic, accepted or not.
func FuzzParse(f *testing.F) {
	for _, eq := range EvalQueries {
		f.Add(eq.Text)
	}
	for _, s := range []string{
		`//A{//B{//C}}`, `//A[@x=y][@x!=z]`, `//A[not(//B or //C) and @f]`,
		`//^A->B$`, `//A[count(/B)=2]`, `//A[position()=1]`, `//A[last()=1]`,
		`//A[contains(@lex, 'x')]`, `//A[starts-with(@lex, "y")]`,
		`/A/^_$`, `//_`, `//A<==B`, `//A<--B`, `@lex`, `//A[`, `{}`, `]`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1024 {
			return
		}
		p1, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		s1 := p1.String()
		p2, err := Parse(s1)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", s1, src, err)
		}
		if s2 := p2.String(); s2 != s1 {
			t.Fatalf("printing is not a fixpoint: %q -> %q -> %q", src, s1, s2)
		}
		if (Validate(p1) == nil) != (Validate(p2) == nil) {
			t.Fatalf("validation disagrees across round trip of %q (canonical %q): %v vs %v",
				src, s1, Validate(p1), Validate(p2))
		}
	})
}
