package lpath

import (
	"errors"
	"testing"
)

func TestSplitAttr(t *testing.T) {
	// Pure attribute step: nil head.
	head, attr, err := SplitAttr(MustParse(`@lex`))
	if err != nil || head != nil || attr != "lex" {
		t.Errorf("SplitAttr(@lex) = %v, %q, %v", head, attr, err)
	}
	// Path ending in attribute: head without the attribute step.
	head, attr, err = SplitAttr(MustParse(`//NP/NN@lex`))
	if err != nil || attr != "lex" {
		t.Fatalf("SplitAttr = %v, %q, %v", head, attr, err)
	}
	if len(head.Steps) != 2 || head.Steps[1].Test != "NN" {
		t.Errorf("head = %v", head)
	}
	// No attribute: the path comes back whole.
	p := MustParse(`//NP/NN`)
	head, attr, err = SplitAttr(p)
	if err != nil || attr != "" || head != p {
		t.Errorf("SplitAttr(no attr) = %v, %q, %v", head, attr, err)
	}
	// Scoped path ending in an attribute step.
	head, attr, err = SplitAttr(MustParse(`//VP{//NN@lex}`))
	if err != nil || attr != "lex" {
		t.Fatalf("scoped SplitAttr: %q, %v", attr, err)
	}
	if head.Scoped == nil || len(head.Scoped.Steps) != 1 {
		t.Errorf("scoped head = %v", head)
	}
	// Attribute mid-path is an error.
	if _, _, err := SplitAttr(MustParse(`@lex/NP`)); !errors.Is(err, ErrAttrNotFinal) {
		t.Errorf("mid-path attr err = %v", err)
	}
	// Attribute in the head of a scoped path is an error.
	if _, _, err := SplitAttr(MustParse(`//NP@lex{//NN}`)); !errors.Is(err, ErrAttrNotFinal) {
		t.Errorf("scoped-head attr err = %v", err)
	}
}

func TestValidate(t *testing.T) {
	valid := []string{
		`//NP`,
		`//NP[@lex=dog]`,
		`//NP[@lex]`,
		`//NP[//NN@lex=dog]`,
		`//VP{//NP[@lex!=x]}`,
		`//NP[not(@lex=dog) and //NN]`,
		`//VP[{//NN@lex}]`,
	}
	for _, q := range valid {
		if err := Validate(MustParse(q)); err != nil {
			t.Errorf("Validate(%q) = %v", q, err)
		}
	}
	invalid := []struct {
		query string
		want  error
	}{
		{`//NP@lex`, ErrAttrInMainPath},
		{`//NP@lex/NN`, ErrAttrInMainPath},
		{`//VP{//NP@lex}`, ErrAttrInMainPath},
		{`//NP[@lex/NN]`, ErrAttrNotFinal},
		{`//NP[@lex/NN=dog]`, ErrAttrNotFinal},
		{`//NP[//NN=dog]`, ErrCmpNeedsAttr},
		{`//NP[not(//NN=dog)]`, ErrCmpNeedsAttr},
		{`//NP[//NN or //JJ=x]`, ErrCmpNeedsAttr},
		{`//NP[//VP[@lex/NN]]`, ErrAttrNotFinal},
	}
	for _, tc := range invalid {
		err := Validate(MustParse(tc.query))
		if !errors.Is(err, tc.want) {
			t.Errorf("Validate(%q) = %v, want %v", tc.query, err, tc.want)
		}
	}
}

func TestTokenKindStrings(t *testing.T) {
	known := []tokenKind{tokEOF, tokName, tokSlashSlash, tokArrow, tokDFatArrow, tokCaret}
	for _, k := range known {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
	if got := tokenKind(999).String(); got != "token(999)" {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestPrintQuoting(t *testing.T) {
	// A node test needing quotes round-trips through the printer.
	p := MustParse(`//'weird tag'`)
	printed := p.String()
	p2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse %q: %v", printed, err)
	}
	if p2.Steps[0].Test != "weird tag" {
		t.Errorf("test = %q", p2.Steps[0].Test)
	}
	// Embedded quote.
	p = MustParse(`//_[@lex='it''s']`)
	if !p.Equal(MustParse(p.String())) {
		t.Errorf("quote round trip failed: %q", p.String())
	}
	// A value that looks like an arrow must be quoted on output.
	cmp := &CmpExpr{Path: &Path{Steps: []Step{{Axis: AxisAttribute, Test: "lex"}}}, Op: "=", Value: "a->b"}
	q := &Path{Steps: []Step{{Axis: AxisDescendant, Test: "_", Preds: []Expr{cmp}}}}
	if !q.Equal(MustParse(q.String())) {
		t.Errorf("arrow value round trip failed: %q", q.String())
	}
}

func TestPathEqualNegatives(t *testing.T) {
	base := MustParse(`//NP[//JJ]`)
	different := []string{
		`//NP`,
		`//VP[//JJ]`,
		`//NP[//DT]`,
		`//NP[not(//JJ)]`,
		`//NP[//JJ and //DT]`,
		`//NP[@lex=x]`,
		`//NP{//JJ}`,
		`/NP[//JJ]`,
		`//^NP[//JJ]`,
		`//NP$[//JJ]`,
	}
	for _, q := range different {
		if base.Equal(MustParse(q)) {
			t.Errorf("Equal(%q, %q) should be false", base, q)
		}
	}
	if !base.Equal(MustParse(`//NP[//JJ]`)) {
		t.Error("Equal on identical queries failed")
	}
	var nilPath *Path
	if !nilPath.Equal(nil) {
		t.Error("nil paths should be equal")
	}
	if nilPath.Equal(base) {
		t.Error("nil vs non-nil should differ")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("//(")
}
