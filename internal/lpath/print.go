package lpath

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// String renders the path in LPath surface syntax using the Table 1
// abbreviations. The output re-parses to an equal tree (see the round-trip
// property test).
func (p *Path) String() string {
	var b strings.Builder
	writePath(&b, p)
	return b.String()
}

func writePath(b *strings.Builder, p *Path) {
	for i := range p.Steps {
		writeStep(b, &p.Steps[i])
	}
	if p.Scoped != nil {
		b.WriteByte('{')
		writePath(b, p.Scoped)
		b.WriteByte('}')
	}
}

// writeGlueSafe writes tok, inserting a space first when the builder's last
// byte and tok's first byte would otherwise fuse into an arrow token: a name
// may end in '-' (e.g. -NONE-) and an axis may start with one, and the lexer
// splits names at '-' only before "->"/"-->", so "/-" + "->0" would re-lex as
// the --> axis. Whitespace between tokens is always legal.
func writeGlueSafe(b *strings.Builder, tok string) {
	cur := b.String()
	if len(cur) > 0 && cur[len(cur)-1] == '-' && tok[0] == '-' {
		b.WriteByte(' ')
	}
	b.WriteString(tok)
}

func writeStep(b *strings.Builder, s *Step) {
	if abbr := s.Axis.Abbrev(); abbr != "" {
		writeGlueSafe(b, abbr)
	} else {
		// Long-form-only axes (the or-self closures).
		b.WriteByte('/')
		b.WriteString(s.Axis.String())
		b.WriteString("::")
	}
	if s.LeftAlign {
		b.WriteByte('^')
	}
	switch {
	case s.Axis == AxisSelf && s.Test == "_":
		// bare '.'
	case s.Test == "_":
		b.WriteByte('_')
	default:
		writeName(b, s.Test)
	}
	if s.RightAlign {
		b.WriteByte('$')
	}
	for _, pred := range s.Preds {
		b.WriteByte('[')
		writeExpr(b, pred, false)
		b.WriteByte(']')
	}
}

// writeName writes a node test or literal, quoting it when it would not
// re-lex as a single name token.
func writeName(b *strings.Builder, name string) {
	if lexesAsName(name) {
		writeGlueSafe(b, name)
		return
	}
	b.WriteByte('\'')
	b.WriteString(strings.ReplaceAll(name, "'", "''"))
	b.WriteByte('\'')
}

func lexesAsName(name string) bool {
	if name == "" || name == "_" {
		return false
	}
	for i, r := range name {
		if isNameRune(r) || r == '_' {
			continue
		}
		if r == '-' {
			rest := name[i:]
			if strings.HasPrefix(rest, "->") || strings.HasPrefix(rest, "-->") {
				return false
			}
			continue
		}
		return false
	}
	r, _ := utf8.DecodeRuneInString(name)
	return isNameStart(r) || r == '-' || r == '_'
}

func writeExpr(b *strings.Builder, e Expr, parenthesize bool) {
	switch x := e.(type) {
	case *OrExpr:
		if parenthesize {
			b.WriteByte('(')
		}
		writeExpr(b, x.L, needsParens(x.L, e))
		b.WriteString(" or ")
		writeExpr(b, x.R, needsParens(x.R, e))
		if parenthesize {
			b.WriteByte(')')
		}
	case *AndExpr:
		if parenthesize {
			b.WriteByte('(')
		}
		writeExpr(b, x.L, needsParens(x.L, e))
		b.WriteString(" and ")
		writeExpr(b, x.R, needsParens(x.R, e))
		if parenthesize {
			b.WriteByte(')')
		}
	case *NotExpr:
		b.WriteString("not(")
		writeExpr(b, x.X, false)
		b.WriteByte(')')
	case *PathExpr:
		writePath(b, x.Path)
	case *CmpExpr:
		writePath(b, x.Path)
		b.WriteString(x.Op)
		writeName(b, x.Value)
	case *PositionExpr:
		b.WriteString("position()")
		b.WriteString(x.Op)
		if x.Last {
			b.WriteString("last()")
		} else {
			fmt.Fprintf(b, "%d", x.Value)
		}
	case *LastExpr:
		b.WriteString("last()")
	case *CountExpr:
		b.WriteString("count(")
		writePath(b, x.Path)
		b.WriteString(")")
		b.WriteString(x.Op)
		fmt.Fprintf(b, "%d", x.Value)
	case *StrFnExpr:
		b.WriteString(x.Fn)
		b.WriteString("(")
		writePath(b, x.Path)
		b.WriteString(",")
		writeName(b, x.Arg)
		b.WriteString(")")
	}
}

// needsParens reports whether child must be parenthesized inside parent to
// preserve precedence (or binds looser than and).
func needsParens(child, parent Expr) bool {
	_, childOr := child.(*OrExpr)
	_, parentAnd := parent.(*AndExpr)
	return childOr && parentAnd
}

// Equal reports structural equality of two paths.
func (p *Path) Equal(q *Path) bool {
	if (p == nil) != (q == nil) {
		return false
	}
	if p == nil {
		return true
	}
	if len(p.Steps) != len(q.Steps) {
		return false
	}
	for i := range p.Steps {
		if !stepEqual(&p.Steps[i], &q.Steps[i]) {
			return false
		}
	}
	return p.Scoped.Equal(q.Scoped)
}

func stepEqual(a, b *Step) bool {
	if a.Axis != b.Axis || a.Test != b.Test ||
		a.LeftAlign != b.LeftAlign || a.RightAlign != b.RightAlign ||
		len(a.Preds) != len(b.Preds) {
		return false
	}
	for i := range a.Preds {
		if !exprEqual(a.Preds[i], b.Preds[i]) {
			return false
		}
	}
	return true
}

func exprEqual(a, b Expr) bool {
	switch x := a.(type) {
	case *AndExpr:
		y, ok := b.(*AndExpr)
		return ok && exprEqual(x.L, y.L) && exprEqual(x.R, y.R)
	case *OrExpr:
		y, ok := b.(*OrExpr)
		return ok && exprEqual(x.L, y.L) && exprEqual(x.R, y.R)
	case *NotExpr:
		y, ok := b.(*NotExpr)
		return ok && exprEqual(x.X, y.X)
	case *PathExpr:
		y, ok := b.(*PathExpr)
		return ok && x.Path.Equal(y.Path)
	case *CmpExpr:
		y, ok := b.(*CmpExpr)
		return ok && x.Op == y.Op && x.Value == y.Value && x.Path.Equal(y.Path)
	case *PositionExpr:
		y, ok := b.(*PositionExpr)
		return ok && *x == *y
	case *LastExpr:
		_, ok := b.(*LastExpr)
		return ok
	case *CountExpr:
		y, ok := b.(*CountExpr)
		return ok && x.Op == y.Op && x.Value == y.Value && x.Path.Equal(y.Path)
	case *StrFnExpr:
		y, ok := b.(*StrFnExpr)
		return ok && x.Fn == y.Fn && x.Arg == y.Arg && x.Path.Equal(y.Path)
	}
	return false
}
