package lpath

import "errors"

// ErrAttrNotFinal is returned when an attribute step occurs anywhere but the
// final position of a predicate path.
var ErrAttrNotFinal = errors.New("lpath: attribute step must be the final step of a predicate path")

// ErrAttrInMainPath is returned when an attribute step appears in the main
// (result-producing) path; attributes can only be tested in predicates.
var ErrAttrInMainPath = errors.New("lpath: attribute steps are only valid inside predicates")

// ErrCmpNeedsAttr is returned when a comparison's path does not end in an
// attribute step.
var ErrCmpNeedsAttr = errors.New("lpath: comparison requires a path ending in an attribute step")

// SplitAttr splits a predicate path into its element-navigation head and a
// trailing attribute name (without '@'), or "" when the path does not end in
// an attribute step. A nil head means the path consisted solely of the
// attribute step (the attribute is read off the context node). Attribute
// steps in any other position are an error.
func SplitAttr(p *Path) (head *Path, attr string, err error) {
	inner := p
	for inner.Scoped != nil {
		for i := range inner.Steps {
			if inner.Steps[i].Axis == AxisAttribute {
				return nil, "", ErrAttrNotFinal
			}
		}
		inner = inner.Scoped
	}
	n := len(inner.Steps)
	for i := 0; i < n-1; i++ {
		if inner.Steps[i].Axis == AxisAttribute {
			return nil, "", ErrAttrNotFinal
		}
	}
	if n == 0 || inner.Steps[n-1].Axis != AxisAttribute {
		return p, "", nil
	}
	attr = inner.Steps[n-1].Test
	if p == inner && n == 1 && p.Scoped == nil {
		return nil, attr, nil
	}
	return trimLastStep(p), attr, nil
}

// trimLastStep returns a copy of p's spine with the final step of the
// innermost path removed; Step values are shared with the original.
func trimLastStep(p *Path) *Path {
	cp := &Path{Steps: p.Steps}
	if p.Scoped != nil {
		cp.Scoped = trimLastStep(p.Scoped)
		return cp
	}
	cp.Steps = p.Steps[:len(p.Steps)-1]
	return cp
}

// Validate checks semantic constraints that the grammar alone does not
// enforce: attribute steps may not appear in the main path, predicates'
// attribute steps must be final, and comparisons must end in an attribute.
func Validate(p *Path) error {
	return validatePath(p, false)
}

func validatePath(p *Path, inPredicate bool) error {
	paths := []*Path{}
	for q := p; q != nil; q = q.Scoped {
		paths = append(paths, q)
	}
	for pi, q := range paths {
		for si := range q.Steps {
			step := &q.Steps[si]
			if step.Axis == AxisAttribute {
				if !inPredicate {
					return ErrAttrInMainPath
				}
				last := pi == len(paths)-1 && si == len(q.Steps)-1 && paths[len(paths)-1].Scoped == nil
				if !last {
					return ErrAttrNotFinal
				}
			}
			for _, pred := range step.Preds {
				if err := validateExpr(pred); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func validateExpr(e Expr) error {
	switch x := e.(type) {
	case *AndExpr:
		if err := validateExpr(x.L); err != nil {
			return err
		}
		return validateExpr(x.R)
	case *OrExpr:
		if err := validateExpr(x.L); err != nil {
			return err
		}
		return validateExpr(x.R)
	case *NotExpr:
		return validateExpr(x.X)
	case *PathExpr:
		return validatePath(x.Path, true)
	case *CmpExpr:
		if _, attr, err := SplitAttr(x.Path); err != nil {
			return err
		} else if attr == "" {
			return ErrCmpNeedsAttr
		}
		return validatePath(x.Path, true)
	case *PositionExpr, *LastExpr:
		return nil
	case *CountExpr:
		return validatePath(x.Path, true)
	case *StrFnExpr:
		if _, attr, err := SplitAttr(x.Path); err != nil {
			return err
		} else if attr == "" {
			return ErrCmpNeedsAttr
		}
		return validatePath(x.Path, true)
	}
	return nil
}
