package lpath

import "strings"

// ReverseAxis reports whether the axis enumerates candidates in reverse
// document order (nearest first), which is how position() counts for it.
func ReverseAxis(a Axis) bool {
	switch a {
	case AxisParent, AxisAncestor, AxisAncestorOrSelf,
		AxisPreceding, AxisPrecedingOrSelf, AxisImmediatePreceding,
		AxisPrecedingSibling, AxisPrecedingSiblingOrSelf, AxisImmediatePrecedingSibling:
		return true
	}
	return false
}

// InverseAxis returns the axis b such that x is reachable from c along a
// exactly when c is reachable from x along b — the Table 2 label predicates
// are symmetric under this pairing, which is what lets the planner evaluate
// an existential filter in reverse (from the filter's matches back to the
// candidates). The attribute axis has no inverse.
func InverseAxis(a Axis) (Axis, bool) {
	switch a {
	case AxisSelf:
		return AxisSelf, true
	case AxisChild:
		return AxisParent, true
	case AxisParent:
		return AxisChild, true
	case AxisDescendant:
		return AxisAncestor, true
	case AxisAncestor:
		return AxisDescendant, true
	case AxisDescendantOrSelf:
		return AxisAncestorOrSelf, true
	case AxisAncestorOrSelf:
		return AxisDescendantOrSelf, true
	case AxisImmediateFollowing:
		return AxisImmediatePreceding, true
	case AxisImmediatePreceding:
		return AxisImmediateFollowing, true
	case AxisFollowing:
		return AxisPreceding, true
	case AxisPreceding:
		return AxisFollowing, true
	case AxisFollowingOrSelf:
		return AxisPrecedingOrSelf, true
	case AxisPrecedingOrSelf:
		return AxisFollowingOrSelf, true
	case AxisImmediateFollowingSibling:
		return AxisImmediatePrecedingSibling, true
	case AxisImmediatePrecedingSibling:
		return AxisImmediateFollowingSibling, true
	case AxisFollowingSibling:
		return AxisPrecedingSibling, true
	case AxisPrecedingSibling:
		return AxisFollowingSibling, true
	case AxisFollowingSiblingOrSelf:
		return AxisPrecedingSiblingOrSelf, true
	case AxisPrecedingSiblingOrSelf:
		return AxisFollowingSiblingOrSelf, true
	}
	return a, false
}

// CompareInts applies a comparison operator from the function library.
func CompareInts(a int, op string, b int) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

// StrFn applies a string function from the function library to a value.
func StrFn(fn, value, arg string) bool {
	switch fn {
	case "contains":
		return strings.Contains(value, arg)
	case "starts-with":
		return strings.HasPrefix(value, arg)
	case "ends-with":
		return strings.HasSuffix(value, arg)
	}
	return false
}

// HasPositional reports whether any predicate of the step uses position()
// or last() at its own level (nested path predicates have their own
// positional context and do not count).
func (s *Step) HasPositional() bool {
	for _, p := range s.Preds {
		if exprPositional(p) {
			return true
		}
	}
	return false
}

func exprPositional(e Expr) bool {
	switch x := e.(type) {
	case *AndExpr:
		return exprPositional(x.L) || exprPositional(x.R)
	case *OrExpr:
		return exprPositional(x.L) || exprPositional(x.R)
	case *NotExpr:
		return exprPositional(x.X)
	case *PositionExpr, *LastExpr:
		return true
	}
	return false
}
