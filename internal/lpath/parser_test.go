package lpath

import (
	"strings"
	"testing"
)

func TestParseSimpleDescendant(t *testing.T) {
	p := MustParse("//S")
	if len(p.Steps) != 1 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	s := p.Steps[0]
	if s.Axis != AxisDescendant || s.Test != "S" {
		t.Errorf("step = %v %q", s.Axis, s.Test)
	}
}

func TestParseFigure2Queries(t *testing.T) {
	// The LPath column of Figure 2.
	queries := []string{
		`//S[//_[@lex=saw]]`,
		`//V==>NP`,
		`//V->NP`,
		`//VP/V-->N`,
		`//VP{/V-->N}`,
		`//VP{/NP$}`,
		`//VP{//NP$}`,
	}
	for _, q := range queries {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
}

func TestParseEvalQueries(t *testing.T) {
	if len(EvalQueries) != 23 {
		t.Fatalf("eval query set has %d queries, want 23", len(EvalQueries))
	}
	nXPath := 0
	for _, q := range EvalQueries {
		if _, err := Parse(q.Text); err != nil {
			t.Errorf("Q%d %q: %v", q.ID, q.Text, err)
		}
		if q.XPathExpressible {
			nXPath++
		}
	}
	if nXPath != 11 {
		t.Errorf("XPath-expressible count = %d, want 11 (paper Section 5.1.3)", nXPath)
	}
}

func TestParseAxes(t *testing.T) {
	cases := []struct {
		query string
		axis  Axis
		test  string
	}{
		{"/NP", AxisChild, "NP"},
		{"//NP", AxisDescendant, "NP"},
		{`\NP`, AxisParent, "NP"},
		{`\\NP`, AxisAncestor, "NP"},
		{"->NP", AxisImmediateFollowing, "NP"},
		{"-->NP", AxisFollowing, "NP"},
		{"<-NP", AxisImmediatePreceding, "NP"},
		{"<--NP", AxisPreceding, "NP"},
		{"=>NP", AxisImmediateFollowingSibling, "NP"},
		{"==>NP", AxisFollowingSibling, "NP"},
		{"<=NP", AxisImmediatePrecedingSibling, "NP"},
		{"<==NP", AxisPrecedingSibling, "NP"},
		{".NP", AxisSelf, "NP"},
		{"@lex", AxisAttribute, "lex"},
		{"/descendant::NP", AxisDescendant, "NP"},
		{"/descendant-or-self::NP", AxisDescendantOrSelf, "NP"},
		{"/following::NP", AxisFollowing, "NP"},
		{"/following-or-self::NP", AxisFollowingOrSelf, "NP"},
		{"/immediate-following::NP", AxisImmediateFollowing, "NP"},
		{"/preceding-sibling-or-self::NP", AxisPrecedingSiblingOrSelf, "NP"},
		{`\ancestor::NP`, AxisAncestor, "NP"},
		{`\ancestor-or-self::NP`, AxisAncestorOrSelf, "NP"},
		{`\parent::NP`, AxisParent, "NP"},
		{"/self::NP", AxisSelf, "NP"},
	}
	for _, tc := range cases {
		p, err := Parse(tc.query)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.query, err)
			continue
		}
		if len(p.Steps) != 1 {
			t.Errorf("Parse(%q): %d steps", tc.query, len(p.Steps))
			continue
		}
		if p.Steps[0].Axis != tc.axis || p.Steps[0].Test != tc.test {
			t.Errorf("Parse(%q) = %s %q, want %s %q",
				tc.query, p.Steps[0].Axis, p.Steps[0].Test, tc.axis, tc.test)
		}
	}
}

// TestParseAxisNameAsTag ensures tags that collide with axis names still
// parse as node tests when no '::' follows.
func TestParseAxisNameAsTag(t *testing.T) {
	p := MustParse("/descendant")
	if p.Steps[0].Axis != AxisChild || p.Steps[0].Test != "descendant" {
		t.Errorf("got %s %q", p.Steps[0].Axis, p.Steps[0].Test)
	}
	p = MustParse("/self/NP")
	if p.Steps[0].Axis != AxisChild || p.Steps[0].Test != "self" {
		t.Errorf("got %s %q", p.Steps[0].Axis, p.Steps[0].Test)
	}
}

func TestParseHyphenTags(t *testing.T) {
	cases := map[string]string{
		"//NP-SBJ":       "NP-SBJ",
		"//-NONE-":       "-NONE-",
		"//-DFL-":        "-DFL-",
		"//ADVP-LOC-CLR": "ADVP-LOC-CLR",
		"//NP-SBJ-1":     "NP-SBJ-1",
	}
	for q, tag := range cases {
		p, err := Parse(q)
		if err != nil {
			t.Errorf("Parse(%q): %v", q, err)
			continue
		}
		if p.Steps[0].Test != tag {
			t.Errorf("Parse(%q) test = %q, want %q", q, p.Steps[0].Test, tag)
		}
	}
	// The arrow must still split.
	p := MustParse("//VB-->NN")
	if len(p.Steps) != 2 || p.Steps[0].Test != "VB" || p.Steps[1].Axis != AxisFollowing {
		t.Errorf("//VB-->NN parsed wrong: %v", p)
	}
	p = MustParse("//VB->NP")
	if len(p.Steps) != 2 || p.Steps[1].Axis != AxisImmediateFollowing {
		t.Errorf("//VB->NP parsed wrong: %v", p)
	}
}

func TestParseScoping(t *testing.T) {
	p := MustParse("//VP{/VB-->NN}")
	if len(p.Steps) != 1 || p.Scoped == nil {
		t.Fatalf("scoped tail missing: %v", p)
	}
	if len(p.Scoped.Steps) != 2 {
		t.Fatalf("scoped steps = %d", len(p.Scoped.Steps))
	}
	if p.Scoped.Steps[0].Axis != AxisChild || p.Scoped.Steps[1].Axis != AxisFollowing {
		t.Errorf("scoped axes wrong")
	}
	// Nested scopes.
	p = MustParse("//S{//VP{//NP$}}")
	if p.Scoped == nil || p.Scoped.Scoped == nil {
		t.Fatal("nested scope missing")
	}
	if !p.Scoped.Scoped.Steps[0].RightAlign {
		t.Error("inner right alignment lost")
	}
}

func TestParseAlignment(t *testing.T) {
	p := MustParse("//VP{//^VB->NP->PP$}")
	inner := p.Scoped
	if !inner.Steps[0].LeftAlign {
		t.Error("^ lost on first scoped step")
	}
	if !inner.Steps[2].RightAlign {
		t.Error("$ lost on last scoped step")
	}
	if inner.Steps[1].LeftAlign || inner.Steps[1].RightAlign {
		t.Error("middle step must not be aligned")
	}
}

func TestParsePredicates(t *testing.T) {
	p := MustParse(`//S[//_[@lex=saw]]`)
	if len(p.Steps[0].Preds) != 1 {
		t.Fatalf("preds = %d", len(p.Steps[0].Preds))
	}
	pe, ok := p.Steps[0].Preds[0].(*PathExpr)
	if !ok {
		t.Fatalf("pred type %T", p.Steps[0].Preds[0])
	}
	if len(pe.Path.Steps) != 1 || !pe.Path.Steps[0].Wildcard() {
		t.Errorf("pred path = %v", pe.Path)
	}
	inner, ok := pe.Path.Steps[0].Preds[0].(*CmpExpr)
	if !ok {
		t.Fatalf("inner pred type %T", pe.Path.Steps[0].Preds[0])
	}
	if inner.Op != "=" || inner.Value != "saw" {
		t.Errorf("cmp = %s %q", inner.Op, inner.Value)
	}
	if inner.Path.Steps[0].Axis != AxisAttribute || inner.Path.Steps[0].Test != "lex" {
		t.Errorf("cmp path = %v", inner.Path.Steps[0])
	}
}

func TestParseNotAndOr(t *testing.T) {
	p := MustParse(`//NP[not(//JJ)]`)
	if _, ok := p.Steps[0].Preds[0].(*NotExpr); !ok {
		t.Errorf("want NotExpr, got %T", p.Steps[0].Preds[0])
	}
	p = MustParse(`//NP[//JJ and //DT or //NN]`)
	or, ok := p.Steps[0].Preds[0].(*OrExpr)
	if !ok {
		t.Fatalf("want OrExpr at top (and binds tighter), got %T", p.Steps[0].Preds[0])
	}
	if _, ok := or.L.(*AndExpr); !ok {
		t.Errorf("left of or should be AndExpr, got %T", or.L)
	}
	p = MustParse(`//NP[//JJ and (//DT or //NN)]`)
	and, ok := p.Steps[0].Preds[0].(*AndExpr)
	if !ok {
		t.Fatalf("want AndExpr, got %T", p.Steps[0].Preds[0])
	}
	if _, ok := and.R.(*OrExpr); !ok {
		t.Errorf("right of and should be OrExpr, got %T", and.R)
	}
	// not with comparison and != operator.
	p = MustParse(`//NP[not(@lex=dog) and @lex!='cat']`)
	andExpr := p.Steps[0].Preds[0].(*AndExpr)
	cmp := andExpr.R.(*CmpExpr)
	if cmp.Op != "!=" || cmp.Value != "cat" {
		t.Errorf("cmp = %+v", cmp)
	}
}

func TestParseScopedPredicate(t *testing.T) {
	p := MustParse(`//VP[{//^VB->NP->PP$}]`)
	pe, ok := p.Steps[0].Preds[0].(*PathExpr)
	if !ok {
		t.Fatalf("pred type %T", p.Steps[0].Preds[0])
	}
	if len(pe.Path.Steps) != 0 || pe.Path.Scoped == nil {
		t.Fatalf("want empty head + scope, got %v", pe.Path)
	}
	if len(pe.Path.Scoped.Steps) != 3 {
		t.Errorf("scoped steps = %d", len(pe.Path.Scoped.Steps))
	}
}

func TestParseMultiplePredicates(t *testing.T) {
	p := MustParse(`//NP[//JJ][//DT]`)
	if len(p.Steps[0].Preds) != 2 {
		t.Errorf("preds = %d, want 2", len(p.Steps[0].Preds))
	}
}

func TestParseQuotedTest(t *testing.T) {
	p := MustParse(`//'.'`)
	if p.Steps[0].Test != "." {
		t.Errorf("test = %q", p.Steps[0].Test)
	}
	p = MustParse(`//_[@lex='don''t']`)
	cmp := p.Steps[0].Preds[0].(*CmpExpr)
	if cmp.Value != "don't" {
		t.Errorf("value = %q", cmp.Value)
	}
	p = MustParse(`//_[@lex="U.S."]`)
	cmp = p.Steps[0].Preds[0].(*CmpExpr)
	if cmp.Value != "U.S." {
		t.Errorf("value = %q", cmp.Value)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"NP",              // no axis
		"//",              // missing node test
		"//NP[",           // unterminated predicate
		"//NP[]",          // empty predicate
		"//NP[@lex=]",     // missing literal
		"//NP{",           // unterminated scope
		"//NP{}",          // empty scope
		"//NP}",           // stray brace
		"//NP)",           // stray paren
		"//NP[not //JJ]",  // not without parens
		"@_",              // attribute wildcard
		"//NP '",          // unterminated string
		"//NP[//JJ and]",  // dangling and
		"//NP[=saw]",      // comparison without path
		"//NP$$",          // double alignment
		"/following::",    // long axis without test
		`\descendant::NP`, // forward axis after backslash
		"//NP ~ //VP",     // bad character
	}
	for _, q := range cases {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): expected error", q)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("//NP[@lex=]")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("got %T: %v", err, err)
	}
	if se.Query != "//NP[@lex=]" {
		t.Errorf("query = %q", se.Query)
	}
	if !strings.Contains(se.Error(), "offset") {
		t.Errorf("error text = %q", se.Error())
	}
}

func TestRoundTrip(t *testing.T) {
	queries := []string{
		`//S[//_[@lex=saw]]`,
		`//V==>NP`,
		`//VP{/V-->N}`,
		`//VP{//NP$}`,
		`//VP[{//^VB->NP->PP$}]`,
		`//NP[not(//JJ)]`,
		`//NP[->PP[//IN[@lex=of]]=>VP]`,
		`//S[{//_[@lex=what]->_[@lex=building]}]`,
		`//NP/NP/NP/NP/NP`,
		`//NP[//JJ and //DT or //NN]`,
		`//NP[//JJ and (//DT or //NN)]`,
		`\\S/NP<--VP`,
		`/following-or-self::NP`,
		`//_[@lex='U.S.']`,
		`.NP[@lex!=dog]`,
	}
	for _, q := range queries {
		p1, err := Parse(q)
		if err != nil {
			t.Errorf("Parse(%q): %v", q, err)
			continue
		}
		printed := p1.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of %q → %q failed: %v", q, printed, err)
			continue
		}
		if !p1.Equal(p2) {
			t.Errorf("round trip not equal: %q → %q", q, printed)
		}
	}
}

func TestLastStep(t *testing.T) {
	p := MustParse("//VP{/VB-->NN}")
	if got := p.LastStep(); got == nil || got.Test != "NN" {
		t.Errorf("LastStep = %v", got)
	}
	p = MustParse("//VP")
	if got := p.LastStep(); got == nil || got.Test != "VP" {
		t.Errorf("LastStep = %v", got)
	}
	if got := (&Path{}).LastStep(); got != nil {
		t.Errorf("empty LastStep = %v", got)
	}
}
