package lpath

import "testing"

func TestParsePositional(t *testing.T) {
	p := MustParse(`//VP/_[position()=1]`)
	pe, ok := p.Steps[1].Preds[0].(*PositionExpr)
	if !ok || pe.Op != "=" || pe.Value != 1 || pe.Last {
		t.Errorf("pred = %#v", p.Steps[1].Preds[0])
	}
	p = MustParse(`//VP/_[position()=last()]`)
	pe = p.Steps[1].Preds[0].(*PositionExpr)
	if !pe.Last || pe.Op != "=" {
		t.Errorf("pred = %#v", pe)
	}
	p = MustParse(`//VP/_[last()]`)
	if _, ok := p.Steps[1].Preds[0].(*LastExpr); !ok {
		t.Errorf("pred = %#v", p.Steps[1].Preds[0])
	}
	p = MustParse(`//VP/_[3]`)
	pe = p.Steps[1].Preds[0].(*PositionExpr)
	if pe.Op != "=" || pe.Value != 3 {
		t.Errorf("numeric shorthand = %#v", pe)
	}
	for q, op := range map[string]string{
		`//_[position()<3]`:  "<",
		`//_[position()<=3]`: "<=",
		`//_[position()>3]`:  ">",
		`//_[position()>=3]`: ">=",
		`//_[position()!=3]`: "!=",
	} {
		p := MustParse(q)
		pe := p.Steps[0].Preds[0].(*PositionExpr)
		if pe.Op != op || pe.Value != 3 {
			t.Errorf("%s: pred = %#v", q, pe)
		}
	}
}

func TestParseCountAndStrFns(t *testing.T) {
	p := MustParse(`//NP[count(//JJ)>=2]`)
	ce, ok := p.Steps[0].Preds[0].(*CountExpr)
	if !ok || ce.Op != ">=" || ce.Value != 2 || len(ce.Path.Steps) != 1 {
		t.Errorf("count pred = %#v", p.Steps[0].Preds[0])
	}
	p = MustParse(`//_[contains(@lex,'dog')]`)
	se, ok := p.Steps[0].Preds[0].(*StrFnExpr)
	if !ok || se.Fn != "contains" || se.Arg != "dog" {
		t.Errorf("strfn pred = %#v", p.Steps[0].Preds[0])
	}
	p = MustParse(`//_[starts-with(@lex,un)]`)
	se = p.Steps[0].Preds[0].(*StrFnExpr)
	if se.Fn != "starts-with" || se.Arg != "un" {
		t.Errorf("strfn pred = %#v", se)
	}
	p = MustParse(`//NP[ends-with(//NN@lex,'s')]`)
	se = p.Steps[0].Preds[0].(*StrFnExpr)
	if se.Fn != "ends-with" || len(se.Path.Steps) != 2 {
		t.Errorf("strfn pred = %#v", se)
	}
}

func TestParseFunctionErrors(t *testing.T) {
	for _, q := range []string{
		`//_[position()]`,        // missing comparison
		`//_[position()=]`,       // missing operand
		`//_[position()=x]`,      // non-integer
		`//_[position=1]`,        // missing parens
		`//_[count()=1]`,         // empty path
		`//_[count(//NP)=x]`,     // non-integer
		`//_[count(//NP)]`,       // missing comparison
		`//_[contains(@lex)]`,    // missing argument
		`//_[contains(@lex,)]`,   // empty argument
		`//_[contains('a',@x)]`,  // literal in path position
		`//_[last()=2]`,          // last() takes no comparison here
		`//_[ends-with@lex,'s']`, // missing parens
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): expected error", q)
		}
	}
	// Validation: string functions need an attribute path.
	p := MustParse(`//_[contains(//NP,'a')]`)
	if err := Validate(p); err == nil {
		t.Error("contains() without attribute path should fail validation")
	}
}

func TestFunctionRoundTrip(t *testing.T) {
	queries := []string{
		`//VP/_[position()=1]`,
		`//VP/_[position()<=last()]`,
		`//VP/_[last()]`,
		`//NP[count(//JJ)>=2]`,
		`//_[contains(@lex,'x')]`,
		`//_[starts-with(@lex,'a')]`,
		`//NP[ends-with(//NN@lex,'s') and count(/_)=2]`,
	}
	for _, q := range queries {
		p1 := MustParse(q)
		p2, err := Parse(p1.String())
		if err != nil {
			t.Errorf("reparse of %q → %q: %v", q, p1.String(), err)
			continue
		}
		if !p1.Equal(p2) {
			t.Errorf("round trip not equal: %q → %q", q, p1.String())
		}
	}
}

func TestHelpers(t *testing.T) {
	if !ReverseAxis(AxisAncestor) || !ReverseAxis(AxisImmediatePrecedingSibling) {
		t.Error("reverse axes misclassified")
	}
	if ReverseAxis(AxisChild) || ReverseAxis(AxisFollowing) || ReverseAxis(AxisSelf) {
		t.Error("forward axes misclassified")
	}
	cases := []struct {
		a    int
		op   string
		b    int
		want bool
	}{
		{1, "=", 1, true}, {1, "!=", 1, false}, {1, "<", 2, true},
		{2, "<=", 2, true}, {3, ">", 2, true}, {2, ">=", 3, false},
		{1, "??", 1, false},
	}
	for _, tc := range cases {
		if got := CompareInts(tc.a, tc.op, tc.b); got != tc.want {
			t.Errorf("CompareInts(%d %s %d) = %v", tc.a, tc.op, tc.b, got)
		}
	}
	if !StrFn("contains", "abc", "b") || StrFn("contains", "abc", "z") {
		t.Error("contains wrong")
	}
	if !StrFn("starts-with", "abc", "ab") || StrFn("starts-with", "abc", "bc") {
		t.Error("starts-with wrong")
	}
	if !StrFn("ends-with", "abc", "bc") || StrFn("ends-with", "abc", "ab") {
		t.Error("ends-with wrong")
	}
	if StrFn("nope", "a", "a") {
		t.Error("unknown fn should be false")
	}
	// HasPositional detection, including through boolean structure but not
	// through nested paths.
	if !MustParse(`//_[position()=1]`).Steps[0].HasPositional() {
		t.Error("positional not detected")
	}
	if !MustParse(`//_[not(last())]`).Steps[0].HasPositional() {
		t.Error("positional under not() not detected")
	}
	if !MustParse(`//_[//NP and last()]`).Steps[0].HasPositional() {
		t.Error("positional under and not detected")
	}
	if MustParse(`//_[//NP[last()]]`).Steps[0].HasPositional() {
		t.Error("nested path positional must not count")
	}
	if MustParse(`//_[count(//NP)=1]`).Steps[0].HasPositional() {
		t.Error("count() is not positional")
	}
}
