// Package lpath implements the LPath query language of Bird et al. (ICDE
// 2006): an XPath 1.0 dialect extended with horizontal navigation primitives
// (immediate-following and friends), subtree scoping with braces, and edge
// alignment markers.
//
// The package provides the abstract syntax (this file), a lexer and a
// recursive-descent parser (lexer.go, parser.go), and a pretty-printer that
// round-trips the surface syntax (print.go). Evaluation lives elsewhere:
// package treeval walks trees directly, and package engine compiles paths to
// join plans over the interval labeling.
package lpath

// Axis enumerates the LPath navigation axes (Table 1 of the paper), the
// or-self closures, and the self/attribute axes.
type Axis int

const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisImmediateFollowing
	AxisFollowing
	AxisFollowingOrSelf
	AxisImmediatePreceding
	AxisPreceding
	AxisPrecedingOrSelf
	AxisImmediateFollowingSibling
	AxisFollowingSibling
	AxisFollowingSiblingOrSelf
	AxisImmediatePrecedingSibling
	AxisPrecedingSibling
	AxisPrecedingSiblingOrSelf
	AxisSelf
	AxisAttribute
)

var axisNames = map[Axis]string{
	AxisChild:                     "child",
	AxisDescendant:                "descendant",
	AxisDescendantOrSelf:          "descendant-or-self",
	AxisParent:                    "parent",
	AxisAncestor:                  "ancestor",
	AxisAncestorOrSelf:            "ancestor-or-self",
	AxisImmediateFollowing:        "immediate-following",
	AxisFollowing:                 "following",
	AxisFollowingOrSelf:           "following-or-self",
	AxisImmediatePreceding:        "immediate-preceding",
	AxisPreceding:                 "preceding",
	AxisPrecedingOrSelf:           "preceding-or-self",
	AxisImmediateFollowingSibling: "immediate-following-sibling",
	AxisFollowingSibling:          "following-sibling",
	AxisFollowingSiblingOrSelf:    "following-sibling-or-self",
	AxisImmediatePrecedingSibling: "immediate-preceding-sibling",
	AxisPrecedingSibling:          "preceding-sibling",
	AxisPrecedingSiblingOrSelf:    "preceding-sibling-or-self",
	AxisSelf:                      "self",
	AxisAttribute:                 "attribute",
}

// String returns the long axis name, e.g. "immediate-following".
func (a Axis) String() string {
	if s, ok := axisNames[a]; ok {
		return s
	}
	return "unknown-axis"
}

// axisByName maps long axis names (as used with the :: syntax) to axes.
var axisByName = func() map[string]Axis {
	m := make(map[string]Axis, len(axisNames))
	for a, n := range axisNames {
		m[n] = a
	}
	return m
}()

// Abbrev returns the surface abbreviation of the axis per Table 1, or ""
// when the axis has only the long form.
func (a Axis) Abbrev() string {
	switch a {
	case AxisChild:
		return "/"
	case AxisDescendant:
		return "//"
	case AxisParent:
		return "\\"
	case AxisAncestor:
		return "\\\\"
	case AxisImmediateFollowing:
		return "->"
	case AxisFollowing:
		return "-->"
	case AxisImmediatePreceding:
		return "<-"
	case AxisPreceding:
		return "<--"
	case AxisImmediateFollowingSibling:
		return "=>"
	case AxisFollowingSibling:
		return "==>"
	case AxisImmediatePrecedingSibling:
		return "<="
	case AxisPrecedingSibling:
		return "<=="
	case AxisSelf:
		return "."
	case AxisAttribute:
		return "@"
	default:
		return ""
	}
}

// IsHorizontal reports whether the axis navigates the sequential (left to
// right) organization of the tree, including the sibling axes.
func (a Axis) IsHorizontal() bool {
	switch a {
	case AxisImmediateFollowing, AxisFollowing, AxisFollowingOrSelf,
		AxisImmediatePreceding, AxisPreceding, AxisPrecedingOrSelf,
		AxisImmediateFollowingSibling, AxisFollowingSibling, AxisFollowingSiblingOrSelf,
		AxisImmediatePrecedingSibling, AxisPrecedingSibling, AxisPrecedingSiblingOrSelf:
		return true
	}
	return false
}

// IsVertical reports whether the axis navigates the hierarchical organization.
func (a Axis) IsVertical() bool {
	switch a {
	case AxisChild, AxisDescendant, AxisDescendantOrSelf,
		AxisParent, AxisAncestor, AxisAncestorOrSelf:
		return true
	}
	return false
}

// Primitive returns, for a closure axis, the primitive axis it is the
// transitive closure of, and true; otherwise it returns a, false. This makes
// the Table 1 primitive/closure pairing explicit.
func (a Axis) Primitive() (Axis, bool) {
	switch a {
	case AxisDescendant:
		return AxisChild, true
	case AxisAncestor:
		return AxisParent, true
	case AxisFollowing:
		return AxisImmediateFollowing, true
	case AxisPreceding:
		return AxisImmediatePreceding, true
	case AxisFollowingSibling:
		return AxisImmediateFollowingSibling, true
	case AxisPrecedingSibling:
		return AxisImmediatePrecedingSibling, true
	}
	return a, false
}

// CoreXPath reports whether the axis exists in Core XPath (Table 1's last
// column); the immediate-* axes and the or-self horizontal closures do not.
func (a Axis) CoreXPath() bool {
	switch a {
	case AxisChild, AxisDescendant, AxisDescendantOrSelf,
		AxisParent, AxisAncestor, AxisAncestorOrSelf,
		AxisFollowing, AxisPreceding,
		AxisFollowingSibling, AxisPrecedingSibling,
		AxisSelf, AxisAttribute:
		return true
	}
	return false
}

// Step is one location step: an axis, a node test, optional edge-alignment
// markers, and a predicate list.
type Step struct {
	Axis Axis
	// Test is the node test: a tag name, or "_" for the wildcard that
	// matches any tag (the paper uses _ as wildcard, reserving * for
	// closures). For the attribute axis, Test is the attribute name
	// without the leading '@'.
	Test string
	// LeftAlign is the ^ marker: the node must start at the left edge of
	// the innermost scope (or of the step's context when no scope is open).
	LeftAlign bool
	// RightAlign is the $ marker, the right-edge counterpart.
	RightAlign bool
	// Preds are the step's predicates, implicitly conjoined.
	Preds []Expr
}

// Wildcard reports whether the node test matches any tag.
func (s *Step) Wildcard() bool { return s.Test == "_" }

// Path is a relative location path: a head sequence of steps, optionally
// followed by a braced, subtree-scoped tail per the grammar
// RLP ::= HP | HP '{' RLP '}'.
type Path struct {
	Steps []Step
	// Scoped, when non-nil, is the braced tail. It is evaluated with the
	// subtree scope set to each node matched by the head (or to the
	// context node when the head is empty, as in the predicate form
	// [{...}]).
	Scoped *Path
}

// LastStep returns the final step of the path — the one whose matches are
// the path's result — following the scoped tail if present. It returns nil
// for an empty path.
func (p *Path) LastStep() *Step {
	for p.Scoped != nil {
		if len(p.Scoped.Steps) > 0 || p.Scoped.Scoped != nil {
			p = p.Scoped
			continue
		}
		break
	}
	if len(p.Steps) == 0 {
		return nil
	}
	return &p.Steps[len(p.Steps)-1]
}

// Expr is a predicate expression: a boolean combination of existential path
// tests and attribute comparisons.
type Expr interface {
	exprNode()
}

// AndExpr is the conjunction of two predicate expressions.
type AndExpr struct{ L, R Expr }

// OrExpr is the disjunction of two predicate expressions.
type OrExpr struct{ L, R Expr }

// NotExpr is the negation not(X).
type NotExpr struct{ X Expr }

// PathExpr is an existential path test: it holds iff the relative path has
// at least one match from the context node.
type PathExpr struct{ Path *Path }

// CmpExpr compares the string value reached by a relative path (typically a
// single attribute step such as @lex) against a literal. Op is "=" or "!=".
// It holds iff some match of the path has a value satisfying the comparison.
type CmpExpr struct {
	Path  *Path
	Op    string
	Value string
}

// PositionExpr is the function-library predicate position() Op N or
// position() Op last(). The position of a node is its 1-based rank within
// the step's candidate list — document order for forward axes, reverse
// document order for reverse axes — after the node test, scoping and
// alignment have been applied; each predicate filters the list before the
// next predicate's positions are computed, as in XPath.
type PositionExpr struct {
	Op    string // = != < <= > >=
	Value int    // ignored when Last
	Last  bool   // compare against last() instead of Value
}

// LastExpr is the bare [last()] predicate, equivalent to
// [position() = last()].
type LastExpr struct{}

// CountExpr compares the number of matches of a relative path against a
// constant: count(path) Op N.
type CountExpr struct {
	Path  *Path
	Op    string
	Value int
}

// StrFnExpr is a string-function predicate over an attribute path:
// contains(path, 'arg'), starts-with(path, 'arg') or ends-with(path, 'arg').
// It holds iff some match of the path has an attribute value satisfying the
// function.
type StrFnExpr struct {
	Fn   string // "contains", "starts-with", "ends-with"
	Path *Path
	Arg  string
}

func (*AndExpr) exprNode()      {}
func (*OrExpr) exprNode()       {}
func (*NotExpr) exprNode()      {}
func (*PathExpr) exprNode()     {}
func (*CmpExpr) exprNode()      {}
func (*PositionExpr) exprNode() {}
func (*LastExpr) exprNode()     {}
func (*CountExpr) exprNode()    {}
func (*StrFnExpr) exprNode()    {}
