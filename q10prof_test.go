package lpath

import (
	"testing"

	"lpath/internal/bench"
	"lpath/internal/corpus"
)

func BenchmarkQ10Profile(b *testing.B) {
	s, err := bench.BuildSystems(bench.GenerateTrees(corpus.WSJ, 0.05, 42))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunLPath(10); err != nil {
			b.Fatal(err)
		}
	}
}
