package lpath

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// batchSizes chunks the 23-query suite: a singleton batch (must degenerate
// to Select), small and medium batches, and the whole suite at once.
var batchSizes = []int{1, 4, 16, 23}

// TestSelectBatchParity is the public batch identity property: for every
// executor strategy and every batch size, chunking the paper's 23-query
// suite through SelectBatch yields slot-for-slot exactly what Select
// returns for each query alone.
func TestSelectBatchParity(t *testing.T) {
	for _, st := range limitStrategies() {
		t.Run(st.name, func(t *testing.T) {
			c, err := GenerateCorpus("wsj", 0.004, 3, st.opts...)
			if err != nil {
				t.Fatal(err)
			}
			qs := make([]*Query, 0, len(EvalQueries()))
			want := make([][]Match, 0, len(EvalQueries()))
			for _, eq := range EvalQueries() {
				q := MustCompile(eq.Text)
				ms, err := c.Select(q)
				if err != nil {
					t.Fatalf("Q%d select: %v", eq.ID, err)
				}
				qs = append(qs, q)
				want = append(want, ms)
			}
			for _, size := range batchSizes {
				for lo := 0; lo < len(qs); lo += size {
					hi := min(lo+size, len(qs))
					got, errs := c.SelectBatch(qs[lo:hi])
					for i := range got {
						if errs[i] != nil {
							t.Fatalf("size %d: %q: %v", size, qs[lo+i], errs[i])
						}
						if len(got[i]) == 0 && len(want[lo+i]) == 0 {
							continue
						}
						if !reflect.DeepEqual(got[i], want[lo+i]) {
							t.Errorf("size %d: %q: batch %d matches, serial %d",
								size, qs[lo+i], len(got[i]), len(want[lo+i]))
						}
					}
				}
			}
		})
	}
}

// TestSelectBatchParallelParity holds the sharded batch path to the same
// contract, across shard and worker counts.
func TestSelectBatchParallelParity(t *testing.T) {
	c, err := GenerateCorpus("wsj", 0.004, 3, WithShards(3), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]*Query, 0, len(EvalQueries()))
	want := make([][]Match, 0, len(EvalQueries()))
	for _, eq := range EvalQueries() {
		q := MustCompile(eq.Text)
		ms, err := c.Select(q)
		if err != nil {
			t.Fatalf("Q%d select: %v", eq.ID, err)
		}
		qs = append(qs, q)
		want = append(want, ms)
	}
	for _, size := range batchSizes {
		for lo := 0; lo < len(qs); lo += size {
			hi := min(lo+size, len(qs))
			got, errs := c.SelectBatchParallel(qs[lo:hi])
			for i := range got {
				if errs[i] != nil {
					t.Fatalf("size %d: %q: %v", size, qs[lo+i], errs[i])
				}
				if len(got[i]) == 0 && len(want[lo+i]) == 0 {
					continue
				}
				if !reflect.DeepEqual(got[i], want[lo+i]) {
					t.Errorf("size %d: %q: parallel batch %d matches, serial %d",
						size, qs[lo+i], len(got[i]), len(want[lo+i]))
				}
			}
		}
	}
}

// TestSelectBatchLimitTextParity drives the serving path (texts through the
// plan cache, with per-query caps): each capped slot is the exact prefix of
// the full serial result, and the batch shares plans across duplicates.
func TestSelectBatchLimitTextParity(t *testing.T) {
	c, err := GenerateCorpus("wsj", 0.004, 3, WithPlanCache(64))
	if err != nil {
		t.Fatal(err)
	}
	texts := make([]string, 0, len(EvalQueries()))
	for _, eq := range EvalQueries() {
		texts = append(texts, eq.Text)
	}
	full := make([][]Match, len(texts))
	for i, text := range texts {
		ms, err := c.Select(MustCompile(text))
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		full[i] = ms
	}
	limits := make([]int, len(texts))
	for i := range limits {
		switch i % 4 {
		case 0:
			limits[i] = -1
		case 1:
			limits[i] = 0
		case 2:
			limits[i] = 1
		case 3:
			limits[i] = 7
		}
	}
	got, errs := c.SelectBatchLimitTextContext(context.Background(), texts, limits)
	for i := range texts {
		if errs[i] != nil {
			t.Fatalf("%q: %v", texts[i], errs[i])
		}
		want := full[i]
		if limits[i] >= 0 && limits[i] < len(want) {
			want = want[:limits[i]]
		}
		if len(got[i]) != len(want) {
			t.Errorf("%q limit %d: %d matches, want %d", texts[i], limits[i], len(got[i]), len(want))
			continue
		}
		if len(want) > 0 && !reflect.DeepEqual(got[i], want) {
			t.Errorf("%q limit %d: result is not the serial prefix", texts[i], limits[i])
		}
	}
	if st := c.PlanCacheStats(); st.Misses == 0 {
		t.Error("plan cache reports no misses after a batch of fresh texts")
	}
}

// TestSelectBatchTextCompileError: an uncompilable text occupies exactly its
// own slot with the compile error; batch mates are unaffected.
func TestSelectBatchTextCompileError(t *testing.T) {
	for _, opts := range [][]Option{nil, {WithPlanCache(8)}} {
		c := NewCorpus(opts...)
		if err := c.AddSentence(`(S (NP (N I)) (VP (V saw) (NP (D the) (N dog))))`); err != nil {
			t.Fatal(err)
		}
		got, errs := c.SelectBatchText([]string{`//NP`, `//[`, `//V`})
		if errs[0] != nil || errs[2] != nil {
			t.Fatalf("healthy slots errored: %v, %v", errs[0], errs[2])
		}
		if errs[1] == nil {
			t.Fatal("uncompilable text did not error its slot")
		}
		if got[1] != nil {
			t.Errorf("failed slot carries %d matches", len(got[1]))
		}
		if len(got[0]) != 2 || len(got[2]) != 1 {
			t.Errorf("matches = %d, %d; want 2, 1", len(got[0]), len(got[2]))
		}
	}
}

// TestSelectBatchCancelled: a dead context fails every slot with its error,
// for both the serial and the sharded batch entry points.
func TestSelectBatchCancelled(t *testing.T) {
	c, err := GenerateCorpus("wsj", 0.002, 5, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qs := []*Query{MustCompile(`//NP`), MustCompile(`//VP//V`)}
	_, errs := c.SelectBatchContext(ctx, qs)
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("serial slot %d: got %v, want context.Canceled", i, err)
		}
	}
	_, errs = c.SelectBatchParallelContext(ctx, qs)
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parallel slot %d: got %v, want context.Canceled", i, err)
		}
	}
}

// TestCountBatchParity checks the public CountBatch against serial Count
// over the whole suite in one batch.
func TestCountBatchParity(t *testing.T) {
	c, err := GenerateCorpus("wsj", 0.002, 5)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]*Query, 0, len(EvalQueries()))
	for _, eq := range EvalQueries() {
		qs = append(qs, MustCompile(eq.Text))
	}
	counts, errs := c.CountBatch(qs)
	for i, q := range qs {
		if errs[i] != nil {
			t.Fatalf("%q: %v", q, errs[i])
		}
		want, err := c.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if counts[i] != want {
			t.Errorf("%q: batch count %d, serial %d", q, counts[i], want)
		}
	}
}

// TestSelectBatchStatsSharing: a duplicate-heavy batch over the suite
// reports rows-memo hits through the public stats surface, and the shared
// results stay identical to serial.
func TestSelectBatchStatsSharing(t *testing.T) {
	c, err := GenerateCorpus("wsj", 0.002, 5)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]*Query, 0, 2*len(EvalQueries()))
	for _, eq := range EvalQueries() {
		qs = append(qs, MustCompile(eq.Text))
	}
	qs = append(qs, qs...) // every query appears twice
	got, errs, stats := c.SelectBatchStats(context.Background(), qs)
	n := len(qs) / 2
	for i := 0; i < n; i++ {
		if errs[i] != nil || errs[n+i] != nil {
			t.Fatalf("%q: %v / %v", qs[i], errs[i], errs[n+i])
		}
		if !reflect.DeepEqual(got[i], got[n+i]) {
			t.Errorf("%q: duplicate slots differ", qs[i])
		}
	}
	if stats.RowsHits < n {
		t.Errorf("rows memo: %d hits for %d duplicates", stats.RowsHits, n)
	}
}

// TestExplainTextCachedPlanFreshActuals pins the EXPLAIN-through-cache
// contract: repeated ExplainText renders the cached executable plan with
// fresh actual-cardinality counters — byte-identical reports, no stale or
// doubled actuals — and the repeats hit the plan cache rather than
// replanning.
func TestExplainTextCachedPlanFreshActuals(t *testing.T) {
	c, err := GenerateCorpus("wsj", 0.002, 5, WithPlanCache(16))
	if err != nil {
		t.Fatal(err)
	}
	const text = `//VP{//NP$}`
	first, err := c.ExplainText(text)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first, "actual") {
		t.Fatalf("EXPLAIN report carries no actuals:\n%s", first)
	}
	before := c.PlanCacheStats()
	for i := 0; i < 3; i++ {
		again, err := c.ExplainText(text)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("ExplainText drifted on repeat %d:\n--- first ---\n%s\n--- again ---\n%s", i+1, first, again)
		}
	}
	after := c.PlanCacheStats()
	if after.Hits <= before.Hits {
		t.Errorf("repeated ExplainText did not hit the plan cache (hits %d -> %d)", before.Hits, after.Hits)
	}
	if after.Misses != before.Misses {
		t.Errorf("repeated ExplainText re-missed the plan cache (misses %d -> %d)", before.Misses, after.Misses)
	}

	// The cached-plan report must agree with a from-scratch Explain of the
	// same text (same plan, same fresh actuals).
	fresh, err := c.Explain(MustCompile(text))
	if err != nil {
		t.Fatal(err)
	}
	if fresh != first {
		t.Fatalf("cached-plan EXPLAIN differs from from-scratch EXPLAIN:\n--- cached ---\n%s\n--- fresh ---\n%s", first, fresh)
	}
}
