// Package lpath is a from-scratch Go implementation of LPath, the XPath
// dialect for linguistic queries of Bird, Chen, Davidson, Lee and Zheng
// (ICDE 2006), together with the interval-labeling query engine the paper
// proposes and the baseline systems it evaluates against.
//
// The public API is small:
//
//	c, _ := lpath.GenerateCorpus("wsj", 0.01, 42) // or LoadCorpus / NewCorpus
//	q, _ := lpath.Compile(`//VP{/V-->N}`)
//	matches, _ := c.Select(q)
//	n, _ := c.Count(q)
//
// Queries support the full LPath language: the XPath vertical axes, the
// horizontal axes -> --> <- <-- => ==> <= <==, subtree scoping with braces,
// edge alignment ^ and $, and predicates with @attr comparisons, and/or/not.
//
// Corpora are ordered trees in the Penn Treebank bracketed format. Select
// uses the interval-label relational engine (internal/engine); SelectOracle
// evaluates with the reference tree-walker for cross-checking.
package lpath

import (
	"context"
	"fmt"
	"io"
	"iter"
	"os"
	"runtime"

	"lpath/internal/corpus"
	"lpath/internal/engine"
	ast "lpath/internal/lpath"
	"lpath/internal/planner"
	"lpath/internal/relstore"
	"lpath/internal/relstore/snapshot"
	"lpath/internal/sqlgen"
	"lpath/internal/tree"
	"lpath/internal/treeval"
)

// Tree is an ordered linguistic tree (see the internal/tree package for the
// node model).
type Tree = tree.Tree

// Node is a node of a linguistic tree.
type Node = tree.Node

// Match is one query result: a node within a tree of the corpus.
type Match = engine.Match

// Stats summarizes a corpus (sentence, word, node and tag counts).
type Stats = corpus.Stats

// ParseTree parses one bracketed tree, e.g. "(S (NP I) (VP (V saw)))".
func ParseTree(s string) (*Tree, error) { return tree.ParseTree(s) }

// Query is a compiled LPath query.
type Query struct {
	text string
	path *ast.Path
}

// Compile parses and validates an LPath query.
func Compile(text string) (*Query, error) {
	p, err := ast.Parse(text)
	if err != nil {
		return nil, err
	}
	if err := ast.Validate(p); err != nil {
		return nil, err
	}
	return &Query{text: text, path: p}, nil
}

// MustCompile is Compile panicking on error; for tests and constants.
func MustCompile(text string) *Query {
	q, err := Compile(text)
	if err != nil {
		panic(err)
	}
	return q
}

// String returns the original query text.
func (q *Query) String() string { return q.text }

// Canonical returns the pretty-printed canonical form of the query.
func (q *Query) Canonical() string { return q.path.String() }

// SQL returns the relational translation of the query over the node
// relation {tid, left, right, depth, id, pid, name, value}, as the paper's
// yacc-based translator produced for its commercial database backend.
func (q *Query) SQL() (string, error) { return sqlgen.Translate(q.path) }

// Corpus is a queryable collection of linguistic trees. The zero value is
// not usable; create one with NewCorpus, LoadCorpus, OpenCorpus or
// GenerateCorpus. Adding trees invalidates the index, which is rebuilt
// lazily on the next query.
type Corpus struct {
	trees  *tree.Corpus
	store  *relstore.Store
	eng    *engine.Engine
	oracle *treeval.CorpusEval
	dirty  bool

	// Parallel execution state: per-shard engines (built lazily, invalidated
	// separately from the serial engine so either path can build first) and
	// the configured worker-pool and shard-count bounds.
	shards      []*engine.Engine
	shardsDirty bool
	workers     int
	shardCount  int

	// planCache memoizes query text → compiled plan for SelectText.
	planCache *engine.PlanCache

	// gen counts store rebuilds; cached executable plans are keyed to it so
	// a rebuilt corpus (new statistics) invalidates plans but not ASTs.
	gen uint64
	// closer releases the backing resources of a snapshot-loaded corpus
	// (the mmap of OpenStore); see Close.
	closer func() error
	// noPlanner disables cost-based planning on every engine this corpus
	// builds (see WithoutPlanner).
	noPlanner bool
	// mergeOff / mergeAlways pin the step execution strategy on every engine
	// this corpus builds (see WithoutMergeExecutor and withMergeAlways).
	mergeOff    bool
	mergeAlways bool
	// twigOff / twigAlways pin the holistic twig executor the same way (see
	// WithoutTwigExecutor and withTwigAlways).
	twigOff    bool
	twigAlways bool
	// bitmapOff / bitmapAlways pin the dense-bitset kernels the same way (see
	// WithoutBitmapExecutor and withBitmapAlways).
	bitmapOff    bool
	bitmapAlways bool
}

// Option configures query execution on a Corpus; pass options to a
// constructor or apply them later with Configure.
type Option func(*Corpus)

// WithWorkers bounds SelectParallel's worker pool at n goroutines. The
// default (and any value below 1) is runtime.GOMAXPROCS(0).
func WithWorkers(n int) Option {
	return func(c *Corpus) { c.workers = n }
}

// WithShards partitions the corpus into k tree-ID shards for parallel
// execution. The default (and any value below 1) is the worker count, so
// every worker owns one shard; larger values improve load balance on skewed
// corpora at a small per-shard indexing cost.
func WithShards(k int) Option {
	return func(c *Corpus) {
		c.shardCount = k
		c.shardsDirty = true
	}
}

// WithoutPlanner disables the statistics-driven cost-based planner, so every
// query evaluates with the engine's default strategy. The planner never
// changes results — only evaluation order and access paths — which the
// differential tests enforce; this option exists for those tests and for
// measuring the planner's contribution.
func WithoutPlanner() Option {
	return func(c *Corpus) {
		c.noPlanner = true
		c.dirty = true
		c.shardsDirty = true
	}
}

// WithoutMergeExecutor disables the set-at-a-time merge executor, so every
// location step runs per-binding index probes regardless of the plan's
// strategy. The two executors are result-identical (the differential tests
// enforce it); this option exists for those tests and for measuring the merge
// executor's contribution (docs/EXECUTION.md).
func WithoutMergeExecutor() Option {
	return func(c *Corpus) {
		c.mergeOff = true
		c.mergeAlways = false
		c.dirty = true
		c.shardsDirty = true
	}
}

// withMergeAlways forces the merge executor on every eligible step, bypassing
// the planner's cost decision; the differential tests and fuzzers use it to
// keep the merge path under continuous cross-checking.
func withMergeAlways() Option {
	return func(c *Corpus) {
		c.mergeAlways = true
		c.mergeOff = false
		c.dirty = true
		c.shardsDirty = true
	}
}

// WithoutTwigExecutor disables the holistic twig executor, so every location
// step runs through the per-step probe/merge dispatch regardless of the
// plan's run marking. The twig executor is result-identical to the per-step
// executors (the differential tests enforce it); this option exists for
// those tests and for measuring the twig executor's contribution
// (docs/EXECUTION.md).
func WithoutTwigExecutor() Option {
	return func(c *Corpus) {
		c.twigOff = true
		c.twigAlways = false
		c.dirty = true
		c.shardsDirty = true
	}
}

// withTwigAlways runs every maximal twig-able run through the holistic sweep,
// bypassing the planner's cost decision; the differential tests and fuzzers
// use it to keep the twig path under continuous cross-checking.
func withTwigAlways() Option {
	return func(c *Corpus) {
		c.twigAlways = true
		c.twigOff = false
		c.dirty = true
		c.shardsDirty = true
	}
}

// WithoutBitmapExecutor disables the dense-bitset kernels, so subtree scopes
// expand per scope and semijoin satisfier sets materialize as maps — exactly
// the pre-bitmap engine. The bitmap kernels are result-identical (the
// differential tests enforce it); this option exists for those tests and for
// measuring the bitmap executor's contribution (docs/EXECUTION.md).
func WithoutBitmapExecutor() Option {
	return func(c *Corpus) {
		c.bitmapOff = true
		c.bitmapAlways = false
		c.dirty = true
		c.shardsDirty = true
	}
}

// withBitmapAlways runs every shape-eligible subtree-scope entry through the
// bitmap kernel, bypassing the planner's cost decision; the differential
// tests and fuzzers use it to keep the bitmap path under continuous
// cross-checking.
func withBitmapAlways() Option {
	return func(c *Corpus) {
		c.bitmapAlways = true
		c.bitmapOff = false
		c.dirty = true
		c.shardsDirty = true
	}
}

// WithPlanCache enables the compiled-plan cache used by SelectText and
// CountText, holding at most capacity plans under LRU eviction (capacity < 1
// selects the default, engine.DefaultPlanCacheSize = 128).
func WithPlanCache(capacity int) Option {
	return func(c *Corpus) { c.planCache = engine.NewPlanCache(capacity) }
}

// Configure applies options to an existing corpus. It is not safe to call
// concurrently with queries.
func (c *Corpus) Configure(opts ...Option) {
	for _, o := range opts {
		o(c)
	}
}

func newCorpus(tc *tree.Corpus, opts ...Option) *Corpus {
	c := &Corpus{trees: tc, dirty: true, shardsDirty: true}
	c.Configure(opts...)
	return c
}

// NewCorpus creates an empty corpus.
func NewCorpus(opts ...Option) *Corpus {
	return newCorpus(tree.NewCorpus(), opts...)
}

// LoadCorpus reads bracketed trees from r.
func LoadCorpus(r io.Reader, opts ...Option) (*Corpus, error) {
	tc, err := tree.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return newCorpus(tc, opts...), nil
}

// OpenCorpus reads bracketed trees from a file.
func OpenCorpus(path string, opts ...Option) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := LoadCorpus(f, opts...)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// GenerateCorpus synthesizes a corpus with the named profile ("wsj" or
// "swb") at the given scale (1.0 ≈ the paper's corpus size; see
// internal/corpus for the calibration).
func GenerateCorpus(profile string, scale float64, seed int64, opts ...Option) (*Corpus, error) {
	p, err := corpus.ParseProfile(profile)
	if err != nil {
		return nil, err
	}
	tc := corpus.Generate(corpus.Config{Profile: p, Scale: scale, Seed: seed})
	return newCorpus(tc, opts...), nil
}

// Add appends a tree to the corpus.
func (c *Corpus) Add(t *Tree) {
	c.trees.Add(t)
	c.dirty = true
	c.shardsDirty = true
}

// AddSentence parses a bracketed tree and appends it.
func (c *Corpus) AddSentence(bracketed string) error {
	t, err := tree.ParseTree(bracketed)
	if err != nil {
		return err
	}
	c.Add(t)
	return nil
}

// Len returns the number of trees.
func (c *Corpus) Len() int { return c.trees.Len() }

// Trees returns the underlying trees (shared, not copied).
func (c *Corpus) Trees() []*Tree { return c.trees.Trees }

// Stats measures the corpus (Figure 6(a)-style statistics).
func (c *Corpus) Stats() Stats { return corpus.Measure(c.trees) }

// Save writes the corpus in bracketed format.
func (c *Corpus) Save(w io.Writer) error { return tree.WriteAll(w, c.trees) }

// SaveStore writes the corpus's interval-label store as a binary snapshot
// (the .lpx format of internal/relstore/snapshot), building it first if
// needed. A snapshot contains the complete built index — clustered rows,
// columnar label arrays, every posting permutation, and the planner's
// statistics block — so LoadStore answers queries without re-parsing,
// re-labeling, or re-sorting anything: the paper's "label once, query many
// times" workflow.
func (c *Corpus) SaveStore(w io.Writer) error {
	if err := c.Build(); err != nil {
		return err
	}
	return snapshot.Write(w, c.store)
}

// SaveStoreFile writes the store snapshot to path atomically (temp file +
// rename), building the index first if needed.
func (c *Corpus) SaveStoreFile(path string) error {
	if err := c.Build(); err != nil {
		return err
	}
	return snapshot.WriteFile(path, c.store)
}

// LoadStore reads a store snapshot written by SaveStore and returns a
// ready-to-query corpus with its trees reconstructed from the relation.
// Every load failure — truncation, bit corruption, version skew — is
// reported as a typed error from internal/relstore/snapshot; a snapshot
// never loads silently wrong.
func LoadStore(r io.Reader, opts ...Option) (*Corpus, error) {
	store, trees, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	return corpusFromStore(store, trees, nil, opts...)
}

// OpenStore memory-maps a store snapshot file. Loading is lazy at page
// granularity: validation and queries fault in only the pages they touch,
// and the kernel page cache shares the index across processes. The mapping
// lives until Close (or process exit).
func OpenStore(path string, opts ...Option) (*Corpus, error) {
	f, err := snapshot.Open(path)
	if err != nil {
		return nil, err
	}
	return corpusFromStore(f.Store(), f.Corpus(), f.Close, opts...)
}

// corpusFromStore wraps an already-built store (from a snapshot) in a
// Corpus, honoring the configured engine options.
func corpusFromStore(store *relstore.Store, trees *tree.Corpus, closer func() error, opts ...Option) (*Corpus, error) {
	c := &Corpus{trees: trees, store: store, shardsDirty: true, closer: closer}
	c.Configure(opts...)
	eng, err := engine.New(store, c.engineOpts()...)
	if err != nil {
		return nil, err
	}
	c.eng = eng
	return c, nil
}

// Close releases resources held by a snapshot-backed corpus (the mmap of
// OpenStore). It is a no-op for corpora built from trees. The corpus must
// not be queried after Close.
func (c *Corpus) Close() error {
	if c.closer == nil {
		return nil
	}
	closer := c.closer
	c.closer = nil
	return closer()
}

// Build constructs the interval-label store and indexes eagerly. Queries
// trigger it automatically; calling it explicitly separates indexing time
// from query time, as the benchmarks do.
func (c *Corpus) Build() error {
	if !c.dirty && c.eng != nil {
		return nil
	}
	store := relstore.Build(c.trees, relstore.SchemeInterval)
	eng, err := engine.New(store, c.engineOpts()...)
	if err != nil {
		return err
	}
	c.store = store
	c.eng = eng
	c.oracle = nil
	c.dirty = false
	c.gen++ // new statistics: cached executable plans are stale
	return nil
}

// engineOpts translates corpus options into engine options.
func (c *Corpus) engineOpts() []engine.Option {
	var opts []engine.Option
	if c.noPlanner {
		opts = append(opts, engine.WithoutPlanner())
	}
	if c.mergeOff {
		opts = append(opts, engine.WithoutMerge())
	}
	if c.mergeAlways {
		opts = append(opts, engine.WithMergeAlways())
	}
	if c.twigOff {
		opts = append(opts, engine.WithoutTwig())
	}
	if c.twigAlways {
		opts = append(opts, engine.WithTwigAlways())
	}
	if c.bitmapOff {
		opts = append(opts, engine.WithoutBitmap())
	}
	if c.bitmapAlways {
		opts = append(opts, engine.WithBitmapAlways())
	}
	return opts
}

// Select evaluates the query with the label-based engine and returns the
// distinct matches of its final step in document order.
func (c *Corpus) Select(q *Query) ([]Match, error) {
	if err := c.Build(); err != nil {
		return nil, err
	}
	return c.eng.Eval(q.path)
}

// SelectContext is Select honoring a context: cancellation or an expired
// deadline interrupts the evaluation cooperatively — the executors poll the
// context inside their sweeps, so even a long-running serial query returns
// promptly with the context's error (context.Canceled or
// context.DeadlineExceeded).
func (c *Corpus) SelectContext(ctx context.Context, q *Query) ([]Match, error) {
	if err := c.Build(); err != nil {
		return nil, err
	}
	return c.eng.EvalContext(ctx, q.path)
}

// SelectLimit evaluates the query with early termination and returns at most
// limit matches — exactly the first limit entries of Select's (tree,
// document)-ordered result. Trees past the one holding the limit-th match
// are never evaluated, so the cost of a limited query over a high-match
// corpus is proportional to the trees actually needed, not the corpus.
// limit <= 0 returns an empty slice.
func (c *Corpus) SelectLimit(q *Query, limit int) ([]Match, error) {
	return c.SelectLimitContext(context.Background(), q, limit)
}

// SelectLimitContext is SelectLimit honoring a context, with the same
// cooperative cancellation guarantees as SelectContext.
func (c *Corpus) SelectLimitContext(ctx context.Context, q *Query, limit int) ([]Match, error) {
	if err := c.Build(); err != nil {
		return nil, err
	}
	return c.eng.EvalLimitContext(ctx, q.path, limit)
}

// Matches returns a range-over-func iterator over the query's matches in
// Select's (tree, document) order, evaluating incrementally: breaking out of
// the range loop terminates the evaluation, so consuming k matches costs
// what SelectLimit(k) costs.
//
//	for m, err := range c.Matches(q) {
//		if err != nil { ... }
//		use(m)
//	}
//
// On an evaluation error the iterator yields one (zero Match, error) pair
// and stops.
func (c *Corpus) Matches(q *Query) iter.Seq2[Match, error] {
	return c.MatchesContext(context.Background(), q)
}

// MatchesContext is Matches honoring a context for cooperative cancellation;
// a cancelled evaluation yields the context's error as its final pair.
func (c *Corpus) MatchesContext(ctx context.Context, q *Query) iter.Seq2[Match, error] {
	return func(yield func(Match, error) bool) {
		if err := c.Build(); err != nil {
			yield(Match{}, err)
			return
		}
		err := c.eng.Stream(ctx, q.path, func(m Match) bool {
			return yield(m, nil)
		})
		if err != nil {
			yield(Match{}, err)
		}
	}
}

// Count returns the number of matches of the query, using the engine's
// count-only pipeline: the same joins as Select, but without the final sort
// and node materialization. Count always equals len(Select(q)).
func (c *Corpus) Count(q *Query) (int, error) {
	if err := c.Build(); err != nil {
		return 0, err
	}
	return c.eng.Count(q.path)
}

// CountContext is Count honoring a context, with the same cooperative
// cancellation guarantees as SelectContext.
func (c *Corpus) CountContext(ctx context.Context, q *Query) (int, error) {
	if err := c.Build(); err != nil {
		return 0, err
	}
	return c.eng.CountContext(ctx, q.path)
}

// Explain plans the query against the corpus statistics, executes the plan
// with cardinality counters, and returns the EXPLAIN report: per step, the
// chosen access path and the estimated vs actual rows (see docs/PLANNER.md
// for the format).
func (c *Corpus) Explain(q *Query) (string, error) {
	if err := c.Build(); err != nil {
		return "", err
	}
	return c.eng.Explain(q.path)
}

// ExplainContext is Explain honoring a context for cooperative
// cancellation: EXPLAIN executes the query, so a deadline bounds it like any
// other evaluation.
func (c *Corpus) ExplainContext(ctx context.Context, q *Query) (string, error) {
	if err := c.Build(); err != nil {
		return "", err
	}
	return c.eng.ExplainContext(ctx, q.path)
}

// ExplainText is Explain on raw query text through the plan cache: the
// report renders the cached executable plan a repeated text will actually
// run, and the actual-cardinality counters are fresh on every call — a
// cached plan never reports a prior execution's actuals.
func (c *Corpus) ExplainText(text string) (string, error) {
	if c.planCache == nil {
		q, err := Compile(text)
		if err != nil {
			return "", err
		}
		return c.Explain(q)
	}
	if err := c.Build(); err != nil {
		return "", err
	}
	ast, exec, err := c.cachedPlan(text)
	if err != nil {
		return "", err
	}
	return c.eng.ExplainPlan(ast, exec)
}

// Strategies plans the query against the current corpus statistics and
// returns how many of its main-path steps execute as per-binding probes, as
// set-at-a-time merges, as members of holistic twig runs, and as bitmap
// scope entries (the exec= column of EXPLAIN; see docs/EXECUTION.md). With
// planning disabled every step counts as a probe.
func (c *Corpus) Strategies(q *Query) (probe, merge, twig, bitmap int, err error) {
	if err := c.Build(); err != nil {
		return 0, 0, 0, 0, err
	}
	plan := c.eng.Plan(q.path)
	if plan == nil {
		for p := q.path; p != nil; p = p.Scoped {
			probe += len(p.Steps)
		}
		return probe, 0, 0, 0, nil
	}
	probe, merge, twig, bitmap = plan.StrategyCounts()
	return probe, merge, twig, bitmap, nil
}

// numWorkers resolves the configured worker bound.
func (c *Corpus) numWorkers() int {
	if c.workers > 0 {
		return c.workers
	}
	return runtime.GOMAXPROCS(0)
}

// buildShards constructs the per-shard stores and engines lazily; queries
// through SelectParallel trigger it automatically.
func (c *Corpus) buildShards() error {
	if !c.shardsDirty && c.shards != nil {
		return nil
	}
	k := c.shardCount
	if k < 1 {
		k = c.numWorkers()
	}
	shards, err := engine.NewSharded(relstore.BuildShards(c.trees, relstore.SchemeInterval, k), c.engineOpts()...)
	if err != nil {
		return err
	}
	c.shards = shards
	c.shardsDirty = false
	return nil
}

// SelectParallel evaluates the query over tree-ID shards with a bounded
// worker pool (see WithWorkers and WithShards) and returns exactly the
// matches Select returns, in the same (tree, document) order — the result
// is deterministic and independent of the worker count. The shard index is
// built lazily on first use, like Select's.
func (c *Corpus) SelectParallel(q *Query) ([]Match, error) {
	return c.SelectParallelContext(context.Background(), q)
}

// SelectParallelContext is SelectParallel honoring a context: cancellation
// abandons shards that have not started and returns the context's error.
func (c *Corpus) SelectParallelContext(ctx context.Context, q *Query) ([]Match, error) {
	if err := c.buildShards(); err != nil {
		return nil, err
	}
	return engine.EvalParallel(ctx, c.shards, q.path, engine.WithWorkers(c.numWorkers()))
}

// SelectParallelLimit is SelectLimit over the shards: every shard streams
// with a per-shard cap of limit matches, and once the lowest shards have
// settled limit ordered matches all higher shards are cancelled. It returns
// exactly SelectLimit's result (the first limit entries of Select's order),
// deterministically, whatever the worker count.
func (c *Corpus) SelectParallelLimit(q *Query, limit int) ([]Match, error) {
	return c.SelectParallelLimitContext(context.Background(), q, limit)
}

// SelectParallelLimitContext is SelectParallelLimit honoring a context.
func (c *Corpus) SelectParallelLimitContext(ctx context.Context, q *Query, limit int) ([]Match, error) {
	if err := c.buildShards(); err != nil {
		return nil, err
	}
	return engine.EvalParallelLimit(ctx, c.shards, q.path, limit, engine.WithWorkers(c.numWorkers()))
}

// CountParallel returns the number of matches, evaluated in parallel with
// the count-only pipeline: each shard counts its distinct matches (no sort,
// no node materialization) and the disjoint per-shard counts are summed.
// CountParallel always equals len(SelectParallel(q)).
func (c *Corpus) CountParallel(q *Query) (int, error) {
	return c.CountParallelContext(context.Background(), q)
}

// CountParallelContext is CountParallel honoring a context: cancellation
// abandons shards that have not started and interrupts in-flight shard
// evaluations cooperatively.
func (c *Corpus) CountParallelContext(ctx context.Context, q *Query) (int, error) {
	if err := c.buildShards(); err != nil {
		return 0, err
	}
	return engine.CountParallel(ctx, c.shards, q.path, engine.WithWorkers(c.numWorkers()))
}

// SelectBatch evaluates the queries as one batch in a single shared pass:
// the engine memoizes whole-query results, main-path step frontiers and
// predicate satisfier sets by canonical structural key across the batch
// (docs/EXECUTION.md, "Batched evaluation"), so overlapping queries —
// duplicates, shared step prefixes, shared filters — amortize the corpus
// scans they have in common. Results and errors are positional: slot i is
// element-wise identical to Select(qs[i]), error included, and a failing
// query never disturbs its batch mates.
func (c *Corpus) SelectBatch(qs []*Query) ([][]Match, []error) {
	return c.SelectBatchContext(context.Background(), qs)
}

// SelectBatchContext is SelectBatch honoring a context: once the context is
// done, the queries it interrupted report its error.
func (c *Corpus) SelectBatchContext(ctx context.Context, qs []*Query) ([][]Match, []error) {
	if err := c.Build(); err != nil {
		return nil, batchErrs(len(qs), err)
	}
	return c.eng.EvalBatchContext(ctx, batchPaths(qs))
}

// SelectBatchStats is SelectBatch additionally reporting the cross-query
// memo hit rates the batch achieved.
func (c *Corpus) SelectBatchStats(ctx context.Context, qs []*Query) ([][]Match, []error, engine.BatchStats) {
	if err := c.Build(); err != nil {
		return nil, batchErrs(len(qs), err), engine.BatchStats{}
	}
	return c.eng.EvalBatchStats(ctx, batchPaths(qs), nil)
}

// CountBatch counts each query's matches in one shared batch pass; slot i
// always equals Count(qs[i]).
func (c *Corpus) CountBatch(qs []*Query) ([]int, []error) {
	return c.CountBatchContext(context.Background(), qs)
}

// CountBatchContext is CountBatch honoring a context.
func (c *Corpus) CountBatchContext(ctx context.Context, qs []*Query) ([]int, []error) {
	if err := c.Build(); err != nil {
		return nil, batchErrs(len(qs), err)
	}
	return c.eng.CountBatch(ctx, batchPaths(qs))
}

// SelectBatchParallel is SelectBatch over the tree-ID shards: shards are the
// unit of work, every shard visit evaluates all queries of the batch under
// one per-shard memo, and each query's per-shard results merge back into
// global (tree, document) order. Slot i is identical to SelectParallel's —
// and Select's — result for qs[i], deterministically.
func (c *Corpus) SelectBatchParallel(qs []*Query) ([][]Match, []error) {
	return c.SelectBatchParallelContext(context.Background(), qs)
}

// SelectBatchParallelContext is SelectBatchParallel honoring a context.
func (c *Corpus) SelectBatchParallelContext(ctx context.Context, qs []*Query) ([][]Match, []error) {
	if err := c.buildShards(); err != nil {
		return nil, batchErrs(len(qs), err)
	}
	return engine.EvalBatchParallel(ctx, c.shards, batchPaths(qs), engine.WithWorkers(c.numWorkers()))
}

func batchPaths(qs []*Query) []*ast.Path {
	paths := make([]*ast.Path, len(qs))
	for i, q := range qs {
		paths[i] = q.path
	}
	return paths
}

// batchErrs fans one setup failure (a corpus build error) out to every slot
// of a batch.
func batchErrs(n int, err error) []error {
	errs := make([]error, n)
	for i := range errs {
		errs[i] = err
	}
	return errs
}

// SelectBatchText is SelectBatch on raw query texts, each resolved through
// the plan cache (see WithPlanCache): the repeated-traffic batch entry
// point. A text that fails to compile occupies its slot with that error.
func (c *Corpus) SelectBatchText(texts []string) ([][]Match, []error) {
	return c.SelectBatchLimitTextContext(context.Background(), texts, nil)
}

// SelectBatchLimitTextContext is SelectBatchText honoring a context and an
// optional per-query result cap — the serving path lpathd's request
// coalescer calls (docs/SERVER.md). limits may be nil (no caps); otherwise
// it is parallel to texts, where a negative limit means unlimited and zero
// yields an empty result. Capped slots are the exact prefix of the query's
// full (tree, document)-ordered result.
func (c *Corpus) SelectBatchLimitTextContext(ctx context.Context, texts []string, limits []int) ([][]Match, []error) {
	if err := c.Build(); err != nil {
		return nil, batchErrs(len(texts), err)
	}
	paths := make([]*ast.Path, len(texts))
	plans := make([]*planner.Plan, len(texts))
	errs := make([]error, len(texts))
	for i, text := range texts {
		if c.planCache == nil {
			q, err := Compile(text)
			if err != nil {
				errs[i] = err
				continue
			}
			paths[i], plans[i] = q.path, c.eng.Plan(q.path)
			continue
		}
		paths[i], plans[i], errs[i] = c.cachedPlan(text)
	}
	out, evalErrs, _ := c.eng.EvalBatchPlans(ctx, paths, plans, limits)
	for i, err := range evalErrs {
		if errs[i] == nil {
			errs[i] = err
		}
	}
	return out, errs
}

// CompileCached compiles a query through the corpus's plan cache (see
// WithPlanCache), so repeated texts skip parsing and validation. Without a
// configured cache it is plain Compile.
func (c *Corpus) CompileCached(text string) (*Query, error) {
	if c.planCache == nil {
		return Compile(text)
	}
	p, err := c.planCache.GetOrCompile(text, func(s string) (*ast.Path, error) {
		q, err := Compile(s)
		if err != nil {
			return nil, err
		}
		return q.path, nil
	})
	if err != nil {
		return nil, err
	}
	return &Query{text: text, path: p}, nil
}

// SelectText compiles the query text via the plan cache and evaluates it —
// the repeated-traffic entry point: under a configured plan cache, a hot
// query pays parse + validate + cost-based planning once per store build,
// and each repeat executes the cached plan directly.
func (c *Corpus) SelectText(text string) ([]Match, error) {
	return c.SelectTextContext(context.Background(), text)
}

// SelectTextContext is SelectText honoring a context, with the same
// cooperative cancellation guarantees as SelectContext — the serving path:
// compile through the plan cache, evaluate under the request's deadline.
func (c *Corpus) SelectTextContext(ctx context.Context, text string) ([]Match, error) {
	if c.planCache == nil {
		q, err := Compile(text)
		if err != nil {
			return nil, err
		}
		return c.SelectContext(ctx, q)
	}
	if err := c.Build(); err != nil {
		return nil, err
	}
	ast, exec, err := c.cachedPlan(text)
	if err != nil {
		return nil, err
	}
	return c.eng.EvalPlanContext(ctx, ast, exec)
}

// SelectLimitText is SelectLimit on raw query text through the plan cache —
// the serving path for limited queries: compile and plan once per store
// build, stream with early termination on every repeat.
func (c *Corpus) SelectLimitText(text string, limit int) ([]Match, error) {
	return c.SelectLimitTextContext(context.Background(), text, limit)
}

// SelectLimitTextContext is SelectLimitText honoring a context, like
// SelectTextContext.
func (c *Corpus) SelectLimitTextContext(ctx context.Context, text string, limit int) ([]Match, error) {
	if c.planCache == nil {
		q, err := Compile(text)
		if err != nil {
			return nil, err
		}
		return c.SelectLimitContext(ctx, q, limit)
	}
	if err := c.Build(); err != nil {
		return nil, err
	}
	ast, exec, err := c.cachedPlan(text)
	if err != nil {
		return nil, err
	}
	return c.eng.EvalPlanLimitContext(ctx, ast, exec, limit)
}

// CountText compiles via the plan cache and counts the matches with the
// count-only pipeline.
func (c *Corpus) CountText(text string) (int, error) {
	return c.CountTextContext(context.Background(), text)
}

// CountTextContext is CountText honoring a context, like SelectTextContext.
func (c *Corpus) CountTextContext(ctx context.Context, text string) (int, error) {
	if c.planCache == nil {
		q, err := Compile(text)
		if err != nil {
			return 0, err
		}
		return c.CountContext(ctx, q)
	}
	if err := c.Build(); err != nil {
		return 0, err
	}
	ast, exec, err := c.cachedPlan(text)
	if err != nil {
		return 0, err
	}
	return c.eng.CountPlanContext(ctx, ast, exec)
}

// cachedPlan resolves text → (AST, executable plan) through the plan cache
// at the current store generation. The corpus must be built.
func (c *Corpus) cachedPlan(text string) (*ast.Path, *planner.Plan, error) {
	return c.planCache.GetOrPlan(text, c.gen,
		func(s string) (*ast.Path, error) {
			q, err := Compile(s)
			if err != nil {
				return nil, err
			}
			return q.path, nil
		},
		c.eng.Plan)
}

// CacheStats reports plan-cache effectiveness; see Corpus.PlanCacheStats.
type CacheStats = engine.CacheStats

// PlanCacheStats returns the plan cache's hit/miss/eviction counters, or a
// zero snapshot when no cache is configured.
func (c *Corpus) PlanCacheStats() CacheStats {
	if c.planCache == nil {
		return CacheStats{}
	}
	return c.planCache.Stats()
}

// SelectOracle evaluates the query with the reference tree-walking
// evaluator. It is slow and exists to cross-check Select.
func (c *Corpus) SelectOracle(q *Query) ([]Match, error) {
	if c.oracle == nil {
		c.oracle = treeval.NewCorpus(c.trees)
	}
	ms, err := c.oracle.Eval(q.path)
	if err != nil {
		return nil, err
	}
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{TreeID: m.TreeID, Node: m.Node}
	}
	return out, nil
}

// EvalQueries returns the paper's 23-query evaluation set (Figure 6(c)),
// in order; XPath reports which are XPath 1.0-expressible.
func EvalQueries() []EvalQuery {
	out := make([]EvalQuery, 0, len(ast.EvalQueries))
	for _, q := range ast.EvalQueries {
		out = append(out, EvalQuery{ID: q.ID, Text: q.Text, XPath: q.XPathExpressible})
	}
	return out
}

// EvalQuery is one entry of the paper's evaluation query set.
type EvalQuery struct {
	ID    int
	Text  string
	XPath bool
}
