package lpath

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

func figure1Corpus(t *testing.T) *Corpus {
	t.Helper()
	c := NewCorpus()
	if err := c.AddSentence(`(S (NP I) (VP (V saw) (NP (NP (Det the) (Adj old) (N man)) (PP (Prep with) (NP (Det a) (N dog))))) (N today))`); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompileAndSelect(t *testing.T) {
	c := figure1Corpus(t)
	q, err := Compile(`//V->NP`)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := c.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("matches = %d, want 2", len(ms))
	}
	for _, m := range ms {
		if m.Node.Tag != "NP" || m.TreeID != 1 {
			t.Errorf("match = %+v", m)
		}
	}
	n, err := c.Count(q)
	if err != nil || n != 2 {
		t.Errorf("Count = %d, %v", n, err)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(`//NP[`); err == nil {
		t.Error("syntax error not reported")
	}
	if _, err := Compile(`//S@lex`); err == nil {
		t.Error("semantic error not reported")
	}
}

func TestQueryStringAndSQL(t *testing.T) {
	q := MustCompile(`//VB->NP`)
	if q.String() != `//VB->NP` {
		t.Errorf("String = %q", q.String())
	}
	if q.Canonical() != `//VB->NP` {
		t.Errorf("Canonical = %q", q.Canonical())
	}
	sql, err := q.SQL()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "n2.left = n1.right") {
		t.Errorf("SQL = %s", sql)
	}
}

func TestOracleAgreement(t *testing.T) {
	c, err := GenerateCorpus("wsj", 0.001, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, eq := range EvalQueries() {
		q, err := Compile(eq.Text)
		if err != nil {
			t.Fatalf("Q%d: %v", eq.ID, err)
		}
		fast, err := c.Select(q)
		if err != nil {
			t.Fatalf("Q%d select: %v", eq.ID, err)
		}
		slow, err := c.SelectOracle(q)
		if err != nil {
			t.Fatalf("Q%d oracle: %v", eq.ID, err)
		}
		if len(fast) != len(slow) {
			t.Errorf("Q%d: engine %d matches, oracle %d", eq.ID, len(fast), len(slow))
			continue
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Errorf("Q%d: match %d differs", eq.ID, i)
				break
			}
		}
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	c := figure1Corpus(t)
	var sb strings.Builder
	if err := c.Save(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCorpus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 1 {
		t.Fatalf("Len = %d", back.Len())
	}
	n, err := back.Count(MustCompile(`//NP`))
	if err != nil || n != 4 {
		t.Errorf("Count(//NP) = %d, %v", n, err)
	}
}

func TestOpenCorpusMissing(t *testing.T) {
	if _, err := OpenCorpus("/nonexistent/corpus.mrg"); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestAddInvalidatesIndex(t *testing.T) {
	c := figure1Corpus(t)
	q := MustCompile(`//NP`)
	n, _ := c.Count(q)
	if n != 4 {
		t.Fatalf("initial count = %d", n)
	}
	if err := c.AddSentence(`(S (NP me) (VP (V ran)))`); err != nil {
		t.Fatal(err)
	}
	n, _ = c.Count(q)
	if n != 5 {
		t.Errorf("count after Add = %d, want 5", n)
	}
}

func TestGenerateCorpusErrors(t *testing.T) {
	if _, err := GenerateCorpus("brown", 0.01, 1); err == nil {
		t.Error("expected error for unknown profile")
	}
}

func TestStats(t *testing.T) {
	c := figure1Corpus(t)
	st := c.Stats()
	if st.Sentences != 1 || st.Words != 9 || st.TreeNodes != 15 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEvalQueriesAccessor(t *testing.T) {
	qs := EvalQueries()
	if len(qs) != 23 {
		t.Fatalf("EvalQueries = %d", len(qs))
	}
	ids := make([]int, len(qs))
	nx := 0
	for i, q := range qs {
		ids[i] = q.ID
		if q.XPath {
			nx++
		}
	}
	if !sort.IntsAreSorted(ids) || ids[0] != 1 || ids[22] != 23 {
		t.Errorf("ids = %v", ids)
	}
	if nx != 11 {
		t.Errorf("XPath-expressible = %d, want 11", nx)
	}
}

func TestStoreSnapshotRoundTrip(t *testing.T) {
	orig, err := GenerateCorpus("wsj", 0.001, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := orig.SaveStore(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() {
		t.Fatalf("trees = %d, want %d", loaded.Len(), orig.Len())
	}
	for _, q := range []string{`//NP`, `//VB->NP`, `//VP{/VB-->NN}`, `//_[@lex=rapprochement]`} {
		query := MustCompile(q)
		a, err := orig.Count(query)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Count(query)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: %d vs %d after snapshot round trip", q, a, b)
		}
	}
	// The reconstructed corpus still cross-checks against the oracle.
	q := MustCompile(`//VP{//NP$}`)
	fast, _ := loaded.Select(q)
	slow, _ := loaded.SelectOracle(q)
	if len(fast) != len(slow) {
		t.Errorf("loaded corpus: engine %d vs oracle %d", len(fast), len(slow))
	}
}

func TestLoadStoreErrors(t *testing.T) {
	if _, err := LoadStore(strings.NewReader("garbage")); err == nil {
		t.Error("expected error for bad snapshot")
	}
	if _, err := OpenStore("/nonexistent.idx"); err == nil {
		t.Error("expected error for missing file")
	}
}

// TestConcurrentQueries checks that a built corpus answers queries safely
// from many goroutines (the engine is read-only after Build).
func TestConcurrentQueries(t *testing.T) {
	c, err := GenerateCorpus("wsj", 0.002, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	queries := []*Query{
		MustCompile(`//NP`), MustCompile(`//VB->NP`), MustCompile(`//VP{/VB-->NN}`),
		MustCompile(`//NP[not(//JJ)]`), MustCompile(`//S[//_[@lex=saw]]`),
	}
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i], err = c.Count(q)
		if err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 8*len(queries))
	for g := 0; g < 8; g++ {
		for i, q := range queries {
			go func(i int, q *Query) {
				n, err := c.Count(q)
				if err == nil && n != want[i] {
					err = fmt.Errorf("query %d: got %d, want %d", i, n, want[i])
				}
				done <- err
			}(i, q)
		}
	}
	for i := 0; i < 8*len(queries); i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

func TestFunctionLibraryThroughPublicAPI(t *testing.T) {
	c := figure1Corpus(t)
	cases := []struct {
		query string
		want  int
	}{
		{`//V/following-sibling::_[position()=1][.NP]`, 1}, // the paper's XPath formulation of ==>
		{`//VP/_[last()][.NP]`, 1},                         // and of child right-alignment
		{`//NP[count(/_)=3]`, 1},
		{`//_[contains(@lex,'o')]`, 3},
	}
	for _, tc := range cases {
		n, err := c.Count(MustCompile(tc.query))
		if err != nil {
			t.Errorf("%s: %v", tc.query, err)
			continue
		}
		if n != tc.want {
			t.Errorf("%s: count = %d, want %d", tc.query, n, tc.want)
		}
	}
}

func TestFigure2ThroughPublicAPI(t *testing.T) {
	c := figure1Corpus(t)
	cases := []struct {
		query string
		want  int
	}{
		{`//S[//_[@lex=saw]]`, 1},
		{`//V==>NP`, 1},
		{`//V->NP`, 2},
		{`//VP/V-->N`, 3},
		{`//VP{/V-->N}`, 2},
		{`//VP{/NP$}`, 1},
		{`//VP{//NP$}`, 2},
	}
	for _, tc := range cases {
		n, err := c.Count(MustCompile(tc.query))
		if err != nil {
			t.Errorf("%s: %v", tc.query, err)
			continue
		}
		if n != tc.want {
			t.Errorf("%s: count = %d, want %d", tc.query, n, tc.want)
		}
	}
}
