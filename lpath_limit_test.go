package lpath

import (
	"context"
	"reflect"
	"testing"
)

// limitStrategies pins each executor strategy the way the differential
// fuzzer does, so the early-termination parity holds for the probe loop, the
// merge sweep, the twig sweep, the bitmap kernels and the planner's own mix
// alike.
func limitStrategies() []struct {
	name string
	opts []Option
} {
	return []struct {
		name string
		opts []Option
	}{
		{"auto", nil},
		{"probe", []Option{WithoutMergeExecutor(), WithoutTwigExecutor()}},
		{"merge", []Option{withMergeAlways(), WithoutTwigExecutor()}},
		{"twig", []Option{withTwigAlways()}},
		{"bitmap", []Option{withBitmapAlways()}},
		{"no-bitmap", []Option{WithoutBitmapExecutor()}},
	}
}

// TestSelectLimitParity holds SelectLimit(k) ≡ Select()[:k] for every query
// of the paper's 23-query suite, every executor strategy, and limits around
// the interesting boundaries (empty, one, mid-stream, exact, past the end).
func TestSelectLimitParity(t *testing.T) {
	for _, st := range limitStrategies() {
		t.Run(st.name, func(t *testing.T) {
			c, err := GenerateCorpus("wsj", 0.004, 3, st.opts...)
			if err != nil {
				t.Fatal(err)
			}
			for _, eq := range EvalQueries() {
				q := MustCompile(eq.Text)
				full, err := c.Select(q)
				if err != nil {
					t.Fatalf("Q%d select: %v", eq.ID, err)
				}
				for _, k := range []int{0, 1, 7, len(full), len(full) + 1} {
					got, err := c.SelectLimit(q, k)
					if err != nil {
						t.Fatalf("Q%d limit %d: %v", eq.ID, k, err)
					}
					want := full
					if k < len(full) {
						want = full[:k]
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("Q%d: SelectLimit(%d) = %d matches, want prefix of %d",
							eq.ID, k, len(got), len(want))
					}
				}
			}
		})
	}
}

// TestSelectParallelLimitParity holds the sharded path to the same contract:
// SelectParallelLimit(k) ≡ Select()[:k], independent of shard and worker
// counts.
func TestSelectParallelLimitParity(t *testing.T) {
	c, err := GenerateCorpus("wsj", 0.004, 3, WithShards(3), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, eq := range EvalQueries() {
		q := MustCompile(eq.Text)
		full, err := c.Select(q)
		if err != nil {
			t.Fatalf("Q%d select: %v", eq.ID, err)
		}
		for _, k := range []int{0, 1, 7, len(full), len(full) + 1} {
			got, err := c.SelectParallelLimit(q, k)
			if err != nil {
				t.Fatalf("Q%d parallel limit %d: %v", eq.ID, k, err)
			}
			want := full
			if k < len(full) {
				want = full[:k]
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("Q%d: SelectParallelLimit(%d) = %d matches, want prefix of %d",
					eq.ID, k, len(got), len(want))
			}
		}
	}
}

// TestMatchesIterator exercises the range-over-func surface: full
// consumption equals Select, breaking early equals the prefix, and
// cancellation surfaces as the iterator's final error pair.
func TestMatchesIterator(t *testing.T) {
	c, err := GenerateCorpus("wsj", 0.002, 5)
	if err != nil {
		t.Fatal(err)
	}
	q := MustCompile(`//VB->NP`)
	full, err := c.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 10 {
		t.Fatalf("corpus too small: %d matches", len(full))
	}

	var all []Match
	for m, err := range c.Matches(q) {
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, m)
	}
	if !reflect.DeepEqual(all, full) {
		t.Errorf("full iteration: %d matches, Select: %d", len(all), len(full))
	}

	var prefix []Match
	for m, err := range c.Matches(q) {
		if err != nil {
			t.Fatal(err)
		}
		prefix = append(prefix, m)
		if len(prefix) == 5 {
			break
		}
	}
	if !reflect.DeepEqual(prefix, full[:5]) {
		t.Errorf("early break: %d matches, want the first 5", len(prefix))
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sawErr := false
	for _, err := range c.MatchesContext(ctx, q) {
		if err != nil {
			sawErr = true
			if err != context.Canceled {
				t.Errorf("iterator error = %v, want context.Canceled", err)
			}
		}
	}
	if !sawErr {
		t.Error("cancelled iteration yielded no error")
	}
}

// TestSelectLimitText covers the plan-cache serving path: with and without a
// configured cache, SelectLimitText equals the prefix of SelectText.
func TestSelectLimitText(t *testing.T) {
	for _, cached := range []bool{false, true} {
		opts := []Option{}
		if cached {
			opts = append(opts, WithPlanCache(16))
		}
		c, err := GenerateCorpus("wsj", 0.002, 5, opts...)
		if err != nil {
			t.Fatal(err)
		}
		const text = `//VB->NP`
		full, err := c.SelectText(text)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.SelectLimitText(text, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(full) < 3 || !reflect.DeepEqual(got, full[:3]) {
			t.Errorf("cached=%v: SelectLimitText(3) = %d matches, want the first 3 of %d",
				cached, len(got), len(full))
		}
		if _, err := c.SelectLimitText(`//VB[`, 3); err == nil {
			t.Errorf("cached=%v: compile error not reported", cached)
		}
	}
}

// TestSelectLimitScoped pins the windowed scoped-roots expansion: scoping on
// the virtual root must restrict per tree inside each streaming window.
func TestSelectLimitScoped(t *testing.T) {
	c, err := GenerateCorpus("wsj", 0.002, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range []string{`//S{//NP$}`, `//VP{/VB-->NN}`, `//NP[not(//JJ) and //NN]`} {
		q := MustCompile(text)
		full, err := c.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 4, len(full)} {
			got, err := c.SelectLimit(q, k)
			if err != nil {
				t.Fatal(err)
			}
			want := full
			if k < len(full) {
				want = full[:k]
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: SelectLimit(%d) = %d matches, want %d", text, k, len(got), len(want))
			}
		}
	}
}
