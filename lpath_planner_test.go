package lpath

import (
	"reflect"
	"strings"
	"testing"
)

// TestPlannerResultIdentity is the optimizer's acceptance property: over the
// full 23-query evaluation matrix, the cost-based planner changes evaluation
// strategy only — results are byte-identical with the planner on and off,
// serially and sharded, and the count pipelines agree with materialization.
func TestPlannerResultIdentity(t *testing.T) {
	planned, err := GenerateCorpus("wsj", 0.005, 11, WithShards(4), WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	unplanned, err := GenerateCorpus("wsj", 0.005, 11, WithShards(4), WithWorkers(3), WithoutPlanner())
	if err != nil {
		t.Fatal(err)
	}
	// Executor rotation: the merge executor forced on every eligible step,
	// and disabled entirely — both must match the planner-chosen mix.
	forcedMerge, err := GenerateCorpus("wsj", 0.005, 11, WithShards(4), WithWorkers(3), withMergeAlways())
	if err != nil {
		t.Fatal(err)
	}
	probeOnly, err := GenerateCorpus("wsj", 0.005, 11, WithShards(4), WithWorkers(3), WithoutMergeExecutor())
	if err != nil {
		t.Fatal(err)
	}
	// Twig rotation: the holistic sweep forced on every maximal run, and
	// disabled entirely (falling back to the per-step probe/merge pipeline).
	forcedTwig, err := GenerateCorpus("wsj", 0.005, 11, WithShards(4), WithWorkers(3), withTwigAlways())
	if err != nil {
		t.Fatal(err)
	}
	twigOff, err := GenerateCorpus("wsj", 0.005, 11, WithShards(4), WithWorkers(3), WithoutTwigExecutor())
	if err != nil {
		t.Fatal(err)
	}
	// Bitmap rotation: the dense-bitset kernels forced on every eligible
	// scope entry, and disabled entirely (per-scope expansion, map-backed
	// satisfier sets).
	forcedBitmap, err := GenerateCorpus("wsj", 0.005, 11, WithShards(4), WithWorkers(3), withBitmapAlways())
	if err != nil {
		t.Fatal(err)
	}
	bitmapOff, err := GenerateCorpus("wsj", 0.005, 11, WithShards(4), WithWorkers(3), WithoutBitmapExecutor())
	if err != nil {
		t.Fatal(err)
	}
	for _, eq := range EvalQueries() {
		q := MustCompile(eq.Text)
		want, err := unplanned.Select(q)
		if err != nil {
			t.Fatalf("Q%d unplanned: %v", eq.ID, err)
		}
		got, err := planned.Select(q)
		if err != nil {
			t.Fatalf("Q%d planned: %v", eq.ID, err)
		}
		if !matchesEqual(got, want) {
			t.Errorf("Q%d: planned %d matches, unplanned %d — or a match differs",
				eq.ID, len(got), len(want))
		}
		gotMerge, err := forcedMerge.Select(q)
		if err != nil {
			t.Fatalf("Q%d forced-merge: %v", eq.ID, err)
		}
		if !matchesEqual(gotMerge, want) {
			t.Errorf("Q%d: forced-merge %d matches, unplanned %d — or a match differs",
				eq.ID, len(gotMerge), len(want))
		}
		gotProbe, err := probeOnly.Select(q)
		if err != nil {
			t.Fatalf("Q%d probe-only: %v", eq.ID, err)
		}
		if !matchesEqual(gotProbe, want) {
			t.Errorf("Q%d: probe-only %d matches, unplanned %d — or a match differs",
				eq.ID, len(gotProbe), len(want))
		}
		gotTwig, err := forcedTwig.Select(q)
		if err != nil {
			t.Fatalf("Q%d forced-twig: %v", eq.ID, err)
		}
		if !matchesEqual(gotTwig, want) {
			t.Errorf("Q%d: forced-twig %d matches, unplanned %d — or a match differs",
				eq.ID, len(gotTwig), len(want))
		}
		gotNoTwig, err := twigOff.Select(q)
		if err != nil {
			t.Fatalf("Q%d twig-off: %v", eq.ID, err)
		}
		if !matchesEqual(gotNoTwig, want) {
			t.Errorf("Q%d: twig-off %d matches, unplanned %d — or a match differs",
				eq.ID, len(gotNoTwig), len(want))
		}
		gotBitmap, err := forcedBitmap.Select(q)
		if err != nil {
			t.Fatalf("Q%d forced-bitmap: %v", eq.ID, err)
		}
		if !matchesEqual(gotBitmap, want) {
			t.Errorf("Q%d: forced-bitmap %d matches, unplanned %d — or a match differs",
				eq.ID, len(gotBitmap), len(want))
		}
		gotNoBitmap, err := bitmapOff.Select(q)
		if err != nil {
			t.Fatalf("Q%d bitmap-off: %v", eq.ID, err)
		}
		if !matchesEqual(gotNoBitmap, want) {
			t.Errorf("Q%d: bitmap-off %d matches, unplanned %d — or a match differs",
				eq.ID, len(gotNoBitmap), len(want))
		}
		gotPar, err := planned.SelectParallel(q)
		if err != nil {
			t.Fatalf("Q%d planned parallel: %v", eq.ID, err)
		}
		wantPar, err := unplanned.SelectParallel(q)
		if err != nil {
			t.Fatalf("Q%d unplanned parallel: %v", eq.ID, err)
		}
		if !reflect.DeepEqual(got, gotPar) || !matchesEqual(gotPar, wantPar) {
			t.Errorf("Q%d: parallel results diverge (planned %d / unplanned %d)",
				eq.ID, len(gotPar), len(wantPar))
		}
		for name, pair := range map[string][2]int{
			"Count":         {mustCount(t, planned.Count, q), mustCount(t, unplanned.Count, q)},
			"CountParallel": {mustCount(t, planned.CountParallel, q), mustCount(t, unplanned.CountParallel, q)},
		} {
			if pair[0] != len(want) || pair[1] != len(want) {
				t.Errorf("Q%d %s: planned %d, unplanned %d, want %d",
					eq.ID, name, pair[0], pair[1], len(want))
			}
		}
	}
}

func mustCount(t *testing.T, count func(*Query) (int, error), q *Query) int {
	t.Helper()
	n, err := count(q)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// matchesEqual compares match lists across two corpora built from the same
// trees: Node pointers differ, so compare (tree, tag, words) in order.
func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].TreeID != b[i].TreeID || a[i].Node.Tag != b[i].Node.Tag ||
			strings.Join(a[i].Node.Words(), " ") != strings.Join(b[i].Node.Words(), " ") {
			return false
		}
	}
	return true
}

// TestExplainOnEvalMatrix checks Corpus.Explain renders a plan with actual
// cardinalities for every matrix query, and that explaining never perturbs
// subsequent evaluation.
func TestExplainOnEvalMatrix(t *testing.T) {
	c, err := GenerateCorpus("wsj", 0.002, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, eq := range EvalQueries() {
		q := MustCompile(eq.Text)
		report, err := c.Explain(q)
		if err != nil {
			t.Fatalf("Q%d explain: %v", eq.ID, err)
		}
		if !strings.Contains(report, "query: "+eq.Text) ||
			!strings.Contains(report, "estimated matches:") ||
			!strings.Contains(report, "actual:") {
			t.Errorf("Q%d: malformed report:\n%s", eq.ID, report)
		}
		ms, err := c.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		n, err := c.Count(q)
		if err != nil || n != len(ms) {
			t.Errorf("Q%d after explain: Count = %d, len(Select) = %d, %v", eq.ID, n, len(ms), err)
		}
	}
	// Explain works on a planner-disabled corpus too (it plans on demand).
	c.Configure(WithoutPlanner())
	if _, err := c.Explain(MustCompile(`//NP`)); err != nil {
		t.Errorf("explain without planner: %v", err)
	}
}
