// Compare: the same linguistic questions asked in three query dialects.
//
// Poses a set of linguistic questions in LPath, TGrep2 and CorpusSearch
// syntax, runs each on its engine over the same corpus, and shows that the
// three systems agree on result sizes — the setup behind Figures 7 and 8 of
// the paper.
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"log"
	"time"

	"lpath"
	"lpath/internal/corpussearch"
	"lpath/internal/tgrep"
	"lpath/internal/tree"
)

type question struct {
	desc  string
	lpath string
	tgrep string
	cs    string
}

var questions = []question{
	{
		desc:  "sentences containing the word `saw`",
		lpath: `//S[//_[@lex=saw]]`,
		tgrep: `S << saw`,
		cs:    `node: S; query: (S Doms saw)`,
	},
	{
		desc:  "noun phrases immediately following a base verb",
		lpath: `//VB->NP`,
		tgrep: `NP , VB`,
		cs:    `node: $ROOT; query: (VB iPrecedes NP); print: NP`,
	},
	{
		desc:  "within a VP, nouns following a verb child of that VP",
		lpath: `//VP{/VB-->NN}`,
		tgrep: `NN >> VP=p ,, (VB > =p)`,
		cs:    `node: VP; query: (VP iDoms VB) and (VB Precedes NN); print: NN`,
	},
	{
		desc:  "noun phrases that are the rightmost descendant of a VP",
		lpath: `//VP{//NP$}`,
		tgrep: `NP >>' VP`,
		cs:    `node: VP; query: (VP DomsRightmost NP); print: NP`,
	},
	{
		desc:  "noun phrases with no adjective anywhere below",
		lpath: `//NP[not(//JJ)]`,
		tgrep: `NP !<< JJ`,
		cs:    `node: NP; query: not (NP Doms JJ); print: NP`,
	},
}

func main() {
	c, err := lpath.GenerateCorpus("wsj", 0.01, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Build(); err != nil {
		log.Fatal(err)
	}
	// Build the baseline systems over the same trees.
	trees := treeCorpus(c)
	tg := tgrep.BuildCorpus(trees)
	cs := corpussearch.BuildCorpus(trees)

	st := c.Stats()
	fmt.Printf("corpus: %d sentences, %d nodes\n\n", st.Sentences, st.TreeNodes)

	for _, qq := range questions {
		fmt.Println(qq.desc)

		start := time.Now()
		nl, err := c.Count(lpath.MustCompile(qq.lpath))
		if err != nil {
			log.Fatal(err)
		}
		dl := time.Since(start)

		start = time.Now()
		nt := tg.Count(tgrep.MustCompile(qq.tgrep))
		dt := time.Since(start)

		start = time.Now()
		nc, err := cs.Count(corpussearch.MustParse(qq.cs))
		if err != nil {
			log.Fatal(err)
		}
		dc := time.Since(start)

		fmt.Printf("  LPath        %-40s %6d matches %10v\n", qq.lpath, nl, dl.Round(time.Microsecond))
		fmt.Printf("  TGrep2       %-40s %6d matches %10v\n", qq.tgrep, nt, dt.Round(time.Microsecond))
		fmt.Printf("  CorpusSearch %-40s %6d matches %10v\n", qq.cs, nc, dc.Round(time.Microsecond))
		if nl != nt || nl != nc {
			fmt.Printf("  NOTE: dialects disagree (%d/%d/%d) — see docs on dialect equivalence\n", nl, nt, nc)
		}
		fmt.Println()
	}
}

// treeCorpus exposes the corpus trees to the internal baseline builders.
func treeCorpus(c *lpath.Corpus) *tree.Corpus {
	return &tree.Corpus{Trees: c.Trees()}
}
