// Syntaxsearch: large-corpus linguistic search.
//
// Generates a WSJ-profile corpus, runs the paper's 23 evaluation queries
// (Figure 6(c)) through the label-based engine, cross-checks a sample of
// them against the reference evaluator, and reports result sizes and
// timings.
//
//	go run ./examples/syntaxsearch [-scale 0.02]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"lpath"
)

func main() {
	scale := flag.Float64("scale", 0.02, "corpus scale (1.0 = paper size)")
	flag.Parse()

	start := time.Now()
	c, err := lpath.GenerateCorpus("wsj", *scale, 42)
	if err != nil {
		log.Fatal(err)
	}
	st := c.Stats()
	fmt.Printf("generated WSJ-profile corpus: %d sentences, %d nodes, %d words (%v)\n",
		st.Sentences, st.TreeNodes, st.Words, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	if err := c.Build(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built interval-label store and indexes (%v)\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("%-4s %-44s %9s %10s\n", "Q", "query", "results", "time")
	for _, eq := range lpath.EvalQueries() {
		q, err := lpath.Compile(eq.Text)
		if err != nil {
			log.Fatalf("Q%d: %v", eq.ID, err)
		}
		qs := time.Now()
		n, err := c.Count(q)
		if err != nil {
			log.Fatalf("Q%d: %v", eq.ID, err)
		}
		fmt.Printf("Q%-3d %-44s %9d %10v\n", eq.ID, eq.Text, n, time.Since(qs).Round(time.Microsecond))
	}

	// Cross-check a few representative queries against the tree-walking
	// oracle: the label-based engine must agree exactly.
	fmt.Println("\ncross-checking engine against the reference evaluator:")
	for _, text := range []string{
		`//VB->NP`, `//VP{/VB-->NN}`, `//VP[{//^VB->NP->PP$}]`, `//NP[not(//JJ)]`,
	} {
		q := lpath.MustCompile(text)
		fast, err := c.Select(q)
		if err != nil {
			log.Fatal(err)
		}
		slow, err := c.SelectOracle(q)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if len(fast) != len(slow) {
			status = fmt.Sprintf("MISMATCH (%d vs %d)", len(fast), len(slow))
		}
		fmt.Printf("  %-40s %s\n", text, status)
	}
}
