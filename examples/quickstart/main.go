// Quickstart: the paper's running example (Figures 1 and 2).
//
// Builds the syntax tree of "I saw the old man with a dog today" and runs
// every example query from Figure 2, printing the matched constituents —
// the expected results are the ones given in the paper.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"lpath"
)

const figure1 = `
	(S
	  (NP I)
	  (VP
	    (V saw)
	    (NP
	      (NP (Det the) (Adj old) (N man))
	      (PP (Prep with)
	          (NP (Det a) (N dog)))))
	  (N today))`

func main() {
	c := lpath.NewCorpus()
	if err := c.AddSentence(figure1); err != nil {
		log.Fatal(err)
	}

	queries := []struct{ desc, text string }{
		{"Find a sentence containing the word saw", `//S[//_[@lex=saw]]`},
		{"Noun phrases that are an immediate following sibling of a verb", `//V==>NP`},
		{"Noun phrases that immediately follow a verb", `//V->NP`},
		{"Nouns that follow a verb which is a child of a verb phrase", `//VP/V-->N`},
		{"Within a verb phrase, nouns following a verb child of it", `//VP{/V-->N}`},
		{"Noun phrases that are the rightmost child of a verb phrase", `//VP{/NP$}`},
		{"Noun phrases that are the rightmost descendant of a verb phrase", `//VP{//NP$}`},
	}

	fmt.Println("Sentence: I saw the old man with a dog today")
	fmt.Println()
	for _, qq := range queries {
		q, err := lpath.Compile(qq.text)
		if err != nil {
			log.Fatal(err)
		}
		ms, err := c.Select(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  %s\n", qq.desc, qq.text)
		for _, m := range ms {
			fmt.Printf("    -> %s[%s]\n", m.Node.Tag, strings.Join(m.Node.Words(), " "))
		}
		fmt.Println()
	}

	// The query engine translates LPath to SQL over the labeled node
	// relation (Section 4); show one translation.
	q := lpath.MustCompile(`//V->NP`)
	sql, err := q.SQL()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Relational translation of //V->NP:")
	fmt.Println(sql)
}
