// Labeling: the interval labeling scheme of Section 4, visualized.
//
// Labels the running-example tree and prints the relational representation
// of Figure 5 ({left, right, depth, id, pid, name, value}), then
// demonstrates the Table 2 label comparisons of Example 4.1: S is an
// ancestor of NP(3,9) because the spans contain each other and S is
// shallower, and V immediately precedes NP(3,9) because NP.left = V.right.
//
//	go run ./examples/labeling
package main

import (
	"fmt"

	"lpath/internal/label"
	"lpath/internal/tree"
)

func main() {
	t := tree.Figure1()
	fmt.Println("Tree:", t.Root)
	fmt.Println()

	labeled := label.Assign(t)
	fmt.Println("Relational representation (Figure 5):")
	fmt.Printf("%6s %6s %6s %4s %4s  %-6s %s\n", "left", "right", "depth", "id", "pid", "name", "value")
	for _, ln := range labeled {
		l := ln.Label
		fmt.Printf("%6d %6d %6d %4d %4d  %-6s\n", l.Left, l.Right, l.Depth, l.ID, l.PID, ln.Node.Tag)
		if word, ok := ln.Node.Attr("lex"); ok {
			fmt.Printf("%6d %6d %6d %4d %4d  %-6s %s\n", l.Left, l.Right, l.Depth, l.ID, l.PID, "@lex", word)
		}
	}

	// Example 4.1: find the labels of S, V and the object NP.
	var s, v, np label.Label
	for _, ln := range labeled {
		switch {
		case ln.Node.Tag == "S":
			s = ln.Label
		case ln.Node.Tag == "V":
			v = ln.Label
		case ln.Node.Tag == "NP" && ln.Label.Left == 3 && ln.Label.Right == 9:
			np = ln.Label
		}
	}
	fmt.Println()
	fmt.Println("Example 4.1, by label comparison alone:")
	fmt.Printf("  S(l=%d,r=%d,d=%d) ancestor of NP(l=%d,r=%d,d=%d)?  %v\n",
		s.Left, s.Right, s.Depth, np.Left, np.Right, np.Depth, label.IsAncestor(s, np))
	fmt.Printf("  V(l=%d,r=%d) immediately precedes NP(l=%d,r=%d)?    %v  (NP.left = V.right)\n",
		v.Left, v.Right, np.Left, np.Right, label.IsImmediatePreceding(v, np))
	fmt.Printf("  NP immediately follows V?                          %v\n",
		label.IsImmediateFollowing(np, v))

	// The Section 1 motivation: every constituent immediately following
	// the verb, read off the labels with a single comparison each.
	fmt.Println()
	fmt.Println("Constituents immediately following V (x.left = V.right):")
	for _, ln := range labeled {
		if label.IsImmediateFollowing(ln.Label, v) {
			fmt.Printf("  %s  spanning %q\n", ln.Node.Tag, sentenceSpan(t, ln.Node))
		}
	}
}

func sentenceSpan(t *tree.Tree, n *tree.Node) string {
	words := n.Words()
	out := ""
	for i, w := range words {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}
