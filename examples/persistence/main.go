// Persistence: label once, query many times.
//
// The paper's engine labels the treebank once, loads the relation into a
// database, and then answers queries against the stored labels. This
// example does the same with store snapshots: it generates a corpus, saves
// the labeled store to disk, reloads it, and compares cold-start paths —
// re-labeling from trees vs. loading the prebuilt snapshot.
//
//	go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"lpath"
)

func main() {
	dir, err := os.MkdirTemp("", "lpath-persistence")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snapshot := filepath.Join(dir, "wsj.idx")

	// Build a corpus and its index, and snapshot it.
	c, err := lpath.GenerateCorpus("wsj", 0.02, 42)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := c.Build(); err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)

	f, err := os.Create(snapshot)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.SaveStore(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(snapshot)
	if err != nil {
		log.Fatal(err)
	}
	st := c.Stats()
	fmt.Printf("corpus: %d sentences, %d nodes\n", st.Sentences, st.TreeNodes)
	fmt.Printf("labeling + index build: %v\n", buildTime.Round(time.Millisecond))
	fmt.Printf("snapshot size: %d bytes\n\n", info.Size())

	// Cold start from the snapshot.
	start = time.Now()
	loaded, err := lpath.OpenStore(snapshot)
	if err != nil {
		log.Fatal(err)
	}
	loadTime := time.Since(start)
	fmt.Printf("snapshot load (incl. tree reconstruction): %v\n\n", loadTime.Round(time.Millisecond))

	// The loaded corpus answers the same queries with the same results.
	for _, q := range []string{`//VB->NP`, `//VP{/VB-->NN}`, `//_[@lex=rapprochement]`} {
		query := lpath.MustCompile(q)
		a, err := c.Count(query)
		if err != nil {
			log.Fatal(err)
		}
		b, err := loaded.Count(query)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if a != b {
			status = "MISMATCH"
		}
		fmt.Printf("  %-28s original %6d   loaded %6d   %s\n", q, a, b, status)
	}
}
