package lpath

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestSnapshotQueriesAllStrategies is the end-to-end snapshot property: a
// corpus saved to the binary snapshot format and loaded back (both via the
// in-memory reader and the mmap-backed file path) answers all 23 paper
// queries with counts identical to the text-built store, under every
// executor strategy the engine has.
func TestSnapshotQueriesAllStrategies(t *testing.T) {
	strategies := []struct {
		name string
		opts []Option
	}{
		{"default", nil},
		{"no-planner", []Option{WithoutPlanner()}},
		{"no-merge", []Option{WithoutMergeExecutor()}},
		{"no-twig", []Option{WithoutTwigExecutor()}},
		{"no-bitmap", []Option{WithoutBitmapExecutor()}},
		{"bitmap-always", []Option{withBitmapAlways()}},
		{"sharded", []Option{WithShards(4), WithWorkers(3)}},
	}

	built, err := GenerateCorpus("wsj", 0.005, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := built.SaveStore(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wsj.lpx")
	if err := built.SaveStoreFile(path); err != nil {
		t.Fatal(err)
	}

	for _, st := range strategies {
		st := st
		t.Run(st.name, func(t *testing.T) {
			text, err := GenerateCorpus("wsj", 0.005, 42, st.opts...)
			if err != nil {
				t.Fatal(err)
			}
			fromReader, err := LoadStore(bytes.NewReader(buf.Bytes()), st.opts...)
			if err != nil {
				t.Fatal(err)
			}
			fromFile, err := OpenStore(path, st.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer fromFile.Close()

			for _, eq := range EvalQueries() {
				q := MustCompile(eq.Text)
				want, err := text.Count(q)
				if err != nil {
					t.Fatalf("Q%d text: %v", eq.ID, err)
				}
				if got, err := fromReader.Count(q); err != nil || got != want {
					t.Errorf("Q%d: LoadStore count = %d (%v), text count = %d", eq.ID, got, err, want)
				}
				if got, err := fromFile.Count(q); err != nil || got != want {
					t.Errorf("Q%d: OpenStore count = %d (%v), text count = %d", eq.ID, got, err, want)
				}
				// The parallel path shards the snapshot-reconstructed trees,
				// re-labeling them from scratch — a deep consistency check on
				// the reconstruction.
				if got, err := fromFile.CountParallel(q); err != nil || got != want {
					t.Errorf("Q%d: snapshot CountParallel = %d (%v), want %d", eq.ID, got, err, want)
				}
				par, err := fromReader.SelectParallel(q)
				if err != nil || len(par) != want {
					t.Errorf("Q%d: snapshot SelectParallel = %d (%v), want %d", eq.ID, len(par), err, want)
				}
			}
		})
	}
}

// TestSnapshotMatchesCarryNodes verifies snapshot-loaded matches expose
// usable tree nodes (span text, attributes), not just counts.
func TestSnapshotMatchesCarryNodes(t *testing.T) {
	orig := figure1Corpus(t)
	var buf bytes.Buffer
	if err := orig.SaveStore(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := MustCompile(`//V->NP`)
	want, err := orig.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("matches = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Node == nil || got[i].Node.Tag != want[i].Node.Tag {
			t.Errorf("match %d node = %+v, want tag %q", i, got[i].Node, want[i].Node.Tag)
		}
		if gs, ws := got[i].Node.String(), want[i].Node.String(); gs != ws {
			t.Errorf("match %d subtree %s, want %s", i, gs, ws)
		}
	}
}
