#!/usr/bin/env bash
# server_smoke.sh — end-to-end smoke test for lpathd against the testdata
# corpus. Builds the CLI and the server, starts lpathd, waits for /healthz,
# runs known queries through /v1/query and /v1/count, asserts the counts
# match the lpath CLI's answers on the same corpus, provokes 429 shedding,
# and checks /metrics reports the traffic. Exits non-zero on any mismatch.
#
# Usage: scripts/server_smoke.sh [port]
set -euo pipefail

cd "$(dirname "$0")/.."
PORT="${1:-18080}"
BASE="http://127.0.0.1:${PORT}"
CORPUS=testdata/smoke.mrg
QUERIES=('//NP' '//VP/VBD-->NN' '//S[//NP[//JJ]]')

BIN=$(mktemp -d)
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$BIN"' EXIT

echo "== building lpath + lpathd"
go build -o "$BIN/lpath" ./cmd/lpath
go build -o "$BIN/lpathd" ./cmd/lpathd

echo "== expected counts from the lpath CLI"
declare -a WANT
for i in "${!QUERIES[@]}"; do
    q="${QUERIES[$i]}"
    WANT[$i]=$("$BIN/lpath" -corpus "$CORPUS" -count "$q" | grep -F "$q: " | awk '{print $(NF-1)}')
    [ -n "${WANT[$i]}" ] || { echo "FAIL: could not parse CLI count for $q"; exit 1; }
    echo "   $q -> ${WANT[$i]}"
done

echo "== starting lpathd on :$PORT"
"$BIN/lpathd" -corpus "smoke=$CORPUS" -addr "127.0.0.1:$PORT" -quiet &
SERVER_PID=$!

for _ in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "FAIL: lpathd exited early"; exit 1; }
    sleep 0.1
done
curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' || { echo "FAIL: /healthz not ok"; exit 1; }
echo "   healthz ok"

# jq-free JSON field extraction: the response is single-line JSON.
json_int() { sed -n "s/.*\"$1\":\([0-9][0-9]*\).*/\1/p"; }

echo "== /v1/query and /v1/count vs CLI"
# "count":true: with limit pushdown the server no longer evaluates the full
# result per query request, so the exact total must be asked for explicitly.
for i in "${!QUERIES[@]}"; do
    q="${QUERIES[$i]}"
    body=$(printf '{"query":"%s","limit":3,"count":true}' "$q")

    got=$(curl -fsS -X POST -d "$body" "$BASE/v1/query" | json_int count)
    [ "$got" = "${WANT[$i]}" ] || { echo "FAIL: /v1/query $q: got $got, want ${WANT[$i]}"; exit 1; }

    got=$(curl -fsS -X POST -d "$body" "$BASE/v1/count" | json_int count)
    [ "$got" = "${WANT[$i]}" ] || { echo "FAIL: /v1/count $q: got $got, want ${WANT[$i]}"; exit 1; }
    echo "   $q -> $got (query+count agree with CLI)"
done

echo "== limit pushdown: without \"count\" a truncated response reports -1"
resp=$(curl -fsS -X POST -d '{"query":"//_","limit":1}' "$BASE/v1/query")
echo "$resp" | grep -q '"count":-1' || { echo "FAIL: truncated query leaked a count: $resp"; exit 1; }
echo "$resp" | grep -q '"truncated":true' || { echo "FAIL: limit=1 on //_ not truncated: $resp"; exit 1; }
echo "   //_ limit=1 -> truncated, count unknown"

echo "== save-then-serve: snapshot the corpus, serve it, recheck counts"
SNAPSHOT="${LPX_SNAPSHOT:-}"
if [ -z "$SNAPSHOT" ] || [ ! -f "$SNAPSHOT" ]; then
    SNAPSHOT="$BIN/smoke.lpx"
    "$BIN/lpath" -corpus "$CORPUS" -save-index "$SNAPSHOT" -count '//NP' >/dev/null
else
    echo "   using prebuilt snapshot $SNAPSHOT"
fi
kill "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true
"$BIN/lpathd" -index "smoke=$SNAPSHOT" -addr "127.0.0.1:$PORT" -quiet &
SERVER_PID=$!
for _ in $(seq 1 50); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "FAIL: lpathd -index exited early"; exit 1; }
    sleep 0.1
done
for i in "${!QUERIES[@]}"; do
    q="${QUERIES[$i]}"
    got=$(curl -fsS -X POST -d "$(printf '{"query":"%s"}' "$q")" "$BASE/v1/count" | json_int count)
    [ "$got" = "${WANT[$i]}" ] || { echo "FAIL: snapshot-served $q: got $got, want ${WANT[$i]}"; exit 1; }
    echo "   $q -> $got (snapshot agrees with text)"
done

echo "== /v1/explain returns a plan"
curl -fsS -X POST -d '{"query":"//NP"}' "$BASE/v1/explain" | grep -q 'plan:' \
    || { echo "FAIL: /v1/explain lacks a plan"; exit 1; }
echo "   explain ok"

echo "== overload shedding (max-inflight=1, no queue, expensive queries)"
# Restart against a larger synthetic corpus so each query runs long enough
# (~100ms+) for the burst to genuinely overlap the single evaluation slot.
kill "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true
"$BIN/lpathd" -gen wsj -scale 0.05 -addr "127.0.0.1:$PORT" -quiet \
    -max-inflight 1 -max-queue -1 -result-cache -1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done

codes=$(for _ in $(seq 1 20); do
    curl -s -o /dev/null -w '%{http_code}\n' -X POST \
        -d '{"query":"//_[//_[//_[//_[//_]]]]"}' "$BASE/v1/count" &
done; wait)
echo "$codes" | grep -q '^200$' || { echo "FAIL: burst: no request served"; exit 1; }
echo "$codes" | grep -q '^429$' || { echo "FAIL: burst: nothing shed with a saturated slot"; exit 1; }
if echo "$codes" | grep -qv -e '^200$' -e '^429$'; then
    echo "FAIL: burst produced unexpected status codes:"; echo "$codes"; exit 1
fi
echo "   burst: $(echo "$codes" | grep -c '^200$') served, $(echo "$codes" | grep -c '^429$') shed"

echo "== /metrics reflects the traffic"
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep 'lpathd_requests_total{endpoint="count",code="200"}' \
    | grep -qv ' 0$' || { echo "FAIL: no 200s counted for /v1/count"; exit 1; }
echo "$METRICS" | grep -q 'lpathd_request_duration_seconds_count' \
    || { echo "FAIL: latency histogram missing"; exit 1; }
echo "$METRICS" | grep -q 'lpathd_admission_total{outcome="admitted"}' \
    || { echo "FAIL: admission counters missing"; exit 1; }
echo "   metrics ok"

echo "PASS: server smoke test"
