module lpath

go 1.22
