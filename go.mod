module lpath

go 1.23
