package lpath

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// axisPropertyQueries cover all eight horizontal axes (-> --> <- <-- => ==>
// <= <==), subtree scoping and edge alignment over the WSJ tag set, for the
// randomized SelectParallel ≡ Select ≡ SelectOracle property.
var axisPropertyQueries = []string{
	`//VB->NP`, `//VB-->NN`, `//NN[<-VB]`, `//NN[<--DT]`,
	`//VB=>NP`, `//VB==>NP`, `//NP[<=VB]`, `//NP[<==VB]`,
	`//VP{/VB-->NN}`, `//VP{//NP$}`, `//VP{//^NP}`, `//S{//NP{//NN}}`,
	`//VP/^_`, `//VP/_$`, `//^NP`, `//NP$`,
	`//S[//_[@lex=saw]]`, `//NP[not(//JJ)]`,
}

// TestSelectParallelEqualsSelect checks byte-identical results (same
// matches, same order) between the serial and the sharded parallel path on
// the full 23-query evaluation matrix, across worker counts.
func TestSelectParallelEqualsSelect(t *testing.T) {
	c, err := GenerateCorpus("wsj", 0.002, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		c.Configure(WithWorkers(workers), WithShards(4))
		for _, eq := range EvalQueries() {
			q := MustCompile(eq.Text)
			serial, err := c.Select(q)
			if err != nil {
				t.Fatalf("Q%d select: %v", eq.ID, err)
			}
			par, err := c.SelectParallel(q)
			if err != nil {
				t.Fatalf("Q%d parallel (w=%d): %v", eq.ID, workers, err)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("Q%d (w=%d): parallel %d matches, serial %d — or order differs",
					eq.ID, workers, len(par), len(serial))
			}
		}
		// Byte-identity includes the zero-match case: both paths return a
		// non-nil empty slice, so DeepEqual holds without special-casing.
		q := MustCompile(`//NOSUCHTAG`)
		serial, err := c.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		par, err := c.SelectParallel(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("zero-match (w=%d): serial %#v vs parallel %#v", workers, serial, par)
		}
	}
}

// TestSelectParallelOracleProperty is the randomized three-way property:
// on corpora of varying seeds and shard layouts, SelectParallel, Select and
// the reference tree-walking oracle agree on every axis-coverage query.
func TestSelectParallelOracleProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		c, err := GenerateCorpus("wsj", 0.001, seed, WithShards(int(seed)+1), WithWorkers(3))
		if err != nil {
			t.Fatal(err)
		}
		for _, text := range axisPropertyQueries {
			q := MustCompile(text)
			par, err := c.SelectParallel(q)
			if err != nil {
				t.Fatalf("seed %d %s parallel: %v", seed, text, err)
			}
			serial, err := c.Select(q)
			if err != nil {
				t.Fatalf("seed %d %s select: %v", seed, text, err)
			}
			oracle, err := c.SelectOracle(q)
			if err != nil {
				t.Fatalf("seed %d %s oracle: %v", seed, text, err)
			}
			if len(par) != len(serial) || len(par) != len(oracle) {
				t.Errorf("seed %d %s: parallel/serial/oracle sizes %d/%d/%d",
					seed, text, len(par), len(serial), len(oracle))
				continue
			}
			for i := range par {
				if par[i] != serial[i] || par[i] != oracle[i] {
					t.Errorf("seed %d %s: match %d differs across evaluators", seed, text, i)
					break
				}
			}
		}
	}
}

func TestSelectParallelAddInvalidatesShards(t *testing.T) {
	c := NewCorpus(WithShards(2))
	if err := c.AddSentence(`(S (NP I) (VP (V saw) (NP it)))`); err != nil {
		t.Fatal(err)
	}
	q := MustCompile(`//NP`)
	n, err := c.CountParallel(q)
	if err != nil || n != 2 {
		t.Fatalf("CountParallel = %d, %v; want 2", n, err)
	}
	if err := c.AddSentence(`(S (NP me) (VP (V ran)))`); err != nil {
		t.Fatal(err)
	}
	n, err = c.CountParallel(q)
	if err != nil || n != 3 {
		t.Errorf("CountParallel after Add = %d, %v; want 3", n, err)
	}
}

func TestSelectParallelEmptyCorpus(t *testing.T) {
	c := NewCorpus()
	ms, err := c.SelectParallel(MustCompile(`//NP`))
	if err != nil || len(ms) != 0 {
		t.Errorf("empty corpus: %d matches, %v", len(ms), err)
	}
}

func TestSelectParallelContextCancelled(t *testing.T) {
	c, err := GenerateCorpus("wsj", 0.001, 2, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.SelectParallelContext(ctx, MustCompile(`//NP`)); err == nil {
		t.Error("expected error from cancelled context")
	}
}

func TestPlanCacheThroughPublicAPI(t *testing.T) {
	c := figure1Corpus(t)
	c.Configure(WithPlanCache(8))
	for i := 0; i < 3; i++ {
		n, err := c.CountText(`//NP`)
		if err != nil || n != 4 {
			t.Fatalf("CountText = %d, %v", n, err)
		}
	}
	st := c.PlanCacheStats()
	if st.Misses != 1 || st.Hits != 2 || st.Len != 1 {
		t.Errorf("stats after 3 identical queries = %+v", st)
	}
	if _, err := c.SelectText(`//NP[`); err == nil {
		t.Error("expected compile error through SelectText")
	}
	if got := c.PlanCacheStats().Len; got != 1 {
		t.Errorf("failed compile cached: Len = %d", got)
	}
	// Cached plans must produce identical results to fresh ones.
	fresh, _ := c.Select(MustCompile(`//NP`))
	cached, err := c.SelectText(`//NP`)
	if err != nil || !reflect.DeepEqual(fresh, cached) {
		t.Errorf("cached plan results differ: %v", err)
	}
}

func TestSelectTextWithoutCache(t *testing.T) {
	c := figure1Corpus(t)
	n, err := c.CountText(`//NP`)
	if err != nil || n != 4 {
		t.Fatalf("CountText without cache = %d, %v", n, err)
	}
	if st := c.PlanCacheStats(); st != (CacheStats{}) {
		t.Errorf("no-cache stats = %+v, want zero", st)
	}
}

// TestSelectParallelConcurrentUse exercises a built corpus answering
// parallel queries from many goroutines at once, as a multi-user server
// would; the -race job certifies the shard engines are read-safe.
func TestSelectParallelConcurrentUse(t *testing.T) {
	c, err := GenerateCorpus("wsj", 0.001, 4, WithShards(3), WithWorkers(2), WithPlanCache(16))
	if err != nil {
		t.Fatal(err)
	}
	q := MustCompile(`//VP/VB-->NN`)
	want, err := c.CountParallel(q)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 12)
	for g := 0; g < 12; g++ {
		go func() {
			n, err := c.CountParallel(q)
			if err == nil && n != want {
				err = fmt.Errorf("got %d, want %d", n, want)
			}
			done <- err
		}()
	}
	for i := 0; i < 12; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
