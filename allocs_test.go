package lpath

import (
	"fmt"
	"testing"
)

// allocBudgets caps warm steady-state allocations per CountText evaluation
// for every query of the evaluation matrix at scale 0.01. Budgets are ~2x the
// measured steady state (minimum 64, to absorb incidental per-group sorting
// and map growth), so a regression that reintroduces per-binding or per-row
// allocation — historically tens of thousands of objects per evaluation —
// fails loudly while arena/pool jitter does not.
var allocBudgets = map[int]int{
	1: 64, 2: 64, 3: 64, 4: 700, 5: 70, 6: 90, 7: 64, 8: 64, 9: 64,
	10: 64, 11: 64, 12: 64, 13: 64, 14: 64, 15: 64, 16: 64, 17: 64,
	18: 64, 19: 64, 20: 64, 21: 64, 22: 64, 23: 64,
}

// bitmapAllocBudgets is the same contract with the dense-bitset kernels
// forced onto every eligible scope entry and satisfier set: the bitsets are
// arena-pooled, so forcing them must not reintroduce per-scope or per-row
// allocation on any query.
var bitmapAllocBudgets = map[int]int{
	1: 64, 2: 64, 3: 64, 4: 700, 5: 70, 6: 90, 7: 64, 8: 64, 9: 64,
	10: 64, 11: 64, 12: 64, 13: 64, 14: 64, 15: 64, 16: 64, 17: 64,
	18: 64, 19: 64, 20: 64, 21: 64, 22: 64, 23: 64,
}

// TestStepEvaluationAllocBudget pins the steady-state allocation behavior of
// the executors across the full 23-query evaluation matrix: with a warm plan
// cache and grown scratch arenas, evaluation must not allocate per binding or
// per row. Before the columnar merge executor and the arena-pooled evaluation
// context, one warm CountText of Q10 allocated ~58k objects; today the twig
// and merge pipelines hold nearly every query to double-digit allocations
// (Q4's budget reflects its per-group trailing-context materialization, the
// one remaining per-group cost).
func TestStepEvaluationAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget needs a non-trivial corpus")
	}
	configs := []struct {
		name    string
		opts    []Option
		budgets map[int]int
	}{
		{"auto", nil, allocBudgets},
		{"bitmap", []Option{withBitmapAlways()}, bitmapAllocBudgets},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			opts := append([]Option{WithPlanCache(0)}, cfg.opts...)
			c, err := GenerateCorpus("wsj", 0.01, 42, opts...)
			if err != nil {
				t.Fatal(err)
			}
			for _, eq := range EvalQueries() {
				budget, ok := cfg.budgets[eq.ID]
				if !ok {
					t.Fatalf("Q%d: no allocation budget defined", eq.ID)
				}
				t.Run(fmt.Sprintf("Q%d", eq.ID), func(t *testing.T) {
					if _, err := c.CountText(eq.Text); err != nil { // warm: compile, cache, size arenas
						t.Fatal(err)
					}
					allocs := testing.AllocsPerRun(20, func() {
						if _, err := c.CountText(eq.Text); err != nil {
							t.Fatal(err)
						}
					})
					t.Logf("warm CountText(Q%d) = %.0f allocs/op (budget %d)", eq.ID, allocs, budget)
					if allocs > float64(budget) {
						t.Errorf("warm CountText(Q%d) = %.0f allocs/op, budget %d", eq.ID, allocs, budget)
					}
				})
			}
		})
	}
}
