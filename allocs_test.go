package lpath

import "testing"

// TestStepEvaluationAllocBudget pins the steady-state allocation behavior of
// the set-at-a-time executor: with a warm plan cache and grown scratch
// arenas, evaluating Q10 — the most allocation-heavy query of the evaluation
// matrix — must stay well under the per-binding executor's historical cost.
// Before the columnar merge executor and the arena-pooled evaluation context,
// one warm CountText of Q10 at scale 0.05 allocated ~58k objects; the
// acceptance bar for this executor is a ≥5x reduction (≤11.6k). The budget
// below is checked at a smaller scale so the test stays fast, with the same
// shape of query plan; the measured steady state is single-digit allocations
// per evaluation, and the budget leaves headroom only for incidental
// per-group sorting.
func TestStepEvaluationAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget needs a non-trivial corpus")
	}
	c, err := GenerateCorpus("wsj", 0.01, 42, WithPlanCache(0))
	if err != nil {
		t.Fatal(err)
	}
	const q10 = `//NP[->PP[//IN[@lex=of]]=>VP]`
	if _, err := c.CountText(q10); err != nil { // warm: compile, cache, size arenas
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := c.CountText(q10); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 64
	if allocs > budget {
		t.Errorf("warm CountText(Q10) = %.0f allocs/op, budget %d", allocs, budget)
	}
}
